// Dishonest: the verifiable-billing threat model in action (§4.3). A
// bTelco inflates its downlink usage reports 3x. The broker's Fig. 5
// discrepancy check flags every reporting cycle, the bTelco's reputation
// score collapses, and the broker's admission policy starts denying
// attachments through it — the "dishonest but not malicious" economics the
// paper describes.
package main

import (
	"fmt"
	"log"
	"time"

	"cellbricks/internal/core"
	"cellbricks/internal/epc"
	"cellbricks/internal/sap"
)

func main() {
	eco, err := core.NewEcosystem("dishonest-ca")
	if err != nil {
		log.Fatal(err)
	}
	brk, err := eco.NewBroker("broker.watchful")
	if err != nil {
		log.Fatal(err)
	}
	dir := core.NewDirectory(brk)
	cheat, err := eco.NewBTelco(core.BTelcoConfig{
		ID:      "shady-cell",
		Brokers: dir,
		Terms:   sap.ServiceTerms{PricePerGB: 0.99}, // suspiciously cheap
	})
	if err != nil {
		log.Fatal(err)
	}

	sub, err := brk.Subscribe("victim-ue")
	if err != nil {
		log.Fatal(err)
	}
	att, err := sub.Attach(cheat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached through shady-cell; initial reputation %.2f\n",
		brk.D.TelcoScore("shady-cell"))

	// Several reporting cycles: the cell counts 3x the real traffic.
	bearer := cheat.AGW.UserPlane().Lookup(att.IP)
	for cycle := 1; cycle <= 12; cycle++ {
		for i := 0; i < 300; i++ {
			now := time.Duration(cycle*1000+i) * time.Millisecond
			// Real packet, counted by the UE baseband...
			if bearer.Process(now, epc.Downlink, 1200) {
				sub.Device.Meter.CountDL(1200)
			}
			// ...plus two phantom packets only the cell's counter sees.
			bearer.Process(now, epc.Downlink, 1200)
			bearer.Process(now, epc.Downlink, 1200)
		}
		m, err := core.ReportCycle(brk, cheat, sub, att.SessionID, time.Duration(cycle)*30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		flagged := "ok"
		if m != nil {
			flagged = fmt.Sprintf("MISMATCH (telco %dB vs UE %dB, degree %.2f)", m.TelcoBytes, m.UEBytes, m.Degree)
		}
		fmt.Printf("cycle %2d: %s; reputation %.3f\n", cycle, flagged, brk.D.TelcoScore("shady-cell"))
	}

	// The reputation gate now rejects new attachments through this cell.
	sub2, err := brk.Subscribe("second-ue")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sub2.Attach(cheat); err == nil {
		log.Fatal("broker still authorizes the cheating bTelco")
	} else {
		fmt.Printf("\nnew attach denied: %v\n", err)
	}

	// The session's settlement is conservative: disputed cycles pay out
	// on the UE-verified bytes, not the inflated claim.
	uref := cheat.AGW.Session(att.SessionID).URef
	st, err := brk.D.SettleSession(uref, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settlement: %d verified bytes (disputed: %v) — inflation did not pay\n",
		st.VerifiedBytes, st.Disputed)
}

// Quickstart: the minimum CellBricks deployment — one broker, one bTelco
// with no pre-established relationship to it, one subscriber. The UE
// attaches on demand through the secure attachment protocol, passes
// traffic, completes a verifiable billing cycle, and detaches.
package main

import (
	"fmt"
	"log"
	"time"

	"cellbricks/internal/core"
	"cellbricks/internal/epc"
	"cellbricks/internal/sap"
)

func main() {
	// A certificate authority anchors trust: brokers verify bTelco
	// certificates against it, nothing else is shared in advance.
	eco, err := core.NewEcosystem("example-ca")
	if err != nil {
		log.Fatal(err)
	}

	// The user's single contractual relationship: a broker.
	brk, err := eco.NewBroker("broker.example")
	if err != nil {
		log.Fatal(err)
	}

	// A small access provider: a single certified cell. It has never
	// heard of this broker or its users.
	dir := core.NewDirectory(brk)
	cell, err := eco.NewBTelco(core.BTelcoConfig{
		ID:      "corner-cafe-cell",
		Brokers: dir,
		Terms:   sap.ServiceTerms{PricePerGB: 2.50},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe a user: the broker issues the key pair the SIM holds.
	sub, err := brk.Subscribe("alice-phone")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed alice: idU=%s\n", sub.IDU)

	// On-demand attach: UE -> bTelco -> broker -> back, one round trip.
	a, err := sub.Attach(cell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached through %s: ip=%s qci=%d dl=%d Mbps\n",
		cell.State.IDT, a.IP, a.QCI, a.DLAmbrBps/1e6)

	// Traffic flows through the bTelco's user plane; both sides count it.
	bearer := cell.AGW.UserPlane().Lookup(a.IP)
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * 5 * time.Millisecond
		if bearer.Process(now, epc.Downlink, 1400) {
			sub.Device.Meter.CountDL(1400)
		}
		if bearer.Process(now, epc.Uplink, 120) {
			sub.Device.Meter.CountUL(120)
		}
	}
	ul, dl := sub.Device.Meter.Snapshot()
	fmt.Printf("traffic: ul=%d dl=%d bytes\n", ul, dl)

	// Verifiable billing: independent signed reports, checked at the
	// broker.
	mismatch, err := core.ReportCycle(brk, cell, sub, a.SessionID, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("billing cycle: mismatch=%v, telco score=%.2f\n",
		mismatch != nil, brk.D.TelcoScore(cell.State.IDT))

	// Host-driven detach.
	if err := sub.Detach(cell); err != nil {
		log.Fatal(err)
	}
	fmt.Println("detached — done")
}

// Mobility: the paper's extreme scenario — a drive through a corridor
// where every tower is its own single-tower bTelco, so every handover is
// a provider switch. The control plane performs a real SAP detach/attach
// against each provider, while in the data-plane emulation an MPTCP
// download survives every resulting IP change.
//
// Two layers run side by side:
//
//   - Control plane (real protocol objects): ran.Mobile decides handovers
//     from signal strength; at each one the UE detaches and runs SAP with
//     the next bTelco — a different operator every time.
//   - Data plane (netem emulation): the download's address is invalidated
//     and re-established with the measured attach latency, showing the
//     throughput dip + recovery of Fig. 8.
package main

import (
	"fmt"
	"log"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/core"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/ran"
	"cellbricks/internal/mobility"
)

func main() {
	eco, err := core.NewEcosystem("mobility-ca")
	if err != nil {
		log.Fatal(err)
	}
	brk, err := eco.NewBroker("broker.mobility")
	if err != nil {
		log.Fatal(err)
	}
	dir := core.NewDirectory(brk)

	// Ten towers, ten independent bTelcos.
	deployment := ran.LinearDeployment(10, 800, func(i int) string {
		return fmt.Sprintf("btelco-%02d", i)
	})
	cells := make(map[string]*core.BTelco)
	for _, c := range deployment.Cells {
		if _, ok := cells[c.TelcoID]; ok {
			continue
		}
		t, err := eco.NewBTelco(core.BTelcoConfig{ID: c.TelcoID, Brokers: dir})
		if err != nil {
			log.Fatal(err)
		}
		cells[c.TelcoID] = t
	}

	sub, err := brk.Subscribe("drive-ue")
	if err != nil {
		log.Fatal(err)
	}

	// Control plane: drive at 20 m/s and re-attach at every handover.
	mobile := ran.NewMobile(deployment, 20)
	serving := cells[mobile.Serving().TelcoID]
	if _, err := sub.Attach(serving); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=0s attached to %s\n", mobile.Serving().TelcoID)

	attachLatencies := []time.Duration{}
	tick := 100 * time.Millisecond
	for now := time.Duration(0); now < 6*time.Minute; now += tick {
		ev := mobile.Advance(now, tick)
		if ev == nil {
			continue
		}
		// Host-driven handover: detach, then SAP attach to the new
		// provider. No coordination between the two bTelcos.
		start := time.Now()
		if err := sub.Detach(serving); err != nil {
			log.Fatal(err)
		}
		serving = cells[ev.To.TelcoID]
		if _, err := sub.Attach(serving); err != nil {
			log.Fatal(err)
		}
		attachLatencies = append(attachLatencies, time.Since(start))
		fmt.Printf("t=%-5v handover %s -> %s (crossed provider: %v)\n",
			ev.At.Truncate(time.Second), ev.From.TelcoID, ev.To.TelcoID, ev.CrossesTelco)
	}
	var sum time.Duration
	for _, d := range attachLatencies {
		sum += d
	}
	fmt.Printf("\n%d provider switches; mean SAP detach+attach wall time %v\n",
		len(attachLatencies), (sum / time.Duration(len(attachLatencies))).Round(time.Microsecond))

	// Data plane: the same drive as a netem emulation with an MPTCP
	// download surviving each IP change.
	sim := netem.NewSim(42)
	op := mobility.NewOperator(43)
	link := op.CellularLink(mobility.Suburb, true)
	sim.Connect("server", "ue-0", link)
	conn := mptcp.NewConn(sim, "server", "ue-0", mptcp.DefaultConfig())
	subflows := 0
	conn.OnSubflow = func(uint32) { subflows++ }

	idx := 0
	for _, at := range mobility.Suburb.Handovers(sim.Rand(), true, 6*time.Minute) {
		at := at
		sim.At(at, func() {
			conn.AddrInvalidated()
			sim.Disconnect("server", fmt.Sprintf("ue-%d", idx))
			idx++
			newIP := fmt.Sprintf("ue-%d", idx)
			sim.Connect("server", newIP, op.CellularLink(mobility.Suburb, true))
			sim.After(32*time.Millisecond, func() { conn.AddrAvailable(newIP) })
		})
	}
	res := apps.NewIperf(sim, conn, time.Second).Run(6 * time.Minute)
	fmt.Printf("\nemulated 6-minute night drive: avg %.2f Mbps over %d IP changes (%d re-subflows), connection alive: %v\n",
		res.AvgBps/1e6, idx, subflows, !conn.Closed())
}

// Dualstack: the incremental-deployment story of §3.1. One device carries
// both SIMs states — the legacy shared key K and the CellBricks key pair —
// "in a dual-stack mode". Against a legacy MNO core it authenticates with
// EPS-AKA; against a CellBricks-enabled bTelco (reached through a stock
// eNodeB that relays the new NAS messages untouched) it runs SAP. Neither
// network needed to know about the other.
package main

import (
	"fmt"
	"log"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/core"
	"cellbricks/internal/epc"
	"cellbricks/internal/ran"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
)

func main() {
	eco, err := core.NewEcosystem("dualstack-ca")
	if err != nil {
		log.Fatal(err)
	}
	brk, err := eco.NewBroker("broker.newco")
	if err != nil {
		log.Fatal(err)
	}
	dir := core.NewDirectory(brk)

	// The legacy MNO: subscriber DB + AGW, no SAP support at all.
	sdb := epc.NewSubscriberDB()
	legacyCore := epc.NewAGW(epc.AGWConfig{Subscribers: directSDB{sdb}})

	// A new CellBricks bTelco behind an unmodified eNodeB.
	cbTelco, err := eco.NewBTelco(core.BTelcoConfig{ID: "newco-cell", Brokers: dir, Terms: sap.ServiceTerms{PricePerGB: 1.25}})
	if err != nil {
		log.Fatal(err)
	}
	enb := cbTelco.NewENB(ran.Cell{ID: "enb-1", TelcoID: "newco-cell", RRCSetupDelay: 130 * time.Millisecond})

	// One device, both credentials.
	k, err := aka.NewK()
	if err != nil {
		log.Fatal(err)
	}
	sdb.Provision("001015550009999", k, epc.SubscriberProfile{APN: "internet"})
	sub, err := brk.Subscribe("dual-phone")
	if err != nil {
		log.Fatal(err)
	}
	dev := ue.NewDevice("dual-phone", &aka.SIM{K: k, IMSI: "001015550009999"}, sub.Device.CB)

	// In MNO coverage: AttachAuto tries SAP, the legacy core can't serve
	// it, the device falls back to EPS-AKA.
	legacyTx := func(env []byte) ([]byte, error) { return legacyCore.HandleNAS("dual-phone", env) }
	a1, err := dev.AttachAuto(legacyTx, "newco-cell")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under the legacy MNO:   attached via %s (ip %s)\n",
		kind(legacyCore.Session(a1.SessionID)), a1.IP)
	if err := dev.Detach(legacyTx); err != nil {
		log.Fatal(err)
	}

	// Walking into newco-cell coverage: RRC setup on the stock eNodeB,
	// then the same AttachAuto prefers SAP.
	if _, err := enb.Connect("dual-phone"); err != nil {
		log.Fatal(err)
	}
	cbTx := core.TransportVia(enb, "dual-phone")
	a2, err := dev.AttachAuto(cbTx, "newco-cell")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under the CB bTelco:    attached via %s (ip %s) through an unmodified eNodeB\n",
		kind(cbTelco.AGW.Session(a2.SessionID)), a2.IP)
	if err := dev.Detach(cbTx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("one device, both worlds — incremental deployment works")
}

func kind(s *epc.Session) string {
	if s == nil {
		return "?"
	}
	if s.Kind == epc.KindSAP {
		return "SAP (CellBricks)"
	}
	return "EPS-AKA (legacy)"
}

// directSDB adapts the in-process SubscriberDB to the AGW's client
// interface.
type directSDB struct{ db *epc.SubscriberDB }

func (d directSDB) AuthInfo(imsi string) (aka.Vector, error) { return d.db.AuthInfo(imsi) }
func (d directSDB) UpdateLocation(imsi string) (epc.SubscriberProfile, error) {
	return d.db.UpdateLocation(imsi)
}

// Multibroker: one bTelco cell simultaneously serving subscribers of two
// competing brokers ("bTelcos are inherently multi-tenant ... a single
// bTelco cell site can support multiple brokers"), with independent
// verifiable-billing settlement toward each.
package main

import (
	"fmt"
	"log"
	"time"

	"cellbricks/internal/core"
	"cellbricks/internal/epc"
	"cellbricks/internal/sap"
)

func main() {
	eco, err := core.NewEcosystem("multibroker-ca")
	if err != nil {
		log.Fatal(err)
	}

	// Two competing brokers.
	acme, err := eco.NewBroker("broker.acme")
	if err != nil {
		log.Fatal(err)
	}
	globex, err := eco.NewBroker("broker.globex")
	if err != nil {
		log.Fatal(err)
	}
	dir := core.NewDirectory(acme, globex)

	// One neutral-host cell willing to serve anyone whose broker
	// authorizes them; it bills at 2.00/GB.
	cell, err := eco.NewBTelco(core.BTelcoConfig{
		ID:      "stadium-cell",
		Brokers: dir,
		Terms:   sap.ServiceTerms{PricePerGB: 2.00},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One subscriber per broker, both attached to the same cell.
	alice, err := acme.Subscribe("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := globex.Subscribe("bob")
	if err != nil {
		log.Fatal(err)
	}
	aAtt, err := alice.Attach(cell)
	if err != nil {
		log.Fatal(err)
	}
	bAtt, err := bob.Attach(cell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stadium-cell serving %d sessions from 2 different brokers\n", cell.AGW.ActiveSessions())

	// Alice downloads 10x what Bob does.
	pass := func(att *core.Subscriber, ip string, packets int) {
		bearer := cell.AGW.UserPlane().Lookup(ip)
		for i := 0; i < packets; i++ {
			now := time.Duration(i) * 2 * time.Millisecond
			if bearer.Process(now, epc.Downlink, 1400) {
				att.Device.Meter.CountDL(1400)
			}
		}
	}
	pass(alice, aAtt.IP, 5000)
	pass(bob, bAtt.IP, 500)

	// Billing cycles to each broker independently.
	if _, err := core.ReportCycle(acme, cell, alice, aAtt.SessionID, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := core.ReportCycle(globex, cell, bob, bAtt.SessionID, 30*time.Second); err != nil {
		log.Fatal(err)
	}

	// Settle: each broker pays the bTelco for exactly its own user's
	// verified usage.
	aliceRef := cell.AGW.Session(aAtt.SessionID).URef
	bobRef := cell.AGW.Session(bAtt.SessionID).URef
	sA, err := acme.D.SettleSession(aliceRef, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	sB, err := globex.D.SettleSession(bobRef, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acme  -> stadium-cell: %8d verified bytes, %.6f units (disputed: %v)\n", sA.VerifiedBytes, sA.Amount, sA.Disputed)
	fmt.Printf("globex-> stadium-cell: %8d verified bytes, %.6f units (disputed: %v)\n", sB.VerifiedBytes, sB.Amount, sB.Disputed)
	if sA.VerifiedBytes < 8*sB.VerifiedBytes {
		log.Fatalf("settlement does not reflect usage split")
	}
	fmt.Println("settlement reflects per-broker usage — multi-tenancy works")
}

// Package cellbricks is a from-scratch Go implementation of the
// CellBricks cellular architecture ("Democratizing Cellular Access with
// CellBricks", SIGCOMM 2021): a design that moves user management
// (authentication, billing) and mobility support out of the cellular core
// and into end hosts and an external broker, so that cellular providers of
// any scale — down to a single tower — can serve any user on demand with
// no pre-established agreements.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - internal/core — the top-level API (Ecosystem, Broker, BTelco,
//     Subscriber) the examples are written against.
//   - internal/sap — the Secure Attachment Protocol, the paper's core
//     contribution.
//   - internal/epc, internal/broker, internal/ue — the cellular core,
//     brokerd, and the UE host stack.
//   - internal/billing — verifiable usage accounting and the reputation
//     system.
//   - internal/mptcp, internal/netem, internal/mobility, internal/ran — the
//     host transport and the emulation substrate behind the paper's
//     evaluation.
//   - internal/testbed — the experiment harness regenerating every table
//     and figure (see bench_test.go and cmd/cbbench).
//
// Run the evaluation with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/cbbench -exp all
package cellbricks

package cellbricks

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6), plus micro-benchmarks for the protocol hot paths.
// Each evaluation benchmark prints the regenerated rows/series once (on
// the first iteration) via b.Log, and times one full regeneration per
// iteration so `go test -bench=.` both reproduces and profiles the
// experiments. EXPERIMENTS.md records paper-vs-measured for each.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/epc"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/testbed"
	"cellbricks/internal/mobility"
)

// BenchmarkFig7AttachLatency regenerates Fig. 7: per-module attachment
// latency, baseline (2 S6A round trips) vs CellBricks (1 SAP round trip),
// for the three SubscriberDB/brokerd placements.
func BenchmarkFig7AttachLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := testbed.RunFig7(100, testbed.Runner{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + testbed.RenderFig7(results))
		}
	}
}

// BenchmarkTable1Apps regenerates Table 1: the four applications under
// MNO (TCP) vs CellBricks (MPTCP + SAP re-attach) across three routes and
// day/night, plus the overall-slowdown row.
func BenchmarkTable1Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := testbed.RunTable1(testbed.Table1Config{Duration: 5 * time.Minute, Seed: 7})
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig8Timeline regenerates Fig. 8: the iperf throughput timeline
// around a handover, MNO vs CellBricks.
func BenchmarkFig8Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := testbed.RunFig8(3, 60*time.Second)
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig9AttachSweep regenerates Fig. 9: relative post-handover
// throughput vs window length for d = 32/64/128 ms (wait removed) and
// unmodified 500 ms-wait MPTCP.
func BenchmarkFig9AttachSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := testbed.RunFig9(3, 2, testbed.Runner{})
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFig10DayNight regenerates Fig. 10 (Appendix A): the bimodal
// day/night operator rate limiting.
func BenchmarkFig10DayNight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := testbed.RunFig10(1, 500*time.Second)
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// --- ablations: design-choice benchmarks DESIGN.md calls out ---

// BenchmarkAblationMPTCPWait sweeps the address-worker wait period
// (0/100/250/500 ms) to quantify how much of the post-handover dip is the
// MPTCP implementation artifact vs the attachment itself.
func BenchmarkAblationMPTCPWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lines string
		for _, wait := range []time.Duration{time.Nanosecond, 100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond} {
			sc := testbed.Scenario{
				Route: mobility.Downtown, Night: true, Arch: testbed.ArchCellBricks,
				MPTCPWait: wait, Seed: 5, Duration: 4 * time.Minute,
			}
			res := testbed.RunIperf(sc)
			lines += time.Duration(wait).Round(time.Millisecond).String() + " wait: " +
				formatMbps(res.AvgBps) + "\n"
		}
		if i == 0 {
			b.Log("\nMPTCP wait-period ablation (night iperf avg):\n" + lines)
		}
	}
}

// BenchmarkAblationAttachLatency sweeps d well beyond the paper's range to
// find where attachment latency starts to dominate (crossover analysis).
func BenchmarkAblationAttachLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lines string
		for _, d := range []time.Duration{32 * time.Millisecond, 128 * time.Millisecond, 512 * time.Millisecond, 2 * time.Second} {
			sc := testbed.Scenario{
				Route: mobility.Highway, Night: true, Arch: testbed.ArchCellBricks,
				AttachLatency: d, MPTCPWait: time.Nanosecond, Seed: 5, Duration: 4 * time.Minute,
			}
			res := testbed.RunIperf(sc)
			lines += "d=" + d.String() + ": " + formatMbps(res.AvgBps) + "\n"
		}
		if i == 0 {
			b.Log("\nattach-latency ablation (highway night, 25.5s MTTHO):\n" + lines)
		}
	}
}

func formatMbps(bps float64) string {
	return fmt.Sprintf("%.2f Mbps", bps/1e6)
}

// --- protocol micro-benchmarks ---

// BenchmarkSAPAttachLocal measures a full SAP attach (UE -> AGW -> broker
// -> back) through the real protocol objects with no simulated latency:
// the pure protocol + crypto cost per attachment.
func BenchmarkSAPAttachLocal(b *testing.B) {
	d, err := testbed.NewRealDeployment()
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
			b.Fatal(err)
		}
		if err := dev.Detach(tx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLegacyAttachLocal is the EPS-AKA counterpart.
func BenchmarkLegacyAttachLocal(b *testing.B) {
	d, err := testbed.NewRealDeployment()
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	dev, tx, err := d.NewLegacyUE("001013333333333")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.AttachLegacy(tx); err != nil {
			b.Fatal(err)
		}
		if err := dev.Detach(tx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealOpen measures the sealed-box primitive SAP and billing
// lean on.
func BenchmarkSealOpen(b *testing.B) {
	k, err := pki.GenerateKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box, err := pki.Seal(k.Public(), msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := k.Open(box); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBillingVerify measures the broker-side report pipeline.
func BenchmarkBillingVerify(b *testing.B) {
	v := billing.NewVerifier(billing.DefaultVerifierConfig())
	v.BindSession("s", "u", "t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint32(i + 1)
		v.Ingest(&billing.Report{SessionRef: "s", Reporter: billing.ReporterUE, Seq: seq, DLBytes: 1e6})
		v.Ingest(&billing.Report{SessionRef: "s", Reporter: billing.ReporterTelco, Seq: seq, DLBytes: 1e6})
	}
}

// BenchmarkUserPlane measures per-packet user-plane accounting+policing.
func BenchmarkUserPlane(b *testing.B) {
	up := epc.NewUserPlane()
	bearer := up.CreateBearer(1, "10.0.0.1", qos.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bearer.Process(time.Duration(i)*time.Microsecond, epc.Downlink, 1400)
	}
}

// BenchmarkAblationSoftHandover contrasts break-before-make (the paper's
// evaluated design point) with make-before-break migration on the
// handover-dense highway route.
func BenchmarkAblationSoftHandover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := testbed.Scenario{Route: mobility.Highway, Night: true, Arch: testbed.ArchCellBricks, Seed: 13, Duration: 4 * time.Minute}
		hard := testbed.RunIperf(base)
		soft := base
		soft.SoftHandover = true
		softRes := testbed.RunIperf(soft)
		if i == 0 {
			b.Logf("\nbreak-before-make: %s\nmake-before-break: %s", formatMbps(hard.AvgBps), formatMbps(softRes.AvgBps))
		}
	}
}

// BenchmarkAblationTransports compares the host-transport options (MPTCP
// deployed/modified, QUIC migration, TCP + L7 restart) on web loads.
func BenchmarkAblationTransports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := testbed.RunTransportComparisonAll(5, 5*time.Minute, testbed.Runner{})
		if i == 0 {
			var lines string
			for _, c := range res {
				lines += fmt.Sprintf("%-22s %6.2fs over %d pages\n", c.Label, c.WebLoad.Seconds(), c.Pages)
			}
			b.Log("\n" + lines)
		}
	}
}

// BenchmarkScaleSharedCell sweeps the UE count across shared 50 Mbps
// cells, once per world shard count — the shard-speedup A/B pair (on a
// single-core runner the two arms are expected to tie).
func BenchmarkScaleSharedCell(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := testbed.ScaleConfig{Seed: 17, CellBps: 50e6, Duration: 10 * time.Second, Shards: shards}
			for i := 0; i < b.N; i++ {
				results := testbed.RunScaleSweep(cfg, []int{64, 256})
				if i == 0 {
					b.Log("\n" + testbed.RenderScale(results))
				}
			}
		})
	}
}

// BenchmarkAblationBillingEpsilon sweeps the Fig. 5 tolerance ratio:
// tighter epsilon catches smaller inflation but risks flagging honest
// radio loss; the table prints false-positive and detection rates across
// simulated sessions.
func BenchmarkAblationBillingEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lines string
		for _, eps := range []float64{0.01, 0.03, 0.05, 0.10} {
			cfg := billing.DefaultVerifierConfig()
			cfg.Epsilon = eps
			v := billing.NewVerifier(cfg)
			rng := rand.New(rand.NewSource(42))
			fp, tp, honest, cheats := 0, 0, 0, 0
			for s := 0; s < 400; s++ {
				ref := fmt.Sprintf("s%d", s)
				v.BindSession(ref, "u", "t")
				loss := rng.Float64() * 0.08
				ueBytes := uint64(1_000_000 + rng.Intn(9_000_000))
				// The telco legitimately counts bytes lost after its meter
				// plus reporting-window skew of up to ±4% — the honest
				// discrepancy the tolerance must absorb.
				skew := (rng.Float64() - 0.3) * 0.04
				telcoBytes := uint64(float64(ueBytes) * (1 + loss + skew))
				inflated := s%4 == 0 // a quarter of sessions cheat by 12%
				if inflated {
					telcoBytes = uint64(float64(ueBytes) * 1.12 * (1 + loss))
					cheats++
				} else {
					honest++
				}
				v.Ingest(&billing.Report{SessionRef: ref, Reporter: billing.ReporterUE, Seq: 1, DLBytes: ueBytes, QoS: billing.QoSMetrics{DLLossRate: loss}})
				m, _ := v.Ingest(&billing.Report{SessionRef: ref, Reporter: billing.ReporterTelco, Seq: 1, DLBytes: telcoBytes})
				switch {
				case m != nil && inflated:
					tp++
				case m != nil && !inflated:
					fp++
				}
			}
			lines += fmt.Sprintf("eps=%.2f  false-positive %5.1f%%  detection(+12%% inflation) %5.1f%%\n",
				eps, 100*float64(fp)/float64(honest), 100*float64(tp)/float64(cheats))
		}
		if i == 0 {
			b.Log("\nbilling tolerance sweep:\n" + lines)
		}
	}
}

// BenchmarkBilledDrive runs the full verifiable-billing integration over
// an emulated night drive: SAP attachments, dual counters, sealed
// reports, Fig. 5 checks, and per-bTelco settlement.
func BenchmarkBilledDrive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := testbed.Scenario{Route: mobility.Downtown, Night: true, Arch: testbed.ArchCellBricks, Seed: 31, Duration: 5 * time.Minute}
		res, err := testbed.RunBilledDrive(sc, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\nsessions=%d cycles=%d mismatches=%d gap=%.3f%% owed=%.6f",
				res.Sessions, res.Cycles, res.Mismatches,
				100*(float64(res.TelcoBytes)-float64(res.UEBytes))/float64(res.UEBytes), res.TotalOwed)
		}
	}
}

package epc

import (
	"cellbricks/internal/obs"
)

// Telemetry handles for the AGW. The active-sessions gauge moves by ±1 in
// activate/dropSession, mirroring the authoritative per-session state
// under the AGW mutex — the registry view is a cross-AGW aggregate.
var mtr struct {
	attaches       *obs.Counter
	attachFailures *obs.Counter
	nasMessages    *obs.Counter
	activeSessions *obs.Gauge
}

func init() { SetMetricsEnabled(true) }

// SetMetricsEnabled installs (true) or removes (false) the package's
// handles in the default registry.
func SetMetricsEnabled(on bool) {
	if !on {
		mtr.attaches, mtr.attachFailures, mtr.nasMessages = nil, nil, nil
		mtr.activeSessions = nil
		return
	}
	r := obs.Default()
	mtr.attaches = r.Counter("epc_attaches_total", "sessions activated by the AGW")
	mtr.attachFailures = r.Counter("epc_attach_failures_total", "attach attempts rejected by the AGW")
	mtr.nasMessages = r.Counter("epc_nas_messages_total", "uplink NAS messages processed")
	mtr.activeSessions = r.Gauge("epc_active_sessions", "sessions currently in the active state across AGWs")
}

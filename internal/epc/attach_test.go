package epc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
	"cellbricks/internal/wire"
)

// localDirectory resolves every broker ID to one in-process brokerd.
type localDirectory struct {
	b *broker.Brokerd
}

func (d localDirectory) Lookup(idB string) (BrokerClient, pki.PublicIdentity, error) {
	if idB != d.b.ID() {
		return nil, pki.PublicIdentity{}, errors.New("unknown broker")
	}
	return localBrokerClient{d.b}, d.b.Public(), nil
}

type localBrokerClient struct{ b *broker.Brokerd }

func (c localBrokerClient) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	return c.b.HandleAuthRequest(req)
}

type world struct {
	agw    *AGW
	brk    *broker.Brokerd
	dev    *ue.Device
	legacy *ue.Device
	tx     ue.NASTransport
}

func buildWorld(t *testing.T) *world {
	t.Helper()
	ca, err := pki.NewCAFromSeed("ca", bytes.Repeat([]byte{50}, 32))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_750_000_000, 0)

	brokerKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{51}, 32))
	cfg := broker.DefaultConfig("broker.example", brokerKey, ca.Public())
	cfg.Now = func() time.Time { return now }
	brk := broker.New(cfg)

	ueKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{52}, 32))
	idU := brk.RegisterUser(ueKey.Public())

	telcoKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{53}, 32))
	telcoCert := ca.Issue("btelco-1", "btelco", telcoKey.Public(), now.Add(-time.Hour), now.Add(time.Hour))
	telco := &sap.TelcoState{
		IDT:   "btelco-1",
		Key:   telcoKey,
		Cert:  telcoCert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 2.0},
	}

	sdb := NewSubscriberDB()
	k := aka.K{9, 9, 9}
	sdb.Provision("001019999999999", k, SubscriberProfile{QoS: qos.DefaultParams(), APN: "internet"})

	agw := NewAGW(AGWConfig{
		Telco:       telco,
		Subscribers: sdbDirect{sdb},
		Brokers:     localDirectory{brk},
	})

	cbSIM := &sap.UEState{IDU: idU, IDB: "broker.example", Key: ueKey, BrokerPub: brokerKey.Public()}
	dev := ue.NewDevice("ran-ue-1", nil, cbSIM)
	legacyDev := ue.NewDevice("ran-ue-2", &aka.SIM{K: k, IMSI: "001019999999999"}, nil)

	return &world{
		agw:    agw,
		brk:    brk,
		dev:    dev,
		legacy: legacyDev,
		tx:     func(env []byte) ([]byte, error) { return agw.HandleNAS("ran-ue-1", env) },
	}
}

// sdbDirect adapts a SubscriberDB to the SubscriberClient interface.
type sdbDirect struct{ db *SubscriberDB }

func (s sdbDirect) AuthInfo(imsi string) (aka.Vector, error) { return s.db.AuthInfo(imsi) }
func (s sdbDirect) UpdateLocation(imsi string) (SubscriberProfile, error) {
	return s.db.UpdateLocation(imsi)
}

func TestSAPAttachEndToEnd(t *testing.T) {
	w := buildWorld(t)
	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" || a.SessionID == 0 {
		t.Fatalf("attachment = %+v", a)
	}
	if w.agw.ActiveSessions() != 1 {
		t.Fatalf("active sessions = %d", w.agw.ActiveSessions())
	}
	sess := w.agw.Session(a.SessionID)
	if sess.Kind != KindSAP || sess.URef == "" {
		t.Fatalf("session = %+v", sess)
	}
	// The broker recorded the grant under the same reference.
	if g := w.brk.Grant(sess.URef); g == nil || g.IDT != "btelco-1" {
		t.Fatalf("broker grant missing for %q", sess.URef)
	}
	// The UE and AGW share a working security context: detach (protected)
	// round-trips.
	if err := w.dev.Detach(w.tx); err != nil {
		t.Fatal(err)
	}
	if w.agw.ActiveSessions() != 0 {
		t.Fatal("session survived detach")
	}
	if w.dev.Attached() != nil {
		t.Fatal("UE still thinks it is attached")
	}
}

func TestLegacyAttachEndToEnd(t *testing.T) {
	w := buildWorld(t)
	tx := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("ran-ue-2", env) }
	a, err := w.legacy.AttachLegacy(tx)
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" {
		t.Fatalf("attachment = %+v", a)
	}
	sess := w.agw.Session(a.SessionID)
	if sess.Kind != KindLegacy || sess.IMSI != "001019999999999" {
		t.Fatalf("session = %+v", sess)
	}
	if err := w.legacy.Detach(tx); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyAttachWrongKeyRejected(t *testing.T) {
	w := buildWorld(t)
	badDev := ue.NewDevice("ran-ue-3", &aka.SIM{K: aka.K{1, 2, 3}, IMSI: "001019999999999"}, nil)
	tx := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("ran-ue-3", env) }
	_, err := badDev.AttachLegacy(tx)
	if err == nil {
		t.Fatal("attach with wrong K succeeded")
	}
	// The UE itself refuses first: the network's AUTN fails MAC check
	// under the wrong key (mutual authentication).
	if !errors.Is(err, aka.ErrMACFailure) {
		t.Fatalf("err = %v, want MAC failure", err)
	}
}

func TestSAPAttachUnknownBroker(t *testing.T) {
	w := buildWorld(t)
	dev := w.dev
	dev.CB.IDB = "nonexistent.example"
	_, err := dev.AttachSAP(w.tx, "btelco-1")
	if err == nil || !strings.Contains(err.Error(), "unknown broker") {
		t.Fatalf("err = %v", err)
	}
}

func TestSAPAttachForeignUserRejected(t *testing.T) {
	w := buildWorld(t)
	strangerKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{99}, 32))
	stranger := ue.NewDevice("ran-x", nil, &sap.UEState{
		IDU:       strangerKey.Public().Digest(),
		IDB:       "broker.example",
		Key:       strangerKey,
		BrokerPub: w.brk.Public(),
	})
	tx := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("ran-x", env) }
	if _, err := stranger.AttachSAP(tx, "btelco-1"); !errors.Is(err, ue.ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

func TestReattachAfterDetach(t *testing.T) {
	w := buildWorld(t)
	a1, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dev.Detach(w.tx); err != nil {
		t.Fatal(err)
	}
	a2, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if a2.SessionID == a1.SessionID {
		t.Fatal("session ID reused across attaches")
	}
	// Host-driven mobility changes the IP (released then reallocated pool
	// address is fine; what matters is a valid new attachment).
	if a2.IP == "" {
		t.Fatal("no IP on re-attach")
	}
}

func TestUsageCountingAndTelcoReport(t *testing.T) {
	w := buildWorld(t)
	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	bearer := w.agw.UserPlane().Lookup(a.IP)
	if bearer == nil {
		t.Fatal("no bearer for UE IP")
	}
	// Pass traffic through the user plane and the baseband meter.
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		if bearer.Process(now, Downlink, 1200) {
			w.dev.Meter.CountDL(1200)
		}
		if bearer.Process(now, Uplink, 100) {
			w.dev.Meter.CountUL(100)
		}
	}
	// Telco-side report flows to the broker...
	env, err := w.agw.GenerateReport(a.SessionID, 30*time.Second, billing.QoSMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.brk.HandleReport(env); err != nil {
		t.Fatal(err)
	}
	// ...and the UE-side report matches, so no mismatch is flagged.
	uenv, err := w.dev.Meter.Report(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.brk.HandleReport(uenv)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("honest session flagged: %+v", m)
	}
	if s := w.brk.TelcoScore("btelco-1"); s < 0.99 {
		t.Fatalf("telco score %.3f after honest reports", s)
	}
}

func TestDishonestTelcoDetected(t *testing.T) {
	w := buildWorld(t)
	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	bearer := w.agw.UserPlane().Lookup(a.IP)
	// Telco counts 3x what actually reached the UE (inflation).
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		bearer.Process(now, Downlink, 1200)
		bearer.Process(now, Downlink, 1200)
		bearer.Process(now, Downlink, 1200)
		w.dev.Meter.CountDL(1200)
	}
	env, _ := w.agw.GenerateReport(a.SessionID, 30*time.Second, billing.QoSMetrics{})
	if _, err := w.brk.HandleReport(env); err != nil {
		t.Fatal(err)
	}
	uenv, _ := w.dev.Meter.Report(30 * time.Second)
	m, err := w.brk.HandleReport(uenv)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("3x inflation not flagged")
	}
	if s := w.brk.TelcoScore("btelco-1"); s >= 1.0 {
		t.Fatalf("score unchanged: %v", s)
	}
}

func TestDedicatedBearer(t *testing.T) {
	w := buildWorld(t)
	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	// Request a voice bearer (QCI 1, advertised in DefaultCapability).
	bid, err := w.dev.RequestDedicatedBearer(w.tx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bid == a.BearerID {
		t.Fatal("dedicated bearer reused default bearer ID")
	}
	// Classification: voice-class packets ride the dedicated bearer,
	// everything else the default.
	voice := w.agw.UserPlane().Classify(a.IP, qos.QCIConversationalVoice)
	def := w.agw.UserPlane().Classify(a.IP, qos.QCIWebTCPDefault)
	if voice == nil || def == nil || voice.BearerID != bid || def.BearerID != a.BearerID {
		t.Fatalf("classification wrong: voice=%+v def=%+v", voice, def)
	}
	voice.Process(0, Downlink, 200)
	def.Process(0, Downlink, 1400)
	// The telco-side report covers all bearers.
	total, ok := w.agw.UserPlane().TotalUsage(a.IP)
	if !ok || total.DLBytes != 1600 {
		t.Fatalf("total usage = %+v", total)
	}
	// An unsupported class is refused.
	if _, err := w.dev.RequestDedicatedBearer(w.tx, 3); err == nil {
		t.Fatal("QCI 3 (not advertised) accepted")
	}
}

func TestDedicatedBearerRequiresAttachment(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.dev.RequestDedicatedBearer(w.tx, 1); err == nil {
		t.Fatal("bearer request without attachment accepted")
	}
}

func TestLawfulInterceptTap(t *testing.T) {
	w := buildWorld(t)
	// The bTelco advertises LI; the broker's grant carries the flag; the
	// AGW mirrors user-plane events once configured with a sink.
	var tapped []InterceptRecord
	w.agw.cfg.Intercept = func(r InterceptRecord) { tapped = append(tapped, r) }
	w.agw.cfg.Telco.Terms.LawfulIntercept = true

	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	bearer := w.agw.UserPlane().Lookup(a.IP)
	bearer.Process(0, Downlink, 1000)
	bearer.Process(0, Uplink, 200)
	if len(tapped) != 2 {
		t.Fatalf("tapped %d events, want 2", len(tapped))
	}
	if tapped[0].Bytes != 1000 || tapped[0].Dir != Downlink || tapped[0].IP != a.IP {
		t.Fatalf("record = %+v", tapped[0])
	}
	// Without the LI flag, nothing is mirrored even with a sink present.
	w.agw.cfg.Telco.Terms.LawfulIntercept = false
	dev2 := ue.NewDevice("ran-li-2", nil, w.dev.CB)
	tx2 := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("ran-li-2", env) }
	a2, err := dev2.AttachSAP(tx2, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	before := len(tapped)
	w.agw.UserPlane().Lookup(a2.IP).Process(0, Downlink, 500)
	if len(tapped) != before {
		t.Fatal("non-LI session was intercepted")
	}
}

func TestDualStackAutoAttach(t *testing.T) {
	w := buildWorld(t)
	// A dual-stack device against a legacy-only AGW (no Telco configured)
	// falls back to EPS-AKA.
	legacyOnly := NewAGW(AGWConfig{Subscribers: sdbDirect{mustSDB(t)}})
	k := aka.K{4, 4, 4}
	legacyOnly.cfg.Subscribers.(sdbDirect).db.Provision("001010000000077", k, SubscriberProfile{QoS: qos.DefaultParams()})
	dual := ue.NewDevice("dual-1", &aka.SIM{K: k, IMSI: "001010000000077"}, w.dev.CB)
	tx := func(env []byte) ([]byte, error) { return legacyOnly.HandleNAS("dual-1", env) }
	a, err := dual.AttachAuto(tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if legacyOnly.Session(a.SessionID).Kind != KindLegacy {
		t.Fatal("fallback did not use the legacy flow")
	}
	// Against the CellBricks-capable AGW, the same device uses SAP.
	dual2 := ue.NewDevice("dual-2", &aka.SIM{K: k, IMSI: "001010000000077"}, w.dev.CB)
	tx2 := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("dual-2", env) }
	a2, err := dual2.AttachAuto(tx2, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if w.agw.Session(a2.SessionID).Kind != KindSAP {
		t.Fatal("dual-stack device did not prefer SAP")
	}
}

func mustSDB(t *testing.T) *SubscriberDB {
	t.Helper()
	return NewSubscriberDB()
}

func TestNASWireServers(t *testing.T) {
	w := buildWorld(t)
	srv, err := ServeNAS(w.agw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	dev := ue.NewDevice("wire-ue", nil, w.dev.CB)
	tx := func(env []byte) ([]byte, error) {
		_, reply, err := client.Call(wire.TypeNAS, EncodeNASCall("wire-ue", env))
		return reply, err
	}
	a, err := dev.AttachSAP(tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" {
		t.Fatal("no IP over the wire")
	}
	if err := dev.Detach(tx); err != nil {
		t.Fatal(err)
	}
	// Wrong message type and malformed payload are rejected.
	if _, _, err := client.Call(wire.TypeAIR, nil); err == nil {
		t.Fatal("wrong type accepted by NAS server")
	}
	if _, _, err := client.Call(wire.TypeNAS, []byte{1, 2}); err == nil {
		t.Fatal("malformed NAS call accepted")
	}
}

func TestSDBWireServer(t *testing.T) {
	db := NewSubscriberDB()
	k := aka.K{8, 8, 8}
	db.Provision("001018888888888", k, SubscriberProfile{QoS: qos.DefaultParams(), APN: "net"})
	srv, err := ServeSDB(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialSDB(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.AuthInfo("001018888888888")
	if err != nil {
		t.Fatal(err)
	}
	sim := &aka.SIM{K: k}
	if _, _, err := sim.Answer(v.RAND, v.AUTN); err != nil {
		t.Fatalf("vector over wire unusable: %v", err)
	}
	p, err := c.UpdateLocation("001018888888888")
	if err != nil {
		t.Fatal(err)
	}
	if p.APN != "net" {
		t.Fatalf("profile = %+v", p)
	}
	if _, err := c.AuthInfo("nobody"); err == nil {
		t.Fatal("unknown IMSI over wire accepted")
	}
}

func TestAGWStateMachineErrors(t *testing.T) {
	w := buildWorld(t)
	// Protected message with no session.
	if _, err := w.agw.HandleNAS("ghost", []byte{1, 0, 0, 0, 0}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	// Empty envelope.
	if _, err := w.agw.HandleNAS("ghost", nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
	// AuthenticationResponse without a pending challenge.
	env := append([]byte{0}, nas.Encode(&nas.AuthenticationResponse{RES: []byte{1}})...)
	if _, err := w.agw.HandleNAS("ghost", env); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	// Unprotected detach after attach is refused.
	a, err := w.dev.AttachSAP(w.tx, "btelco-1")
	if err != nil {
		t.Fatal(err)
	}
	plainDetach := append([]byte{0}, nas.Encode(&nas.DetachRequest{SessionID: a.SessionID})...)
	if _, err := w.agw.HandleNAS("ran-ue-1", plainDetach); !errors.Is(err, ErrProtectedRequired) {
		t.Fatalf("err = %v", err)
	}
	// AGW stats reflect the attach.
	st := w.agw.Stats()
	if st.Attaches != 1 || st.ActiveSessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAGWRejectCounting(t *testing.T) {
	w := buildWorld(t)
	strangerKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{98}, 32))
	stranger := ue.NewDevice("ran-rej", nil, &sap.UEState{
		IDU: strangerKey.Public().Digest(), IDB: "broker.example",
		Key: strangerKey, BrokerPub: w.brk.Public(),
	})
	tx := func(env []byte) ([]byte, error) { return w.agw.HandleNAS("ran-rej", env) }
	stranger.AttachSAP(tx, "btelco-1") // denied: unknown user
	if st := w.agw.Stats(); st.AttachFailures == 0 {
		t.Fatalf("failure not counted: %+v", st)
	}
}

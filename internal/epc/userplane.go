package epc

import (
	"sync"
	"time"

	"cellbricks/internal/qos"
)

// Direction of user-plane traffic relative to the UE.
type Direction int

// Direction values.
const (
	Downlink Direction = iota
	Uplink
)

// Usage is a snapshot of a bearer's counters — the measurements the bTelco
// side of the verifiable-billing protocol reports (PGW counters in 4G /
// UPF in 5G terms).
type Usage struct {
	ULBytes   uint64
	DLBytes   uint64
	ULPackets uint64
	DLPackets uint64
	ULDropped uint64
	DLDropped uint64
}

// Bearer is one provisioned tunnel: the UE's IP, its QoS parameters, the
// policing state, and usage counters.
type Bearer struct {
	SessionID uint64
	BearerID  uint32
	IP        string
	Params    qos.Params
	// Tap mirrors admitted packets to a lawful-intercept sink when set.
	Tap func(now time.Duration, dir Direction, size int)

	mu      sync.Mutex
	usage   Usage
	ulState policerState
	dlState policerState
}

// policerState is a token bucket for AMBR enforcement. The rate terms are
// precomputed once at bearer creation — Process sits on the per-packet
// user-plane path, so it must not redo the bits-to-bytes and burst-cap
// arithmetic for every packet.
type policerState struct {
	bytesPerSec float64 // policed rate in bytes/s; 0 = unlimited
	maxTokens   float64 // burst allowance in bytes
	started     bool
	tokens      float64
	last        time.Duration
}

// burstSeconds is the policer burst allowance, expressed in seconds at the
// configured rate.
const burstSeconds = 0.2

// newPolicer precomputes the token-bucket terms for rateBps.
func newPolicer(rateBps float64) policerState {
	if rateBps <= 0 {
		return policerState{} // unlimited
	}
	bps := rateBps / 8
	return policerState{bytesPerSec: bps, maxTokens: bps * burstSeconds}
}

// police runs the token bucket; returns false to drop.
func (p *policerState) police(now time.Duration, size int) bool {
	if p.bytesPerSec <= 0 {
		return true // unlimited
	}
	if !p.started {
		// A fresh bearer starts with a full burst allowance.
		p.started = true
		p.tokens = p.maxTokens
		p.last = now
	}
	if now > p.last {
		p.tokens += (now - p.last).Seconds() * p.bytesPerSec
		p.last = now
		if p.tokens > p.maxTokens {
			p.tokens = p.maxTokens
		}
	}
	if p.tokens >= float64(size) {
		p.tokens -= float64(size)
		return true
	}
	return false
}

// Process accounts one packet and applies AMBR policing; it reports
// whether the packet may pass. now is virtual or wall time from session
// start — only differences matter.
func (b *Bearer) Process(now time.Duration, dir Direction, size int) bool {
	b.mu.Lock()
	switch dir {
	case Uplink:
		if !b.ulState.police(now, size) {
			b.usage.ULDropped++
			b.mu.Unlock()
			return false
		}
		b.usage.ULBytes += uint64(size)
		b.usage.ULPackets++
	default:
		if !b.dlState.police(now, size) {
			b.usage.DLDropped++
			b.mu.Unlock()
			return false
		}
		b.usage.DLBytes += uint64(size)
		b.usage.DLPackets++
	}
	tap := b.Tap
	b.mu.Unlock()
	if tap != nil {
		tap(now, dir, size)
	}
	return true
}

// Usage returns a snapshot of the counters.
func (b *Bearer) Usage() Usage {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.usage
}

// bearerSet is one UE's default bearer plus any dedicated bearers, keyed
// by QCI (traffic classification in this model is by QoS class).
type bearerSet struct {
	def       *Bearer
	dedicated map[qos.QCI]*Bearer
}

// UserPlane is the packet-gateway function: bearer sets indexed by UE IP.
type UserPlane struct {
	mu      sync.Mutex
	byIP    map[string]*bearerSet
	nextBID uint32
}

// NewUserPlane creates an empty user plane.
func NewUserPlane() *UserPlane {
	return &UserPlane{byIP: make(map[string]*bearerSet)}
}

// CreateBearer provisions the default bearer for a session.
func (up *UserPlane) CreateBearer(sessionID uint64, ip string, params qos.Params) *Bearer {
	up.mu.Lock()
	defer up.mu.Unlock()
	up.nextBID++
	b := newBearer(sessionID, up.nextBID, ip, params)
	up.byIP[ip] = &bearerSet{def: b, dedicated: make(map[qos.QCI]*Bearer)}
	return b
}

// newBearer builds a bearer with its policers precomputed from params.
func newBearer(sessionID uint64, bid uint32, ip string, params qos.Params) *Bearer {
	return &Bearer{
		SessionID: sessionID, BearerID: bid, IP: ip, Params: params,
		ulState: newPolicer(float64(params.ULAmbrBps)),
		dlState: newPolicer(float64(params.DLAmbrBps)),
	}
}

// CreateDedicatedBearer provisions an additional bearer for one traffic
// class on an existing session (the EPS dedicated-bearer concept: e.g. a
// GBR voice bearer beside the default best-effort bearer).
func (up *UserPlane) CreateDedicatedBearer(ip string, params qos.Params) (*Bearer, bool) {
	up.mu.Lock()
	defer up.mu.Unlock()
	set, ok := up.byIP[ip]
	if !ok {
		return nil, false
	}
	up.nextBID++
	b := newBearer(set.def.SessionID, up.nextBID, ip, params)
	set.dedicated[params.QCI] = b
	return b, true
}

// Lookup finds the default bearer for a UE IP.
func (up *UserPlane) Lookup(ip string) *Bearer {
	up.mu.Lock()
	defer up.mu.Unlock()
	if set, ok := up.byIP[ip]; ok {
		return set.def
	}
	return nil
}

// Classify routes a packet of the given QoS class to its bearer: the
// dedicated bearer for that QCI when one exists, else the default.
func (up *UserPlane) Classify(ip string, q qos.QCI) *Bearer {
	up.mu.Lock()
	defer up.mu.Unlock()
	set, ok := up.byIP[ip]
	if !ok {
		return nil
	}
	if b, ok := set.dedicated[q]; ok {
		return b
	}
	return set.def
}

// DeleteBearer removes a session's bearer set at detach, returning the
// default bearer's final usage for the closing traffic report.
func (up *UserPlane) DeleteBearer(ip string) (Usage, bool) {
	up.mu.Lock()
	defer up.mu.Unlock()
	set, ok := up.byIP[ip]
	if !ok {
		return Usage{}, false
	}
	delete(up.byIP, ip)
	return set.def.Usage(), true
}

// TotalUsage sums usage across a session's default and dedicated bearers
// (what the bTelco reports for billing).
func (up *UserPlane) TotalUsage(ip string) (Usage, bool) {
	up.mu.Lock()
	defer up.mu.Unlock()
	set, ok := up.byIP[ip]
	if !ok {
		return Usage{}, false
	}
	u := set.def.Usage()
	for _, b := range set.dedicated {
		du := b.Usage()
		u.ULBytes += du.ULBytes
		u.DLBytes += du.DLBytes
		u.ULPackets += du.ULPackets
		u.DLPackets += du.DLPackets
		u.ULDropped += du.ULDropped
		u.DLDropped += du.DLDropped
	}
	return u, true
}

// Count reports the number of live sessions.
func (up *UserPlane) Count() int {
	up.mu.Lock()
	defer up.mu.Unlock()
	return len(up.byIP)
}

package epc

import (
	"errors"
	"fmt"
	"sync"

	"cellbricks/internal/aka"
	"cellbricks/internal/codec"
	"cellbricks/internal/qos"
)

// ErrUnknownIMSI is returned for subscribers not in the database.
var ErrUnknownIMSI = errors.New("epc: unknown IMSI")

// SubscriberProfile is the legacy subscription record the Update Location
// Request fetches (the second S6A round trip the baseline pays and
// CellBricks eliminates).
type SubscriberProfile struct {
	IMSI string
	QoS  qos.Params
	APN  string
}

// SubscriberDB is the legacy home-operator database: permanent keys,
// sequence numbers, and subscription profiles. In the baseline deployment
// it lives in the carrier's datacenter or cloud — which is exactly why its
// round trips dominate attach latency in Fig. 7's us-east placement.
type SubscriberDB struct {
	mu   sync.Mutex
	subs map[string]*subscriber
}

type subscriber struct {
	k       aka.K
	sqn     uint64
	profile SubscriberProfile
}

// NewSubscriberDB creates an empty database.
func NewSubscriberDB() *SubscriberDB {
	return &SubscriberDB{subs: make(map[string]*subscriber)}
}

// Provision adds or replaces a subscriber.
func (db *SubscriberDB) Provision(imsi string, k aka.K, profile SubscriberProfile) {
	db.mu.Lock()
	defer db.mu.Unlock()
	profile.IMSI = imsi
	db.subs[imsi] = &subscriber{k: k, profile: profile}
}

// AuthInfo serves the Authentication Information Request: generate the
// next authentication vector for the subscriber.
func (db *SubscriberDB) AuthInfo(imsi string) (aka.Vector, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.subs[imsi]
	if !ok {
		return aka.Vector{}, fmt.Errorf("%w: %s", ErrUnknownIMSI, imsi)
	}
	s.sqn++
	return aka.GenerateVector(s.k, s.sqn)
}

// UpdateLocation serves the Update Location Request: record the serving
// core (elided here) and return the subscription profile.
func (db *SubscriberDB) UpdateLocation(imsi string) (SubscriberProfile, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.subs[imsi]
	if !ok {
		return SubscriberProfile{}, fmt.Errorf("%w: %s", ErrUnknownIMSI, imsi)
	}
	return s.profile, nil
}

// --- wire codec for the S6A-like RPCs ---

// MarshalVector encodes an AIA payload.
func MarshalVector(v aka.Vector) []byte {
	w := codec.NewWriter(128)
	w.Bytes(v.RAND[:])
	w.Bytes(v.AUTN)
	w.Bytes(v.XRES)
	w.Bytes(v.KASME[:])
	return w.Out()
}

// UnmarshalVector decodes an AIA payload.
func UnmarshalVector(b []byte) (aka.Vector, error) {
	r := codec.NewReader(b)
	var v aka.Vector
	rnd := r.Bytes()
	autn := r.BytesCopy()
	xres := r.BytesCopy()
	kasme := r.Bytes()
	if err := r.Done(); err != nil {
		return v, err
	}
	if len(rnd) != len(v.RAND) || len(kasme) != len(v.KASME) {
		return v, errors.New("epc: bad vector field sizes")
	}
	copy(v.RAND[:], rnd)
	v.AUTN = autn
	v.XRES = xres
	copy(v.KASME[:], kasme)
	return v, nil
}

// MarshalProfile encodes a ULA payload.
func MarshalProfile(p SubscriberProfile) []byte {
	w := codec.NewWriter(64)
	w.String(p.IMSI)
	w.String(p.APN)
	w.Byte(byte(p.QoS.QCI))
	w.Uint64(p.QoS.DLAmbrBps)
	w.Uint64(p.QoS.ULAmbrBps)
	return w.Out()
}

// UnmarshalProfile decodes a ULA payload.
func UnmarshalProfile(b []byte) (SubscriberProfile, error) {
	r := codec.NewReader(b)
	var p SubscriberProfile
	p.IMSI = r.String()
	p.APN = r.String()
	p.QoS.QCI = qos.QCI(r.Byte())
	p.QoS.DLAmbrBps = r.Uint64()
	p.QoS.ULAmbrBps = r.Uint64()
	if err := r.Done(); err != nil {
		return p, err
	}
	return p, nil
}

// Package epc is the cellular core network (the Magma-AGW-like EPC): the
// control plane that terminates NAS signalling and runs both attach
// procedures (legacy EPS-AKA with its two subscriber-DB round trips, and
// the CellBricks SAP flow with one broker round trip), the user plane
// (bearers, per-session usage counters, AMBR policing), the IP address
// pool, and the subscriber database for the legacy flow.
package epc

import (
	"errors"
	"fmt"
	"sync"
)

// ErrPoolExhausted is returned when no addresses remain.
var ErrPoolExhausted = errors.New("epc: IP pool exhausted")

// IPAllocator hands out addresses from a /16-like pool. The cellular core
// assigns an address at session establishment ("T assigns an IP address
// to U") and reclaims it at detach.
type IPAllocator struct {
	prefix string // e.g. "10.45"

	mu    sync.Mutex
	next  int
	freed []int
	inUse map[string]int
}

// NewIPAllocator creates a pool under prefix (two octets, e.g. "10.45").
func NewIPAllocator(prefix string) *IPAllocator {
	return &IPAllocator{prefix: prefix, next: 1, inUse: make(map[string]int)}
}

func (a *IPAllocator) format(n int) string {
	return fmt.Sprintf("%s.%d.%d", a.prefix, n/250, n%250+1)
}

// Allocate returns a fresh address.
func (a *IPAllocator) Allocate() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int
	if len(a.freed) > 0 {
		n = a.freed[len(a.freed)-1]
		a.freed = a.freed[:len(a.freed)-1]
	} else {
		if a.next >= 250*250 {
			return "", ErrPoolExhausted
		}
		n = a.next
		a.next++
	}
	ip := a.format(n)
	a.inUse[ip] = n
	return ip, nil
}

// Release returns an address to the pool. Unknown addresses are ignored.
func (a *IPAllocator) Release(ip string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n, ok := a.inUse[ip]; ok {
		delete(a.inUse, ip)
		a.freed = append(a.freed, n)
	}
}

// InUse reports the number of live allocations.
func (a *IPAllocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.inUse)
}

package epc

import (
	"fmt"

	"cellbricks/internal/aka"
	"cellbricks/internal/codec"
	"cellbricks/internal/wire"
)

// NASServer exposes an AGW's NAS interface over the wire protocol: the UE
// (srsUE stand-in) connects over TCP where the radio + S1 would be. Each
// uplink frame carries the RAN-level identifier so the AGW can key its
// session table.
type NASServer struct {
	G   *AGW
	srv *wire.Server
}

// ServeNAS starts the AGW's UE-facing server on addr.
func ServeNAS(g *AGW, addr string) (*NASServer, error) {
	s := &NASServer{G: g}
	srv, err := wire.NewServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the bound address.
func (s *NASServer) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *NASServer) Close() error { return s.srv.Close() }

func (s *NASServer) handle(msgType byte, payload []byte) (byte, []byte, error) {
	if msgType != wire.TypeNAS {
		return 0, nil, fmt.Errorf("epc: unexpected message type %d", msgType)
	}
	r := codec.NewReader(payload)
	ranID := r.String()
	envelope := r.BytesCopy()
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	reply, err := s.G.HandleNAS(ranID, envelope)
	if err != nil {
		return 0, nil, err
	}
	return wire.TypeNASReply, reply, nil
}

// EncodeNASCall frames a NAS envelope with its RAN identifier for the
// UE->AGW wire call.
func EncodeNASCall(ranID string, envelope []byte) []byte {
	w := codec.NewWriter(len(envelope) + 32)
	w.String(ranID)
	w.Bytes(envelope)
	return w.Out()
}

// SDBServer exposes a SubscriberDB over the wire protocol (the S6A-like
// northbound the baseline AGW calls twice per attach).
type SDBServer struct {
	DB  *SubscriberDB
	srv *wire.Server
}

// ServeSDB starts the subscriber database server on addr.
func ServeSDB(db *SubscriberDB, addr string) (*SDBServer, error) {
	s := &SDBServer{DB: db}
	srv, err := wire.NewServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the bound address.
func (s *SDBServer) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *SDBServer) Close() error { return s.srv.Close() }

func (s *SDBServer) handle(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case wire.TypeAIR:
		v, err := s.DB.AuthInfo(string(payload))
		if err != nil {
			return 0, nil, err
		}
		return wire.TypeAIA, MarshalVector(v), nil
	case wire.TypeULR:
		p, err := s.DB.UpdateLocation(string(payload))
		if err != nil {
			return 0, nil, err
		}
		return wire.TypeULA, MarshalProfile(p), nil
	default:
		return 0, nil, fmt.Errorf("epc: unexpected message type %d", msgType)
	}
}

// SDBClient is a wire-protocol SubscriberClient.
type SDBClient struct{ C *wire.Client }

// DialSDB connects to a subscriber database server.
func DialSDB(addr string) (*SDBClient, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &SDBClient{C: c}, nil
}

// AuthInfo implements SubscriberClient.
func (c *SDBClient) AuthInfo(imsi string) (aka.Vector, error) {
	_, reply, err := c.C.Call(wire.TypeAIR, []byte(imsi))
	if err != nil {
		return aka.Vector{}, err
	}
	return UnmarshalVector(reply)
}

// UpdateLocation implements SubscriberClient.
func (c *SDBClient) UpdateLocation(imsi string) (SubscriberProfile, error) {
	_, reply, err := c.C.Call(wire.TypeULR, []byte(imsi))
	if err != nil {
		return SubscriberProfile{}, err
	}
	return UnmarshalProfile(reply)
}

// Close closes the connection.
func (c *SDBClient) Close() error { return c.C.Close() }

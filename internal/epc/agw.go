package epc

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/nas"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// SubscriberClient is the AGW's legacy northbound: the two S6A-style round
// trips of the baseline attach.
type SubscriberClient interface {
	AuthInfo(imsi string) (aka.Vector, error)
	UpdateLocation(imsi string) (SubscriberProfile, error)
}

// BrokerClient is the AGW's CellBricks northbound: the single SAP round
// trip to the user's broker.
type BrokerClient interface {
	Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error)
}

// BrokerClientCtx is an optional extension of BrokerClient: clients that
// implement it receive the attach's span context so the broker hop joins
// the causal trace (over the wire, the context rides in the frame header).
type BrokerClientCtx interface {
	AuthenticateCtx(sc obs.SpanContext, req *sap.AuthReqT) (*sap.AuthResp, error)
}

// BrokerDirectory resolves a broker identifier (from the UE's authReqU) to
// a client and the broker's public identity. In deployment this is DNS +
// WebPKI; here it is injected.
type BrokerDirectory interface {
	Lookup(idB string) (BrokerClient, pki.PublicIdentity, error)
}

// Instrument wraps module-level operations for latency accounting (the
// Fig. 7 per-module breakdown). The default is pass-through.
type Instrument func(module string, f func() error) error

func passThrough(_ string, f func() error) error { return f() }

// Instrumented module names used by the AGW.
const (
	ModuleAGW     = "agw"
	ModuleSDB     = "sdb"
	ModuleBrokerd = "brokerd"
)

// InterceptRecord is one user-plane event mirrored to the lawful-intercept
// sink for sessions whose SAP grant carried the LI flag (the paper's
// handover-interface hook: policy decided by the broker, mechanism
// implemented by the bTelco).
type InterceptRecord struct {
	SessionID uint64
	URef      string
	IP        string
	Dir       Direction
	Bytes     int
	At        time.Duration
}

// AGWConfig configures an access gateway.
type AGWConfig struct {
	// Telco enables the SAP flow when set: the AGW fronts this bTelco.
	Telco *sap.TelcoState
	// Subscribers enables the legacy flow when set.
	Subscribers SubscriberClient
	// Brokers resolves broker IDs for SAP requests.
	Brokers BrokerDirectory
	// Instrument wraps module operations; nil means pass-through.
	Instrument Instrument
	// IPPrefix seeds the address pool (default "10.45").
	IPPrefix string
	// Intercept receives mirrored user-plane events for LI-flagged
	// sessions. Nil disables interception even when a grant requests it.
	Intercept func(InterceptRecord)
	// Tracer, with TraceIDs, enables causal tracing: SAP attaches whose
	// envelope carries a span context get per-step child spans.
	Tracer *obs.Tracer
	// TraceIDs mints span IDs deterministically from the sim seed.
	TraceIDs *obs.SpanIDSource
}

// SessionKind distinguishes the two attach flows.
type SessionKind int

// Session kinds.
const (
	KindLegacy SessionKind = iota + 1
	KindSAP
)

// sessionState is the control-plane FSM state.
type sessionState int

const (
	stateAuthPending sessionState = iota + 1 // legacy: challenge sent
	stateSMCPending                          // legacy: SMC sent
	stateActive
)

// Session is the AGW-side record of one attachment.
type Session struct {
	ID     uint64
	Kind   SessionKind
	RANID  string
	IMSI   string // legacy only
	URef   string // SAP only: the broker's opaque UE reference
	IDB    string // SAP only
	IP     string
	Ctx    *nas.SecurityContext
	Bearer *Bearer

	state       sessionState
	pendingXRES []byte
	pendingVec  aka.Vector
	profile     SubscriberProfile
	grant       *sap.Grant
	brokerPub   pki.PublicIdentity
	started     time.Duration
	reportSeq   uint32
}

// AGW is the access gateway: NAS termination, attach FSMs for both
// architectures, and the user plane.
type AGW struct {
	cfg  AGWConfig
	ipam *IPAllocator
	up   *UserPlane

	mu       sync.Mutex
	sessions map[uint64]*Session
	byRAN    map[string]*Session
	nextSID  uint64

	// Cumulative counters for orchestrator heartbeats.
	attaches       uint64
	attachFailures uint64
	retiredUL      uint64
	retiredDL      uint64
}

// NewAGW builds an access gateway.
func NewAGW(cfg AGWConfig) *AGW {
	if cfg.Instrument == nil {
		cfg.Instrument = passThrough
	}
	if cfg.IPPrefix == "" {
		cfg.IPPrefix = "10.45"
	}
	return &AGW{
		cfg:      cfg,
		ipam:     NewIPAllocator(cfg.IPPrefix),
		up:       NewUserPlane(),
		sessions: make(map[uint64]*Session),
		byRAN:    make(map[string]*Session),
	}
}

// UserPlane exposes the gateway's user plane.
func (g *AGW) UserPlane() *UserPlane { return g.up }

// Session returns a session by ID.
func (g *AGW) Session(id uint64) *Session {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sessions[id]
}

// SessionByRAN returns the session attached under a RAN-level identifier.
func (g *AGW) SessionByRAN(ranID string) *Session {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byRAN[ranID]
}

// ActiveSessions counts sessions in the active state.
func (g *AGW) ActiveSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, s := range g.sessions {
		if s.state == stateActive {
			n++
		}
	}
	return n
}

// Errors from NAS handling.
var (
	ErrNoSession         = errors.New("epc: no session for RAN id")
	ErrBadState          = errors.New("epc: message invalid in current state")
	ErrAuthFailed        = errors.New("epc: authentication failed")
	ErrFlowDisabled      = errors.New("epc: flow not enabled on this AGW")
	ErrProtectedRequired = errors.New("epc: message must be security-protected")
)

// HandleNAS processes one uplink NAS message from the RAN identified by
// ranID and returns the downlink reply. The envelope flag byte
// distinguishes plain from security-protected transport and may carry a
// span context (see nas.SplitEnvelope).
func (g *AGW) HandleNAS(ranID string, envelope []byte) ([]byte, error) {
	mtr.nasMessages.Add(1)
	protected, sc, body, err := nas.SplitEnvelope(envelope)
	if err != nil {
		return nil, nas.ErrTooShort
	}

	g.mu.Lock()
	sess := g.byRAN[ranID]
	g.mu.Unlock()

	if protected {
		if sess == nil || sess.Ctx == nil {
			return nil, ErrNoSession
		}
		var pt []byte
		err := g.cfg.Instrument(ModuleAGW, func() error {
			var e error
			pt, e = sess.Ctx.Unprotect(nas.Uplink, body)
			return e
		})
		if err != nil {
			return nil, err
		}
		body = pt
	}

	msg, err := nas.Decode(body)
	if err != nil {
		return nil, err
	}

	switch m := msg.(type) {
	case *nas.AttachRequestLegacy:
		return g.handleLegacyAttach(ranID, m)
	case *nas.AuthenticationResponse:
		return g.handleAuthResponse(sess, m)
	case *nas.SecurityModeComplete:
		if !protected {
			return nil, ErrProtectedRequired
		}
		return g.handleSMCComplete(sess)
	case *nas.AttachRequestSAP:
		return g.handleSAPAttach(ranID, m, sc)
	case *nas.SessionRequest:
		if !protected {
			return nil, ErrProtectedRequired
		}
		return g.handleSessionRequest(sess, m)
	case *nas.DetachRequest:
		if !protected {
			return nil, ErrProtectedRequired
		}
		return g.handleDetach(sess, m)
	default:
		return nil, fmt.Errorf("epc: unexpected NAS message %T", msg)
	}
}

// plain wraps an unprotected NAS reply: flag(0) || encoding, built in a
// single allocation. (AGW handlers run concurrently, so there is no
// shared scratch buffer here — each reply owns its storage.)
func plain(m nas.Message) []byte {
	return nas.AppendEncode(make([]byte, 1, 96), m)
}

// reject counts a failed attach and produces the reject envelope.
func (g *AGW) reject(cause string) []byte {
	g.mu.Lock()
	g.attachFailures++
	g.mu.Unlock()
	mtr.attachFailures.Add(1)
	return plain(&nas.AttachReject{Cause: cause})
}

// rejectErr builds the reject for a northbound failure, preserving a
// degraded broker's typed retry-after hint so the UE's attach state
// machine can honour it instead of hammering a recovering broker.
func (g *AGW) rejectErr(err error) []byte {
	var ra *wire.RetryAfterError
	if errors.As(err, &ra) {
		g.mu.Lock()
		g.attachFailures++
		g.mu.Unlock()
		mtr.attachFailures.Add(1)
		ms := ra.After.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		return plain(&nas.AttachReject{Cause: err.Error(), RetryAfterMS: uint32(ms)})
	}
	return g.reject(err.Error())
}

func (g *AGW) protectedReply(s *Session, m nas.Message) []byte {
	ct := s.Ctx.Protect(nas.Downlink, nas.Encode(m))
	out := make([]byte, 1, 1+len(ct))
	out[0] = 1
	return append(out, ct...)
}

// --- legacy (baseline) attach: AIR -> challenge -> SMC -> ULR -> accept ---

func (g *AGW) handleLegacyAttach(ranID string, m *nas.AttachRequestLegacy) ([]byte, error) {
	if g.cfg.Subscribers == nil {
		return nil, ErrFlowDisabled
	}
	var vec aka.Vector
	err := g.cfg.Instrument(ModuleSDB, func() error {
		var e error
		vec, e = g.cfg.Subscribers.AuthInfo(m.IMSI)
		return e
	})
	if err != nil {
		return g.reject(err.Error()), nil
	}
	g.mu.Lock()
	g.nextSID++
	sess := &Session{
		ID:          g.nextSID,
		Kind:        KindLegacy,
		RANID:       ranID,
		IMSI:        m.IMSI,
		state:       stateAuthPending,
		pendingXRES: vec.XRES,
		pendingVec:  vec,
	}
	g.sessions[sess.ID] = sess
	g.byRAN[ranID] = sess
	g.mu.Unlock()
	return plain(&nas.AuthenticationRequest{RAND: vec.RAND, AUTN: vec.AUTN}), nil
}

func (g *AGW) handleAuthResponse(sess *Session, m *nas.AuthenticationResponse) ([]byte, error) {
	if sess == nil {
		return nil, ErrNoSession
	}
	if sess.state != stateAuthPending {
		return nil, ErrBadState
	}
	var ok bool
	g.cfg.Instrument(ModuleAGW, func() error {
		ok = subtle.ConstantTimeCompare(m.RES, sess.pendingXRES) == 1
		return nil
	})
	if !ok {
		g.dropSession(sess)
		return g.reject("RES mismatch"), nil
	}
	g.cfg.Instrument(ModuleAGW, func() error {
		sess.Ctx = nas.NewSecurityContext(sess.pendingVec.KASME)
		return nil
	})
	sess.state = stateSMCPending
	return plain(&nas.SecurityModeCommand{CipherAlg: 2, IntegrityAlg: 2}), nil
}

func (g *AGW) handleSMCComplete(sess *Session) ([]byte, error) {
	if sess == nil {
		return nil, ErrNoSession
	}
	if sess.state != stateSMCPending {
		return nil, ErrBadState
	}
	// Second S6A round trip: Update Location Request.
	var profile SubscriberProfile
	err := g.cfg.Instrument(ModuleSDB, func() error {
		var e error
		profile, e = g.cfg.Subscribers.UpdateLocation(sess.IMSI)
		return e
	})
	if err != nil {
		g.dropSession(sess)
		return g.reject(err.Error()), nil
	}
	sess.profile = profile
	accept, err := g.activate(sess, profile.QoS, nil)
	if err != nil {
		return nil, err
	}
	return g.protectedReply(sess, accept), nil
}

// --- CellBricks SAP attach: one broker round trip ---

func (g *AGW) handleSAPAttach(ranID string, m *nas.AttachRequestSAP, sc obs.SpanContext) ([]byte, error) {
	if g.cfg.Telco == nil || g.cfg.Brokers == nil {
		return nil, ErrFlowDisabled
	}
	// When the envelope carried a span context and this AGW has a tracer,
	// each SAP step below records a child span under an overall epc/attach
	// span parented to the UE's request. step is a no-op when untraced.
	tr, ids := g.cfg.Tracer, g.cfg.TraceIDs
	traced := sc.Valid() && tr != nil && ids != nil
	var epcCtx obs.SpanContext
	if traced {
		epcCtx = sc.Child(ids.Next())
		epcStart := tr.Now()
		defer func() {
			tr.SpanCtx(epcCtx, "epc", "attach", epcStart, tr.Now()-epcStart,
				map[string]string{"ran": ranID, "broker": m.BrokerID})
		}()
	}
	step := func(cat, name string, f func() error) error {
		if !traced {
			return f()
		}
		start := tr.Now()
		err := f()
		args := map[string]string(nil)
		if err != nil {
			args = map[string]string{"error": err.Error()}
		}
		tr.SpanCtx(epcCtx.Child(ids.Next()), cat, name, start, tr.Now()-start, args)
		return err
	}
	reqU, err := sap.UnmarshalAuthReqU(m.AuthReqU)
	if err != nil {
		return nil, err
	}
	var reqT *sap.AuthReqT
	if err := step("sap", "forward-request", func() error {
		return g.cfg.Instrument(ModuleAGW, func() error {
			var e error
			reqT, e = g.cfg.Telco.ForwardRequest(reqU)
			return e
		})
	}); err != nil {
		return nil, err
	}
	client, brokerPub, err := g.cfg.Brokers.Lookup(m.BrokerID)
	if err != nil {
		return g.reject("unknown broker: " + m.BrokerID), nil
	}
	var resp *sap.AuthResp
	if err := step("broker", "authenticate", func() error {
		return g.cfg.Instrument(ModuleBrokerd, func() error {
			var e error
			if cc, ok := client.(BrokerClientCtx); ok && traced {
				resp, e = cc.AuthenticateCtx(epcCtx, reqT)
			} else {
				resp, e = client.Authenticate(reqT)
			}
			return e
		})
	}); err != nil {
		return g.rejectErr(err), nil
	}
	var grant *sap.Grant
	var respU *sap.AuthRespU
	if err := step("sap", "handle-response", func() error {
		return g.cfg.Instrument(ModuleAGW, func() error {
			var e error
			grant, respU, e = g.cfg.Telco.HandleResponse(brokerPub, resp)
			return e
		})
	}); err != nil {
		return g.reject(err.Error()), nil
	}

	g.mu.Lock()
	g.nextSID++
	sess := &Session{
		ID:        g.nextSID,
		Kind:      KindSAP,
		RANID:     ranID,
		URef:      grant.URef,
		IDB:       m.BrokerID,
		grant:     grant,
		brokerPub: brokerPub,
	}
	g.sessions[sess.ID] = sess
	g.byRAN[ranID] = sess
	g.mu.Unlock()

	// ss seeds the NAS security context exactly as KASME would (SMC key
	// derivation); the SMC exchange itself is folded into attach accept in
	// SAP since both sides already hold ss.
	var accept *nas.AttachAccept
	if err := step("epc", "activate", func() error {
		g.cfg.Instrument(ModuleAGW, func() error {
			sess.Ctx = nas.NewSecurityContext(grant.SS)
			return nil
		})
		var e error
		accept, e = g.activate(sess, grant.Params, respU)
		return e
	}); err != nil {
		return nil, err
	}
	// The accept itself carries authRespU; it cannot be protected before
	// the UE has validated the response and installed ss, so it rides
	// plain — its payload is broker-signed and sealed to the UE.
	return plain(accept), nil
}

// activate allocates the IP and bearer and builds the AttachAccept.
func (g *AGW) activate(sess *Session, params qos.Params, respU *sap.AuthRespU) (*nas.AttachAccept, error) {
	ip, err := g.ipam.Allocate()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.attaches++
	g.mu.Unlock()
	mtr.attaches.Add(1)
	mtr.activeSessions.Add(1)
	sess.IP = ip
	sess.Bearer = g.up.CreateBearer(sess.ID, ip, params)
	sess.state = stateActive
	if sess.Kind == KindSAP && sess.grant != nil && sess.grant.LI && g.cfg.Intercept != nil {
		sink := g.cfg.Intercept
		id, uref, uip := sess.ID, sess.URef, ip
		sess.Bearer.Tap = func(now time.Duration, dir Direction, size int) {
			sink(InterceptRecord{SessionID: id, URef: uref, IP: uip, Dir: dir, Bytes: size, At: now})
		}
	}
	accept := &nas.AttachAccept{
		SessionID: sess.ID,
		IP:        ip,
		BearerID:  sess.Bearer.BearerID,
		QCI:       byte(params.QCI),
		DLAmbrBps: params.DLAmbrBps,
		ULAmbrBps: params.ULAmbrBps,
	}
	if respU != nil {
		accept.AuthRespU = respU.Marshal()
	}
	return accept, nil
}

// handleSessionRequest provisions a dedicated bearer for an additional
// traffic class, within the QoS bounds of the attachment (the SAP grant
// for CellBricks sessions, the subscription profile for legacy ones).
func (g *AGW) handleSessionRequest(sess *Session, m *nas.SessionRequest) ([]byte, error) {
	if sess == nil {
		return nil, ErrNoSession
	}
	if sess.state != stateActive || sess.ID != m.SessionID {
		return nil, ErrBadState
	}
	want := qos.Params{QCI: qos.QCI(m.QCI), DLAmbrBps: sess.Bearer.Params.DLAmbrBps, ULAmbrBps: sess.Bearer.Params.ULAmbrBps}
	if sess.Kind == KindSAP {
		// The bTelco may only provision classes it advertised — and, for
		// GBR classes, only with broker-granted authority: here the
		// original grant's capability check stands in for a re-negotiation.
		if err := want.Validate(g.cfg.Telco.Terms.Cap); err != nil {
			return g.protectedReply(sess, &nas.AttachReject{Cause: err.Error()}), nil
		}
	} else if _, ok := qos.Lookup(want.QCI); !ok {
		return g.protectedReply(sess, &nas.AttachReject{Cause: "unknown QCI"}), nil
	}
	b, ok := g.up.CreateDedicatedBearer(sess.IP, want)
	if !ok {
		return nil, ErrBadState
	}
	return g.protectedReply(sess, &nas.SessionAccept{SessionID: sess.ID, BearerID: b.BearerID, QCI: m.QCI}), nil
}

func (g *AGW) handleDetach(sess *Session, m *nas.DetachRequest) ([]byte, error) {
	if sess == nil {
		return nil, ErrNoSession
	}
	if sess.ID != m.SessionID {
		return nil, fmt.Errorf("epc: detach for session %d on session %d", m.SessionID, sess.ID)
	}
	reply := g.protectedReply(sess, &nas.DetachAccept{SessionID: sess.ID})
	g.dropSession(sess)
	return reply, nil
}

func (g *AGW) dropSession(sess *Session) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if sess.state == stateActive {
		mtr.activeSessions.Add(-1)
	}
	if sess.IP != "" {
		if u, ok := g.up.TotalUsage(sess.IP); ok {
			g.retiredUL += u.ULBytes
			g.retiredDL += u.DLBytes
		}
		g.up.DeleteBearer(sess.IP)
		g.ipam.Release(sess.IP)
	}
	delete(g.sessions, sess.ID)
	if g.byRAN[sess.RANID] == sess {
		delete(g.byRAN, sess.RANID)
	}
}

// RebindRAN migrates an active session to a new RAN-level identifier —
// the X2-style network-driven handover of the *baseline* architecture:
// the UE moved to another eNodeB of the same operator, the core keeps the
// session, bearers, IP address and security context, and only the radio
// binding changes. CellBricks deliberately does not use this path
// (handover = detach + SAP re-attach), but the baseline needs it.
func (g *AGW) RebindRAN(sessionID uint64, newRanID string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	sess, ok := g.sessions[sessionID]
	if !ok || sess.state != stateActive {
		return ErrBadState
	}
	if cur, busy := g.byRAN[newRanID]; busy && cur != sess {
		return fmt.Errorf("epc: RAN id %q already bound to session %d", newRanID, cur.ID)
	}
	if g.byRAN[sess.RANID] == sess {
		delete(g.byRAN, sess.RANID)
	}
	sess.RANID = newRanID
	g.byRAN[newRanID] = sess
	return nil
}

// AGWStats is a snapshot of the gateway's cumulative counters for
// orchestrator heartbeats.
type AGWStats struct {
	ActiveSessions int
	Attaches       uint64
	AttachFailures uint64
	ULBytes        uint64
	DLBytes        uint64
}

// Stats snapshots the gateway's counters: live bearer usage plus retired
// sessions.
func (g *AGW) Stats() AGWStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := AGWStats{
		Attaches:       g.attaches,
		AttachFailures: g.attachFailures,
		ULBytes:        g.retiredUL,
		DLBytes:        g.retiredDL,
	}
	for _, sess := range g.sessions {
		if sess.state != stateActive {
			continue
		}
		st.ActiveSessions++
		if u, ok := g.up.TotalUsage(sess.IP); ok {
			st.ULBytes += u.ULBytes
			st.DLBytes += u.DLBytes
		}
	}
	return st
}

// GenerateReport builds the bTelco-side traffic report for a SAP session
// from the user-plane counters, signed with the bTelco key and sealed to
// the session's broker. rel is the relative timestamp within the session.
func (g *AGW) GenerateReport(sessionID uint64, rel time.Duration, m billing.QoSMetrics) (*billing.SealedReport, error) {
	g.mu.Lock()
	sess := g.sessions[sessionID]
	g.mu.Unlock()
	if sess == nil || sess.Kind != KindSAP {
		return nil, ErrNoSession
	}
	u, _ := g.up.TotalUsage(sess.IP)
	sess.reportSeq++
	r := &billing.Report{
		SessionRef: sess.URef,
		Reporter:   billing.ReporterTelco,
		Seq:        sess.reportSeq,
		Rel:        rel,
		ULBytes:    u.ULBytes,
		DLBytes:    u.DLBytes,
		QoS:        m,
	}
	return billing.Seal(r, g.cfg.Telco.Key, sess.brokerPub)
}

package epc

import (
	"testing"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/qos"
)

func TestIPAllocatorUnique(t *testing.T) {
	a := NewIPAllocator("10.45")
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ip, err := a.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if seen[ip] {
			t.Fatalf("duplicate IP %s", ip)
		}
		seen[ip] = true
	}
	if a.InUse() != 1000 {
		t.Fatalf("InUse = %d", a.InUse())
	}
}

func TestIPAllocatorReuseAfterRelease(t *testing.T) {
	a := NewIPAllocator("10.45")
	ip1, _ := a.Allocate()
	a.Release(ip1)
	// Releasing an already-freed or unknown address is harmless.
	a.Release(ip1)
	a.Release("1.2.3.4")
	if a.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", a.InUse())
	}
	ip2, _ := a.Allocate()
	if ip1 != ip2 {
		t.Fatalf("freed IP not reused: %s then %s", ip1, ip2)
	}
	if a.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", a.InUse())
	}
}

func TestIPAllocatorExhaustion(t *testing.T) {
	a := NewIPAllocator("10.99")
	a.next = 250*250 - 1
	if _, err := a.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(); err != ErrPoolExhausted {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestBearerCountsAndPolices(t *testing.T) {
	up := NewUserPlane()
	b := up.CreateBearer(1, "10.45.0.1", qos.Params{QCI: 9, DLAmbrBps: 8000, ULAmbrBps: 0})
	// 8000 bps = 1000 B/s. Send 10x 500B packets in one instant: burst
	// allowance is 200B (0.2s) -> nothing passes until time advances.
	passed := 0
	for i := 0; i < 10; i++ {
		if b.Process(0, Downlink, 500) {
			passed++
		}
	}
	// Burst allowance is 200B at this rate: no 500B packet fits.
	if passed != 0 {
		t.Fatalf("burst allowed %d oversized packets instantly", passed)
	}
	// After 10 seconds, 10k tokens accumulated but capped at burst 200B.
	if b.Process(10*time.Second, Downlink, 500) {
		t.Fatal("packet above burst cap passed")
	}
	// Small packets pass.
	if !b.Process(11*time.Second, Downlink, 100) {
		t.Fatal("conforming packet dropped")
	}
	u := b.Usage()
	if u.DLBytes == 0 || u.DLDropped == 0 {
		t.Fatalf("usage = %+v", u)
	}
	// Uplink is unlimited (0 rate).
	for i := 0; i < 100; i++ {
		if !b.Process(0, Uplink, 1500) {
			t.Fatal("unlimited uplink dropped")
		}
	}
	if got := b.Usage().ULBytes; got != 150000 {
		t.Fatalf("UL bytes = %d", got)
	}
}

func TestBearerSustainedRate(t *testing.T) {
	up := NewUserPlane()
	b := up.CreateBearer(1, "ip", qos.Params{QCI: 9, DLAmbrBps: 1_000_000}) // 125 kB/s
	var passedBytes uint64
	// Offer 2x the rate for 10 seconds: 250 kB/s in 1250B packets.
	for ms := 0; ms < 10_000; ms += 5 {
		if b.Process(time.Duration(ms)*time.Millisecond, Downlink, 1250) {
			passedBytes += 1250
		}
	}
	rate := float64(passedBytes) * 8 / 10
	if rate < 0.9e6 || rate > 1.15e6 {
		t.Fatalf("sustained rate %.0f bps, want ~1e6", rate)
	}
}

func TestUserPlaneLifecycle(t *testing.T) {
	up := NewUserPlane()
	b := up.CreateBearer(7, "10.45.0.9", qos.DefaultParams())
	if up.Lookup("10.45.0.9") != b {
		t.Fatal("lookup failed")
	}
	b.Process(0, Uplink, 100)
	u, ok := up.DeleteBearer("10.45.0.9")
	if !ok || u.ULBytes != 100 {
		t.Fatalf("delete: ok=%v usage=%+v", ok, u)
	}
	if up.Lookup("10.45.0.9") != nil {
		t.Fatal("bearer survived delete")
	}
	if _, ok := up.DeleteBearer("10.45.0.9"); ok {
		t.Fatal("double delete reported ok")
	}
}

func TestSubscriberDB(t *testing.T) {
	db := NewSubscriberDB()
	k, err := aka.NewK()
	if err != nil {
		t.Fatal(err)
	}
	db.Provision("001010000000001", k, SubscriberProfile{QoS: qos.DefaultParams(), APN: "internet"})

	v1, err := db.AuthInfo("001010000000001")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.AuthInfo("001010000000001")
	if err != nil {
		t.Fatal(err)
	}
	if v1.RAND == v2.RAND {
		t.Fatal("two vectors share RAND")
	}
	// The SIM accepts them in order (SQN increments).
	sim := &aka.SIM{K: k}
	if _, _, err := sim.Answer(v1.RAND, v1.AUTN); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Answer(v2.RAND, v2.AUTN); err != nil {
		t.Fatal(err)
	}

	p, err := db.UpdateLocation("001010000000001")
	if err != nil {
		t.Fatal(err)
	}
	if p.IMSI != "001010000000001" || p.APN != "internet" {
		t.Fatalf("profile = %+v", p)
	}
	if _, err := db.AuthInfo("unknown"); err == nil {
		t.Fatal("unknown IMSI accepted")
	}
	if _, err := db.UpdateLocation("unknown"); err == nil {
		t.Fatal("unknown IMSI accepted")
	}
}

func TestVectorProfileCodecs(t *testing.T) {
	k, _ := aka.NewK()
	v, err := aka.GenerateVector(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVector(MarshalVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.RAND != v.RAND || got.KASME != v.KASME || string(got.XRES) != string(v.XRES) || string(got.AUTN) != string(v.AUTN) {
		t.Fatal("vector codec mismatch")
	}
	p := SubscriberProfile{IMSI: "00101", APN: "internet", QoS: qos.Params{QCI: 9, DLAmbrBps: 1, ULAmbrBps: 2}}
	gotP, err := UnmarshalProfile(MarshalProfile(p))
	if err != nil {
		t.Fatal(err)
	}
	if gotP != p {
		t.Fatalf("profile codec mismatch: %+v", gotP)
	}
}

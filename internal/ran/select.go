package ran

import (
	"sort"
	"strconv"

	"cellbricks/internal/obs"
)

// This file implements the UE-driven, network-assisted cell selection the
// paper sketches for host-driven mobility (§4.2): with every tower
// potentially a different bTelco, the UE is free to pick its next cell by
// more than signal strength — price and the broker's reputation view are
// first-class inputs ("this choice can be exerted in a fine-grained
// manner allowing for a range of policies (e.g., selecting bTelcos based
// on their historical performance)").

// Candidate is one selectable cell with the commercial context the UE
// (or its broker, consulted out of band) knows about it.
type Candidate struct {
	Cell       Cell
	RSSI       float64 // dBm at the UE's position
	PricePerGB float64 // advertised in the bTelco's terms
	Reputation float64 // broker's score in [0,1]
	// Quarantined marks cells whose bTelco the broker has quarantined;
	// they are disqualified outright regardless of weights — the UE-side
	// half of the closed trust loop.
	Quarantined bool
}

// SelectionPolicy weighs the normalized candidate features. Zero weights
// ignore a feature; the default is signal-only (today's behaviour).
type SelectionPolicy struct {
	WSignal     float64
	WPrice      float64 // rewards cheaper cells
	WReputation float64
	// MinRSSI disqualifies cells below the usability floor (dBm).
	MinRSSI float64
	// MinReputation disqualifies cells the broker distrusts.
	MinReputation float64
}

// SignalOnly is classic strongest-cell selection.
func SignalOnly() SelectionPolicy {
	return SelectionPolicy{WSignal: 1, MinRSSI: -120}
}

// ValueAware trades a little signal for price and reputation.
func ValueAware() SelectionPolicy {
	return SelectionPolicy{WSignal: 0.5, WPrice: 0.3, WReputation: 0.2, MinRSSI: -110, MinReputation: 0.5}
}

// Select ranks candidates under the policy and returns them best-first
// (disqualified cells are dropped). Features are min-max normalized over
// the candidate set so weights are comparable.
func Select(cands []Candidate, p SelectionPolicy) []Candidate {
	var ok []Candidate
	for _, c := range cands {
		if c.Quarantined {
			continue
		}
		if c.RSSI < p.MinRSSI {
			continue
		}
		if p.MinReputation > 0 && c.Reputation < p.MinReputation {
			continue
		}
		ok = append(ok, c)
	}
	if len(ok) <= 1 {
		return ok
	}
	minR, maxR := ok[0].RSSI, ok[0].RSSI
	minP, maxP := ok[0].PricePerGB, ok[0].PricePerGB
	for _, c := range ok[1:] {
		minR, maxR = minF(minR, c.RSSI), maxF(maxR, c.RSSI)
		minP, maxP = minF(minP, c.PricePerGB), maxF(maxP, c.PricePerGB)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 1
		}
		return (v - lo) / (hi - lo)
	}
	score := func(c Candidate) float64 {
		s := p.WSignal * norm(c.RSSI, minR, maxR)
		s += p.WPrice * (1 - norm(c.PricePerGB, minP, maxP))
		s += p.WReputation * c.Reputation
		return s
	}
	sort.SliceStable(ok, func(i, j int) bool { return score(ok[i]) > score(ok[j]) })
	return ok
}

// SelectTraced is Select with a causal-trace record: when tr/ids are live
// and parent is a valid span context, it records a ran/cell-select span
// (child of parent) carrying the candidate counts and the winning cell, so
// a session timeline can attribute selection latency and show *why* a cell
// won (or that every candidate was disqualified).
func SelectTraced(cands []Candidate, p SelectionPolicy,
	tr *obs.Tracer, ids *obs.SpanIDSource, parent obs.SpanContext) []Candidate {
	if tr == nil || ids == nil || !parent.Valid() {
		return Select(cands, p)
	}
	start := tr.Now()
	ok := Select(cands, p)
	args := map[string]string{
		"candidates": strconv.Itoa(len(cands)),
		"eligible":   strconv.Itoa(len(ok)),
	}
	if len(ok) > 0 {
		args["chosen"] = ok[0].Cell.ID
	}
	tr.SpanCtx(parent.Child(ids.Next()), "ran", "cell-select", start, tr.Now()-start, args)
	return ok
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Package ran models the radio access network layer CellBricks leaves
// unmodified: cells (towers) with positions and transmit power, a
// log-distance path-loss signal model, neighbor lists for UE-driven
// network-assisted cell selection, and a mobile terminal that generates
// handover decisions with hysteresis as it moves — each handover being,
// in CellBricks, a full detach + SAP re-attach, possibly to a different
// bTelco.
package ran

import (
	"math"
	"sort"
	"time"
)

// Cell is one tower sector.
type Cell struct {
	ID      string
	TelcoID string  // owning bTelco
	PosM    float64 // position along the (1-D) route
	TxDBm   float64 // transmit power
	// RRCSetupDelay is the radio-layer connection setup cost, excluded
	// from Fig. 7 (hardware-dependent) but part of total outage time in
	// the mobility emulation.
	RRCSetupDelay time.Duration
}

// pathLossExponent for an urban macro environment.
const pathLossExponent = 3.5

// RSSI returns received power (dBm) at a position.
func (c Cell) RSSI(posM float64) float64 {
	d := math.Abs(posM - c.PosM)
	if d < 1 {
		d = 1
	}
	return c.TxDBm - 10*pathLossExponent*math.Log10(d)
}

// RAN is a deployment of cells along a route.
type RAN struct {
	Cells []Cell
}

// LinearDeployment places n cells spacing metres apart, assigning each to
// a bTelco via owner(i) — the paper's extreme scenario gives every tower
// its own single-tower bTelco.
func LinearDeployment(n int, spacingM float64, owner func(i int) string) *RAN {
	r := &RAN{}
	for i := 0; i < n; i++ {
		r.Cells = append(r.Cells, Cell{
			ID:            cellID(i),
			TelcoID:       owner(i),
			PosM:          float64(i) * spacingM,
			TxDBm:         43, // typical macro cell
			RRCSetupDelay: 130 * time.Millisecond,
		})
	}
	return r
}

func cellID(i int) string {
	return "cell-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10))
}

// StrongestAt returns the best cell at a position (nil for an empty RAN).
func (r *RAN) StrongestAt(posM float64) *Cell {
	var best *Cell
	bestRSSI := math.Inf(-1)
	for i := range r.Cells {
		if rssi := r.Cells[i].RSSI(posM); rssi > bestRSSI {
			bestRSSI = rssi
			best = &r.Cells[i]
		}
	}
	return best
}

// Neighbors returns the k nearest cells to c (excluding c) — the
// network-assisted neighbor list that lets UE-driven handover "perform
// smarter cell selection".
func (r *RAN) Neighbors(c *Cell, k int) []Cell {
	var others []Cell
	for _, o := range r.Cells {
		if o.ID != c.ID {
			others = append(others, o)
		}
	}
	sort.Slice(others, func(i, j int) bool {
		return math.Abs(others[i].PosM-c.PosM) < math.Abs(others[j].PosM-c.PosM)
	})
	if len(others) > k {
		others = others[:k]
	}
	return others
}

// HandoverHysteresisDB prevents ping-ponging at cell edges.
const HandoverHysteresisDB = 3.0

// Mobile is a terminal moving along the route at a constant speed.
type Mobile struct {
	RAN      *RAN
	SpeedMps float64

	posM    float64
	serving *Cell
}

// NewMobile starts a terminal at position 0, attached to the strongest
// cell.
func NewMobile(r *RAN, speed float64) *Mobile {
	m := &Mobile{RAN: r, SpeedMps: speed}
	m.serving = r.StrongestAt(0)
	return m
}

// Serving returns the current cell.
func (m *Mobile) Serving() *Cell { return m.serving }

// Pos returns the current position.
func (m *Mobile) Pos() float64 { return m.posM }

// HandoverEvent describes one UE-driven cell switch.
type HandoverEvent struct {
	At           time.Duration
	From, To     *Cell
	CrossesTelco bool
}

// Advance moves the terminal by dt and reports a handover event if the
// hysteresis-filtered strongest cell changed. now is the absolute virtual
// time used to stamp events.
func (m *Mobile) Advance(now, dt time.Duration) *HandoverEvent {
	m.posM += m.SpeedMps * dt.Seconds()
	best := m.RAN.StrongestAt(m.posM)
	if best == nil || m.serving == nil || best.ID == m.serving.ID {
		return nil
	}
	if best.RSSI(m.posM) < m.serving.RSSI(m.posM)+HandoverHysteresisDB {
		return nil
	}
	ev := &HandoverEvent{
		At:           now,
		From:         m.serving,
		To:           best,
		CrossesTelco: best.TelcoID != m.serving.TelcoID,
	}
	m.serving = best
	return ev
}

// DriveHandovers runs the terminal for dur at a tick granularity and
// collects all handover events — the geometric counterpart to
// mobility.Route.Handovers.
func (m *Mobile) DriveHandovers(dur, tick time.Duration) []HandoverEvent {
	var out []HandoverEvent
	for t := time.Duration(0); t < dur; t += tick {
		if ev := m.Advance(t, tick); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

package ran

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file models the eNodeB's RRC front-end — the piece of srsENB the
// prototype reuses unmodified. CellBricks changes nothing below NAS, so
// the eNB's job is: run the RRC connection state machine per UE, then
// relay NAS transparently between the UE and the core.

// RRCState is the per-UE radio connection state.
type RRCState int

// RRC states.
const (
	RRCIdle RRCState = iota
	RRCConnecting
	RRCConnected
)

func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "idle"
	case RRCConnecting:
		return "connecting"
	case RRCConnected:
		return "connected"
	default:
		return fmt.Sprintf("rrc(%d)", int(s))
	}
}

// NASRelay forwards one NAS envelope to the core and returns the reply —
// the S1-AP leg; epc.AGW.HandleNAS fits after binding the RAN id.
type NASRelay func(ranID string, envelope []byte) ([]byte, error)

// ENB is one eNodeB: it admits UEs through RRC connection setup and
// relays NAS for connected UEs.
type ENB struct {
	Cell  Cell
	Relay NASRelay
	// MaxConnected bounds admitted UEs (RRC admission control);
	// 0 = unlimited.
	MaxConnected int
	// Clock returns virtual or wall time for connection bookkeeping.
	Clock func() time.Duration

	mu    sync.Mutex
	conns map[string]*rrcConn
}

type rrcConn struct {
	state       RRCState
	connectedAt time.Duration
	lastUsed    time.Duration
}

// NewENB builds an eNodeB front-end for a cell.
func NewENB(cell Cell, relay NASRelay) *ENB {
	return &ENB{
		Cell:  cell,
		Relay: relay,
		Clock: func() time.Duration { return 0 },
		conns: make(map[string]*rrcConn),
	}
}

// Errors from the RRC layer.
var (
	ErrNotConnected  = errors.New("ran: UE has no RRC connection")
	ErrAdmissionFull = errors.New("ran: cell admission control rejected the UE")
	ErrAlreadyActive = errors.New("ran: RRC connection already active")
	ErrRelayUnset    = errors.New("ran: eNB has no core relay")
)

// Connect runs RRC connection establishment for a UE. It returns the
// setup delay the radio layer imposes (the RRCSetupDelay the Fig. 7
// benchmark excludes but the mobility emulation pays).
func (e *ENB) Connect(ranID string) (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[ranID]; ok && c.state == RRCConnected {
		return 0, ErrAlreadyActive
	}
	if e.MaxConnected > 0 {
		active := 0
		for _, c := range e.conns {
			if c.state == RRCConnected {
				active++
			}
		}
		if active >= e.MaxConnected {
			return 0, ErrAdmissionFull
		}
	}
	now := e.Clock()
	e.conns[ranID] = &rrcConn{state: RRCConnected, connectedAt: now, lastUsed: now}
	return e.Cell.RRCSetupDelay, nil
}

// Release tears the RRC connection down (UE detach or radio-link
// failure).
func (e *ENB) Release(ranID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.conns, ranID)
}

// State reports a UE's RRC state.
func (e *ENB) State(ranID string) RRCState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[ranID]; ok {
		return c.state
	}
	return RRCIdle
}

// Connected counts UEs in RRC connected state.
func (e *ENB) Connected() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.conns {
		if c.state == RRCConnected {
			n++
		}
	}
	return n
}

// ForwardNAS relays a NAS envelope for a connected UE. The eNB never
// inspects NAS content — CellBricks' new messages pass through a stock
// eNodeB untouched, which is why the paper can reuse commercial base
// stations.
func (e *ENB) ForwardNAS(ranID string, envelope []byte) ([]byte, error) {
	e.mu.Lock()
	c, ok := e.conns[ranID]
	if ok {
		c.lastUsed = e.Clock()
	}
	relay := e.Relay
	e.mu.Unlock()
	if !ok || c.state != RRCConnected {
		return nil, ErrNotConnected
	}
	if relay == nil {
		return nil, ErrRelayUnset
	}
	return relay(ranID, envelope)
}

// ExpireIdle releases connections idle longer than the inactivity timer
// (eNBs drop UEs to RRC idle after ~10-20 s of silence).
func (e *ENB) ExpireIdle(now, timeout time.Duration) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for id, c := range e.conns {
		if now-c.lastUsed > timeout {
			delete(e.conns, id)
			n++
		}
	}
	return n
}

package ran

import (
	"fmt"
	"testing"
	"time"

	"cellbricks/internal/obs"
)

func testRAN(n int) *RAN {
	// Every tower its own bTelco: the paper's extreme scenario.
	return LinearDeployment(n, 800, func(i int) string { return fmt.Sprintf("btelco-%d", i) })
}

func TestRSSIMonotonicWithDistance(t *testing.T) {
	c := Cell{PosM: 0, TxDBm: 43}
	last := c.RSSI(1)
	for d := 10.0; d <= 10000; d *= 2 {
		got := c.RSSI(d)
		if got >= last {
			t.Fatalf("RSSI not decreasing at %f: %f >= %f", d, got, last)
		}
		last = got
	}
	// Symmetric.
	if c.RSSI(-500) != c.RSSI(500) {
		t.Fatal("RSSI asymmetric")
	}
}

func TestStrongestAtMidpoints(t *testing.T) {
	r := testRAN(10)
	for i := 0; i < 10; i++ {
		pos := float64(i) * 800
		best := r.StrongestAt(pos)
		if best.ID != r.Cells[i].ID {
			t.Fatalf("at tower %d position, strongest = %s", i, best.ID)
		}
	}
	if (&RAN{}).StrongestAt(0) != nil {
		t.Fatal("empty RAN returned a cell")
	}
}

func TestNeighbors(t *testing.T) {
	r := testRAN(10)
	n := r.Neighbors(&r.Cells[5], 4)
	if len(n) != 4 {
		t.Fatalf("got %d neighbors", len(n))
	}
	// Nearest first: cells 4 and 6 must lead.
	near := map[string]bool{r.Cells[4].ID: true, r.Cells[6].ID: true}
	if !near[n[0].ID] || !near[n[1].ID] {
		t.Fatalf("neighbors not nearest-first: %v %v", n[0].ID, n[1].ID)
	}
	for _, c := range n {
		if c.ID == r.Cells[5].ID {
			t.Fatal("cell is its own neighbor")
		}
	}
}

func TestMobileHandoverSequence(t *testing.T) {
	r := testRAN(12)
	m := NewMobile(r, 10) // 10 m/s over 800 m spacing -> HO every ~80 s
	dur := 800 * time.Second
	events := m.DriveHandovers(dur, 100*time.Millisecond)
	// Crossing ~10 cell boundaries.
	if len(events) < 8 || len(events) > 11 {
		t.Fatalf("got %d handovers over %v", len(events), dur)
	}
	for i, ev := range events {
		if ev.From.ID == ev.To.ID {
			t.Fatalf("event %d: handover to the same cell", i)
		}
		if !ev.CrossesTelco {
			t.Fatalf("event %d: single-tower bTelcos must always cross providers", i)
		}
		if i > 0 && ev.At <= events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	// Inter-handover times near 80s (hysteresis shifts the crossing
	// slightly past the midpoint).
	for i := 1; i < len(events); i++ {
		gap := (events[i].At - events[i-1].At).Seconds()
		if gap < 60 || gap > 100 {
			t.Fatalf("handover gap %d = %.1fs, want ~80", i, gap)
		}
	}
}

func TestHysteresisPreventsPingPong(t *testing.T) {
	r := testRAN(3)
	m := NewMobile(r, 0.0) // stationary at 0
	// Sitting still must never hand over.
	if ev := m.Advance(0, time.Hour); ev != nil {
		t.Fatalf("stationary UE handed over: %+v", ev)
	}
	// A UE exactly at the midpoint (equal RSSI) must stay with its
	// serving cell: hysteresis requires a clear winner.
	m2 := NewMobile(r, 0)
	m2.posM = 400 // midpoint of cells 0 and 1
	if ev := m2.Advance(0, 0); ev != nil {
		t.Fatalf("midpoint UE handed over: %+v", ev)
	}
}

func TestSameTelcoDeployment(t *testing.T) {
	// One MNO owning all towers: handovers never cross providers.
	r := LinearDeployment(5, 800, func(int) string { return "mno-1" })
	m := NewMobile(r, 20)
	events := m.DriveHandovers(200*time.Second, 100*time.Millisecond)
	if len(events) == 0 {
		t.Fatal("no handovers")
	}
	for _, ev := range events {
		if ev.CrossesTelco {
			t.Fatal("same-MNO handover flagged as provider crossing")
		}
	}
}

func TestLinearDeploymentIDsUnique(t *testing.T) {
	r := testRAN(60)
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func selCands() []Candidate {
	return []Candidate{
		{Cell: Cell{ID: "strong-pricey"}, RSSI: -60, PricePerGB: 5.0, Reputation: 0.9},
		{Cell: Cell{ID: "ok-cheap"}, RSSI: -80, PricePerGB: 1.0, Reputation: 0.9},
		{Cell: Cell{ID: "ok-shady"}, RSSI: -75, PricePerGB: 0.5, Reputation: 0.2},
		{Cell: Cell{ID: "too-weak"}, RSSI: -118, PricePerGB: 0.1, Reputation: 1.0},
	}
}

func TestSelectSignalOnly(t *testing.T) {
	got := Select(selCands(), SignalOnly())
	if len(got) == 0 || got[0].Cell.ID != "strong-pricey" {
		t.Fatalf("signal-only picked %+v", got)
	}
}

func TestSelectValueAware(t *testing.T) {
	got := Select(selCands(), ValueAware())
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	// The shady cell is disqualified by MinReputation and the weak one by
	// MinRSSI; only the two qualified cells may appear, in either order
	// depending on how the weights trade signal against price.
	for _, c := range got {
		if c.Cell.ID == "ok-shady" || c.Cell.ID == "too-weak" {
			t.Fatalf("disqualified cell ranked: %s", c.Cell.ID)
		}
	}
	if len(got) != 2 {
		t.Fatalf("qualified = %d, want 2", len(got))
	}
}

func TestSelectEmptyAndSingle(t *testing.T) {
	if got := Select(nil, ValueAware()); len(got) != 0 {
		t.Fatal("selection from nothing")
	}
	one := []Candidate{{Cell: Cell{ID: "only"}, RSSI: -70, Reputation: 1}}
	if got := Select(one, ValueAware()); len(got) != 1 || got[0].Cell.ID != "only" {
		t.Fatalf("single candidate mishandled: %+v", got)
	}
}

func TestSelectDropsQuarantined(t *testing.T) {
	cands := selCands()
	cands[0].Quarantined = true // best signal, but broker-quarantined
	got := Select(cands, SignalOnly())
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range got {
		if c.Cell.ID == "strong-pricey" {
			t.Fatal("quarantined cell survived selection")
		}
	}
	if got[0].Cell.ID != "ok-shady" {
		t.Fatalf("expected next-strongest cell first, got %s", got[0].Cell.ID)
	}
	// Quarantine disqualifies even when every cell is marked: the UE
	// must then fall back to its FSM-level override, not Select.
	for i := range cands {
		cands[i].Quarantined = true
	}
	if got := Select(cands, SignalOnly()); len(got) != 0 {
		t.Fatalf("all-quarantined set returned %d candidates", len(got))
	}
}

func TestSelectPriceBreaksTie(t *testing.T) {
	cands := []Candidate{
		{Cell: Cell{ID: "same-a"}, RSSI: -70, PricePerGB: 3.0, Reputation: 0.9},
		{Cell: Cell{ID: "same-b"}, RSSI: -70, PricePerGB: 1.0, Reputation: 0.9},
	}
	got := Select(cands, ValueAware())
	if got[0].Cell.ID != "same-b" {
		t.Fatalf("equal-signal tie not broken by price: %s first", got[0].Cell.ID)
	}
}

// TestSelectTraced: the traced wrapper ranks identically to Select and
// records one ran/cell-select span carrying the candidate counts and the
// winner; with a nil tracer or zero parent it degrades to plain Select.
func TestSelectTraced(t *testing.T) {
	tr := obs.NewTracer(func() time.Duration { return 42 * time.Millisecond })
	ids := obs.NewSpanIDSource(7)
	parent := ids.NewTrace()

	got := SelectTraced(selCands(), SignalOnly(), tr, ids, parent)
	want := Select(selCands(), SignalOnly())
	if len(got) != len(want) || got[0].Cell.ID != want[0].Cell.ID {
		t.Fatalf("traced ranking diverged: %+v vs %+v", got, want)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Cat != "ran" || e.Name != "cell-select" || e.Trace != parent.Trace || e.Parent != parent.Span {
		t.Fatalf("span = %+v", e)
	}
	if e.Args["chosen"] != "strong-pricey" || e.Args["candidates"] != "4" || e.Args["eligible"] != "4" {
		t.Fatalf("args = %+v", e.Args)
	}

	// Untraced fallbacks record nothing and still rank.
	if got := SelectTraced(selCands(), SignalOnly(), nil, nil, parent); len(got) != 4 {
		t.Fatalf("nil-tracer fallback: %+v", got)
	}
	if got := SelectTraced(selCands(), SignalOnly(), tr, ids, obs.SpanContext{}); len(got) != 4 {
		t.Fatalf("zero-parent fallback: %+v", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("fallbacks recorded spans: %d", tr.Len())
	}
}

package ran

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func testENB(relay NASRelay) *ENB {
	cell := Cell{ID: "c1", TelcoID: "t1", RRCSetupDelay: 130 * time.Millisecond}
	return NewENB(cell, relay)
}

func TestRRCLifecycle(t *testing.T) {
	e := testENB(func(_ string, env []byte) ([]byte, error) { return env, nil })
	if e.State("ue1") != RRCIdle {
		t.Fatal("fresh UE not idle")
	}
	d, err := e.Connect("ue1")
	if err != nil {
		t.Fatal(err)
	}
	if d != 130*time.Millisecond {
		t.Fatalf("setup delay = %v", d)
	}
	if e.State("ue1") != RRCConnected || e.Connected() != 1 {
		t.Fatal("UE not connected")
	}
	if _, err := e.Connect("ue1"); !errors.Is(err, ErrAlreadyActive) {
		t.Fatalf("double connect err = %v", err)
	}
	e.Release("ue1")
	if e.State("ue1") != RRCIdle {
		t.Fatal("release did not idle the UE")
	}
}

func TestForwardNASRequiresConnection(t *testing.T) {
	e := testENB(func(_ string, env []byte) ([]byte, error) {
		return append([]byte("reply:"), env...), nil
	})
	if _, err := e.ForwardNAS("ue1", []byte("x")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v", err)
	}
	e.Connect("ue1")
	got, err := e.ForwardNAS("ue1", []byte("attach"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("reply:attach")) {
		t.Fatalf("reply = %q", got)
	}
}

func TestNASOpaqueToENB(t *testing.T) {
	// The eNB must relay unknown (CellBricks SAP) payloads byte-exactly:
	// the property that lets commercial base stations carry SAP.
	var relayed []byte
	e := testENB(func(_ string, env []byte) ([]byte, error) {
		relayed = append([]byte(nil), env...)
		return []byte("ok"), nil
	})
	e.Connect("ue1")
	weird := []byte{0x00, 0xFF, 0x06, 'S', 'A', 'P', 0x00, 0x01}
	if _, err := e.ForwardNAS("ue1", weird); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(relayed, weird) {
		t.Fatal("eNB altered the NAS payload")
	}
}

func TestAdmissionControl(t *testing.T) {
	e := testENB(func(_ string, env []byte) ([]byte, error) { return env, nil })
	e.MaxConnected = 2
	e.Connect("a")
	e.Connect("b")
	if _, err := e.Connect("c"); !errors.Is(err, ErrAdmissionFull) {
		t.Fatalf("err = %v", err)
	}
	e.Release("a")
	if _, err := e.Connect("c"); err != nil {
		t.Fatalf("connect after release: %v", err)
	}
}

func TestExpireIdle(t *testing.T) {
	now := time.Duration(0)
	e := testENB(func(_ string, env []byte) ([]byte, error) { return env, nil })
	e.Clock = func() time.Duration { return now }
	e.Connect("a")
	e.Connect("b")
	now = 5 * time.Second
	e.ForwardNAS("b", []byte("keepalive"))
	now = 12 * time.Second
	if n := e.ExpireIdle(now, 10*time.Second); n != 1 {
		t.Fatalf("expired %d, want 1 (only the silent UE)", n)
	}
	if e.State("a") != RRCIdle || e.State("b") != RRCConnected {
		t.Fatal("wrong UE expired")
	}
}

func TestRelayUnset(t *testing.T) {
	e := NewENB(Cell{ID: "c"}, nil)
	e.Connect("u")
	if _, err := e.ForwardNAS("u", nil); !errors.Is(err, ErrRelayUnset) {
		t.Fatalf("err = %v", err)
	}
}

func TestRRCStateString(t *testing.T) {
	if RRCIdle.String() != "idle" || RRCConnected.String() != "connected" || RRCConnecting.String() != "connecting" {
		t.Fatal("state strings wrong")
	}
}

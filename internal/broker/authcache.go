package broker

import (
	"cellbricks/internal/qos"
)

// Auth-decision cache: the pki.CertVerifier memoization pattern lifted
// one layer up. During an attach storm the broker evaluates the same
// (user, bTelco, terms) authorization thousands of times against state
// that almost never changes; this cache remembers GRANTED decisions and
// replays them until any reputation- or policy-relevant event bumps the
// epoch sequence (seq-invalidation, exactly like a generation counter —
// entries from an old epoch read as misses and are dropped lazily).
//
// Scope, deliberately narrow:
//
//   - Only grants are cached. Denials re-evaluate every time, so purely
//     time-driven transitions (a quarantine window expiring into the
//     trial phase) take effect without anyone bumping the epoch.
//   - The cache is bypassed while a custom SetPolicy chain is installed:
//     custom rules may be time- or state-dependent (OffPeakBoost) in
//     ways the epoch counter cannot see.
//   - Restore always clears the cache: a snapshot may carry reputation
//     and quarantine state the cached decisions predate.
//
// Invalidation sites (every write that can change an authorization):
// billing mismatch/replay ingest, QoS penalties, watchdog and SLO
// evidence, quarantine transitions, SetPolicy, RevokeUser,
// EnableQuarantine, and Restore.

// authCacheKey identifies one authorization input. ServiceTerms itself
// is not comparable (its capability holds a QCI slice), so the terms ride
// as their canonical-encoding digest.
type authCacheKey struct {
	idU   string
	idT   string
	terms uint64 // sap.ServiceTerms.Fingerprint()
}

type authCacheEntry struct {
	seq    uint64
	params qos.Params
}

// EnableAuthCache arms the auth-decision cache with a maximum entry
// count (FIFO eviction, like the SAP nonce cache — deterministic, never
// iterating a map). max <= 0 disables. Off by default.
func (b *Brokerd) EnableAuthCache(max int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if max <= 0 {
		b.authCacheMax = 0
		b.authCache = nil
		b.authOrder = nil
		return
	}
	b.authCacheMax = max
	b.authCache = make(map[authCacheKey]authCacheEntry, max)
	b.authOrder = b.authOrder[:0]
	b.authSeq++
}

// AuthCacheStats reports cumulative (hits, misses, invalidations).
func (b *Brokerd) AuthCacheStats() (hits, misses, invalidations uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.authHits, b.authMisses, b.authInvals
}

// authCacheLookupLocked consults the cache; a stale-epoch entry reads as
// a miss and is dropped. Mutex held by caller.
func (b *Brokerd) authCacheLookupLocked(k authCacheKey) (qos.Params, bool) {
	e, ok := b.authCache[k]
	if ok && e.seq == b.authSeq {
		b.authHits++
		mtr.authCacheHits.Add(1)
		return e.params, true
	}
	if ok {
		delete(b.authCache, k)
	}
	b.authMisses++
	mtr.authCacheMisses.Add(1)
	return qos.Params{}, false
}

// authCacheStoreLocked records a granted decision under the current
// epoch. The FIFO order slice may briefly hold a re-inserted key twice;
// early eviction of such a key costs an extra miss, never a wrong
// answer. Mutex held by caller.
func (b *Brokerd) authCacheStoreLocked(k authCacheKey, p qos.Params) {
	if _, exists := b.authCache[k]; !exists {
		b.authOrder = append(b.authOrder, k)
		if len(b.authOrder) > b.authCacheMax {
			old := b.authOrder[0]
			b.authOrder = b.authOrder[1:]
			delete(b.authCache, old)
		}
	}
	b.authCache[k] = authCacheEntry{seq: b.authSeq, params: p}
}

// invalidateAuthCacheLocked starts a new cache epoch: every cached
// decision predates the state change that just happened and reads as a
// miss from here on. Mutex held by caller.
func (b *Brokerd) invalidateAuthCacheLocked() {
	if b.authCacheMax == 0 {
		return
	}
	b.authSeq++
	b.authInvals++
	mtr.authCacheInvals.Add(1)
}

// clearAuthCacheLocked drops every entry outright (Restore path: the
// epoch bump alone would suffice for correctness, but restored state
// should not pin pre-snapshot memory either). Mutex held by caller.
func (b *Brokerd) clearAuthCacheLocked() {
	if b.authCacheMax == 0 {
		return
	}
	b.authCache = make(map[authCacheKey]authCacheEntry, b.authCacheMax)
	b.authOrder = b.authOrder[:0]
	b.invalidateAuthCacheLocked()
}

package broker

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// authReq builds a fresh bTelco-forwarded SAP request for the harness UE.
func authReq(t *testing.T, h *harness) *sap.AuthReqT {
	t.Helper()
	reqU, _, err := h.ue.NewAttachRequest(h.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := h.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	return reqT
}

func TestShedLoadTypedRetryAfterOverWire(t *testing.T) {
	h := newHarness(t)
	srv, err := Serve(h.brk, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	h.brk.ShedLoad(300 * time.Millisecond)
	if !h.brk.Degraded() {
		t.Fatal("ShedLoad did not mark the broker degraded")
	}
	_, err = client.Authenticate(authReq(t, h))
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("degraded auth err = %v, want *wire.RetryAfterError", err)
	}
	if ra.After != 300*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want 300ms (survived the wire round trip)", ra.After)
	}
	if h.brk.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", h.brk.ShedCount())
	}

	// Reports must keep flowing while attaches shed: ingestion is cheap
	// and losing it would open a billing gap. (The session predates the
	// degradation.)
	h.brk.Resume()
	if h.brk.Degraded() {
		t.Fatal("Resume did not clear degraded state")
	}
	resp, err := client.Authenticate(authReq(t, h))
	if err != nil {
		t.Fatalf("auth after Resume: %v", err)
	}
	if !resp.Granted {
		t.Fatalf("denied after Resume: %s", resp.Cause)
	}
}

func TestRestartRestoresSnapshotOverWire(t *testing.T) {
	// Build the world by hand (not newHarness) so the broker Config is
	// available for the crash-restart constructor.
	now := time.Unix(1_760_000_000, 0)
	ca, err := pki.NewCAFromSeed("r-ca", bytes.Repeat([]byte{95}, 32))
	if err != nil {
		t.Fatal(err)
	}
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{96}, 32))
	cfg := DefaultConfig("broker.restart", bk, ca.Public())
	cfg.Now = func() time.Time { return now }
	brk := New(cfg)

	uk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{97}, 32))
	idU := brk.RegisterUser(uk.Public())
	tk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{98}, 32))
	cert := ca.Issue("r-telco", "btelco", tk.Public(), now.Add(-time.Hour), now.Add(time.Hour))
	telco := &sap.TelcoState{
		IDT: "r-telco", Key: tk, Cert: cert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
	}
	ue := &sap.UEState{IDU: idU, IDB: "broker.restart", Key: uk, BrokerPub: bk.Public()}
	h := &harness{brk: brk, ca: ca, ue: ue, ueKey: uk, telco: telco, now: now}

	// A grant lands, then the broker "crashes" — the last snapshot is all
	// that survives.
	_, ref := h.attach(t)
	snap := brk.Snapshot()

	nb, err := Restart(cfg, snap, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if !nb.Degraded() {
		t.Fatal("restarted broker should start in the shed window")
	}
	if nb.Grant(ref) == nil {
		t.Fatal("grant did not survive the snapshot round trip")
	}

	srv, err := Serve(nb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// During the shed window the restored broker refuses with the typed
	// hint...
	_, err = client.Authenticate(authReq(t, h))
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("degraded auth err = %v, want *wire.RetryAfterError", err)
	}
	// ...and afterwards the restored user registration serves a fresh
	// attach: recovery is complete without re-provisioning anything.
	nb.Resume()
	h.brk = nb
	_, ref2 := h.attach(t)
	if ref2 == ref {
		t.Fatal("fresh attach reused the old session ref")
	}
}

func TestRestartNilSnapshot(t *testing.T) {
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{99}, 32))
	ca, err := pki.NewCAFromSeed("n-ca", bytes.Repeat([]byte{100}, 32))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Restart(DefaultConfig("broker.amnesia", bk, ca.Public()), nil, 0)
	if err != nil {
		t.Fatalf("Restart with nil snapshot: %v", err)
	}
	if nb.Degraded() {
		t.Fatal("shedFor=0 must not start degraded")
	}
}

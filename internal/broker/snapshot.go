package broker

import (
	"fmt"
	"time"

	"cellbricks/internal/codec"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
)

// Snapshot serializes the broker's durable state — registered users,
// known bTelco keys, grants, agreed prices, reputation entries, and
// (since v2) live quarantine entries — so a restarted brokerd resumes
// exactly where it stopped: sessions keep settling, reputation history
// survives, and a quarantined bTelco stays quarantined through the
// restart. (Pending unpaired reports, the nonce/resume replay caches,
// and the auth-decision cache are deliberately excluded: reports
// retransmit, a restart naturally re-arms replay protection, and cached
// decisions must never outlive the state they were derived from —
// Restore clears the cache.)
const snapshotVersion = 2

// Snapshot encodes the broker's durable state.
func (b *Brokerd) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	w := codec.NewWriter(4096)
	w.Byte(snapshotVersion)
	w.String(b.cfg.ID)

	w.Uint32(uint32(len(b.users)))
	for id, pub := range b.users {
		w.String(id)
		w.Bytes(pub.Bytes())
	}
	w.Uint32(uint32(len(b.telcoKeys)))
	for id, pub := range b.telcoKeys {
		w.String(id)
		w.Bytes(pub.Bytes())
	}
	w.Uint32(uint32(len(b.grants)))
	for uref, g := range b.grants {
		w.String(uref)
		w.String(g.IDU)
		w.String(g.IDT)
		w.Bytes(g.SS[:])
		w.Byte(byte(g.QoS.QCI))
		w.Uint64(g.QoS.DLAmbrBps)
		w.Uint64(g.QoS.ULAmbrBps)
		w.Float64(b.prices[uref])
	}
	reps := b.verifier.Reputations()
	w.Uint32(uint32(len(reps)))
	for id, e := range reps {
		w.String(id)
		w.Float64(e.Score)
		w.Uint32(uint32(e.Reports))
		w.Uint32(uint32(e.Mismatches))
		w.Float64(e.Penalty)
	}
	suspects := b.verifier.Suspects()
	w.Uint32(uint32(len(suspects)))
	for _, id := range suspects {
		w.String(id)
	}
	w.Uint32(uint32(len(b.quar)))
	for id, e := range b.quar {
		w.String(id)
		w.Uint64(uint64(e.Since))
		w.Uint64(uint64(e.Until))
		w.Uint32(uint32(e.Strikes))
	}
	mtr.snapshots.Add(1)
	return w.Out()
}

// Restore loads a snapshot into a freshly constructed broker (same ID and
// key as the one that produced it). Both the current v2 format and the
// quarantine-less v1 format are accepted.
func (b *Brokerd) Restore(snap []byte) error {
	r := codec.NewReader(snap)
	v := r.Byte()
	if v != 1 && v != snapshotVersion {
		return fmt.Errorf("broker: snapshot version %d unsupported", v)
	}
	id := r.String()
	if id != b.cfg.ID {
		return fmt.Errorf("broker: snapshot for %q, this broker is %q", id, b.cfg.ID)
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	nUsers := r.Uint32()
	for i := uint32(0); i < nUsers && r.Err() == nil; i++ {
		uid := r.String()
		pub, err := pki.ParsePublicIdentity(r.Bytes())
		if err != nil {
			return err
		}
		b.users[uid] = pub
		b.sap.RegisterUser(pub)
		_ = uid // RegisterUser derives the same digest id
	}
	nTelcos := r.Uint32()
	for i := uint32(0); i < nTelcos && r.Err() == nil; i++ {
		tid := r.String()
		pub, err := pki.ParsePublicIdentity(r.Bytes())
		if err != nil {
			return err
		}
		b.telcoKeys[tid] = pub
	}
	nGrants := r.Uint32()
	for i := uint32(0); i < nGrants && r.Err() == nil; i++ {
		g := &sap.GrantRecord{}
		uref := r.String()
		g.URef = uref
		g.IDU = r.String()
		g.IDT = r.String()
		copy(g.SS[:], r.Bytes())
		g.QoS.QCI = qos.QCI(r.Byte())
		g.QoS.DLAmbrBps = r.Uint64()
		g.QoS.ULAmbrBps = r.Uint64()
		b.prices[uref] = r.Float64()
		b.grants[uref] = g
		b.verifier.BindSession(uref, g.IDU, g.IDT)
	}
	nReps := r.Uint32()
	for i := uint32(0); i < nReps && r.Err() == nil; i++ {
		tid := r.String()
		score := r.Float64()
		reports := int(r.Uint32())
		mismatches := int(r.Uint32())
		penalty := r.Float64()
		b.verifier.RestoreReputation(tid, score, reports, mismatches, penalty)
	}
	nSusp := r.Uint32()
	for i := uint32(0); i < nSusp && r.Err() == nil; i++ {
		b.verifier.RestoreSuspect(r.String())
	}
	if v >= 2 {
		nQuar := r.Uint32()
		if nQuar > 0 && b.quar == nil {
			b.quar = make(map[string]*QuarantineEntry)
		}
		for i := uint32(0); i < nQuar && r.Err() == nil; i++ {
			id := r.String()
			e := &QuarantineEntry{
				Since:   time.Duration(r.Uint64()),
				Until:   time.Duration(r.Uint64()),
				Strikes: int(r.Uint32()),
			}
			b.quar[id] = e
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	// Cached auth decisions must not survive into the restored state —
	// the snapshot may carry reputation/quarantine entries they predate.
	b.clearAuthCacheLocked()
	mtr.restores.Add(1)
	return nil
}

// Restart is the crash-recovery constructor: it builds a fresh broker from
// cfg, loads the last snapshot, and — if shedFor > 0 — starts in degraded
// mode so attach load is refused with a retry-after hint while the operator
// warms the instance (call Resume, or schedule it, to end the window).
// A nil snapshot restarts with empty durable state, which is still a valid
// (if amnesiac) recovery.
func Restart(cfg Config, snap []byte, shedFor time.Duration) (*Brokerd, error) {
	b := New(cfg)
	if len(snap) > 0 {
		if err := b.Restore(snap); err != nil {
			return nil, fmt.Errorf("broker: restart restore: %w", err)
		}
	}
	if shedFor > 0 {
		b.ShedLoad(shedFor)
	}
	return b, nil
}

package broker

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
)

// harness wires a brokerd with one registered user and one certified
// bTelco, exposing raw SAP plumbing for adversarial tests.
type harness struct {
	brk   *Brokerd
	ca    *pki.CA
	ue    *sap.UEState
	ueKey *pki.KeyPair
	telco *sap.TelcoState
	now   time.Time
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	now := time.Unix(1_760_000_000, 0)
	ca, err := pki.NewCAFromSeed("h-ca", bytes.Repeat([]byte{90}, 32))
	if err != nil {
		t.Fatal(err)
	}
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{91}, 32))
	cfg := DefaultConfig("broker.h", bk, ca.Public())
	cfg.Now = func() time.Time { return now }
	brk := New(cfg)

	uk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{92}, 32))
	idU := brk.RegisterUser(uk.Public())

	tk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{93}, 32))
	cert := ca.Issue("h-telco", "btelco", tk.Public(), now.Add(-time.Hour), now.Add(time.Hour))
	telco := &sap.TelcoState{
		IDT: "h-telco", Key: tk, Cert: cert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.5},
	}
	ue := &sap.UEState{IDU: idU, IDB: "broker.h", Key: uk, BrokerPub: bk.Public()}
	return &harness{brk: brk, ca: ca, ue: ue, ueKey: uk, telco: telco, now: now}
}

// attach runs the SAP exchange, returning the grant and session ref.
func (h *harness) attach(t *testing.T) (*sap.Grant, string) {
	t.Helper()
	reqU, pending, err := h.ue.NewAttachRequest(h.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := h.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Fatalf("denied: %s", resp.Cause)
	}
	grant, respU, err := h.telco.HandleResponse(h.brk.Public(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ue.HandleResponse(pending, respU); err != nil {
		t.Fatal(err)
	}
	return grant, grant.URef
}

func (h *harness) report(t *testing.T, rep billing.Reporter, signer *pki.KeyPair, ref string, seq uint32, dl uint64) *billing.Mismatch {
	t.Helper()
	r := &billing.Report{
		SessionRef: ref, Reporter: rep, Seq: seq,
		Rel: time.Duration(seq) * 30 * time.Second, DLBytes: dl,
	}
	env, err := billing.Seal(r, signer, h.brk.Public())
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.brk.HandleReport(env)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGrantRecordedAndBound(t *testing.T) {
	h := newHarness(t)
	grant, ref := h.attach(t)
	rec := h.brk.Grant(ref)
	if rec == nil || rec.IDT != "h-telco" {
		t.Fatalf("grant record = %+v", rec)
	}
	if rec.SS != grant.SS {
		t.Fatal("broker and telco ss differ")
	}
}

func TestReportPipelineHonest(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	if m := h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 1_000_000); m != nil {
		t.Fatalf("half pair flagged: %+v", m)
	}
	if m := h.report(t, billing.ReporterTelco, h.telco.Key, ref, 1, 1_010_000); m != nil {
		t.Fatalf("honest pair flagged: %+v", m)
	}
}

func TestReportWrongSignerRejected(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	// The telco tries to forge a UE report with its own key.
	r := &billing.Report{SessionRef: ref, Reporter: billing.ReporterUE, Seq: 1, DLBytes: 1}
	env, err := billing.Seal(r, h.telco.Key, h.brk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.brk.HandleReport(env); err == nil {
		t.Fatal("forged UE report accepted")
	}
}

func TestReportUnknownSessionRejected(t *testing.T) {
	h := newHarness(t)
	h.attach(t)
	r := &billing.Report{SessionRef: "bogus", Reporter: billing.ReporterUE, Seq: 1}
	env, _ := billing.Seal(r, h.ueKey, h.brk.Public())
	if _, err := h.brk.HandleReport(env); err == nil {
		t.Fatal("report for unknown session accepted")
	}
}

func TestReputationGateDeniesAttach(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	// Persistent inflation tanks the score below the 0.5 gate.
	for seq := uint32(1); seq <= 10; seq++ {
		h.report(t, billing.ReporterUE, h.ueKey, ref, seq, 1_000_000)
		h.report(t, billing.ReporterTelco, h.telco.Key, ref, seq, 5_000_000)
	}
	if s := h.brk.TelcoScore("h-telco"); s >= 0.5 {
		t.Fatalf("score %.2f still above gate", s)
	}
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := h.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("attach granted through disreputable bTelco")
	}
	if !strings.Contains(resp.Cause, "reputation") {
		t.Fatalf("cause = %q", resp.Cause)
	}
}

func TestPriceGate(t *testing.T) {
	h := newHarness(t)
	h.brk.cfg.MaxPricePerGB = 1.0 // telco advertises 1.5
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := h.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("over-priced bTelco accepted")
	}
	if !strings.Contains(resp.Cause, "price") {
		t.Fatalf("cause = %q", resp.Cause)
	}
}

func TestSettleSessionFlow(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 2_000_000)
	h.report(t, billing.ReporterTelco, h.telco.Key, ref, 1, 2_020_000)
	st, err := h.brk.SettleSession(ref, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Disputed {
		t.Fatal("honest session disputed")
	}
	if st.VerifiedBytes < 2_000_000 || st.VerifiedBytes > 2_020_000 {
		t.Fatalf("verified = %d", st.VerifiedBytes)
	}
	// Price from the SAP terms: 1.5 per GB.
	want := float64(st.VerifiedBytes) / 1e9 * 1.5
	if st.Amount != want {
		t.Fatalf("amount = %v, want %v", st.Amount, want)
	}
	if _, err := h.brk.SettleSession("bogus", time.Second); err == nil {
		t.Fatal("settle for unknown session accepted")
	}
}

func TestRevokedUserDenied(t *testing.T) {
	h := newHarness(t)
	h.brk.RevokeUser(h.ue.IDU)
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := h.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("revoked user granted")
	}
}

func TestWireServerRoundTrip(t *testing.T) {
	h := newHarness(t)
	srv, err := Serve(h.brk, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reqU, pending, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := client.Authenticate(reqT)
	if err != nil {
		t.Fatal(err)
	}
	grant, respU, err := h.telco.HandleResponse(h.brk.Public(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ue.HandleResponse(pending, respU); err != nil {
		t.Fatal(err)
	}
	// Upload a report over the wire too.
	r := &billing.Report{SessionRef: grant.URef, Reporter: billing.ReporterUE, Seq: 1, DLBytes: 5}
	env, _ := billing.Seal(r, h.ueKey, h.brk.Public())
	if err := client.UploadReport(env); err != nil {
		t.Fatal(err)
	}
}

func TestQoSViolationPenalized(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	// UE attests terrible delay (QCI 9 budget 300 ms; 3x factor = 900 ms)
	// over several cycles: QoS incidents accrue and the score dips, but
	// far more gently than accounting fraud would.
	for seq := uint32(1); seq <= 5; seq++ {
		r := &billing.Report{
			SessionRef: ref, Reporter: billing.ReporterUE, Seq: seq,
			Rel:     time.Duration(seq) * 30 * time.Second,
			DLBytes: 1_000_000,
			QoS:     billing.QoSMetrics{DLDelayMs: 2500},
		}
		env, err := billing.Seal(r, h.ueKey, h.brk.Public())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.brk.HandleReport(env); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.brk.QoSViolations("h-telco"); got != 5 {
		t.Fatalf("violations = %d, want 5", got)
	}
	s := h.brk.TelcoScore("h-telco")
	if s >= 1.0 {
		t.Fatalf("score unchanged: %v", s)
	}
	if s < 0.7 {
		t.Fatalf("QoS-only penalty too harsh: %.2f", s)
	}
}

func TestQoSWithinBudgetNoPenalty(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	r := &billing.Report{
		SessionRef: ref, Reporter: billing.ReporterUE, Seq: 1,
		DLBytes: 1_000_000,
		QoS:     billing.QoSMetrics{DLDelayMs: 150, DLLossRate: 0.001},
	}
	env, _ := billing.Seal(r, h.ueKey, h.brk.Public())
	if _, err := h.brk.HandleReport(env); err != nil {
		t.Fatal(err)
	}
	if got := h.brk.QoSViolations("h-telco"); got != 0 {
		t.Fatalf("violations = %d for in-budget metrics", got)
	}
}

func TestPolicyChain(t *testing.T) {
	h := newHarness(t)
	h.brk.SetPolicy(qos.DefaultParams(),
		PriceCap(2.0),
		TierByPrice(1.0, qos.Params{QCI: qos.QCIWebTCPDefault, DLAmbrBps: 2e6, ULAmbrBps: 1e6}),
	)
	// The harness telco advertises 1.5/GB: admitted (under the 2.0 cap)
	// but throttled (over the 1.0 tier threshold).
	grant, _ := h.attach(t)
	if grant.Params.DLAmbrBps != 2e6 {
		t.Fatalf("throttled tier not applied: %+v", grant.Params)
	}

	// Tighten the cap below the advertised price: vetoed.
	h.brk.SetPolicy(qos.DefaultParams(), PriceCap(1.0))
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := h.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("price-capped bTelco granted")
	}
}

func TestPolicyAllowBlockLists(t *testing.T) {
	h := newHarness(t)
	h.brk.SetPolicy(qos.DefaultParams(), AllowTelcos("someone-else"))
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	if resp, _ := h.brk.HandleAuthRequest(reqT); resp.Granted {
		t.Fatal("telco outside allow list granted")
	}
	h.brk.SetPolicy(qos.DefaultParams(), BlockTelcos("h-telco"))
	reqU2, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT2, _ := h.telco.ForwardRequest(reqU2)
	if resp, _ := h.brk.HandleAuthRequest(reqT2); resp.Granted {
		t.Fatal("blocked telco granted")
	}
	h.brk.SetPolicy(qos.DefaultParams(), AllowTelcos("h-telco"))
	h.attach(t) // allowed again
}

func TestPolicyRequireLI(t *testing.T) {
	h := newHarness(t)
	h.brk.SetPolicy(qos.DefaultParams(), RequireLI())
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	if resp, _ := h.brk.HandleAuthRequest(reqT); resp.Granted {
		t.Fatal("non-LI telco granted under RequireLI")
	}
	h.telco.Terms.LawfulIntercept = true
	h.attach(t)
}

func TestPolicyPerUserAndOffPeak(t *testing.T) {
	h := newHarness(t)
	premium := qos.Params{QCI: qos.QCIWebTCPPremium, DLAmbrBps: 80e6, ULAmbrBps: 40e6}
	clock := time.Date(2026, 1, 1, 3, 0, 0, 0, time.UTC) // off-peak
	h.brk.SetPolicy(qos.DefaultParams(),
		PerUserQoS(map[string]qos.Params{h.ue.IDU: premium}),
		OffPeakBoost(func() time.Time { return clock }, 1.25),
	)
	grant, _ := h.attach(t)
	// Premium override boosted 1.25x, then clamped to the 100 Mbps cap.
	want := uint64(80e6 * 1.25)
	if grant.Params.DLAmbrBps != want {
		t.Fatalf("DL = %d, want %d", grant.Params.DLAmbrBps, want)
	}
	if grant.Params.QCI != qos.QCIWebTCPPremium {
		t.Fatalf("QCI = %d", grant.Params.QCI)
	}
}

func TestSnapshotRestore(t *testing.T) {
	h := newHarness(t)
	_, ref := h.attach(t)
	// Build up some state: reports, a mismatch, a price.
	h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 1_000_000)
	h.report(t, billing.ReporterTelco, h.telco.Key, ref, 1, 5_000_000) // inflation
	scoreBefore := h.brk.TelcoScore("h-telco")
	if scoreBefore >= 1.0 {
		t.Fatal("setup: no reputation damage")
	}

	snap := h.brk.Snapshot()

	// A fresh broker with the same identity restores everything.
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{91}, 32))
	cfg := DefaultConfig("broker.h", bk, h.ca.Public())
	cfg.Now = func() time.Time { return h.now }
	fresh := New(cfg)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.TelcoScore("h-telco"); got != scoreBefore {
		t.Fatalf("restored score %.3f != %.3f", got, scoreBefore)
	}
	if fresh.Grant(ref) == nil {
		t.Fatal("grant lost across restart")
	}
	// The restored broker keeps serving: the old user attaches again...
	h.brk = fresh
	h.attach(t)
	// ...and keeps settling the old session's reports.
	h.report(t, billing.ReporterUE, h.ueKey, ref, 2, 2_000_000)
	h.report(t, billing.ReporterTelco, h.telco.Key, ref, 2, 2_020_000)
	st, err := fresh.SettleSession(ref, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.VerifiedBytes == 0 {
		t.Fatal("settlement lost history")
	}
	// Price survived the restart (1.5/GB from the original SAP terms).
	if want := float64(st.VerifiedBytes) / 1e9 * 1.5; st.Amount != want {
		t.Fatalf("amount %.9f, want %.9f", st.Amount, want)
	}
}

func TestRestoreRejectsWrongBrokerOrVersion(t *testing.T) {
	h := newHarness(t)
	snap := h.brk.Snapshot()
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{99}, 32))
	other := New(DefaultConfig("broker.other", bk, h.ca.Public()))
	if err := other.Restore(snap); err == nil {
		t.Fatal("snapshot restored into a different broker")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 99
	if err := h.brk.Restore(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	if err := h.brk.Restore(snap[:10]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

package broker

import (
	"fmt"
	"time"

	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
)

// The paper leaves broker admission policy "open to innovation"; this
// file provides a small combinator library for building one: each Rule
// either vetoes an attachment or adjusts the QoS selection, and Chain
// folds rules left to right over the broker's base selection.

// Decision carries the evolving QoS selection through a rule chain.
type Decision struct {
	IDU   string
	IDT   string
	Terms sap.ServiceTerms
	QoS   qos.Params
}

// Rule inspects/adjusts a decision or vetoes it with an error.
type Rule func(d *Decision) error

// Chain builds a sap.Authorizer from a base QoS selection and rules.
// The final selection is clamped to the bTelco's capability.
func Chain(base qos.Params, rules ...Rule) sap.Authorizer {
	return sap.AuthorizerFunc(func(idU, idT string, terms sap.ServiceTerms) (qos.Params, error) {
		d := &Decision{IDU: idU, IDT: idT, Terms: terms, QoS: base}
		for _, r := range rules {
			if err := r(d); err != nil {
				return qos.Params{}, err
			}
		}
		return d.QoS.Clamp(terms.Cap), nil
	})
}

// PriceCap vetoes bTelcos whose advertised price exceeds max.
func PriceCap(max float64) Rule {
	return func(d *Decision) error {
		if d.Terms.PricePerGB > max {
			return fmt.Errorf("price %.2f/GB exceeds cap %.2f", d.Terms.PricePerGB, max)
		}
		return nil
	}
}

// RequireLI vetoes bTelcos that cannot perform lawful intercept (for
// jurisdictions where brokers must guarantee it).
func RequireLI() Rule {
	return func(d *Decision) error {
		if !d.Terms.LawfulIntercept {
			return fmt.Errorf("bTelco %s does not support lawful intercept", d.IDT)
		}
		return nil
	}
}

// AllowTelcos restricts admission to an explicit set (a broker running a
// curated marketplace).
func AllowTelcos(ids ...string) Rule {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(d *Decision) error {
		if !set[d.IDT] {
			return fmt.Errorf("bTelco %s not in the broker's allow list", d.IDT)
		}
		return nil
	}
}

// BlockTelcos vetoes an explicit set.
func BlockTelcos(ids ...string) Rule {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(d *Decision) error {
		if set[d.IDT] {
			return fmt.Errorf("bTelco %s is blocked by broker policy", d.IDT)
		}
		return nil
	}
}

// TierByPrice trades QoS for price: expensive bTelcos get used, but only
// for a throttled best-effort tier; cheap ones get the full selection.
func TierByPrice(threshold float64, throttled qos.Params) Rule {
	return func(d *Decision) error {
		if d.Terms.PricePerGB > threshold {
			d.QoS = throttled
		}
		return nil
	}
}

// OffPeakBoost raises the AMBR outside busy hours (the clock is injected
// for testability and virtual-time runs).
func OffPeakBoost(now func() time.Time, factor float64) Rule {
	return func(d *Decision) error {
		h := now().Hour()
		if h < 7 || h >= 23 {
			d.QoS.DLAmbrBps = uint64(float64(d.QoS.DLAmbrBps) * factor)
			d.QoS.ULAmbrBps = uint64(float64(d.QoS.ULAmbrBps) * factor)
		}
		return nil
	}
}

// PerUserQoS overrides the selection for specific users (e.g. premium
// subscribers).
func PerUserQoS(overrides map[string]qos.Params) Rule {
	return func(d *Decision) error {
		if p, ok := overrides[d.IDU]; ok {
			d.QoS = p
		}
		return nil
	}
}

// SetPolicy swaps the broker's admission rules at run time (policy is the
// broker's to innovate on; the built-in reputation/suspect/price gates
// still apply first).
func (b *Brokerd) SetPolicy(base qos.Params, rules ...Rule) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.policy = Chain(base, rules...)
	// The auth-decision cache is bypassed while a custom chain is
	// installed, but bump the epoch anyway so nothing cached under the
	// previous policy can ever be replayed.
	b.invalidateAuthCacheLocked()
}

// Package broker implements brokerd, the CellBricks broker service: the
// user's single contractual counterpart. It terminates the SAP protocol
// (authenticating its own users and on-demand bTelcos), ingests the
// verifiable billing report streams from both sides, runs the Fig. 5
// discrepancy checks, and feeds the resulting reputation back into its
// attachment-authorization policy — closing the loop the paper describes:
// "B can decide whether to authorize an attachment according to the
// reputation score of the bTelco as well as whether the user is on the
// suspect list."
package broker

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// Config configures a brokerd instance.
type Config struct {
	ID     string
	Key    *pki.KeyPair
	Anchor pki.PublicIdentity // CA trust anchor for bTelco certificates
	Now    func() time.Time   // certificate-validation clock; nil = time.Now

	// MinTelcoScore denies attachment through bTelcos whose reputation
	// fell below this threshold (0 disables the check).
	MinTelcoScore float64
	// Verifier tuning.
	VerifierConfig billing.VerifierConfig
	// BaseQoS is the broker's default qosInfo selection before clamping
	// to the bTelco's capability.
	BaseQoS qos.Params
	// MaxPricePerGB rejects bTelcos whose advertised terms exceed the
	// broker's willingness to pay (0 disables the check).
	MaxPricePerGB float64
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig(id string, key *pki.KeyPair, anchor pki.PublicIdentity) Config {
	return Config{
		ID:             id,
		Key:            key,
		Anchor:         anchor,
		MinTelcoScore:  0.5,
		VerifierConfig: billing.DefaultVerifierConfig(),
		BaseQoS:        qos.DefaultParams(),
	}
}

// Brokerd is a running broker instance.
type Brokerd struct {
	cfg Config
	sap *sap.BrokerState

	mu            sync.Mutex
	verifier      *billing.Verifier
	users         map[string]pki.PublicIdentity // idU -> baseband/report key
	telcoKeys     map[string]pki.PublicIdentity // idT -> certified key
	grants        map[string]*sap.GrantRecord   // URef -> grant
	prices        map[string]float64            // URef -> agreed price per GB
	reports       map[string]map[billing.Reporter][]*billing.Report
	qosViolations map[string]int // idT -> QoS incident count
	policy        sap.Authorizer // optional rule chain (see policy.go)
	shedHint      time.Duration  // non-zero = degraded: shed attach load
	shedCount     uint64         // auth requests shed while degraded

	// Dynamic quarantine (see quarantine.go); nil quarCfg = disabled.
	quarCfg    *QuarantineConfig
	quarClock  func() time.Duration
	quar       map[string]*QuarantineEntry
	quarNotify func(idT string, entered bool, score float64)

	// Auth-decision cache (authcache.go); authCacheMax == 0 = disabled.
	authCache    map[authCacheKey]authCacheEntry
	authOrder    []authCacheKey
	authSeq      uint64
	authCacheMax int
	authHits     uint64
	authMisses   uint64
	authInvals   uint64

	// Admission-control shedder (admission.go); nil = disabled.
	adm *admissionState

	// Session references already consumed by a fast-path resume
	// (resume.go). Like the SAP nonce cache this is replay protection,
	// not durable state: a restart re-arms it empty.
	resumed map[string]bool
}

// New creates a brokerd.
func New(cfg Config) *Brokerd {
	b := &Brokerd{
		cfg:           cfg,
		verifier:      billing.NewVerifier(cfg.VerifierConfig),
		users:         make(map[string]pki.PublicIdentity),
		telcoKeys:     make(map[string]pki.PublicIdentity),
		grants:        make(map[string]*sap.GrantRecord),
		prices:        make(map[string]float64),
		reports:       make(map[string]map[billing.Reporter][]*billing.Report),
		qosViolations: make(map[string]int),
		resumed:       make(map[string]bool),
	}
	b.sap = sap.NewBrokerState(cfg.ID, cfg.Key, cfg.Anchor, sap.AuthorizerFunc(b.authorize), cfg.Now)
	return b
}

// ID returns the broker identifier.
func (b *Brokerd) ID() string { return b.cfg.ID }

// Public returns the broker's public identity for distribution to UEs and
// bTelcos.
func (b *Brokerd) Public() pki.PublicIdentity { return b.cfg.Key.Public() }

// RegisterUser issues membership for a UE key, returning its idU. The
// same key signs the UE's baseband traffic reports.
func (b *Brokerd) RegisterUser(pub pki.PublicIdentity) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.sap.RegisterUser(pub)
	b.users[id] = pub
	return id
}

// RevokeUser invalidates a user's key.
func (b *Brokerd) RevokeUser(idU string) {
	b.sap.RevokeUser(idU)
	b.mu.Lock()
	b.invalidateAuthCacheLocked()
	b.mu.Unlock()
}

// authorize is the broker's admission policy, run inside SAP request
// handling: reputation gate, suspect gate, price gate, then QoS selection
// clamped to the bTelco's capability.
func (b *Brokerd) authorize(idU, idT string, terms sap.ServiceTerms) (qos.Params, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.authorizeLocked(idU, idT, terms)
}

// authorizeLocked is authorize with the broker lock already held — the
// entry point the batch commit phase uses. It consults the auth-decision
// cache (grants only, current epoch only; bypassed while a custom
// policy chain is installed) before falling through to the full
// decision.
func (b *Brokerd) authorizeLocked(idU, idT string, terms sap.ServiceTerms) (qos.Params, error) {
	useCache := b.authCacheMax > 0 && b.policy == nil
	var key authCacheKey
	if useCache {
		key = authCacheKey{idU: idU, idT: idT, terms: terms.Fingerprint()}
		if p, ok := b.authCacheLookupLocked(key); ok {
			return p, nil
		}
	}
	params, err := b.decideLocked(idU, idT, terms)
	if err == nil && useCache {
		b.authCacheStoreLocked(key, params)
	}
	return params, err
}

// decideLocked is the uncached policy decision. Mutex held by caller.
func (b *Brokerd) decideLocked(idU, idT string, terms sap.ServiceTerms) (qos.Params, error) {
	if b.cfg.MinTelcoScore > 0 {
		if score := b.verifier.TelcoScore(idT); score < b.cfg.MinTelcoScore {
			return qos.Params{}, fmt.Errorf("bTelco %s reputation %.2f below %.2f", idT, score, b.cfg.MinTelcoScore)
		}
	}
	if b.verifier.Suspect(idU) {
		return qos.Params{}, fmt.Errorf("user %s on suspect list", idU)
	}
	if b.cfg.MaxPricePerGB > 0 && terms.PricePerGB > b.cfg.MaxPricePerGB {
		return qos.Params{}, fmt.Errorf("price %.2f/GB exceeds limit %.2f", terms.PricePerGB, b.cfg.MaxPricePerGB)
	}
	base := b.cfg.BaseQoS
	if base.QCI == 0 {
		base = qos.DefaultParams()
	}
	// The quarantine rule always runs: the hard-block veto applies even
	// ahead of a custom policy chain (which may additionally include
	// QuarantineRule for the trial-phase demotion).
	d := &Decision{IDU: idU, IDT: idT, Terms: terms, QoS: base}
	if err := b.QuarantineRule()(d); err != nil {
		return qos.Params{}, err
	}
	if b.policy != nil {
		return b.policy.Authorize(idU, idT, terms)
	}
	return d.QoS.Clamp(terms.Cap), nil
}

// ShedLoad puts the broker in degraded mode: attach authorizations are
// refused with a typed *wire.RetryAfterError carrying retryAfter as the
// backoff hint, instead of queueing work a recovering instance cannot
// serve. Report ingestion keeps running — reports are cheap, idempotent
// per (session, seq), and losing them would open a billing gap.
func (b *Brokerd) ShedLoad(retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shedHint = retryAfter
}

// Resume leaves degraded mode.
func (b *Brokerd) Resume() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shedHint = 0
}

// Degraded reports whether the broker is shedding attach load.
func (b *Brokerd) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shedHint > 0
}

// ShedCount reports how many auth requests were refused while degraded.
func (b *Brokerd) ShedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shedCount
}

// HandleAuthRequest processes one SAP request from a bTelco. On grant it
// binds the session for billing alignment and remembers the bTelco's
// certified key for report verification. A degraded broker sheds the
// request with a typed retry-after error before any crypto runs, and an
// armed admission shedder (EnableAdmission) charges one attach next.
func (b *Brokerd) HandleAuthRequest(req *sap.AuthReqT) (*sap.AuthResp, error) {
	b.mu.Lock()
	if hint := b.shedHint; hint > 0 {
		b.shedCount++
		b.mu.Unlock()
		mtr.attachShed.Add(1)
		return nil, &wire.RetryAfterError{After: hint}
	}
	b.mu.Unlock()
	if err := b.AdmitAttach(0); err != nil {
		return nil, err
	}
	return b.handleAuthCore(req)
}

// handleAuthCore runs the SAP handshake plus grant bookkeeping with the
// degraded-mode and admission gates already passed — the entry point the
// Batcher's serial flush uses (admission was charged at enqueue).
func (b *Brokerd) handleAuthCore(req *sap.AuthReqT) (*sap.AuthResp, error) {
	resp, rec, err := b.sap.HandleRequest(req)
	if err != nil {
		mtr.attachDenied.Add(1)
		return nil, err
	}
	// Piggyback the requester's current reputation on every reply —
	// grant or denial — so scores propagate into SAP offers.
	resp.TelcoScore = b.TelcoScore(req.IDT)
	mtr.attachGranted.Add(1)
	if rec != nil {
		b.mu.Lock()
		b.grants[rec.URef] = rec
		b.prices[rec.URef] = req.Terms.PricePerGB
		b.telcoKeys[rec.IDT] = req.Cert.Identity
		b.verifier.BindSession(rec.URef, rec.IDU, rec.IDT)
		b.mu.Unlock()
	}
	return resp, nil
}

// Errors from report ingestion.
var (
	ErrUnknownSession = errors.New("broker: report for unknown session")
	ErrBadReporterKey = errors.New("broker: report signature does not match registered key")
)

// HandleReport ingests one sealed traffic report from either side. The
// broker decrypts it with its own key, identifies the session and
// reporter, verifies the signature against the key it expects for that
// reporter, and runs the discrepancy check when the pair completes.
func (b *Brokerd) HandleReport(env *billing.SealedReport) (*billing.Mismatch, error) {
	body, err := b.cfg.Key.Open(env.Sealed)
	if err != nil {
		return nil, fmt.Errorf("broker: report undecryptable: %w", err)
	}
	r, err := billing.UnmarshalReport(body)
	if err != nil {
		return nil, err
	}
	// One lock acquisition resolves the session and the expected signer;
	// the Ed25519 verification itself runs outside the lock so concurrent
	// report streams don't serialize on the crypto.
	b.mu.Lock()
	rec := b.grants[r.SessionRef]
	var signer pki.PublicIdentity
	if rec != nil {
		switch r.Reporter {
		case billing.ReporterUE:
			signer = b.users[rec.IDU]
		case billing.ReporterTelco:
			signer = b.telcoKeys[rec.IDT]
		}
	}
	b.mu.Unlock()
	if rec == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, r.SessionRef)
	}
	if err := signer.Verify(env.Sealed, env.Sig); err != nil {
		return nil, ErrBadReporterKey
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	byRep := b.reports[r.SessionRef]
	if byRep == nil {
		byRep = make(map[billing.Reporter][]*billing.Report)
		b.reports[r.SessionRef] = byRep
	}
	byRep[r.Reporter] = append(byRep[r.Reporter], r)
	if r.Reporter == billing.ReporterUE {
		b.checkQoS(rec, r)
	}
	mtr.reports.Add(1)
	mm, err := b.verifier.Ingest(r)
	if mm != nil {
		mtr.mismatches.Add(1)
	}
	if isReplay(err) {
		mtr.replays.Add(1)
	}
	// Evidence moved the bTelco's reputation (and possibly the user
	// suspect list): cached auth decisions predate it.
	if mm != nil || isReplay(err) {
		b.invalidateAuthCacheLocked()
	}
	// Any ingest can move the bTelco's reputation (pass, mismatch, or
	// replay penalty): re-evaluate quarantine while the lock is held.
	b.reviewTelcoLocked(rec.IDT, mm != nil || isReplay(err))
	return mm, err
}

// isReplay reports whether an ingest error is the replay rejection.
func isReplay(err error) bool { return errors.Is(err, billing.ErrReplayedReport) }

// qosViolationFactor is how far beyond the class target a UE-attested
// measurement must fall before the broker counts a QoS violation (ample
// slack for radio variability).
const qosViolationFactor = 3.0

// checkQoS compares the UE's attested quality metrics against the
// standardized profile of the QCI the broker granted — the reputation
// system extended to QoS enforcement. Mutex held by caller.
func (b *Brokerd) checkQoS(rec *sap.GrantRecord, r *billing.Report) {
	prof, ok := qos.Lookup(rec.QoS.QCI)
	if !ok {
		return
	}
	degree := 0.0
	if budget := float64(prof.DelayBudget); budget > 0 && r.QoS.DLDelayMs > budget*qosViolationFactor {
		degree += math.Min(r.QoS.DLDelayMs/(budget*qosViolationFactor)-1, 1)
	}
	if target := prof.LossRate; target > 0 && r.QoS.DLLossRate > math.Max(target*qosViolationFactor, 0.05) {
		degree += math.Min(r.QoS.DLLossRate/math.Max(target*qosViolationFactor, 0.05)-1, 1)
	}
	if degree > 0 {
		b.qosViolations[rec.IDT]++
		b.verifier.PenalizeQoS(rec.IDT, math.Min(degree, 1))
		b.invalidateAuthCacheLocked()
	}
}

// QoSViolations reports how many QoS-violation incidents the broker has
// recorded against a bTelco.
func (b *Brokerd) QoSViolations(idT string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.qosViolations[idT]
}

// TelcoScore exposes a bTelco's reputation.
func (b *Brokerd) TelcoScore(idT string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.verifier.TelcoScore(idT)
}

// Suspect reports whether a user is on the suspect list.
func (b *Brokerd) Suspect(idU string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.verifier.Suspect(idU)
}

// Mismatches returns all recorded discrepancy incidents.
func (b *Brokerd) Mismatches() []billing.Mismatch {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.verifier.Mismatches()
}

// Grant returns the grant record for a session reference.
func (b *Brokerd) Grant(uref string) *sap.GrantRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.grants[uref]
}

// SettleSession computes the payout owed to the bTelco for a session from
// the aligned report pairs received so far, at the price agreed in the
// SAP exchange.
func (b *Brokerd) SettleSession(uref string, cycle time.Duration) (billing.Settlement, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	byRep := b.reports[uref]
	if byRep == nil {
		return billing.Settlement{}, fmt.Errorf("%w: %s", ErrUnknownSession, uref)
	}
	pairs := billing.AlignByTime(byRep[billing.ReporterUE], byRep[billing.ReporterTelco], cycle)
	// Re-evaluate mismatch flags against the verifier's config for the
	// settlement view.
	eps := b.cfg.VerifierConfig.Epsilon
	slack := float64(b.cfg.VerifierConfig.SlackBytes)
	if slack == 0 {
		slack = 1500
	}
	for i := range pairs {
		th := float64(pairs[i].UE.DLBytes)*(pairs[i].UE.QoS.DLLossRate+eps) + slack
		diff := float64(pairs[i].Telco.DLBytes) - float64(pairs[i].UE.DLBytes)
		if diff < 0 {
			diff = -diff
		}
		pairs[i].Mismatched = diff > th
	}
	return b.verifier.Settle(uref, pairs, b.prices[uref]), nil
}

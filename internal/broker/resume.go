package broker

import (
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// HandleResume processes one SAP fast-path re-attach (see sap/resume.go
// for the protocol). The entry gates mirror HandleAuthRequest — a
// degraded broker sheds with its retry-after hint, then admission
// control charges one attach — before the core runs. On a grant the
// successor session is bound for billing alignment exactly like a full
// handshake's grant.
func (b *Brokerd) HandleResume(req *sap.ResumeReq) (*sap.ResumeResp, error) {
	b.mu.Lock()
	if hint := b.shedHint; hint > 0 {
		b.shedCount++
		b.mu.Unlock()
		mtr.attachShed.Add(1)
		return nil, &wire.RetryAfterError{After: hint}
	}
	b.mu.Unlock()
	if err := b.AdmitAttach(0); err != nil {
		return nil, err
	}
	return b.handleResumeCore(req)
}

// handleResumeCore runs the resume decision with the entry gates already
// passed — the entry point the Batcher's serial flush uses (admission
// was charged at enqueue). Denial causes mirror the full handshake's
// style; the session reference is single-use (a replayed ResumeReq is
// refused), and the authorization policy re-runs so a quarantined or
// score-gated bTelco is denied exactly as a full attach would be.
func (b *Brokerd) handleResumeCore(req *sap.ResumeReq) (*sap.ResumeResp, error) {
	if req == nil {
		return nil, sap.ErrBadRequest
	}
	b.mu.Lock()
	rec := b.grants[req.URef]
	b.mu.Unlock()
	// The MAC check is the only crypto on the path; keep it outside the
	// decision lock like report-signature verification.
	var macErr error
	if rec != nil {
		macErr = sap.VerifyResumeReq(req, rec.SS)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	score := b.verifier.TelcoScore(req.IDT)
	deny := func(cause string) (*sap.ResumeResp, error) {
		mtr.resumeDenied.Add(1)
		return sap.DenyResume(cause, score), nil
	}
	switch {
	case rec == nil:
		return deny("unknown session reference")
	case rec.IDT != req.IDT:
		return deny("bTelco identity mismatch")
	case b.resumed[req.URef]:
		return deny("session reference already resumed")
	case macErr != nil:
		return deny("resume MAC invalid")
	}
	params, err := b.authorizeLocked(rec.IDU, req.IDT, rec.Terms)
	if err != nil {
		return deny("authorization denied: " + err.Error())
	}
	resp, ss2, uref2 := sap.GrantResume(req, rec.SS, params, score)
	b.resumed[req.URef] = true
	rec2 := &sap.GrantRecord{URef: uref2, IDU: rec.IDU, IDT: rec.IDT, SS: ss2, Terms: rec.Terms, QoS: params}
	b.grants[uref2] = rec2
	b.prices[uref2] = b.prices[req.URef]
	b.verifier.BindSession(uref2, rec2.IDU, rec2.IDT)
	mtr.resumeGranted.Add(1)
	return resp, nil
}

package broker

import (
	"cellbricks/internal/obs"
)

// Telemetry handles for brokerd. Attach authorization and report
// ingestion run under the broker's own mutex, so direct atomic adds here
// are negligible next to the Ed25519 work on the same path.
var mtr struct {
	attachGranted *obs.Counter
	attachDenied  *obs.Counter
	attachShed    *obs.Counter
	reports       *obs.Counter
	mismatches    *obs.Counter
	snapshots     *obs.Counter
	restores      *obs.Counter

	replays          *obs.Counter
	watchdogEvidence *obs.Counter
	sloEvidence      *obs.Counter
	quarEnter        *obs.Counter
	quarExit         *obs.Counter
	quarDenied       *obs.Counter

	authCacheHits      *obs.Counter
	authCacheMisses    *obs.Counter
	authCacheInvals    *obs.Counter
	admissionRateShed  *obs.Counter
	admissionQueueShed *obs.Counter
	batchFlushes       *obs.Counter
	batchItems         *obs.Counter
	resumeGranted      *obs.Counter
	resumeDenied       *obs.Counter
}

func init() { SetMetricsEnabled(true) }

// SetMetricsEnabled installs (true) or removes (false) the package's
// handles in the default registry.
func SetMetricsEnabled(on bool) {
	if !on {
		mtr.attachGranted, mtr.attachDenied, mtr.attachShed = nil, nil, nil
		mtr.reports, mtr.mismatches = nil, nil
		mtr.snapshots, mtr.restores = nil, nil
		mtr.replays, mtr.watchdogEvidence, mtr.sloEvidence = nil, nil, nil
		mtr.quarEnter, mtr.quarExit, mtr.quarDenied = nil, nil, nil
		mtr.authCacheHits, mtr.authCacheMisses, mtr.authCacheInvals = nil, nil, nil
		mtr.admissionRateShed, mtr.admissionQueueShed = nil, nil
		mtr.batchFlushes, mtr.batchItems = nil, nil
		mtr.resumeGranted, mtr.resumeDenied = nil, nil
		return
	}
	r := obs.Default()
	mtr.attachGranted = r.Counter("broker_attach_granted_total", "SAP auth requests granted")
	mtr.attachDenied = r.Counter("broker_attach_denied_total", "SAP auth requests denied by policy or crypto")
	mtr.attachShed = r.Counter("broker_attach_shed_total", "SAP auth requests shed while degraded")
	mtr.reports = r.Counter("broker_reports_ingested_total", "sealed billing reports accepted")
	mtr.mismatches = r.Counter("broker_report_mismatches_total", "billing discrepancy incidents recorded")
	mtr.snapshots = r.Counter("broker_snapshots_total", "durable-state snapshots taken")
	mtr.restores = r.Counter("broker_restores_total", "snapshots restored into a broker")
	mtr.replays = r.Counter("broker_report_replays_total", "replayed/stale billing reports rejected")
	mtr.watchdogEvidence = r.Counter("broker_watchdog_evidence_total", "UE no-goodput watchdog attestations ingested")
	mtr.sloEvidence = r.Counter("broker_slo_evidence_total", "SLO breach-enter signals ingested as misconduct evidence")
	mtr.quarEnter = r.Counter("broker_quarantine_enter_total", "bTelco quarantine entries")
	mtr.quarExit = r.Counter("broker_quarantine_exit_total", "bTelco quarantine full exits")
	mtr.quarDenied = r.Counter("broker_quarantine_denied_total", "attaches denied because the bTelco is quarantined")
	mtr.authCacheHits = r.Counter("broker_authcache_hits_total", "auth-decision cache hits")
	mtr.authCacheMisses = r.Counter("broker_authcache_misses_total", "auth-decision cache misses (including stale epochs)")
	mtr.authCacheInvals = r.Counter("broker_authcache_invalidations_total", "auth-decision cache epoch bumps")
	mtr.admissionRateShed = r.Counter("broker_admission_rate_shed_total", "attaches shed by the token-bucket rate gate")
	mtr.admissionQueueShed = r.Counter("broker_admission_queue_shed_total", "attaches shed by the queue-depth gate")
	mtr.batchFlushes = r.Counter("broker_batch_flushes_total", "batcher flush windows processed")
	mtr.batchItems = r.Counter("broker_batch_items_total", "control-plane items enqueued into the batcher")
	mtr.resumeGranted = r.Counter("broker_resume_granted_total", "fast-path session resumptions granted")
	mtr.resumeDenied = r.Counter("broker_resume_denied_total", "fast-path session resumptions denied")
}

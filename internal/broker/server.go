package broker

import (
	"fmt"

	"cellbricks/internal/billing"
	"cellbricks/internal/obs"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// Server exposes a Brokerd over the wire protocol (the real-socket
// deployment: brokerd runs in the cloud, AGWs and UEs reach it over TCP).
type Server struct {
	B   *Brokerd
	srv *wire.Server

	tr  *obs.Tracer
	ids *obs.SpanIDSource
}

// Serve starts the broker's wire server on addr.
func Serve(b *Brokerd, addr string) (*Server, error) {
	return ServeTraced(b, addr, nil, nil)
}

// ServeTraced starts the broker's wire server with causal tracing: requests
// whose frame header carries a span context get a broker-side child span.
// tr/ids may be nil, in which case this is identical to Serve.
func ServeTraced(b *Brokerd, addr string, tr *obs.Tracer, ids *obs.SpanIDSource) (*Server, error) {
	s := &Server{B: b, tr: tr, ids: ids}
	srv, err := wire.NewServerCtx(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// span records a broker-side span for a traced request, bracketing f.
func (s *Server) span(sc obs.SpanContext, name string, f func() error) error {
	if !sc.Valid() || s.tr == nil || s.ids == nil {
		return f()
	}
	start := s.tr.Now()
	err := f()
	args := map[string]string(nil)
	if err != nil {
		args = map[string]string{"error": err.Error()}
	}
	s.tr.SpanCtx(sc.Child(s.ids.Next()), "broker", name, start, s.tr.Now()-start, args)
	return err
}

func (s *Server) handle(sc obs.SpanContext, msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case wire.TypeSAPAuthRequest:
		req, err := sap.UnmarshalAuthReqT(payload)
		if err != nil {
			return 0, nil, err
		}
		var resp *sap.AuthResp
		if err := s.span(sc, "handle-auth", func() error {
			var e error
			resp, e = s.B.HandleAuthRequest(req)
			return e
		}); err != nil {
			return 0, nil, err
		}
		return wire.TypeSAPAuthResponse, resp.Marshal(), nil
	case wire.TypeReportUpload:
		env, err := billing.UnmarshalSealedReport(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.span(sc, "ingest-report", func() error {
			_, e := s.B.HandleReport(env)
			return e
		}); err != nil {
			return 0, nil, err
		}
		return wire.TypeReportAck, nil, nil
	default:
		return 0, nil, fmt.Errorf("broker: unexpected message type %d", msgType)
	}
}

// Client is a wire-protocol client implementing epc.BrokerClient plus
// report upload; used by AGWs and (for UE reports) by the UE's data path.
type Client struct{ C *wire.Client }

// DialClient connects to a brokerd server.
func DialClient(addr string) (*Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{C: c}, nil
}

// Authenticate implements the SAP round trip.
func (c *Client) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	return c.AuthenticateCtx(obs.SpanContext{}, req)
}

// AuthenticateCtx is Authenticate with a span context propagated in the
// frame header (implements epc.BrokerClientCtx).
func (c *Client) AuthenticateCtx(sc obs.SpanContext, req *sap.AuthReqT) (*sap.AuthResp, error) {
	_, reply, err := c.C.CallCtx(wire.TypeSAPAuthRequest, sc, req.Marshal())
	if err != nil {
		return nil, err
	}
	return sap.UnmarshalAuthResp(reply)
}

// UploadReport delivers one sealed traffic report.
func (c *Client) UploadReport(env *billing.SealedReport) error {
	return c.UploadReportCtx(obs.SpanContext{}, env)
}

// UploadReportCtx is UploadReport with a span context in the frame header.
func (c *Client) UploadReportCtx(sc obs.SpanContext, env *billing.SealedReport) error {
	_, _, err := c.C.CallCtx(wire.TypeReportUpload, sc, env.Marshal())
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.C.Close() }

package broker

import (
	"fmt"

	"cellbricks/internal/billing"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// Server exposes a Brokerd over the wire protocol (the real-socket
// deployment: brokerd runs in the cloud, AGWs and UEs reach it over TCP).
type Server struct {
	B   *Brokerd
	srv *wire.Server
}

// Serve starts the broker's wire server on addr.
func Serve(b *Brokerd, addr string) (*Server, error) {
	s := &Server{B: b}
	srv, err := wire.NewServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case wire.TypeSAPAuthRequest:
		req, err := sap.UnmarshalAuthReqT(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.B.HandleAuthRequest(req)
		if err != nil {
			return 0, nil, err
		}
		return wire.TypeSAPAuthResponse, resp.Marshal(), nil
	case wire.TypeReportUpload:
		env, err := billing.UnmarshalSealedReport(payload)
		if err != nil {
			return 0, nil, err
		}
		if _, err := s.B.HandleReport(env); err != nil {
			return 0, nil, err
		}
		return wire.TypeReportAck, nil, nil
	default:
		return 0, nil, fmt.Errorf("broker: unexpected message type %d", msgType)
	}
}

// Client is a wire-protocol client implementing epc.BrokerClient plus
// report upload; used by AGWs and (for UE reports) by the UE's data path.
type Client struct{ C *wire.Client }

// DialClient connects to a brokerd server.
func DialClient(addr string) (*Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{C: c}, nil
}

// Authenticate implements the SAP round trip.
func (c *Client) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	_, reply, err := c.C.Call(wire.TypeSAPAuthRequest, req.Marshal())
	if err != nil {
		return nil, err
	}
	return sap.UnmarshalAuthResp(reply)
}

// UploadReport delivers one sealed traffic report.
func (c *Client) UploadReport(env *billing.SealedReport) error {
	_, _, err := c.C.Call(wire.TypeReportUpload, env.Marshal())
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.C.Close() }

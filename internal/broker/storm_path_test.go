package broker

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// --- auth-decision cache ---

func TestAuthCacheHitOnRepeatAttach(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAuthCache(16)
	h.attach(t) // first evaluation: miss, stored
	h.attach(t) // same (idU, idT, terms): hit
	hits, misses, _ := h.brk.AuthCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestAuthCacheInvalidatedByEvidence(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAuthCache(16)
	_, ref := h.attach(t)
	h.attach(t)
	_, _, invalsBefore := h.brk.AuthCacheStats()
	// A billing mismatch is reputation-relevant: the epoch must move.
	h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 1_000_000)
	h.report(t, billing.ReporterTelco, h.telco.Key, ref, 1, 9_000_000)
	_, _, invalsAfter := h.brk.AuthCacheStats()
	if invalsAfter <= invalsBefore {
		t.Fatal("mismatch evidence did not bump the cache epoch")
	}
	// The next attach re-evaluates against the damaged score.
	hitsBefore, _, _ := h.brk.AuthCacheStats()
	h.attach(t) // score dipped but still above the 0.5 gate after one incident
	hitsAfter, _, _ := h.brk.AuthCacheStats()
	if hitsAfter != hitsBefore {
		t.Fatal("stale cached grant served after evidence")
	}
}

func TestAuthCacheNeverCachesDenials(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAuthCache(16)
	_, ref := h.attach(t)
	// Tank the score below the 0.5 reputation gate.
	for seq := uint32(1); seq <= 10; seq++ {
		h.report(t, billing.ReporterUE, h.ueKey, ref, seq, 1_000_000)
		h.report(t, billing.ReporterTelco, h.telco.Key, ref, seq, 5_000_000)
	}
	deny := func() {
		t.Helper()
		reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
		reqT, _ := h.telco.ForwardRequest(reqU)
		resp, err := h.brk.HandleAuthRequest(reqT)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Granted {
			t.Fatal("disreputable bTelco granted")
		}
	}
	deny()
	hits1, _, _ := h.brk.AuthCacheStats()
	deny() // must re-evaluate, not replay a cached verdict
	hits2, _, _ := h.brk.AuthCacheStats()
	if hits2 != hits1 {
		t.Fatal("denial was served from cache")
	}
}

func TestAuthCacheBypassedUnderCustomPolicy(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAuthCache(16)
	h.brk.SetPolicy(qos.DefaultParams(), PriceCap(2.0))
	h.attach(t)
	h.attach(t)
	hits, misses, _ := h.brk.AuthCacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("cache consulted under custom policy: hits=%d misses=%d", hits, misses)
	}
}

func TestAuthCacheFIFOEviction(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAuthCache(1)
	h.attach(t)                    // price 1.5: miss, stored
	h.attach(t)                    // hit
	h.telco.Terms.PricePerGB = 1.6 // new fingerprint
	h.attach(t)                    // miss, stored, evicts the 1.5 entry
	h.telco.Terms.PricePerGB = 1.5
	h.attach(t) // miss again: it was evicted
	hits, misses, _ := h.brk.AuthCacheStats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
}

// --- admission control ---

func TestAdmissionRateGate(t *testing.T) {
	h := newHarness(t)
	var now time.Duration
	h.brk.EnableAdmission(AdmissionConfig{Rate: 1, Burst: 2, RetryAfter: 500 * time.Millisecond},
		func() time.Duration { return now })
	if err := h.brk.AdmitAttach(0); err != nil {
		t.Fatal(err)
	}
	if err := h.brk.AdmitAttach(0); err != nil {
		t.Fatal(err)
	}
	err := h.brk.AdmitAttach(0) // bucket drained
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) || ra.After != 500*time.Millisecond {
		t.Fatalf("err=%v, want typed 500ms hint", err)
	}
	now += time.Second // refills one token
	if err := h.brk.AdmitAttach(0); err != nil {
		t.Fatalf("post-refill: %v", err)
	}
	admitted, rateSheds, queueSheds := h.brk.AdmissionStats()
	if admitted != 3 || rateSheds != 1 || queueSheds != 0 {
		t.Fatalf("stats = %d/%d/%d", admitted, rateSheds, queueSheds)
	}
}

func TestAdmissionQueueGateDoublesHint(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAdmission(AdmissionConfig{Rate: 1000, Burst: 1000, MaxQueue: 4, RetryAfter: time.Second},
		func() time.Duration { return 0 })
	if err := h.brk.AdmitAttach(3); err != nil {
		t.Fatal(err)
	}
	err := h.brk.AdmitAttach(4)
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) || ra.After != 2*time.Second {
		t.Fatalf("err=%v, want doubled 2s hint", err)
	}
	// The queue gate outranks available tokens.
	_, _, queueSheds := h.brk.AdmissionStats()
	if queueSheds != 1 {
		t.Fatalf("queueSheds=%d", queueSheds)
	}
}

func TestAdmissionGatesAttachPath(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableAdmission(AdmissionConfig{Rate: 1, Burst: 1}, func() time.Duration { return 0 })
	h.attach(t) // consumes the only token
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	_, err := h.brk.HandleAuthRequest(reqT)
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("second attach err=%v, want retry-after", err)
	}
}

// --- session resumption at the broker ---

// resumeTicket runs a full attach and returns the UE-side ticket plus the
// grant the serving bTelco holds.
func (h *harness) resumeTicket(t *testing.T) (*sap.ResumeSession, *sap.Grant) {
	t.Helper()
	grant, _ := h.attach(t)
	return &sap.ResumeSession{IDT: h.telco.IDT, URef: grant.URef, SS: grant.SS}, grant
}

func TestBrokerResumeFastPath(t *testing.T) {
	h := newHarness(t)
	tkt, grant := h.resumeTicket(t)
	req, err := tkt.NewResumeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.telco.ForwardResume(req, grant.SS); err != nil {
		t.Fatal(err)
	}
	resp, err := h.brk.HandleResume(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Fatalf("resume denied: %s", resp.Cause)
	}
	next, _, err := tkt.HandleResumeResponse(req, resp)
	if err != nil {
		t.Fatal(err)
	}
	// The successor grant is live broker state: recorded, price carried,
	// bound for billing.
	rec := h.brk.Grant(next.URef)
	if rec == nil || rec.IDT != h.telco.IDT {
		t.Fatalf("successor grant record = %+v", rec)
	}
	if h.brk.prices[next.URef] != h.brk.prices[grant.URef] {
		t.Fatal("resume changed the agreed price")
	}
	// QoS pinned to the original grant's params.
	if resp.Params != grant.Params {
		t.Fatalf("resume params %+v != original %+v", resp.Params, grant.Params)
	}
	// Billing works against the successor session.
	if m := h.report(t, billing.ReporterUE, h.ueKey, next.URef, 1, 1000); m != nil {
		t.Fatalf("honest report on resumed session flagged: %+v", m)
	}
}

func TestBrokerResumeSingleUse(t *testing.T) {
	h := newHarness(t)
	tkt, grant := h.resumeTicket(t)
	req, _ := tkt.NewResumeRequest()
	if err := h.telco.ForwardResume(req, grant.SS); err != nil {
		t.Fatal(err)
	}
	if resp, err := h.brk.HandleResume(req); err != nil || !resp.Granted {
		t.Fatalf("first resume: %v granted=%v", err, resp.Granted)
	}
	resp2, err := h.brk.HandleResume(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Granted || !strings.Contains(resp2.Cause, "already resumed") {
		t.Fatalf("replayed resume: granted=%v cause=%q", resp2.Granted, resp2.Cause)
	}
}

func TestBrokerResumeDenyLadder(t *testing.T) {
	h := newHarness(t)
	tkt, grant := h.resumeTicket(t)

	// Unknown reference.
	bogus := &sap.ResumeSession{IDT: h.telco.IDT, URef: "nope", SS: grant.SS}
	req, _ := bogus.NewResumeRequest()
	resp, err := h.brk.HandleResume(req)
	if err != nil || resp.Granted || !strings.Contains(resp.Cause, "unknown session") {
		t.Fatalf("unknown ref: %v %+v", err, resp)
	}

	// Wrong bTelco claiming the session.
	req2, _ := tkt.NewResumeRequest()
	req2.IDT = "some-other-telco"
	req2.MACU = nil // MACs are recomputed below the identity check anyway
	resp, err = h.brk.HandleResume(req2)
	if err != nil || resp.Granted || !strings.Contains(resp.Cause, "identity mismatch") {
		t.Fatalf("wrong telco: %v %+v", err, resp)
	}

	// Bad MAC.
	req3, _ := tkt.NewResumeRequest()
	if err := h.telco.ForwardResume(req3, grant.SS); err != nil {
		t.Fatal(err)
	}
	req3.MACT[0] ^= 1
	resp, err = h.brk.HandleResume(req3)
	if err != nil || resp.Granted || !strings.Contains(resp.Cause, "MAC invalid") {
		t.Fatalf("bad MAC: %v %+v", err, resp)
	}
}

func TestBrokerResumeReRunsPolicy(t *testing.T) {
	h := newHarness(t)
	tkt, grant := h.resumeTicket(t)
	ref := grant.URef
	// Tank the score below the reputation gate after the grant.
	for seq := uint32(1); seq <= 10; seq++ {
		h.report(t, billing.ReporterUE, h.ueKey, ref, seq, 1_000_000)
		h.report(t, billing.ReporterTelco, h.telco.Key, ref, seq, 5_000_000)
	}
	req, _ := tkt.NewResumeRequest()
	if err := h.telco.ForwardResume(req, grant.SS); err != nil {
		t.Fatal(err)
	}
	resp, err := h.brk.HandleResume(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("resume granted through a bTelco a full attach would refuse")
	}
	if !strings.Contains(resp.Cause, "authorization denied") {
		t.Fatalf("cause = %q", resp.Cause)
	}
}

func TestBrokerResumeRespectsShedding(t *testing.T) {
	h := newHarness(t)
	tkt, grant := h.resumeTicket(t)
	h.brk.ShedLoad(3 * time.Second)
	req, _ := tkt.NewResumeRequest()
	if err := h.telco.ForwardResume(req, grant.SS); err != nil {
		t.Fatal(err)
	}
	_, err := h.brk.HandleResume(req)
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) || ra.After != 3*time.Second {
		t.Fatalf("degraded resume err=%v, want 3s hint", err)
	}
}

// --- batcher: serial vs pipelined equivalence ---

// stormMix enqueues an identical control-plane mix into bat against the
// harness's broker: full attaches, a resume (with its replay), honest and
// inflated report pairs for the pre-existing session ref.
func stormMix(t *testing.T, h *harness, bat *Batcher, ref string, tkt *sap.ResumeSession, grantSS [32]byte) {
	t.Helper()
	for i := 0; i < 3; i++ {
		reqU, _, err := h.ue.NewAttachRequest(h.telco.IDT)
		if err != nil {
			t.Fatal(err)
		}
		reqT, err := h.telco.ForwardRequest(reqU)
		if err != nil {
			t.Fatal(err)
		}
		bat.EnqueueAuth(reqT)
	}
	res, err := tkt.NewResumeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.telco.ForwardResume(res, grantSS); err != nil {
		t.Fatal(err)
	}
	bat.EnqueueResume(res)
	res2, _ := tkt.NewResumeRequest()
	if err := h.telco.ForwardResume(res2, grantSS); err != nil {
		t.Fatal(err)
	}
	bat.EnqueueResume(res2) // same uref: must be refused as already resumed
	seal := func(rep billing.Reporter, signer *pki.KeyPair, seq uint32, dl uint64) {
		r := &billing.Report{SessionRef: ref, Reporter: rep, Seq: seq,
			Rel: time.Duration(seq) * 30 * time.Second, DLBytes: dl}
		env, err := billing.Seal(r, signer, h.brk.Public())
		if err != nil {
			t.Fatal(err)
		}
		bat.EnqueueReport(env)
	}
	seal(billing.ReporterUE, h.ueKey, 1, 1_000_000)
	seal(billing.ReporterTelco, h.telco.Key, 1, 1_005_000) // honest pair
	seal(billing.ReporterUE, h.ueKey, 2, 1_000_000)
	seal(billing.ReporterTelco, h.telco.Key, 2, 9_000_000) // inflation
	// A report for an unknown session errors identically in both modes.
	r := &billing.Report{SessionRef: "bogus", Reporter: billing.ReporterUE, Seq: 1}
	env, _ := billing.Seal(r, h.ueKey, h.brk.Public())
	bat.EnqueueReport(env)
}

func TestBatcherSerialAndPipelinedAgree(t *testing.T) {
	// Two harnesses built from identical seeds hold identical broker
	// state; run the same mix through the serial baseline on one and the
	// pipelined transaction on the other and compare every decision.
	hs, hb := newHarness(t), newHarness(t)
	tktS, grantS := hs.resumeTicket(t)
	tktB, grantB := hb.resumeTicket(t)

	batS := hs.brk.NewBatcher(true)
	batB := hb.brk.NewBatcher(false)
	hb.brk.EnableAuthCache(64) // the optimized config the storm uses
	stormMix(t, hs, batS, grantS.URef, tktS, grantS.SS)
	stormMix(t, hb, batB, grantB.URef, tktB, grantB.SS)
	if d := batS.Depth(); d != 10 || batB.Depth() != d {
		t.Fatalf("depths %d/%d", batS.Depth(), batB.Depth())
	}

	outS := batS.Flush()
	outB := batB.Flush()
	if len(outS) != len(outB) {
		t.Fatalf("outcome counts %d != %d", len(outS), len(outB))
	}
	for i := range outS {
		s, b := outS[i], outB[i]
		if (s.Err == nil) != (b.Err == nil) {
			t.Fatalf("item %d: err %v vs %v", i, s.Err, b.Err)
		}
		if (s.Auth == nil) != (b.Auth == nil) || (s.Resume == nil) != (b.Resume == nil) ||
			(s.Mismatch == nil) != (b.Mismatch == nil) {
			t.Fatalf("item %d: outcome shape differs: %+v vs %+v", i, s, b)
		}
		if s.Auth != nil && (s.Auth.Granted != b.Auth.Granted || s.Auth.Cause != b.Auth.Cause ||
			s.Auth.TelcoScore != b.Auth.TelcoScore) {
			t.Fatalf("item %d: auth verdicts differ: %+v vs %+v", i, s.Auth, b.Auth)
		}
		if s.Resume != nil && (s.Resume.Granted != b.Resume.Granted || s.Resume.Cause != b.Resume.Cause ||
			s.Resume.Params != b.Resume.Params) {
			t.Fatalf("item %d: resume verdicts differ: %+v vs %+v", i, s.Resume, b.Resume)
		}
	}
	if fS, fB := hs.brk.TelcoScore("h-telco"), hb.brk.TelcoScore("h-telco"); fS != fB {
		t.Fatalf("post-flush scores diverge: %v vs %v", fS, fB)
	}
	flushes, items := batB.Stats()
	if flushes != 1 || items != 10 {
		t.Fatalf("stats = %d flushes / %d items", flushes, items)
	}
	// Both flushed queues drain.
	if batS.Depth() != 0 || batB.Depth() != 0 {
		t.Fatal("flush left a backlog")
	}
}

func TestBatcherGrantedAuthUsableByUE(t *testing.T) {
	h := newHarness(t)
	bat := h.brk.NewBatcher(false)
	h.brk.EnableAuthCache(64)
	reqU, pending, err := h.ue.NewAttachRequest(h.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := h.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	bat.EnqueueAuth(reqT)
	out := bat.Flush()
	if len(out) != 1 || out[0].Err != nil || out[0].Auth == nil || !out[0].Auth.Granted {
		t.Fatalf("batched auth outcome = %+v", out)
	}
	// The sealed+signed response survives the full client-side checks.
	grant, respU, err := h.telco.HandleResponse(h.brk.Public(), out[0].Auth)
	if err != nil {
		t.Fatal(err)
	}
	ss, uref, err := h.ue.HandleResponse(pending, respU)
	if err != nil {
		t.Fatal(err)
	}
	if uref != grant.URef || ss != grant.SS {
		t.Fatal("batched grant disagrees between UE and bTelco")
	}
	if h.brk.Grant(uref) == nil {
		t.Fatal("batched grant not recorded")
	}
}

// --- snapshot v2: quarantine round-trip, cache hygiene ---

func TestSnapshotRoundTripsQuarantine(t *testing.T) {
	h := newHarness(t)
	var now time.Duration
	h.brk.EnableQuarantine(QuarantineConfig{}, func() time.Duration { return now })
	_, ref := h.attach(t)
	for seq := uint32(1); seq <= 10; seq++ {
		h.report(t, billing.ReporterUE, h.ueKey, ref, seq, 1_000_000)
		h.report(t, billing.ReporterTelco, h.telco.Key, ref, seq, 5_000_000)
	}
	if !h.brk.Quarantined("h-telco") {
		t.Fatal("setup: bTelco not quarantined")
	}
	entry, _ := h.brk.QuarantineInfo("h-telco")

	snap := h.brk.Snapshot()
	fresh, err := Restart(restartConfig(h), snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Restore ran before EnableQuarantine: enabling must keep the entries.
	fresh.EnableQuarantine(QuarantineConfig{}, func() time.Duration { return now })
	if !fresh.Quarantined("h-telco") {
		t.Fatal("quarantine lost across restart")
	}
	got, ok := fresh.QuarantineInfo("h-telco")
	if !ok || got != entry {
		t.Fatalf("restored entry %+v != %+v", got, entry)
	}
	// And the block actually holds: attach through the restored broker.
	h.brk = fresh
	reqU, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT, _ := h.telco.ForwardRequest(reqU)
	resp, err := fresh.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("quarantined bTelco granted after restart")
	}
	// Past the window the trial tier applies, exactly as pre-restart.
	now = entry.Until + time.Second
	reqU2, _, _ := h.ue.NewAttachRequest(h.telco.IDT)
	reqT2, _ := h.telco.ForwardRequest(reqU2)
	resp2, err := fresh.HandleAuthRequest(reqT2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Granted {
		// The reputation gate (0.5) may still deny; either way it must
		// not be the quarantine veto.
		t.Logf("trial-phase attach granted (score recovered)")
	}
}

func restartConfig(h *harness) Config {
	bk, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{91}, 32))
	cfg := DefaultConfig("broker.h", bk, h.ca.Public())
	cfg.Now = func() time.Time { return h.now }
	return cfg
}

func TestRestoreClearsAuthCache(t *testing.T) {
	// h1's cache holds a valid grant for (user, h-telco, terms). h2 — an
	// identically seeded broker — accumulates reputation damage that gates
	// that same attach. Restoring h2's snapshot into h1 must not leave the
	// pre-restore grant servable.
	h1, h2 := newHarness(t), newHarness(t)
	h1.brk.EnableAuthCache(16)
	h1.attach(t)
	h1.attach(t)
	if hits, _, _ := h1.brk.AuthCacheStats(); hits != 1 {
		t.Fatalf("setup: hits=%d", hits)
	}

	_, ref := h2.attach(t)
	for seq := uint32(1); seq <= 10; seq++ {
		h2.report(t, billing.ReporterUE, h2.ueKey, ref, seq, 1_000_000)
		h2.report(t, billing.ReporterTelco, h2.telco.Key, ref, seq, 5_000_000)
	}
	if s := h2.brk.TelcoScore("h-telco"); s >= 0.5 {
		t.Fatalf("setup: score %.2f above gate", s)
	}

	if err := h1.brk.Restore(h2.brk.Snapshot()); err != nil {
		t.Fatal(err)
	}
	reqU, _, _ := h1.ue.NewAttachRequest(h1.telco.IDT)
	reqT, _ := h1.telco.ForwardRequest(reqU)
	resp, err := h1.brk.HandleAuthRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("stale cached grant survived Restore")
	}
}

func TestSnapshotV1StillRestores(t *testing.T) {
	// A v1 snapshot is a v2 snapshot minus the trailing quarantine section.
	h := newHarness(t)
	_, ref := h.attach(t)
	h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 500)
	snap := h.brk.Snapshot()
	// Strip the (empty) quarantine section: a u32 zero at the tail.
	if len(snap) < 4 || snap[len(snap)-4] != 0 {
		t.Fatalf("unexpected tail %x", snap[len(snap)-4:])
	}
	v1 := append([]byte(nil), snap[:len(snap)-4]...)
	v1[0] = 1
	fresh, err := Restart(restartConfig(h), v1, 0)
	if err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	if fresh.Grant(ref) == nil {
		t.Fatal("v1 restore lost the grant")
	}
}

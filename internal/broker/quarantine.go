package broker

import (
	"fmt"
	"time"

	"cellbricks/internal/qos"
)

// Quarantine closes the trust loop the paper's billing section opens:
// reputation computed from verified evidence (billing mismatches,
// replayed reports, UE watchdog attestations) feeds back into live
// admission decisions. A bTelco whose score falls below EnterBelow is
// blocked outright for a probation window; after the window it re-enters
// service in a demoted "trial" tier (throttled QoS) where honest behavior
// can rebuild its score past ExitAbove — and fresh misbehavior re-blocks
// it with a doubled window.
type QuarantineConfig struct {
	// EnterBelow is the reputation score below which a bTelco is
	// quarantined (default 0.7).
	EnterBelow float64
	// ExitAbove is the score a bTelco on trial must rebuild to exit
	// quarantine entirely (default 0.9).
	ExitAbove float64
	// Probation is the hard-block window length for a first offense;
	// it doubles with every re-entry (default 30s).
	Probation time.Duration
	// TrialQoS is the demoted selection offered during the trial phase.
	// Zero selects a best-effort tier at 1 Mbps.
	TrialQoS qos.Params
}

func (c QuarantineConfig) defaults() QuarantineConfig {
	if c.EnterBelow == 0 {
		c.EnterBelow = 0.7
	}
	if c.ExitAbove == 0 {
		c.ExitAbove = 0.9
	}
	if c.Probation == 0 {
		c.Probation = 30 * time.Second
	}
	if c.TrialQoS.QCI == 0 {
		c.TrialQoS = qos.Params{QCI: 9, DLAmbrBps: 1_000_000, ULAmbrBps: 1_000_000}
	}
	return c
}

// QuarantineEntry is the live quarantine state for one bTelco.
type QuarantineEntry struct {
	Since   time.Duration // when the bTelco (last) entered quarantine
	Until   time.Duration // end of the hard-block window; trial afterwards
	Strikes int           // quarantine entries so far (doubles the window)
}

// EnableQuarantine arms the dynamic quarantine with the given config and
// clock (virtual time in the simulator, nil for a zero clock). Must be
// called before traffic; the feature is off until enabled.
func (b *Brokerd) EnableQuarantine(cfg QuarantineConfig, clock func() time.Duration) {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cfg = cfg.defaults()
	b.quarCfg = &cfg
	b.quarClock = clock
	// Create-only-when-nil: a Restore that ran before enabling must keep
	// its quarantine entries.
	if b.quar == nil {
		b.quar = make(map[string]*QuarantineEntry)
	}
	b.invalidateAuthCacheLocked()
}

// SetQuarantineNotify installs a callback invoked on every quarantine
// enter (entered=true) and full exit (entered=false), with the score that
// triggered the transition. The callback runs with the broker's lock held
// and must not call back into the broker.
func (b *Brokerd) SetQuarantineNotify(fn func(idT string, entered bool, score float64)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.quarNotify = fn
}

// Quarantined reports whether a bTelco is currently hard-blocked.
func (b *Brokerd) Quarantined(idT string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.quar[idT]
	return e != nil && b.quarClock != nil && b.quarClock() < e.Until
}

// QuarantineInfo returns the quarantine entry for a bTelco, if any.
func (b *Brokerd) QuarantineInfo(idT string) (QuarantineEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.quar[idT]; e != nil {
		return *e, true
	}
	return QuarantineEntry{}, false
}

// TelcoScores returns the broker's current reputation for each id, in
// order — the batch the serving infrastructure polls to steer UEs.
func (b *Brokerd) TelcoScores(ids []string) []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = b.verifier.TelcoScore(id)
	}
	return out
}

// ReportWatchdog ingests UE-side no-goodput watchdog evidence against a
// bTelco: the UE attached, was accepted, and measured no forward progress
// for its watchdog window. This is treated as attested misconduct
// (accept-then-blackhole), penalized at full weight, and immediately
// re-evaluated against the quarantine thresholds. It returns the bTelco's
// resulting score.
func (b *Brokerd) ReportWatchdog(idT string, degree float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	mtr.watchdogEvidence.Add(1)
	b.verifier.PenalizeMisconduct(idT, degree)
	b.invalidateAuthCacheLocked()
	b.reviewTelcoLocked(idT, true)
	return b.verifier.TelcoScore(idT)
}

// ReportSLOBreach ingests an SLO breach-enter signal against a bTelco: a
// windowed objective the broker (or its serving infrastructure) evaluates
// over verified evidence — e.g. per-cell overbilling ratio — crossed into
// breach. Like watchdog evidence it is penalized and immediately reviewed
// against the quarantine thresholds; unlike raw mismatch evidence it is a
// *rate* signal, so callers scale degree by how deep the breach is. It
// returns the bTelco's resulting score.
func (b *Brokerd) ReportSLOBreach(idT string, degree float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	mtr.sloEvidence.Add(1)
	b.verifier.PenalizeMisconduct(idT, degree)
	b.invalidateAuthCacheLocked()
	b.reviewTelcoLocked(idT, true)
	return b.verifier.TelcoScore(idT)
}

// QuarantineRule is the quarantine decision as a live policy.Rule: it
// vetoes hard-blocked bTelcos and demotes trial-phase bTelcos to the
// configured TrialQoS. The broker's built-in authorize path always runs
// it; custom SetPolicy chains should include it explicitly. Like every
// Rule it executes under the broker's lock — it must not be called from
// outside an authorization.
func (b *Brokerd) QuarantineRule() Rule {
	return func(d *Decision) error {
		if b.quarCfg == nil {
			return nil
		}
		e := b.quar[d.IDT]
		if e == nil {
			return nil
		}
		if b.quarClock() < e.Until {
			mtr.quarDenied.Add(1)
			return fmt.Errorf("bTelco %s quarantined (score %.2f, strike %d)",
				d.IDT, b.verifier.TelcoScore(d.IDT), e.Strikes)
		}
		d.QoS = b.quarCfg.TrialQoS
		return nil
	}
}

// reviewTelcoLocked re-evaluates one bTelco against the quarantine
// thresholds after its reputation changed. misbehaved says whether the
// triggering event was fresh evidence (mismatch, replay, watchdog) rather
// than an honest pass — a trial-phase bTelco re-blocks only on fresh
// evidence, since its score starts the trial still below the entry
// threshold by construction. Mutex held by caller.
func (b *Brokerd) reviewTelcoLocked(idT string, misbehaved bool) {
	if b.quarCfg == nil {
		return
	}
	score := b.verifier.TelcoScore(idT)
	now := b.quarClock()
	e := b.quar[idT]
	switch {
	case e == nil:
		if score < b.quarCfg.EnterBelow {
			window := b.quarCfg.Probation
			b.quar[idT] = &QuarantineEntry{Since: now, Until: now + window, Strikes: 1}
			b.invalidateAuthCacheLocked()
			mtr.quarEnter.Add(1)
			if b.quarNotify != nil {
				b.quarNotify(idT, true, score)
			}
		}
	case now >= e.Until:
		// Trial phase: fresh misbehavior re-blocks with a doubled
		// window; a rebuilt score clears the record.
		if misbehaved && score < b.quarCfg.EnterBelow {
			window := b.quarCfg.Probation << e.Strikes
			if max := 16 * b.quarCfg.Probation; window > max {
				window = max
			}
			e.Since, e.Until, e.Strikes = now, now+window, e.Strikes+1
			b.invalidateAuthCacheLocked()
			mtr.quarEnter.Add(1)
			if b.quarNotify != nil {
				b.quarNotify(idT, true, score)
			}
		} else if score >= b.quarCfg.ExitAbove {
			delete(b.quar, idT)
			b.invalidateAuthCacheLocked()
			mtr.quarExit.Add(1)
			if b.quarNotify != nil {
				b.quarNotify(idT, false, score)
			}
		}
	}
}

package broker

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
)

// tryAttach runs the SAP exchange without failing the test on denial.
func (h *harness) tryAttach(t *testing.T) (*sap.AuthResp, error) {
	t.Helper()
	reqU, _, err := h.ue.NewAttachRequest(h.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := h.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	return h.brk.HandleAuthRequest(reqT)
}

func TestQuarantineLifecycle(t *testing.T) {
	h := newHarness(t)
	var vnow time.Duration
	h.brk.EnableQuarantine(QuarantineConfig{
		EnterBelow: 0.7,
		ExitAbove:  0.9,
		Probation:  10 * time.Second,
	}, func() time.Duration { return vnow })

	var events []string
	h.brk.SetQuarantineNotify(func(idT string, entered bool, score float64) {
		if entered {
			events = append(events, "enter:"+idT)
		} else {
			events = append(events, "exit:"+idT)
		}
	})

	_, ref := h.attach(t)

	// Two no-goodput attestations: 0.8^2 = 0.64 < 0.7 → quarantine.
	h.brk.ReportWatchdog("h-telco", 1.0)
	if h.brk.Quarantined("h-telco") {
		t.Fatal("quarantined after a single watchdog trip")
	}
	score := h.brk.ReportWatchdog("h-telco", 1.0)
	if score >= 0.7 {
		t.Fatalf("score %.3f, want < 0.7", score)
	}
	if !h.brk.Quarantined("h-telco") {
		t.Fatal("not quarantined below EnterBelow")
	}
	e, ok := h.brk.QuarantineInfo("h-telco")
	if !ok || e.Strikes != 1 || e.Until != 10*time.Second {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}

	// Hard-block phase: attach vetoed with a quarantine cause.
	resp, err := h.tryAttach(t)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted || !strings.Contains(resp.Cause, "quarantined") {
		t.Fatalf("blocked-phase attach: granted=%v cause=%q", resp.Granted, resp.Cause)
	}
	if resp.TelcoScore >= 0.7 {
		t.Fatalf("denial did not propagate score: %.3f", resp.TelcoScore)
	}

	// Trial phase: attach allowed but demoted to the trial tier.
	vnow = 11 * time.Second
	if h.brk.Quarantined("h-telco") {
		t.Fatal("still hard-blocked after probation window")
	}
	resp, err = h.tryAttach(t)
	if err != nil || !resp.Granted {
		t.Fatalf("trial-phase attach denied: %+v err=%v", resp, err)
	}
	grant, _, err := h.telco.HandleResponse(h.brk.Public(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Params.DLAmbrBps != 1_000_000 {
		t.Fatalf("trial QoS not demoted: %+v", grant.Params)
	}

	// Fresh misbehavior during trial re-blocks with a doubled window.
	h.brk.ReportWatchdog("h-telco", 1.0)
	e, _ = h.brk.QuarantineInfo("h-telco")
	if e.Strikes != 2 || e.Until != vnow+20*time.Second {
		t.Fatalf("re-entry = %+v", e)
	}

	// Honest behavior through a second trial rebuilds the score past
	// ExitAbove and clears the record entirely.
	vnow = 40 * time.Second
	for seq := uint32(1); seq <= 40; seq++ {
		h.report(t, billing.ReporterUE, h.ueKey, ref, seq, 1_000_000)
		h.report(t, billing.ReporterTelco, h.telco.Key, ref, seq, 1_000_000)
	}
	if _, ok := h.brk.QuarantineInfo("h-telco"); ok {
		t.Fatalf("honest trial did not exit quarantine (score %.3f)", h.brk.TelcoScore("h-telco"))
	}
	resp, err = h.tryAttach(t)
	if err != nil || !resp.Granted {
		t.Fatalf("post-exit attach denied: %+v err=%v", resp, err)
	}
	grant, _, err = h.telco.HandleResponse(h.brk.Public(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Params.DLAmbrBps == 1_000_000 {
		t.Fatal("QoS still demoted after exit")
	}

	want := []string{"enter:h-telco", "enter:h-telco", "exit:h-telco"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("notify events = %v, want %v", events, want)
	}
}

func TestReplayedReportPenalizedAndQuarantined(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableQuarantine(QuarantineConfig{EnterBelow: 0.7, Probation: time.Minute}, nil)
	_, ref := h.attach(t)

	h.report(t, billing.ReporterUE, h.ueKey, ref, 1, 1_000_000)
	h.report(t, billing.ReporterTelco, h.telco.Key, ref, 1, 1_000_000)

	stale := &billing.Report{
		SessionRef: ref, Reporter: billing.ReporterTelco, Seq: 1,
		Rel: 30 * time.Second, DLBytes: 1_000_000,
	}
	env, err := billing.Seal(stale, h.telco.Key, h.brk.Public())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.brk.HandleReport(env); !errors.Is(err, billing.ErrReplayedReport) {
			t.Fatalf("replay %d: err = %v", i, err)
		}
	}
	if s := h.brk.TelcoScore("h-telco"); s >= 0.7 {
		t.Fatalf("score %.3f after 3 replays, want < 0.7", s)
	}
	if !h.brk.Quarantined("h-telco") {
		t.Fatal("replaying bTelco not quarantined")
	}
}

func TestAuthRespCarriesTelcoScore(t *testing.T) {
	h := newHarness(t)
	resp, err := h.tryAttach(t)
	if err != nil || !resp.Granted {
		t.Fatalf("attach: %+v err=%v", resp, err)
	}
	if resp.TelcoScore != 1.0 {
		t.Fatalf("fresh bTelco score = %v, want 1.0", resp.TelcoScore)
	}
	h.brk.ReportWatchdog("h-telco", 1.0)
	resp, err = h.tryAttach(t)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TelcoScore >= 1.0 {
		t.Fatalf("score did not propagate: %v", resp.TelcoScore)
	}
}

func TestQuarantineRuleInCustomChain(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableQuarantine(QuarantineConfig{EnterBelow: 0.7, Probation: time.Minute}, nil)
	h.brk.SetPolicy(qos.DefaultParams(), h.brk.QuarantineRule(), PriceCap(10))

	h.brk.ReportWatchdog("h-telco", 1.0)
	h.brk.ReportWatchdog("h-telco", 1.0)
	resp, err := h.tryAttach(t)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted || !strings.Contains(resp.Cause, "quarantined") {
		t.Fatalf("chain did not veto: granted=%v cause=%q", resp.Granted, resp.Cause)
	}
}

// TestSLOBreachEvidence: SLO breach-enter signals are misconduct evidence
// on the same footing as watchdog attestations — penalized, reviewed
// against the quarantine thresholds, and score-returned.
func TestSLOBreachEvidence(t *testing.T) {
	h := newHarness(t)
	h.brk.EnableQuarantine(QuarantineConfig{EnterBelow: 0.7, Probation: time.Minute}, nil)

	score := h.brk.ReportSLOBreach("h-telco", 1.0)
	if score >= 1.0 {
		t.Fatalf("first breach did not penalize: %.3f", score)
	}
	if h.brk.Quarantined("h-telco") {
		t.Fatal("quarantined after a single breach signal")
	}
	score = h.brk.ReportSLOBreach("h-telco", 1.0)
	if score >= 0.7 {
		t.Fatalf("score %.3f, want < 0.7", score)
	}
	if !h.brk.Quarantined("h-telco") {
		t.Fatal("repeated SLO breaches must quarantine")
	}
	resp, err := h.tryAttach(t)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted || !strings.Contains(resp.Cause, "quarantined") {
		t.Fatalf("breach-quarantined attach: granted=%v cause=%q", resp.Granted, resp.Cause)
	}
}

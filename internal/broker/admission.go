package broker

import (
	"sync"
	"time"

	"cellbricks/internal/wire"
)

// Admission control: a token-bucket + queue-depth load shedder that
// refuses attach work the broker cannot absorb *before* any crypto runs,
// answering with the same typed retry-after hint the degraded-mode
// (ShedLoad) path already carries end-to-end through NAS — ue.AttachFSM
// knows how to floor its backoff at the hint. Report ingestion is never
// shed: reports are cheap, idempotent per (session, seq), and dropping
// them would open a billing gap.

// AdmissionConfig tunes the shedder.
type AdmissionConfig struct {
	// Rate is the sustained attach admissions per second the bucket
	// refills at (0 disables the rate gate).
	Rate float64
	// Burst is the bucket capacity — how far above Rate a short burst may
	// go before shedding starts.
	Burst float64
	// MaxQueue sheds when the caller-observed backlog (e.g.
	// Batcher.Depth()) reaches this depth (0 disables the queue gate).
	MaxQueue int
	// RetryAfter is the base backoff hint; queue-depth sheds double it
	// (the queue signal means the broker is further behind than the rate
	// signal alone implies). Zero defaults to one second.
	RetryAfter time.Duration
}

// admissionState is the live shedder. It has its own mutex so admission
// never contends with the broker's decision lock.
type admissionState struct {
	cfg   AdmissionConfig
	clock func() time.Duration

	mu         sync.Mutex
	tokens     float64
	last       time.Duration
	admitted   uint64
	rateSheds  uint64
	queueSheds uint64
}

// EnableAdmission arms the shedder. clock supplies monotonic time for
// bucket refill — virtual time in the simulator so shedding is
// deterministic; nil uses a wall-clock stopwatch. The bucket starts
// full.
func (b *Brokerd) EnableAdmission(cfg AdmissionConfig, clock func() time.Duration) {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	a := &admissionState{cfg: cfg, clock: clock, tokens: cfg.Burst}
	a.last = clock()
	b.mu.Lock()
	b.adm = a
	b.mu.Unlock()
}

// AdmitAttach charges one attach (full handshake or resume) against the
// shedder. queueDepth is the caller-observed backlog — pass
// Batcher.Depth() when enqueueing, 0 when calling the broker directly.
// Returns nil when admission is disabled or granted, else a typed
// *wire.RetryAfterError carrying the backoff hint.
func (b *Brokerd) AdmitAttach(queueDepth int) error {
	b.mu.Lock()
	a := b.adm
	b.mu.Unlock()
	if a == nil {
		return nil
	}
	return a.admit(queueDepth)
}

// AdmissionStats reports cumulative (admitted, rateSheds, queueSheds).
func (b *Brokerd) AdmissionStats() (admitted, rateSheds, queueSheds uint64) {
	b.mu.Lock()
	a := b.adm
	b.mu.Unlock()
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.rateSheds, a.queueSheds
}

func (a *admissionState) admit(depth int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock()
	if a.cfg.Rate > 0 {
		a.tokens += a.cfg.Rate * (now - a.last).Seconds()
		if a.tokens > a.cfg.Burst {
			a.tokens = a.cfg.Burst
		}
	}
	a.last = now
	// Queue depth is the stronger signal — check it first so a melting
	// broker hands out the longer hint even when tokens remain.
	if a.cfg.MaxQueue > 0 && depth >= a.cfg.MaxQueue {
		a.queueSheds++
		mtr.admissionQueueShed.Add(1)
		return &wire.RetryAfterError{After: 2 * a.cfg.RetryAfter}
	}
	if a.cfg.Rate > 0 {
		if a.tokens < 1 {
			a.rateSheds++
			mtr.admissionRateShed.Add(1)
			return &wire.RetryAfterError{After: a.cfg.RetryAfter}
		}
		a.tokens--
	}
	a.admitted++
	return nil
}

package broker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cellbricks/internal/billing"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
)

// Batcher coalesces broker control-plane work — full SAP handshakes,
// fast-path resumes, and billing reports — arriving within one sim-clock
// flush window into a single state transaction, the SoftCell aggregation
// pattern applied to the brokered control plane. Callers enqueue at
// arrival and call Flush at window boundaries; Depth between the two is
// the backlog admission control keys off.
//
// Two modes share the one queue and flush schedule, so arrival order,
// admission depths, and decision order are identical — only the
// execution strategy differs:
//
//   - serial (the baseline): each item is processed independently at the
//     flush boundary through the exact single-request handlers.
//   - batch: one three-phase pipeline per flush — parallel stateless
//     validation (certificates, signatures, report decryption), ONE
//     ordered commit transaction under a single lock acquisition
//     (replay filters, policy, grant bookkeeping, report ingestion,
//     with quarantine reviews coalesced to one per touched bTelco), and
//     parallel response finalization (sealing + signing grants).
//
// For honest traffic the two modes produce byte-identical outcomes —
// the storm determinism gate pins this. Two documented divergences
// exist under adversarial load: (1) quarantine reviews are coalesced
// per flush, so a score that dips below the entry threshold and
// recovers within one window quarantines serially but not batched;
// (2) the flush window is an atomicity boundary — a report or resume
// naming a session granted in the SAME flush is refused (the grant
// response has not even been delivered yet, so honest parties cannot
// produce one).
type Batcher struct {
	b      *Brokerd
	serial bool

	mu    sync.Mutex
	items []*batchItem

	flushes uint64
	total   uint64
}

// BatchOutcome is the per-item result of a Flush, in enqueue order.
// Exactly one of Auth/Resume is set for attach items (nil plus Err for
// hard errors); report items carry the Mismatch verdict and ingest
// error, mirroring HandleReport.
type BatchOutcome struct {
	Auth     *sap.AuthResp
	Resume   *sap.ResumeResp
	Mismatch *billing.Mismatch
	Err      error
}

type batchKind uint8

const (
	batchAuth batchKind = iota
	batchResume
	batchReport
)

type batchItem struct {
	kind   batchKind
	auth   *sap.AuthReqT
	resume *sap.ResumeReq
	report *billing.SealedReport

	// Pipeline scratch.
	v       *sap.ValidatedAuth // auth: Validate output
	vErr    error
	rec     *sap.GrantRecord // resume/report: grant snapshot
	macErr  error            // resume: MAC verdict
	r       *billing.Report  // report: decoded body
	openErr error
	signer  pki.PublicIdentity
	sigOK   bool

	// Commit outputs for the finalize phase.
	granted bool
	params  qos.Params
	ss      nas.MasterKey
	uref    string
	score   float64

	out BatchOutcome
}

// NewBatcher builds a batcher over this broker. serial selects the
// baseline per-item execution strategy (for A/B runs and the
// determinism gate); false selects the pipelined transaction.
func (b *Brokerd) NewBatcher(serial bool) *Batcher {
	return &Batcher{b: b, serial: serial}
}

// EnqueueAuth queues a full SAP handshake for the next flush. The caller
// is responsible for admission (AdmitAttach with Depth()) — enqueued
// items are past the gate and always processed.
func (t *Batcher) EnqueueAuth(req *sap.AuthReqT) {
	t.enqueue(&batchItem{kind: batchAuth, auth: req})
}

// EnqueueResume queues a fast-path resume for the next flush.
func (t *Batcher) EnqueueResume(req *sap.ResumeReq) {
	t.enqueue(&batchItem{kind: batchResume, resume: req})
}

// EnqueueReport queues a sealed billing report for the next flush.
// Reports bypass admission by design.
func (t *Batcher) EnqueueReport(env *billing.SealedReport) {
	t.enqueue(&batchItem{kind: batchReport, report: env})
}

func (t *Batcher) enqueue(it *batchItem) {
	t.mu.Lock()
	t.items = append(t.items, it)
	t.total++
	t.mu.Unlock()
	mtr.batchItems.Add(1)
}

// Depth reports the current backlog — the queue-depth signal for
// AdmitAttach.
func (t *Batcher) Depth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// Stats reports cumulative (flushes, items enqueued).
func (t *Batcher) Stats() (flushes, items uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushes, t.total
}

// Flush drains the queue and processes every item, returning outcomes in
// enqueue order.
func (t *Batcher) Flush() []BatchOutcome {
	t.mu.Lock()
	items := t.items
	t.items = nil
	t.flushes++
	t.mu.Unlock()
	mtr.batchFlushes.Add(1)
	if len(items) == 0 {
		return nil
	}
	if t.serial {
		return t.flushSerial(items)
	}
	return t.flushBatch(items)
}

// flushSerial is the baseline: every item through the single-request
// handlers, in order.
func (t *Batcher) flushSerial(items []*batchItem) []BatchOutcome {
	out := make([]BatchOutcome, len(items))
	for i, it := range items {
		switch it.kind {
		case batchAuth:
			resp, err := t.b.handleAuthCore(it.auth)
			out[i] = BatchOutcome{Auth: resp, Err: err}
		case batchResume:
			resp, err := t.b.handleResumeCore(it.resume)
			out[i] = BatchOutcome{Resume: resp, Err: err}
		case batchReport:
			mm, err := t.b.HandleReport(it.report)
			out[i] = BatchOutcome{Mismatch: mm, Err: err}
		}
	}
	return out
}

// flushBatch is the pipelined transaction described on the type.
func (t *Batcher) flushBatch(items []*batchItem) []BatchOutcome {
	b := t.b

	// Phase 1 (parallel, stateless): SAP validation for handshakes,
	// decrypt+decode for reports. sap.Validate and pki are safe for
	// concurrent use; nothing here touches broker state.
	runParallel(len(items), func(i int) {
		it := items[i]
		switch it.kind {
		case batchAuth:
			it.v, it.vErr = b.sap.Validate(it.auth)
		case batchReport:
			body, err := b.cfg.Key.Open(it.report.Sealed)
			if err != nil {
				it.openErr = fmt.Errorf("broker: report undecryptable: %w", err)
				return
			}
			it.r, it.openErr = billing.UnmarshalReport(body)
		}
	})

	// Snapshot (one lock): resolve the grant and expected signer for
	// resumes and reports. A same-flush grant cannot be referenced by
	// honest traffic (its response is undelivered), so resolving against
	// pre-flush state is the atomicity boundary documented on the type.
	b.mu.Lock()
	for _, it := range items {
		switch it.kind {
		case batchResume:
			it.rec = b.grants[it.resume.URef]
		case batchReport:
			if it.openErr != nil {
				continue
			}
			it.rec = b.grants[it.r.SessionRef]
			if it.rec != nil {
				switch it.r.Reporter {
				case billing.ReporterUE:
					it.signer = b.users[it.rec.IDU]
				case billing.ReporterTelco:
					it.signer = b.telcoKeys[it.rec.IDT]
				}
			}
		}
	}
	b.mu.Unlock()

	// Phase 2 (parallel, stateless): signature and MAC verification.
	runParallel(len(items), func(i int) {
		it := items[i]
		switch it.kind {
		case batchResume:
			if it.rec != nil {
				it.macErr = sap.VerifyResumeReq(it.resume, it.rec.SS)
			}
		case batchReport:
			if it.openErr == nil && it.rec != nil {
				it.sigOK = it.signer.Verify(it.report.Sealed, it.report.Sig) == nil
			}
		}
	})

	// Phase 3 (ordered commit): ONE lock acquisition covers every replay
	// filter, policy decision, grant insertion, and report ingestion, in
	// arrival order — the single state transaction. Quarantine reviews
	// coalesce to one per touched bTelco, in first-touch order.
	lockedPolicy := sap.AuthorizerFunc(func(idU, idT string, terms sap.ServiceTerms) (qos.Params, error) {
		return b.authorizeLocked(idU, idT, terms)
	})
	var touched []string
	evidence := make(map[string]bool)
	b.mu.Lock()
	for _, it := range items {
		switch it.kind {
		case batchAuth:
			t.commitAuthLocked(it, lockedPolicy)
		case batchResume:
			t.commitResumeLocked(it)
		case batchReport:
			t.commitReportLocked(it, &touched, evidence)
		}
	}
	for _, idT := range touched {
		b.reviewTelcoLocked(idT, evidence[idT])
	}
	b.mu.Unlock()

	// Phase 4 (parallel, stateless): seal and sign granted handshake
	// responses. Resume responses were already built inline — they are
	// a few HMACs, not worth a phase.
	runParallel(len(items), func(i int) {
		it := items[i]
		if it.kind != batchAuth || !it.granted {
			return
		}
		resp, _, err := b.sap.Finalize(it.v, it.params, it.ss, it.uref)
		if err != nil {
			it.out.Err = err
			return
		}
		resp.TelcoScore = it.score
		it.out.Auth = resp
	})

	out := make([]BatchOutcome, len(items))
	for i, it := range items {
		out[i] = it.out
	}
	return out
}

// commitAuthLocked mirrors handleAuthCore's decision half: Decide under
// the already-held broker lock, mint, and record the grant. Sealing and
// signing are deferred to the parallel finalize phase. Mutex held.
func (t *Batcher) commitAuthLocked(it *batchItem, policy sap.Authorizer) {
	b := t.b
	if it.vErr != nil {
		mtr.attachDenied.Add(1)
		it.out.Err = it.vErr
		return
	}
	if it.v.DenyCause != "" {
		mtr.attachGranted.Add(1)
		it.out.Auth = &sap.AuthResp{Granted: false, Cause: it.v.DenyCause, TelcoScore: b.verifier.TelcoScore(it.auth.IDT)}
		return
	}
	params, cause := b.sap.Decide(it.v, policy)
	if cause != "" {
		mtr.attachGranted.Add(1)
		it.out.Auth = &sap.AuthResp{Granted: false, Cause: cause, TelcoScore: b.verifier.TelcoScore(it.auth.IDT)}
		return
	}
	ss, uref, err := sap.MintSession()
	if err != nil {
		mtr.attachDenied.Add(1)
		it.out.Err = err
		return
	}
	it.granted, it.params, it.ss, it.uref = true, params, ss, uref
	it.score = b.verifier.TelcoScore(it.auth.IDT)
	rec := &sap.GrantRecord{URef: uref, IDU: it.v.Vec.IDU, IDT: it.auth.IDT, SS: ss, Terms: it.auth.Terms, QoS: params}
	b.grants[uref] = rec
	b.prices[uref] = it.auth.Terms.PricePerGB
	b.telcoKeys[rec.IDT] = it.auth.Cert.Identity
	b.verifier.BindSession(uref, rec.IDU, rec.IDT)
	mtr.attachGranted.Add(1)
}

// commitResumeLocked mirrors handleResumeCore's decision half with the
// MAC verdict already computed. Mutex held.
func (t *Batcher) commitResumeLocked(it *batchItem) {
	b := t.b
	req := it.resume
	score := b.verifier.TelcoScore(req.IDT)
	deny := func(cause string) {
		mtr.resumeDenied.Add(1)
		it.out.Resume = sap.DenyResume(cause, score)
	}
	switch {
	case it.rec == nil:
		deny("unknown session reference")
		return
	case it.rec.IDT != req.IDT:
		deny("bTelco identity mismatch")
		return
	case b.resumed[req.URef]:
		deny("session reference already resumed")
		return
	case it.macErr != nil:
		deny("resume MAC invalid")
		return
	}
	params, err := b.authorizeLocked(it.rec.IDU, req.IDT, it.rec.Terms)
	if err != nil {
		deny("authorization denied: " + err.Error())
		return
	}
	resp, ss2, uref2 := sap.GrantResume(req, it.rec.SS, params, score)
	b.resumed[req.URef] = true
	rec2 := &sap.GrantRecord{URef: uref2, IDU: it.rec.IDU, IDT: it.rec.IDT, SS: ss2, Terms: it.rec.Terms, QoS: params}
	b.grants[uref2] = rec2
	b.prices[uref2] = b.prices[req.URef]
	b.verifier.BindSession(uref2, rec2.IDU, rec2.IDT)
	mtr.resumeGranted.Add(1)
	it.out.Resume = resp
}

// commitReportLocked mirrors HandleReport's ingest half with decode and
// signature verification already done, deferring the quarantine review
// to the per-flush coalesced pass. Mutex held.
func (t *Batcher) commitReportLocked(it *batchItem, touched *[]string, evidence map[string]bool) {
	b := t.b
	if it.openErr != nil {
		it.out.Err = it.openErr
		return
	}
	if it.rec == nil {
		it.out.Err = fmt.Errorf("%w: %s", ErrUnknownSession, it.r.SessionRef)
		return
	}
	if !it.sigOK {
		it.out.Err = ErrBadReporterKey
		return
	}
	byRep := b.reports[it.r.SessionRef]
	if byRep == nil {
		byRep = make(map[billing.Reporter][]*billing.Report)
		b.reports[it.r.SessionRef] = byRep
	}
	byRep[it.r.Reporter] = append(byRep[it.r.Reporter], it.r)
	if it.r.Reporter == billing.ReporterUE {
		b.checkQoS(it.rec, it.r)
	}
	mtr.reports.Add(1)
	mm, err := b.verifier.Ingest(it.r)
	if mm != nil {
		mtr.mismatches.Add(1)
	}
	if isReplay(err) {
		mtr.replays.Add(1)
	}
	if mm != nil || isReplay(err) {
		b.invalidateAuthCacheLocked()
	}
	idT := it.rec.IDT
	if _, seen := evidence[idT]; !seen {
		*touched = append(*touched, idT)
	}
	evidence[idT] = evidence[idT] || mm != nil || isReplay(err)
	it.out.Mismatch, it.out.Err = mm, err
}

// runParallel fans f over [0, n) across up to GOMAXPROCS workers. With
// one worker (or one item) it degrades to a plain loop — on a single
// core the batch pipeline's win is the lock coalescing and the cache,
// not parallelism.
func runParallel(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

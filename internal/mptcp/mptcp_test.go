package mptcp

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cellbricks/internal/netem"
)

// bulkWorld wires a server and client through one bottleneck link.
func bulkWorld(seed int64, bwBps float64, delay time.Duration, loss float64) (*netem.Sim, *netem.Link) {
	sim := netem.NewSim(seed)
	link := &netem.Link{Delay: delay, Loss: loss, BandwidthBps: bwBps}
	sim.Connect("server", "client", link)
	return sim, link
}

func TestBulkTransferSaturatesLink(t *testing.T) {
	sim, _ := bulkWorld(1, 10e6, 20*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(20 << 20) // 20 MB
	sim.RunUntil(10 * time.Second)
	gotBps := float64(c.Delivered()) * 8 / 10
	// Expect near link rate (10 Mbps) after slow start.
	if gotBps < 8e6 {
		t.Fatalf("goodput %.2f Mbps, want ~10", gotBps/1e6)
	}
	if gotBps > 10.5e6 {
		t.Fatalf("goodput %.2f Mbps exceeds link rate", gotBps/1e6)
	}
}

func TestSlowStartRampsExponentially(t *testing.T) {
	sim, _ := bulkWorld(2, 100e6, 50*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(50 << 20)
	// After 2 RTTs, delivered should be roughly initialCwnd*(2^2-1)..
	// just assert strictly increasing per-RTT deliveries early on.
	var perRTT []uint64
	last := uint64(0)
	for i := 1; i <= 5; i++ {
		sim.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		perRTT = append(perRTT, c.Delivered()-last)
		last = c.Delivered()
	}
	for i := 1; i < len(perRTT); i++ {
		if perRTT[i] < perRTT[i-1] {
			t.Fatalf("slow start not ramping: %v", perRTT)
		}
	}
	// Roughly doubling each RTT in early slow start.
	if perRTT[1] < perRTT[0]*3/2 {
		t.Fatalf("no exponential growth: %v", perRTT)
	}
}

func TestLossRecovery(t *testing.T) {
	sim, _ := bulkWorld(3, 5e6, 25*time.Millisecond, 0.01)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(4 << 20)
	sim.RunUntil(40 * time.Second)
	// With 1% loss the transfer must still complete (NewReno at 1% loss
	// and 50ms RTT sustains ~1.5-2.5 Mbps; 4MB needs well under 40s).
	if c.Delivered() != 4<<20 {
		t.Fatalf("delivered %d of %d under 1%% loss", c.Delivered(), 4<<20)
	}
}

func TestInOrderDelivery(t *testing.T) {
	sim, _ := bulkWorld(4, 5e6, 10*time.Millisecond, 0.05)
	c := NewConn(sim, "server", "client", DefaultConfig())
	total := 0
	lastTotal := -1
	c.OnDeliver = func(n int) {
		if n <= 0 {
			t.Fatalf("non-positive delivery %d", n)
		}
		total += n
		if total <= lastTotal {
			t.Fatal("delivery went backwards")
		}
		lastTotal = total
	}
	c.Write(1 << 20)
	sim.RunUntil(30 * time.Second)
	if uint64(total) != c.Delivered() || total != 1<<20 {
		t.Fatalf("delivered %d (callback %d)", c.Delivered(), total)
	}
}

func TestRTTEstimate(t *testing.T) {
	sim, _ := bulkWorld(5, 10e6, 30*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(1 << 20)
	sim.RunUntil(3 * time.Second)
	srtt := c.SRTT()
	// One-way 30ms -> base RTT 60ms; the 100ms drop-tail queue bounds
	// bufferbloat.
	if srtt < 55*time.Millisecond || srtt > 200*time.Millisecond {
		t.Fatalf("SRTT = %v, want 60-200ms", srtt)
	}
}

// migrate sets up the second bTelco's path and performs the address
// change d after invalidation.
func migrate(sim *netem.Sim, c *Conn, d time.Duration, newIP string, bw float64, delay time.Duration) {
	c.AddrInvalidated()
	sim.Connect("server", newIP, &netem.Link{Delay: delay, BandwidthBps: bw})
	sim.After(d, func() { c.AddrAvailable(newIP) })
}

func TestMPTCPSurvivesAddressChange(t *testing.T) {
	sim, _ := bulkWorld(6, 10e6, 20*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	subflows := 0
	c.OnSubflow = func(uint32) { subflows++ }
	c.Write(40 << 20)
	sim.RunUntil(5 * time.Second)
	before := c.Delivered()
	if before == 0 {
		t.Fatal("nothing delivered before handover")
	}
	// Handover at t=5s with 32ms attach latency.
	migrate(sim, c, 32*time.Millisecond, "client2", 10e6, 20*time.Millisecond)
	sim.RunUntil(15 * time.Second)
	after := c.Delivered()
	if c.Closed() {
		t.Fatal("MPTCP connection closed on address change")
	}
	if after <= before {
		t.Fatal("no progress after address change")
	}
	// The initial subflow predates the callback registration; exactly one
	// re-join must have fired.
	if subflows != 1 {
		t.Fatalf("post-handover subflows = %d, want 1", subflows)
	}
	// Post-handover goodput should approach link rate again.
	rate := float64(after-before) * 8 / 10
	if rate < 7e6 {
		t.Fatalf("post-handover goodput %.2f Mbps", rate/1e6)
	}
}

func TestPlainTCPDiesOnAddressChange(t *testing.T) {
	sim, _ := bulkWorld(7, 10e6, 20*time.Millisecond, 0)
	cfg := DefaultConfig()
	cfg.Multipath = false
	c := NewConn(sim, "server", "client", cfg)
	c.Write(1 << 20)
	sim.RunUntil(time.Second)
	c.AddrInvalidated()
	if !c.Closed() {
		t.Fatal("plain TCP survived address invalidation")
	}
}

func TestAddrWorkWaitDelaysResumption(t *testing.T) {
	// Measure the gap between invalidation and the first post-handover
	// delivery for wait = 0 vs 500ms. The difference must be ~500ms.
	gap := func(wait time.Duration) time.Duration {
		sim, _ := bulkWorld(8, 10e6, 20*time.Millisecond, 0)
		cfg := DefaultConfig()
		cfg.AddrWorkWait = wait
		c := NewConn(sim, "server", "client", cfg)
		c.Write(100 << 20)
		sim.RunUntil(3 * time.Second)
		var resumed time.Duration = -1
		handover := sim.Now()
		c.OnDeliver = func(int) {
			if resumed < 0 {
				resumed = sim.Now()
			}
		}
		migrate(sim, c, 32*time.Millisecond, "client2", 10e6, 20*time.Millisecond)
		sim.RunUntil(10 * time.Second)
		if resumed < 0 {
			t.Fatal("never resumed")
		}
		return resumed - handover
	}
	g0 := gap(0)
	g500 := gap(500 * time.Millisecond)
	diff := g500 - g0
	if diff < 450*time.Millisecond || diff > 550*time.Millisecond {
		t.Fatalf("wait-period delta = %v (g0=%v g500=%v), want ~500ms", diff, g0, g500)
	}
	// Without the wait, resumption is attach d (32ms) + handshake RTT
	// (~40ms) + first data flight (~40ms).
	if g0 > 250*time.Millisecond {
		t.Fatalf("no-wait resumption took %v", g0)
	}
}

func TestTimeoutTearsDownWithoutNewAddress(t *testing.T) {
	sim, _ := bulkWorld(9, 10e6, 20*time.Millisecond, 0)
	cfg := DefaultConfig()
	cfg.Timeout = 5 * time.Second
	c := NewConn(sim, "server", "client", cfg)
	c.Write(1 << 20)
	sim.RunUntil(time.Second)
	c.AddrInvalidated()
	sim.RunUntil(4 * time.Second)
	if c.Closed() {
		t.Fatal("closed before timeout")
	}
	sim.RunUntil(7 * time.Second)
	if !c.Closed() {
		t.Fatal("not closed after timeout")
	}
	// A late address is ignored.
	c.AddrAvailable("client2")
	sim.Run()
	if !c.Closed() {
		t.Fatal("revived after timeout")
	}
}

func TestJoinHandshakeSurvivesLoss(t *testing.T) {
	sim := netem.NewSim(10)
	sim.Connect("server", "client", &netem.Link{Delay: 20 * time.Millisecond, BandwidthBps: 10e6})
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(10 << 20)
	sim.RunUntil(2 * time.Second)
	c.AddrInvalidated()
	// New path is very lossy: join SYN will likely be dropped a few
	// times; the retry must get through eventually.
	sim.Connect("server", "client2", &netem.Link{Delay: 20 * time.Millisecond, BandwidthBps: 10e6, Loss: 0.5})
	sim.After(32*time.Millisecond, func() { c.AddrAvailable("client2") })
	before := c.Delivered()
	sim.RunUntil(30 * time.Second)
	if c.Delivered() <= before {
		t.Fatal("connection never resumed over lossy join path")
	}
}

// cellLink builds a cellular-style path: operator token-bucket shaping
// with a deep buffer (the bottleneck), not a tail-dropping serializer.
func cellLink(rateBps float64, delay time.Duration) *netem.Link {
	return &netem.Link{
		Delay:    delay,
		MaxQueue: 2 * time.Second, // cellular buffers are deep
		ShaperAB: netem.NewShaper(netem.ConstantRate(rateBps), 256*1024, 256*1024),
		ShaperBA: netem.NewShaper(netem.ConstantRate(rateBps), 256*1024, 256*1024),
	}
}

func TestSlowStartOvershootAfterResume(t *testing.T) {
	// The paper's Fig. 8/9 observation: right after a handover, the fresh
	// subflow in slow start rides the token-bucket credit the policer
	// accrued during the outage and briefly exceeds the policed rate,
	// then converges back. Measure rate in windows around the handover.
	const rate = 16e6
	sim := netem.NewSim(11)
	sim.Connect("server", "client", cellLink(rate, 25*time.Millisecond))
	cfg := DefaultConfig()
	cfg.AddrWorkWait = 0
	c := NewConn(sim, "server", "client", cfg)
	c.Write(500 << 20)
	sim.RunUntil(6 * time.Second)
	d0 := c.Delivered()
	sim.RunUntil(10 * time.Second)
	steady := float64(c.Delivered()-d0) * 8 / 4 // bps over 4s
	if steady < 0.8*rate {
		t.Fatalf("steady rate %.1f Mbps, want ~16", steady/1e6)
	}
	// Handover with a 1s outage (d=1s exaggerates the token credit).
	c.AddrInvalidated()
	sim.Connect("server", "client2", cellLink(rate, 25*time.Millisecond))
	sim.After(time.Second, func() { c.AddrAvailable("client2") })
	// Scan 500 ms windows for 5s after the resume: the fresh subflow
	// riding the policer's accrued token credit must overshoot the
	// policed steady rate in at least one window.
	sim.RunUntil(11 * time.Second)
	last := c.Delivered()
	maxRate := 0.0
	for half := 23; half <= 32; half++ {
		sim.RunUntil(time.Duration(half) * 500 * time.Millisecond)
		r := float64(c.Delivered()-last) * 8 * 2
		last = c.Delivered()
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate < steady*1.05 {
		t.Fatalf("max post-resume rate %.1f Mbps never overshot steady %.1f", maxRate/1e6, steady/1e6)
	}
	// And it converges back to the policed rate afterwards.
	sim.RunUntil(18 * time.Second)
	dS := c.Delivered()
	sim.RunUntil(20 * time.Second)
	later := float64(c.Delivered()-dS) * 8 / 2
	if later > 1.15*rate || later < 0.75*rate {
		t.Fatalf("post-burst rate %.1f Mbps did not converge to ~16", later/1e6)
	}
}

func TestQUICMigratesFasterThanMPTCP(t *testing.T) {
	// Same handover; measure time from invalidation to first resumed
	// delivery for deployed MPTCP (500 ms wait + 3-way join) vs QUIC
	// (no wait, 1-RTT path validation).
	gap := func(cfg Config) time.Duration {
		sim, _ := bulkWorld(21, 10e6, 20*time.Millisecond, 0)
		c := NewConn(sim, "server", "client", cfg)
		c.Write(100 << 20)
		sim.RunUntil(3 * time.Second)
		var resumed time.Duration = -1
		at := sim.Now()
		c.OnDeliver = func(int) {
			if resumed < 0 {
				resumed = sim.Now()
			}
		}
		migrate(sim, c, 32*time.Millisecond, "client2", 10e6, 20*time.Millisecond)
		sim.RunUntil(10 * time.Second)
		if resumed < 0 {
			t.Fatal("never resumed")
		}
		return resumed - at
	}
	mptcpGap := gap(DefaultConfig())
	quicGap := gap(QUICConfig())
	if quicGap >= mptcpGap {
		t.Fatalf("QUIC resumed in %v, MPTCP in %v — QUIC should be faster", quicGap, mptcpGap)
	}
	// QUIC: d (32ms) + 1 RTT probe (~40ms) + half RTT data ≈ 100ms.
	if quicGap > 200*time.Millisecond {
		t.Fatalf("QUIC resumption took %v", quicGap)
	}
	// The MPTCP gap must carry the 500ms wait.
	if mptcpGap < 500*time.Millisecond {
		t.Fatalf("MPTCP resumed in %v despite the 500ms wait", mptcpGap)
	}
}

func TestQUICSurvivesRepeatedMigrations(t *testing.T) {
	sim, _ := bulkWorld(22, 10e6, 20*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", QUICConfig())
	c.Write(100 << 20)
	ip := "client"
	for i := 0; i < 5; i++ {
		sim.RunUntil(time.Duration(i+1) * 2 * time.Second)
		c.AddrInvalidated()
		sim.Disconnect("server", ip)
		ip = fmt.Sprintf("client-%d", i)
		sim.Connect("server", ip, &netem.Link{Delay: 20 * time.Millisecond, BandwidthBps: 10e6})
		next := ip
		sim.After(32*time.Millisecond, func() { c.AddrAvailable(next) })
	}
	sim.RunUntil(14 * time.Second)
	if c.Closed() {
		t.Fatal("QUIC connection died across migrations")
	}
	// ~10 Mbps across 14s minus 5 short outages.
	if got := float64(c.Delivered()) * 8 / 14; got < 7e6 {
		t.Fatalf("goodput %.1f Mbps across 5 migrations", got/1e6)
	}
}

func TestSoftMigrationNoOutage(t *testing.T) {
	// Make-before-break: delivery never pauses longer than a couple of
	// RTTs across the migration.
	sim, _ := bulkWorld(31, 10e6, 20*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(100 << 20)
	sim.RunUntil(3 * time.Second)
	var lastDelivery time.Duration
	maxGap := time.Duration(0)
	c.OnDeliver = func(int) {
		if lastDelivery > 0 {
			if gap := sim.Now() - lastDelivery; gap > maxGap {
				maxGap = gap
			}
		}
		lastDelivery = sim.Now()
	}
	sim.Connect("server", "client2", &netem.Link{Delay: 20 * time.Millisecond, BandwidthBps: 10e6})
	sim.After(time.Second, func() { c.MigrateSoft("client2") })
	sim.RunUntil(8 * time.Second)
	if c.Closed() {
		t.Fatal("connection died in soft migration")
	}
	// Break-before-make with the 500ms wait gaps >600ms; soft must stay
	// well under 200ms.
	if maxGap > 200*time.Millisecond {
		t.Fatalf("max delivery gap %v across soft migration", maxGap)
	}
	// Traffic continues on the new path at full rate.
	d0 := c.Delivered()
	sim.RunUntil(10 * time.Second)
	if rate := float64(c.Delivered()-d0) * 8 / 2; rate < 7e6 {
		t.Fatalf("post-migration rate %.1f Mbps", rate/1e6)
	}
}

func TestSoftMigrationFallsBackWhenNotEstablished(t *testing.T) {
	sim, _ := bulkWorld(32, 10e6, 20*time.Millisecond, 0)
	c := NewConn(sim, "server", "client", DefaultConfig())
	c.Write(1 << 20)
	sim.RunUntil(time.Second)
	c.AddrInvalidated() // now in no-address state
	sim.Connect("server", "client2", &netem.Link{Delay: 20 * time.Millisecond, BandwidthBps: 10e6})
	c.MigrateSoft("client2") // must behave like AddrAvailable
	sim.RunUntil(5 * time.Second)
	if c.Delivered() != 1<<20 {
		t.Fatalf("delivered %d after fallback path", c.Delivered())
	}
}

// Property: across arbitrary migration schedules, delivery is conserved —
// the receiver never gets more bytes than the app wrote, never negative
// progress, and the connection either survives or is cleanly closed.
func TestPropertyDeliveryConservation(t *testing.T) {
	f := func(seed int64, hops []uint8, protoBit bool) bool {
		sim := netem.NewSim(seed)
		sim.Connect("server", "client", &netem.Link{Delay: 15 * time.Millisecond, BandwidthBps: 8e6, Loss: 0.002})
		cfg := DefaultConfig()
		if protoBit {
			cfg = QUICConfig()
		}
		cfg.Timeout = 10 * time.Second
		c := NewConn(sim, "server", "client", cfg)
		const total = 2 << 20
		c.Write(total)
		ip := "client"
		if len(hops) > 6 {
			hops = hops[:6]
		}
		at := time.Duration(0)
		for i, h := range hops {
			at += time.Duration(h%50)*100*time.Millisecond + 500*time.Millisecond
			hopAt := at
			idx := i
			sim.At(hopAt, func() {
				if c.Closed() {
					return
				}
				c.AddrInvalidated()
				sim.Disconnect("server", ip)
				ip = fmt.Sprintf("client-h%d", idx)
				sim.Connect("server", ip, &netem.Link{Delay: 15 * time.Millisecond, BandwidthBps: 8e6, Loss: 0.002})
				next := ip
				sim.After(32*time.Millisecond, func() { c.AddrAvailable(next) })
			})
		}
		sim.RunUntil(at + 60*time.Second)
		if c.Delivered() > total {
			return false
		}
		// With migrations spaced under the 10s timeout the connection
		// must have survived and finished the transfer.
		return c.Delivered() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package mptcp

import (
	"fmt"
	"testing"
	"time"

	"cellbricks/internal/netem"
)

func TestDebugOvershoot2(t *testing.T) {
	const rate = 16e6
	sim := netem.NewSim(11)
	sim.Connect("server", "client", cellLink(rate, 25*time.Millisecond))
	cfg := DefaultConfig()
	cfg.AddrWorkWait = 0
	c := NewConn(sim, "server", "client", cfg)
	c.Write(500 << 20)
	sim.RunUntil(10 * time.Second)
	c.AddrInvalidated()
	sim.Connect("server", "client2", cellLink(rate, 25*time.Millisecond))
	sim.After(time.Second, func() { c.AddrAvailable("client2") })
	sim.RunUntil(11 * time.Second)
	last := c.Delivered()
	for half := 23; half <= 34; half++ {
		sim.RunUntil(time.Duration(half) * 500 * time.Millisecond)
		fmt.Printf("t=%.1fs rate=%5.1f cwnd=%7.0f ssthresh=%7.0f\n", float64(half)/2, float64(c.Delivered()-last)*8*2/1e6, c.Cwnd(), c.sender.ssthresh)
		last = c.Delivered()
	}
}

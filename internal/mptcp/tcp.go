// Package mptcp implements the host transport layer of CellBricks'
// mobility story (§4.2): a segment-level TCP model (slow start, congestion
// avoidance, duplicate-ACK fast retransmit, RTO) running over the netem
// simulator, and an MPTCP connection layer whose subflows can be torn down
// and re-established as the UE's IP address changes across bTelco
// attachments — including the mainline Linux implementation's hard-coded
// 500 ms address-worker wait period the paper measures around.
//
// Plain TCP (a single subflow that dies with its IP) is the MNO baseline;
// MPTCP with re-subflowing is the CellBricks configuration.
package mptcp

import (
	"time"

	"cellbricks/internal/netem"
)

// MSS is the maximum segment payload size in bytes.
const MSS = 1380

// headerSize approximates IP+TCP header overhead on the wire.
const headerSize = 52

// Segment is the transport PDU carried in netem packets.
type Segment struct {
	ConnID    uint64
	SubflowID uint32
	Seq       uint64 // connection-level byte offset
	Len       int
	Ack       uint64 // cumulative connection-level ack
	SYN, ACK  bool
	FIN       bool
	// REMOVE_ADDR option: the sender asks the peer to forget this
	// subflow's address (MPTCP RFC 6824 semantics).
	RemoveAddr uint32
	// HoleEnd is a SACK-lite hint on ACKs: the start of the receiver's
	// first out-of-order block, i.e. the missing range is [Ack, HoleEnd).
	// Zero means no out-of-order data is buffered.
	HoleEnd uint64
	// StaleHint marks an ACK triggered by a fully-duplicate arrival; the
	// sender must not count it toward duplicate-ACK loss detection.
	StaleHint bool
	SentAt    time.Duration // for RTT sampling (carried in the "timestamp option")
	EchoedAt  time.Duration
}

// segPool recycles Segments within one connection. A Sim is
// single-goroutine, so a plain free list suffices. Receive handlers copy
// a delivered segment by value and return the box immediately; senders
// return a segment only when netem rejects the carrying packet — each box
// is therefore put at most once per trip.
type segPool struct{ free []*Segment }

func (p *segPool) get() *Segment {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &Segment{}
}

func (p *segPool) put(s *Segment) {
	*s = Segment{}
	p.free = append(p.free, s)
}

// senderState is one TCP sender: congestion control and retransmission for
// a single subflow. Sequence numbers are connection-level so a new subflow
// resumes where the old one stopped.
type senderState struct {
	sim *netem.Sim

	connID    uint64
	subflowID uint32
	srcIP     string
	dstIP     string
	srcEP     netem.Endpoint
	dstEP     netem.Endpoint
	segs      *segPool

	// Congestion control (byte-based NewReno).
	cwnd     float64
	ssthresh float64

	// Sequence state.
	sndUna uint64 // oldest unacked byte
	sndNxt uint64 // next byte to send
	limit  uint64 // app-provided bytes available (absolute offset)

	// RTT estimation.
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration

	dupAcks    int
	inRecovery bool
	recoverEnd uint64
	rtxNxt     uint64 // next byte to retransmit within the current hole

	rtoTimer *netem.Event
	lastProg time.Duration // last time sndUna advanced (RTO restart)
	dead     bool

	onSend func(*Segment)
}

// Congestion-control constants.
const (
	initialCwnd  = 10 * MSS
	minSsthresh  = 2 * MSS
	initialRTO   = 1 * time.Second
	minRTO       = 200 * time.Millisecond
	maxRTO       = 60 * time.Second
	dupAckThresh = 3
	// rcvWindow caps in-flight data like the peer's advertised receive
	// window would: it bounds how far a fresh slow start can overshoot
	// into the bottleneck queue before the first loss signal arrives.
	rcvWindow = 1 << 20
)

func newSender(sim *netem.Sim, connID uint64, subflowID uint32, src, dst string, segs *segPool, startSeq uint64, onSend func(*Segment)) *senderState {
	if segs == nil {
		segs = &segPool{}
	}
	return &senderState{
		sim:       sim,
		connID:    connID,
		subflowID: subflowID,
		srcIP:     src,
		dstIP:     dst,
		srcEP:     sim.Endpoint(src),
		dstEP:     sim.Endpoint(dst),
		segs:      segs,
		cwnd:      initialCwnd,
		ssthresh:  1 << 30,
		sndUna:    startSeq,
		sndNxt:    startSeq,
		limit:     startSeq,
		rto:       initialRTO,
		onSend:    onSend,
	}
}

// supply makes bytes up to absolute offset lim available to send.
func (s *senderState) supply(lim uint64) {
	if lim > s.limit {
		s.limit = lim
	}
	s.trySend()
}

func (s *senderState) inFlight() uint64 { return s.sndNxt - s.sndUna }

// trySend emits as many segments as cwnd allows.
func (s *senderState) trySend() {
	if s.dead {
		return
	}
	for s.sndNxt < s.limit && float64(s.inFlight()) < s.cwnd && s.inFlight() < rcvWindow {
		n := int(s.limit - s.sndNxt)
		if n > MSS {
			n = MSS
		}
		s.emit(s.sndNxt, n)
		s.sndNxt += uint64(n)
	}
	s.armRTO()
}

func (s *senderState) emit(seq uint64, n int) {
	if n <= 0 {
		return
	}
	seg := s.segs.get()
	seg.ConnID = s.connID
	seg.SubflowID = s.subflowID
	seg.Seq = seq
	seg.Len = n
	seg.ACK = true
	seg.SentAt = s.sim.Now()
	if s.onSend != nil {
		s.onSend(seg)
	}
	pkt := s.sim.GetPacket()
	pkt.Src, pkt.Dst = s.srcIP, s.dstIP
	pkt.SrcEP, pkt.DstEP = s.srcEP, s.dstEP
	pkt.Size = n + headerSize
	pkt.Payload = seg
	if !s.sim.Send(pkt) {
		s.segs.put(seg)
		s.sim.PutPacket(pkt)
	}
}

func (s *senderState) armRTO() {
	if s.dead {
		return
	}
	if s.inFlight() == 0 {
		if s.rtoTimer != nil {
			s.rtoTimer.Cancel()
			s.rtoTimer = nil
		}
		return
	}
	if s.rtoTimer != nil {
		return // already armed
	}
	s.rtoTimer = s.sim.After(s.rto, s.onRTO)
}

func (s *senderState) onRTO() {
	s.rtoTimer = nil
	if s.dead || s.inFlight() == 0 {
		return
	}
	// Restart rather than fire when the ACK clock made progress since the
	// timer was armed (RFC 6298 §5.3 behaviour).
	if since := s.sim.Now() - s.lastProg; since < s.rto {
		s.rtoTimer = s.sim.After(s.rto-since, s.onRTO)
		return
	}
	// Timeout: collapse to one MSS, exponential backoff, retransmit head.
	s.ssthresh = maxF(s.cwnd/2, minSsthresh)
	s.cwnd = MSS
	s.rto *= 2
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
	s.dupAcks = 0
	s.inRecovery = false
	// Go-back-N: resume transmission from the oldest unacked byte. The
	// receiver discards duplicates; this is how a stack without SACK
	// escapes multi-hole loss bursts.
	s.sndNxt = s.sndUna
	s.trySend()
	s.armRTO()
}

// handleAck processes a cumulative ACK with an RTT sample and the
// receiver's SACK-lite first-hole hint.
func (s *senderState) handleAck(ack uint64, holeEnd uint64, sentAt time.Duration, stale bool) {
	if s.dead {
		return
	}
	if sentAt > 0 {
		s.sampleRTT(s.sim.Now() - sentAt)
	}
	switch {
	case ack > s.sndUna:
		acked := ack - s.sndUna
		s.sndUna = ack
		s.lastProg = s.sim.Now()
		// A connection-level cumulative ACK can run past this subflow's
		// send point when the receiver's out-of-order buffer held data
		// from a previous subflow: skip forward rather than resend it.
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.dupAcks = 0
		if s.rtoTimer != nil {
			s.rtoTimer.Cancel()
			s.rtoTimer = nil
		}
		if s.inRecovery {
			if ack >= s.recoverEnd {
				s.inRecovery = false
				s.cwnd = s.ssthresh
			} else {
				// Partial ack: keep filling the hole the receiver
				// reported.
				if s.rtxNxt < s.sndUna {
					s.rtxNxt = s.sndUna
				}
				s.retransmitHole(holeEnd)
			}
		} else if s.cwnd < s.ssthresh {
			// Slow start with appropriate byte counting (ABC, RFC 3465):
			// growth per ACK is capped at 2*MSS so a giant cumulative
			// jump cannot open the window into a line-rate burst.
			s.cwnd += minF(float64(acked), 2*MSS)
			if s.cwnd > s.ssthresh {
				s.cwnd = s.ssthresh
			}
		} else {
			// Congestion avoidance: +MSS per RTT.
			s.cwnd += float64(MSS) * float64(MSS) / s.cwnd * (float64(acked) / float64(MSS))
		}
		s.trySend()
	case ack == s.sndUna && s.inFlight() > 0:
		if stale {
			break
		}
		s.dupAcks++
		if s.dupAcks == dupAckThresh && !s.inRecovery {
			// Fast retransmit + fast recovery.
			s.ssthresh = maxF(s.cwnd/2, minSsthresh)
			s.cwnd = s.ssthresh
			s.inRecovery = true
			s.recoverEnd = s.sndNxt
			s.rtxNxt = s.sndUna
			s.retransmitHole(holeEnd)
		} else if s.inRecovery {
			s.retransmitHole(holeEnd)
		}
	}
	s.armRTO()
}

func (s *senderState) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < minRTO {
		s.rto = minRTO
	}
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
}

// kill stops the sender permanently (address invalidated).
func (s *senderState) kill() {
	s.dead = true
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
}

// retransmitHole resends the recovery window sequentially from rtxNxt
// toward recoverEnd, a couple of segments per ACK event (paced by the ACK
// clock). Without full SACK scoreboards, drop-tail loss leaves many
// interleaved one-segment holes; sequential retransmission (the receiver
// discards duplicates) terminates recovery in one pass instead of one
// round trip per hole. holeEnd (the receiver's first-hole hint) lets the
// sender skip straight to the earliest missing byte.
func (s *senderState) retransmitHole(holeEnd uint64) {
	if s.dead {
		return
	}
	if s.rtxNxt < s.sndUna {
		s.rtxNxt = s.sndUna
	}
	_ = holeEnd // pacing is sequential; the hint is subsumed by sndUna
	const perAck = 2
	for i := 0; i < perAck && s.rtxNxt < s.recoverEnd; i++ {
		n := int(minU64(uint64(MSS), s.recoverEnd-s.rtxNxt))
		s.emit(s.rtxNxt, n)
		s.rtxNxt += uint64(n)
	}
	s.armRTO()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

package mptcp

import (
	"sync/atomic"
	"time"

	"cellbricks/internal/netem"
)

// Protocol selects the host transport's migration semantics.
type Protocol int

// Protocols.
const (
	// ProtoMPTCP: RFC 6824-style subflows — a full MP_JOIN three-way
	// handshake from the new address, gated by the address-worker wait.
	ProtoMPTCP Protocol = iota
	// ProtoQUIC: connection-ID-based migration — the client probes the
	// new path (PATH_CHALLENGE) and the server switches to it on receipt,
	// with congestion state reset per RFC 9000 §9.4; there is no
	// address-worker wait. The paper names QUIC as the other deployed
	// transport with this property.
	ProtoQUIC
)

// Config tunes the connection's multipath behaviour.
type Config struct {
	// Multipath enables migration semantics: the connection survives
	// address changes. Disabled = plain TCP (the MNO baseline, which
	// never changes address).
	Multipath bool
	// Protocol selects MPTCP or QUIC migration (default MPTCP).
	Protocol Protocol
	// AddrWorkWait is the delay between a new address becoming available
	// and the stack acting on it — mainline MPTCP hard-codes 500 ms in
	// mptcp_fullmesh.c's address_worker; the paper's "modified" runs set
	// it to zero.
	AddrWorkWait time.Duration
	// Timeout tears the connection down if no address appears after
	// invalidation (60 s default in the paper's description).
	Timeout time.Duration
}

// DefaultConfig is MPTCP as deployed (500 ms wait, 60 s timeout).
func DefaultConfig() Config {
	return Config{Multipath: true, AddrWorkWait: 500 * time.Millisecond, Timeout: 60 * time.Second}
}

// QUICConfig is connection-ID migration as deployed: no wait period.
func QUICConfig() Config {
	return Config{Multipath: true, Protocol: ProtoQUIC, Timeout: 60 * time.Second}
}

// connState is the connection lifecycle.
type connState int

const (
	stateEstablished connState = iota + 1
	stateNoAddress             // address invalidated, waiting for a new one
	stateJoining               // new subflow handshake in progress
	stateClosed
)

// Conn is a one-directional bulk data connection from a fixed server
// address to a mobile client address: the shape of every download workload
// in the paper's evaluation. The struct holds both endpoints' transport
// state; packets between them still traverse the emulated network (loss,
// delay, shaping all apply).
type Conn struct {
	sim *netem.Sim
	id  uint64
	cfg Config

	serverIP string
	clientIP string
	serverEP netem.Endpoint
	clientEP netem.Endpoint

	// segs recycles transport PDUs between the two endpoints; together
	// with the sim's packet pool the steady-state data/ACK exchange runs
	// allocation-free.
	segs segPool

	// Server-side (sender) state.
	sender     *senderState
	subflowSeq uint32
	appLimit   uint64 // absolute byte offset the app has written
	sndUna     uint64 // connection-level: carried across subflows

	// Client-side (receiver) state.
	recvNext  uint64
	ooo       map[uint64]int // seq -> len
	delivered uint64

	// OnDeliver fires at the receiver as in-order bytes arrive.
	OnDeliver func(n int)
	// OnSubflow fires when a new subflow becomes active (for tests and
	// trace instrumentation).
	OnSubflow func(id uint32)

	state        connState
	timeoutTimer *netem.Event
	waitTimer    *netem.Event
	dropOld      string // old address to release after a soft migration
}

// nextConnID is atomic because independent sims construct connections
// concurrently (testbed.Runner). The value only demultiplexes segments
// within one sim, so the allocation order across sims is irrelevant.
var nextConnID atomic.Uint64

// NewConn establishes a connection between serverIP and clientIP (a link
// between them must already exist in the simulator). The connection starts
// established — handshake cost for the *initial* connection is not part of
// any experiment window.
func NewConn(sim *netem.Sim, serverIP, clientIP string, cfg Config) *Conn {
	c := &Conn{
		sim:      sim,
		id:       nextConnID.Add(1),
		cfg:      cfg,
		serverIP: serverIP,
		clientIP: clientIP,
		ooo:      make(map[uint64]int),
		state:    stateEstablished,
	}
	c.sim.Register(serverIP, c.handleAtServer)
	c.sim.Register(clientIP, c.handleAtClient)
	c.serverEP = sim.Endpoint(serverIP)
	c.clientEP = sim.Endpoint(clientIP)
	c.newSubflow()
	return c
}

// sendSeg emits one control/ACK segment from a pooled packet, recycling
// both boxes if the network rejects it at admission.
func (c *Conn) sendSeg(src, dst string, srcEP, dstEP netem.Endpoint, size int, seg *Segment) {
	pkt := c.sim.GetPacket()
	pkt.Src, pkt.Dst = src, dst
	pkt.SrcEP, pkt.DstEP = srcEP, dstEP
	pkt.Size = size
	pkt.Payload = seg
	if !c.sim.Send(pkt) {
		c.segs.put(seg)
		c.sim.PutPacket(pkt)
	}
}

func (c *Conn) newSubflow() {
	c.subflowSeq++
	// No TCP-metrics inheritance: the joined subflow originates from a
	// *new* source address, which misses the kernel's per-(src,dst)
	// metrics cache, so it performs a fresh slow start — the behaviour
	// behind the paper's post-handover ramp-and-overshoot (Fig. 8/9).
	c.sender = newSender(c.sim, c.id, c.subflowSeq, c.serverIP, c.clientIP, &c.segs, c.sndUna, nil)
	c.sender.supply(c.appLimit)
	if c.OnSubflow != nil {
		c.OnSubflow(c.subflowSeq)
	}
}

// Write makes n more bytes available for transmission (bulk source).
func (c *Conn) Write(n int) {
	c.appLimit += uint64(n)
	if c.state == stateEstablished && c.sender != nil {
		c.sender.supply(c.appLimit)
	}
}

// Delivered reports total in-order bytes delivered at the client.
func (c *Conn) Delivered() uint64 { return c.delivered }

// SRTT exposes the active subflow's smoothed RTT (0 when unknown).
func (c *Conn) SRTT() time.Duration {
	if c.sender == nil {
		return 0
	}
	return c.sender.srtt
}

// Cwnd exposes the active subflow's congestion window in bytes.
func (c *Conn) Cwnd() float64 {
	if c.sender == nil {
		return 0
	}
	return c.sender.cwnd
}

// State reports whether the connection is usable.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// handleAtClient processes downlink data segments and emits ACKs.
func (c *Conn) handleAtClient(p *netem.Packet) {
	segp, ok := p.Payload.(*Segment)
	if !ok {
		return
	}
	// Copy out and recycle immediately: replies emitted below may reuse
	// the very same box from the pool.
	seg := *segp
	c.segs.put(segp)
	if seg.ConnID != c.id || c.state == stateClosed {
		return
	}
	if seg.SYN && seg.ACK {
		if c.cfg.Protocol == ProtoQUIC {
			// PATH_RESPONSE: path validated; no further handshake leg.
			return
		}
		// SYN/ACK of a join handshake: complete with the final ACK.
		out := c.segs.get()
		out.ConnID, out.SubflowID = c.id, seg.SubflowID
		out.ACK, out.SYN = true, false
		out.Ack, out.SentAt = c.recvNext, seg.SentAt
		out.RemoveAddr = seg.RemoveAddr
		c.sendSeg(c.clientIP, c.serverIP, c.clientEP, c.serverEP, headerSize, out)
		return
	}
	if seg.Len == 0 {
		return
	}
	// Data segment: in-order delivery with out-of-order buffering.
	end := seg.Seq + uint64(seg.Len)
	stale := false
	switch {
	case end <= c.recvNext:
		// Fully duplicate (stale retransmission, or data already drained
		// through the out-of-order buffer). Still acknowledge — the peer
		// may have missed the ACK that covered it — but flag the ACK so
		// the sender does not read a stream of stale arrivals as
		// loss-signalling duplicate ACKs (the role DSACK/timestamps play
		// in real stacks).
		stale = true
	case seg.Seq <= c.recvNext:
		c.advance(int(end - c.recvNext))
	default:
		c.ooo[seg.Seq] = seg.Len
	}
	// Drain contiguous out-of-order data.
	for {
		l, ok := c.ooo[c.recvNext]
		if !ok {
			break
		}
		delete(c.ooo, c.recvNext)
		c.advance(l)
	}
	// ACK (immediate, echoing the timestamp for RTT sampling and
	// reporting the first hole for SACK-lite recovery).
	out := c.segs.get()
	out.ConnID, out.SubflowID = c.id, seg.SubflowID
	out.ACK, out.Ack, out.SentAt = true, c.recvNext, seg.SentAt
	out.HoleEnd, out.StaleHint = c.firstOOO(), stale
	c.sendSeg(c.clientIP, c.serverIP, c.clientEP, c.serverEP, headerSize, out)
}

// firstOOO returns the lowest buffered out-of-order offset (0 if none):
// the end of the receiver's first hole.
func (c *Conn) firstOOO() uint64 {
	var low uint64
	for seq := range c.ooo {
		if low == 0 || seq < low {
			low = seq
		}
	}
	return low
}

func (c *Conn) advance(n int) {
	c.recvNext += uint64(n)
	c.delivered += uint64(n)
	if c.OnDeliver != nil {
		c.OnDeliver(n)
	}
}

// handleAtServer processes ACKs and join handshakes.
func (c *Conn) handleAtServer(p *netem.Packet) {
	segp, ok := p.Payload.(*Segment)
	if !ok {
		return
	}
	seg := *segp
	c.segs.put(segp)
	if seg.ConnID != c.id || c.state == stateClosed {
		return
	}
	if seg.SYN && !seg.ACK {
		// MP_JOIN / PATH_CHALLENGE from the client's new address: reply.
		out := c.segs.get()
		out.ConnID, out.SubflowID = c.id, seg.SubflowID
		out.SYN, out.ACK = true, true
		out.SentAt = c.sim.Now()
		out.RemoveAddr = seg.RemoveAddr
		c.sendSeg(c.serverIP, c.clientIP, c.serverEP, c.clientEP, headerSize, out)
		if c.cfg.Protocol == ProtoQUIC && c.state == stateJoining && seg.SubflowID == c.subflowSeq+1 {
			// QUIC switches to the probed path immediately: the server
			// resumes sending without waiting for a third handshake leg
			// (congestion state reset per RFC 9000 §9.4).
			c.state = stateEstablished
			if c.timeoutTimer != nil {
				c.timeoutTimer.Cancel()
				c.timeoutTimer = nil
			}
			c.releaseOld()
			c.newSubflow()
		}
		return
	}
	if c.state == stateJoining && seg.ACK && !seg.SYN && seg.SubflowID == c.subflowSeq+1 {
		// Final ACK of the join: activate the new subflow and honour the
		// REMOVE_ADDR the client sent for its old address.
		c.state = stateEstablished
		if c.timeoutTimer != nil {
			c.timeoutTimer.Cancel()
			c.timeoutTimer = nil
		}
		c.releaseOld()
		c.newSubflow()
		return
	}
	if c.sender != nil && seg.SubflowID == c.sender.subflowID && seg.ACK {
		if seg.Ack > c.sndUna {
			c.sndUna = seg.Ack
		}
		c.sender.handleAck(seg.Ack, seg.HoleEnd, seg.SentAt, seg.StaleHint)
	}
}

// AddrInvalidated models the baseband deleting the radio bearer: the
// interface loses its address, the subflow goes inactive, and the MPTCP
// stack watches for a new address until Timeout.
func (c *Conn) AddrInvalidated() {
	if c.state == stateClosed {
		return
	}
	if c.sender != nil {
		c.sender.kill()
	}
	c.sim.Unregister(c.clientIP)
	if !c.cfg.Multipath {
		// Plain TCP dies with its address.
		c.close()
		return
	}
	c.state = stateNoAddress
	if c.waitTimer != nil {
		c.waitTimer.Cancel()
		c.waitTimer = nil
	}
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	c.timeoutTimer = c.sim.After(timeout, c.close)
}

// AddrAvailable models the interface regaining an address after a new
// attachment: after the address-worker wait period, the client initiates a
// join handshake from the new address.
func (c *Conn) AddrAvailable(newIP string) {
	if c.state != stateNoAddress {
		return
	}
	c.clientIP = newIP
	c.sim.Register(newIP, c.handleAtClient)
	c.clientEP = c.sim.Endpoint(newIP)
	start := func() {
		if c.state != stateNoAddress {
			return
		}
		c.state = stateJoining
		c.sendJoin()
	}
	if c.cfg.AddrWorkWait > 0 {
		c.waitTimer = c.sim.After(c.cfg.AddrWorkWait, start)
	} else {
		start()
	}
}

// sendJoin emits the MP_JOIN SYN from the new address, carrying
// REMOVE_ADDR for the stale subflow, and arms a retry in case the
// handshake is lost (the connection-level Timeout still bounds the total
// wait).
// releaseOld drops the pre-migration address after a soft switch; the old
// subflow's sender is superseded by newSubflow.
func (c *Conn) releaseOld() {
	if c.dropOld == "" {
		return
	}
	if c.sender != nil {
		c.sender.kill()
	}
	c.sim.Unregister(c.dropOld)
	c.dropOld = ""
}

func (c *Conn) sendJoin() {
	out := c.segs.get()
	out.ConnID, out.SubflowID = c.id, c.subflowSeq+1
	out.SYN, out.SentAt = true, c.sim.Now()
	out.RemoveAddr = c.subflowSeq
	c.sendSeg(c.clientIP, c.serverIP, c.clientEP, c.serverEP, headerSize, out)
	c.waitTimer = c.sim.After(time.Second, func() {
		if c.state == stateJoining {
			c.sendJoin()
		}
	})
}

// MigrateSoft performs a make-before-break migration (the soft-handover
// variant the paper leaves to future work): the new address joins while
// the old subflow is still carrying traffic; once the new path is
// validated the old address is dropped, so the data plane never goes
// dark. Requires a link between the server and newIP to already exist.
func (c *Conn) MigrateSoft(newIP string) {
	if c.state != stateEstablished {
		// Fall back to the break-before-make path.
		c.AddrAvailable(newIP)
		return
	}
	oldIP := c.clientIP
	c.clientIP = newIP
	c.sim.Register(newIP, c.handleAtClient)
	c.clientEP = c.sim.Endpoint(newIP)
	// Keep receiving on the old address until the switch completes.
	c.sim.Register(oldIP, c.handleAtClient)
	c.state = stateJoining
	c.sendJoin()
	// The join/path-validation handshake runs while the old subflow keeps
	// flowing; handleAtServer's activation path (or the QUIC immediate
	// switch) calls newSubflow, which supersedes the old sender. Dropping
	// the old address happens when the radio actually detaches:
	c.dropOld = oldIP
}

func (c *Conn) close() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	if c.sender != nil {
		c.sender.kill()
	}
	if c.timeoutTimer != nil {
		c.timeoutTimer.Cancel()
	}
	if c.waitTimer != nil {
		c.waitTimer.Cancel()
	}
	c.sim.Unregister(c.serverIP)
	c.sim.Unregister(c.clientIP)
}

package apps

import (
	"time"

	"cellbricks/internal/netem"
)

// probe is the ping payload.
type probe struct {
	Seq    uint64
	SentAt time.Duration
	Echo   bool
}

// Pinger measures round-trip latency with periodic small probes (the
// paper's "ping" benchmark; Table 1 reports p50).
type Pinger struct {
	sim      *netem.Sim
	clientIP string
	serverIP string
	clientEP netem.Endpoint
	serverEP netem.Endpoint
	interval time.Duration

	seq     uint64
	sent    uint64
	samples []time.Duration
	free    []*probe // probe free list; see getProbe/putProbe
	stopped bool
}

func (p *Pinger) getProbe() *probe {
	if n := len(p.free); n > 0 {
		pr := p.free[n-1]
		p.free = p.free[:n-1]
		return pr
	}
	return &probe{}
}

func (p *Pinger) putProbe(pr *probe) {
	*pr = probe{}
	p.free = append(p.free, pr)
}

// NewPinger wires a prober between clientIP and serverIP (a link must
// exist). interval defaults to 200 ms.
func NewPinger(sim *netem.Sim, clientIP, serverIP string, interval time.Duration) *Pinger {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	p := &Pinger{sim: sim, clientIP: clientIP, serverIP: serverIP, interval: interval}
	sim.Register(serverIP, p.handleAtServer)
	sim.Register(clientIP, p.handleAtClient)
	p.serverEP = sim.Endpoint(serverIP)
	p.clientEP = sim.Endpoint(clientIP)
	return p
}

func (p *Pinger) handleAtServer(pkt *netem.Packet) {
	pr, ok := pkt.Payload.(*probe)
	if !ok || pr.Echo {
		return
	}
	// Reuse the request's probe box for the echo: the inbound packet is
	// recycled after this handler, but its payload is ours now.
	pr.Echo = true
	out := p.sim.GetPacket()
	out.Src, out.Dst = p.serverIP, pkt.Src
	out.SrcEP, out.DstEP = pkt.DstEP, pkt.SrcEP
	out.Size = pkt.Size
	out.Payload = pr
	if !p.sim.Send(out) {
		p.putProbe(pr)
		p.sim.PutPacket(out)
	}
}

func (p *Pinger) handleAtClient(pkt *netem.Packet) {
	pr, ok := pkt.Payload.(*probe)
	if !ok || !pr.Echo {
		return
	}
	p.samples = append(p.samples, p.sim.Now()-pr.SentAt)
	p.putProbe(pr)
}

// SetClientIP rehomes the prober after a host-driven mobility event.
func (p *Pinger) SetClientIP(newIP string) {
	p.sim.Unregister(p.clientIP)
	p.clientIP = newIP
	p.sim.Register(newIP, p.handleAtClient)
	p.clientEP = p.sim.Endpoint(newIP)
}

// InvalidateClient drops the prober's address (probes in this window are
// lost, as during a CellBricks re-attachment).
func (p *Pinger) InvalidateClient() {
	p.sim.Unregister(p.clientIP)
}

// Run probes for dur and returns RTT samples collected.
func (p *Pinger) Run(dur time.Duration) []time.Duration {
	end := p.sim.Now() + dur
	var tick func()
	tick = func() {
		if p.stopped || p.sim.Now() >= end {
			return
		}
		p.seq++
		p.sent++
		pr := p.getProbe()
		pr.Seq, pr.SentAt = p.seq, p.sim.Now()
		pkt := p.sim.GetPacket()
		pkt.Src, pkt.Dst = p.clientIP, p.serverIP
		pkt.SrcEP, pkt.DstEP = p.clientEP, p.serverEP
		pkt.Size = 64
		pkt.Payload = pr
		if !p.sim.Send(pkt) {
			p.putProbe(pr)
			p.sim.PutPacket(pkt)
		}
		p.sim.After(p.interval, tick)
	}
	tick()
	p.sim.RunUntil(end + time.Second) // drain trailing echoes
	return p.samples
}

// Stats summarizes the run.
func (p *Pinger) Stats() (p50 time.Duration, lossRate float64) {
	p50 = Percentile(p.samples, 50)
	if p.sent > 0 {
		lossRate = 1 - float64(len(p.samples))/float64(p.sent)
	}
	return
}

package apps

import (
	"time"

	"cellbricks/internal/netem"
)

// probe is the ping payload.
type probe struct {
	Seq    uint64
	SentAt time.Duration
	Echo   bool
}

// Pinger measures round-trip latency with periodic small probes (the
// paper's "ping" benchmark; Table 1 reports p50).
type Pinger struct {
	sim      *netem.Sim
	clientIP string
	serverIP string
	interval time.Duration

	seq     uint64
	sent    uint64
	samples []time.Duration
	stopped bool
}

// NewPinger wires a prober between clientIP and serverIP (a link must
// exist). interval defaults to 200 ms.
func NewPinger(sim *netem.Sim, clientIP, serverIP string, interval time.Duration) *Pinger {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	p := &Pinger{sim: sim, clientIP: clientIP, serverIP: serverIP, interval: interval}
	sim.Register(serverIP, p.handleAtServer)
	sim.Register(clientIP, p.handleAtClient)
	return p
}

func (p *Pinger) handleAtServer(pkt *netem.Packet) {
	pr, ok := pkt.Payload.(*probe)
	if !ok || pr.Echo {
		return
	}
	echo := *pr
	echo.Echo = true
	p.sim.Send(&netem.Packet{Src: p.serverIP, Dst: pkt.Src, Size: pkt.Size, Payload: &echo})
}

func (p *Pinger) handleAtClient(pkt *netem.Packet) {
	pr, ok := pkt.Payload.(*probe)
	if !ok || !pr.Echo {
		return
	}
	p.samples = append(p.samples, p.sim.Now()-pr.SentAt)
}

// SetClientIP rehomes the prober after a host-driven mobility event.
func (p *Pinger) SetClientIP(newIP string) {
	p.sim.Unregister(p.clientIP)
	p.clientIP = newIP
	p.sim.Register(newIP, p.handleAtClient)
}

// InvalidateClient drops the prober's address (probes in this window are
// lost, as during a CellBricks re-attachment).
func (p *Pinger) InvalidateClient() {
	p.sim.Unregister(p.clientIP)
}

// Run probes for dur and returns RTT samples collected.
func (p *Pinger) Run(dur time.Duration) []time.Duration {
	end := p.sim.Now() + dur
	var tick func()
	tick = func() {
		if p.stopped || p.sim.Now() >= end {
			return
		}
		p.seq++
		p.sent++
		p.sim.Send(&netem.Packet{
			Src:     p.clientIP,
			Dst:     p.serverIP,
			Size:    64,
			Payload: &probe{Seq: p.seq, SentAt: p.sim.Now()},
		})
		p.sim.After(p.interval, tick)
	}
	tick()
	p.sim.RunUntil(end + time.Second) // drain trailing echoes
	return p.samples
}

// Stats summarizes the run.
func (p *Pinger) Stats() (p50 time.Duration, lossRate float64) {
	p50 = Percentile(p.samples, 50)
	if p.sent > 0 {
		lossRate = 1 - float64(len(p.samples))/float64(p.sent)
	}
	return
}

package apps

import (
	"time"

	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

// QualityLevels are the six HLS renditions of the paper's server
// ("6 different quality levels (0-5) varying from 144p to 720p"), as
// average bitrates in bps.
var QualityLevels = []float64{
	250e3, // 0: 144p
	450e3, // 1: 240p
	800e3, // 2: 360p
	1.5e6, // 3: 480p
	2.8e6, // 4: 720p
	4.5e6, // 5: 720p high
}

// SegmentDuration is the HLS segment length.
const SegmentDuration = 4 * time.Second

// VideoResult summarizes a streaming session.
type VideoResult struct {
	AvgLevel    float64
	Levels      []int
	Stalls      int
	StallTime   time.Duration
	Segments    int
	BufferAtEnd time.Duration
}

// Video is an hls.js-style ABR client over a transport connection: it
// fetches segments sequentially, estimates throughput per fetch, and picks
// the highest rendition sustainable at ~80% of the estimate, with a
// buffer cap. Segment buffering is what makes video "least sensitive to
// the choice of handover schemes" in Table 1.
type Video struct {
	sim  *netem.Sim
	conn *mptcp.Conn

	buffer      time.Duration // seconds of playable media
	bufferCap   time.Duration
	level       int
	estBps      float64
	levels      []int
	stalls      int
	stallTime   time.Duration
	playing     bool
	lastDrain   time.Duration
	fetchTarget uint64
	fetchStart  time.Duration
	end         time.Duration
	done        bool
}

// NewVideo attaches an ABR session to a connection.
func NewVideo(sim *netem.Sim, conn *mptcp.Conn) *Video {
	return &Video{
		sim:       sim,
		conn:      conn,
		bufferCap: 30 * time.Second,
		level:     0, // start conservative, as hls.js does
		estBps:    QualityLevels[1],
	}
}

// Run streams for dur and reports quality metrics.
func (v *Video) Run(dur time.Duration) VideoResult {
	v.end = v.sim.Now() + dur
	v.lastDrain = v.sim.Now()

	v.conn.OnDeliver = func(n int) { v.onBytes(n) }

	// Playback drain: every 100ms, consume buffer; count stalls.
	var drain func()
	drain = func() {
		if v.done {
			return
		}
		now := v.sim.Now()
		elapsed := now - v.lastDrain
		v.lastDrain = now
		if v.playing {
			if v.buffer >= elapsed {
				v.buffer -= elapsed
			} else {
				v.stallTime += elapsed - v.buffer
				v.buffer = 0
				v.playing = false
				v.stalls++
			}
		} else if v.buffer >= 2*SegmentDuration {
			v.playing = true // resume after rebuffering two segments
		} else {
			v.stallTime += elapsed
		}
		if now < v.end {
			v.sim.After(100*time.Millisecond, drain)
		}
	}
	v.sim.After(100*time.Millisecond, drain)

	v.fetchNext()
	v.sim.RunUntil(v.end)
	v.done = true

	res := VideoResult{
		Levels:      v.levels,
		Stalls:      v.stalls,
		StallTime:   v.stallTime,
		Segments:    len(v.levels),
		BufferAtEnd: v.buffer,
	}
	if len(v.levels) > 0 {
		sum := 0
		for _, l := range v.levels {
			sum += l
		}
		res.AvgLevel = float64(sum) / float64(len(v.levels))
	}
	return res
}

func (v *Video) fetchNext() {
	if v.done || v.sim.Now() >= v.end {
		return
	}
	if v.buffer >= v.bufferCap {
		// Buffer full: poll again shortly.
		v.sim.After(500*time.Millisecond, v.fetchNext)
		return
	}
	size := uint64(QualityLevels[v.level] * SegmentDuration.Seconds() / 8)
	v.fetchTarget = v.conn.Delivered() + size
	v.fetchStart = v.sim.Now()
	v.levels = append(v.levels, v.level)
	v.conn.Write(int(size))
}

// onBytes watches fetch completion.
func (v *Video) onBytes(int) {
	if v.done || v.fetchTarget == 0 || v.conn.Delivered() < v.fetchTarget {
		return
	}
	// Segment complete: update throughput estimate (EWMA) and buffer.
	fetchTime := v.sim.Now() - v.fetchStart
	size := QualityLevels[v.level] * SegmentDuration.Seconds() / 8
	if fetchTime > 0 {
		sample := size * 8 / fetchTime.Seconds()
		v.estBps = 0.7*v.estBps + 0.3*sample
	}
	v.buffer += SegmentDuration
	v.fetchTarget = 0
	v.pickLevel()
	v.fetchNext()
}

// pickLevel selects the highest rendition under 80% of the estimated
// throughput, stepping at most one level up at a time (hls.js-like).
func (v *Video) pickLevel() {
	target := 0
	for i, rate := range QualityLevels {
		if rate <= 0.8*v.estBps {
			target = i
		}
	}
	switch {
	case target > v.level:
		v.level++
	case target < v.level:
		v.level = target
	}
	// Low buffer: drop a level defensively.
	if v.buffer < SegmentDuration && v.level > 0 {
		v.level--
	}
}

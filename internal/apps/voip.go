package apps

import (
	"time"

	"cellbricks/internal/netem"
)

// rtpPacket is a CBR voice frame.
type rtpPacket struct {
	Seq    uint64
	SentAt time.Duration
}

// VoIPResult summarizes a call.
type VoIPResult struct {
	MOS      float64
	Loss     float64
	AvgDelay time.Duration
	Jitter   time.Duration
	Received uint64
	Sent     uint64
}

// VoIP models a pjsua-style call: the server sends a 50 pps / 160 B RTP
// stream (G.711 at ~30 kbps, matching the paper's "VoIP ... requiring
// ≈30 kbps"). On an IP change the client issues a SIP re-INVITE (one
// signalling round trip) before media resumes to the new address — the
// paper's fallback for apps that do not ride MPTCP.
type VoIP struct {
	sim      *netem.Sim
	clientIP string
	serverIP string
	clientEP netem.Endpoint
	serverEP netem.Endpoint

	free []*rtpPacket // frame free list

	seq      uint64
	sent     uint64
	received uint64
	delays   []time.Duration
	// RFC 3550 interarrival jitter state.
	jitter    float64
	lastDelay time.Duration
	haveLast  bool

	active  bool
	stopped bool
}

// frameInterval and frameSize define the CBR stream.
const (
	frameInterval = 20 * time.Millisecond
	frameSize     = 160 + 40 // payload + RTP/UDP/IP headers
)

// NewVoIP wires a call between clientIP (listener) and serverIP (media
// source).
func NewVoIP(sim *netem.Sim, clientIP, serverIP string) *VoIP {
	v := &VoIP{sim: sim, clientIP: clientIP, serverIP: serverIP, active: true}
	sim.Register(clientIP, v.handleMedia)
	v.clientEP = sim.Endpoint(clientIP)
	v.serverEP = sim.Endpoint(serverIP)
	return v
}

func (v *VoIP) getFrame() *rtpPacket {
	if n := len(v.free); n > 0 {
		f := v.free[n-1]
		v.free = v.free[:n-1]
		return f
	}
	return &rtpPacket{}
}

func (v *VoIP) putFrame(f *rtpPacket) {
	*f = rtpPacket{}
	v.free = append(v.free, f)
}

func (v *VoIP) handleMedia(pkt *netem.Packet) {
	rtp, ok := pkt.Payload.(*rtpPacket)
	if !ok {
		return
	}
	defer v.putFrame(rtp)
	v.received++
	delay := v.sim.Now() - rtp.SentAt
	v.delays = append(v.delays, delay)
	if v.haveLast {
		d := delay - v.lastDelay
		if d < 0 {
			d = -d
		}
		// J += (|D| - J)/16 per RFC 3550.
		v.jitter += (float64(d) - v.jitter) / 16
	}
	v.lastDelay = delay
	v.haveLast = true
}

// InvalidateClient models the address loss at detachment: media to the old
// address is lost.
func (v *VoIP) InvalidateClient() {
	v.sim.Unregister(v.clientIP)
	v.active = false
}

// Rehome completes the SIP re-INVITE for the client's new address: one
// signalling round trip after the new attachment, then media resumes.
func (v *VoIP) Rehome(newIP string, signalRTT time.Duration) {
	v.clientIP = newIP
	v.clientEP = v.sim.Endpoint(newIP)
	v.sim.After(signalRTT, func() {
		if v.stopped {
			return
		}
		v.sim.Register(newIP, v.handleMedia)
		v.active = true
	})
}

// Run streams for dur and returns call-quality metrics.
func (v *VoIP) Run(dur time.Duration) VoIPResult {
	end := v.sim.Now() + dur
	var tick func()
	tick = func() {
		if v.stopped || v.sim.Now() >= end {
			return
		}
		v.seq++
		v.sent++
		f := v.getFrame()
		f.Seq, f.SentAt = v.seq, v.sim.Now()
		pkt := v.sim.GetPacket()
		pkt.Src, pkt.Dst = v.serverIP, v.clientIP
		pkt.SrcEP, pkt.DstEP = v.serverEP, v.clientEP
		pkt.Size = frameSize
		pkt.Payload = f
		if !v.sim.Send(pkt) {
			v.putFrame(f)
			v.sim.PutPacket(pkt)
		}
		v.sim.After(frameInterval, tick)
	}
	tick()
	v.sim.RunUntil(end + time.Second)
	v.stopped = true

	res := VoIPResult{Sent: v.sent, Received: v.received}
	if v.sent > 0 {
		res.Loss = 1 - float64(v.received)/float64(v.sent)
	}
	if len(v.delays) > 0 {
		var sum time.Duration
		for _, d := range v.delays {
			sum += d
		}
		res.AvgDelay = sum / time.Duration(len(v.delays))
	}
	res.Jitter = time.Duration(v.jitter)
	res.MOS = MOS(res.AvgDelay, res.Loss, res.Jitter)
	return res
}

package apps

import (
	"time"

	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

// WebResult summarizes page loads.
type WebResult struct {
	LoadTimes []time.Duration
	AvgLoad   time.Duration
	Pages     int
}

// WebConfig shapes the synthetic page.
type WebConfig struct {
	// PageBytes is the total page weight (default 1.6 MB, a typical
	// 2021 page).
	PageBytes int
	// Rounds models request/response dependency chains (HTML -> CSS/JS ->
	// images): each round costs an application-level round trip before
	// its bytes flow.
	Rounds int
	// Gap is idle time between page loads.
	Gap time.Duration
}

// DefaultWebConfig matches the calibration used in the experiments
// (page weight and dependency depth chosen so day/night load times land
// in the paper's Table 1 range).
func DefaultWebConfig() WebConfig {
	return WebConfig{PageBytes: 850 * 1024, Rounds: 22, Gap: time.Second}
}

// Web drives repeated page downloads over a transport connection and
// measures load time (Table 1's "Web: Avg. Load Time").
type Web struct {
	sim  *netem.Sim
	conn *mptcp.Conn
	cfg  WebConfig

	loads   []time.Duration
	end     time.Duration
	done    bool
	target  uint64
	started time.Duration
	round   int
}

// NewWeb attaches a page-load workload to a connection.
func NewWeb(sim *netem.Sim, conn *mptcp.Conn, cfg WebConfig) *Web {
	if cfg.PageBytes <= 0 {
		cfg = DefaultWebConfig()
	}
	return &Web{sim: sim, conn: conn, cfg: cfg}
}

// Run loads pages back-to-back (with gaps) for dur.
func (w *Web) Run(dur time.Duration) WebResult {
	w.end = w.sim.Now() + dur
	w.conn.OnDeliver = func(n int) { w.onBytes() }
	w.startPage()
	w.sim.RunUntil(w.end)
	w.done = true

	res := WebResult{LoadTimes: w.loads, Pages: len(w.loads)}
	if len(w.loads) > 0 {
		var sum time.Duration
		for _, d := range w.loads {
			sum += d
		}
		res.AvgLoad = sum / time.Duration(len(w.loads))
	}
	return res
}

func (w *Web) startPage() {
	if w.done || w.sim.Now() >= w.end {
		return
	}
	w.started = w.sim.Now()
	w.round = 0
	w.nextRound()
}

// nextRound models the dependency chain: an application request round trip
// (approximated by the connection's SRTT, floor 30 ms), then the round's
// share of the page bytes.
func (w *Web) nextRound() {
	if w.done || w.sim.Now() >= w.end {
		return
	}
	rtt := w.conn.SRTT()
	if rtt < 30*time.Millisecond {
		rtt = 30 * time.Millisecond
	}
	w.round++
	share := w.cfg.PageBytes / w.cfg.Rounds
	w.sim.After(rtt, func() {
		if w.done {
			return
		}
		w.target = w.conn.Delivered() + uint64(share)
		w.conn.Write(share)
	})
}

func (w *Web) onBytes() {
	if w.done || w.target == 0 || w.conn.Delivered() < w.target {
		return
	}
	w.target = 0
	if w.round < w.cfg.Rounds {
		w.nextRound()
		return
	}
	// Page complete.
	w.loads = append(w.loads, w.sim.Now()-w.started)
	w.sim.After(w.cfg.Gap, w.startPage)
}

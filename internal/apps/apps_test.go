package apps

import (
	"testing"
	"time"

	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

func cellWorld(seed int64, rateBps float64, delay time.Duration) (*netem.Sim, *mptcp.Conn) {
	sim := netem.NewSim(seed)
	link := &netem.Link{
		Delay:    delay,
		MaxQueue: 2 * time.Second,
		ShaperAB: netem.NewShaper(netem.ConstantRate(rateBps), 256*1024, 256*1024),
		ShaperBA: netem.NewShaper(netem.ConstantRate(rateBps), 256*1024, 256*1024),
	}
	sim.Connect("server", "client", link)
	conn := mptcp.NewConn(sim, "server", "client", mptcp.DefaultConfig())
	return sim, conn
}

func TestPercentile(t *testing.T) {
	s := []time.Duration{5, 1, 3, 2, 4}
	if got := Percentile(s, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %v", got)
	}
}

// TestPercentileInterpolates pins the linear-interpolation fix: when p
// falls between two ranks, the result is the weighted blend of the
// neighbours, not the lower sample (the old truncating-index behaviour).
func TestPercentileInterpolates(t *testing.T) {
	two := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if got := Percentile(two, 50); got != 15*time.Millisecond {
		t.Fatalf("p50 of {10ms, 20ms} = %v, want 15ms", got)
	}
	if got := Percentile(two, 25); got != 12500*time.Microsecond {
		t.Fatalf("p25 of {10ms, 20ms} = %v, want 12.5ms", got)
	}
	four := []time.Duration{1, 2, 3, 4}
	if got := Percentile(four, 50); got != 2 {
		// rank = 1.5 between samples 2 and 3 → 2.5ns, truncated to 2ns by
		// integer Duration; the point is it is no longer simply s[1].
		t.Fatalf("p50 of {1,2,3,4}ns = %v", got)
	}
	if got := Percentile(four, 90); got != 3 {
		// rank 2.7 blends 3 and 4 into 3.7ns, truncated to 3ns.
		t.Fatalf("p90 of {1,2,3,4}ns = %v", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 37, 100} {
		if got := Percentile(one, p); got != 7*time.Millisecond {
			t.Fatalf("p%.0f of single sample = %v", p, got)
		}
	}
}

// TestMOSBoundaries pins the clamp behaviour at the E-model's edges.
func TestMOSBoundaries(t *testing.T) {
	// Zero-delay, zero-loss, zero-jitter: R is near its ceiling; MOS must
	// be excellent but still within [1, 5].
	perfect := MOS(0, 0, 0)
	if perfect < 4.3 || perfect > 5 {
		t.Fatalf("perfect call MOS = %.3f, want in [4.3, 5]", perfect)
	}
	// Catastrophic loss drives R below 0 — the r<0 branch must clamp the
	// score to exactly 1, not go negative.
	floor := MOS(2*time.Second, 1.0, time.Second)
	if floor != 1 {
		t.Fatalf("catastrophic call MOS = %.3f, want exactly 1", floor)
	}
	// Monotone around the floor: slightly-less-awful input cannot score
	// below the clamp.
	if m := MOS(1500*time.Millisecond, 0.9, 800*time.Millisecond); m < 1 {
		t.Fatalf("MOS %v below floor", m)
	}
	// The score never exceeds 5 anywhere on a coarse input sweep.
	for _, d := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		for _, loss := range []float64{0, 0.01, 0.2, 1} {
			for _, j := range []time.Duration{0, 5 * time.Millisecond, 200 * time.Millisecond} {
				if m := MOS(d, loss, j); m < 1 || m > 5 {
					t.Fatalf("MOS(%v, %v, %v) = %v out of [1,5]", d, loss, j, m)
				}
			}
		}
	}
}

func TestMOSShape(t *testing.T) {
	good := MOS(20*time.Millisecond, 0, 2*time.Millisecond)
	if good < 4.2 {
		t.Fatalf("clean call MOS = %.2f, want > 4.2", good)
	}
	lossy := MOS(20*time.Millisecond, 0.05, 2*time.Millisecond)
	if lossy >= good {
		t.Fatal("loss did not reduce MOS")
	}
	slow := MOS(400*time.Millisecond, 0, 2*time.Millisecond)
	if slow >= good {
		t.Fatal("delay did not reduce MOS")
	}
	terrible := MOS(800*time.Millisecond, 0.30, 100*time.Millisecond)
	if terrible > 1.6 {
		t.Fatalf("terrible call MOS = %.2f", terrible)
	}
	for _, m := range []float64{good, lossy, slow, terrible} {
		if m < 1 || m > 5 {
			t.Fatalf("MOS %v out of [1,5]", m)
		}
	}
}

func TestIperfTracksPolicedRate(t *testing.T) {
	sim, conn := cellWorld(1, 8e6, 25*time.Millisecond)
	res := NewIperf(sim, conn, time.Second).Run(20 * time.Second)
	if res.AvgBps < 6.0e6 || res.AvgBps > 9e6 {
		t.Fatalf("iperf avg %.2f Mbps on an 8 Mbps link", res.AvgBps/1e6)
	}
	if len(res.Series) < 19 {
		t.Fatalf("series has %d bins", len(res.Series))
	}
}

func TestPingerP50(t *testing.T) {
	sim := netem.NewSim(2)
	sim.Connect("pclient", "pserver", &netem.Link{Delay: 23 * time.Millisecond})
	p := NewPinger(sim, "pclient", "pserver", 100*time.Millisecond)
	samples := p.Run(10 * time.Second)
	if len(samples) < 90 {
		t.Fatalf("only %d samples", len(samples))
	}
	p50, loss := p.Stats()
	if p50 != 46*time.Millisecond {
		t.Fatalf("p50 = %v, want 46ms", p50)
	}
	if loss != 0 {
		t.Fatalf("loss = %v on clean link", loss)
	}
}

func TestPingerLossAndMobility(t *testing.T) {
	sim := netem.NewSim(3)
	sim.Connect("pclient", "pserver", &netem.Link{Delay: 10 * time.Millisecond})
	p := NewPinger(sim, "pclient", "pserver", 50*time.Millisecond)
	// Invalidate mid-run: probes sent in the dead window are lost, then
	// rehome and continue.
	sim.After(2*time.Second, func() {
		p.InvalidateClient()
		sim.Connect("pclient2", "pserver", &netem.Link{Delay: 10 * time.Millisecond})
		sim.After(100*time.Millisecond, func() { p.SetClientIP("pclient2") })
	})
	p.Run(5 * time.Second)
	_, loss := p.Stats()
	if loss <= 0 {
		t.Fatal("expected some loss in the dead window")
	}
	if loss > 0.2 {
		t.Fatalf("loss = %.2f, dead window should be short", loss)
	}
}

func TestVoIPCleanCall(t *testing.T) {
	sim := netem.NewSim(4)
	sim.Connect("vclient", "vserver", &netem.Link{Delay: 30 * time.Millisecond, Jitter: 2 * time.Millisecond})
	v := NewVoIP(sim, "vclient", "vserver")
	res := v.Run(30 * time.Second)
	if res.MOS < 4.2 {
		t.Fatalf("clean call MOS = %.2f", res.MOS)
	}
	if res.Loss > 0.001 {
		t.Fatalf("loss = %v", res.Loss)
	}
	if res.Sent < 1400 || res.Received < 1400 {
		t.Fatalf("sent=%d received=%d", res.Sent, res.Received)
	}
}

func TestVoIPHandoverReinvite(t *testing.T) {
	sim := netem.NewSim(5)
	sim.Connect("vclient", "vserver", &netem.Link{Delay: 30 * time.Millisecond})
	v := NewVoIP(sim, "vclient", "vserver")
	// Handover each 10s: 100ms attach + one signalling RTT re-INVITE.
	sim.After(10*time.Second, func() {
		v.InvalidateClient()
		sim.Connect("vclient2", "vserver", &netem.Link{Delay: 30 * time.Millisecond})
		sim.After(100*time.Millisecond, func() { v.Rehome("vclient2", 60*time.Millisecond) })
	})
	res := v.Run(30 * time.Second)
	// ~160ms dead window out of 30s: a few frames lost, call still good.
	if res.Loss <= 0 || res.Loss > 0.05 {
		t.Fatalf("loss = %.4f, want small but nonzero", res.Loss)
	}
	if res.MOS < 4.0 {
		t.Fatalf("MOS = %.2f after brief handover", res.MOS)
	}
}

func TestVideoAdaptsUp(t *testing.T) {
	sim, conn := cellWorld(6, 15e6, 25*time.Millisecond)
	v := NewVideo(sim, conn)
	res := v.Run(120 * time.Second)
	if res.Segments < 20 {
		t.Fatalf("only %d segments", res.Segments)
	}
	// 15 Mbps sustains the top rendition (4.5 Mbps): the session must
	// climb to and dwell at high levels.
	if res.AvgLevel < 3.5 {
		t.Fatalf("avg level %.2f on a 15 Mbps link", res.AvgLevel)
	}
	if res.Stalls > 1 {
		t.Fatalf("%d stalls on a clean fast link", res.Stalls)
	}
}

func TestVideoConstrainedByRate(t *testing.T) {
	sim, conn := cellWorld(7, 1.2e6, 25*time.Millisecond) // day policing
	v := NewVideo(sim, conn)
	res := v.Run(120 * time.Second)
	// 1.2 Mbps supports level ~2 (800 kbps) at best.
	if res.AvgLevel > 2.5 {
		t.Fatalf("avg level %.2f exceeds what 1.2 Mbps sustains", res.AvgLevel)
	}
	if res.Segments < 10 {
		t.Fatalf("only %d segments", res.Segments)
	}
}

func TestWebLoadTimes(t *testing.T) {
	sim, conn := cellWorld(8, 10e6, 25*time.Millisecond)
	w := NewWeb(sim, conn, DefaultWebConfig())
	res := w.Run(60 * time.Second)
	if res.Pages < 5 {
		t.Fatalf("only %d pages", res.Pages)
	}
	// 1.6MB at ~10Mbps + 4 RTT rounds: ~1.5-3.5s.
	if res.AvgLoad < 800*time.Millisecond || res.AvgLoad > 6*time.Second {
		t.Fatalf("avg load = %v", res.AvgLoad)
	}
}

func TestWebSlowerOnSlowLink(t *testing.T) {
	simFast, connFast := cellWorld(9, 10e6, 25*time.Millisecond)
	fast := NewWeb(simFast, connFast, DefaultWebConfig()).Run(60 * time.Second)
	simSlow, connSlow := cellWorld(10, 1.2e6, 25*time.Millisecond)
	slow := NewWeb(simSlow, connSlow, DefaultWebConfig()).Run(60 * time.Second)
	if slow.AvgLoad <= fast.AvgLoad {
		t.Fatalf("slow link loaded faster: %v vs %v", slow.AvgLoad, fast.AvgLoad)
	}
}

func TestVideoSurvivesHandoverStorm(t *testing.T) {
	// Segment buffering rides out dense address changes (Table 1's
	// "video is least sensitive" observation): handover every 10s with
	// the full 500ms MPTCP wait.
	sim, conn := cellWorld(11, 15e6, 25*time.Millisecond)
	ip := "client"
	for i := 0; i < 10; i++ {
		at := time.Duration(i+1) * 10 * time.Second
		idx := i
		sim.At(at, func() {
			conn.AddrInvalidated()
			sim.Disconnect("server", ip)
			ip = "client-h" + string(rune('a'+idx))
			link := &netem.Link{
				Delay:    25 * time.Millisecond,
				MaxQueue: 2 * time.Second,
				ShaperAB: netem.NewShaper(netem.ConstantRate(15e6), 256*1024, 256*1024),
				ShaperBA: netem.NewShaper(netem.ConstantRate(15e6), 256*1024, 256*1024),
			}
			sim.Connect("server", ip, link)
			next := ip
			sim.After(32*time.Millisecond, func() { conn.AddrAvailable(next) })
		})
	}
	res := NewVideo(sim, conn).Run(2 * time.Minute)
	if res.AvgLevel < 3.0 {
		t.Fatalf("avg level %.2f under handover storm on a fast link", res.AvgLevel)
	}
	if res.StallTime > 15*time.Second {
		t.Fatalf("stalled %v of 2m", res.StallTime)
	}
}

func TestIperfSeriesAccounting(t *testing.T) {
	sim, conn := cellWorld(12, 5e6, 20*time.Millisecond)
	res := NewIperf(sim, conn, time.Second).Run(10 * time.Second)
	var sum float64
	for _, v := range res.Series {
		sum += v
	}
	// Sum of the per-second bins must equal total delivered bits.
	if got := float64(res.Delivered) * 8; sum < got*0.99 || sum > got*1.01 {
		t.Fatalf("series sums to %.0f bits, delivered %.0f", sum, got)
	}
}

package apps

import (
	"time"

	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

// IperfResult summarizes a bulk-throughput run.
type IperfResult struct {
	AvgBps    float64
	Series    []float64 // per-bin throughput in bps
	BinLength time.Duration
	Delivered uint64
}

// Iperf is a bulk download measurement over a transport connection: the
// server keeps the pipe full and the client bins delivered bytes per
// interval (the paper samples at 1-second intervals, Fig. 8).
type Iperf struct {
	sim  *netem.Sim
	conn *mptcp.Conn
	bin  time.Duration

	// Drive, when set, advances virtual time instead of sim.RunUntil —
	// the hook that lets a measurement inside a sharded netem.World run
	// under the world's barrier loop (only the World may advance clocks).
	Drive func(until time.Duration)

	series    []float64
	binBytes  uint64
	total     uint64
	started   time.Duration
	stopped   bool
	stopEvent *netem.Event
}

// NewIperf attaches an iperf measurement to a connection. bin is the
// sampling interval (default 1 s when zero).
func NewIperf(sim *netem.Sim, conn *mptcp.Conn, bin time.Duration) *Iperf {
	if bin <= 0 {
		bin = time.Second
	}
	ip := &Iperf{sim: sim, conn: conn, bin: bin}
	conn.OnDeliver = func(n int) {
		ip.binBytes += uint64(n)
		ip.total += uint64(n)
	}
	return ip
}

// Run drives the measurement for dur, keeping the sender backlogged, and
// returns the result. It schedules everything on the simulator; the caller
// must not run the simulator concurrently.
func (ip *Iperf) Run(dur time.Duration) IperfResult {
	ip.started = ip.sim.Now()
	// Keep the pipe deeply backlogged: top up every second.
	var topUp func()
	topUp = func() {
		if ip.stopped {
			return
		}
		ip.conn.Write(64 << 20)
		ip.sim.After(time.Second, topUp)
	}
	topUp()

	var sample func()
	sample = func() {
		ip.series = append(ip.series, float64(ip.binBytes)*8/ip.bin.Seconds())
		ip.binBytes = 0
		if !ip.stopped {
			ip.sim.After(ip.bin, sample)
		}
	}
	ip.sim.After(ip.bin, sample)
	ip.sim.After(dur, func() { ip.stopped = true })
	if ip.Drive != nil {
		ip.Drive(ip.started + dur)
	} else {
		ip.sim.RunUntil(ip.started + dur)
	}

	elapsed := ip.sim.Now() - ip.started
	res := IperfResult{
		Series:    ip.series,
		BinLength: ip.bin,
		Delivered: ip.total,
	}
	if elapsed > 0 {
		res.AvgBps = float64(ip.total) * 8 / elapsed.Seconds()
	}
	return res
}

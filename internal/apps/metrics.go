// Package apps implements the four application classes of the paper's
// evaluation (Table 1): standard network benchmarks (iperf, ping), voice
// calls with E-model MOS scoring, HLS-style adaptive video streaming, and
// web page loading. Each runs inside the netem discrete-event simulator,
// over the mptcp transport for TCP-class apps or directly over the packet
// layer for the RTP/ICMP-class apps.
package apps

import (
	"math"
	"slices"
	"time"
)

// Percentile returns the p-th percentile (0..100) of samples, linearly
// interpolating between the two nearest ranks when p falls between them
// (so p50 of {10ms, 20ms} is 15ms, not 10ms); zero when empty.
func Percentile(samples []time.Duration, p float64) time.Duration {
	return percentileOf(samples, p)
}

// PercentileFloats is Percentile for unitless samples — the scale
// experiment's per-UE throughput summaries use it so a 10k-UE sweep can
// report p50/p90/p99 instead of shipping the raw O(N) slice.
func PercentileFloats(samples []float64, p float64) float64 {
	return percentileOf(samples, p)
}

func percentileOf[T interface{ ~int64 | ~float64 }](samples []T, p float64) T {
	if len(samples) == 0 {
		return 0
	}
	s := slices.Clone(samples)
	slices.Sort(s)
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo] + T(frac*float64(s[lo+1]-s[lo]))
}

// MOS computes the ITU-T G.107 E-model mean opinion score from one-way
// delay, packet loss and jitter — the "industry standard quantitative
// call quality metric ... numerically derived from the packet loss,
// latency, and jitter measured during the call" the paper uses.
func MOS(oneWayDelay time.Duration, lossRate float64, jitter time.Duration) float64 {
	// Effective latency folds jitter in with the conventional 2x weight.
	d := float64(oneWayDelay.Milliseconds()) + 2*float64(jitter.Milliseconds()) + 10

	// Delay impairment Id.
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	// Equipment impairment Ie for G.711 with packet loss (Bpl ≈ 15 for
	// random loss).
	ie := 30 * math.Log(1+15*lossRate)

	r := 93.2 - id - ie
	switch {
	case r < 0:
		return 1
	case r > 100:
		r = 100
	}
	mos := 1 + 0.035*r + 7e-6*r*(r-60)*(100-r)
	if mos > 5 {
		mos = 5
	}
	if mos < 1 {
		mos = 1
	}
	return mos
}

package mobility

import (
	"math/rand"
	"testing"
	"time"
)

func TestMTTHOMatchesPaper(t *testing.T) {
	cases := []struct {
		route Route
		night bool
		want  float64 // seconds, Table 1
	}{
		{Suburb, false, 73.50}, {Suburb, true, 65.60},
		{Downtown, false, 68.16}, {Downtown, true, 50.60},
		{Highway, false, 44.72}, {Highway, true, 25.50},
	}
	for _, c := range cases {
		got := c.route.MTTHO(c.night).Seconds()
		if got < c.want*0.99 || got > c.want*1.01 {
			t.Errorf("%s night=%v MTTHO = %.2fs, want %.2fs", c.route.Name, c.night, got, c.want)
		}
	}
}

func TestHandoversMeanInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dur := 4 * time.Hour
	hos := Downtown.Handovers(rng, true, dur)
	if len(hos) < 100 {
		t.Fatalf("only %d handovers in %v", len(hos), dur)
	}
	mean := (hos[len(hos)-1] - hos[0]).Seconds() / float64(len(hos)-1)
	want := Downtown.MTTHO(true).Seconds()
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("mean interval %.1fs, want ~%.1fs", mean, want)
	}
	// Monotonic and within the window.
	for i := 1; i < len(hos); i++ {
		if hos[i] <= hos[i-1] {
			t.Fatal("handover times not increasing")
		}
	}
	if hos[len(hos)-1] >= dur {
		t.Fatal("handover beyond window")
	}
}

func TestFasterAtNightWhereMeasured(t *testing.T) {
	// The paper observed lower MTTHO at night (faster driving).
	for _, r := range Routes() {
		if r.MTTHO(true) >= r.MTTHO(false) {
			t.Errorf("%s: night MTTHO %v >= day %v", r.Name, r.MTTHO(true), r.MTTHO(false))
		}
	}
}

func TestCellularLinkPolicies(t *testing.T) {
	op := NewOperator(7)
	day := op.CellularLink(Downtown, false)
	night := op.CellularLink(Downtown, true)
	if day.ShaperAB == nil || night.ShaperAB == nil {
		t.Fatal("links missing shapers")
	}
	// At sim time 0, the day link polices at the hard cap; the night link
	// runs in the high mode.
	dayRate := day.ShaperAB.Rate(0)
	nightRate := night.ShaperAB.Rate(0)
	if dayRate != op.Policy.DayRateBps {
		t.Fatalf("day rate %v", dayRate)
	}
	if nightRate <= 2*dayRate {
		t.Fatalf("night rate %v not clearly higher than day %v", nightRate, dayRate)
	}
}

// Package mobility provides the mobility and operator-behaviour traces behind
// the paper's emulation: the three drive routes (suburb, downtown,
// highway) with day/night speeds calibrated to the measured mean time to
// handover (MTTHO, Table 1), and the T-Mobile-like bimodal rate-limiting
// schedule (Appendix A).
package mobility

import (
	"math/rand"
	"time"

	"cellbricks/internal/netem"
)

// Route describes a drive: tower spacing and typical speeds. MTTHO =
// spacing / speed reproduces Table 1's measured values.
type Route struct {
	Name          string
	TowerSpacingM float64
	DaySpeedMps   float64
	NightSpeedMps float64
	// Radio conditions along the route. Loss is the *residual* end-to-end
	// packet loss TCP sees after HARQ/RLC local retransmission hides the
	// radio-layer losses (which are what billing QoS metrics report).
	Loss   float64
	Jitter time.Duration
	Delay  time.Duration // one-way UE<->server baseline
}

// The three routes of Table 1, calibrated so MTTHO matches the paper:
// suburb 73.5 s day / 65.6 s night, downtown 68.2/50.6, highway 44.7/25.5.
var (
	Suburb = Route{
		Name: "suburb", TowerSpacingM: 800,
		DaySpeedMps: 800 / 73.50, NightSpeedMps: 800 / 65.60,
		Loss: 0.00015, Jitter: 3 * time.Millisecond, Delay: 23 * time.Millisecond,
	}
	Downtown = Route{
		Name: "downtown", TowerSpacingM: 600,
		DaySpeedMps: 600 / 68.16, NightSpeedMps: 600 / 50.60,
		Loss: 0.00025, Jitter: 4 * time.Millisecond, Delay: 24 * time.Millisecond,
	}
	Highway = Route{
		Name: "highway", TowerSpacingM: 1300,
		DaySpeedMps: 1300 / 44.72, NightSpeedMps: 1300 / 25.50,
		Loss: 0.00020, Jitter: 3 * time.Millisecond, Delay: 22 * time.Millisecond,
	}
)

// Routes lists all three in Table 1 order.
func Routes() []Route { return []Route{Suburb, Downtown, Highway} }

// Speed returns the route speed for the time of day.
func (r Route) Speed(night bool) float64 {
	if night {
		return r.NightSpeedMps
	}
	return r.DaySpeedMps
}

// MTTHO is the mean time between handovers.
func (r Route) MTTHO(night bool) time.Duration {
	return time.Duration(r.TowerSpacingM / r.Speed(night) * float64(time.Second))
}

// Handovers draws handover instants over a window: inter-handover times
// are MTTHO scaled by a ±35% uniform factor (tower spacing and speed both
// vary along a real route).
func (r Route) Handovers(rng *rand.Rand, night bool, dur time.Duration) []time.Duration {
	mean := r.MTTHO(night)
	var out []time.Duration
	t := time.Duration(float64(mean) * (0.3 + 0.7*rng.Float64())) // first tower crossing partway in
	for t < dur {
		out = append(out, t)
		factor := 0.65 + 0.7*rng.Float64()
		t += time.Duration(float64(mean) * factor)
	}
	return out
}

// Operator bundles the rate policy with the route conditions to build the
// emulated cellular path. Its policer state is per-subscriber and
// *persists across handovers* — the rate limiter is keyed to the SIM at
// the operator's packet gateway, not to the serving tower, so a
// re-attachment earns only the token credit of the outage itself.
type Operator struct {
	Policy *netem.DayNightPolicy

	shapers map[string][2]*netem.Shaper
}

// NewOperator creates the T-Mobile-like operator model.
func NewOperator(seed int64) *Operator {
	return &Operator{
		Policy:  netem.NewDefaultDayNightPolicy(seed),
		shapers: make(map[string][2]*netem.Shaper),
	}
}

// CellularLink builds the UE<->server path for a route under this
// operator: base propagation delay and radio loss from the route, the
// day/night policer as the bottleneck, and a deep (cellular-style) buffer.
// night selects the emulation's time-of-day offset.
func (o *Operator) CellularLink(r Route, night bool) *netem.Link {
	policy := *o.Policy
	if night {
		// Re-anchor the virtual clock so sim time 0 is 01:00.
		policy.ClockStart = 1 * time.Hour
	} else {
		policy.ClockStart = 13 * time.Hour
	}
	p := policy // capture the adjusted copy
	key := r.Name
	if night {
		key += "/night"
	}
	pair, ok := o.shapers[key]
	if !ok {
		mkShaper := func() *netem.Shaper {
			// The token bucket (~1.2 MB) lets a sender that idled — e.g.
			// through a CellBricks re-attachment — briefly burst above
			// the policed rate: the mechanism behind the paper's
			// post-handover throughput overshoot (Figs. 8-9).
			sh := netem.NewShaper(p.Rate, 1200*1024, 0)
			sh.MaxQueueTime = 600 * time.Millisecond
			return sh
		}
		pair = [2]*netem.Shaper{mkShaper(), mkShaper()}
		o.shapers[key] = pair
	}
	return &netem.Link{
		Delay:    r.Delay,
		Jitter:   r.Jitter,
		Loss:     r.Loss,
		MaxQueue: 2 * time.Second,
		ShaperAB: pair[0],
		ShaperBA: pair[1],
	}
}

package ue

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// --- AttachFSM unit tests ---

func TestFSMRotatesCandidates(t *testing.T) {
	m := NewAttachFSM(RetryPolicy{MaxAttempts: 10}, 3, nil)
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := m.Candidate(); got != w {
			t.Fatalf("attempt %d: candidate = %d, want %d", i, got, w)
		}
		if _, giveUp := m.Fail(errors.New("x")); giveUp {
			t.Fatalf("gave up at attempt %d", i)
		}
	}
	if m.Fallbacks() != 2 {
		t.Fatalf("fallbacks = %d, want 2 (two departures from candidate 0)", m.Fallbacks())
	}
}

var errFail = errors.New("attach failed")

func TestFSMAvoidSteersRotation(t *testing.T) {
	m := NewAttachFSM(RetryPolicy{}, 4, nil)
	quarantined := map[int]bool{1: true, 2: true}
	m.SetAvoid(func(i int) bool { return quarantined[i] })
	if m.Candidate() != 0 {
		t.Fatalf("start candidate = %d, want 0", m.Candidate())
	}
	// Rotation must skip 1 and 2 straight to 3.
	m.Fail(errFail)
	if m.Candidate() != 3 {
		t.Fatalf("after fail: candidate = %d, want 3", m.Candidate())
	}
	m.Fail(errFail)
	if m.Candidate() != 0 {
		t.Fatalf("wrap: candidate = %d, want 0", m.Candidate())
	}
	// An avoided current candidate moves off immediately.
	quarantined[0] = true
	m.SetAvoid(func(i int) bool { return quarantined[i] })
	if m.Candidate() != 3 {
		t.Fatalf("SetAvoid did not move off avoided candidate: %d", m.Candidate())
	}
	// All avoided: filter is ignored rather than stranding the UE.
	quarantined[3] = true
	m.SetAvoid(func(i int) bool { return quarantined[i] })
	before := m.Candidate()
	m.Fail(errFail)
	if m.Candidate() != (before+1)%4 {
		t.Fatalf("all-avoided rotation broke: %d -> %d", before, m.Candidate())
	}
}

func TestWatchdogTripsOnStall(t *testing.T) {
	w := NewWatchdog(4 * time.Second)
	w.Arm(0, 0)
	if w.Observe(1*time.Second, 100) {
		t.Fatal("tripped while progressing")
	}
	if w.Observe(3*time.Second, 100) {
		t.Fatal("tripped before the window elapsed")
	}
	if !w.Observe(5*time.Second, 100) {
		t.Fatal("did not trip after a full stalled window")
	}
	if w.Armed() {
		t.Fatal("still armed after trip")
	}
	if w.Observe(20*time.Second, 100) {
		t.Fatal("disarmed watchdog observed a trip")
	}
	if w.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", w.Trips())
	}
	// Re-armed after a re-attach: progress resets the window.
	w.Arm(20*time.Second, 100)
	if w.Observe(23*time.Second, 200) {
		t.Fatal("tripped despite fresh progress")
	}
	if w.Observe(26*time.Second, 200) {
		t.Fatal("window must restart from last progress")
	}
	if !w.Observe(27*time.Second+time.Millisecond, 200) {
		t.Fatal("did not trip a window after last progress")
	}
}

func TestFSMBudgetExhaustion(t *testing.T) {
	m := NewAttachFSM(RetryPolicy{MaxAttempts: 3}, 2, nil)
	if _, giveUp := m.Fail(errors.New("a")); giveUp {
		t.Fatal("gave up after 1 failure with budget 3")
	}
	if _, giveUp := m.Fail(errors.New("b")); giveUp {
		t.Fatal("gave up after 2 failures with budget 3")
	}
	if _, giveUp := m.Fail(errors.New("c")); !giveUp {
		t.Fatal("did not give up after exhausting the budget")
	}
}

func TestFSMBackoffGrowsAndCaps(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	m := NewAttachFSM(pol, 1, nil)
	want := []time.Duration{100, 200, 400, 400, 400}
	for i, w := range want {
		d, giveUp := m.Fail(errors.New("x"))
		if giveUp {
			t.Fatalf("gave up at %d", i)
		}
		if d != w*time.Millisecond {
			t.Fatalf("failure %d: delay = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

func TestFSMRetryAfterFloorsDelay(t *testing.T) {
	m := NewAttachFSM(RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond}, 2, nil)
	hint := &wire.RetryAfterError{After: 2 * time.Second}
	d, _ := m.Fail(fmt.Errorf("%w: shed: %w", ErrRejected, hint))
	if d < 2*time.Second {
		t.Fatalf("delay %v ignored the 2s retry-after floor", d)
	}
}

func TestFSMJitterDeterministic(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 8, BaseBackoff: 100 * time.Millisecond, JitterFrac: 0.4}
	collect := func(seed int64) []time.Duration {
		m := NewAttachFSM(pol, 2, rand.New(rand.NewSource(seed)))
		var ds []time.Duration
		for {
			d, giveUp := m.Fail(errors.New("x"))
			if giveUp {
				return ds
			}
			ds = append(ds, d)
		}
	}
	a, b := collect(5), collect(5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v — jitter not seed-deterministic", i, a[i], b[i])
		}
	}
	c := collect(6)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestPolicyBudgetBoundsWorstCase(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 6, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, JitterFrac: 0.5}
	budget := pol.Budget()
	m := NewAttachFSM(pol, 2, rand.New(rand.NewSource(1)))
	var total time.Duration
	for {
		d, giveUp := m.Fail(errors.New("x"))
		if giveUp {
			break
		}
		total += d
	}
	if total > budget {
		t.Fatalf("actual worst-case %v exceeds Budget() %v", total, budget)
	}
}

// --- AttachSAPRetry against a real control-plane stack ---

// retryWorld is a minimal broker + two-AGW control plane.
type retryWorld struct {
	brk    *broker.Brokerd
	agws   [2]*epc.AGW
	telcos [2]*sap.TelcoState
	cb     *sap.UEState
	down   [2]bool
}

type retryDirectory struct{ w *retryWorld }

type retryBrokerClient struct{ b *broker.Brokerd }

func (c retryBrokerClient) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	return c.b.HandleAuthRequest(req)
}

func (d retryDirectory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	if idB != d.w.brk.ID() {
		return nil, pki.PublicIdentity{}, fmt.Errorf("unknown broker %q", idB)
	}
	return retryBrokerClient{d.w.brk}, d.w.brk.Public(), nil
}

func newRetryWorld(t *testing.T) *retryWorld {
	t.Helper()
	now := time.Unix(1_760_000_000, 0)
	ca, err := pki.NewCAFromSeed("rt-ca", bytes.Repeat([]byte{60}, 32))
	if err != nil {
		t.Fatal(err)
	}
	bk := testKey(t, 61)
	cfg := broker.DefaultConfig("broker.retry", bk, ca.Public())
	cfg.Now = func() time.Time { return now }
	w := &retryWorld{brk: broker.New(cfg)}

	uk := testKey(t, 62)
	idU := w.brk.RegisterUser(uk.Public())
	w.cb = &sap.UEState{IDU: idU, IDB: "broker.retry", Key: uk, BrokerPub: bk.Public()}

	for i := range w.telcos {
		tk := testKey(t, byte(63+i))
		id := fmt.Sprintf("rt-telco-%d", i)
		cert := ca.Issue(id, "btelco", tk.Public(), now.Add(-time.Hour), now.Add(time.Hour))
		w.telcos[i] = &sap.TelcoState{
			IDT: id, Key: tk, Cert: cert,
			Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
		}
		w.agws[i] = epc.NewAGW(epc.AGWConfig{Telco: w.telcos[i], Brokers: retryDirectory{w}})
	}
	return w
}

func (w *retryWorld) candidate(i int, ranID string) AttachCandidate {
	return AttachCandidate{
		TelcoID: w.telcos[i].IDT,
		Tx: func(envelope []byte) ([]byte, error) {
			if w.down[i] {
				return nil, fmt.Errorf("btelco %d down", i)
			}
			return w.agws[i].HandleNAS(ranID, envelope)
		},
	}
}

func TestAttachSAPRetryFallsBackToSecondary(t *testing.T) {
	w := newRetryWorld(t)
	w.down[0] = true // serving bTelco is dead
	d := NewDevice("rt-ue-1", nil, w.cb)
	var slept []time.Duration
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}
	a, served, fsm, err := d.AttachSAPRetry(pol, nil, func(dur time.Duration) { slept = append(slept, dur) },
		w.candidate(0, "rt-ue-1a"), w.candidate(1, "rt-ue-1b"))
	if err != nil {
		t.Fatalf("AttachSAPRetry: %v", err)
	}
	if served != 1 {
		t.Fatalf("served by candidate %d, want the fallback (1)", served)
	}
	if a == nil || a.IP == "" {
		t.Fatalf("attachment = %+v", a)
	}
	if fsm.Attempts() != 1 || fsm.Fallbacks() != 1 {
		t.Fatalf("attempts=%d fallbacks=%d, want 1 and 1", fsm.Attempts(), fsm.Fallbacks())
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one backoff", slept)
	}
}

func TestAttachSAPRetryHonoursBrokerShed(t *testing.T) {
	w := newRetryWorld(t)
	w.brk.ShedLoad(40 * time.Millisecond)
	d := NewDevice("rt-ue-2", nil, w.cb)
	var slept []time.Duration
	sleep := func(dur time.Duration) {
		slept = append(slept, dur)
		// The broker recovers while the UE backs off.
		w.brk.Resume()
	}
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}
	_, _, fsm, err := d.AttachSAPRetry(pol, nil, sleep,
		w.candidate(0, "rt-ue-2a"), w.candidate(1, "rt-ue-2b"))
	if err != nil {
		t.Fatalf("AttachSAPRetry: %v", err)
	}
	if fsm.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1 (one shed, one success)", fsm.Attempts())
	}
	if len(slept) != 1 || slept[0] < 40*time.Millisecond {
		t.Fatalf("backoff %v did not honour the broker's 40ms retry-after hint", slept)
	}
	if w.brk.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", w.brk.ShedCount())
	}
}

func TestAttachSAPRetryBudgetExhausts(t *testing.T) {
	w := newRetryWorld(t)
	w.down[0], w.down[1] = true, true
	d := NewDevice("rt-ue-3", nil, w.cb)
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	_, _, fsm, err := d.AttachSAPRetry(pol, nil, func(time.Duration) {},
		w.candidate(0, "rt-ue-3a"), w.candidate(1, "rt-ue-3b"))
	if !errors.Is(err, ErrAttachBudget) {
		t.Fatalf("err = %v, want ErrAttachBudget", err)
	}
	if fsm.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", fsm.Attempts())
	}
}

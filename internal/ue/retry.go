package ue

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cellbricks/internal/wire"
)

// This file is the attach-path failure recovery of the availability story:
// "a user simply detaches from one cell tower and independently attaches
// to a new tower" — which only holds if the attach itself survives a dying
// bTelco or a recovering broker. The retry state machine rotates through
// candidate bTelcos with jittered exponential backoff, honouring typed
// retry-after hints from a degraded broker. The decision logic (AttachFSM)
// is pure so the same machine drives both real sockets (synchronous
// AttachSAPRetry, injected sleep) and the discrete-event simulator (the
// testbed failover experiment schedules each Fail's delay as a sim event).

// RetryPolicy tunes the attach state machine.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget across all candidate
	// bTelcos before the machine gives up (default 8).
	MaxAttempts int
	// BaseBackoff is the delay after the first failure (default 200 ms),
	// doubling per attempt and capped at MaxBackoff (default 5 s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac randomizes each backoff by up to this fraction (0..1).
	// Jitter draws from the rng handed to the FSM, so a seeded source
	// replays exactly.
	JitterFrac float64
}

// WithDefaults fills zero fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 200 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// Backoff computes the jittered exponential delay after the attempt'th
// failure (1-based). rng may be nil for no jitter.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.WithDefaults()
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 - p.JitterFrac/2 + p.JitterFrac*rng.Float64()))
	}
	return d
}

// Budget is the worst-case total delay the policy can insert across a full
// attempt budget (sum of maximal backoffs) — the bound the failover
// experiment asserts recovery against.
func (p RetryPolicy) Budget() time.Duration {
	p = p.WithDefaults()
	var total time.Duration
	for a := 1; a < p.MaxAttempts; a++ {
		d := p.BaseBackoff << (a - 1)
		if d > p.MaxBackoff || d <= 0 {
			d = p.MaxBackoff
		}
		total += time.Duration(float64(d) * (1 + p.JitterFrac/2))
	}
	return total
}

// ErrAttachBudget is returned when the state machine exhausts its attempt
// budget without a successful attach.
var ErrAttachBudget = errors.New("ue: attach retry budget exhausted")

// AttachFSM is the retry/fallback decision machine. It owns no I/O: the
// caller performs an attach attempt against Candidate(), reports the
// outcome, and schedules the returned delay however its clock works.
type AttachFSM struct {
	pol        RetryPolicy
	rng        *rand.Rand
	candidates int
	attempt    int // failures so far
	cand       int
	fallbacks  int
	avoid      func(int) bool // candidates the rotation steers around
}

// NewAttachFSM builds a machine over `candidates` bTelcos (the serving one
// first). rng supplies jitter and may be nil.
func NewAttachFSM(pol RetryPolicy, candidates int, rng *rand.Rand) *AttachFSM {
	if candidates < 1 {
		candidates = 1
	}
	return &AttachFSM{pol: pol.WithDefaults(), rng: rng, candidates: candidates}
}

// Candidate returns the index of the bTelco to try next.
func (m *AttachFSM) Candidate() int { return m.cand }

// SetAvoid installs a live candidate filter — typically "the broker has
// quarantined this bTelco" — that the rotation steers around: Fail skips
// avoided candidates, and the current candidate moves off an avoided
// index immediately. When every candidate is avoided the filter is
// ignored (attaching through a quarantined cell beats no service — the
// broker still decides admission). A nil filter clears it.
func (m *AttachFSM) SetAvoid(avoid func(int) bool) {
	m.avoid = avoid
	m.cand = m.nextAllowed(m.cand)
}

// nextAllowed returns the first non-avoided candidate at or after start
// (cyclic), or start itself when the filter rejects everything.
func (m *AttachFSM) nextAllowed(start int) int {
	if m.avoid == nil {
		return start
	}
	i := start
	for n := 0; n < m.candidates; n++ {
		if !m.avoid(i) {
			return i
		}
		i = (i + 1) % m.candidates
	}
	return start
}

// Attempts reports how many failures the machine has absorbed.
func (m *AttachFSM) Attempts() int { return m.attempt }

// Fallbacks reports how many times the machine moved off candidate 0.
func (m *AttachFSM) Fallbacks() int { return m.fallbacks }

// Fail records a failed attempt and decides what happens next: wait
// `delay`, then retry against Candidate() — which rotates to the next
// bTelco, the fallback path for a serving bTelco that died mid-attach.
// A *wire.RetryAfterError (a shedding broker) floors the delay at the
// server's hint. giveUp reports budget exhaustion.
func (m *AttachFSM) Fail(err error) (delay time.Duration, giveUp bool) {
	m.attempt++
	mtr.retries.Add(1)
	var ra *wire.RetryAfterError
	shed := errors.As(err, &ra)
	if shed {
		mtr.sheds.Add(1)
	}
	if m.attempt >= m.pol.MaxAttempts {
		mtr.giveups.Add(1)
		return 0, true
	}
	prev := m.cand
	m.cand = m.nextAllowed((m.cand + 1) % m.candidates)
	if prev == 0 && m.cand != 0 {
		m.fallbacks++
		mtr.fallbacks.Add(1)
	}
	delay = m.pol.Backoff(m.attempt, m.rng)
	if shed && ra.After > delay {
		delay = ra.After
	}
	return delay, false
}

// AttachCandidate is one (bTelco, transport) the device can attach
// through. The serving bTelco goes first; later entries are fallbacks.
type AttachCandidate struct {
	TelcoID string
	Tx      NASTransport
}

// AttachSAPRetry runs the SAP attach through the retry state machine
// against real transports: it tries candidates in FSM order, sleeping the
// machine's backoff between attempts (sleep may be nil for time.Sleep; rng
// may be nil for no jitter). It returns the attachment, the index of the
// candidate that served it, and the machine (for attempt accounting).
func (d *Device) AttachSAPRetry(pol RetryPolicy, rng *rand.Rand, sleep func(time.Duration), cands ...AttachCandidate) (*Attachment, int, *AttachFSM, error) {
	if len(cands) == 0 {
		return nil, 0, nil, errors.New("ue: no attach candidates")
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	fsm := NewAttachFSM(pol, len(cands), rng)
	var lastErr error
	for {
		c := cands[fsm.Candidate()]
		mtr.attempts.Add(1)
		a, err := d.AttachSAP(c.Tx, c.TelcoID)
		if err == nil {
			return a, fsm.Candidate(), fsm, nil
		}
		lastErr = err
		delay, giveUp := fsm.Fail(err)
		if giveUp {
			return nil, 0, fsm, fmt.Errorf("%w: %v", ErrAttachBudget, lastErr)
		}
		sleep(delay)
	}
}

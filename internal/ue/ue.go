// Package ue implements the user-equipment host stack (the srsUE
// equivalent): the SIM state for both architectures (legacy AKA shared
// secret, and the CellBricks key pair + broker public key), the attach /
// detach drivers over a NAS transport, and the tamper-resistant baseband
// traffic meter that produces the UE side of the verifiable billing
// reports (§4.3).
package ue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/nas"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/sap"
	"cellbricks/internal/wire"
)

// NASTransport carries one NAS envelope uplink and returns the downlink
// reply — the radio + S1 path, real socket or simulated.
type NASTransport func(envelope []byte) ([]byte, error)

// Errors from attach processing.
var (
	ErrRejected    = errors.New("ue: attach rejected")
	ErrUnexpected  = errors.New("ue: unexpected NAS message")
	ErrNotAttached = errors.New("ue: not attached")
)

// Attachment is the result of a successful attach.
type Attachment struct {
	SessionID uint64
	IP        string
	BearerID  uint32
	QCI       byte
	DLAmbrBps uint64
	ULAmbrBps uint64
}

// Device is one UE.
type Device struct {
	RANID string

	// Legacy SIM state (nil when the device is CellBricks-only).
	Legacy *aka.SIM
	// CellBricks SIM state (nil when legacy-only). Both set = the
	// dual-stack incremental-deployment mode of §3.1.
	CB *sap.UEState

	// Meter is the baseband measurement function.
	Meter *BasebandMeter

	mu     sync.Mutex
	ctx    *nas.SecurityContext
	attach *Attachment
	enc    []byte // NAS encode scratch (guarded by mu; Protect copies out)

	// Causal tracing (armed by TraceAttach; zero-valued = untraced, with
	// byte-identical envelopes to the pre-tracing format).
	tr       *obs.Tracer
	ids      *obs.SpanIDSource
	traceCtx obs.SpanContext // parent context for the next attach
}

// TraceAttach arms causal tracing for subsequent SAP attaches: the device
// records a "ue" span for each attach, parented under parent, and embeds
// its context in the uplink NAS envelope so the serving AGW (and everything
// behind it) can join the same trace. Passing a nil ids or an invalid
// parent disarms tracing.
func (d *Device) TraceAttach(tr *obs.Tracer, ids *obs.SpanIDSource, parent obs.SpanContext) {
	d.mu.Lock()
	d.tr, d.ids, d.traceCtx = tr, ids, parent
	d.mu.Unlock()
}

// attachSpanCtx mints the span context for one attach exchange (zero when
// tracing is disarmed).
func (d *Device) attachSpanCtx() obs.SpanContext {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ids == nil || !d.traceCtx.Valid() {
		return obs.SpanContext{}
	}
	return d.traceCtx.Child(d.ids.Next())
}

// NewDevice builds a device. key is the broker-issued UE key (also the
// baseband report-signing key); brokerPub is embedded in the SIM.
func NewDevice(ranID string, legacy *aka.SIM, cb *sap.UEState) *Device {
	d := &Device{RANID: ranID, Legacy: legacy, CB: cb}
	if cb != nil {
		d.Meter = NewBasebandMeter(cb.Key, cb.BrokerPub)
	}
	return d
}

// Attached returns the live attachment, or nil.
func (d *Device) Attached() *Attachment {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.attach
}

// Context returns the NAS security context (nil before attach).
func (d *Device) Context() *nas.SecurityContext {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctx
}

// plainEnvelope wraps an unprotected NAS message: flag(0) || encoding,
// built in a single allocation.
func plainEnvelope(m nas.Message) []byte {
	return nas.AppendEncode(make([]byte, 1, 96), m)
}

// plainEnvelopeCtx is plainEnvelope with a span context in the header; a
// zero context produces the legacy single-flag-byte envelope.
func plainEnvelopeCtx(m nas.Message, sc obs.SpanContext) []byte {
	if !sc.Valid() {
		return plainEnvelope(m)
	}
	hdr := nas.AppendEnvelopeHeader(make([]byte, 0, 1+obs.SpanContextLen+96), false, sc)
	return nas.AppendEncode(hdr, m)
}

func (d *Device) protectedEnvelope(m nas.Message) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ctx == nil {
		return nil, ErrNotAttached
	}
	d.enc = nas.AppendEncode(d.enc[:0], m)
	ct := d.ctx.Protect(nas.Uplink, d.enc)
	out := make([]byte, 1, 1+len(ct))
	out[0] = 1
	return append(out, ct...), nil
}

// decodeReply unwraps a downlink envelope, unprotecting when flagged.
func (d *Device) decodeReply(envelope []byte) (nas.Message, error) {
	if len(envelope) == 0 {
		return nil, nas.ErrTooShort
	}
	body := envelope[1:]
	if envelope[0] == 1 {
		d.mu.Lock()
		ctx := d.ctx
		d.mu.Unlock()
		if ctx == nil {
			return nil, ErrNotAttached
		}
		pt, err := ctx.Unprotect(nas.Downlink, body)
		if err != nil {
			return nil, err
		}
		body = pt
	}
	return nas.Decode(body)
}

// AttachLegacy runs the baseline EPS attach: identify by IMSI, answer the
// AKA challenge, complete SMC under the derived context, receive accept.
func (d *Device) AttachLegacy(tx NASTransport) (*Attachment, error) {
	if d.Legacy == nil {
		return nil, errors.New("ue: no legacy SIM")
	}
	reply, err := tx(plainEnvelope(&nas.AttachRequestLegacy{IMSI: d.Legacy.IMSI, Capabilities: 7}))
	if err != nil {
		return nil, err
	}
	msg, err := d.decodeReply(reply)
	if err != nil {
		return nil, err
	}
	challenge, ok := msg.(*nas.AuthenticationRequest)
	if !ok {
		return nil, rejectOr(msg)
	}
	res, kasme, err := d.Legacy.Answer(challenge.RAND, challenge.AUTN)
	if err != nil {
		return nil, fmt.Errorf("ue: network authentication: %w", err)
	}
	reply, err = tx(plainEnvelope(&nas.AuthenticationResponse{RES: res}))
	if err != nil {
		return nil, err
	}
	msg, err = d.decodeReply(reply)
	if err != nil {
		return nil, err
	}
	if _, ok := msg.(*nas.SecurityModeCommand); !ok {
		return nil, rejectOr(msg)
	}
	d.mu.Lock()
	d.ctx = nas.NewSecurityContext(kasme)
	d.mu.Unlock()
	env, err := d.protectedEnvelope(&nas.SecurityModeComplete{})
	if err != nil {
		return nil, err
	}
	reply, err = tx(env)
	if err != nil {
		return nil, err
	}
	msg, err = d.decodeReply(reply)
	if err != nil {
		return nil, err
	}
	accept, ok := msg.(*nas.AttachAccept)
	if !ok {
		return nil, rejectOr(msg)
	}
	return d.install(accept), nil
}

// AttachSAP runs the CellBricks attach against bTelco idT: one exchange
// with the network, whose reply carries the broker-sealed authRespU. The
// shared secret ss then seeds the NAS context (the SMC exchange is
// subsumed because both sides already hold ss).
func (d *Device) AttachSAP(tx NASTransport, idT string) (*Attachment, error) {
	if d.CB == nil {
		return nil, errors.New("ue: no CellBricks SIM state")
	}
	reqU, pending, err := d.CB.NewAttachRequest(idT)
	if err != nil {
		return nil, err
	}
	sc := d.attachSpanCtx()
	start := d.tr.Now()
	defer func() {
		if sc.Valid() {
			d.tr.SpanCtx(sc, "ue", "attach-sap", start, d.tr.Now()-start,
				map[string]string{"telco": idT})
		}
	}()
	reply, err := tx(plainEnvelopeCtx(&nas.AttachRequestSAP{BrokerID: d.CB.IDB, AuthReqU: reqU.Marshal()}, sc))
	if err != nil {
		return nil, err
	}
	msg, err := d.decodeReply(reply)
	if err != nil {
		return nil, err
	}
	accept, ok := msg.(*nas.AttachAccept)
	if !ok {
		return nil, rejectOr(msg)
	}
	respU, err := sap.UnmarshalAuthRespU(accept.AuthRespU)
	if err != nil {
		return nil, err
	}
	ss, uref, err := d.CB.HandleResponse(pending, respU)
	if err != nil {
		return nil, fmt.Errorf("ue: broker authentication: %w", err)
	}
	d.mu.Lock()
	d.ctx = nas.NewSecurityContext(ss)
	d.mu.Unlock()
	a := d.install(accept)
	if d.Meter != nil {
		bindStart := d.tr.Now()
		d.Meter.BindSession(uref)
		// No uref in the args: broker references come from crypto/rand, and
		// trace output must be byte-identical across runs of one seed.
		if sc.Valid() {
			d.tr.SpanCtx(sc.Child(d.ids.Next()), "billing", "bind-session",
				bindStart, d.tr.Now()-bindStart, nil)
		}
	}
	return a, nil
}

func (d *Device) install(accept *nas.AttachAccept) *Attachment {
	a := &Attachment{
		SessionID: accept.SessionID,
		IP:        accept.IP,
		BearerID:  accept.BearerID,
		QCI:       accept.QCI,
		DLAmbrBps: accept.DLAmbrBps,
		ULAmbrBps: accept.ULAmbrBps,
	}
	d.mu.Lock()
	d.attach = a
	d.mu.Unlock()
	if d.Meter != nil {
		d.Meter.StartSession()
	}
	return a
}

// AttachAuto is the dual-stack incremental-deployment mode of §3.1: the
// device prefers the CellBricks SAP attach and falls back to the legacy
// EPS-AKA flow when the network (or the broker path) cannot serve it —
// "UEs run both legacy and SAP authentication protocols in a dual-stack
// mode."
func (d *Device) AttachAuto(tx NASTransport, idT string) (*Attachment, error) {
	if d.CB != nil {
		a, err := d.AttachSAP(tx, idT)
		if err == nil {
			return a, nil
		}
		if d.Legacy == nil {
			return nil, err
		}
	}
	return d.AttachLegacy(tx)
}

// RequestDedicatedBearer asks the network for an additional bearer of the
// given QoS class on the current session (e.g. a voice bearer beside the
// default), over the protected NAS channel.
func (d *Device) RequestDedicatedBearer(tx NASTransport, qci byte) (uint32, error) {
	d.mu.Lock()
	a := d.attach
	d.mu.Unlock()
	if a == nil {
		return 0, ErrNotAttached
	}
	env, err := d.protectedEnvelope(&nas.SessionRequest{SessionID: a.SessionID, APN: "internet", QCI: qci})
	if err != nil {
		return 0, err
	}
	reply, err := tx(env)
	if err != nil {
		return 0, err
	}
	msg, err := d.decodeReply(reply)
	if err != nil {
		return 0, err
	}
	accept, ok := msg.(*nas.SessionAccept)
	if !ok {
		return 0, rejectOr(msg)
	}
	return accept.BearerID, nil
}

// Detach tears the attachment down (host-driven: "a user simply detaches
// from one cell tower and independently attaches to a new tower").
func (d *Device) Detach(tx NASTransport) error {
	d.mu.Lock()
	a := d.attach
	d.mu.Unlock()
	if a == nil {
		return ErrNotAttached
	}
	env, err := d.protectedEnvelope(&nas.DetachRequest{SessionID: a.SessionID})
	if err != nil {
		return err
	}
	reply, err := tx(env)
	if err != nil {
		return err
	}
	msg, err := d.decodeReply(reply)
	if err != nil {
		return err
	}
	if _, ok := msg.(*nas.DetachAccept); !ok {
		return rejectOr(msg)
	}
	d.mu.Lock()
	d.ctx = nil
	d.attach = nil
	d.mu.Unlock()
	return nil
}

func rejectOr(msg nas.Message) error {
	if rej, ok := msg.(*nas.AttachReject); ok {
		if rej.RetryAfterMS > 0 {
			// A degraded broker's load-shedding hint rode the reject; keep
			// it typed so the attach state machine can honour the backoff.
			return fmt.Errorf("%w: %s: %w", ErrRejected, rej.Cause,
				&wire.RetryAfterError{After: time.Duration(rej.RetryAfterMS) * time.Millisecond})
		}
		return fmt.Errorf("%w: %s", ErrRejected, rej.Cause)
	}
	return fmt.Errorf("%w: %T", ErrUnexpected, msg)
}

// BasebandMeter is the tamper-resistant measurement function the paper
// embeds in baseband firmware: it counts the session's traffic (PDCP-like
// byte counters), tracks QoS observations (RLC-like loss, delay), and
// emits reports signed and sealed *inside* the trust boundary — the OS
// side only ever sees the sealed envelope.
type BasebandMeter struct {
	key       *pki.KeyPair
	brokerPub pki.PublicIdentity

	mu         sync.Mutex
	sessionRef string
	seq        uint32
	ulBytes    uint64
	dlBytes    uint64
	dlRecv     uint64
	dlLost     uint64
	delaySumMs float64
	delayN     int
	callSecs   float64
	smsCount   uint32
}

// NewBasebandMeter builds a meter bound to the device key and broker.
func NewBasebandMeter(key *pki.KeyPair, brokerPub pki.PublicIdentity) *BasebandMeter {
	return &BasebandMeter{key: key, brokerPub: brokerPub}
}

// StartSession resets counters for a new attachment. The session
// reference is learned later (BindSession) because SAP keeps the UE
// anonymous to the bTelco; the broker's authRespU could carry it, but the
// paper's reports are keyed by session identifier agreed out of band — we
// bind via the broker's grant record in the harness.
func (m *BasebandMeter) StartSession() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionRef = ""
	m.seq = 0
	m.ulBytes, m.dlBytes, m.dlRecv, m.dlLost = 0, 0, 0, 0
	m.delaySumMs, m.delayN = 0, 0
	m.callSecs, m.smsCount = 0, 0
}

// BindSession sets the session reference used in reports.
func (m *BasebandMeter) BindSession(ref string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionRef = ref
}

// CountUL records transmitted bytes.
func (m *BasebandMeter) CountUL(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ulBytes += uint64(n)
}

// CountDL records received bytes.
func (m *BasebandMeter) CountDL(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dlBytes += uint64(n)
	m.dlRecv++
}

// CountDLLoss records radio-layer losses observed by the baseband (RLC
// sequence gaps).
func (m *BasebandMeter) CountDLLoss(packets int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dlLost += uint64(packets)
}

// AddCallSeconds records voice-call airtime (the "duration for phone
// call" field of the paper's traffic report).
func (m *BasebandMeter) AddCallSeconds(s float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.callSecs += s
}

// CountSMS records sent/received SMS events.
func (m *BasebandMeter) CountSMS(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.smsCount += uint32(n)
}

// ObserveDelay records a delay sample in milliseconds.
func (m *BasebandMeter) ObserveDelay(ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delaySumMs += ms
	m.delayN++
}

// Snapshot returns current usage (ul, dl bytes).
func (m *BasebandMeter) Snapshot() (ul, dl uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ulBytes, m.dlBytes
}

// Report emits the next sealed traffic report at relative time rel. It is
// signed with the device key and sealed to the broker before leaving the
// "baseband", so neither the OS nor the bTelco can alter it.
func (m *BasebandMeter) Report(rel time.Duration) (*billing.SealedReport, error) {
	m.mu.Lock()
	m.seq++
	lossRate := 0.0
	if m.dlRecv+m.dlLost > 0 {
		lossRate = float64(m.dlLost) / float64(m.dlRecv+m.dlLost)
	}
	delay := 0.0
	if m.delayN > 0 {
		delay = m.delaySumMs / float64(m.delayN)
	}
	r := &billing.Report{
		SessionRef: m.sessionRef,
		Reporter:   billing.ReporterUE,
		Seq:        m.seq,
		Rel:        rel,
		ULBytes:    m.ulBytes,
		DLBytes:    m.dlBytes,
		CallSecs:   m.callSecs,
		SMSCount:   m.smsCount,
		QoS: billing.QoSMetrics{
			DLLossRate: lossRate,
			DLDelayMs:  delay,
		},
	}
	m.mu.Unlock()
	return billing.Seal(r, m.key, m.brokerPub)
}

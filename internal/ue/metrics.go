package ue

import (
	"cellbricks/internal/obs"
)

// Telemetry handles for the UE attach path. The FSM drives both real
// sockets and the discrete-event testbed; counters are append-only
// atomics that never touch the FSM's rng or the caller's clock, so the
// seeded experiments stay byte-identical with telemetry on.
var mtr struct {
	attempts      *obs.Counter
	retries       *obs.Counter
	fallbacks     *obs.Counter
	giveups       *obs.Counter
	sheds         *obs.Counter
	watchdogTrips *obs.Counter
}

func init() { SetMetricsEnabled(true) }

// SetMetricsEnabled installs (true) or removes (false) the package's
// handles in the default registry.
func SetMetricsEnabled(on bool) {
	if !on {
		mtr.attempts, mtr.retries, mtr.fallbacks, mtr.giveups = nil, nil, nil, nil
		mtr.sheds, mtr.watchdogTrips = nil, nil
		return
	}
	r := obs.Default()
	mtr.attempts = r.Counter("ue_attach_attempts_total", "attach attempts started (first try and retries)")
	mtr.retries = r.Counter("ue_attach_retries_total", "attach failures absorbed by the retry FSM")
	mtr.fallbacks = r.Counter("ue_attach_fallbacks_total", "times the FSM rotated off the serving bTelco")
	mtr.giveups = r.Counter("ue_attach_giveups_total", "attach budgets exhausted without success")
	mtr.sheds = r.Counter("ue_attach_shed_total", "attach attempts refused by a shedding broker (typed retry-after hint honored)")
	mtr.watchdogTrips = r.Counter("ue_watchdog_trips_total", "no-goodput watchdog trips (blackhole evidence)")
}

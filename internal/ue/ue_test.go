package ue

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/sap"
)

func testKey(t *testing.T, seed byte) *pki.KeyPair {
	t.Helper()
	k, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{seed}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDeviceWithoutSIMsRefuses(t *testing.T) {
	d := NewDevice("r", nil, nil)
	if _, err := d.AttachLegacy(nil); err == nil {
		t.Fatal("legacy attach without SIM accepted")
	}
	if _, err := d.AttachSAP(nil, "t"); err == nil {
		t.Fatal("SAP attach without CB state accepted")
	}
	if err := d.Detach(nil); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("detach err = %v", err)
	}
}

func TestAttachSAPRejectsReject(t *testing.T) {
	key := testKey(t, 1)
	brokerKey := testKey(t, 2)
	cb := &sap.UEState{IDU: "u", IDB: "b", Key: key, BrokerPub: brokerKey.Public()}
	d := NewDevice("r", nil, cb)
	tx := func(env []byte) ([]byte, error) {
		return append([]byte{0}, nas.Encode(&nas.AttachReject{Cause: "nope"})...), nil
	}
	_, err := d.AttachSAP(tx, "telco")
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if d.Attached() != nil {
		t.Fatal("device thinks it attached")
	}
}

func TestAttachSAPRejectsUnexpectedMessage(t *testing.T) {
	key := testKey(t, 3)
	cb := &sap.UEState{IDU: "u", IDB: "b", Key: key, BrokerPub: testKey(t, 4).Public()}
	d := NewDevice("r", nil, cb)
	tx := func(env []byte) ([]byte, error) {
		return append([]byte{0}, nas.Encode(&nas.SecurityModeCommand{})...), nil
	}
	if _, err := d.AttachSAP(tx, "telco"); !errors.Is(err, ErrUnexpected) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttachSAPRejectsForgedAccept(t *testing.T) {
	// An accept whose authRespU was not produced by the broker must fail
	// broker authentication at the UE.
	key := testKey(t, 5)
	brokerKey := testKey(t, 6)
	evilKey := testKey(t, 7)
	cb := &sap.UEState{IDU: "u", IDB: "b", Key: key, BrokerPub: brokerKey.Public()}
	d := NewDevice("r", nil, cb)
	tx := func(env []byte) ([]byte, error) {
		sealed, err := pki.Seal(key.Public(), []byte("junk"))
		if err != nil {
			return nil, err
		}
		respU := &sap.AuthRespU{Sealed: sealed, Sig: evilKey.Sign(sealed)}
		accept := &nas.AttachAccept{SessionID: 1, IP: "10.0.0.1", AuthRespU: respU.Marshal()}
		return append([]byte{0}, nas.Encode(accept)...), nil
	}
	if _, err := d.AttachSAP(tx, "telco"); err == nil {
		t.Fatal("forged accept passed broker authentication")
	}
}

func TestBasebandMeterCountersAndReport(t *testing.T) {
	key := testKey(t, 8)
	brokerKey := testKey(t, 9)
	m := NewBasebandMeter(key, brokerKey.Public())
	m.StartSession()
	m.BindSession("sess-1")
	m.CountDL(1000)
	m.CountDL(2000)
	m.CountUL(300)
	m.CountDLLoss(2)
	m.ObserveDelay(40)
	m.ObserveDelay(60)

	ul, dl := m.Snapshot()
	if ul != 300 || dl != 3000 {
		t.Fatalf("snapshot = %d/%d", ul, dl)
	}
	env, err := m.Report(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Only the broker can open it; the signature is the device key's.
	r, err := billing.OpenVerified(env, brokerKey, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionRef != "sess-1" || r.DLBytes != 3000 || r.ULBytes != 300 || r.Seq != 1 {
		t.Fatalf("report = %+v", r)
	}
	// Loss rate: 2 lost of (2 received + 2 lost).
	if r.QoS.DLLossRate != 0.5 {
		t.Fatalf("loss = %v", r.QoS.DLLossRate)
	}
	if r.QoS.DLDelayMs != 50 {
		t.Fatalf("delay = %v", r.QoS.DLDelayMs)
	}
	// Sequence advances.
	env2, _ := m.Report(60 * time.Second)
	r2, err := billing.OpenVerified(env2, brokerKey, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 {
		t.Fatalf("seq = %d", r2.Seq)
	}
}

func TestBasebandMeterResetOnNewSession(t *testing.T) {
	key := testKey(t, 10)
	m := NewBasebandMeter(key, testKey(t, 11).Public())
	m.StartSession()
	m.CountDL(500)
	m.StartSession() // re-attach: counters reset
	ul, dl := m.Snapshot()
	if ul != 0 || dl != 0 {
		t.Fatalf("counters survived new session: %d/%d", ul, dl)
	}
}

func TestMeterReportTamperEvident(t *testing.T) {
	key := testKey(t, 12)
	brokerKey := testKey(t, 13)
	m := NewBasebandMeter(key, brokerKey.Public())
	m.StartSession()
	m.BindSession("s")
	m.CountDL(1_000_000)
	env, err := m.Report(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The OS layer (outside the baseband) cannot alter the sealed report
	// without detection.
	env.Sealed[40] ^= 0xFF
	if _, err := billing.OpenVerified(env, brokerKey, key.Public()); err == nil {
		t.Fatal("tampered baseband report accepted")
	}
}

func TestTransportErrorPropagates(t *testing.T) {
	key := testKey(t, 14)
	cb := &sap.UEState{IDU: "u", IDB: "b", Key: key, BrokerPub: testKey(t, 15).Public()}
	d := NewDevice("r", nil, cb)
	boom := errors.New("radio failure")
	tx := func([]byte) ([]byte, error) { return nil, boom }
	if _, err := d.AttachSAP(tx, "t"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeterCallAndSMSAccounting(t *testing.T) {
	key := testKey(t, 16)
	brokerKey := testKey(t, 17)
	m := NewBasebandMeter(key, brokerKey.Public())
	m.StartSession()
	m.BindSession("s")
	m.AddCallSeconds(30.5)
	m.AddCallSeconds(12)
	m.CountSMS(3)
	env, err := m.Report(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r, err := billing.OpenVerified(env, brokerKey, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if r.CallSecs != 42.5 || r.SMSCount != 3 {
		t.Fatalf("call=%v sms=%d", r.CallSecs, r.SMSCount)
	}
	// New session resets.
	m.StartSession()
	env2, _ := m.Report(time.Second)
	r2, _ := billing.OpenVerified(env2, brokerKey, key.Public())
	if r2.CallSecs != 0 || r2.SMSCount != 0 {
		t.Fatal("call/SMS counters survived new session")
	}
}

// scriptedCore is a minimal in-test network side for the legacy flow:
// real AKA vectors, real SMC, real protected accept.
type scriptedCore struct {
	t     *testing.T
	k     aka.K
	sqn   uint64
	xres  []byte
	ctx   *nas.SecurityContext
	state int
}

func (c *scriptedCore) handle(envelope []byte) ([]byte, error) {
	plain := func(m nas.Message) []byte { return append([]byte{0}, nas.Encode(m)...) }
	protected := envelope[0] == 1
	body := envelope[1:]
	if protected {
		pt, err := c.ctx.Unprotect(nas.Uplink, body)
		if err != nil {
			return nil, err
		}
		body = pt
	}
	msg, err := nas.Decode(body)
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *nas.AttachRequestLegacy:
		c.sqn++
		v := aka.GenerateVectorWithRAND(c.k, c.sqn, [16]byte{9})
		c.xres = v.XRES
		c.ctx = nas.NewSecurityContext(v.KASME)
		c.state = 1
		return plain(&nas.AuthenticationRequest{RAND: v.RAND, AUTN: v.AUTN}), nil
	case *nas.AuthenticationResponse:
		if c.state != 1 || !bytes.Equal(m.RES, c.xres) {
			return plain(&nas.AttachReject{Cause: "RES mismatch"}), nil
		}
		c.state = 2
		return plain(&nas.SecurityModeCommand{CipherAlg: 2, IntegrityAlg: 2}), nil
	case *nas.SecurityModeComplete:
		if c.state != 2 || !protected {
			return nil, errors.New("SMC complete out of order")
		}
		c.state = 3
		accept := &nas.AttachAccept{SessionID: 7, IP: "10.9.9.9", BearerID: 1, QCI: 9}
		return append([]byte{1}, c.ctx.Protect(nas.Downlink, nas.Encode(accept))...), nil
	case *nas.DetachRequest:
		if !protected {
			return nil, errors.New("unprotected detach")
		}
		return append([]byte{1}, c.ctx.Protect(nas.Downlink, nas.Encode(&nas.DetachAccept{SessionID: m.SessionID}))...), nil
	default:
		return nil, errors.New("unexpected message")
	}
}

func TestAttachLegacyFullFlow(t *testing.T) {
	k := aka.K{5, 5, 5}
	core := &scriptedCore{t: t, k: k}
	d := NewDevice("r", &aka.SIM{K: k, IMSI: "001015551234567"}, nil)
	a, err := d.AttachLegacy(core.handle)
	if err != nil {
		t.Fatal(err)
	}
	if a.IP != "10.9.9.9" || a.SessionID != 7 {
		t.Fatalf("attachment = %+v", a)
	}
	if d.Context() == nil {
		t.Fatal("no security context after legacy attach")
	}
	if err := d.Detach(core.handle); err != nil {
		t.Fatal(err)
	}
	if d.Attached() != nil || d.Context() != nil {
		t.Fatal("state survived detach")
	}
}

func TestAttachLegacyRejectMidway(t *testing.T) {
	// A reject in place of the SMC surfaces as ErrRejected.
	k := aka.K{6, 6, 6}
	step := 0
	tx := func(envelope []byte) ([]byte, error) {
		step++
		if step == 1 {
			v := aka.GenerateVectorWithRAND(k, 1, [16]byte{1})
			return append([]byte{0}, nas.Encode(&nas.AuthenticationRequest{RAND: v.RAND, AUTN: v.AUTN})...), nil
		}
		return append([]byte{0}, nas.Encode(&nas.AttachReject{Cause: "subscription expired"})...), nil
	}
	d := NewDevice("r", &aka.SIM{K: k, IMSI: "00101"}, nil)
	if _, err := d.AttachLegacy(tx); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttachAutoPrefersSAPFallsBack(t *testing.T) {
	// No CellBricks state at all: AttachAuto goes straight to legacy.
	k := aka.K{7, 7, 7}
	core := &scriptedCore{t: t, k: k}
	d := NewDevice("r", &aka.SIM{K: k, IMSI: "00101"}, nil)
	if _, err := d.AttachAuto(core.handle, "any"); err != nil {
		t.Fatal(err)
	}
	// CB-only device with a failing network: the SAP error surfaces (no
	// legacy to fall back to).
	key := testKey(t, 20)
	cb := &sap.UEState{IDU: "u", IDB: "b", Key: key, BrokerPub: testKey(t, 21).Public()}
	d2 := NewDevice("r2", nil, cb)
	boom := errors.New("no SAP here")
	if _, err := d2.AttachAuto(func([]byte) ([]byte, error) { return nil, boom }, "t"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtectedReplyWithoutContext(t *testing.T) {
	d := NewDevice("r", nil, nil)
	// A protected downlink envelope before any attach must be rejected.
	if _, err := d.decodeReply([]byte{1, 0, 0, 0}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.decodeReply(nil); err == nil {
		t.Fatal("empty reply accepted")
	}
}

package ue

import "time"

// Watchdog is the UE-side no-goodput detector behind the paper's claim
// that users can attach through *untrusted* bTelcos: a bTelco can accept
// the attach, answer the control plane politely, and silently blackhole
// the data path — billing verification alone never sees it, because both
// counters agree that nothing was delivered. The watchdog watches the
// only signal the bTelco cannot forge, the UE's own delivered-byte
// counter, and trips after a configurable window with zero forward
// progress. The caller (the device's attach loop) turns a trip into
// evidence for the broker (Brokerd.ReportWatchdog) and a re-attach away
// from the offending cell.
//
// The watchdog is pure state over an injected clock: the caller decides
// when to Observe (per timer tick in the simulator, per poll on real
// hardware), so the same logic drives both.
type Watchdog struct {
	// Window is how long delivered bytes may stall before a trip
	// (default 4s).
	Window time.Duration

	armed        bool
	lastBytes    uint64
	lastProgress time.Duration
	trips        int
}

// NewWatchdog builds a watchdog; window <= 0 selects the 4s default.
func NewWatchdog(window time.Duration) *Watchdog {
	if window <= 0 {
		window = 4 * time.Second
	}
	return &Watchdog{Window: window}
}

// Arm starts (or restarts) the watch at now with the current delivered
// counter — call it when an attach completes.
func (w *Watchdog) Arm(now time.Duration, delivered uint64) {
	w.armed = true
	w.lastBytes = delivered
	w.lastProgress = now
}

// Disarm stops the watch — call it on detach, when a stall is expected.
func (w *Watchdog) Disarm() { w.armed = false }

// Armed reports whether the watchdog is running.
func (w *Watchdog) Armed() bool { return w.armed }

// Observe feeds the current delivered-byte counter at time now and
// reports whether the watchdog tripped: no forward progress for a full
// window. A trip disarms the watchdog (the caller re-arms after the
// re-attach), so one stall yields one piece of evidence.
func (w *Watchdog) Observe(now time.Duration, delivered uint64) bool {
	if !w.armed {
		return false
	}
	if delivered > w.lastBytes {
		w.lastBytes = delivered
		w.lastProgress = now
		return false
	}
	if now-w.lastProgress < w.Window {
		return false
	}
	w.armed = false
	w.trips++
	mtr.watchdogTrips.Add(1)
	return true
}

// Trips counts how many times this watchdog has tripped.
func (w *Watchdog) Trips() int { return w.trips }

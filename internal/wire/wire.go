// Package wire is the length-prefixed framing and minimal request/response
// RPC used between the real-socket components of the testbed: UE <-> AGW
// (standing in for the radio + S1 interface) and AGW <-> brokerd /
// SubscriberDB (the S6A-like northbound). Stdlib only.
//
// Frame layout: length(4, big-endian, covers type+payload) || type(1) ||
// payload. Each Call writes one frame and reads one frame; the server
// serves calls on a connection strictly in order, which matches the
// signalling protocols modelled here.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 1 << 20

// Message type bytes for the CellBricks control protocols.
const (
	// bTelco/AGW -> brokerd
	TypeSAPAuthRequest byte = iota + 1
	TypeSAPAuthResponse

	// UE/bTelco -> brokerd billing ingestion
	TypeReportUpload
	TypeReportAck

	// AGW -> SubscriberDB (legacy S6A-like, two round trips)
	TypeAIR // Authentication Information Request
	TypeAIA // Authentication Information Answer
	TypeULR // Update Location Request
	TypeULA // Update Location Answer

	// UE -> AGW NAS transport
	TypeNAS
	TypeNASReply

	// Generic error reply: payload is a UTF-8 message.
	TypeError
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrClosed        = errors.New("wire: connection closed")
)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Handler serves one request frame, returning the reply frame. Returning
// an error sends a TypeError frame with the error text.
type Handler func(msgType byte, payload []byte) (replyType byte, reply []byte, err error)

// Server accepts connections and serves frames with a Handler.
type Server struct {
	ln      net.Listener
	handler Handler

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer starts a server on addr ("127.0.0.1:0" for tests). The
// returned server is already accepting.
func NewServer(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error; listener errors after Close land
				// in the done case above.
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		msgType, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		replyType, reply, err := s.handler(msgType, payload)
		if err != nil {
			replyType, reply = TypeError, []byte(err.Error())
		}
		if err := WriteFrame(conn, replyType, reply); err != nil {
			return
		}
	}
}

// Close stops accepting and closes all connections, waiting for handler
// goroutines to drain.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

// Client is a synchronous request/response client over one TCP connection.
// Safe for concurrent use; calls serialize.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects a client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Call sends one frame and waits for the reply. A TypeError reply is
// surfaced as an error.
func (c *Client) Call(msgType byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, nil, ErrClosed
	}
	if err := WriteFrame(c.conn, msgType, payload); err != nil {
		return 0, nil, err
	}
	replyType, reply, err := ReadFrame(c.conn)
	if err != nil {
		return 0, nil, err
	}
	if replyType == TypeError {
		return replyType, nil, fmt.Errorf("wire: remote error: %s", reply)
	}
	return replyType, reply, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Package wire is the length-prefixed framing and minimal request/response
// RPC used between the real-socket components of the testbed: UE <-> AGW
// (standing in for the radio + S1 interface) and AGW <-> brokerd /
// SubscriberDB (the S6A-like northbound). Stdlib only.
//
// Frame layout: length(4, big-endian, covers type+payload) || type(1) ||
// payload. Each Call writes one frame and reads one frame; the server
// serves calls on a connection strictly in order, which matches the
// signalling protocols modelled here.
//
// Robustness: a Call that fails mid-frame leaves the TCP stream in an
// undefined framing state, so the client marks the connection broken and
// transparently redials on the next attempt instead of desyncing. Options
// adds per-call deadlines and bounded, jittered-exponential-backoff
// retries; ServerOptions adds idle-connection timeouts. A degraded server
// can shed load with a typed retry-after reply (TypeRetryAfter /
// RetryAfterError) that survives the round trip.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"cellbricks/internal/obs"
)

// MaxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory.
const MaxFrame = 1 << 20

// Message type bytes for the CellBricks control protocols.
const (
	// bTelco/AGW -> brokerd
	TypeSAPAuthRequest byte = iota + 1
	TypeSAPAuthResponse

	// UE/bTelco -> brokerd billing ingestion
	TypeReportUpload
	TypeReportAck

	// AGW -> SubscriberDB (legacy S6A-like, two round trips)
	TypeAIR // Authentication Information Request
	TypeAIA // Authentication Information Answer
	TypeULR // Update Location Request
	TypeULA // Update Location Answer

	// UE -> AGW NAS transport
	TypeNAS
	TypeNASReply

	// Generic error reply: payload is a UTF-8 message.
	TypeError

	// Load-shedding reply from a degraded server: payload is a uint32
	// big-endian retry-after hint in milliseconds. Surfaced to callers as
	// *RetryAfterError.
	TypeRetryAfter
)

// FrameTraced is the type-byte bit marking a traced frame: a 24-byte
// obs.SpanContext sits between the type byte and the payload, carrying the
// causal trace identity across the socket. All Type* values stay below
// 0x80, so the bit is unambiguous; untraced frames are byte-identical to
// the pre-tracing wire format.
const FrameTraced byte = 0x80

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrClosed        = errors.New("wire: connection closed")
)

// RetryAfterError is the typed load-shedding signal: a degraded server
// (e.g. a broker warming up after a crash-restart) answers with it instead
// of queueing work it cannot serve. Callers — the wire client's retry loop
// and the UE attach state machine — back off for at least After before
// retrying. The connection itself remains healthy.
type RetryAfterError struct{ After time.Duration }

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("wire: server degraded, retry after %v", e.After)
}

// encodeRetryAfter renders the retry-after hint as the TypeRetryAfter
// payload (uint32 milliseconds, minimum 1).
func encodeRetryAfter(after time.Duration) []byte {
	ms := after.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(ms))
	return b[:]
}

// decodeRetryAfter parses a TypeRetryAfter payload, defaulting to 100 ms
// on malformed hints rather than failing the whole exchange.
func decodeRetryAfter(p []byte) time.Duration {
	if len(p) != 4 {
		return 100 * time.Millisecond
	}
	return time.Duration(binary.BigEndian.Uint32(p)) * time.Millisecond
}

// framePool recycles frame assembly buffers across WriteFrame calls: one
// pooled buffer per frame instead of a fresh header slice, and a single
// Write instead of two (one syscall per frame on a real socket).
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	return WriteFrameCtx(w, msgType, obs.SpanContext{}, payload)
}

// WriteFrameCtx writes one frame carrying a span context. An invalid
// (zero) context writes the plain pre-tracing frame, so untraced traffic
// is byte-identical with or without this path.
func WriteFrameCtx(w io.Writer, msgType byte, sc obs.SpanContext, payload []byte) error {
	traced := sc.Valid() && msgType&FrameTraced == 0
	hdr := 1
	if traced {
		hdr += obs.SpanContextLen
	}
	if len(payload)+hdr > MaxFrame {
		return ErrFrameTooLarge
	}
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+hdr))
	if traced {
		buf = append(buf, msgType|FrameTraced)
		buf = obs.AppendSpanContext(buf, sc)
	} else {
		buf = append(buf, msgType)
	}
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	if err != nil {
		return err
	}
	mtr.framesSent.Add(1)
	mtr.bytesSent.Add(uint64(4 + hdr + len(payload)))
	return nil
}

// ReadFrame reads one frame, discarding any span context it carries.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	msgType, _, payload, err = ReadFrameCtx(r)
	return msgType, payload, err
}

// ReadFrameCtx reads one frame, returning the span context it carries
// (zero for untraced frames) alongside the unmasked type byte.
func ReadFrameCtx(r io.Reader) (msgType byte, sc obs.SpanContext, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, obs.SpanContext{}, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return 0, obs.SpanContext{}, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, obs.SpanContext{}, nil, err
	}
	mtr.framesRecv.Add(1)
	mtr.bytesRecv.Add(uint64(len(lenBuf) + len(buf)))
	msgType, payload = buf[0], buf[1:]
	if msgType&FrameTraced != 0 {
		sc, err = obs.DecodeSpanContext(payload)
		if err != nil {
			return 0, obs.SpanContext{}, nil, err
		}
		msgType &^= FrameTraced
		payload = payload[obs.SpanContextLen:]
	}
	return msgType, sc, payload, nil
}

// Handler serves one request frame, returning the reply frame. Returning
// an error sends a TypeError frame with the error text (or a
// TypeRetryAfter frame when the error is a *RetryAfterError).
type Handler func(msgType byte, payload []byte) (replyType byte, reply []byte, err error)

// CtxHandler is a Handler that also receives the span context carried by a
// traced frame (zero for untraced frames) — the server side of end-to-end
// causal tracing.
type CtxHandler func(sc obs.SpanContext, msgType byte, payload []byte) (replyType byte, reply []byte, err error)

// ServerOptions tunes server robustness. The zero value keeps connections
// open indefinitely and backs accept errors off between 5 ms and 1 s.
type ServerOptions struct {
	// IdleTimeout closes a connection whose peer sends nothing for this
	// long (0 = never). A dead or wedged peer then costs one goroutine for
	// a bounded time instead of forever.
	IdleTimeout time.Duration
	// AcceptBackoff is the initial sleep after a non-shutdown Accept
	// error; it doubles per consecutive failure up to MaxAcceptBackoff.
	AcceptBackoff    time.Duration
	MaxAcceptBackoff time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.AcceptBackoff <= 0 {
		o.AcceptBackoff = 5 * time.Millisecond
	}
	if o.MaxAcceptBackoff <= 0 {
		o.MaxAcceptBackoff = time.Second
	}
	return o
}

// Server accepts connections and serves frames with a Handler or
// CtxHandler.
type Server struct {
	ln      net.Listener
	handler CtxHandler
	opts    ServerOptions

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
	panics    uint64
}

// NewServer starts a server on addr ("127.0.0.1:0" for tests) with
// default options. The returned server is already accepting.
func NewServer(addr string, h Handler) (*Server, error) {
	return NewServerOptions(addr, h, ServerOptions{})
}

// NewServerOptions starts a server with explicit robustness options.
func NewServerOptions(addr string, h Handler, o ServerOptions) (*Server, error) {
	return NewServerCtxOptions(addr, func(_ obs.SpanContext, msgType byte, payload []byte) (byte, []byte, error) {
		return h(msgType, payload)
	}, o)
}

// NewServerCtx starts a server whose handler receives the span context of
// traced frames.
func NewServerCtx(addr string, h CtxHandler) (*Server, error) {
	return NewServerCtxOptions(addr, h, ServerOptions{})
}

// NewServerCtxOptions starts a context-aware server with explicit
// robustness options.
func NewServerCtxOptions(addr string, h CtxHandler, o ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, opts: o.withDefaults(), conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HandlerPanics reports how many handler panics the server has recovered.
func (s *Server) HandlerPanics() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := s.opts.AcceptBackoff
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept error (EMFILE, conn reset in backlog, ...):
			// capped exponential backoff instead of busy-spinning at 100%
			// CPU on a persistent failure. Listener errors after Close
			// land in the done case above or here via the done select.
			t := time.NewTimer(backoff)
			select {
			case <-s.done:
				t.Stop()
				return
			case <-t.C:
			}
			if backoff *= 2; backoff > s.opts.MaxAcceptBackoff {
				backoff = s.opts.MaxAcceptBackoff
			}
			continue
		}
		backoff = s.opts.AcceptBackoff
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// handle runs the handler with panic isolation: a panicking handler costs
// one connection, not the process.
func (s *Server) handle(sc obs.SpanContext, msgType byte, payload []byte) (replyType byte, reply []byte, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("wire: handler panic: %v", r)
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			mtr.panics.Add(1)
			obs.Errorf("wire", "handler panic (type %d): %v", msgType, r)
		}
	}()
	replyType, reply, err = s.handler(sc, msgType, payload)
	return
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		msgType, sc, payload, err := ReadFrameCtx(conn)
		if err != nil {
			return
		}
		replyType, reply, err, panicked := s.handle(sc, msgType, payload)
		if err != nil {
			var ra *RetryAfterError
			if errors.As(err, &ra) {
				replyType, reply = TypeRetryAfter, encodeRetryAfter(ra.After)
			} else {
				replyType, reply = TypeError, []byte(err.Error())
			}
		}
		if err := WriteFrame(conn, replyType, reply); err != nil {
			return
		}
		if panicked {
			// The handler's state for this connection is suspect; reply,
			// then close this one connection.
			return
		}
	}
}

// Close stops accepting and closes all connections, waiting for handler
// goroutines to drain.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

// Options tunes client robustness. The zero value keeps the original
// behaviour — no deadlines, no in-call retries — except that a transport
// error now breaks the connection and the next Call transparently redials
// instead of reusing a desynced frame stream.
type Options struct {
	// CallTimeout bounds each attempt's write+read on the socket
	// (0 = no deadline).
	CallTimeout time.Duration
	// DialTimeout bounds each (re)dial (default 5 s).
	DialTimeout time.Duration
	// MaxRetries is how many additional attempts a Call makes after a
	// transport failure or a retry-after reply, redialling as needed.
	// Remote application errors (TypeError) never retry.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (default 10 ms), capped at MaxBackoff (default 1 s).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// Jitter randomizes each backoff by up to this fraction (0..1) using
	// a deterministic source seeded with Seed, so retry storms decorrelate
	// but tests replay exactly.
	Jitter float64
	Seed   int64
	// Sleep and Dialer are injection points for tests and fault
	// harnesses; nil selects time.Sleep and a plain TCP dial.
	Sleep  func(time.Duration)
	Dialer func(addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// ClientStats counts the client's recovery actions.
type ClientStats struct {
	Calls   uint64 // completed Call invocations
	Retries uint64 // extra attempts after a failure
	Redials uint64 // reconnects (including the lazy redial after a break)
	Broken  uint64 // connections abandoned mid-frame
}

// Client is a synchronous request/response client over one TCP connection.
// Safe for concurrent use; calls serialize.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	addr   string
	closed bool
	opts   Options
	rng    *rand.Rand
	stats  ClientStats
}

// Dial connects a client with default options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects a client with explicit robustness options. The
// initial dial must succeed; later breaks redial transparently.
func DialOptions(addr string, o Options) (*Client, error) {
	o = o.withDefaults()
	c := &Client{addr: addr, opts: o, rng: rand.New(rand.NewSource(o.Seed))}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr)
	}
	return net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
}

// Stats returns a snapshot of the client's recovery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// breakConn abandons a connection whose framing state is undefined (a
// partial write or read happened). The next attempt redials.
func (c *Client) breakConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.stats.Broken++
		mtr.broken.Add(1)
		obs.Debugf("wire", "connection to %s broken mid-frame, will redial", c.addr)
	}
}

// backoff computes the jittered exponential delay before retry attempt
// `attempt` (1-based), honouring a server retry-after hint as a floor.
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	d := c.opts.RetryBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	if j := c.opts.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j/2 + j*c.rng.Float64()))
	}
	if d < floor {
		d = floor
	}
	return d
}

// callOnce performs one framed exchange on the current connection,
// redialling first if the previous attempt broke it. transport=true means
// the connection state is undefined and the frame may not have been
// served.
func (c *Client) callOnce(msgType byte, sc obs.SpanContext, payload []byte) (byte, []byte, error, bool) {
	if c.conn == nil {
		conn, err := c.dial()
		if err != nil {
			return 0, nil, err, true
		}
		c.conn = conn
		c.stats.Redials++
		mtr.redials.Add(1)
		obs.Debugf("wire", "redialled %s", c.addr)
	}
	if c.opts.CallTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	}
	if err := WriteFrameCtx(c.conn, msgType, sc, payload); err != nil {
		return 0, nil, err, true
	}
	replyType, reply, err := ReadFrame(c.conn)
	if err != nil {
		return 0, nil, err, true
	}
	switch replyType {
	case TypeError:
		return replyType, nil, fmt.Errorf("wire: remote error: %s", reply), false
	case TypeRetryAfter:
		return replyType, nil, &RetryAfterError{After: decodeRetryAfter(reply)}, false
	}
	return replyType, reply, nil, false
}

// Call sends one frame and waits for the reply. A TypeError reply is
// surfaced as an error; a TypeRetryAfter reply as *RetryAfterError. With
// MaxRetries > 0, transport failures and retry-after replies are retried
// with jittered exponential backoff, redialling broken connections; an
// attempt that fails mid-frame always abandons the connection so a later
// Call can never read a stale or misaligned reply.
func (c *Client) Call(msgType byte, payload []byte) (byte, []byte, error) {
	return c.CallCtx(msgType, obs.SpanContext{}, payload)
}

// CallCtx is Call with a span context attached to the request frame — the
// client side of end-to-end causal tracing. A zero context sends the plain
// pre-tracing frame.
func (c *Client) CallCtx(msgType byte, sc obs.SpanContext, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	c.stats.Calls++
	mtr.calls.Add(1)
	if mtr.callLatency != nil {
		start := time.Now()
		defer func() { mtr.callLatency.Observe(time.Since(start)) }()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			mtr.retries.Add(1)
		}
		replyType, reply, err, transport := c.callOnce(msgType, sc, payload)
		if err == nil {
			return replyType, reply, nil
		}
		var ra *RetryAfterError
		switch {
		case transport:
			// Mid-frame failure: the stream is desynced, never reuse it.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				mtr.deadlineHits.Add(1)
			}
			c.breakConn()
			lastErr = err
			obs.Debugf("wire", "call to %s attempt %d failed: %v", c.addr, attempt+1, err)
		case errors.As(err, &ra):
			// Typed shed signal: connection healthy, retry after the hint.
			mtr.shedReplies.Add(1)
			lastErr = err
			obs.Debugf("wire", "server %s shedding load, retry after %v", c.addr, ra.After)
		default:
			// Remote application error: the exchange completed; framing is
			// intact and retrying would re-run a failed request.
			return replyType, reply, err
		}
		if attempt >= c.opts.MaxRetries {
			return 0, nil, lastErr
		}
		floor := time.Duration(0)
		if ra != nil {
			floor = ra.After
		}
		c.opts.Sleep(c.backoff(attempt+1, floor))
	}
}

// Close closes the underlying connection. Subsequent Calls return
// ErrClosed (Close is the only way a client becomes permanently unusable;
// transport failures merely redial).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

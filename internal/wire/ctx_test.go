package wire

import (
	"bytes"
	"testing"

	"cellbricks/internal/obs"
)

func TestFrameCtxRoundTrip(t *testing.T) {
	sc := obs.SpanContext{Trace: 0xabc, Span: 0xdef, Parent: 0x123}
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, TypeNAS, sc, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	msgType, got, payload, err := ReadFrameCtx(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != TypeNAS {
		t.Fatalf("type = %d, want %d (traced bit must be stripped)", msgType, TypeNAS)
	}
	if got != sc {
		t.Fatalf("ctx round trip %+v != %+v", got, sc)
	}
	if string(payload) != "payload" {
		t.Fatalf("payload = %q", payload)
	}
}

// TestUntracedFrameBytesUnchanged: WriteFrameCtx with a zero context must
// produce byte-identical frames to the pre-tracing WriteFrame.
func TestUntracedFrameBytesUnchanged(t *testing.T) {
	var plain, viaCtx bytes.Buffer
	if err := WriteFrame(&plain, TypeSAPAuthRequest, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameCtx(&viaCtx, TypeSAPAuthRequest, obs.SpanContext{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaCtx.Bytes()) {
		t.Fatalf("zero-ctx frame differs from plain frame:\n%x\n%x", plain.Bytes(), viaCtx.Bytes())
	}
	// 4 length + 1 type + 1 payload.
	if plain.Len() != 6 {
		t.Fatalf("plain frame length = %d, want 6", plain.Len())
	}
}

// TestReadFrameDiscardsCtx: a legacy ReadFrame caller receiving a traced
// frame sees the unmasked type and the bare payload.
func TestReadFrameDiscardsCtx(t *testing.T) {
	var buf bytes.Buffer
	sc := obs.SpanContext{Trace: 1, Span: 2, Parent: 3}
	if err := WriteFrameCtx(&buf, TypeNAS, sc, []byte("body")); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != TypeNAS || string(payload) != "body" {
		t.Fatalf("legacy read got type=%d payload=%q", msgType, payload)
	}
}

// TestServerCtxHandlerReceivesContext: CallCtx carries the context across
// a real socket into a ctx-aware server handler; plain Call arrives with a
// zero context.
func TestServerCtxHandlerReceivesContext(t *testing.T) {
	got := make(chan obs.SpanContext, 2)
	s, err := NewServerCtx("127.0.0.1:0", func(sc obs.SpanContext, msgType byte, payload []byte) (byte, []byte, error) {
		got <- sc
		return TypeNASReply, payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := obs.SpanContext{Trace: 77, Span: 88, Parent: 99}
	if _, _, err := c.CallCtx(TypeNAS, want, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if sc := <-got; sc != want {
		t.Fatalf("server saw ctx %+v, want %+v", sc, want)
	}
	if _, _, err := c.Call(TypeNAS, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if sc := <-got; sc.Valid() {
		t.Fatalf("plain call must arrive with zero ctx, got %+v", sc)
	}
}

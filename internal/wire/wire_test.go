package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func echoServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		switch mt {
		case TypeNAS:
			return TypeNASReply, p, nil
		case TypeAIR:
			return TypeAIA, append([]byte("aia:"), p...), nil
		default:
			return 0, nil, fmt.Errorf("boom %d", mt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	_, c := echoServer(t)
	rt, reply, err := c.Call(TypeNAS, []byte("attach"))
	if err != nil {
		t.Fatal(err)
	}
	if rt != TypeNASReply || string(reply) != "attach" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
}

func TestCallDifferentTypes(t *testing.T) {
	_, c := echoServer(t)
	rt, reply, err := c.Call(TypeAIR, []byte("imsi"))
	if err != nil {
		t.Fatal(err)
	}
	if rt != TypeAIA || string(reply) != "aia:imsi" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
}

func TestCallServerError(t *testing.T) {
	_, c := echoServer(t)
	_, _, err := c.Call(TypeULR, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want remote boom", err)
	}
	// Connection survives an application error.
	if _, _, err := c.Call(TypeNAS, []byte("ok")); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, c := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("msg-%d", i))
			_, reply, err := c.Call(TypeNAS, payload)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(reply, payload) {
				errs <- fmt.Errorf("cross-talk: sent %q got %q", payload, reply)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMultipleClients(t *testing.T) {
	s, _ := echoServer(t)
	for i := 0; i < 5; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, reply, err := c.Call(TypeNAS, []byte{byte(i)}); err != nil || reply[0] != byte(i) {
			t.Fatalf("client %d: %v %v", i, reply, err)
		}
		c.Close()
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeNAS, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	mt, p, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeNAS || string(p) != "payload" {
		t.Fatalf("frame = %d %q", mt, p)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeReportAck, nil); err != nil {
		t.Fatal(err)
	}
	mt, p, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != TypeReportAck || len(p) != 0 {
		t.Fatalf("frame = %d %q", mt, p)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeNAS, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// A malicious length prefix is rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, TypeNAS})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeNAS, []byte("hello"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestCallAfterClose(t *testing.T) {
	_, c := echoServer(t)
	c.Close()
	if _, _, err := c.Call(TypeNAS, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, c := echoServer(t)
	s.Close()
	if _, _, err := c.Call(TypeNAS, []byte("x")); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cellbricks/internal/chaos"
)

// --- framing edge cases ---

func TestReadFrameZeroLength(t *testing.T) {
	// A zero length prefix is never legal (the type byte alone costs 1):
	// it must fail loudly, not loop or return an empty frame.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("zero-length frame: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header: expected error")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeNAS, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated payload: expected error")
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeNAS, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes onto the stream", buf.Len())
	}
}

// --- handler panic isolation ---

func TestHandlerPanicClosesOneConn(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		if mt == TypeNAS {
			panic("handler bug")
		}
		return TypeAIA, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := DialOptions(s.Addr(), Options{MaxRetries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The panicking request gets a TypeError reply...
	_, _, err = c.Call(TypeNAS, []byte("boom"))
	if err == nil || !strings.Contains(err.Error(), "handler panic") {
		t.Fatalf("err = %v, want handler panic error", err)
	}
	if got := s.HandlerPanics(); got != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", got)
	}
	// ...the connection is closed, but the server survives: the next call
	// transparently redials and succeeds.
	rt, reply, err := c.Call(TypeAIR, []byte("alive"))
	if err != nil {
		t.Fatalf("call after panic: %v", err)
	}
	if rt != TypeAIA || string(reply) != "alive" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
	if st := c.Stats(); st.Redials == 0 {
		t.Fatalf("expected a redial after the server closed the conn, stats %+v", st)
	}
}

// --- idle timeout + transparent redial ---

func TestIdleTimeoutAndRedial(t *testing.T) {
	s, err := NewServerOptions("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		return TypeNASReply, p, nil
	}, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := DialOptions(s.Addr(), Options{MaxRetries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Call(TypeNAS, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Let the server reap the idle connection, then call again: the retry
	// loop must mark the dead conn broken and redial rather than desync.
	time.Sleep(200 * time.Millisecond)
	rt, reply, err := c.Call(TypeNAS, []byte("two"))
	if err != nil {
		t.Fatalf("call after idle reap: %v", err)
	}
	if rt != TypeNASReply || string(reply) != "two" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
	st := c.Stats()
	if st.Broken == 0 || st.Redials == 0 {
		t.Fatalf("expected broken+redial counters, stats %+v", st)
	}
}

// --- typed retry-after ---

func TestRetryAfterSurfacesTyped(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		return 0, nil, &RetryAfterError{After: 250 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Call(TypeSAPAuthRequest, nil)
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("err = %v, want *RetryAfterError", err)
	}
	if ra.After != 250*time.Millisecond {
		t.Fatalf("After = %v, want 250ms", ra.After)
	}
}

func TestRetryAfterHonoredAsBackoffFloor(t *testing.T) {
	var calls atomic.Int64
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		if calls.Add(1) == 1 {
			return 0, nil, &RetryAfterError{After: 80 * time.Millisecond}
		}
		return TypeSAPAuthResponse, []byte("granted"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var slept []time.Duration
	c, err := DialOptions(s.Addr(), Options{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rt, reply, err := c.Call(TypeSAPAuthRequest, nil)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if rt != TypeSAPAuthResponse || string(reply) != "granted" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
	if len(slept) != 1 || slept[0] < 80*time.Millisecond {
		t.Fatalf("backoff %v did not honour the 80ms retry-after floor", slept)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Broken != 0 {
		t.Fatalf("shed retry must not break the conn, stats %+v", st)
	}
}

// --- deterministic fault injection on the dialer ---

func TestCallRecoversFromTruncatedWrite(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		return TypeNASReply, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First dial yields a conn that truncates its first write (and lies
	// about it — the peer sees a frame that never completes); subsequent
	// dials are clean. The client must abandon the poisoned conn and
	// succeed on the redial.
	var dials atomic.Int64
	c, err := DialOptions(s.Addr(), Options{
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Dialer: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				return chaos.NewFaultyConn(conn, 7, 0, 1.0), nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rt, reply, err := c.Call(TypeNAS, []byte("through the fire"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if rt != TypeNASReply || string(reply) != "through the fire" {
		t.Fatalf("reply = %d %q", rt, reply)
	}
	st := c.Stats()
	if st.Broken == 0 || st.Redials == 0 {
		t.Fatalf("expected the truncated conn to be broken and redialled, stats %+v", st)
	}
}

func TestCallSurvivesAdversarialNASDropAndTruncation(t *testing.T) {
	// The byzantine bTelco's NAS treatment as seen from the wire: the
	// server silently swallows the first two NAS requests (replying only
	// long after the client's deadline), and the first redial lands on a
	// conn that truncates its write mid-frame. The client must break the
	// stalled conn, break the poisoned conn, and still complete the call —
	// never desync into reading a stale late reply as the answer to a new
	// request.
	var calls atomic.Int64
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		if mt == TypeNAS && calls.Add(1) <= 2 {
			time.Sleep(300 * time.Millisecond) // well past CallTimeout: a drop
		}
		return TypeNASReply, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var dials atomic.Int64
	c, err := DialOptions(s.Addr(), Options{
		MaxRetries:   6,
		RetryBackoff: time.Millisecond,
		CallTimeout:  50 * time.Millisecond,
		Dialer: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 2 {
				return chaos.NewFaultyConn(conn, 11, 0, 1.0), nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rt, reply, err := c.Call(TypeNAS, []byte("attach req"))
	if err != nil {
		t.Fatalf("Call through drop+truncation storm: %v", err)
	}
	if rt != TypeNASReply || string(reply) != "attach req" {
		t.Fatalf("reply = %d %q, want echoed attach req", rt, reply)
	}
	st := c.Stats()
	if st.Broken < 2 || st.Redials < 2 {
		t.Fatalf("expected >=2 broken conns and >=2 redials through the storm, stats %+v", st)
	}
	// A fresh call on the healed client must work first try.
	if _, _, err := c.Call(TypeNAS, []byte("steady")); err != nil {
		t.Fatalf("steady-state call after storm: %v", err)
	}
}

func TestCallTimeoutBreaksConn(t *testing.T) {
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", func(mt byte, p []byte) (byte, []byte, error) {
		<-block
		return TypeNASReply, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()

	c, err := DialOptions(s.Addr(), Options{CallTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Call(TypeNAS, []byte("stuck")); err == nil {
		t.Fatal("expected deadline error")
	}
	if st := c.Stats(); st.Broken != 1 {
		t.Fatalf("timed-out conn must be broken, stats %+v", st)
	}
}

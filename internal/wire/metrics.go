package wire

import (
	"cellbricks/internal/obs"
)

// Package-wide telemetry handles. Unlike netem, wire components are
// genuinely concurrent (one goroutine per connection), so these are shared
// atomics incremented directly — the costs here are socket syscalls, not
// nanosecond event dispatch, so a few atomic adds per frame are invisible.
//
// Handles are nil-safe: SetMetricsEnabled(false) turns every record into a
// single predictable branch.
var mtr struct {
	framesSent *obs.Counter
	framesRecv *obs.Counter
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter

	calls        *obs.Counter
	retries      *obs.Counter
	redials      *obs.Counter
	broken       *obs.Counter
	deadlineHits *obs.Counter
	shedReplies  *obs.Counter
	panics       *obs.Counter

	callLatency *obs.Histogram
}

func init() { SetMetricsEnabled(true) }

// SetMetricsEnabled installs (true) or removes (false) the package's
// handles in the default registry.
func SetMetricsEnabled(on bool) {
	if !on {
		mtr.framesSent, mtr.framesRecv, mtr.bytesSent, mtr.bytesRecv = nil, nil, nil, nil
		mtr.calls, mtr.retries, mtr.redials, mtr.broken = nil, nil, nil, nil
		mtr.deadlineHits, mtr.shedReplies, mtr.panics = nil, nil, nil
		mtr.callLatency = nil
		return
	}
	r := obs.Default()
	mtr.framesSent = r.Counter("wire_frames_sent_total", "frames written by WriteFrame")
	mtr.framesRecv = r.Counter("wire_frames_received_total", "frames read by ReadFrame")
	mtr.bytesSent = r.Counter("wire_bytes_sent_total", "payload+header bytes written by WriteFrame")
	mtr.bytesRecv = r.Counter("wire_bytes_received_total", "payload+header bytes read by ReadFrame")
	mtr.calls = r.Counter("wire_client_calls_total", "completed Call invocations")
	mtr.retries = r.Counter("wire_client_retries_total", "extra attempts after a failure or shed reply")
	mtr.redials = r.Counter("wire_client_redials_total", "client reconnects, including lazy redials")
	mtr.broken = r.Counter("wire_client_broken_total", "connections abandoned mid-frame")
	mtr.deadlineHits = r.Counter("wire_client_deadline_hits_total", "call attempts that failed on an i/o timeout")
	mtr.shedReplies = r.Counter("wire_client_shed_replies_total", "typed retry-after replies received")
	mtr.panics = r.Counter("wire_server_panics_total", "handler panics recovered by the server")
	mtr.callLatency = r.Histogram("wire_call_seconds", "end-to-end Call latency including retries", nil)
}

package netem

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestWorldCrossShardDelivery pins the basic cross-shard contract: a
// packet sent over a cross-shard link arrives at the destination shard at
// exactly send-time + Delay, with its fields intact, and is counted once.
func TestWorldCrossShardDelivery(t *testing.T) {
	w := NewWorld(1, 2)
	w.Place("a", 0)
	w.Place("b", 1)
	w.Connect("a", "b", &Link{Delay: 5 * time.Millisecond})

	type got struct {
		src, dst string
		size     int
		payload  any
		at       time.Duration
	}
	var deliveries []got
	w.Register("b", func(p *Packet) {
		deliveries = append(deliveries, got{p.Src, p.Dst, p.Size, p.Payload, w.Shard(1).Now()})
	})

	sa := w.Shard(0)
	sa.At(0, func() {
		if !sa.Send(&Packet{Src: "a", Dst: "b", Size: 700, Payload: "ping"}) {
			t.Error("send refused")
		}
	})
	sa.At(2*time.Millisecond, func() {
		sa.Send(&Packet{Src: "a", Dst: "b", Size: 800})
	})
	w.RunUntil(20 * time.Millisecond)

	want := []got{
		{"a", "b", 700, "ping", 5 * time.Millisecond},
		{"a", "b", 800, nil, 7 * time.Millisecond},
	}
	if !reflect.DeepEqual(deliveries, want) {
		t.Fatalf("deliveries = %+v, want %+v", deliveries, want)
	}
	if w.Now() != 20*time.Millisecond {
		t.Fatalf("world clock = %v", w.Now())
	}
	// Reply direction uses the other half-link with the same delay.
	var back time.Duration
	w.Register("a", func(p *Packet) { back = w.Shard(0).Now() })
	sb := w.Shard(1)
	sb.After(0, func() { sb.Send(&Packet{Src: "b", Dst: "a", Size: 100}) })
	w.RunUntil(40 * time.Millisecond)
	if back != 25*time.Millisecond {
		t.Fatalf("reply arrived at %v, want 25ms", back)
	}
}

// TestWorldCrossShardContract pins the panics that guard the determinism
// contract: zero-delay or randomized cross-shard links, conflicting
// placement, and topology changes after the world started.
func TestWorldCrossShardContract(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	w := NewWorld(1, 2)
	w.Place("a", 0)
	w.Place("b", 1)
	mustPanic("zero-delay cross link", func() { w.Connect("a", "b", &Link{}) })
	mustPanic("jittery cross link", func() { w.Connect("a", "b", &Link{Delay: time.Millisecond, Jitter: time.Millisecond}) })
	mustPanic("lossy cross link", func() { w.Connect("a", "b", &Link{Delay: time.Millisecond, Loss: 0.1}) })
	mustPanic("conflicting placement", func() { w.Place("a", 1) })
	mustPanic("unplaced endpoint", func() { w.Connect("a", "nowhere", &Link{Delay: time.Millisecond}) })
	w.Connect("a", "b", &Link{Delay: time.Millisecond})
	w.RunUntil(time.Millisecond)
	w.Place("c", 0)
	w.Place("d", 1)
	mustPanic("cross connect after start", func() { w.Connect("c", "d", &Link{Delay: time.Millisecond}) })
}

// TestWorldSameShardMatchesPlainSim: a world whose endpoints all share a
// shard must behave exactly like the plain Sim it wraps, whatever K is —
// the property the failover experiment's K-goldens build on.
func TestWorldSameShardMatchesPlainSim(t *testing.T) {
	run := func(newSim func() (*Sim, func(time.Duration))) []string {
		s, drive := newSim()
		var log []string
		s.Connect("x", "y", &Link{Delay: 3 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.2, BandwidthBps: 8e6})
		s.Register("y", func(p *Packet) {
			log = append(log, fmt.Sprintf("%d@%v", p.Size, s.Now()))
		})
		var tick func()
		i := 0
		tick = func() {
			i++
			s.Send(&Packet{Src: "x", Dst: "y", Size: 200 * i})
			if i < 40 {
				s.After(700*time.Microsecond, tick)
			}
		}
		s.At(0, tick)
		drive(60 * time.Millisecond)
		return log
	}
	plain := run(func() (*Sim, func(time.Duration)) {
		s := NewSim(42)
		return s, s.RunUntil
	})
	for _, k := range []int{1, 2, 4, 8} {
		w := NewWorld(42, k)
		got := run(func() (*Sim, func(time.Duration)) {
			return w.Shard(0), w.RunUntil
		})
		if !reflect.DeepEqual(got, plain) {
			t.Fatalf("K=%d single-shard world diverged from plain Sim:\n%v\nvs\n%v", k, got, plain)
		}
	}
}

// --- randomized cross-shard schedule/cancel interleaving -----------------

// wop is one pre-generated operation of the randomized world workload.
type wop struct {
	site int
	at   time.Duration
	kind int // 0 = send, 1 = arm a timer, 2 = cancel the newest armed timer
	dst  int // send: neighbor index
	size int
}

// shardNetSites is the fixed site count of the randomized topology: a
// ring with +2 chords, so every site has four neighbors and traffic
// crosses shard boundaries for every K > 1.
const shardNetSites = 6

func shardNetNeighbors(i int) []int {
	s := shardNetSites
	return []int{(i + 1) % s, (i + s - 1) % s, (i + 2) % s, (i + s - 2) % s}
}

// pairDelay gives every unordered site pair a distinct propagation delay
// (µs-scale spread plus a ns residue) so independent event chains don't
// collide on one timestamp — the tie-freedom the canonical merge order
// asks of workloads that want K-independent bytes.
func pairDelay(i, j int) time.Duration {
	if i > j {
		i, j = j, i
	}
	return 5*time.Millisecond + time.Duration(i*211+j*97)*time.Microsecond + time.Duration(i*7+j)*time.Nanosecond
}

// runShardNet executes a pre-generated op schedule on a K-shard world and
// returns each site's delivery/timer log in local event order, plus the
// per-site timestamps of every fired event (for the tie check). Receive
// handlers react deterministically to packet contents — responding,
// arming timers, cancelling timers — so schedule and cancellation chains
// thread across shard boundaries.
func runShardNet(t testing.TB, ops []wop, K int, horizon time.Duration) (map[string][]string, map[string][]time.Duration) {
	w := NewWorld(7, K)
	type site struct {
		name  string
		sim   *Sim
		log   []string
		times []time.Duration
		armed []*Event
	}
	sites := make([]*site, shardNetSites)
	for i := range sites {
		name := fmt.Sprintf("site-%d", i)
		w.Place(name, i%K)
		sites[i] = &site{name: name}
	}
	for i := range sites {
		sites[i].sim = w.ShardFor(sites[i].name)
		for _, j := range shardNetNeighbors(i) {
			if i < j {
				w.Connect(sites[i].name, sites[j].name, &Link{Delay: pairDelay(i, j)})
			}
		}
	}
	arm := func(st *site, fireIn time.Duration, tag int) {
		at := st.sim.Now() + fireIn
		ev := st.sim.At(at, func() {
			st.times = append(st.times, st.sim.Now())
			st.log = append(st.log, fmt.Sprintf("timer %d @%v", tag, st.sim.Now()))
			// Fired timers forward to a deterministic neighbor, so timer
			// chains also cross shards.
			nb := shardNetNeighbors(indexOfSite(st.name))[tag%4]
			st.sim.Send(&Packet{Src: st.name, Dst: sites[nb].name, Size: 30 + tag%7})
		})
		st.armed = append(st.armed, ev)
	}
	cancelNewest := func(st *site) {
		for n := len(st.armed); n > 0; n = len(st.armed) {
			ev := st.armed[n-1]
			st.armed = st.armed[:n-1]
			if !ev.Cancelled() {
				ev.Cancel()
				st.log = append(st.log, fmt.Sprintf("cancel @%v", st.sim.Now()))
				return
			}
		}
	}
	for i := range sites {
		st := sites[i]
		i := i
		w.Register(st.name, func(p *Packet) {
			st.times = append(st.times, st.sim.Now())
			st.log = append(st.log, fmt.Sprintf("%s->%s %d @%v", p.Src, p.Dst, p.Size, st.sim.Now()))
			switch {
			case p.Size >= 64 && p.Size%3 == 0:
				// Bounce a shrinking response back across the link.
				st.sim.Send(&Packet{Src: st.name, Dst: p.Src, Size: p.Size / 2})
			case p.Size%5 == 0:
				cancelNewest(st)
			case p.Size%7 == 0:
				arm(st, time.Duration(p.Size)*101*time.Microsecond+time.Duration(i)*time.Nanosecond, p.Size)
			}
		})
	}
	for idx, op := range ops {
		st := sites[op.site]
		op := op
		switch op.kind {
		case 0:
			dst := sites[shardNetNeighbors(op.site)[op.dst%4]]
			st.sim.At(op.at, func() {
				st.times = append(st.times, st.sim.Now())
				st.sim.Send(&Packet{Src: st.name, Dst: dst.name, Size: op.size})
			})
		case 1:
			tag := idx
			st.sim.At(op.at, func() {
				st.times = append(st.times, st.sim.Now())
				arm(st, time.Duration(op.size)*89*time.Microsecond+time.Duration(idx)*time.Nanosecond, tag)
			})
		default:
			st.sim.At(op.at, func() {
				st.times = append(st.times, st.sim.Now())
				cancelNewest(st)
			})
		}
	}
	w.RunUntil(horizon)
	out := make(map[string][]string, len(sites))
	times := make(map[string][]time.Duration, len(sites))
	for _, st := range sites {
		out[st.name] = st.log
		times[st.name] = st.times
	}
	return out, times
}

func indexOfSite(name string) int {
	var i int
	fmt.Sscanf(name, "site-%d", &i)
	return i
}

// hasTimestampTie reports whether any site fired two events at one
// instant — the one situation where the canonical (at, srcShard, seq)
// merge order is allowed to differ from a single Sim's (at, seq) order.
// Workloads under the byte-identity contract must avoid it, and the
// generators below are checked against the K=1 oracle for it.
func hasTimestampTie(times map[string][]time.Duration) bool {
	for _, ts := range times {
		seen := map[time.Duration]bool{}
		for _, at := range ts {
			if seen[at] {
				return true
			}
			seen[at] = true
		}
	}
	return false
}

// genOps builds a randomized schedule: sends, timer arms, and cancels at
// unique instants (µs-random plus an op-index ns residue).
func genOps(rng *rand.Rand, n int) []wop {
	ops := make([]wop, n)
	for i := range ops {
		ops[i] = wop{
			site: rng.Intn(shardNetSites),
			at:   time.Duration(rng.Intn(150_000))*time.Microsecond + time.Duration(i+1)*time.Nanosecond,
			kind: rng.Intn(3),
			dst:  rng.Intn(4),
			size: 20 + rng.Intn(2000),
		}
	}
	return ops
}

// TestWorldKEquivalenceRandomInterleaving is the randomized cross-shard
// schedule/cancel interleaving golden: the same op schedule must produce
// identical per-site logs for K ∈ {1, 2, 3, 4, 8}, with K=1 as the
// oracle (mirroring the wheel-vs-heap strategy of PR 6).
func TestWorldKEquivalenceRandomInterleaving(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 99} {
		rng := rand.New(rand.NewSource(seed))
		ops := genOps(rng, 120)
		oracle, times := runShardNet(t, ops, 1, 2*time.Second)
		if hasTimestampTie(times) {
			t.Fatalf("seed %d: generator produced a timestamp tie; pick offsets that keep instants unique", seed)
		}
		total := 0
		for _, log := range oracle {
			total += len(log)
		}
		if total < 100 {
			t.Fatalf("seed %d: workload too quiet (%d events) to be a meaningful golden", seed, total)
		}
		for _, k := range []int{2, 3, 4, 8} {
			got, _ := runShardNet(t, ops, k, 2*time.Second)
			if !reflect.DeepEqual(got, oracle) {
				t.Fatalf("seed %d: K=%d diverged from the K=1 oracle\nK=%d: %v\nK=1: %v", seed, k, k, got, oracle)
			}
		}
	}
}

// FuzzWorldOrder fuzzes op schedules and demands K=3 output equal to the
// K=1 oracle. Schedules that happen to produce a timestamp tie are
// skipped: tie ordering across source shards is outside the byte-identity
// contract (documented on World).
func FuzzWorldOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 40, 1, 1, 80, 2, 2, 120, 3, 0, 33})
	f.Add([]byte{250, 13, 77, 14, 99, 3, 160, 5, 0, 220, 21, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []wop
		for i := 0; i+2 < len(data) && len(ops) < 200; i += 3 {
			ops = append(ops, wop{
				site: int(data[i]) % shardNetSites,
				at:   time.Duration(data[i+1])*997*time.Microsecond + time.Duration(len(ops)+1)*time.Nanosecond,
				kind: int(data[i]/7) % 3,
				dst:  int(data[i+2]) % 4,
				size: 20 + int(data[i+2])*7,
			})
		}
		if len(ops) == 0 {
			return
		}
		oracle, times := runShardNet(t, ops, 1, 2*time.Second)
		if hasTimestampTie(times) {
			t.Skip("tie-ambiguous schedule")
		}
		got, _ := runShardNet(t, ops, 3, 2*time.Second)
		if !reflect.DeepEqual(got, oracle) {
			t.Fatalf("K=3 diverged from K=1 oracle\nK=3: %v\nK=1: %v", got, oracle)
		}
	})
}

// TestWorldShardedZeroAllocSend: the cross-shard steady state — send,
// mailbox park, barrier merge, inject, deliver — must allocate nothing.
// Worker fan-out is forced serial here (its per-window goroutine costs
// are amortized and measured by BenchmarkSendDeliverSharded instead).
func TestWorldShardedZeroAllocSend(t *testing.T) {
	w := NewWorld(1, 2)
	w.Place("a", 0)
	w.Place("b", 1)
	w.Connect("a", "b", &Link{Delay: time.Millisecond})
	w.Register("b", func(*Packet) {})
	w.workers = 1
	s := w.Shard(0)
	a, b := s.Endpoint("a"), s.Endpoint("b")
	window := func() {
		for i := 0; i < 64; i++ {
			pkt := s.GetPacket()
			pkt.SrcEP, pkt.DstEP = a, b
			pkt.Src, pkt.Dst = "a", "b"
			pkt.Size = 1400
			if !s.Send(pkt) {
				t.Fatal("send refused")
			}
		}
		w.RunUntil(w.Now() + time.Millisecond)
	}
	for i := 0; i < 512; i++ { // warm pools, mailboxes, and every wheel slot
		window()
	}
	if allocs := testing.AllocsPerRun(100, window); allocs != 0 {
		t.Fatalf("steady-state sharded send/deliver allocates %.1f objects/window", allocs)
	}
}

// BenchmarkSendDeliverSharded measures the cross-shard hot path per
// packet: 64-packet windows through the mailbox barrier. Reported
// allocs/op must stay 0 (CI gates every BenchmarkSendDeliver* on it);
// per-window worker/barrier costs amortize across the batch.
func BenchmarkSendDeliverSharded(b *testing.B) {
	w := NewWorld(1, 2)
	w.Place("a", 0)
	w.Place("b", 1)
	w.Connect("a", "b", &Link{Delay: time.Millisecond})
	delivered := 0
	w.Register("b", func(*Packet) { delivered++ })
	s := w.Shard(0)
	a, bEP := s.Endpoint("a"), s.Endpoint("b")
	const batch = 64
	window := func() {
		for i := 0; i < batch; i++ {
			pkt := s.GetPacket()
			pkt.SrcEP, pkt.DstEP = a, bEP
			pkt.Src, pkt.Dst = "a", "b"
			pkt.Size = 1400
			if !s.Send(pkt) {
				b.Fatal("send refused")
			}
		}
		w.RunUntil(w.Now() + time.Millisecond)
	}
	for i := 0; i < 512; i++ {
		window()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		window()
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no deliveries")
	}
}

// TestClampShards pins the GOMAXPROCS clamp benchmarks and CLIs use.
func TestClampShards(t *testing.T) {
	for _, k := range []int{-3, 0} {
		if got := ClampShards(k); got != 1 {
			t.Fatalf("ClampShards(%d) = %d, want 1", k, got)
		}
	}
	if got := ClampShards(1); got != 1 {
		t.Fatalf("ClampShards(1) = %d, want 1", got)
	}
	if got, max := ClampShards(1<<20), runtime.GOMAXPROCS(0); got != max {
		t.Fatalf("ClampShards(1<<20) = %d, want GOMAXPROCS %d", got, max)
	}
}

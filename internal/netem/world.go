package netem

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// World runs one emulated world across K Sim shards in parallel while
// producing output byte-identical to a single-Sim run. It is a
// conservative parallel discrete-event simulator: endpoints are placed on
// shards, links whose endpoints share a shard behave exactly as in a
// plain Sim, and cross-shard links contribute their propagation delay to
// the world's lookahead
//
//	lookahead = min over cross-shard links of Link.Delay
//
// which bounds how far any shard may run ahead of the others without
// missing a remote packet: a packet sent at time T on a cross-shard link
// arrives no earlier than T+lookahead, because every other term of the
// link model (shaping, serialization, FIFO push-back, pause) only adds
// delay. The world therefore advances all shards in lock-step windows of
// that width, exchanging cross-shard packets through per-(src,dst)
// mailboxes drained at the window barrier and injected into the
// destination shard in the canonical (arrival, srcShard, send-order)
// order — the same order a single Sim would have fired them in.
//
// Determinism contract, and what it asks of the caller:
//
//   - Every shard Sim is seeded with the same base seed, so a world that
//     lives entirely inside one shard (whichever one) draws an identical
//     random stream regardless of K.
//   - Cross-shard links must be delay-deterministic: Delay > 0 and no
//     Jitter/Loss (both draw the sending shard's RNG, whose stream would
//     then depend on the placement). Connect panics otherwise.
//   - Workloads whose endpoints may land on different shards must not
//     share mutable state across those endpoints except through the
//     network; transports (mptcp.Conn etc.) are shard-local — place both
//     ends of a connection on the same shard.
//   - Simultaneous cross-shard arrivals at one endpoint from different
//     source shards are ordered by (srcShard, send order), which depends
//     on placement; workloads that want K-independent bytes stagger such
//     senders (see testbed.RunScale's heartbeat phases).
//
// Within a window the shards run on up to min(K, GOMAXPROCS) goroutines;
// each Sim remains single-goroutine, and mailbox row i is written only by
// shard i's goroutine, so the only synchronization is the barrier itself.
type World struct {
	shards    []*Sim
	homes     map[string]int
	lookahead time.Duration // min cross-shard Delay; 0 = no cross links yet
	workers   int
	now       time.Duration
	started   bool

	// mail[src][dst] is the window's cross-shard traffic from shard src to
	// shard dst, appended in send order by shard src's goroutine and
	// drained by the coordinator at the barrier.
	mail [][][]xpkt
	// scratch is the reusable merge buffer, so the steady-state exchange
	// allocates nothing.
	scratch []xpkt

	xshardLocal uint64 // cross-shard packets since the last metrics flush
}

// xpkt is a cross-shard packet parked in a mailbox between windows: the
// caller-visible Packet fields by value, plus its arrival time (already
// including every delay term of the sending side's link model).
type xpkt struct {
	at       time.Duration
	src, dst string
	size     int
	payload  any
}

// remoteRoute marks a pathEntry as the local half of a cross-shard link;
// Send diverts admitted packets into the world's mailboxes instead of the
// local event queue.
type remoteRoute struct {
	w        *World
	srcShard int
	dstShard int
}

// ClampShards bounds a requested shard count to [1, GOMAXPROCS] — the
// policy knob for benchmarks and CLIs (more shards than cores only adds
// barrier overhead). Tests construct Worlds with explicit K instead:
// output is K-independent by construction, so K > NumCPU is legal, just
// not faster.
func ClampShards(k int) int {
	if k < 1 {
		return 1
	}
	if max := runtime.GOMAXPROCS(0); k > max {
		return max
	}
	return k
}

// NewWorld returns a world of k Sim shards (k < 1 selects 1), every shard
// seeded with the same base seed and using the process default scheduler.
func NewWorld(seed int64, k int) *World {
	if k < 1 {
		k = 1
	}
	w := &World{
		shards:  make([]*Sim, k),
		homes:   make(map[string]int),
		workers: ClampShards(k),
		mail:    make([][][]xpkt, k),
	}
	for i := range w.shards {
		w.shards[i] = NewSim(seed)
		w.shards[i].sharded = k > 1
		w.mail[i] = make([][]xpkt, k)
	}
	return w
}

// Shards reports the number of shards K.
func (w *World) Shards() int { return len(w.shards) }

// Shard returns shard i's simulator. Direct use is the point — schedule
// timers, connect same-shard links, build transports on it — but never
// run it (Step/Run/RunUntil) yourself; only the world may advance clocks.
func (w *World) Shard(i int) *Sim { return w.shards[i] }

// Now returns the world's virtual clock: the time every shard has been
// advanced to at the last barrier.
func (w *World) Now() time.Duration { return w.now }

// Lookahead reports the current window width (0 until the first
// cross-shard Connect).
func (w *World) Lookahead() time.Duration { return w.lookahead }

// Place assigns an endpoint name to a shard. Placing the same name twice
// on different shards panics; cross-shard routing needs one home per name.
func (w *World) Place(name string, shard int) {
	if shard < 0 || shard >= len(w.shards) {
		panic(fmt.Sprintf("netem: Place(%q, %d): world has %d shards", name, shard, len(w.shards)))
	}
	if prev, ok := w.homes[name]; ok && prev != shard {
		panic(fmt.Sprintf("netem: Place(%q, %d): already placed on shard %d", name, shard, prev))
	}
	w.homes[name] = shard
}

// Home reports the shard an endpoint was placed on, or -1.
func (w *World) Home(name string) int {
	if s, ok := w.homes[name]; ok {
		return s
	}
	return -1
}

// ShardFor returns the simulator of the shard name was placed on; it
// panics for unplaced names.
func (w *World) ShardFor(name string) *Sim {
	return w.shards[w.mustHome(name)]
}

func (w *World) mustHome(name string) int {
	s, ok := w.homes[name]
	if !ok {
		panic(fmt.Sprintf("netem: endpoint %q not placed on any shard", name))
	}
	return s
}

// Register installs the receive handler for a placed endpoint on its home
// shard.
func (w *World) Register(name string, fn func(*Packet)) {
	w.ShardFor(name).Register(name, fn)
}

// Connect installs a link between two placed endpoints. Same shard: a
// plain Sim.Connect. Different shards: the link is split into two
// per-direction halves (each shard owns the serialization/shaper state of
// its outbound direction — a shaper pointer set on the link is touched by
// exactly one shard), its Delay joins the lookahead bound, and the link
// must be delay-deterministic (Delay > 0, no Jitter, no Loss). The link
// struct is copied for cross-shard installs: mutate it afterwards (Down,
// PausedUntil) only for same-shard links.
func (w *World) Connect(a, b string, l *Link) {
	ha, hb := w.mustHome(a), w.mustHome(b)
	if ha == hb {
		w.shards[ha].Connect(a, b, l)
		return
	}
	if w.started {
		panic(fmt.Sprintf("netem: cross-shard Connect(%q, %q) after the world started running", a, b))
	}
	if l.Delay <= 0 {
		panic(fmt.Sprintf("netem: cross-shard link %q<->%q needs Delay > 0 (it is the conservative lookahead)", a, b))
	}
	if l.Jitter > 0 || l.Loss > 0 {
		panic(fmt.Sprintf("netem: cross-shard link %q<->%q must be delay-deterministic (no Jitter/Loss)", a, b))
	}
	if w.lookahead == 0 || l.Delay < w.lookahead {
		w.lookahead = l.Delay
	}
	la, lb := *l, *l
	w.shards[ha].connectRemote(a, b, &la, &remoteRoute{w: w, srcShard: ha, dstShard: hb})
	w.shards[hb].connectRemote(a, b, &lb, &remoteRoute{w: w, srcShard: hb, dstShard: ha})
}

// enqueue parks an admitted cross-shard packet in the sender's mailbox
// row until the window barrier. Called from the sending shard's goroutine
// only (row r.srcShard has a single writer).
func (w *World) enqueue(r *remoteRoute, pkt *Packet, arrival time.Duration) {
	box := &w.mail[r.srcShard][r.dstShard]
	*box = append(*box, xpkt{at: arrival, src: pkt.Src, dst: pkt.Dst, size: pkt.Size, payload: pkt.Payload})
}

// RunUntil advances every shard to exactly t in lock-step windows of the
// lookahead width, draining mailboxes at each barrier. With no
// cross-shard links the whole span is one window. Like Sim.RunUntil it is
// a no-op for t in the past.
func (w *World) RunUntil(t time.Duration) {
	w.started = true
	for w.now < t {
		end := t
		if w.lookahead > 0 && w.now+w.lookahead < t {
			end = w.now + w.lookahead
		}
		w.advanceAll(end)
		w.now = end
		w.exchange()
	}
	// Boundary drain: the final exchange may have injected arrivals at
	// exactly t, which a single Sim would have fired inside RunUntil(t).
	// Their handlers can only send further cross-shard packets arriving
	// after t (lookahead > 0), so one extra pass settles the boundary.
	w.advanceAll(t)
	w.exchange()
	w.flushMetrics()
}

// Pending reports the number of scheduled events across all shards.
func (w *World) Pending() int {
	n := 0
	for _, s := range w.shards {
		n += s.Pending()
	}
	return n
}

// advanceAll runs every shard to time t, in parallel when the world has
// both multiple shards and multiple workers. Shards share no state within
// a window (mailbox rows are single-writer), so worker scheduling cannot
// affect output.
func (w *World) advanceAll(t time.Duration) {
	n := w.workers
	if n > len(w.shards) {
		n = len(w.shards)
	}
	if n <= 1 {
		for _, s := range w.shards {
			s.RunUntil(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for g := 0; g < n; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(w.shards) {
					return
				}
				w.shards[i].RunUntil(t)
			}
		}()
	}
	wg.Wait()
}

// exchange drains every mailbox into its destination shard. For each
// destination the packets from all source shards are merged in the
// canonical (arrival, srcShard, send order) order: rows are appended in
// srcShard order, each already in send order, so a stable sort on arrival
// alone realizes it. Runs on the coordinator goroutine with all shards
// parked at the barrier.
func (w *World) exchange() {
	for dst := range w.shards {
		buf := w.scratch[:0]
		for src := range w.shards {
			box := &w.mail[src][dst]
			if len(*box) == 0 {
				continue
			}
			buf = append(buf, *box...)
			clear(*box)
			*box = (*box)[:0]
		}
		if len(buf) == 0 {
			w.scratch = buf
			continue
		}
		slices.SortStableFunc(buf, func(a, b xpkt) int {
			switch {
			case a.at < b.at:
				return -1
			case a.at > b.at:
				return 1
			}
			return 0
		})
		ds := w.shards[dst]
		for i := range buf {
			ds.inject(buf[i].at, buf[i].src, buf[i].dst, buf[i].size, buf[i].payload)
		}
		w.xshardLocal += uint64(len(buf))
		clear(buf)
		w.scratch = buf[:0]
	}
}

// flushMetrics publishes the world-level view at the end of a RunUntil:
// sharded Sims suppress the per-Sim queue-depth gauge (last-flush-wins is
// meaningless across shards), so the world sets the merged depth, plus
// the cross-shard traffic counter.
func (w *World) flushMetrics() {
	if len(w.shards) == 1 {
		return // the lone shard's own flush is already the world view
	}
	mtr.queueDepth.Set(int64(w.Pending()))
	if w.xshardLocal > 0 {
		mtr.xshard.Add(w.xshardLocal)
		w.xshardLocal = 0
	}
}

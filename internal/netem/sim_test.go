package netem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSimFIFOAtSameInstant(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSimCancel(t *testing.T) {
	s := NewSim(1)
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("count = %d after RunUntil(3s), want 3", count)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d after Run, want 5", count)
	}
}

func TestSimSchedulePastPanics(t *testing.T) {
	s := NewSim(1)
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, step)
		}
	}
	s.After(0, step)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestLinkDelivery(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{Delay: 10 * time.Millisecond})
	var at time.Duration = -1
	s.Register("b", func(p *Packet) { at = s.Now() })
	if !s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
		t.Fatal("send rejected")
	}
	s.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
}

func TestLinkBidirectional(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{Delay: 5 * time.Millisecond})
	gotA, gotB := 0, 0
	s.Register("a", func(p *Packet) { gotA++ })
	s.Register("b", func(p *Packet) { gotB++ })
	s.Send(&Packet{Src: "a", Dst: "b", Size: 1})
	s.Send(&Packet{Src: "b", Dst: "a", Size: 1})
	s.Run()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("gotA=%d gotB=%d, want 1,1", gotA, gotB)
	}
}

func TestLinkLossAllAndNone(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{Loss: 1.0})
	got := 0
	s.Register("b", func(p *Packet) { got++ })
	for i := 0; i < 50; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 1})
	}
	s.Run()
	if got != 0 {
		t.Fatalf("loss=1.0 delivered %d packets", got)
	}

	s2 := NewSim(1)
	s2.Connect("a", "b", &Link{Loss: 0})
	got2 := 0
	s2.Register("b", func(p *Packet) { got2++ })
	for i := 0; i < 50; i++ {
		s2.Send(&Packet{Src: "a", Dst: "b", Size: 1})
	}
	s2.Run()
	if got2 != 50 {
		t.Fatalf("loss=0 delivered %d packets, want 50", got2)
	}
}

func TestLinkLossStatistical(t *testing.T) {
	s := NewSim(42)
	s.Connect("a", "b", &Link{Loss: 0.3})
	got := 0
	s.Register("b", func(p *Packet) { got++ })
	const n = 10000
	for i := 0; i < n; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 1})
	}
	s.Run()
	frac := float64(got) / n
	if frac < 0.66 || frac > 0.74 {
		t.Fatalf("delivery fraction %.3f, want ~0.70", frac)
	}
}

func TestLinkDownDrops(t *testing.T) {
	s := NewSim(1)
	l := &Link{Delay: time.Millisecond}
	s.Connect("a", "b", l)
	got := 0
	s.Register("b", func(p *Packet) { got++ })
	l.Down = true
	if s.Send(&Packet{Src: "a", Dst: "b", Size: 1}) {
		t.Fatal("send on down link accepted")
	}
	l.Down = false
	if !s.Send(&Packet{Src: "a", Dst: "b", Size: 1}) {
		t.Fatal("send on up link rejected")
	}
	s.Run()
	if got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestUnregisteredDestinationSilentDrop(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{})
	if !s.Send(&Packet{Src: "a", Dst: "b", Size: 1}) {
		t.Fatal("send rejected; in-flight drop expected instead")
	}
	s.Run() // must not panic
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000-byte packets at 8000 bits/s => 1s each, back to back.
	s := NewSim(1)
	s.Connect("a", "b", &Link{BandwidthBps: 8000, MaxQueue: 10 * time.Second})
	var arrivals []time.Duration
	s.Register("b", func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 3; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 1000})
	}
	s.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestShaperThroughputBound(t *testing.T) {
	// Offered load 10x the policed rate: delivered goodput over the window
	// must approximate the policed rate.
	s := NewSim(7)
	sh := NewShaper(ConstantRate(1e6), 16*1024, 64*1024) // 1 Mbps
	s.Connect("a", "b", &Link{Delay: time.Millisecond, ShaperAB: sh})
	delivered := 0
	s.Register("b", func(p *Packet) { delivered += p.Size })

	pktSize := 1250 // 10 kbit
	var tick func()
	end := 10 * time.Second
	tick = func() {
		if s.Now() >= end {
			return
		}
		// 10 Mbps offered: one 1250B packet per ms.
		s.Send(&Packet{Src: "a", Dst: "b", Size: pktSize})
		s.After(time.Millisecond, tick)
	}
	s.After(0, tick)
	s.RunUntil(end + time.Second)

	gotBps := float64(delivered) * 8 / 10
	if gotBps < 0.8e6 || gotBps > 1.25e6 {
		t.Fatalf("shaped goodput %.0f bps, want ~1e6", gotBps)
	}
}

func TestDayNightPolicy(t *testing.T) {
	p := NewDefaultDayNightPolicy(3)
	// Sim starts at 13:00 -> day.
	if !p.IsDay(0) {
		t.Fatal("13:00 should be day")
	}
	// +12h = 01:00 -> night (after the 00:30 switch-off).
	if p.IsDay(12 * time.Hour) {
		t.Fatal("01:00 should be night")
	}
	// +11h20m = 00:20 -> still day (before 00:30).
	if !p.IsDay(11*time.Hour + 20*time.Minute) {
		t.Fatal("00:20 should still be day-policed")
	}
	if r := p.Rate(0); r != p.DayRateBps {
		t.Fatalf("day rate = %v, want %v", r, p.DayRateBps)
	}
	// Night rates: positive, bounded by peak, variable.
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		tm := 12*time.Hour + time.Duration(i)*p.NightEpoch
		r := p.Rate(tm)
		if r <= 0 || r > p.NightPeakBps {
			t.Fatalf("night rate %v out of range", r)
		}
		seen[int64(r)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("night rates insufficiently variable: %d distinct", len(seen))
	}
}

func TestDayNightPolicyDeterministic(t *testing.T) {
	a := NewDefaultDayNightPolicy(9)
	b := NewDefaultDayNightPolicy(9)
	for i := 0; i < 100; i++ {
		tm := 12*time.Hour + time.Duration(i)*time.Second
		if a.Rate(tm) != b.Rate(tm) {
			t.Fatal("same-seed policies disagree")
		}
	}
}

func TestNightMeanCalibration(t *testing.T) {
	p := NewDefaultDayNightPolicy(11)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		// Stay inside the night window (00:30-06:00 -> sim 11.5h-17h from
		// the 13:00 anchor).
		sum += p.Rate(12*time.Hour + time.Duration(i)*p.NightEpoch)
	}
	mean := sum / n
	// Clamping at the peak pulls the mean below the configured target.
	if mean < 14e6 || mean > 21e6 {
		t.Fatalf("night mean %.2f Mbps, want ~15-20", mean/1e6)
	}
}

// Property: for any schedule of events with non-negative delays, the clock
// observed inside each callback is monotonically non-decreasing.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim(5)
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a shaper never delivers more bytes over a window than
// rate*window + burst allows.
func TestPropertyShaperNeverExceedsRate(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		s := NewSim(seed)
		const rate = 2e6
		burst := 8 * 1024
		sh := NewShaper(ConstantRate(rate), burst, 1<<20)
		s.Connect("a", "b", &Link{ShaperAB: sh})
		delivered := 0
		s.Register("b", func(p *Packet) { delivered += p.Size })
		for i, sz := range sizes {
			size := int(sz) + 1
			at := time.Duration(i) * 100 * time.Microsecond
			s.At(at, func() { s.Send(&Packet{Src: "a", Dst: "b", Size: size}) })
		}
		window := time.Duration(len(sizes)) * 100 * time.Microsecond
		s.Run()
		elapsed := window + s.Now() // generous upper bound on drain window
		maxBytes := rate/8*elapsed.Seconds() + float64(burst) + 256
		return float64(delivered) <= maxBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkStatsAndTap(t *testing.T) {
	s := NewSim(1)
	l := &Link{Delay: time.Millisecond, Loss: 0}
	s.Connect("a", "b", l)
	s.Register("b", func(*Packet) {})
	tapped := 0
	s.OnSend = func(p *Packet, arrival time.Duration) {
		tapped++
		if arrival < s.Now() {
			t.Fatal("arrival before now")
		}
	}
	for i := 0; i < 10; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	}
	l.Down = true
	s.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	s.Run()
	st := l.Stats()
	if st.Sent != 10 || st.SentBytes != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DroppedDown != 1 {
		t.Fatalf("down drops = %d", st.DroppedDown)
	}
	if tapped != 10 {
		t.Fatalf("tap saw %d", tapped)
	}
}

func TestLinkStatsLossCounted(t *testing.T) {
	s := NewSim(3)
	l := &Link{Loss: 0.5}
	s.Connect("a", "b", l)
	s.Register("b", func(*Packet) {})
	for i := 0; i < 1000; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 10})
	}
	st := l.Stats()
	if st.Sent+st.DroppedLoss != 1000 {
		t.Fatalf("sent %d + lost %d != 1000", st.Sent, st.DroppedLoss)
	}
	if st.DroppedLoss < 400 || st.DroppedLoss > 600 {
		t.Fatalf("loss drops = %d, want ~500", st.DroppedLoss)
	}
}

package netem

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// schedOp is one step of a scheduler workload: push an event at a given
// time, or pop the next one. The equivalence tests replay the same op
// stream against the wheel and the reference heap and demand identical
// pop sequences.
type schedOp struct {
	push bool
	at   time.Duration
}

// replay feeds ops to a scheduler and returns the (at, seq) sequence of
// every pop, including the final drain.
func replay(s scheduler, ops []schedOp) []Event {
	var seq uint64
	var out []Event
	pop := func() {
		if e := s.pop(); e != nil {
			out = append(out, Event{at: e.at, seq: e.seq})
		}
	}
	for _, op := range ops {
		if op.push {
			seq++
			s.push(&Event{at: op.at, seq: seq})
		} else {
			pop()
		}
	}
	for s.len() > 0 {
		pop()
	}
	return out
}

// checkEquivalence replays ops on both schedulers and fails the test on
// the first diverging pop.
func checkEquivalence(t *testing.T, ops []schedOp) {
	t.Helper()
	want := replay(&heapSched{}, ops)
	got := replay(newTimingWheel(), ops)
	if len(want) != len(got) {
		t.Fatalf("heap popped %d events, wheel %d", len(want), len(got))
	}
	for i := range want {
		if want[i].at != got[i].at || want[i].seq != got[i].seq {
			t.Fatalf("pop %d: heap (%v, %d) vs wheel (%v, %d)",
				i, want[i].at, want[i].seq, got[i].at, got[i].seq)
		}
	}
}

// randomOps builds a schedule/pop interleaving that exercises every wheel
// level: deltas from sub-slot (µs) through L0 (ms), L1 (hundreds of ms),
// and the overflow heap (minutes), plus exact slot-boundary collisions
// and duplicate timestamps (ordered by seq alone).
func randomOps(rng *rand.Rand, n int) []schedOp {
	var ops []schedOp
	var now time.Duration // tracks the front, as the Sim clock would
	pending := 0
	for i := 0; i < n; i++ {
		if pending > 0 && rng.Intn(3) == 0 {
			ops = append(ops, schedOp{push: false})
			pending--
			continue
		}
		var delta time.Duration
		switch rng.Intn(6) {
		case 0:
			delta = time.Duration(rng.Intn(1 << wheelSlotBits)) // same/adjacent L0 slot
		case 1:
			delta = time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
		case 2:
			delta = time.Duration(rng.Int63n(int64(5 * time.Second))) // L1 territory
		case 3:
			delta = time.Duration(rng.Int63n(int64(5 * time.Minute))) // overflow
		case 4:
			delta = time.Duration(rng.Intn(4)) << wheelSlotBits // exact slot boundaries
		case 5:
			delta = 0 // duplicate timestamp: seq breaks the tie
		}
		ops = append(ops, schedOp{push: true, at: now + delta})
		pending++
		if rng.Intn(4) == 0 {
			now += time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		}
	}
	return ops
}

// TestWheelMatchesHeapRandom is the randomized equivalence check: for many
// seeds, a mixed push/pop workload spanning all wheel levels must pop in
// exactly the heap's (at, seq) order.
func TestWheelMatchesHeapRandom(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkEquivalence(t, randomOps(rng, 2000))
	}
}

// TestWheelOverflowCascade pins the far-future path: events beyond the L1
// horizon start in the overflow heap and must cascade down through L1 and
// L0 in order, including events landing exactly on cascade boundaries.
func TestWheelOverflowCascade(t *testing.T) {
	var ops []schedOp
	times := []time.Duration{
		0,
		time.Duration(1) << wheelSlotBits,
		100 * time.Millisecond,
		time.Duration(wheelSlots) << wheelSlotBits, // first L1 slot boundary
		5 * time.Second,
		time.Duration(wheelSlots) << wheelL1Bits, // overflow horizon boundary
		80 * time.Second,
		200 * time.Second,
		10 * time.Minute,
	}
	// Push in reverse so nothing arrives pre-sorted, twice for seq ties.
	for round := 0; round < 2; round++ {
		for i := len(times) - 1; i >= 0; i-- {
			ops = append(ops, schedOp{push: true, at: times[i]})
		}
	}
	checkEquivalence(t, ops)
}

// TestWheelFarFutureJump covers the empty-wheel cursor jumps: a lone
// overflow event, then a lone L1 event, each reached without walking the
// intervening empty slots one by one.
func TestWheelFarFutureJump(t *testing.T) {
	w := newTimingWheel()
	w.push(&Event{at: 3 * time.Minute, seq: 1})
	if e := w.pop(); e == nil || e.at != 3*time.Minute {
		t.Fatalf("overflow jump popped %+v", e)
	}
	w.push(&Event{at: 3*time.Minute + 500*time.Millisecond, seq: 2})
	if e := w.pop(); e == nil || e.seq != 2 {
		t.Fatalf("L1 jump popped %+v", e)
	}
	if w.len() != 0 {
		t.Fatalf("len = %d after draining", w.len())
	}
}

// TestWheelClampedPush pins the "late push" rule at the Sim level: RunUntil
// peeks at a far-future event (advancing the wheel cursor past empty
// slots), then a new event lands between the clock and the cursor. It must
// still fire first, at its own timestamp.
func TestWheelClampedPush(t *testing.T) {
	s := NewSimScheduler(1, SchedulerWheel)
	var order []time.Duration
	s.At(10*time.Second, func() { order = append(order, s.Now()) })
	s.RunUntil(time.Second) // peeks past the 10 s event; cursor has moved
	s.At(2*time.Second, func() { order = append(order, s.Now()) })
	s.Run()
	if len(order) != 2 || order[0] != 2*time.Second || order[1] != 10*time.Second {
		t.Fatalf("firing order/times = %v", order)
	}
}

// TestWheelLatePushWhileDraining covers insertCurrent's sorted-splice arm:
// a handler schedules new events for the very instant the slot is mid-
// drain, which must slot into the undrained tail in (at, seq) order.
func TestWheelLatePushWhileDraining(t *testing.T) {
	s := NewSimScheduler(1, SchedulerWheel)
	var order []int
	at := 5 * time.Millisecond
	s.At(at, func() {
		order = append(order, 0)
		// Same timestamp as the two events below; must fire between them
		// in seq order, i.e. after 1 and 2 which were scheduled earlier.
		s.At(at, func() { order = append(order, 3) })
	})
	s.At(at, func() { order = append(order, 1) })
	s.At(at, func() { order = append(order, 2) })
	s.Run()
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// FuzzWheelOrder drives both schedulers from raw fuzz bytes and asserts
// identical pop order. Three bytes per op: an opcode selecting push
// horizon or pop, and a 16-bit delta scaled into the chosen level.
func FuzzWheelOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{5, 255, 255, 6, 0, 0, 5, 255, 255, 6, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0, 4, 0, 0, 6, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []schedOp
		var now time.Duration
		pending := 0
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 8
			delta := time.Duration(data[i+1]) | time.Duration(data[i+2])<<8
			switch op {
			case 6: // pop
				if pending > 0 {
					ops = append(ops, schedOp{push: false})
					pending--
				}
			case 7: // advance the notional clock
				now += delta << 10
			default: // push at now + delta, scaled into level `op`
				ops = append(ops, schedOp{push: true, at: now + delta<<(4+op*5)})
				pending++
			}
		}
		checkEquivalence(t, ops)
	})
}

// TestWheelCancelInterleavings drives two Sims — wheel and heap — through
// an identical randomized schedule/cancel interleaving (timers rescheduling
// timers, some cancelled mid-flight, horizons from µs to minutes) and
// demands identical firing traces.
func TestWheelCancelInterleavings(t *testing.T) {
	run := func(kind SchedulerKind, seed int64) []string {
		s := NewSimScheduler(1, kind) // Sim rng unused; ops use their own rng
		rng := rand.New(rand.NewSource(seed))
		var trace []string
		var events []*Event
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			id++
			n := id
			var d time.Duration
			switch rng.Intn(4) {
			case 0:
				d = time.Duration(rng.Int63n(int64(time.Millisecond)))
			case 1:
				d = time.Duration(rng.Int63n(int64(300 * time.Millisecond)))
			case 2:
				d = time.Duration(rng.Int63n(int64(10 * time.Second)))
			case 3:
				d = time.Duration(rng.Int63n(int64(3 * time.Minute)))
			}
			e := s.After(d, func() {
				trace = append(trace, fmt.Sprintf("%d@%v", n, s.Now()))
				// Fired timers spawn more work, like retransmit timers do.
				if depth < 3 && rng.Intn(2) == 0 {
					schedule(depth + 1)
				}
				// ... and sometimes cancel a random pending event.
				if len(events) > 0 && rng.Intn(3) == 0 {
					events[rng.Intn(len(events))].Cancel()
				}
			})
			events = append(events, e)
		}
		for i := 0; i < 200; i++ {
			schedule(0)
		}
		s.Run()
		return trace
	}
	for seed := int64(1); seed <= 10; seed++ {
		wheel := run(SchedulerWheel, seed)
		heap := run(SchedulerHeap, seed)
		if len(wheel) == 0 || len(wheel) != len(heap) {
			t.Fatalf("seed %d: %d wheel firings vs %d heap", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d firing %d: wheel %q vs heap %q", seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestSchedulerABTraceIdentical runs the package's lossy, jittery
// ping-pong trace under both scheduler kinds and demands identical
// delivery traces — the in-package version of the cross-experiment golden
// checks in internal/testbed.
func TestSchedulerABTraceIdentical(t *testing.T) {
	prev := DefaultScheduler()
	defer SetDefaultScheduler(prev)
	SetDefaultScheduler(SchedulerWheel)
	wheel := traceRun(42)
	SetDefaultScheduler(SchedulerHeap)
	heap := traceRun(42)
	if len(wheel) == 0 || len(wheel) != len(heap) {
		t.Fatalf("trace lengths: wheel %d, heap %d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("event %d: wheel %q vs heap %q", i, wheel[i], heap[i])
		}
	}
}

// TestSendDeliverZeroAlloc asserts the pooled steady state end to end:
// GetPacket + Send + Step + auto-recycle allocates nothing once the free
// lists are warm. The CI bench smoke enforces the same bound via
// BenchmarkSendDeliver -benchmem.
func TestSendDeliverZeroAlloc(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{Delay: time.Millisecond})
	s.Register("b", func(*Packet) {})
	a, bEP := s.Endpoint("a"), s.Endpoint("b")
	send := func() {
		pkt := s.GetPacket()
		pkt.SrcEP, pkt.DstEP = a, bEP
		pkt.Size = 1400
		if !s.Send(pkt) {
			t.Fatal("send refused")
		}
		s.Step()
	}
	// Warm the free lists and every L0 slot's storage (the clock walks one
	// ~1 ms slot per send, so one full wheel revolution covers all 256).
	for i := 0; i < 512; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("steady-state send/deliver allocates %.1f objects/op", allocs)
	}
}

// schedulerKinds enumerates the A/B pair for benchmarks.
var schedulerKinds = []struct {
	name string
	kind SchedulerKind
}{
	{"wheel", SchedulerWheel},
	{"heap", SchedulerHeap},
}

func newSchedOfKind(k SchedulerKind) scheduler {
	if k == SchedulerHeap {
		return &heapSched{}
	}
	return newTimingWheel()
}

// BenchmarkSchedule measures raw scheduler push+pop throughput with a
// resident population of 4096 events and delivery-like deltas (a few ms),
// the regime every packet-heavy experiment lives in.
func BenchmarkSchedule(b *testing.B) {
	for _, sk := range schedulerKinds {
		b.Run(sk.name, func(b *testing.B) {
			s := newSchedOfKind(sk.kind)
			const resident = 4096
			var seq uint64
			deltas := [...]time.Duration{
				200 * time.Microsecond, time.Millisecond,
				7 * time.Millisecond, 40 * time.Millisecond,
			}
			for i := 0; i < resident; i++ {
				seq++
				s.push(&Event{at: deltas[i%len(deltas)], seq: seq})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := s.pop()
				now := e.at
				seq++
				e.at, e.seq = now+deltas[i%len(deltas)], seq
				s.push(e)
			}
		})
	}
}

// BenchmarkSchedule_FarFuture stresses the non-happy path: every push
// lands in L1 or the overflow heap and must cascade down before popping.
func BenchmarkSchedule_FarFuture(b *testing.B) {
	for _, sk := range schedulerKinds {
		b.Run(sk.name, func(b *testing.B) {
			s := newSchedOfKind(sk.kind)
			const resident = 1024
			var seq uint64
			var now time.Duration
			push := func(d time.Duration) {
				seq++
				s.push(&Event{at: now + d, seq: seq})
			}
			for i := 0; i < resident; i++ {
				push(time.Duration(i%3+1) * 30 * time.Second)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := s.pop()
				now = e.at
				seq++
				e.at, e.seq = now+time.Duration(i%3+1)*30*time.Second, seq
				s.push(e)
			}
		})
	}
}

// BenchmarkSendDeliver measures the full pooled hot path — GetPacket,
// Send (interned handles, cached path), delivery, auto-recycle — and is
// the benchmark the CI smoke gates at 0 allocs/op.
func BenchmarkSendDeliver(b *testing.B) {
	for _, sk := range schedulerKinds {
		b.Run(sk.name, func(b *testing.B) {
			s := NewSimScheduler(1, sk.kind)
			s.Connect("a", "b", &Link{Delay: time.Millisecond, BandwidthBps: 1e9})
			delivered := 0
			s.Register("b", func(*Packet) { delivered++ })
			a, bEP := s.Endpoint("a"), s.Endpoint("b")
			send := func() {
				pkt := s.GetPacket()
				pkt.SrcEP, pkt.DstEP = a, bEP
				pkt.Size = 1400
				if !s.Send(pkt) {
					b.Fatal("send refused")
				}
				s.Step()
			}
			for i := 0; i < 512; i++ { // warm free lists and every L0 slot
				send()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				send()
			}
			if delivered == 0 {
				b.Fatal("no deliveries")
			}
		})
	}
}

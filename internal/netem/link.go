package netem

import (
	"time"
)

// Packet is the unit of transfer in the emulator. Payload is opaque to the
// network; Size (bytes, including notional headers) is what the link-level
// serialization and shaping act on.
//
// SrcEP/DstEP are the interned handles for Src/Dst. Senders on a hot path
// may set the handles (from Sim.Endpoint) and leave the strings empty:
// Send fills the strings back in from the interning table without hashing.
// Conversely, a packet with only strings set gets its handles resolved on
// first Send. Handles are per-Sim — never move a resolved Packet between
// simulators.
type Packet struct {
	Src, Dst     string   // IP-like endpoint identifiers
	SrcEP, DstEP Endpoint // interned handles (0 = unresolved)
	Size         int      // wire size in bytes
	Payload      any

	pooled   bool // obtained from Sim.GetPacket; recycled after delivery
	inflight bool // scheduled for delivery; guards against premature reuse
}

// RateFunc returns the shaping rate in bits/second at virtual time t.
// A nil RateFunc means "unshaped".
type RateFunc func(t time.Duration) float64

// Shaper models an operator bottleneck: a token-bucket policer whose rate
// may vary with (virtual) time of day, with a finite drop-tail queue. This
// reproduces the bimodal day/night throughput the paper measures on
// T-Mobile (Appendix A).
//
// Queue-bound precedence: a nonzero MaxQueueTime (sojourn bound) always
// wins over MaxQueueBytes; the byte bound applies only when MaxQueueTime
// is zero. NewShaper configures the byte bound (with a 256 KB default),
// NewShaperSojourn the time bound — a struct literal can set either
// directly, but note that a literal with both fields zero is a burst-only
// policer: no queueing beyond the bucket credit (no default is applied
// outside the constructors).
type Shaper struct {
	Rate        RateFunc
	BucketBytes float64 // burst allowance
	// MaxQueueBytes bounds the queue in bytes (used when MaxQueueTime is
	// zero).
	MaxQueueBytes int
	// MaxQueueTime bounds the queue by sojourn time instead — the
	// behaviour of deployed AQM and a bound that self-scales when the
	// policed rate varies with time of day. Takes precedence over
	// MaxQueueBytes when nonzero.
	MaxQueueTime time.Duration

	busyUntil time.Duration // virtual clock: when the policed wire frees up
}

// NewShaper builds a byte-bounded shaper with the given rate schedule.
// burst and queue are in bytes; sensible defaults (32 KB burst, 256 KB
// queue) are applied when zero. For a sojourn-time queue bound use
// NewShaperSojourn.
func NewShaper(rate RateFunc, burstBytes, queueBytes int) *Shaper {
	if burstBytes <= 0 {
		burstBytes = 32 * 1024
	}
	if queueBytes <= 0 {
		queueBytes = 256 * 1024
	}
	return &Shaper{
		Rate:          rate,
		BucketBytes:   float64(burstBytes),
		MaxQueueBytes: queueBytes,
	}
}

// NewShaperSojourn builds a shaper whose queue is bounded by sojourn time
// (the AQM-style bound): a packet that would wait longer than maxQueue is
// dropped. The same 32 KB burst default applies; maxQueue <= 0 selects
// 100 ms. The sojourn bound takes precedence, so MaxQueueBytes is left
// zero here and ignored by admit.
func NewShaperSojourn(rate RateFunc, burstBytes int, maxQueue time.Duration) *Shaper {
	if burstBytes <= 0 {
		burstBytes = 32 * 1024
	}
	if maxQueue <= 0 {
		maxQueue = 100 * time.Millisecond
	}
	return &Shaper{
		Rate:         rate,
		BucketBytes:  float64(burstBytes),
		MaxQueueTime: maxQueue,
	}
}

// admit decides the extra queueing delay a packet experiences at the
// shaper, or reports drop=true when the queue is full. It mutates shaper
// state, so call exactly once per packet in arrival order.
//
// The implementation is a virtual-clock shaper: busyUntil tracks when the
// policed "wire" next frees up; a packet's delay is its finish time minus
// now. Idle periods earn at most BucketBytes of burst credit.
func (sh *Shaper) admit(now time.Duration, size int) (delay time.Duration, drop bool) {
	if sh == nil || sh.Rate == nil {
		return 0, false
	}
	rate := sh.Rate(now) // bits per second
	if rate <= 0 {
		return 0, true
	}
	bytesPerSec := rate / 8

	// Burst credit: after idling, the virtual clock may lag `now` by at
	// most the time it takes to send BucketBytes at the policed rate.
	burstTime := time.Duration(sh.BucketBytes / bytesPerSec * float64(time.Second))
	if sh.busyUntil < now-burstTime {
		sh.busyUntil = now - burstTime
	}

	// Drop bound expressed as queued time: the sojourn bound when set,
	// else the byte bound converted at the instantaneous rate.
	maxQueueTime := sh.MaxQueueTime
	if maxQueueTime == 0 {
		maxQueueTime = time.Duration(float64(sh.MaxQueueBytes) / bytesPerSec * float64(time.Second))
	}
	if sh.busyUntil-now > maxQueueTime {
		return 0, true
	}

	txTime := time.Duration(float64(size) / bytesPerSec * float64(time.Second))
	sh.busyUntil += txTime
	if sh.busyUntil <= now {
		return 0, false
	}
	return sh.busyUntil - now, false
}

// Link is a bidirectional path segment between two endpoint identifiers.
// Delay/Jitter are one-way propagation terms; Loss is an independent drop
// probability per packet; BandwidthBps is the physical serialization rate
// (0 = infinite); Shapers, if set, police each direction (A->B and B->A
// share one shaper here because cellular last-mile policing in the paper
// is per-subscriber, not per-direction-distinct; set both if needed).
type Link struct {
	Delay        time.Duration
	Jitter       time.Duration
	Loss         float64 // 0..1
	BandwidthBps float64
	// MaxQueue bounds the serialization queue as a time budget: a packet
	// that would wait longer than this for the wire is dropped
	// (drop-tail). Zero selects the 100 ms default — without a bound,
	// TCP senders bloat the buffer indefinitely.
	MaxQueue time.Duration
	ShaperAB *Shaper // shaping for a->b (a = lexicographically smaller)
	ShaperBA *Shaper

	// Up reports whether the link can carry traffic. A down link drops
	// every packet (used to model detachment between bTelcos).
	Down bool
	// PausedUntil buffers rather than drops: packets sent before this
	// instant are held and released afterwards, preserving order — the
	// behaviour of an LTE handover with data forwarding to the target
	// eNodeB (make-before-break).
	PausedUntil time.Duration
	// Transit, when set, sees every packet before shaping and may drop it
	// (return false) — the hook that puts an in-path middlebox such as
	// the AGW user plane (bearer accounting + AMBR policing) on the
	// emulated path.
	Transit func(pkt *Packet, at time.Duration) bool

	nextFreeAB time.Duration
	nextFreeBA time.Duration
	lastArrAB  time.Duration
	lastArrBA  time.Duration

	stats LinkStats
}

// LinkStats counts a link's traffic for observability (a tcpdump-grade
// view of the emulation).
type LinkStats struct {
	Sent         uint64
	SentBytes    uint64
	DroppedLoss  uint64
	DroppedQueue uint64
	DroppedDown  uint64
}

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Register installs the receive handler for an endpoint identifier.
// Re-registering replaces the previous handler (used when a UE's address
// changes). The binding box persists so delivery events captured before a
// later Register/Unregister still observe the endpoint's current state.
func (s *Sim) Register(ip string, fn func(*Packet)) {
	s.handlers[s.Endpoint(ip)-1].fn = fn
}

// Unregister removes an endpoint. In-flight packets to it are dropped on
// arrival, modelling an invalidated address.
func (s *Sim) Unregister(ip string) {
	if ep, ok := s.eps[ip]; ok {
		s.handlers[ep-1].fn = nil
	}
}

// Connect installs a link between two endpoints (order-insensitive). The
// link's A direction (ShaperAB, the AB serialization state) is the one
// originating at the lexicographically smaller name.
func (s *Sim) Connect(a, b string, l *Link) {
	epA, epB := s.Endpoint(a), s.Endpoint(b)
	aEP := epA
	if b < a {
		aEP = epB
	}
	s.paths[packEPs(epA, epB)] = &pathEntry{link: l, aEP: aEP}
	s.lastPath = nil
}

// Disconnect removes the link between two endpoints.
func (s *Sim) Disconnect(a, b string) {
	if epA, ok := s.eps[a]; ok {
		if epB, ok := s.eps[b]; ok {
			delete(s.paths, packEPs(epA, epB))
		}
	}
	s.lastPath = nil
}

// LinkBetween returns the installed link, or nil.
func (s *Sim) LinkBetween(a, b string) *Link {
	epA, ok := s.eps[a]
	if !ok {
		return nil
	}
	epB, ok := s.eps[b]
	if !ok {
		return nil
	}
	if e := s.paths[packEPs(epA, epB)]; e != nil {
		return e.link
	}
	return nil
}

// Send transmits a packet from pkt.Src to pkt.Dst across the installed
// link, applying loss, shaping, serialization and propagation delay. It
// reports whether the packet was admitted (false = dropped immediately;
// packets can also be dropped silently at delivery if the destination has
// unregistered).
//
// The hot path is allocation-free and hash-free: endpoint strings resolve
// to interned handles once (cached in the Packet), the path table is
// keyed by packed handle pairs behind a single-entry cache, and pooled
// packets/events come from per-Sim free lists.
func (s *Sim) Send(pkt *Packet) bool {
	src, dst := pkt.SrcEP, pkt.DstEP
	if src == 0 {
		src = s.Endpoint(pkt.Src)
		pkt.SrcEP = src
	}
	if dst == 0 {
		dst = s.Endpoint(pkt.Dst)
		pkt.DstEP = dst
	}
	// Taps, Transit hooks, and receive handlers compare the string
	// fields; materialize them from the interning table (no hashing).
	if pkt.Src == "" {
		pkt.Src = s.epNames[src-1]
	}
	if pkt.Dst == "" {
		pkt.Dst = s.epNames[dst-1]
	}

	key := packEPs(src, dst)
	entry := s.lastPath
	if entry == nil || key != s.lastKey {
		entry = s.paths[key]
		if entry == nil {
			return false
		}
		s.lastKey, s.lastPath = key, entry
	}
	l := entry.link
	if l.Down {
		l.stats.DroppedDown++
		mtr.dropDown.Add(1)
		return false
	}
	if l.Loss > 0 && s.rng.Float64() < l.Loss {
		l.stats.DroppedLoss++
		mtr.dropLoss.Add(1)
		return false
	}
	if l.Transit != nil && !l.Transit(pkt, s.now) {
		l.stats.DroppedQueue++
		mtr.dropQueue.Add(1)
		return false
	}

	forward := src == entry.aEP
	var shaper *Shaper
	if forward {
		shaper = l.ShaperAB
	} else {
		shaper = l.ShaperBA
	}
	shapeDelay, drop := shaper.admit(s.now, pkt.Size)
	if drop {
		l.stats.DroppedQueue++
		mtr.dropQueue.Add(1)
		return false
	}

	var txTime time.Duration
	if l.BandwidthBps > 0 {
		txTime = time.Duration(float64(pkt.Size) * 8 / l.BandwidthBps * float64(time.Second))
		var nextFree *time.Duration
		if forward {
			nextFree = &l.nextFreeAB
		} else {
			nextFree = &l.nextFreeBA
		}
		start := s.now + shapeDelay
		if *nextFree > start {
			start = *nextFree
		}
		maxQueue := l.MaxQueue
		if maxQueue == 0 {
			maxQueue = 100 * time.Millisecond
		}
		if start-s.now > maxQueue {
			l.stats.DroppedQueue++
			mtr.dropQueue.Add(1)
			return false // drop-tail: queue budget exceeded
		}
		*nextFree = start + txTime
		shapeDelay = *nextFree - s.now
		txTime = 0 // already folded into shapeDelay
	}

	delay := l.Delay + shapeDelay + txTime
	if l.Jitter > 0 {
		delay += time.Duration(s.rng.Float64() * float64(l.Jitter))
	}
	// Preserve FIFO ordering within a direction: real links delay-vary
	// but do not reorder back-to-back packets, and transports read
	// reordering as loss.
	arrival := s.now + delay
	if l.PausedUntil > arrival {
		arrival = l.PausedUntil
	}
	var lastArr *time.Duration
	if forward {
		lastArr = &l.lastArrAB
	} else {
		lastArr = &l.lastArrBA
	}
	if arrival < *lastArr {
		arrival = *lastArr
	}
	*lastArr = arrival
	l.stats.Sent++
	l.stats.SentBytes += uint64(pkt.Size)
	s.mtrLocal.sent++
	s.mtrLocal.sentBytes += uint64(pkt.Size)
	if s.mtrLocal.tick++; s.mtrLocal.tick&(flushEvery-1) == 0 {
		s.FlushMetrics()
	}
	if s.OnSend != nil {
		s.OnSend(pkt, arrival)
	}
	if entry.remote != nil {
		// Cross-shard: the full link model has run on this side; park the
		// packet (by value) in the world's mailbox for the window barrier.
		// A pooled packet is done with its send the moment it is copied
		// out, so it recycles here instead of after delivery.
		entry.remote.w.enqueue(entry.remote, pkt, arrival)
		if pkt.pooled {
			s.PutPacket(pkt)
		}
		return true
	}
	pkt.inflight = true
	s.scheduleDelivery(arrival, pkt, s.handlers[dst-1])
	return true
}

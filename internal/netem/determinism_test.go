package netem

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// traceRun drives one self-contained sim through a lossy, jittery
// ping-pong exchange and returns the delivery trace. Everything observable
// — drop decisions, jitter draws, arrival order — flows from the seed, so
// two runs with the same seed must produce identical traces no matter
// what other sims are doing on other goroutines.
func traceRun(seed int64) []string {
	s := NewSim(seed)
	s.Connect("a", "b", &Link{
		Delay:        7 * time.Millisecond,
		Jitter:       3 * time.Millisecond,
		Loss:         0.1,
		BandwidthBps: 8e6,
	})
	var trace []string
	s.OnDeliver = func(pkt *Packet, at time.Duration) {
		trace = append(trace, fmt.Sprintf("%s->%s %d @%v", pkt.Src, pkt.Dst, pkt.Size, at))
	}
	s.Register("a", func(pkt *Packet) {
		// Echo smaller replies until the payload wears out.
		if pkt.Size > 100 {
			s.Send(&Packet{Src: "a", Dst: "b", Size: pkt.Size / 2})
		}
	})
	s.Register("b", func(pkt *Packet) {
		if pkt.Size > 100 {
			s.Send(&Packet{Src: "b", Dst: "a", Size: pkt.Size / 2})
		}
	})
	for i := 0; i < 40; i++ {
		sz := 1400 << uint(i%4)
		s.At(time.Duration(i)*5*time.Millisecond, func() {
			s.Send(&Packet{Src: "b", Dst: "a", Size: sz})
		})
	}
	s.Run()
	return trace
}

// TestConcurrentSimsDeterministic runs N independent sims on their own
// goroutines (the testbed.Runner execution model) and asserts each trace
// is identical to the one produced by a sequential run of the same seed.
// Run under -race this also proves the sims share no mutable state.
func TestConcurrentSimsDeterministic(t *testing.T) {
	const n = 8
	sequential := make([][]string, n)
	for i := range sequential {
		sequential[i] = traceRun(int64(i + 1))
	}

	concurrent := make([][]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			concurrent[i] = traceRun(int64(i + 1))
		}()
	}
	wg.Wait()

	for i := range sequential {
		if len(sequential[i]) == 0 {
			t.Fatalf("seed %d: empty trace", i+1)
		}
		if len(sequential[i]) != len(concurrent[i]) {
			t.Fatalf("seed %d: %d events sequential vs %d concurrent",
				i+1, len(sequential[i]), len(concurrent[i]))
		}
		for j := range sequential[i] {
			if sequential[i][j] != concurrent[i][j] {
				t.Fatalf("seed %d event %d: %q vs %q", i+1, j, sequential[i][j], concurrent[i][j])
			}
		}
	}
}

// TestRunUntilEmptyQueue pins the drained-queue behaviour: RunUntil on an
// empty sim just advances the clock, and does so without allocating (the
// old implementation manufactured a sentinel Event per call).
func TestRunUntilEmptyQueue(t *testing.T) {
	s := NewSim(1)
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	next := 2 * time.Second
	allocs := testing.AllocsPerRun(100, func() {
		s.RunUntil(next)
		next += time.Second
	})
	if allocs != 0 {
		t.Fatalf("RunUntil on drained queue allocates %.1f objects/op", allocs)
	}
}

// TestDeliveryEventPooling asserts the per-packet delivery path reaches an
// allocation-free steady state: delivery events come from the free list
// and handler bindings are resolved once at send time.
func TestDeliveryEventPooling(t *testing.T) {
	s := NewSim(1)
	s.Connect("a", "b", &Link{Delay: time.Millisecond})
	got := 0
	s.Register("b", func(*Packet) { got++ })
	pkt := &Packet{Src: "a", Dst: "b", Size: 1400}
	send := func() {
		if !s.Send(pkt) {
			t.Fatal("send refused")
		}
		s.RunUntil(s.Now() + 2*time.Millisecond)
	}
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		send()
	}
	allocs := testing.AllocsPerRun(100, send)
	if allocs != 0 {
		t.Fatalf("steady-state delivery allocates %.1f objects/op", allocs)
	}
	if got == 0 {
		t.Fatal("no deliveries observed")
	}
}

// TestCancelAfterFireSafe pins the contract event pooling must preserve:
// caller-visible events from At/After are never recycled, so a post-fire
// Cancel (mptcp does this with its timers) stays a harmless no-op.
func TestCancelAfterFireSafe(t *testing.T) {
	s := NewSim(1)
	fired := 0
	ev := s.After(time.Millisecond, func() { fired++ })
	s.Connect("a", "b", &Link{Delay: time.Millisecond})
	s.Register("b", func(*Packet) {})
	s.Run()
	ev.Cancel() // after firing: must not corrupt anything
	// Drive pooled delivery traffic over the same sim afterwards.
	for i := 0; i < 10; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 100})
		s.Run()
	}
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
	if !ev.Cancelled() {
		t.Fatal("Cancel not recorded")
	}
}

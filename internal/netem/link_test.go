package netem

import (
	"testing"
	"time"
)

// Drop accounting is what the chaos harness and the failover experiment
// read to attribute outages, so each counter must tick for exactly its own
// drop cause.

func TestStatsDroppedLoss(t *testing.T) {
	s := NewSim(1)
	l := &Link{Loss: 1.0}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 10; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	}
	st := l.Stats()
	if st.DroppedLoss != 10 {
		t.Fatalf("DroppedLoss = %d, want 10", st.DroppedLoss)
	}
	if st.DroppedDown != 0 || st.DroppedQueue != 0 || st.Sent != 0 {
		t.Fatalf("loss drops leaked into other counters: %+v", st)
	}
}

func TestStatsDroppedDown(t *testing.T) {
	s := NewSim(1)
	l := &Link{Down: true}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 7; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
			t.Fatal("down link admitted a packet")
		}
	}
	st := l.Stats()
	if st.DroppedDown != 7 {
		t.Fatalf("DroppedDown = %d, want 7", st.DroppedDown)
	}
	if st.DroppedLoss != 0 || st.DroppedQueue != 0 {
		t.Fatalf("down drops leaked into other counters: %+v", st)
	}

	// Flap the link back up: traffic and the Sent counter resume.
	l.Down = false
	if !s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
		t.Fatal("restored link rejected a packet")
	}
	if st := l.Stats(); st.Sent != 1 {
		t.Fatalf("Sent = %d after restore, want 1", st.Sent)
	}
}

func TestStatsDroppedQueueBandwidth(t *testing.T) {
	s := NewSim(1)
	// 8 kbit/s with a 10 ms queue budget: a 1000-byte packet takes 1 s to
	// serialize, so the second packet already exceeds the queue bound.
	l := &Link{BandwidthBps: 8000, MaxQueue: 10 * time.Millisecond}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	admitted := 0
	for i := 0; i < 5; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 1000}) {
			admitted++
		}
	}
	st := l.Stats()
	if admitted != 1 || st.DroppedQueue != 4 {
		t.Fatalf("admitted=%d DroppedQueue=%d, want 1 and 4 (stats %+v)", admitted, st.DroppedQueue, st)
	}
}

func TestStatsDroppedQueueShaperZeroRate(t *testing.T) {
	s := NewSim(1)
	// A shaper whose rate schedule hits zero models a dead policer
	// interval: every packet is dropped and accounted as a queue drop.
	l := &Link{ShaperAB: NewShaper(func(time.Duration) float64 { return 0 }, 1024, 1024)}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 3; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
			t.Fatal("zero-rate shaper admitted a packet")
		}
	}
	if st := l.Stats(); st.DroppedQueue != 3 {
		t.Fatalf("DroppedQueue = %d, want 3", st.DroppedQueue)
	}
}

func TestStatsDroppedQueueShaperOverload(t *testing.T) {
	s := NewSim(1)
	// 80 kbit/s, tiny burst and queue: a burst of large packets overruns
	// the queue-time bound and the tail is dropped.
	l := &Link{ShaperAB: NewShaper(func(time.Duration) float64 { return 80e3 }, 1024, 4*1024)}
	s.Connect("a", "b", l)
	got := 0
	s.Register("b", func(p *Packet) { got++ })
	sent := 0
	for i := 0; i < 50; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 1500}) {
			sent++
		}
	}
	s.Run()
	st := l.Stats()
	if st.DroppedQueue == 0 {
		t.Fatalf("expected shaper queue drops, stats %+v", st)
	}
	if uint64(sent) != st.Sent || got != sent {
		t.Fatalf("admitted %d, Sent %d, delivered %d — counters disagree (%+v)", sent, st.Sent, got, st)
	}
	if st.DroppedQueue+st.Sent != 50 {
		t.Fatalf("drops (%d) + sent (%d) != offered 50", st.DroppedQueue, st.Sent)
	}
}

// The queue-bound precedence contract (see the Shaper doc): a nonzero
// MaxQueueTime always wins; MaxQueueBytes applies only when the sojourn
// bound is zero. A sojourn-only Shaper used to be misconfigured through
// NewShaper (which force-defaults the byte bound); NewShaperSojourn and
// these tests pin the fixed behaviour.

// flat returns a constant-rate schedule.
func flat(bps float64) RateFunc { return func(time.Duration) float64 { return bps } }

func TestShaperSojournBoundWinsOverBytes(t *testing.T) {
	// 100 KB/s, 1000 B burst (= 10 ms of credit), a 10 ms sojourn bound,
	// and a byte bound so large it would never drop. Each 1000 B packet
	// adds 10 ms of backlog, so the sojourn bound must cut in at 20 ms of
	// queued time regardless of the byte bound.
	sh := &Shaper{
		Rate:          flat(8e5),
		BucketBytes:   1000,
		MaxQueueBytes: 1 << 30,
		MaxQueueTime:  10 * time.Millisecond,
	}
	// Admit at t=20 ms: the shaper has been idle past its burst window,
	// so the full 10 ms bucket credit is available.
	admitted := 0
	for i := 0; i < 8; i++ {
		if _, drop := sh.admit(20*time.Millisecond, 1000); !drop {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("sojourn bound admitted %d packets, want 3 (burst + 2 queued)", admitted)
	}
}

func TestShaperByteBoundAppliesWhenSojournZero(t *testing.T) {
	// Same shaper with the sojourn bound cleared: the 2500 B byte bound
	// (25 ms at this rate) now governs, admitting one more packet.
	sh := &Shaper{
		Rate:          flat(8e5),
		BucketBytes:   1000,
		MaxQueueBytes: 2500,
	}
	admitted := 0
	for i := 0; i < 8; i++ {
		if _, drop := sh.admit(20*time.Millisecond, 1000); !drop {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("byte bound admitted %d packets, want 4", admitted)
	}
}

func TestShaperLiteralBothZeroBurstOnly(t *testing.T) {
	// Documented corner: a literal with both bounds zero is a burst-only
	// policer — packets ride the bucket credit but nothing may queue
	// (constructor defaults are not applied retroactively).
	sh := &Shaper{Rate: flat(8e5), BucketBytes: 1000}
	admitted := 0
	for i := 0; i < 8; i++ {
		if _, drop := sh.admit(20*time.Millisecond, 1000); !drop {
			admitted++
		}
	}
	// 10 ms of credit plus the packet landing exactly on the now-boundary.
	if admitted != 2 {
		t.Fatalf("burst-only shaper admitted %d packets, want 2", admitted)
	}
}

func TestNewShaperSojournDefaults(t *testing.T) {
	sh := NewShaperSojourn(flat(8e5), 0, 0)
	if sh.BucketBytes != 32*1024 {
		t.Fatalf("BucketBytes = %v, want 32 KB default", sh.BucketBytes)
	}
	if sh.MaxQueueTime != 100*time.Millisecond {
		t.Fatalf("MaxQueueTime = %v, want 100 ms default", sh.MaxQueueTime)
	}
	if sh.MaxQueueBytes != 0 {
		t.Fatalf("MaxQueueBytes = %d, want 0 (sojourn bound governs)", sh.MaxQueueBytes)
	}
}

func TestShaperSojournOnLink(t *testing.T) {
	s := NewSim(1)
	// Sojourn-bounded shaper on the A->B direction: a burst overruns the
	// 5 ms bound and the tail lands in DroppedQueue.
	l := &Link{ShaperAB: NewShaperSojourn(flat(80e3), 1024, 5*time.Millisecond)}
	s.Connect("a", "b", l)
	got := 0
	s.Register("b", func(*Packet) { got++ })
	sent := 0
	for i := 0; i < 50; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 1500}) {
			sent++
		}
	}
	s.Run()
	st := l.Stats()
	if st.DroppedQueue == 0 || st.DroppedQueue+st.Sent != 50 {
		t.Fatalf("stats %+v: want sojourn drops and drops+sent == 50", st)
	}
	if got != sent {
		t.Fatalf("delivered %d of %d admitted", got, sent)
	}
}

func TestShaperDirectionSurvivesConnectOrder(t *testing.T) {
	// The A direction is defined by lexicographic name order, not by the
	// argument order of Connect. With endpoint interning the direction
	// bit is derived from stored handles, so Connect("b", "a") must
	// shape exactly like Connect("a", "b").
	for _, swap := range []bool{false, true} {
		s := NewSim(1)
		l := &Link{ShaperAB: NewShaper(flat(0), 1, 1)} // zero rate: drops everything a->b
		if swap {
			s.Connect("b", "a", l)
		} else {
			s.Connect("a", "b", l)
		}
		s.Register("a", func(*Packet) {})
		s.Register("b", func(*Packet) {})
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
			t.Fatalf("swap=%v: a->b escaped the AB shaper", swap)
		}
		if !s.Send(&Packet{Src: "b", Dst: "a", Size: 100}) {
			t.Fatalf("swap=%v: b->a hit the AB shaper", swap)
		}
	}
}

package netem

import (
	"testing"
	"time"
)

// Drop accounting is what the chaos harness and the failover experiment
// read to attribute outages, so each counter must tick for exactly its own
// drop cause.

func TestStatsDroppedLoss(t *testing.T) {
	s := NewSim(1)
	l := &Link{Loss: 1.0}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 10; i++ {
		s.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	}
	st := l.Stats()
	if st.DroppedLoss != 10 {
		t.Fatalf("DroppedLoss = %d, want 10", st.DroppedLoss)
	}
	if st.DroppedDown != 0 || st.DroppedQueue != 0 || st.Sent != 0 {
		t.Fatalf("loss drops leaked into other counters: %+v", st)
	}
}

func TestStatsDroppedDown(t *testing.T) {
	s := NewSim(1)
	l := &Link{Down: true}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 7; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
			t.Fatal("down link admitted a packet")
		}
	}
	st := l.Stats()
	if st.DroppedDown != 7 {
		t.Fatalf("DroppedDown = %d, want 7", st.DroppedDown)
	}
	if st.DroppedLoss != 0 || st.DroppedQueue != 0 {
		t.Fatalf("down drops leaked into other counters: %+v", st)
	}

	// Flap the link back up: traffic and the Sent counter resume.
	l.Down = false
	if !s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
		t.Fatal("restored link rejected a packet")
	}
	if st := l.Stats(); st.Sent != 1 {
		t.Fatalf("Sent = %d after restore, want 1", st.Sent)
	}
}

func TestStatsDroppedQueueBandwidth(t *testing.T) {
	s := NewSim(1)
	// 8 kbit/s with a 10 ms queue budget: a 1000-byte packet takes 1 s to
	// serialize, so the second packet already exceeds the queue bound.
	l := &Link{BandwidthBps: 8000, MaxQueue: 10 * time.Millisecond}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	admitted := 0
	for i := 0; i < 5; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 1000}) {
			admitted++
		}
	}
	st := l.Stats()
	if admitted != 1 || st.DroppedQueue != 4 {
		t.Fatalf("admitted=%d DroppedQueue=%d, want 1 and 4 (stats %+v)", admitted, st.DroppedQueue, st)
	}
}

func TestStatsDroppedQueueShaperZeroRate(t *testing.T) {
	s := NewSim(1)
	// A shaper whose rate schedule hits zero models a dead policer
	// interval: every packet is dropped and accounted as a queue drop.
	l := &Link{ShaperAB: NewShaper(func(time.Duration) float64 { return 0 }, 1024, 1024)}
	s.Connect("a", "b", l)
	s.Register("b", func(p *Packet) {})
	for i := 0; i < 3; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 100}) {
			t.Fatal("zero-rate shaper admitted a packet")
		}
	}
	if st := l.Stats(); st.DroppedQueue != 3 {
		t.Fatalf("DroppedQueue = %d, want 3", st.DroppedQueue)
	}
}

func TestStatsDroppedQueueShaperOverload(t *testing.T) {
	s := NewSim(1)
	// 80 kbit/s, tiny burst and queue: a burst of large packets overruns
	// the queue-time bound and the tail is dropped.
	l := &Link{ShaperAB: NewShaper(func(time.Duration) float64 { return 80e3 }, 1024, 4*1024)}
	s.Connect("a", "b", l)
	got := 0
	s.Register("b", func(p *Packet) { got++ })
	sent := 0
	for i := 0; i < 50; i++ {
		if s.Send(&Packet{Src: "a", Dst: "b", Size: 1500}) {
			sent++
		}
	}
	s.Run()
	st := l.Stats()
	if st.DroppedQueue == 0 {
		t.Fatalf("expected shaper queue drops, stats %+v", st)
	}
	if uint64(sent) != st.Sent || got != sent {
		t.Fatalf("admitted %d, Sent %d, delivered %d — counters disagree (%+v)", sent, st.Sent, got, st)
	}
	if st.DroppedQueue+st.Sent != 50 {
		t.Fatalf("drops (%d) + sent (%d) != offered 50", st.DroppedQueue, st.Sent)
	}
}

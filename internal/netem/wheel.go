package netem

import (
	"container/heap"
	"slices"
)

// scheduler is the event-queue abstraction behind a Sim. Both
// implementations pop events in strict (at, seq) order, so experiment
// output is byte-identical regardless of which one a Sim was built with;
// the determinism tests in this package and internal/testbed pin that
// equivalence.
//
// pop (and peek, which shares pop's cursor) may only be called by the Sim
// event loop: after pop returns a live event the Sim advances its clock to
// the event's timestamp, which re-establishes the wheel's cursor/now
// invariant (see the "late push" note on timingWheel).
type scheduler interface {
	push(e *Event)
	// peek returns the earliest pending event (possibly cancelled) without
	// removing it, or nil when the queue is empty.
	peek() *Event
	// pop removes and returns the earliest pending event, or nil.
	pop() *Event
	len() int
}

// eventLess is the total firing order: timestamp, then schedule sequence.
// seq is unique per Sim, so there are no ties.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func eventCmp(a, b *Event) int {
	if eventLess(a, b) {
		return -1
	}
	return 1
}

// heapSched is the reference scheduler: the classic container/heap binary
// heap. O(log n) per operation; kept as the oracle for the wheel's fuzz
// and determinism tests and selectable via NewSimScheduler.
type heapSched struct{ h eventHeap }

func (s *heapSched) push(e *Event) { heap.Push(&s.h, e) }

func (s *heapSched) peek() *Event {
	if len(s.h) == 0 {
		return nil
	}
	return s.h[0]
}

func (s *heapSched) pop() *Event {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*Event)
}

func (s *heapSched) len() int { return len(s.h) }

// Timing-wheel geometry. Level 0 buckets events into ~1.05 ms slots over a
// ~269 ms horizon; level 1 buckets 256 level-0 slots (~269 ms) per slot
// over a ~69 s horizon. Anything further out waits in an overflow heap and
// cascades down as the cursor approaches. The profile this is built for —
// discrete-event network emulation — schedules almost everything within a
// few RTTs of now, so the steady-state cost of schedule/pop is O(1)
// appends and slot scans instead of heap churn.
const (
	wheelSlotBits = 20 // log2 of the L0 slot width in nanoseconds
	wheelBits     = 8  // log2 of the slot count per level
	wheelSlots    = 1 << wheelBits
	wheelMask     = wheelSlots - 1
	wheelL1Bits   = wheelSlotBits + wheelBits // log2 of the L1 slot width
)

// timingWheel is a two-level hierarchical timing wheel with an overflow
// heap, popping in exact (at, seq) order.
//
// Invariants:
//   - base0 is the absolute L0 slot index of the cursor; base1 == base0>>8.
//   - Every event in slots0 has at>>wheelSlotBits in [base0, base0+256),
//     except "late" events (see below) which live in the current slot.
//   - Every event in slots1 has at>>wheelL1Bits in [base1, base1+256) and
//     at>>wheelSlotBits >= base0+256.
//   - Every overflow event has at>>wheelL1Bits >= base1+256.
//
// Late pushes: peek may advance the cursor past empty slots toward a
// far-future event without the Sim clock following (RunUntil peeks, sees
// the event is beyond its bound, and stops). A later push can then target
// a slot the cursor already passed, while still being in the Sim's future.
// Such events are sorted into the *current* slot's undrained tail instead.
// That preserves global order: everything else in the wheel lives in a
// strictly later slot, and the current slot drains in (at, seq) order.
type timingWheel struct {
	slots0   [wheelSlots][]*Event
	slots1   [wheelSlots][]*Event
	overflow eventHeap

	base0  int64 // absolute L0 slot index of the cursor
	base1  int64 // absolute L1 slot index; always base0 >> wheelBits
	pos    int   // drain offset into the current L0 slot
	sorted bool  // whether the current slot has been sorted

	count   int // events across all levels
	l0count int // undrained events resident in slots0
	l1count int // events resident in slots1
}

func newTimingWheel() *timingWheel { return &timingWheel{} }

func (w *timingWheel) len() int { return w.count }

func (w *timingWheel) push(e *Event) {
	w.count++
	idx := int64(e.at) >> wheelSlotBits
	if idx <= w.base0 {
		// Current-slot or late push: keep the slot's firing order intact.
		w.insertCurrent(e)
		w.l0count++
		return
	}
	if idx-w.base0 < wheelSlots {
		w.slots0[idx&wheelMask] = append(w.slots0[idx&wheelMask], e)
		w.l0count++
		return
	}
	idx1 := int64(e.at) >> wheelL1Bits
	if idx1-w.base1 < wheelSlots {
		w.slots1[idx1&wheelMask] = append(w.slots1[idx1&wheelMask], e)
		w.l1count++
		return
	}
	heap.Push(&w.overflow, e)
}

// insertCurrent places e into the current slot. If the slot is already
// sorted (it is being drained), e is spliced into the undrained tail at
// its (at, seq) position; otherwise it is appended and the eventual sort
// orders it.
func (w *timingWheel) insertCurrent(e *Event) {
	slot := &w.slots0[w.base0&wheelMask]
	if !w.sorted {
		*slot = append(*slot, e)
		return
	}
	s := *slot
	lo, hi := w.pos, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(s[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, nil)
	copy(s[lo+1:], s[lo:])
	s[lo] = e
	*slot = s
}

// advance moves the cursor to the next pending event and returns it
// without removing it, or returns nil when the wheel is empty. Skipped
// slots are always empty, so advancing never reorders anything; late
// pushes into skipped territory are handled by insertCurrent.
func (w *timingWheel) advance() *Event {
	for w.count > 0 {
		slot := &w.slots0[w.base0&wheelMask]
		if w.pos < len(*slot) {
			if !w.sorted {
				slices.SortFunc(*slot, eventCmp)
				w.sorted = true
			}
			return (*slot)[w.pos]
		}
		// Slot exhausted: reset its storage and advance the cursor.
		*slot = (*slot)[:0]
		w.pos, w.sorted = 0, false
		switch {
		case w.l0count > 0:
			w.base0++
		case w.l1count > 0:
			// L0 is empty: jump straight to the next cascade boundary.
			w.base0 = (w.base1 + 1) << wheelBits
		default:
			// Only the overflow heap holds events: jump to its minimum.
			idx1 := int64(w.overflow[0].at) >> wheelL1Bits
			if idx1 <= w.base1+1 {
				w.base0 = (w.base1 + 1) << wheelBits
			} else {
				w.base1 = idx1 - 1
				w.base0 = idx1 << wheelBits
			}
		}
		for w.base0>>wheelBits > w.base1 {
			w.base1++
			w.cascade()
		}
	}
	return nil
}

// cascade runs when base1 advances: overflow events that entered the L1
// horizon drop into slots1, then the now-current L1 slot is redistributed
// into L0 (all of its events land within the fresh L0 horizon).
func (w *timingWheel) cascade() {
	horizon := w.base1 + wheelSlots
	for w.overflow.Len() > 0 {
		top := w.overflow[0]
		idx1 := int64(top.at) >> wheelL1Bits
		if idx1 >= horizon {
			break
		}
		heap.Pop(&w.overflow)
		w.slots1[idx1&wheelMask] = append(w.slots1[idx1&wheelMask], top)
		w.l1count++
	}
	slot := &w.slots1[w.base1&wheelMask]
	if len(*slot) == 0 {
		return
	}
	for i, e := range *slot {
		idx := int64(e.at) >> wheelSlotBits
		w.slots0[idx&wheelMask] = append(w.slots0[idx&wheelMask], e)
		(*slot)[i] = nil
	}
	w.l0count += len(*slot)
	w.l1count -= len(*slot)
	*slot = (*slot)[:0]
}

func (w *timingWheel) peek() *Event { return w.advance() }

func (w *timingWheel) pop() *Event {
	e := w.advance()
	if e == nil {
		return nil
	}
	slot := &w.slots0[w.base0&wheelMask]
	(*slot)[w.pos] = nil
	w.pos++
	w.count--
	w.l0count--
	if w.pos == len(*slot) {
		*slot = (*slot)[:0]
		w.pos, w.sorted = 0, false
	}
	return e
}

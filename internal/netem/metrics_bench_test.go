package netem

import (
	"fmt"
	"testing"
	"time"
)

// benchDelivery drives the Send -> schedule -> deliver hot path: one
// packet in flight per iteration, so b.N iterations measure exactly b.N
// admissions plus b.N deliveries.
func benchDelivery(b *testing.B) {
	sim := NewSim(1)
	sim.Connect("a", "b", &Link{Delay: time.Millisecond, Jitter: 10 * time.Microsecond})
	delivered := 0
	sim.Register("b", func(p *Packet) { delivered++ })
	pkt := &Packet{Src: "a", Dst: "b", Size: 1200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.Send(pkt) {
			continue // random loss: nothing scheduled
		}
		sim.Step()
	}
	b.StopTimer()
	if delivered == 0 && b.N > 10 {
		b.Fatalf("no packets delivered")
	}
}

// BenchmarkDeliveryHotPath is the telemetry-overhead acceptance benchmark:
// compare the metrics=on and metrics=off sub-benchmarks; the on/off delta
// must stay under 5%. CI runs this as a smoke step.
func BenchmarkDeliveryHotPath(b *testing.B) {
	defer SetMetricsEnabled(true)
	for _, on := range []bool{true, false} {
		SetMetricsEnabled(on)
		b.Run(fmt.Sprintf("metrics=%v", on), benchDelivery)
	}
}

// TestMetricsCountDeliveries sanity-checks the wiring: a burst of sends
// moves the send/deliver counters by exactly the burst size and leaves
// link-local stats equal to the registry's view.
func TestMetricsCountDeliveries(t *testing.T) {
	SetMetricsEnabled(true)
	sentBefore, deliveredBefore := mtr.sent.Value(), mtr.delivered.Value()

	sim := NewSim(7)
	link := &Link{Delay: time.Millisecond}
	sim.Connect("a", "b", link)
	got := 0
	sim.Register("b", func(p *Packet) { got++ })
	const n = 100
	for i := 0; i < n; i++ {
		sim.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	}
	sim.Run()

	if got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	if d := mtr.sent.Value() - sentBefore; d != n {
		t.Fatalf("netem_packets_sent_total moved by %d, want %d", d, n)
	}
	if d := mtr.delivered.Value() - deliveredBefore; d != n {
		t.Fatalf("netem_packets_delivered_total moved by %d, want %d", d, n)
	}
	if link.Stats().Sent != n {
		t.Fatalf("link stats sent = %d, want %d", link.Stats().Sent, n)
	}
}

// TestMetricsDisabledIsInert: with handles nil, the same run records
// nothing and still behaves identically.
func TestMetricsDisabledIsInert(t *testing.T) {
	SetMetricsEnabled(false)
	defer SetMetricsEnabled(true)

	sim := NewSim(7)
	sim.Connect("a", "b", &Link{Delay: time.Millisecond, Loss: 0.5})
	got := 0
	sim.Register("b", func(p *Packet) { got++ })
	for i := 0; i < 100; i++ {
		sim.Send(&Packet{Src: "a", Dst: "b", Size: 100})
	}
	sim.Run()
	if got == 0 || got == 100 {
		t.Fatalf("lossy link delivered %d of 100, want strictly between", got)
	}
}

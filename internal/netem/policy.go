package netem

import (
	"math"
	"time"
)

// DayNightPolicy models the bimodal operator rate limiting the paper
// measures on T-Mobile (Appendix A): an aggressive daytime cap that is
// "switched off" around 00:30, after which throughput is limited only by a
// highly variable shared-capacity process.
//
// Virtual time 0 corresponds to ClockStart within a 24h day.
type DayNightPolicy struct {
	ClockStart time.Duration // time-of-day at sim time 0 (e.g. 13h * time.Hour)
	SwitchOn   time.Duration // daytime policing begins (e.g. 6h)
	SwitchOff  time.Duration // daytime policing ends   (e.g. 30m past midnight)

	DayRateBps float64 // hard daytime cap

	// Night capacity: lognormal-ish fluctuation around NightMeanBps,
	// regenerated every NightEpoch to model background load churn.
	NightMeanBps float64
	NightSigma   float64 // log-domain sigma
	NightPeakBps float64 // clamp
	NightEpoch   time.Duration

	seed int64
}

// NewDefaultDayNightPolicy returns a policy calibrated to Appendix A:
// day average ~1.0-1.2 Mbps with tiny variance, night mean ~15 Mbps with
// heavy variance and peaks ~52 Mbps, switchover at 00:30.
func NewDefaultDayNightPolicy(seed int64) *DayNightPolicy {
	return &DayNightPolicy{
		ClockStart:   13 * time.Hour,
		SwitchOn:     6 * time.Hour,
		SwitchOff:    30 * time.Minute,
		DayRateBps:   1.20e6,
		NightMeanBps: 20e6,
		NightSigma:   0.80,
		NightPeakBps: 52.5e6,
		NightEpoch:   12 * time.Second,
		seed:         seed,
	}
}

// TimeOfDay maps virtual time to time within a 24h day.
func (p *DayNightPolicy) TimeOfDay(t time.Duration) time.Duration {
	day := 24 * time.Hour
	tod := (p.ClockStart + t) % day
	if tod < 0 {
		tod += day
	}
	return tod
}

// IsDay reports whether daytime policing applies at virtual time t.
func (p *DayNightPolicy) IsDay(t time.Duration) bool {
	tod := p.TimeOfDay(t)
	// Daytime window: [SwitchOn, 24h) plus [0, SwitchOff).
	return tod >= p.SwitchOn || tod < p.SwitchOff
}

// Rate is a RateFunc: the policed rate in bits/second at virtual time t.
func (p *DayNightPolicy) Rate(t time.Duration) float64 {
	if p.IsDay(t) {
		return p.DayRateBps
	}
	return p.nightRate(t)
}

// nightRate draws a deterministic pseudo-random capacity per epoch using a
// splitmix-style hash, so the policy is stateless and reproducible
// regardless of query order.
func (p *DayNightPolicy) nightRate(t time.Duration) float64 {
	epoch := int64(t / p.NightEpoch)
	u := hash2(uint64(p.seed), uint64(epoch))
	// Box-Muller from two uniform draws derived from the hash.
	u1 := float64(u>>11) / float64(1<<53)
	u2 := float64(hash2(u, 0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	// Lognormal with median chosen so the mean lands on NightMeanBps:
	// mean = median * exp(sigma^2/2).
	median := p.NightMeanBps / math.Exp(p.NightSigma*p.NightSigma/2)
	r := median * math.Exp(p.NightSigma*z)
	if r > p.NightPeakBps {
		r = p.NightPeakBps
	}
	if r < 0.2e6 {
		r = 0.2e6
	}
	return r
}

func hash2(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ConstantRate returns a RateFunc with a fixed rate in bits/second.
func ConstantRate(bps float64) RateFunc {
	return func(time.Duration) float64 { return bps }
}

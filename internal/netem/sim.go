// Package netem is a discrete-event network emulator used as the substrate
// for every CellBricks emulation experiment. It provides a virtual clock,
// an event queue, and a packet-level network model with links that impose
// propagation delay, jitter, random loss, bandwidth serialization, and
// operator rate-limiting policies (token-bucket shaping with a
// time-of-day rate schedule, modelling the bimodal T-Mobile behaviour the
// paper measures in Appendix A).
//
// All time in the simulator is virtual: experiments that span hundreds of
// emulated seconds complete in milliseconds of wall time and are fully
// deterministic for a given seed.
//
// A Sim is single-goroutine by design; scale-out runs many independent
// Sims concurrently (see testbed.Runner), which is safe because a Sim
// shares no mutable state with any other.
package netem

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// Delivery fast path: when dst is non-nil the event hands pkt to the
	// destination's current handler instead of calling fn. Such events
	// are created only inside Send, never escape to callers, and are
	// recycled through the sim's free list once popped.
	pkt       *Packet
	dst       *handlerRef
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// handlerRef is the mutable binding from an endpoint identifier to its
// receive handler. Delivery events capture the ref at send time, so the
// per-packet map lookup happens once on Send instead of once more on
// delivery; Register/Unregister swap fn in place.
type handlerRef struct {
	fn func(*Packet)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator with a virtual clock. The zero value is
// not usable; construct with NewSim.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	handlers map[string]*handlerRef // IP -> receive handler binding
	paths    map[pathKey]*Link

	// Single-entry path cache: bulk transfers hammer one (src, dst) pair,
	// so most Sends skip the map lookup entirely. Invalidated on any
	// Connect/Disconnect.
	lastKey  pathKey
	lastLink *Link

	// free recycles the internal delivery events, the dominant allocation
	// of a packet-heavy run. Caller-visible events (from At/After) are
	// never pooled: callers may hold them for Cancel long after firing.
	free []*Event

	// mtrLocal batches this Sim's telemetry; see metrics.go.
	mtrLocal simMetrics

	// OnSend, when set, observes every admitted packet with its scheduled
	// arrival time (a pcap-style tap for debugging and tests).
	OnSend func(pkt *Packet, arrival time.Duration)
	// OnDeliver, when set, observes every packet actually handed to a
	// registered receiver (packets to unregistered addresses vanish
	// without firing it).
	OnDeliver func(pkt *Packet, at time.Duration)
}

type pathKey struct{ a, b string }

func orderedKey(a, b string) pathKey {
	if a > b {
		a, b = b, a
	}
	return pathKey{a, b}
}

// NewSim returns a simulator seeded deterministically.
func NewSim(seed int64) *Sim {
	return &Sim{
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]*handlerRef),
		paths:    make(map[pathKey]*Link),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("netem: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// After schedules fn d from now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// scheduleDelivery enqueues the internal per-packet delivery event, drawn
// from the free list.
func (s *Sim) scheduleDelivery(t time.Duration, pkt *Packet, dst *handlerRef) {
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.pkt, e.dst = t, s.seq, pkt, dst
	heap.Push(&s.events, e)
}

// release returns a popped delivery event to the free list. Events that
// were handed to a caller (fn-based) are left for the GC instead.
func (s *Sim) release(e *Event) {
	if e.dst == nil {
		return
	}
	*e = Event{index: -1}
	s.free = append(s.free, e)
}

// Step fires the next pending event. It reports false when the queue is
// empty.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			s.release(e)
			continue
		}
		s.now = e.at
		if e.dst != nil {
			pkt, ref := e.pkt, e.dst
			s.release(e) // recycle before the handler runs: pkt/ref are copied out
			if ref.fn != nil {
				s.mtrLocal.delivered++
				if s.mtrLocal.tick++; s.mtrLocal.tick&(flushEvery-1) == 0 {
					s.FlushMetrics()
				}
				if s.OnDeliver != nil {
					s.OnDeliver(pkt, s.now)
				}
				ref.fn(pkt)
			}
		} else {
			e.fn()
		}
		return true
	}
	return false
}

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
	s.FlushMetrics()
}

// RunUntil processes events with timestamps <= t and then advances the
// clock to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		next := s.peek()
		if next == nil || next.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
	s.FlushMetrics()
}

// peek returns the next live event without firing it, or nil when the
// queue is drained, discarding cancelled events at the top so RunUntil's
// bound check sees a live one.
func (s *Sim) peek() *Event {
	for s.events.Len() > 0 {
		e := s.events[0]
		if !e.cancelled {
			return e
		}
		heap.Pop(&s.events)
		s.release(e)
	}
	return nil
}

// Pending reports the number of scheduled (possibly cancelled) events.
func (s *Sim) Pending() int { return s.events.Len() }

// Package netem is a discrete-event network emulator used as the substrate
// for every CellBricks emulation experiment. It provides a virtual clock,
// an event queue, and a packet-level network model with links that impose
// propagation delay, jitter, random loss, bandwidth serialization, and
// operator rate-limiting policies (token-bucket shaping with a
// time-of-day rate schedule, modelling the bimodal T-Mobile behaviour the
// paper measures in Appendix A).
//
// All time in the simulator is virtual: experiments that span hundreds of
// emulated seconds complete in milliseconds of wall time and are fully
// deterministic for a given seed.
//
// A Sim is single-goroutine by design; scale-out runs many independent
// Sims concurrently (see testbed.Runner), which is safe because a Sim
// shares no mutable state with any other.
package netem

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// Delivery fast path: when dst is non-nil the event hands pkt to the
	// destination's current handler instead of calling fn. Such events
	// are created only inside Send, never escape to callers, and are
	// recycled through the sim's free list once popped.
	pkt       *Packet
	dst       *handlerRef
	cancelled bool
	index     int // heap index while resident in an eventHeap
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// handlerRef is the mutable binding from an endpoint identifier to its
// receive handler. Delivery events capture the ref at send time, so the
// per-packet lookup happens once on Send instead of once more on
// delivery; Register/Unregister swap fn in place.
type handlerRef struct {
	fn func(*Packet)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Endpoint is a dense integer handle for an endpoint identifier string,
// interned per Sim. Zero means "unresolved"; valid handles start at 1.
// Handles are only meaningful within the Sim that issued them.
type Endpoint int32

// SchedulerKind selects a Sim's event-queue implementation.
type SchedulerKind int32

const (
	// SchedulerWheel is the hierarchical timing wheel (default): O(1)
	// schedule/pop for the short-horizon delivery events that dominate
	// emulation runs, with an overflow heap for far-future timers.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the reference container/heap binary heap. Firing
	// order is identical to the wheel; it exists as the determinism oracle
	// and an escape hatch.
	SchedulerHeap
)

var defaultScheduler atomic.Int32 // SchedulerKind; wheel (0) by default

// SetDefaultScheduler changes the scheduler NewSim uses for subsequently
// constructed simulators. Both kinds fire events in identical (at, seq)
// order, so experiment output is unaffected; this exists for A/B
// determinism tests and benchmarks.
func SetDefaultScheduler(k SchedulerKind) { defaultScheduler.Store(int32(k)) }

// DefaultScheduler reports the kind NewSim currently uses.
func DefaultScheduler() SchedulerKind { return SchedulerKind(defaultScheduler.Load()) }

// pathEntry is an installed link plus the interned handle of its
// lexicographically-smaller endpoint name, which fixes the link's A->B
// direction (shaper and serialization state are per-direction). A non-nil
// remote marks the local half of a cross-shard link (see World): Send
// applies the full link model here, then parks the packet in the world's
// mailbox instead of the local event queue.
type pathEntry struct {
	link   *Link
	aEP    Endpoint
	remote *remoteRoute
}

// packEPs builds the order-insensitive path-map key for a pair of
// endpoint handles.
func packEPs(x, y Endpoint) uint64 {
	if x > y {
		x, y = y, x
	}
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

// Sim is a discrete-event simulator with a virtual clock. The zero value is
// not usable; construct with NewSim.
type Sim struct {
	now   time.Duration
	sched scheduler
	seq   uint64
	rng   *rand.Rand

	// Endpoint interning: names resolve once to dense handles; the
	// per-packet path indexes slices instead of hashing strings.
	eps      map[string]Endpoint
	epNames  []string      // handle-1 -> name
	handlers []*handlerRef // handle-1 -> receive handler binding

	paths map[uint64]*pathEntry

	// Single-entry path cache: bulk transfers hammer one (src, dst) pair,
	// so most Sends skip the map lookup entirely. Invalidated on any
	// Connect/Disconnect.
	lastKey  uint64
	lastPath *pathEntry

	// free recycles the internal delivery events, the dominant allocation
	// of a packet-heavy run. Caller-visible events (from At/After) are
	// never pooled: callers may hold them for Cancel long after firing.
	free []*Event

	// pktFree recycles pooled Packets (see GetPacket); together with the
	// event free list this makes the steady-state send path allocation-free.
	pktFree []*Packet

	// mtrLocal batches this Sim's telemetry; see metrics.go.
	mtrLocal simMetrics

	// sharded marks a Sim owned by a multi-shard World: the per-Sim
	// queue-depth gauge is suppressed (the World publishes the merged
	// depth instead).
	sharded bool

	// OnSend, when set, observes every admitted packet with its scheduled
	// arrival time (a pcap-style tap for debugging and tests).
	OnSend func(pkt *Packet, arrival time.Duration)
	// OnDeliver, when set, observes every packet actually handed to a
	// registered receiver (packets to unregistered addresses vanish
	// without firing it).
	OnDeliver func(pkt *Packet, at time.Duration)
}

// NewSim returns a simulator seeded deterministically, using the process
// default scheduler (the timing wheel unless SetDefaultScheduler changed it).
func NewSim(seed int64) *Sim {
	return NewSimScheduler(seed, DefaultScheduler())
}

// NewSimScheduler returns a simulator with an explicit scheduler kind.
// Output per seed is byte-identical across kinds.
func NewSimScheduler(seed int64, kind SchedulerKind) *Sim {
	var sched scheduler
	if kind == SchedulerHeap {
		sched = &heapSched{}
	} else {
		sched = newTimingWheel()
	}
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		sched: sched,
		eps:   make(map[string]Endpoint),
		paths: make(map[uint64]*pathEntry),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Endpoint interns an endpoint identifier, returning its dense handle.
// Repeated calls with the same name return the same handle.
func (s *Sim) Endpoint(name string) Endpoint {
	if ep, ok := s.eps[name]; ok {
		return ep
	}
	s.epNames = append(s.epNames, name)
	s.handlers = append(s.handlers, &handlerRef{})
	ep := Endpoint(len(s.epNames))
	s.eps[name] = ep
	return ep
}

// EndpointName returns the name a handle was interned under, or "" for an
// invalid handle.
func (s *Sim) EndpointName(ep Endpoint) string {
	if ep < 1 || int(ep) > len(s.epNames) {
		return ""
	}
	return s.epNames[ep-1]
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("netem: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.sched.push(e)
	return e
}

// After schedules fn d from now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// scheduleDelivery enqueues the internal per-packet delivery event, drawn
// from the free list.
func (s *Sim) scheduleDelivery(t time.Duration, pkt *Packet, dst *handlerRef) {
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.pkt, e.dst = t, s.seq, pkt, dst
	s.sched.push(e)
}

// connectRemote installs the local half of a cross-shard link: the same
// path entry Connect builds, tagged with the mailbox route. Only World
// calls this, once per direction with a per-side copy of the link.
func (s *Sim) connectRemote(a, b string, l *Link, r *remoteRoute) {
	epA, epB := s.Endpoint(a), s.Endpoint(b)
	aEP := epA
	if b < a {
		aEP = epB
	}
	s.paths[packEPs(epA, epB)] = &pathEntry{link: l, aEP: aEP, remote: r}
	s.lastPath = nil
}

// inject schedules the delivery of a cross-shard packet that already
// carries its full arrival time (every delay term was applied by the
// sending shard). Called by World.exchange at a window barrier, in
// canonical merge order; arrivals before the shard's clock would mean the
// lookahead bound was violated, which is a World bug worth crashing on.
func (s *Sim) inject(at time.Duration, src, dst string, size int, payload any) {
	if at < s.now {
		panic(fmt.Sprintf("netem: cross-shard packet for %q arrives at %v before shard time %v (lookahead violation)", dst, at, s.now))
	}
	dep := s.Endpoint(dst)
	pkt := s.GetPacket()
	pkt.Src, pkt.Dst = src, dst
	pkt.SrcEP, pkt.DstEP = s.Endpoint(src), dep
	pkt.Size, pkt.Payload = size, payload
	pkt.inflight = true
	s.scheduleDelivery(at, pkt, s.handlers[dep-1])
}

// release returns a popped delivery event to the free list. Events that
// were handed to a caller (fn-based) are left for the GC instead.
func (s *Sim) release(e *Event) {
	if e.dst == nil {
		return
	}
	*e = Event{index: -1}
	s.free = append(s.free, e)
}

// GetPacket returns a Packet from the Sim's pool (or a fresh one). Pooled
// packets are recycled automatically after their delivery handler returns,
// so neither the sender nor the receiver may retain one past the handler;
// copy out what you need. A pooled packet that Send rejects (returns
// false) is still owned by the caller — return it with PutPacket.
func (s *Sim) GetPacket() *Packet {
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree = s.pktFree[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// PutPacket returns a pooled packet for reuse, zeroing it. Packets not
// obtained from GetPacket, and packets currently in flight, are ignored.
func (s *Sim) PutPacket(p *Packet) {
	if p == nil || !p.pooled || p.inflight {
		return
	}
	*p = Packet{pooled: true}
	s.pktFree = append(s.pktFree, p)
}

// Step fires the next pending event. It reports false when the queue is
// empty.
func (s *Sim) Step() bool {
	for {
		e := s.sched.pop()
		if e == nil {
			return false
		}
		if e.cancelled {
			s.release(e)
			continue
		}
		s.now = e.at
		if e.dst != nil {
			pkt, ref := e.pkt, e.dst
			s.release(e) // recycle before the handler runs: pkt/ref are copied out
			if pkt.pooled {
				pkt.inflight = false
			}
			if ref.fn != nil {
				s.mtrLocal.delivered++
				if s.mtrLocal.tick++; s.mtrLocal.tick&(flushEvery-1) == 0 {
					s.FlushMetrics()
				}
				if s.OnDeliver != nil {
					s.OnDeliver(pkt, s.now)
				}
				ref.fn(pkt)
			}
			// Auto-recycle unless the handler re-sent the same packet
			// (inflight again) or it was never pooled.
			s.PutPacket(pkt)
		} else {
			e.fn()
		}
		return true
	}
}

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
	s.FlushMetrics()
}

// RunUntil processes events with timestamps <= t and then advances the
// clock to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for {
		next := s.peek()
		if next == nil || next.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
	s.FlushMetrics()
}

// peek returns the next live event without firing it, or nil when the
// queue is drained, discarding cancelled events at the top so RunUntil's
// bound check sees a live one.
func (s *Sim) peek() *Event {
	for {
		e := s.sched.peek()
		if e == nil {
			return nil
		}
		if !e.cancelled {
			return e
		}
		s.sched.pop()
		s.release(e)
	}
}

// Pending reports the number of scheduled (possibly cancelled) events.
func (s *Sim) Pending() int { return s.sched.len() }

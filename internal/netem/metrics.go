package netem

import (
	"cellbricks/internal/obs"
)

// Package-wide telemetry handles. Every Sim in the process feeds the same
// counters — the registry aggregates across the experiment runner's
// concurrent simulations, exactly like a multi-core router's per-CPU
// counters summing into one SNMP view. A Sim is single-goroutine, so the
// hot path increments plain per-Sim integers (see simMetrics) and flushes
// them into these shared atomics every flushEvery events and at the end of
// each Run/RunUntil — the overhead benchmark in metrics_bench_test.go
// holds the enabled-vs-disabled delta under 5%.
//
// Telemetry never touches a Sim's seeded RNG or its event queue, so
// enabling it cannot perturb event ordering or experiment output — the
// determinism golden tests run with it on.
var mtr struct {
	sent       *obs.Counter
	sentBytes  *obs.Counter
	delivered  *obs.Counter
	dropLoss   *obs.Counter
	dropQueue  *obs.Counter
	dropDown   *obs.Counter
	xshard     *obs.Counter
	queueDepth *obs.Gauge
}

func init() { SetMetricsEnabled(true) }

// SetMetricsEnabled installs (true) or removes (false) the package's
// handles in the default registry. Call at process or test setup, not
// while simulations are running.
func SetMetricsEnabled(on bool) {
	if !on {
		mtr.sent, mtr.sentBytes, mtr.delivered = nil, nil, nil
		mtr.dropLoss, mtr.dropQueue, mtr.dropDown = nil, nil, nil
		mtr.xshard, mtr.queueDepth = nil, nil
		return
	}
	r := obs.Default()
	mtr.sent = r.Counter("netem_packets_sent_total", "packets admitted onto an emulated link")
	mtr.sentBytes = r.Counter("netem_bytes_sent_total", "bytes admitted onto an emulated link")
	mtr.delivered = r.Counter("netem_packets_delivered_total", "packets handed to a registered receiver")
	mtr.dropLoss = r.Counter("netem_drops_loss_total", "packets dropped by random loss")
	mtr.dropQueue = r.Counter("netem_drops_queue_total", "packets dropped by a full queue, shaper, or transit hook")
	mtr.dropDown = r.Counter("netem_drops_down_total", "packets dropped on a down link")
	mtr.xshard = r.Counter("netem_xshard_packets_total", "packets carried across shard mailboxes in sharded worlds")
	mtr.queueDepth = r.Gauge("netem_event_queue_depth", "scheduled events: the merged world depth for sharded runs, else the most recently flushed simulator")
}

// flushEvery is the hot-path batch size: per-Sim counts migrate into the
// shared registry every 2^10 sends+deliveries (and at the end of every
// Run/RunUntil), trading one atomic per packet for one per kilopacket.
const flushEvery = 1 << 10

// simMetrics is a Sim's local accumulation. Plain integers: a Sim is
// single-goroutine by contract.
type simMetrics struct {
	tick      uint64 // sends+deliveries since the last flush trigger check
	sent      uint64
	sentBytes uint64
	delivered uint64
}

// FlushMetrics publishes the Sim's locally accumulated counts into the
// process-wide registry. Run and RunUntil call it on return; call it
// directly before scraping mid-run.
func (s *Sim) FlushMetrics() {
	m := &s.mtrLocal
	if m.sent > 0 {
		mtr.sent.Add(m.sent)
		mtr.sentBytes.Add(m.sentBytes)
		m.sent, m.sentBytes = 0, 0
	}
	if m.delivered > 0 {
		mtr.delivered.Add(m.delivered)
		m.delivered = 0
	}
	// A shard of a multi-Sim world must not publish its own depth:
	// last-flush-wins across concurrent shards is meaningless, so the
	// World sets the merged depth at each barrier instead.
	if !s.sharded {
		mtr.queueDepth.Set(int64(s.sched.len()))
	}
}

package obs

import (
	"io"
	"sort"
	"sync"
)

// FlightRecorder keeps a bounded ring of the most recent trace events per
// component (trace category), like an aircraft flight recorder: cheap to
// feed continuously, read only after something goes wrong. Attach one to a
// Tracer with SetFlight and every record — retained or not — is mirrored
// into the ring for its category. Dump contents are deterministic: rings
// are keyed by category in first-appearance order and hold events in
// record order, so a deterministic run produces a byte-identical dump.
type FlightRecorder struct {
	mu      sync.Mutex
	perCat  int
	order   []string
	rings   map[string]*flightRing
	dropped uint64
}

type flightRing struct {
	buf   []TraceEvent
	next  int
	total int
}

// NewFlightRecorder builds a recorder holding up to perCat recent events
// for each category (minimum 1).
func NewFlightRecorder(perCat int) *FlightRecorder {
	if perCat < 1 {
		perCat = 1
	}
	return &FlightRecorder{perCat: perCat, rings: make(map[string]*flightRing)}
}

// Record mirrors one event into its category's ring, evicting the oldest
// when full. Nil-safe.
func (fr *FlightRecorder) Record(e TraceEvent) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	r := fr.rings[e.Cat]
	if r == nil {
		r = &flightRing{buf: make([]TraceEvent, 0, fr.perCat)}
		fr.rings[e.Cat] = r
		fr.order = append(fr.order, e.Cat)
	}
	if len(r.buf) < fr.perCat {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % fr.perCat
		fr.dropped++
	}
	r.total++
	fr.mu.Unlock()
}

// Events returns the recorded events, oldest first within each category,
// categories in first-appearance order, globally re-sorted by tracer
// sequence when available so the dump reads as one coherent timeline.
func (fr *FlightRecorder) Events() []TraceEvent {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	var out []TraceEvent
	for _, cat := range fr.order {
		r := fr.rings[cat]
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	}
	fr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Len reports how many events the recorder currently holds.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := 0
	for _, r := range fr.rings {
		n += len(r.buf)
	}
	return n
}

// Dropped reports how many events have been evicted from full rings.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dropped
}

// WriteDump writes the recorder contents as JSONL (same shape as a trace
// file, so the same tooling reads both). Nil-safe.
func (fr *FlightRecorder) WriteDump(w io.Writer) error {
	if fr == nil {
		return nil
	}
	return WriteJSONLEvents(w, fr.Events())
}

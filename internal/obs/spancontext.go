package obs

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// SpanContext is the compact causal-trace identity carried end-to-end
// through NAS envelopes and wire frame headers. Trace groups every span of
// one logical operation (e.g. a UE attach), Span identifies this hop, and
// Parent names the span that caused it. The zero value is "no context".
type SpanContext struct {
	Trace  uint64
	Span   uint64
	Parent uint64
}

// SpanContextLen is the wire size of an encoded SpanContext.
const SpanContextLen = 24

// Valid reports whether the context carries a trace (Trace != 0).
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Child derives the context for a callee span: same trace, the given span
// ID, parented under the receiver's span.
func (sc SpanContext) Child(span uint64) SpanContext {
	return SpanContext{Trace: sc.Trace, Span: span, Parent: sc.Span}
}

// AppendSpanContext appends the 24-byte big-endian encoding of sc to dst.
func AppendSpanContext(dst []byte, sc SpanContext) []byte {
	dst = binary.BigEndian.AppendUint64(dst, sc.Trace)
	dst = binary.BigEndian.AppendUint64(dst, sc.Span)
	return binary.BigEndian.AppendUint64(dst, sc.Parent)
}

// DecodeSpanContext parses a context encoded by AppendSpanContext from the
// front of b.
func DecodeSpanContext(b []byte) (SpanContext, error) {
	if len(b) < SpanContextLen {
		return SpanContext{}, fmt.Errorf("obs: span context truncated: %d bytes, want %d", len(b), SpanContextLen)
	}
	return SpanContext{
		Trace:  binary.BigEndian.Uint64(b[0:8]),
		Span:   binary.BigEndian.Uint64(b[8:16]),
		Parent: binary.BigEndian.Uint64(b[16:24]),
	}, nil
}

// SpanIDSource mints deterministic span IDs: each ID is a splitmix64 mix of
// the source seed and a process-order sequence number, so a run with a fixed
// seed and a fixed span-creation order yields byte-identical traces — never
// the math/rand global, which other components may consume from. Safe for
// concurrent use; in deterministic simulations callers must additionally
// mint IDs in a deterministic order (e.g. only from shard-0 handlers).
type SpanIDSource struct {
	seed uint64
	seq  atomic.Uint64
}

// NewSpanIDSource builds a source keyed to a simulation seed.
func NewSpanIDSource(seed int64) *SpanIDSource {
	return &SpanIDSource{seed: splitmix64(uint64(seed) ^ 0x5ca1ab1e5eed5eed)}
}

// Next mints the next span ID. IDs are never zero (zero means "no context").
func (s *SpanIDSource) Next() uint64 {
	if s == nil {
		return 0
	}
	id := splitmix64(s.seed + s.seq.Add(1)*0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// NewTrace mints a root context: a fresh trace whose root span shares the
// trace ID (Trace == Span, Parent == 0) so roots are recognizable.
func (s *SpanIDSource) NewTrace() SpanContext {
	id := s.Next()
	return SpanContext{Trace: id, Span: id}
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator — a cheap
// bijective mixer with good avalanche, ideal for seed+counter ID schemes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceIDString renders a trace ID the way exports and filters spell it.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID accepts a trace ID as hex (with or without 0x, zero-padded
// or not) or decimal, matching what TraceIDString and the JSONL export emit.
func ParseTraceID(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if h, ok := strings.CutPrefix(s, "0x"); ok {
		return strconv.ParseUint(h, 16, 64)
	}
	if id, err := strconv.ParseUint(s, 10, 64); err == nil {
		return id, nil
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return id, nil
}

// FilterTrace returns the events belonging to one trace, preserving order.
func FilterTrace(events []TraceEvent, trace uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range events {
		if e.Trace == trace {
			out = append(out, e)
		}
	}
	return out
}

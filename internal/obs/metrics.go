// Package obs is the deterministic observability layer shared by every
// CellBricks component: a lock-free metrics registry (counters, gauges,
// fixed-bucket latency histograms), a span/event tracer that can run
// against either the discrete-event simulator clock or the wall clock,
// a leveled logger, and live debug endpoints (Prometheus text /metrics,
// expvar, pprof).
//
// Two properties are load-bearing and guarded by tests elsewhere in the
// repo:
//
//   - Zero perturbation: recording a metric or a trace event never touches
//     a seeded RNG, never schedules or reorders simulator events, and never
//     changes experiment output. The byte-identical golden tests in
//     internal/testbed and internal/netem run with telemetry enabled.
//   - Hot-path cost: a counter update is one atomic add; a nil handle is a
//     single branch. The netem delivery benchmark asserts <5% overhead
//     enabled-vs-disabled.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and nil-safe: a nil *Counter is a no-op handle, which is
// how a subsystem's telemetry is disabled without branching on a global.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the metric name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the metric name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// DefaultLatencyBuckets spans 100µs..10s in roughly 1-2.5-5 steps — wide
// enough for both loopback RPCs and wide-area attach latencies.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: cumulative bucket counts
// plus a sum and total count, all atomics. Bucket bounds are fixed at
// construction; Observe is lock-free. Nil-safe like Counter.
type Histogram struct {
	name    string
	help    string
	bounds  []time.Duration // upper bounds, ascending; +Inf implied
	buckets []atomic.Uint64 // non-cumulative per-bucket counts, len(bounds)+1
	count   atomic.Uint64
	sumNS   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and the common case exits in the
	// first few comparisons; binary search costs more in branch misses.
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed latencies.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Name returns the metric name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// BucketCounts returns the cumulative count at each bound, with the final
// element the +Inf (total) count.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Registry is a named collection of metrics. Registration takes a mutex
// (it happens once per metric at package init); the returned handles
// update lock-free. The zero value is not usable; use NewRegistry or the
// package Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the wire, broker, epc, ue
// and netem packages register into.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on first
// use. Re-registering returns the same handle (help from the first call
// wins).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds select
// DefaultLatencyBuckets). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]time.Duration(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Snapshot returns every value in the registry: counters and gauges under
// their own names, histograms as name_count, name_sum_seconds, and one
// name_bucket_le_<bound> series per bucket (non-cumulative, so per-shard
// snapshots merge additively in SumSnapshots; zero buckets are skipped).
// Keys are stable, so two snapshots diff cleanly.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum_seconds"] = h.Sum().Seconds()
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			out[name+"_bucket_le_"+bucketLabel(h.bounds, i)] = float64(n)
		}
	}
	return out
}

// bucketLabel names histogram bucket i the way the exposition format spells
// its upper bound ("0.005", "1", "+Inf").
func bucketLabel(bounds []time.Duration, i int) string {
	if i < len(bounds) {
		return formatSeconds(bounds[i])
	}
	return "+Inf"
}

// Delta returns cur minus prev, dropping zero deltas — the per-experiment
// view cbbench embeds in its bench-trajectory records. Gauges appear with
// their current value rather than a difference.
func Delta(prev, cur map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// SumSnapshots merges per-shard registry snapshots into one view by
// summing values key-wise. Counters and histogram aggregates are naturally
// additive; the gauges the netem layer exports (queue depth) are per-shard
// quantities whose across-shard total is the meaningful world-level figure,
// so they sum too. Missing keys count as zero, so shards that never touched
// a metric don't need a placeholder.
func SumSnapshots(snaps ...map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range snaps {
		for k, v := range s {
			out[k] += v
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].name < histograms[j].name })

	var b strings.Builder
	for _, c := range counters {
		writeHeader(&b, c.name, c.help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.name, c.Value())
	}
	for _, g := range gauges {
		writeHeader(&b, g.name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %d\n", g.name, g.Value())
	}
	for _, h := range histograms {
		writeHeader(&b, h.name, h.help, "histogram")
		cum := h.BucketCounts()
		for i, bound := range h.bounds {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.name, formatSeconds(bound), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum[len(cum)-1])
		fmt.Fprintf(&b, "%s_sum %g\n", h.name, h.Sum().Seconds())
		fmt.Fprintf(&b, "%s_count %d\n", h.name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// formatSeconds renders a duration bound as seconds without trailing
// zeros, matching Prometheus conventions ("0.005", "1", "2.5").
func formatSeconds(d time.Duration) string {
	s := fmt.Sprintf("%g", d.Seconds())
	return s
}

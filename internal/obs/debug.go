package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer serves the live inspection endpoints for a running
// CellBricks process:
//
//	/metrics       Prometheus text exposition of a Registry
//	/debug/vars    expvar JSON (includes the registry snapshot)
//	/debug/pprof/  the standard Go profiler endpoints
//
// It binds its own listener and mux — nothing is registered on
// http.DefaultServeMux, so tests can run many servers side by side.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

var expvarOnce sync.Once

// ServeDebug starts the debug endpoints on addr (":0" picks a free port;
// query Addr for the binding). reg nil selects the Default registry.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	// Publish the registry into expvar once, so /debug/vars carries the
	// same numbers as /metrics alongside the runtime's memstats/cmdline.
	expvarOnce.Do(func() {
		expvar.Publish("cellbricks_metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "cellbricks debug endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsAgainstInjectedClock(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })

	now = 10 * time.Millisecond
	tr.Event("chaos", "fault", map[string]string{"kind": "flap"})
	now = 15 * time.Millisecond
	end := tr.Begin("attach", "sap", nil)
	now = 40 * time.Millisecond
	end()
	tr.Span("wire", "call", 5*time.Millisecond, 2*time.Millisecond, nil)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d, want 3", len(ev))
	}
	if !ev[0].Instant || ev[0].Start != 10*time.Millisecond || ev[0].Args["kind"] != "flap" {
		t.Fatalf("bad instant event: %+v", ev[0])
	}
	if ev[1].Instant || ev[1].Start != 15*time.Millisecond || ev[1].Dur != 25*time.Millisecond {
		t.Fatalf("bad begin/end span: %+v", ev[1])
	}
	if ev[2].Start != 5*time.Millisecond || ev[2].Dur != 2*time.Millisecond {
		t.Fatalf("bad explicit span: %+v", ev[2])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })
	tr.Event("a", "x", map[string]string{"k": "v"})
	now = time.Second
	tr.Span("b", "y", 100*time.Millisecond, 50*time.Millisecond, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d != %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(got[i])
		b, _ := json.Marshal(want[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("event %d round trip mismatch: %s vs %s", i, a, b)
		}
	}
}

func TestChromeTraceShape(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })
	tr.Event("chaos", "fault", nil)
	tr.Span("attach", "sap", time.Millisecond, 2*time.Millisecond, map[string]string{"telco": "t0"})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	// 2 records + 2 thread_name metadata rows.
	if len(evs) != 4 {
		t.Fatalf("chrome events = %d, want 4", len(evs))
	}
	var sawInstant, sawSpan bool
	for _, e := range evs {
		switch e["ph"] {
		case "i":
			sawInstant = true
		case "X":
			sawSpan = true
			if e["ts"].(float64) != 1000 || e["dur"].(float64) != 2000 {
				t.Fatalf("span ts/dur not in microseconds: %+v", e)
			}
		}
	}
	if !sawInstant || !sawSpan {
		t.Fatalf("missing phases: instant=%v span=%v", sawInstant, sawSpan)
	}
}

// TestTraceDeterminism: same recorded sequence, byte-identical serialization.
func TestTraceDeterminism(t *testing.T) {
	mk := func() *Tracer {
		var now time.Duration
		tr := NewTracer(func() time.Duration { return now })
		for i := 0; i < 50; i++ {
			now += time.Millisecond
			tr.Event("cat", "e", map[string]string{"b": "2", "a": "1", "c": "3"})
			tr.Span("cat", "s", now, time.Millisecond, nil)
		}
		return tr
	}
	var b1, b2, c1, c2 bytes.Buffer
	if err := mk().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("JSONL serialization not deterministic")
	}
	if err := mk().WriteChromeTrace(&c1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteChromeTrace(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatalf("Chrome trace serialization not deterministic")
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "smoke").Add(9)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "smoke_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Fatalf("/debug/vars does not look like expvar output:\n%.200s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%.200s", out)
	}
}

func TestLogLevels(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(nil)
	defer SetLogLevel(LevelInfo)

	SetLogLevel(LevelInfo)
	Debugf("wire", "retry %d", 1)
	Infof("wire", "listening")
	Errorf("wire", "boom")
	out := buf.String()
	if strings.Contains(out, "retry") {
		t.Fatalf("debug message leaked at info level:\n%s", out)
	}
	if !strings.Contains(out, "listening") || !strings.Contains(out, "boom") {
		t.Fatalf("info/error messages missing:\n%s", out)
	}

	buf.Reset()
	Verbose(true)
	Debugf("wire", "retry %d", 2)
	if !strings.Contains(buf.String(), "retry 2") {
		t.Fatalf("debug message missing at debug level:\n%s", buf.String())
	}
}

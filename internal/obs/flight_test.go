package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderBoundedPerCategory(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		fr.Record(TraceEvent{Cat: "wire", Name: fmt.Sprintf("e%d", i), seq: uint64(i + 1)})
	}
	fr.Record(TraceEvent{Cat: "broker", Name: "only", seq: 100})

	if fr.Len() != 4 {
		t.Fatalf("len = %d, want 4 (3 wire + 1 broker)", fr.Len())
	}
	if fr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", fr.Dropped())
	}
	ev := fr.Events()
	// Oldest surviving wire events first (e7, e8, e9), then broker.
	wantNames := []string{"e7", "e8", "e9", "only"}
	for i, w := range wantNames {
		if ev[i].Name != w {
			t.Fatalf("event %d = %q, want %q (%+v)", i, ev[i].Name, w, ev)
		}
	}
}

func TestFlightRecorderDumpDeterministic(t *testing.T) {
	mk := func() *FlightRecorder {
		fr := NewFlightRecorder(4)
		for i := 0; i < 20; i++ {
			fr.Record(TraceEvent{
				Cat: []string{"ue", "sap", "broker"}[i%3], Name: "op",
				Start: time.Duration(i) * time.Millisecond, seq: uint64(i + 1),
			})
		}
		return fr
	}
	var a, b bytes.Buffer
	if err := mk().WriteDump(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteDump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) || a.Len() == 0 {
		t.Fatalf("flight dump not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(TraceEvent{Cat: "x"})
	if fr.Len() != 0 || fr.Dropped() != 0 || fr.Events() != nil {
		t.Fatalf("nil recorder must be inert")
	}
	if err := fr.WriteDump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestTracerFeedsFlightWithRetainOff: with retention off the tracer's own
// buffer stays empty but the flight recorder still sees everything — the
// bounded-memory soak configuration.
func TestTracerFeedsFlightWithRetainOff(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })
	fr := NewFlightRecorder(8)
	tr.SetFlight(fr)
	tr.SetRetain(false)

	for i := 0; i < 20; i++ {
		now = time.Duration(i) * time.Millisecond
		tr.Event("soak", "tick", nil)
	}
	if tr.Len() != 0 {
		t.Fatalf("tracer retained %d events with retain off", tr.Len())
	}
	if fr.Len() != 8 {
		t.Fatalf("flight holds %d, want 8", fr.Len())
	}
	ev := fr.Events()
	if ev[0].Start != 12*time.Millisecond || ev[len(ev)-1].Start != 19*time.Millisecond {
		t.Fatalf("flight should hold the most recent events: %+v", ev)
	}
	if tr.Flight() != fr {
		t.Fatalf("Flight() accessor mismatch")
	}
}

// TestTracerStripedOrder: concurrent recorders land in a total order; a
// single-goroutine recording keeps its program order.
func TestTracerStripedOrder(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })
	for i := 0; i < 100; i++ {
		tr.Event("seq", fmt.Sprintf("e%d", i), nil)
	}
	ev := tr.Events()
	if len(ev) != 100 {
		t.Fatalf("events = %d, want 100", len(ev))
	}
	for i, e := range ev {
		if e.Name != fmt.Sprintf("e%d", i) {
			t.Fatalf("event %d out of order: %q", i, e.Name)
		}
	}

	tr2 := NewTracer(func() time.Duration { return 0 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr2.Span("par", "s", 0, time.Millisecond, nil)
			}
		}(g)
	}
	wg.Wait()
	ev2 := tr2.Events()
	if len(ev2) != 4000 {
		t.Fatalf("concurrent events = %d, want 4000", len(ev2))
	}
	for i := 1; i < len(ev2); i++ {
		if ev2[i].seq <= ev2[i-1].seq {
			t.Fatalf("events not in sequence order at %d", i)
		}
	}
}

// BenchmarkTracerEvent measures the per-record cost of the striped append
// path — the satellite fix for the old single-global-mutex tracer.
func BenchmarkTracerEvent(b *testing.B) {
	tr := NewTracer(func() time.Duration { return 0 })
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Span("bench", "op", 0, time.Microsecond, nil)
		}
	})
}

// BenchmarkTracerEventRetainOff measures the sink-only path (flight
// recorder attached, retention off) used by long soaks.
func BenchmarkTracerEventRetainOff(b *testing.B) {
	tr := NewTracer(func() time.Duration { return 0 })
	tr.SetFlight(NewFlightRecorder(64))
	tr.SetRetain(false)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Span("bench", "op", 0, time.Microsecond, nil)
		}
	})
}

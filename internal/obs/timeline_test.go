package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// syntheticAttachTrace builds a two-session trace shaped like the failover
// experiment's: per-session root span with phase children, plus unrelated
// id-less noise.
func syntheticAttachTrace() []TraceEvent {
	ids := NewSpanIDSource(11)
	var out []TraceEvent
	addSession := func(label string, base time.Duration, outcome string) {
		root := ids.NewTrace()
		out = append(out, TraceEvent{
			Cat: "attach", Name: "attach-storm", Start: base, Dur: 30 * time.Millisecond,
			Trace: root.Trace, Span: root.Span,
			Args: map[string]string{"session": label, "outcome": outcome},
		})
		phase := func(cat, name string, off, dur time.Duration) {
			c := root.Child(ids.Next())
			out = append(out, TraceEvent{
				Cat: cat, Name: name, Start: base + off, Dur: dur,
				Trace: c.Trace, Span: c.Span, Parent: c.Parent,
			})
		}
		phase("ran", "cell-select", 0, 2*time.Millisecond)
		phase("ue", "aka", 2*time.Millisecond, 8*time.Millisecond)
		phase("sap", "sap-auth", 10*time.Millisecond, 12*time.Millisecond)
		phase("epc", "bearer-setup", 22*time.Millisecond, 8*time.Millisecond)
		// A retry re-enters a phase: folds into the same row.
		phase("ue", "aka", 30*time.Millisecond, 4*time.Millisecond)
		// An instant carrying the ctx must not count as a phase.
		out = append(out, TraceEvent{
			Cat: "slo", Name: "breach-enter", Start: base, Instant: true,
			Trace: root.Trace, Span: root.Span,
		})
	}
	addSession("s0", 100*time.Millisecond, "ok")
	addSession("s1", 500*time.Millisecond, "giveup")
	out = append(out, TraceEvent{Cat: "chaos", Name: "fault", Start: 0, Instant: true})
	return out
}

func TestBuildTimelines(t *testing.T) {
	tls := BuildTimelines(syntheticAttachTrace())
	if len(tls) != 2 {
		t.Fatalf("timelines = %d, want 2", len(tls))
	}
	tl := tls[0]
	if tl.Session != "s0" || tl.Name != "attach-storm" || tl.Outcome != "ok" {
		t.Fatalf("bad timeline header: %+v", tl)
	}
	if tl.Spans != 6 { // root + 5 phase spans
		t.Fatalf("spans = %d, want 6", tl.Spans)
	}
	wantPhases := []struct {
		name  string
		dur   time.Duration
		count int
	}{
		{"cell-select", 2 * time.Millisecond, 1},
		{"aka", 12 * time.Millisecond, 2}, // 8ms + 4ms retry folded
		{"sap-auth", 12 * time.Millisecond, 1},
		{"bearer-setup", 8 * time.Millisecond, 1},
	}
	if len(tl.Phases) != len(wantPhases) {
		t.Fatalf("phases = %d, want %d: %+v", len(tl.Phases), len(wantPhases), tl.Phases)
	}
	for i, w := range wantPhases {
		p := tl.Phases[i]
		if p.Name != w.name || p.Dur != w.dur || p.Count != w.count {
			t.Fatalf("phase %d = %+v, want %+v", i, p, w)
		}
	}
	if tls[1].Session != "s1" || tls[1].Outcome != "giveup" {
		t.Fatalf("bad second timeline: %+v", tls[1])
	}
}

func TestTimelineSessionFallsBackToTraceID(t *testing.T) {
	ids := NewSpanIDSource(1)
	root := ids.NewTrace()
	tls := BuildTimelines([]TraceEvent{
		{Cat: "a", Name: "op", Trace: root.Trace, Span: root.Span, Dur: time.Second},
	})
	if len(tls) != 1 || tls[0].Session != TraceIDString(root.Trace) {
		t.Fatalf("session label should fall back to hex trace id: %+v", tls)
	}
}

func TestRenderTimelinesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := RenderTimelines(&a, BuildTimelines(syntheticAttachTrace())); err != nil {
		t.Fatal(err)
	}
	if err := RenderTimelines(&b, BuildTimelines(syntheticAttachTrace())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("timeline rendering not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"session s0", "session s1", "cell-select", "aka", "outcome=ok", "outcome=giveup", "n=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	var j1, j2 bytes.Buffer
	if err := WriteTimelinesJSON(&j1, BuildTimelines(syntheticAttachTrace())); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelinesJSON(&j2, BuildTimelines(syntheticAttachTrace())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatalf("timeline JSON not deterministic")
	}
	if err := WriteTimelinesJSON(&j1, nil); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLOKind selects how a tracker's window aggregates into a value.
type SLOKind int

const (
	// SLORatioMin: value = good/total must stay >= Objective
	// (e.g. availability >= 0.9). Empty window counts as healthy (1.0).
	SLORatioMin SLOKind = iota
	// SLORatioMax: value = observed/allowed must stay <= Objective
	// (e.g. billed/honest <= 1+epsilon). Empty window counts as 0.
	SLORatioMax
	// SLOLatencyP99: p99 over a windowed histogram (DefaultLatencyBuckets
	// bounds) must stay <= Target. Empty window counts as 0.
	SLOLatencyP99
)

func (k SLOKind) String() string {
	switch k {
	case SLORatioMin:
		return "ratio-min"
	case SLORatioMax:
		return "ratio-max"
	case SLOLatencyP99:
		return "latency-p99"
	}
	return fmt.Sprintf("SLOKind(%d)", int(k))
}

// SLOSpec declares one service-level objective evaluated over a sliding
// window of the tracker's clock (virtual time under simulation).
type SLOSpec struct {
	Name      string
	Kind      SLOKind
	Objective float64       // ratio kinds: the ratio bound
	Target    time.Duration // latency kind: the p99 target
	Window    time.Duration // sliding-window width
	Buckets   int           // ring granularity (default 12)
}

// sloBucket is one fixed-width slice of the sliding window. Buckets are a
// ring keyed by (at / width) % n and reset lazily when a new epoch lands
// on them, so the steady-state observe path allocates nothing.
type sloBucket struct {
	start time.Duration // aligned bucket start; -1 means empty
	a, b  float64
	lat   []uint32 // len(DefaultLatencyBuckets)+1, allocated at Declare
}

// SLOStatus is one evaluation of a tracker at an instant.
type SLOStatus struct {
	Value    float64 // window-aggregated value (ratio or p99 seconds)
	Margin   float64 // normalized distance to the objective; < 0 = breach
	Burn     float64 // burn rate; > 1 means the objective is being missed
	Breached bool
}

// SLOTracker evaluates one SLOSpec over its ring. Observations and
// evaluations take the tracker's mutex; in deterministic simulations all
// calls must additionally happen in a deterministic order (e.g. from
// shard-0 handlers), same as the tracer.
type SLOTracker struct {
	Spec  SLOSpec
	mu    sync.Mutex
	width time.Duration
	ring  []sloBucket

	breached    bool
	breaches    int
	evals       int
	last        SLOStatus
	worstMargin float64
	maxBurn     float64
}

func newSLOTracker(spec SLOSpec) *SLOTracker {
	if spec.Buckets <= 0 {
		spec.Buckets = 12
	}
	if spec.Window <= 0 {
		spec.Window = time.Minute
	}
	t := &SLOTracker{Spec: spec, width: spec.Window / time.Duration(spec.Buckets)}
	if t.width <= 0 {
		t.width = 1
	}
	t.ring = make([]sloBucket, spec.Buckets)
	for i := range t.ring {
		t.ring[i].start = -1
		if spec.Kind == SLOLatencyP99 {
			t.ring[i].lat = make([]uint32, len(DefaultLatencyBuckets)+1)
		}
	}
	t.worstMargin = math.Inf(1)
	return t
}

// bucketFor returns the ring bucket covering at, resetting it if it still
// holds a stale epoch.
func (t *SLOTracker) bucketFor(at time.Duration) *sloBucket {
	start := at - at%t.width
	bk := &t.ring[int(start/t.width)%len(t.ring)]
	if bk.start != start {
		bk.start = start
		bk.a, bk.b = 0, 0
		for i := range bk.lat {
			bk.lat[i] = 0
		}
	}
	return bk
}

// ObserveRatio adds num/den to the ratio aggregate at time at (e.g.
// num=1,den=1 for one available sample; num=claimed,den=allowed for a
// billing cycle).
func (t *SLOTracker) ObserveRatio(at time.Duration, num, den float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	bk := t.bucketFor(at)
	bk.a += num
	bk.b += den
	t.mu.Unlock()
}

// ObserveDuration adds one latency sample at time at.
func (t *SLOTracker) ObserveDuration(at time.Duration, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	bk := t.bucketFor(at)
	i := 0
	for i < len(DefaultLatencyBuckets) && d > DefaultLatencyBuckets[i] {
		i++
	}
	bk.lat[i]++
	t.mu.Unlock()
}

// evalLocked aggregates the live window at now and scores it.
func (t *SLOTracker) evalLocked(now time.Duration) SLOStatus {
	var a, b float64
	var lat [32]uint64 // scratch; len(DefaultLatencyBuckets)+1 <= 32
	var total uint64
	// Live epochs are bucket starts in (now-Window, now]: exactly the ring's
	// capacity. Anything older is a stale epoch not yet overwritten.
	lo := now - t.Spec.Window
	for i := range t.ring {
		bk := &t.ring[i]
		if bk.start < 0 || bk.start <= lo || bk.start > now {
			continue
		}
		a += bk.a
		b += bk.b
		for j, c := range bk.lat {
			lat[j] += uint64(c)
			total += uint64(c)
		}
	}
	var st SLOStatus
	switch t.Spec.Kind {
	case SLORatioMin:
		st.Value = 1
		if b > 0 {
			st.Value = a / b
		}
		st.Margin = st.Value - t.Spec.Objective
		if budget := 1 - t.Spec.Objective; budget > 0 {
			st.Burn = (1 - st.Value) / budget
		} else if st.Value < 1 {
			st.Burn = math.Inf(1)
		}
	case SLORatioMax:
		if b > 0 {
			st.Value = a / b
		}
		st.Margin = t.Spec.Objective - st.Value
		if t.Spec.Objective > 0 {
			st.Burn = st.Value / t.Spec.Objective
		}
	case SLOLatencyP99:
		p99 := sloP99(lat[:len(DefaultLatencyBuckets)+1], total)
		st.Value = p99.Seconds()
		target := t.Spec.Target
		if target <= 0 {
			target = time.Second
		}
		st.Margin = float64(target-p99) / float64(target)
		st.Burn = float64(p99) / float64(target)
	}
	st.Breached = st.Margin < 0
	return st
}

// sloP99 is the upper-bound p99 estimate over merged window counts: the
// bound of the bucket containing the 99th-percentile sample. Samples in
// the +Inf bucket report twice the largest finite bound — an explicit
// "worse than the histogram can resolve" sentinel.
func sloP99(lat []uint64, total uint64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(0.99 * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range lat {
		cum += c
		if cum >= rank {
			if i < len(DefaultLatencyBuckets) {
				return DefaultLatencyBuckets[i]
			}
			return 2 * DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1]
		}
	}
	return 2 * DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1]
}

// Eval scores the tracker's window at now without recording statistics.
func (t *SLOTracker) Eval(now time.Duration) SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evalLocked(now)
}

// tick evaluates, accumulates run statistics, and reports a threshold
// crossing (entered=true on healthy→breach, entered=false on recovery).
func (t *SLOTracker) tick(now time.Duration) (st SLOStatus, crossed, entered bool) {
	t.mu.Lock()
	st = t.evalLocked(now)
	t.evals++
	t.last = st
	if st.Margin < t.worstMargin {
		t.worstMargin = st.Margin
	}
	if st.Burn > t.maxBurn {
		t.maxBurn = st.Burn
	}
	if st.Breached != t.breached {
		crossed = true
		entered = st.Breached
		t.breached = st.Breached
		if entered {
			t.breaches++
		}
	}
	t.mu.Unlock()
	return st, crossed, entered
}

// SLOReport is a tracker's lifetime summary, suitable for deterministic
// rendering.
type SLOReport struct {
	Name        string        `json:"name"`
	Kind        string        `json:"kind"`
	Objective   float64       `json:"objective"`
	Target      time.Duration `json:"target_ns,omitempty"`
	Window      time.Duration `json:"window_ns"`
	LastValue   float64       `json:"last_value"`
	LastMargin  float64       `json:"last_margin"`
	WorstMargin float64       `json:"worst_margin"`
	MaxBurn     float64       `json:"max_burn"`
	Breaches    int           `json:"breaches"`
	Evals       int           `json:"evals"`
}

// Report summarizes the tracker's run so far.
func (t *SLOTracker) Report() SLOReport {
	if t == nil {
		return SLOReport{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	worst := t.worstMargin
	if t.evals == 0 {
		worst = 0
	}
	return SLOReport{
		Name:        t.Spec.Name,
		Kind:        t.Spec.Kind.String(),
		Objective:   t.Spec.Objective,
		Target:      t.Spec.Target,
		Window:      t.Spec.Window,
		LastValue:   t.last.Value,
		LastMargin:  t.last.Margin,
		WorstMargin: worst,
		MaxBurn:     t.maxBurn,
		Breaches:    t.breaches,
		Evals:       t.evals,
	}
}

// SLOEngine owns a set of trackers and drives their periodic evaluation.
// Crossings fire the OnCross callback (synchronously, in declaration
// order), which is where callers emit trace instants, bump counters, or
// feed detection signals.
type SLOEngine struct {
	mu       sync.Mutex
	trackers []*SLOTracker
	onCross  func(t *SLOTracker, st SLOStatus, entered bool)
}

// NewSLOEngine builds an empty engine.
func NewSLOEngine() *SLOEngine { return &SLOEngine{} }

// Declare registers an SLO and returns its tracker for observations.
func (e *SLOEngine) Declare(spec SLOSpec) *SLOTracker {
	t := newSLOTracker(spec)
	if e == nil {
		return t
	}
	e.mu.Lock()
	e.trackers = append(e.trackers, t)
	e.mu.Unlock()
	return t
}

// OnCross installs the threshold-crossing callback.
func (e *SLOEngine) OnCross(fn func(t *SLOTracker, st SLOStatus, entered bool)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.onCross = fn
	e.mu.Unlock()
}

// Tick evaluates every tracker at now, firing OnCross for each threshold
// crossing in declaration order.
func (e *SLOEngine) Tick(now time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	trackers := e.trackers
	fn := e.onCross
	e.mu.Unlock()
	for _, t := range trackers {
		st, crossed, entered := t.tick(now)
		if crossed && fn != nil {
			fn(t, st, entered)
		}
	}
}

// Report summarizes every tracker in declaration order.
func (e *SLOEngine) Report() []SLOReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	trackers := e.trackers
	e.mu.Unlock()
	out := make([]SLOReport, 0, len(trackers))
	for _, t := range trackers {
		out = append(out, t.Report())
	}
	return out
}

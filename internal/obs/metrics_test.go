package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "frames")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("frames_total", "other help"); again != c {
		t.Fatalf("re-registering returned a different handle")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles must read zero")
	}
	var tr *Tracer
	tr.Event("cat", "name", nil)
	tr.Span("cat", "name", 0, time.Second, nil)
	tr.Begin("cat", "name", nil)()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer must record nothing")
	}
}

// TestHistogramBucketEdges pins the boundary rule: an observation equal to
// a bucket's upper bound lands in that bucket (le = "less than or equal"),
// one just above it lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := r.Histogram("lat", "latency", bounds)

	h.Observe(0)                          // well under the first bound
	h.Observe(time.Millisecond)           // exactly on the first bound -> bucket 0
	h.Observe(time.Millisecond + 1)       // just over -> bucket 1
	h.Observe(10 * time.Millisecond)      // exactly on the second bound -> bucket 1
	h.Observe(100 * time.Millisecond)     // exactly on the last bound -> bucket 2
	h.Observe(100*time.Millisecond + 1)   // just over the last bound -> +Inf
	h.Observe(time.Hour)                  // far overflow -> +Inf

	cum := h.BucketCounts()
	want := []uint64{2, 4, 5, 7}
	if len(cum) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative bucket[%d] = %d, want %d (%v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	wantSum := time.Millisecond + (time.Millisecond + 1) + 10*time.Millisecond +
		100*time.Millisecond + (100*time.Millisecond + 1) + time.Hour
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramZeroAndNegativeDurations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []time.Duration{time.Millisecond})
	h.Observe(0)
	h.Observe(-time.Second) // clock skew on a wall-clock sample: first bucket, not a panic
	if cum := h.BucketCounts(); cum[0] != 2 {
		t.Fatalf("zero/negative observations should land in the first bucket, got %v", cum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire_frames_total", "frames exchanged").Add(3)
	r.Gauge("sessions_active", "").Set(2)
	h := r.Histogram("attach_seconds", "attach latency", []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE wire_frames_total counter",
		"wire_frames_total 3",
		"# TYPE sessions_active gauge",
		"sessions_active 2",
		"# TYPE attach_seconds histogram",
		`attach_seconds_bucket{le="0.001"} 1`,
		`attach_seconds_bucket{le="1"} 1`,
		`attach_seconds_bucket{le="+Inf"} 2`,
		"attach_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	c.Add(5)
	prev := r.Snapshot()
	c.Add(7)
	r.Gauge("g", "").Set(-3)
	d := Delta(prev, r.Snapshot())
	if d["a_total"] != 7 {
		t.Fatalf("delta a_total = %v, want 7", d["a_total"])
	}
	if d["g"] != -3 {
		t.Fatalf("delta g = %v, want -3", d["g"])
	}
	if _, ok := d["a_totalother"]; ok {
		t.Fatalf("unexpected key in delta")
	}
}

func TestSumSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("pkts_total", "").Add(10)
	a.Gauge("depth", "").Set(3)
	b := NewRegistry()
	b.Counter("pkts_total", "").Add(4)
	b.Gauge("depth", "").Set(2)
	b.Counter("only_b_total", "").Add(1)

	sum := SumSnapshots(a.Snapshot(), b.Snapshot())
	if sum["pkts_total"] != 14 {
		t.Fatalf("pkts_total = %v, want 14", sum["pkts_total"])
	}
	if sum["depth"] != 5 {
		t.Fatalf("depth = %v, want 5", sum["depth"])
	}
	if sum["only_b_total"] != 1 {
		t.Fatalf("only_b_total = %v, want 1", sum["only_b_total"])
	}
	if len(SumSnapshots()) != 0 {
		t.Fatalf("empty sum not empty")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", []time.Duration{time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

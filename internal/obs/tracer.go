package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one recorded trace record: an instant event (Dur == 0 and
// Instant == true) or a complete span. Timestamps are durations on the
// tracer's clock — virtual time when the clock is a simulator's, wall time
// since tracer start otherwise — so a trace from a deterministic run is
// itself deterministic. Trace/Span/Parent carry the causal identity when
// the record was made with a SpanContext; they are zero (and omitted from
// JSON) for plain uncorrelated records, which keeps pre-existing trace
// serializations byte-identical.
type TraceEvent struct {
	Cat     string            `json:"cat"`
	Name    string            `json:"name"`
	Start   time.Duration     `json:"ts_ns"`
	Dur     time.Duration     `json:"dur_ns,omitempty"`
	Instant bool              `json:"instant,omitempty"`
	Trace   uint64            `json:"trace_id,omitempty"`
	Span    uint64            `json:"span_id,omitempty"`
	Parent  uint64            `json:"parent_id,omitempty"`
	Args    map[string]string `json:"args,omitempty"`

	// seq is the tracer-global record order, used to restore a canonical
	// ordering across buffer stripes. Not serialized.
	seq uint64
}

// tracerStripes shards the event buffer so concurrent recorders contend on
// a 1/16th-width mutex instead of one global lock. A power of two so the
// stripe index is a mask of the global sequence counter.
const tracerStripes = 16

type tracerStripe struct {
	mu     sync.Mutex
	events []TraceEvent
	_      [24]byte // keep stripes off each other's cache lines
}

type clockFunc func() time.Duration

// Tracer records structured spans and events against an injected clock.
// All methods are nil-safe no-ops, so call sites pass a tracer through
// unconditionally and pay one branch when tracing is off. Recording takes
// a striped mutex (one of 16, picked round-robin by an atomic counter) —
// concurrent recorders from different goroutines rarely collide, and
// Events() restores the canonical global order by sequence number.
type Tracer struct {
	clock   atomic.Pointer[clockFunc]
	seq     atomic.Uint64
	retain  atomic.Bool
	flight  atomic.Pointer[FlightRecorder]
	stripes [tracerStripes]tracerStripe
}

// NewTracer builds a tracer on the given clock — a simulator's Now for
// deterministic virtual-time traces, or nil for wall time measured from
// tracer creation.
func NewTracer(clock func() time.Duration) *Tracer {
	if clock == nil {
		t0 := time.Now()
		clock = func() time.Duration { return time.Since(t0) }
	}
	t := &Tracer{}
	cf := clockFunc(clock)
	t.clock.Store(&cf)
	t.retain.Store(true)
	return t
}

// SetClock rebinds the tracer to a new clock — used when the component
// that owns the clock (e.g. a simulator) is constructed after the tracer.
// A nil clock is ignored.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil || clock == nil {
		return
	}
	cf := clockFunc(clock)
	t.clock.Store(&cf)
}

// SetRetain controls whether records are kept in the tracer's buffer.
// With retain off the tracer still feeds its flight recorder (and still
// reads its clock), so a long soak can run with a bounded memory footprint
// while keeping a crash dump available. Defaults to on.
func (t *Tracer) SetRetain(on bool) {
	if t == nil {
		return
	}
	t.retain.Store(on)
}

// SetFlight attaches a flight recorder that mirrors every record into
// bounded per-category rings (see FlightRecorder). Pass nil to detach.
func (t *Tracer) SetFlight(fr *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight.Store(fr)
}

// Flight returns the attached flight recorder, if any.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight.Load()
}

// Now returns the tracer's current clock reading (0 for nil).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return (*t.clock.Load())()
}

func (t *Tracer) record(e TraceEvent) {
	e.seq = t.seq.Add(1)
	if fr := t.flight.Load(); fr != nil {
		fr.Record(e)
	}
	if !t.retain.Load() {
		return
	}
	s := &t.stripes[e.seq&(tracerStripes-1)]
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Event records an instant event at the current clock reading.
func (t *Tracer) Event(cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.EventAt(t.Now(), cat, name, args)
}

// EventAt records an instant event at an explicit timestamp (used when the
// caller knows the event's virtual time more precisely than "now").
func (t *Tracer) EventAt(at time.Duration, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{Cat: cat, Name: name, Start: at, Instant: true, Args: args})
}

// EventCtx records an instant event carrying a span context at the current
// clock reading.
func (t *Tracer) EventCtx(sc SpanContext, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.EventCtxAt(sc, t.Now(), cat, name, args)
}

// EventCtxAt records an instant event carrying a span context at an
// explicit timestamp.
func (t *Tracer) EventCtxAt(sc SpanContext, at time.Duration, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{
		Cat: cat, Name: name, Start: at, Instant: true,
		Trace: sc.Trace, Span: sc.Span, Parent: sc.Parent, Args: args,
	})
}

// Span records a complete span [start, start+dur).
func (t *Tracer) Span(cat, name string, start, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{Cat: cat, Name: name, Start: start, Dur: dur, Args: args})
}

// SpanCtx records a complete span carrying a span context: sc.Span is this
// span's identity, sc.Parent the caller that caused it.
func (t *Tracer) SpanCtx(sc SpanContext, cat, name string, start, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{
		Cat: cat, Name: name, Start: start, Dur: dur,
		Trace: sc.Trace, Span: sc.Span, Parent: sc.Parent, Args: args,
	})
}

// Begin opens a span at the current clock reading and returns a closure
// that records it on completion.
func (t *Tracer) Begin(cat, name string, args map[string]string) func() {
	if t == nil {
		return func() {}
	}
	start := t.Now()
	return func() { t.Span(cat, name, start, t.Now()-start, args) }
}

// Events returns a copy of everything recorded so far, in recording order
// (the tracer-global sequence, merged across buffer stripes).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	var out []TraceEvent
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Len reports how many records the tracer holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// chromeEvent is the Chrome trace-event (about://tracing, Perfetto) JSON
// shape. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON array
// format, loadable in Perfetto or chrome://tracing. Categories map to
// thread IDs so each subsystem gets its own row.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteChromeTraceEvents(w, t.Events())
}

// WriteChromeTraceEvents renders an event slice (e.g. a filtered trace or a
// flight-recorder dump) in Chrome trace-event JSON array format. Events
// that carry a span context surface it as hex args so the viewer shows the
// causal identity; id-less events serialize exactly as before contexts
// existed.
func WriteChromeTraceEvents(w io.Writer, events []TraceEvent) error {
	tids := make(map[string]int)
	tidOf := func(cat string) int {
		if id, ok := tids[cat]; ok {
			return id
		}
		id := len(tids) + 1
		tids[cat] = id
		return id
	}
	out := make([]chromeEvent, 0, len(events)+len(tids))
	for _, e := range events {
		args := e.Args
		if e.Trace != 0 {
			args = make(map[string]string, len(e.Args)+3)
			for k, v := range e.Args {
				args[k] = v
			}
			args["trace_id"] = TraceIDString(e.Trace)
			args["span_id"] = TraceIDString(e.Span)
			if e.Parent != 0 {
				args["parent_id"] = TraceIDString(e.Parent)
			}
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.Start) / float64(time.Microsecond),
			PID:  1,
			TID:  tidOf(e.Cat),
			Args: args,
		}
		if e.Instant {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		}
		out = append(out, ce)
	}
	// Name the per-category rows so the viewer labels them. TIDs are
	// assigned in first-appearance order, so emitting by ascending TID
	// keeps the serialization deterministic (map iteration is not).
	cats := make([]string, len(tids))
	for cat, tid := range tids {
		cats[tid-1] = cat
	}
	for i, cat := range cats {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]string{"name": cat},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteJSONL renders the trace one TraceEvent JSON object per line — the
// grep/jq-friendly form, and the one the trace-derivation tests consume.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteJSONLEvents(w, t.Events())
}

// WriteJSONLEvents renders an event slice one JSON object per line.
func WriteJSONLEvents(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	dec := json.NewDecoder(r)
	for {
		var e TraceEvent
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("obs: bad trace line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one recorded trace record: an instant event (Dur == 0 and
// Instant == true) or a complete span. Timestamps are durations on the
// tracer's clock — virtual time when the clock is a simulator's, wall time
// since tracer start otherwise — so a trace from a deterministic run is
// itself deterministic.
type TraceEvent struct {
	Cat     string            `json:"cat"`
	Name    string            `json:"name"`
	Start   time.Duration     `json:"ts_ns"`
	Dur     time.Duration     `json:"dur_ns,omitempty"`
	Instant bool              `json:"instant,omitempty"`
	Args    map[string]string `json:"args,omitempty"`
}

// Tracer records structured spans and events against an injected clock.
// All methods are nil-safe no-ops, so call sites pass a tracer through
// unconditionally and pay one branch when tracing is off. Recording takes
// a mutex — tracing is for protocol events (attaches, faults, retries),
// not per-packet hot paths.
type Tracer struct {
	mu     sync.Mutex
	clock  func() time.Duration
	events []TraceEvent
}

// NewTracer builds a tracer on the given clock — a simulator's Now for
// deterministic virtual-time traces, or nil for wall time measured from
// tracer creation.
func NewTracer(clock func() time.Duration) *Tracer {
	if clock == nil {
		t0 := time.Now()
		clock = func() time.Duration { return time.Since(t0) }
	}
	return &Tracer{clock: clock}
}

// SetClock rebinds the tracer to a new clock — used when the component
// that owns the clock (e.g. a simulator) is constructed after the tracer.
// A nil clock is ignored.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Now returns the tracer's current clock reading (0 for nil).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Event records an instant event at the current clock reading.
func (t *Tracer) Event(cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.EventAt(t.clock(), cat, name, args)
}

// EventAt records an instant event at an explicit timestamp (used when the
// caller knows the event's virtual time more precisely than "now").
func (t *Tracer) EventAt(at time.Duration, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{Cat: cat, Name: name, Start: at, Instant: true, Args: args})
	t.mu.Unlock()
}

// Span records a complete span [start, start+dur).
func (t *Tracer) Span(cat, name string, start, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{Cat: cat, Name: name, Start: start, Dur: dur, Args: args})
	t.mu.Unlock()
}

// Begin opens a span at the current clock reading and returns a closure
// that records it on completion.
func (t *Tracer) Begin(cat, name string, args map[string]string) func() {
	if t == nil {
		return func() {}
	}
	start := t.clock()
	return func() { t.Span(cat, name, start, t.clock()-start, args) }
}

// Events returns a copy of everything recorded so far, in recording order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len reports how many records the tracer holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the Chrome trace-event (about://tracing, Perfetto) JSON
// shape. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON array
// format, loadable in Perfetto or chrome://tracing. Categories map to
// thread IDs so each subsystem gets its own row.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	tids := make(map[string]int)
	tidOf := func(cat string) int {
		if id, ok := tids[cat]; ok {
			return id
		}
		id := len(tids) + 1
		tids[cat] = id
		return id
	}
	out := make([]chromeEvent, 0, len(events)+len(tids))
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.Start) / float64(time.Microsecond),
			PID:  1,
			TID:  tidOf(e.Cat),
			Args: e.Args,
		}
		if e.Instant {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		}
		out = append(out, ce)
	}
	// Name the per-category rows so the viewer labels them. TIDs are
	// assigned in first-appearance order, so emitting by ascending TID
	// keeps the serialization deterministic (map iteration is not).
	cats := make([]string, len(tids))
	for cat, tid := range tids {
		cats[tid-1] = cat
	}
	for i, cat := range cats {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]string{"name": cat},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteJSONL renders the trace one TraceEvent JSON object per line — the
// grep/jq-friendly form, and the one the trace-derivation tests consume.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	dec := json.NewDecoder(r)
	for {
		var e TraceEvent
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("obs: bad trace line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

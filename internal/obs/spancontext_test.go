package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanContextCodecRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeefcafef00d, Span: 42, Parent: 7}
	b := AppendSpanContext(nil, sc)
	if len(b) != SpanContextLen {
		t.Fatalf("encoded length = %d, want %d", len(b), SpanContextLen)
	}
	got, err := DecodeSpanContext(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip %+v != %+v", got, sc)
	}
	if _, err := DecodeSpanContext(b[:SpanContextLen-1]); err == nil {
		t.Fatalf("truncated context must not decode")
	}
}

func TestSpanContextValidAndChild(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Fatalf("zero context must be invalid")
	}
	root := SpanContext{Trace: 9, Span: 9}
	if !root.Valid() {
		t.Fatalf("root context must be valid")
	}
	child := root.Child(33)
	if child.Trace != 9 || child.Span != 33 || child.Parent != 9 {
		t.Fatalf("bad child: %+v", child)
	}
	grand := child.Child(44)
	if grand.Trace != 9 || grand.Parent != 33 {
		t.Fatalf("bad grandchild: %+v", grand)
	}
}

// TestSpanIDSourceDeterminism pins the ID scheme: same seed, same sequence
// of calls, same IDs — and distinct seeds diverge.
func TestSpanIDSourceDeterminism(t *testing.T) {
	a, b := NewSpanIDSource(7), NewSpanIDSource(7)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("call %d: same seed diverged: %x vs %x", i, ia, ib)
		}
		if ia == 0 {
			t.Fatalf("call %d: zero span ID", i)
		}
		if seen[ia] {
			t.Fatalf("call %d: duplicate span ID %x", i, ia)
		}
		seen[ia] = true
	}
	if NewSpanIDSource(8).Next() == NewSpanIDSource(7).Next() {
		t.Fatalf("different seeds produced the same first ID")
	}
	root := NewSpanIDSource(7).NewTrace()
	if !root.Valid() || root.Trace != root.Span || root.Parent != 0 {
		t.Fatalf("bad root context: %+v", root)
	}
	var nilSrc *SpanIDSource
	if nilSrc.Next() != 0 {
		t.Fatalf("nil source must mint 0")
	}
}

func TestParseTraceID(t *testing.T) {
	id := uint64(0x00ab12cd34ef5678)
	for _, s := range []string{TraceIDString(id), "0xab12cd34ef5678", "ab12cd34ef5678", " 00ab12cd34ef5678 "} {
		got, err := ParseTraceID(s)
		if err != nil {
			t.Fatalf("ParseTraceID(%q): %v", s, err)
		}
		if got != id {
			t.Fatalf("ParseTraceID(%q) = %x, want %x", s, got, id)
		}
	}
	// Pure-decimal strings parse as decimal.
	if got, err := ParseTraceID("12345"); err != nil || got != 12345 {
		t.Fatalf("decimal parse = %d, %v", got, err)
	}
	if _, err := ParseTraceID("not-an-id"); err == nil {
		t.Fatalf("junk must not parse")
	}
}

func TestFilterTrace(t *testing.T) {
	events := []TraceEvent{
		{Cat: "a", Name: "x", Trace: 1, Span: 1},
		{Cat: "b", Name: "y"},
		{Cat: "c", Name: "z", Trace: 2, Span: 2},
		{Cat: "d", Name: "w", Trace: 1, Span: 3, Parent: 1},
	}
	got := FilterTrace(events, 1)
	if len(got) != 2 || got[0].Name != "x" || got[1].Name != "w" {
		t.Fatalf("bad filter result: %+v", got)
	}
	if FilterTrace(events, 99) != nil {
		t.Fatalf("missing trace should filter to nil")
	}
}

// TestTracerSpanContextRecords checks ctx-carrying records land with their
// IDs and serialize with the trace_id/span_id/parent_id keys, while id-less
// records keep the pre-context serialization (no id keys at all).
func TestTracerSpanContextRecords(t *testing.T) {
	var now time.Duration
	tr := NewTracer(func() time.Duration { return now })
	ids := NewSpanIDSource(3)
	root := ids.NewTrace()
	child := root.Child(ids.Next())

	tr.SpanCtx(root, "ue", "attach", 0, 10, map[string]string{"session": "s1"})
	tr.EventCtx(child, "sap", "auth", nil)
	tr.Event("chaos", "fault", nil)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d, want 3", len(ev))
	}
	if ev[0].Trace != root.Trace || ev[0].Span != root.Span || ev[0].Parent != 0 {
		t.Fatalf("root ids wrong: %+v", ev[0])
	}
	if ev[1].Trace != root.Trace || ev[1].Parent != root.Span {
		t.Fatalf("child ids wrong: %+v", ev[1])
	}
	if ev[2].Trace != 0 || ev[2].Span != 0 {
		t.Fatalf("plain event must carry no ids: %+v", ev[2])
	}
	withIDs, _ := json.Marshal(ev[0])
	if !strings.Contains(string(withIDs), `"trace_id"`) || !strings.Contains(string(withIDs), `"span_id"`) {
		t.Fatalf("ctx record missing id keys: %s", withIDs)
	}
	plain, _ := json.Marshal(ev[2])
	if strings.Contains(string(plain), "trace_id") {
		t.Fatalf("plain record must omit id keys: %s", plain)
	}
}

package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Levels, in increasing verbosity. The default level is LevelInfo:
// operational messages print, per-retry noise (LevelDebug) does not —
// bench output stays clean unless -v is given.
const (
	LevelError Level = iota
	LevelInfo
	LevelDebug
)

func (l Level) String() string {
	switch l {
	case LevelError:
		return "ERROR"
	case LevelInfo:
		return "INFO"
	case LevelDebug:
		return "DEBUG"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

var (
	logLevel atomic.Int32 // holds a Level; default LevelInfo

	logMu  sync.Mutex
	logOut io.Writer = os.Stderr
)

func init() { logLevel.Store(int32(LevelInfo)) }

// SetLogLevel sets the global log threshold; messages above it are
// dropped before formatting.
func SetLogLevel(l Level) { logLevel.Store(int32(l)) }

// LogLevel returns the current threshold.
func LogLevel() Level { return Level(logLevel.Load()) }

// Verbose is the conventional -v mapping: true selects LevelDebug,
// false the quiet LevelInfo default.
func Verbose(v bool) {
	if v {
		SetLogLevel(LevelDebug)
	} else {
		SetLogLevel(LevelInfo)
	}
}

// SetLogOutput redirects log output (tests, or a daemon's log file).
// Passing nil restores stderr.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	logOut = w
}

// logf is the single formatting path: timestamp, level, subsystem tag.
func logf(l Level, sub, format string, args ...any) {
	if l > LogLevel() {
		return
	}
	msg := fmt.Sprintf(format, args...)
	line := fmt.Sprintf("%s %-5s [%s] %s\n",
		time.Now().Format("15:04:05.000"), l, sub, msg)
	logMu.Lock()
	io.WriteString(logOut, line)
	logMu.Unlock()
}

// Errorf logs at LevelError under a subsystem tag ("wire", "brokerd", ...).
func Errorf(sub, format string, args ...any) { logf(LevelError, sub, format, args...) }

// Infof logs at LevelInfo.
func Infof(sub, format string, args ...any) { logf(LevelInfo, sub, format, args...) }

// Debugf logs at LevelDebug — the level retry/redial noise belongs at.
func Debugf(sub, format string, args ...any) { logf(LevelDebug, sub, format, args...) }

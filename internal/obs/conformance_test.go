package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusHistogramConformance pins the exposition-format contract
// for histograms: bucket series are cumulative and monotonically
// non-decreasing, the +Inf bucket equals _count, and _sum matches the
// observed total.
func TestPrometheusHistogramConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rpc_seconds", "rpc latency", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	samples := []time.Duration{
		500 * time.Microsecond, 500 * time.Microsecond, // le=0.001
		5 * time.Millisecond,   // le=0.01
		50 * time.Millisecond,  // le=0.1
		500 * time.Millisecond, // +Inf
	}
	var sum time.Duration
	for _, s := range samples {
		h.Observe(s)
		sum += s
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var bucketVals []uint64
	var infVal, countVal uint64
	var sumVal float64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, `rpc_seconds_bucket{le="+Inf"}`):
			fmt.Sscanf(line, `rpc_seconds_bucket{le="+Inf"} %d`, &infVal)
			bucketVals = append(bucketVals, infVal)
		case strings.HasPrefix(line, "rpc_seconds_bucket{"):
			var v uint64
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			bucketVals = append(bucketVals, v)
		case strings.HasPrefix(line, "rpc_seconds_sum "):
			fmt.Sscanf(line, "rpc_seconds_sum %g", &sumVal)
		case strings.HasPrefix(line, "rpc_seconds_count "):
			fmt.Sscanf(line, "rpc_seconds_count %d", &countVal)
		}
	}
	if want := []uint64{2, 3, 4, 5}; len(bucketVals) != len(want) {
		t.Fatalf("bucket lines = %v, want %v", bucketVals, want)
	} else {
		for i := range want {
			if bucketVals[i] != want[i] {
				t.Fatalf("bucket[%d] = %d, want %d (cumulative)", i, bucketVals[i], want[i])
			}
		}
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("buckets not monotonically non-decreasing: %v", bucketVals)
		}
	}
	if infVal != countVal {
		t.Fatalf(`le="+Inf" bucket (%d) != count (%d)`, infVal, countVal)
	}
	if countVal != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", countVal, len(samples))
	}
	if sumVal != sum.Seconds() {
		t.Fatalf("sum = %g, want %g", sumVal, sum.Seconds())
	}
}

// TestSumSnapshotsMergesHistograms: per-shard registry snapshots must merge
// histogram series (count, sum, per-bucket counts) additively — the gap
// this PR closes; previously only _count/_sum were exported.
func TestSumSnapshotsMergesHistograms(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, time.Second}
	shard0 := NewRegistry()
	shard1 := NewRegistry()
	h0 := shard0.Histogram("attach_seconds", "", bounds)
	h1 := shard1.Histogram("attach_seconds", "", bounds)

	h0.Observe(500 * time.Microsecond) // bucket le=0.001
	h0.Observe(2 * time.Second)        // +Inf
	h1.Observe(500 * time.Microsecond) // bucket le=0.001
	h1.Observe(100 * time.Millisecond) // bucket le=1

	sum := SumSnapshots(shard0.Snapshot(), shard1.Snapshot())
	if got := sum["attach_seconds_count"]; got != 4 {
		t.Fatalf("merged count = %v, want 4", got)
	}
	wantSum := (500*time.Microsecond + 2*time.Second + 500*time.Microsecond + 100*time.Millisecond).Seconds()
	if got := sum["attach_seconds_sum_seconds"]; got != wantSum {
		t.Fatalf("merged sum = %v, want %v", got, wantSum)
	}
	if got := sum["attach_seconds_bucket_le_0.001"]; got != 2 {
		t.Fatalf("merged le=0.001 bucket = %v, want 2", got)
	}
	if got := sum["attach_seconds_bucket_le_1"]; got != 1 {
		t.Fatalf("merged le=1 bucket = %v, want 1", got)
	}
	if got := sum["attach_seconds_bucket_le_+Inf"]; got != 1 {
		t.Fatalf("merged +Inf bucket = %v, want 1", got)
	}
	// The merged buckets must re-add to the merged count.
	total := sum["attach_seconds_bucket_le_0.001"] +
		sum["attach_seconds_bucket_le_1"] +
		sum["attach_seconds_bucket_le_+Inf"]
	if total != sum["attach_seconds_count"] {
		t.Fatalf("bucket total %v != count %v", total, sum["attach_seconds_count"])
	}
}

// TestDebugServerConcurrentScrape hammers /metrics and the pprof index
// from multiple goroutines while the metrics are being updated — run under
// -race in CI (the obs package is part of the race matrix).
func TestDebugServerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("scrape_smoke_total", "")
	h := reg.Histogram("scrape_lat_seconds", "", nil)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(time.Millisecond)
			}
		}
	}()

	var scrapers sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 8; i++ {
				for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/vars"} {
					resp, err := http.Get("http://" + s.Addr() + path)
					if err != nil {
						errs <- fmt.Errorf("GET %s: %w", path, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("read %s: %w", path, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
					if path == "/metrics" && !strings.Contains(string(body), "scrape_smoke_total") {
						errs <- fmt.Errorf("scrape missing counter:\n%.200s", body)
						return
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLoggerConcurrentWriters: interleaved Infof/Debugf/Errorf from many
// goroutines must produce whole lines (the logger holds its mutex across
// the write) — run under -race.
func TestLoggerConcurrentWriters(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	SetLogOutput(safe)
	defer SetLogOutput(nil)
	SetLogLevel(LevelDebug)
	defer SetLogLevel(LevelInfo)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				Infof("test", "writer %d line %d", g, i)
				Debugf("test", "debug %d line %d", g, i)
				Errorf("test", "error %d line %d", g, i)
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	out := sb.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8*50*3 {
		t.Fatalf("lines = %d, want %d", len(lines), 8*50*3)
	}
	for _, line := range lines {
		if !strings.Contains(line, "[test]") {
			t.Fatalf("torn or malformed log line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TimelinePhase is one named phase of a session timeline: every span with
// that name in the session's trace, folded into a first-start + total
// duration + count.
type TimelinePhase struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"`
	Start time.Duration `json:"ts_ns"`
	Dur   time.Duration `json:"dur_ns"`
	Count int           `json:"count"`
}

// Timeline is one session's span tree folded into named phase durations:
// "where did this attach's 780 ms go?". Built from a trace by
// BuildTimelines; rendering is deterministic.
type Timeline struct {
	Trace   uint64          `json:"trace_id"`
	Session string          `json:"session"`
	Name    string          `json:"name"`
	Outcome string          `json:"outcome,omitempty"`
	Start   time.Duration   `json:"ts_ns"`
	Dur     time.Duration   `json:"dur_ns"`
	Spans   int             `json:"spans"`
	Phases  []TimelinePhase `json:"phases"`
}

// BuildTimelines folds a trace into per-session timelines. A session is a
// trace ID that has a root span (a non-instant event with Parent == 0);
// its phases are the trace's child spans folded by name in first-appearance
// order. The session label comes from the root's "session" arg when
// present, else the hex trace ID; the outcome from the root's "outcome"
// arg. Timelines come back in root-record order, so a deterministic trace
// yields deterministic timelines.
func BuildTimelines(events []TraceEvent) []Timeline {
	type build struct {
		tl     *Timeline
		phases map[string]int
	}
	byTrace := make(map[uint64]*build)
	var order []uint64
	for _, e := range events {
		if e.Trace == 0 || e.Instant || e.Parent != 0 {
			continue
		}
		if byTrace[e.Trace] != nil {
			continue // first root wins
		}
		tl := &Timeline{
			Trace:   e.Trace,
			Session: e.Args["session"],
			Name:    e.Name,
			Outcome: e.Args["outcome"],
			Start:   e.Start,
			Dur:     e.Dur,
			Spans:   1,
		}
		if tl.Session == "" {
			tl.Session = TraceIDString(e.Trace)
		}
		byTrace[e.Trace] = &build{tl: tl, phases: make(map[string]int)}
		order = append(order, e.Trace)
	}
	for _, e := range events {
		if e.Trace == 0 || e.Instant || e.Parent == 0 {
			continue
		}
		b := byTrace[e.Trace]
		if b == nil {
			continue
		}
		b.tl.Spans++
		if i, ok := b.phases[e.Name]; ok {
			b.tl.Phases[i].Dur += e.Dur
			b.tl.Phases[i].Count++
			continue
		}
		b.phases[e.Name] = len(b.tl.Phases)
		b.tl.Phases = append(b.tl.Phases, TimelinePhase{
			Name: e.Name, Cat: e.Cat, Start: e.Start, Dur: e.Dur, Count: 1,
		})
	}
	out := make([]Timeline, 0, len(order))
	for _, tr := range order {
		out = append(out, *byTrace[tr].tl)
	}
	return out
}

// RenderTimelines writes the deterministic text form: one header line per
// session plus one indented line per phase.
func RenderTimelines(w io.Writer, tls []Timeline) error {
	for _, tl := range tls {
		outcome := tl.Outcome
		if outcome == "" {
			outcome = "-"
		}
		if _, err := fmt.Fprintf(w, "session %-12s trace=%s %s t=%-12v total=%-12v outcome=%s spans=%d\n",
			tl.Session, TraceIDString(tl.Trace), tl.Name, tl.Start, tl.Dur, outcome, tl.Spans); err != nil {
			return err
		}
		for _, p := range tl.Phases {
			if _, err := fmt.Fprintf(w, "  %-16s %-8s t=%-12v dur=%-12v n=%d\n",
				p.Name, p.Cat, p.Start, p.Dur, p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTimelinesJSON writes the timelines as a JSON array.
func WriteTimelinesJSON(w io.Writer, tls []Timeline) error {
	if tls == nil {
		tls = []Timeline{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tls)
}

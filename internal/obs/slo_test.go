package obs

import (
	"math"
	"testing"
	"time"
)

func TestSLORatioMinAvailability(t *testing.T) {
	e := NewSLOEngine()
	tr := e.Declare(SLOSpec{
		Name: "availability", Kind: SLORatioMin, Objective: 0.9,
		Window: 10 * time.Second, Buckets: 10,
	})

	var crossings []bool
	e.OnCross(func(_ *SLOTracker, _ SLOStatus, entered bool) {
		crossings = append(crossings, entered)
	})

	// 10s of full availability: healthy, margin 0.1.
	for s := 1; s <= 10; s++ {
		tr.ObserveRatio(time.Duration(s)*time.Second, 1, 1)
		e.Tick(time.Duration(s) * time.Second)
	}
	st := tr.Eval(10 * time.Second)
	if st.Value != 1 || st.Breached || math.Abs(st.Margin-0.1) > 1e-9 {
		t.Fatalf("healthy status wrong: %+v", st)
	}
	if len(crossings) != 0 {
		t.Fatalf("no crossing expected while healthy, got %v", crossings)
	}

	// 5s of total outage: window value drops to 0.5 < 0.9 — breach enter.
	for s := 11; s <= 15; s++ {
		tr.ObserveRatio(time.Duration(s)*time.Second, 0, 1)
		e.Tick(time.Duration(s) * time.Second)
	}
	st = tr.Eval(15 * time.Second)
	if !st.Breached || st.Value != 0.5 {
		t.Fatalf("breach status wrong: %+v", st)
	}
	if st.Burn <= 1 {
		t.Fatalf("burn during breach must exceed 1, got %v", st.Burn)
	}
	if len(crossings) != 1 || !crossings[0] {
		t.Fatalf("want one breach-enter crossing, got %v", crossings)
	}

	// Recovery: healthy samples push the outage out of the window.
	for s := 16; s <= 25; s++ {
		tr.ObserveRatio(time.Duration(s)*time.Second, 1, 1)
		e.Tick(time.Duration(s) * time.Second)
	}
	if st = tr.Eval(25 * time.Second); st.Breached || st.Value != 1 {
		t.Fatalf("post-recovery status wrong: %+v", st)
	}
	if len(crossings) != 2 || crossings[1] {
		t.Fatalf("want breach-exit crossing, got %v", crossings)
	}

	rep := tr.Report()
	if rep.Breaches != 1 || rep.WorstMargin >= 0 || rep.MaxBurn <= 1 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Name != "availability" || rep.Kind != "ratio-min" {
		t.Fatalf("bad report identity: %+v", rep)
	}
}

func TestSLORatioMaxOverbilling(t *testing.T) {
	tr := newSLOTracker(SLOSpec{
		Name: "overbilling", Kind: SLORatioMax, Objective: 1.05,
		Window: time.Minute, Buckets: 6,
	})
	// Honest cycle: claimed == true bytes, ratio 1.0 <= 1.05.
	tr.ObserveRatio(time.Second, 1000, 1000)
	st := tr.Eval(time.Second)
	if st.Breached || math.Abs(st.Margin-0.05) > 1e-9 {
		t.Fatalf("honest status wrong: %+v", st)
	}
	// Overbilled cycle: 1500 claimed for 1000 true, window ratio 1.25.
	tr.ObserveRatio(2*time.Second, 1500, 1000)
	st = tr.Eval(2 * time.Second)
	if !st.Breached || math.Abs(st.Value-1.25) > 1e-9 {
		t.Fatalf("overbilled status wrong: %+v", st)
	}
	// Empty window (value 0) is healthy for a max-bound.
	if st = tr.Eval(10 * time.Minute); st.Breached || st.Value != 0 {
		t.Fatalf("empty-window status wrong: %+v", st)
	}
}

func TestSLOLatencyP99(t *testing.T) {
	tr := newSLOTracker(SLOSpec{
		Name: "attach-p99", Kind: SLOLatencyP99, Target: 50 * time.Millisecond,
		Window: 10 * time.Second, Buckets: 10,
	})
	// 99 fast samples, 1 slow: p99 lands in the slow sample's bucket.
	for i := 0; i < 99; i++ {
		tr.ObserveDuration(time.Second, 30*time.Millisecond)
	}
	st := tr.Eval(time.Second)
	if st.Breached {
		t.Fatalf("fast-only window must be healthy: %+v", st)
	}
	tr.ObserveDuration(time.Second, 90*time.Millisecond)
	st = tr.Eval(time.Second)
	// 100 samples: rank 99 is still a 30ms sample -> p99 = 50ms bucket bound
	// boundary... the 99th of 100 sorted samples is fast (30ms -> 50ms bound).
	if st.Value != (50 * time.Millisecond).Seconds() {
		t.Fatalf("p99 = %v, want 0.05", st.Value)
	}
	if st.Breached {
		t.Fatalf("p99 == target must not breach: %+v", st)
	}
	// Two more slow samples drag rank 99 into the 100ms bucket.
	tr.ObserveDuration(time.Second, 90*time.Millisecond)
	tr.ObserveDuration(time.Second, 90*time.Millisecond)
	st = tr.Eval(time.Second)
	if st.Value != (100*time.Millisecond).Seconds() || !st.Breached {
		t.Fatalf("slow p99 status wrong: %+v", st)
	}
	if st.Burn != 2 {
		t.Fatalf("burn = %v, want 2 (100ms / 50ms)", st.Burn)
	}
}

// TestSLOP99InfBucketSentinel pins the +Inf rule: samples beyond the largest
// finite bound report twice that bound.
func TestSLOP99InfBucketSentinel(t *testing.T) {
	tr := newSLOTracker(SLOSpec{Kind: SLOLatencyP99, Target: time.Second, Window: time.Minute})
	tr.ObserveDuration(time.Second, time.Hour)
	st := tr.Eval(time.Second)
	want := (2 * DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1]).Seconds()
	if st.Value != want {
		t.Fatalf("overflow p99 = %v, want %v", st.Value, want)
	}
}

// TestSLOWindowExpiry: a stale bucket exactly one window old must not leak
// into the evaluation, and old epochs are reset when their slot is reused.
func TestSLOWindowExpiry(t *testing.T) {
	tr := newSLOTracker(SLOSpec{
		Kind: SLORatioMin, Objective: 0.9, Window: 10 * time.Second, Buckets: 10,
	})
	tr.ObserveRatio(time.Second, 0, 1) // an outage sample
	if st := tr.Eval(time.Second); !st.Breached {
		t.Fatalf("fresh outage must breach: %+v", st)
	}
	// Exactly one window later the sample is out of scope (empty = healthy).
	if st := tr.Eval(11 * time.Second); st.Breached || st.Value != 1 {
		t.Fatalf("expired outage leaked into window: %+v", st)
	}
	// Writing into the same ring slot one full window later must reset it.
	tr.ObserveRatio(11*time.Second, 1, 1)
	if st := tr.Eval(11 * time.Second); st.Value != 1 {
		t.Fatalf("slot reuse kept stale counts: %+v", st)
	}
}

// TestSLOObserveSteadyStateAllocs: the observe path must not allocate once
// the tracker exists — it runs inside the simulator's hot loop.
func TestSLOObserveSteadyStateAllocs(t *testing.T) {
	ratio := newSLOTracker(SLOSpec{Kind: SLORatioMin, Objective: 0.9, Window: 10 * time.Second})
	lat := newSLOTracker(SLOSpec{Kind: SLOLatencyP99, Target: time.Second, Window: 10 * time.Second})
	var at time.Duration
	allocs := testing.AllocsPerRun(1000, func() {
		at += 10 * time.Millisecond
		ratio.ObserveRatio(at, 1, 1)
		lat.ObserveDuration(at, 5*time.Millisecond)
		ratio.Eval(at)
		lat.Eval(at)
	})
	if allocs != 0 {
		t.Fatalf("observe/eval allocates %v per run, want 0", allocs)
	}
}

func TestSLOEngineReportOrderAndNilSafety(t *testing.T) {
	e := NewSLOEngine()
	e.Declare(SLOSpec{Name: "b", Kind: SLORatioMin, Objective: 0.5, Window: time.Second})
	e.Declare(SLOSpec{Name: "a", Kind: SLORatioMax, Objective: 2, Window: time.Second})
	e.Tick(time.Second)
	rep := e.Report()
	if len(rep) != 2 || rep[0].Name != "b" || rep[1].Name != "a" {
		t.Fatalf("report must preserve declaration order: %+v", rep)
	}
	if rep[0].Evals != 1 || rep[0].WorstMargin != 0.5 {
		t.Fatalf("bad evals/worst margin: %+v", rep[0])
	}

	var nilE *SLOEngine
	nilE.Tick(0)
	nilE.OnCross(nil)
	if nilE.Report() != nil {
		t.Fatalf("nil engine must report nil")
	}
	var nilT *SLOTracker
	nilT.ObserveRatio(0, 1, 1)
	nilT.ObserveDuration(0, time.Second)
	if nilT.Eval(0) != (SLOStatus{}) || nilT.Report() != (SLOReport{}) {
		t.Fatalf("nil tracker must be a no-op")
	}
}

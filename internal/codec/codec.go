// Package codec provides the length-prefixed big-endian binary field codec
// shared by the SAP, billing, and wire-protocol message formats.
//
// The Writer appends fields; the Reader consumes them in the same order
// and accumulates the first error, so decoding code stays linear:
//
//	r := codec.NewReader(b)
//	v.Name = r.String()
//	v.Count = r.Uint32()
//	return r.Done()
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrShort is returned when input is exhausted mid-field.
var ErrShort = errors.New("codec: input too short")

// Writer accumulates encoded fields.
type Writer struct{ b []byte }

// NewWriter returns a Writer with optional capacity hint.
func NewWriter(sizeHint int) *Writer { return &Writer{b: make([]byte, 0, sizeHint)} }

// Bytes appends a length-prefixed byte field.
func (w *Writer) Bytes(v []byte) {
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(len(v)))
	w.b = append(w.b, v...)
}

// String appends a length-prefixed string field.
func (w *Writer) String(v string) { w.Bytes([]byte(v)) }

// Uint32 appends a fixed 4-byte field.
func (w *Writer) Uint32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }

// Uint64 appends a fixed 8-byte field.
func (w *Writer) Uint64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }

// Byte appends a single byte.
func (w *Writer) Byte(v byte) { w.b = append(w.b, v) }

// Bool appends a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Float64 appends an IEEE-754 big-endian float.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Out returns the accumulated encoding.
func (w *Writer) Out() []byte { return w.b }

// Reset empties the Writer, keeping its capacity for reuse.
func (w *Writer) Reset() { w.b = w.b[:0] }

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// AcquireWriter returns an empty pooled Writer. Release it with
// ReleaseWriter once the encoding has been copied or written out; the
// slice from Out aliases the Writer's buffer and must not be retained
// past the release.
func AcquireWriter() *Writer { return writerPool.Get().(*Writer) }

// ReleaseWriter resets w and returns it to the pool.
func ReleaseWriter(w *Writer) {
	w.Reset()
	writerPool.Put(w)
}

// Reader consumes encoded fields, latching the first error.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Bytes reads a length-prefixed byte field. The returned slice aliases the
// input; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < 4 {
		r.err = ErrShort
		return nil
	}
	n := binary.BigEndian.Uint32(r.b)
	if uint64(len(r.b)-4) < uint64(n) {
		r.err = ErrShort
		return nil
	}
	v := r.b[4 : 4+n]
	r.b = r.b[4+n:]
	return v
}

// BytesCopy reads a length-prefixed byte field into fresh storage.
func (r *Reader) BytesCopy() []byte {
	v := r.Bytes()
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// String reads a length-prefixed string field.
func (r *Reader) String() string { return string(r.Bytes()) }

// Uint32 reads a fixed 4-byte field.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

// Uint64 reads a fixed 8-byte field.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = ErrShort
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Bool reads a single 0/1 byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Float64 reads an IEEE-754 big-endian float.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Done returns the latched error, or an error when input remains.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("codec: %d trailing bytes", len(r.b))
	}
	return nil
}

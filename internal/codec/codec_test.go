package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllFieldTypes(t *testing.T) {
	w := NewWriter(64)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Uint32(0xDEADBEEF)
	w.Uint64(1 << 60)
	w.Byte(0x7F)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.14159)

	r := NewReader(w.Out())
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("u32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<60 {
		t.Fatalf("u64 = %x", got)
	}
	if got := r.Byte(); got != 0x7F {
		t.Fatalf("byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools wrong")
	}
	if got := r.Float64(); got != 3.14159 {
		t.Fatalf("float = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFields(t *testing.T) {
	w := NewWriter(0)
	w.Bytes(nil)
	w.String("")
	r := NewReader(w.Out())
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("string = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorLatching(t *testing.T) {
	r := NewReader([]byte{0, 0}) // too short for anything
	_ = r.Uint32()
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
	// Subsequent reads return zero values without panicking.
	if r.Uint64() != 0 || r.Byte() != 0 || r.String() != "" || r.Bytes() != nil || r.Bool() || r.Float64() != 0 {
		t.Fatal("post-error reads not zero")
	}
	if !errors.Is(r.Done(), ErrShort) {
		t.Fatal("Done did not surface latched error")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(7)
	r := NewReader(append(w.Out(), 0xFF))
	if r.Uint32() != 7 {
		t.Fatal("value wrong")
	}
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMaliciousLengthPrefix(t *testing.T) {
	// Length prefix claims 4 GB: must latch ErrShort, not allocate.
	r := NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	if got := r.Bytes(); got != nil {
		t.Fatalf("got %d bytes", len(got))
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestBytesCopyIndependent(t *testing.T) {
	w := NewWriter(16)
	w.Bytes([]byte{9, 9, 9})
	buf := w.Out()
	r := NewReader(buf)
	got := r.BytesCopy()
	buf[4] = 0 // mutate underlying storage
	if got[0] != 9 {
		t.Fatal("BytesCopy aliases input")
	}
}

func TestFloatSpecials(t *testing.T) {
	for _, v := range []float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		w := NewWriter(8)
		w.Float64(v)
		if got := NewReader(w.Out()).Float64(); got != v {
			t.Fatalf("float %v -> %v", v, got)
		}
	}
	// NaN round-trips as NaN.
	w := NewWriter(8)
	w.Float64(math.NaN())
	if got := NewReader(w.Out()).Float64(); !math.IsNaN(got) {
		t.Fatalf("NaN -> %v", got)
	}
}

// Property: any sequence of (bytes, string, u32, u64) fields round-trips.
func TestPropertyMixedRoundTrip(t *testing.T) {
	f := func(b1 []byte, s1 string, u32 uint32, u64 uint64, by byte) bool {
		w := NewWriter(0)
		w.Bytes(b1)
		w.String(s1)
		w.Uint32(u32)
		w.Uint64(u64)
		w.Byte(by)
		r := NewReader(w.Out())
		return bytes.Equal(r.Bytes(), b1) && r.String() == s1 &&
			r.Uint32() == u32 && r.Uint64() == u64 && r.Byte() == by && r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding any random garbage either errors or consumes input
// without panicking.
func TestPropertyGarbageSafe(t *testing.T) {
	f := func(garbage []byte) bool {
		r := NewReader(garbage)
		_ = r.Bytes()
		_ = r.String()
		_ = r.Uint64()
		_ = r.Done()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

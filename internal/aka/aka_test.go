package aka

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testK(b byte) K {
	var k K
	for i := range k {
		k[i] = b
	}
	return k
}

func testRAND(b byte) [RANDSize]byte {
	var r [RANDSize]byte
	for i := range r {
		r[i] = b
	}
	return r
}

func TestMutualAuthSuccess(t *testing.T) {
	k := testK(1)
	sim := &SIM{K: k, SQN: 10}
	v := GenerateVectorWithRAND(k, 11, testRAND(7))
	res, kasme, err := sim.Answer(v.RAND, v.AUTN)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, v.XRES) {
		t.Fatal("RES != XRES")
	}
	if kasme != v.KASME {
		t.Fatal("KASME mismatch between UE and network")
	}
	if sim.SQN != 11 {
		t.Fatalf("SIM SQN = %d, want 11", sim.SQN)
	}
}

func TestWrongKeyFailsMAC(t *testing.T) {
	v := GenerateVectorWithRAND(testK(2), 5, testRAND(9))
	sim := &SIM{K: testK(3), SQN: 1}
	if _, _, err := sim.Answer(v.RAND, v.AUTN); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("err=%v, want ErrMACFailure", err)
	}
}

func TestReplayFailsSync(t *testing.T) {
	k := testK(4)
	sim := &SIM{K: k, SQN: 0}
	v := GenerateVectorWithRAND(k, 1, testRAND(1))
	if _, _, err := sim.Answer(v.RAND, v.AUTN); err != nil {
		t.Fatal(err)
	}
	// Replaying the same vector must fail.
	if _, _, err := sim.Answer(v.RAND, v.AUTN); !errors.Is(err, ErrSyncFailure) {
		t.Fatalf("replay err=%v, want ErrSyncFailure", err)
	}
}

func TestFarFutureSQNFailsSync(t *testing.T) {
	k := testK(5)
	sim := &SIM{K: k, SQN: 0}
	v := GenerateVectorWithRAND(k, 1<<30, testRAND(2))
	if _, _, err := sim.Answer(v.RAND, v.AUTN); !errors.Is(err, ErrSyncFailure) {
		t.Fatalf("err=%v, want ErrSyncFailure", err)
	}
}

func TestTamperedAUTN(t *testing.T) {
	k := testK(6)
	sim := &SIM{K: k}
	v := GenerateVectorWithRAND(k, 1, testRAND(3))
	bad := append([]byte(nil), v.AUTN...)
	bad[len(bad)-1] ^= 1
	if _, _, err := sim.Answer(v.RAND, bad); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("err=%v, want ErrMACFailure", err)
	}
	if _, _, err := sim.Answer(v.RAND, bad[:5]); !errors.Is(err, ErrBadAUTN) {
		t.Fatalf("short AUTN err=%v, want ErrBadAUTN", err)
	}
}

func TestVectorsDifferAcrossSQN(t *testing.T) {
	k := testK(7)
	a := GenerateVectorWithRAND(k, 1, testRAND(4))
	b := GenerateVectorWithRAND(k, 2, testRAND(4))
	if a.KASME == b.KASME {
		t.Fatal("KASME identical across SQNs")
	}
	if bytes.Equal(a.AUTN, b.AUTN) {
		t.Fatal("AUTN identical across SQNs")
	}
}

func TestGenerateVectorRandomRAND(t *testing.T) {
	k := testK(8)
	a, err := GenerateVector(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateVector(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.RAND == b.RAND {
		t.Fatal("two vectors share RAND")
	}
}

func TestSQNConcealed(t *testing.T) {
	// AUTN must not leak SQN in the clear: two consecutive SQNs under
	// different RANDs should not reveal a +1 pattern in the first 6 bytes.
	k := testK(9)
	a := GenerateVectorWithRAND(k, 100, testRAND(10))
	b := GenerateVectorWithRAND(k, 101, testRAND(11))
	if bytes.Equal(a.AUTN[:6], b.AUTN[:6]) {
		t.Fatal("concealed SQN identical across RANDs")
	}
}

// Property: for any key byte pattern and increasing SQN sequence, the SIM
// accepts each fresh vector exactly once, deriving the network's KASME.
func TestPropertyAKAAgreement(t *testing.T) {
	f := func(keyByte, randByte byte, steps uint8) bool {
		k := testK(keyByte)
		sim := &SIM{K: k}
		n := int(steps%16) + 1
		for i := 1; i <= n; i++ {
			v := GenerateVectorWithRAND(k, uint64(i), testRAND(randByte+byte(i)))
			res, kasme, err := sim.Answer(v.RAND, v.AUTN)
			if err != nil || !bytes.Equal(res, v.XRES) || kasme != v.KASME {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

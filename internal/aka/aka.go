// Package aka implements the legacy EPS-AKA mutual authentication that the
// baseline (MNO) architecture uses and that CellBricks replaces with SAP.
// It is the shared-secret SIM scheme: the home operator and the SIM both
// hold a permanent key K; the network issues a challenge (RAND, AUTN) and
// the UE answers with RES, after which both sides hold KASME.
//
// The f1..f5 functions of MILENAGE are modelled with HMAC-SHA256 under
// distinct domain labels, preserving the structure (MAC-A network
// authentication, XRES, CK/IK folded into KASME, SQN anonymity key) while
// staying in the stdlib.
package aka

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"

	"cellbricks/internal/nas"
)

// Sizes of protocol fields.
const (
	KSize    = 32 // permanent key
	RANDSize = 16
	RESSize  = 8
	MACSize  = 8
	AUTNSize = 6 + MACSize // SQN^AK (6) || MAC-A (8)
)

// Errors returned by the UE-side verification.
var (
	ErrMACFailure  = errors.New("aka: network authentication failed (MAC-A mismatch)")
	ErrSyncFailure = errors.New("aka: SQN out of range (synchronisation failure)")
	ErrBadAUTN     = errors.New("aka: malformed AUTN")
)

// K is the permanent subscriber key provisioned in the SIM and the
// operator's subscriber database.
type K [KSize]byte

// NewK draws a random permanent key.
func NewK() (K, error) {
	var k K
	_, err := io.ReadFull(rand.Reader, k[:])
	return k, err
}

// Vector is the authentication vector the subscriber database returns to
// the MME in response to an Authentication Information Request.
type Vector struct {
	RAND  [RANDSize]byte
	AUTN  []byte
	XRES  []byte
	KASME nas.MasterKey
}

func f(k K, label byte, rnd []byte, extra []byte) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte{label})
	mac.Write(rnd)
	mac.Write(extra)
	return mac.Sum(nil)
}

func sqnBytes(sqn uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], sqn)
	return b[2:] // 48-bit SQN
}

// GenerateVector produces an authentication vector for the given SQN. The
// caller (subscriber DB) must increment its stored SQN per vector.
func GenerateVector(k K, sqn uint64) (Vector, error) {
	var v Vector
	if _, err := io.ReadFull(rand.Reader, v.RAND[:]); err != nil {
		return v, err
	}
	return generateVector(k, sqn, v.RAND), nil
}

// generateVector is the deterministic core, exposed for tests via
// GenerateVectorWithRAND.
func generateVector(k K, sqn uint64, rnd [RANDSize]byte) Vector {
	sq := sqnBytes(sqn)
	macA := f(k, 1, rnd[:], sq)[:MACSize]
	xres := f(k, 2, rnd[:], nil)[:RESSize]
	ak := f(k, 5, rnd[:], nil)[:6]
	concealed := make([]byte, 6)
	for i := range concealed {
		concealed[i] = sq[i] ^ ak[i]
	}
	var kasme nas.MasterKey
	copy(kasme[:], f(k, 3, rnd[:], sq)) // CK||IK -> KASME collapse
	autn := append(concealed, macA...)
	return Vector{RAND: rnd, AUTN: autn, XRES: xres, KASME: kasme}
}

// GenerateVectorWithRAND is GenerateVector with a caller-chosen RAND, for
// deterministic tests.
func GenerateVectorWithRAND(k K, sqn uint64, rnd [RANDSize]byte) Vector {
	return generateVector(k, sqn, rnd)
}

// SIM is the UE-side AKA state: the permanent key and the highest SQN
// accepted so far (replay window).
type SIM struct {
	K    K
	SQN  uint64 // highest accepted SQN
	IMSI string
}

// Answer verifies the network challenge and, on success, returns RES and
// KASME, advancing the SIM's SQN. A MAC failure means the challenge was
// not produced by the home operator; a sync failure means the SQN is stale
// (replay) or implausibly far ahead.
func (s *SIM) Answer(rnd [RANDSize]byte, autn []byte) (res []byte, kasme nas.MasterKey, err error) {
	if len(autn) != AUTNSize {
		return nil, kasme, ErrBadAUTN
	}
	ak := f(s.K, 5, rnd[:], nil)[:6]
	sq := make([]byte, 6)
	for i := range sq {
		sq[i] = autn[i] ^ ak[i]
	}
	var sqn uint64
	for _, b := range sq {
		sqn = sqn<<8 | uint64(b)
	}
	macA := f(s.K, 1, rnd[:], sq)[:MACSize]
	if !hmac.Equal(macA, autn[6:]) {
		return nil, kasme, ErrMACFailure
	}
	// Accept strictly-increasing SQNs within a generous window.
	const window = 1 << 20
	if sqn <= s.SQN || sqn > s.SQN+window {
		return nil, kasme, ErrSyncFailure
	}
	s.SQN = sqn
	res = f(s.K, 2, rnd[:], nil)[:RESSize]
	copy(kasme[:], f(s.K, 3, rnd[:], sq))
	return res, kasme, nil
}

// Package orc8r is the orchestrator substrate the prototype builds its
// broker into (§5: "the Orc8r implements a cloud service that configures
// and monitors the AGWs ... we implement the broker service (called
// brokerd) as part of Magma's Orc8r component"). It provides what the
// paper's deployment relies on around brokerd: AGW registration, liveness
// via heartbeats, configuration push (QoS defaults, lawful-intercept
// requirements, reporting cadence), and fleet-wide metrics aggregation.
package orc8r

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cellbricks/internal/codec"
	"cellbricks/internal/qos"
)

// AGWConfigPush is the configuration the orchestrator distributes to an
// access gateway.
type AGWConfigPush struct {
	// DefaultQoS seeds the AGW's fallback bearer parameters.
	DefaultQoS qos.Params
	// ReportInterval is the billing reporting cadence the AGW should use.
	ReportInterval time.Duration
	// RequireLI tells the AGW to enable its intercept tap for flagged
	// sessions.
	RequireLI bool
}

// Marshal encodes a config push.
func (c AGWConfigPush) Marshal() []byte {
	w := codec.NewWriter(64)
	w.Byte(byte(c.DefaultQoS.QCI))
	w.Uint64(c.DefaultQoS.DLAmbrBps)
	w.Uint64(c.DefaultQoS.ULAmbrBps)
	w.Uint64(uint64(c.ReportInterval))
	w.Bool(c.RequireLI)
	return w.Out()
}

// UnmarshalAGWConfigPush decodes a config push.
func UnmarshalAGWConfigPush(b []byte) (AGWConfigPush, error) {
	r := codec.NewReader(b)
	var c AGWConfigPush
	c.DefaultQoS.QCI = qos.QCI(r.Byte())
	c.DefaultQoS.DLAmbrBps = r.Uint64()
	c.DefaultQoS.ULAmbrBps = r.Uint64()
	c.ReportInterval = time.Duration(r.Uint64())
	c.RequireLI = r.Bool()
	return c, r.Done()
}

// Heartbeat is the AGW's periodic health/metrics report.
type Heartbeat struct {
	AGWID          string
	At             time.Duration // AGW-local uptime clock
	ActiveSessions uint32
	ULBytes        uint64
	DLBytes        uint64
	Attaches       uint64
	AttachFailures uint64
}

// Marshal encodes a heartbeat.
func (h Heartbeat) Marshal() []byte {
	w := codec.NewWriter(96)
	w.String(h.AGWID)
	w.Uint64(uint64(h.At))
	w.Uint32(h.ActiveSessions)
	w.Uint64(h.ULBytes)
	w.Uint64(h.DLBytes)
	w.Uint64(h.Attaches)
	w.Uint64(h.AttachFailures)
	return w.Out()
}

// UnmarshalHeartbeat decodes a heartbeat.
func UnmarshalHeartbeat(b []byte) (Heartbeat, error) {
	r := codec.NewReader(b)
	var h Heartbeat
	h.AGWID = r.String()
	h.At = time.Duration(r.Uint64())
	h.ActiveSessions = r.Uint32()
	h.ULBytes = r.Uint64()
	h.DLBytes = r.Uint64()
	h.Attaches = r.Uint64()
	h.AttachFailures = r.Uint64()
	return h, r.Done()
}

// AGWRecord is the orchestrator's view of one registered gateway.
type AGWRecord struct {
	ID       string
	TelcoID  string
	Addr     string
	Config   AGWConfigPush
	LastSeen time.Time
	Last     Heartbeat
}

// Errors.
var (
	ErrUnknownAGW = errors.New("orc8r: unknown AGW")
	ErrDuplicate  = errors.New("orc8r: AGW already registered")
)

// Orchestrator tracks a fleet of AGWs.
type Orchestrator struct {
	// Now is injectable for virtual-time tests.
	Now func() time.Time
	// Liveness is how stale a heartbeat may be before the AGW counts as
	// down (default 90 s).
	Liveness time.Duration

	mu     sync.Mutex
	agws   map[string]*AGWRecord
	defCfg AGWConfigPush
}

// New creates an orchestrator with the given default config template.
func New(def AGWConfigPush) *Orchestrator {
	if def.ReportInterval == 0 {
		def.ReportInterval = 30 * time.Second
	}
	if def.DefaultQoS.QCI == 0 {
		def.DefaultQoS = qos.DefaultParams()
	}
	return &Orchestrator{
		Now:      time.Now,
		Liveness: 90 * time.Second,
		agws:     make(map[string]*AGWRecord),
		defCfg:   def,
	}
}

// Register adds an AGW and returns its initial configuration.
func (o *Orchestrator) Register(id, telcoID, addr string) (AGWConfigPush, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.agws[id]; dup {
		return AGWConfigPush{}, fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	rec := &AGWRecord{ID: id, TelcoID: telcoID, Addr: addr, Config: o.defCfg, LastSeen: o.Now()}
	o.agws[id] = rec
	return rec.Config, nil
}

// Deregister removes an AGW.
func (o *Orchestrator) Deregister(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.agws, id)
}

// ReportHeartbeat ingests a heartbeat and returns the AGW's current
// configuration (config changes piggyback on the heartbeat reply, the
// way Magma's checkin works).
func (o *Orchestrator) ReportHeartbeat(h Heartbeat) (AGWConfigPush, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec, ok := o.agws[h.AGWID]
	if !ok {
		return AGWConfigPush{}, fmt.Errorf("%w: %s", ErrUnknownAGW, h.AGWID)
	}
	rec.Last = h
	rec.LastSeen = o.Now()
	return rec.Config, nil
}

// PushConfig updates one AGW's configuration (delivered on its next
// heartbeat).
func (o *Orchestrator) PushConfig(id string, cfg AGWConfigPush) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec, ok := o.agws[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAGW, id)
	}
	rec.Config = cfg
	return nil
}

// PushConfigAll updates the default template and every registered AGW.
func (o *Orchestrator) PushConfigAll(cfg AGWConfigPush) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.defCfg = cfg
	for _, rec := range o.agws {
		rec.Config = cfg
	}
}

// Get returns a snapshot of one AGW record.
func (o *Orchestrator) Get(id string) (AGWRecord, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec, ok := o.agws[id]
	if !ok {
		return AGWRecord{}, false
	}
	return *rec, true
}

// Alive lists AGWs with a fresh heartbeat, sorted by ID.
func (o *Orchestrator) Alive() []AGWRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	cutoff := o.Now().Add(-o.Liveness)
	var out []AGWRecord
	for _, rec := range o.agws {
		if rec.LastSeen.After(cutoff) {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FleetMetrics aggregates the latest heartbeats per bTelco.
type FleetMetrics struct {
	AGWs           int
	ActiveSessions uint64
	ULBytes        uint64
	DLBytes        uint64
	Attaches       uint64
	AttachFailures uint64
}

// Metrics aggregates fleet-wide, or per bTelco when telcoID is non-empty.
func (o *Orchestrator) Metrics(telcoID string) FleetMetrics {
	o.mu.Lock()
	defer o.mu.Unlock()
	var m FleetMetrics
	for _, rec := range o.agws {
		if telcoID != "" && rec.TelcoID != telcoID {
			continue
		}
		m.AGWs++
		m.ActiveSessions += uint64(rec.Last.ActiveSessions)
		m.ULBytes += rec.Last.ULBytes
		m.DLBytes += rec.Last.DLBytes
		m.Attaches += rec.Last.Attaches
		m.AttachFailures += rec.Last.AttachFailures
	}
	return m
}

package orc8r

import (
	"errors"
	"testing"
	"time"

	"cellbricks/internal/qos"
)

func TestRegisterAndConfig(t *testing.T) {
	o := New(AGWConfigPush{})
	cfg, err := o.Register("agw-1", "telco-1", "10.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DefaultQoS.QCI == 0 || cfg.ReportInterval == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := o.Register("agw-1", "telco-1", "x"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
	rec, ok := o.Get("agw-1")
	if !ok || rec.TelcoID != "telco-1" {
		t.Fatalf("record = %+v", rec)
	}
	o.Deregister("agw-1")
	if _, ok := o.Get("agw-1"); ok {
		t.Fatal("record survived deregister")
	}
}

func TestHeartbeatAndConfigPush(t *testing.T) {
	o := New(AGWConfigPush{})
	o.Register("agw-1", "telco-1", "addr")
	hb := Heartbeat{AGWID: "agw-1", ActiveSessions: 7, DLBytes: 1000, Attaches: 9, AttachFailures: 1}
	cfg, err := o.ReportHeartbeat(hb)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RequireLI {
		t.Fatal("unexpected LI requirement")
	}
	// Push a new config: delivered on the next heartbeat.
	newCfg := AGWConfigPush{
		DefaultQoS:     qos.Params{QCI: qos.QCIWebTCPPremium, DLAmbrBps: 50e6, ULAmbrBps: 25e6},
		ReportInterval: 10 * time.Second,
		RequireLI:      true,
	}
	if err := o.PushConfig("agw-1", newCfg); err != nil {
		t.Fatal(err)
	}
	got, err := o.ReportHeartbeat(hb)
	if err != nil {
		t.Fatal(err)
	}
	if got != newCfg {
		t.Fatalf("config = %+v", got)
	}
	if err := o.PushConfig("nope", newCfg); !errors.Is(err, ErrUnknownAGW) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.ReportHeartbeat(Heartbeat{AGWID: "nope"}); !errors.Is(err, ErrUnknownAGW) {
		t.Fatalf("err = %v", err)
	}
}

func TestLiveness(t *testing.T) {
	now := time.Unix(1000, 0)
	o := New(AGWConfigPush{})
	o.Now = func() time.Time { return now }
	o.Register("agw-1", "t", "a")
	o.Register("agw-2", "t", "b")
	now = now.Add(time.Minute)
	o.ReportHeartbeat(Heartbeat{AGWID: "agw-2"})
	now = now.Add(time.Minute) // agw-1 last seen 2min ago, agw-2 1min ago
	alive := o.Alive()
	if len(alive) != 1 || alive[0].ID != "agw-2" {
		t.Fatalf("alive = %+v", alive)
	}
}

func TestMetricsAggregation(t *testing.T) {
	o := New(AGWConfigPush{})
	o.Register("a1", "telco-1", "")
	o.Register("a2", "telco-1", "")
	o.Register("b1", "telco-2", "")
	o.ReportHeartbeat(Heartbeat{AGWID: "a1", ActiveSessions: 3, DLBytes: 100, Attaches: 5})
	o.ReportHeartbeat(Heartbeat{AGWID: "a2", ActiveSessions: 2, DLBytes: 50, AttachFailures: 1})
	o.ReportHeartbeat(Heartbeat{AGWID: "b1", ActiveSessions: 10, DLBytes: 1000})

	fleet := o.Metrics("")
	if fleet.AGWs != 3 || fleet.ActiveSessions != 15 || fleet.DLBytes != 1150 {
		t.Fatalf("fleet = %+v", fleet)
	}
	t1 := o.Metrics("telco-1")
	if t1.AGWs != 2 || t1.ActiveSessions != 5 || t1.Attaches != 5 || t1.AttachFailures != 1 {
		t.Fatalf("telco-1 = %+v", t1)
	}
}

func TestCodecs(t *testing.T) {
	h := Heartbeat{AGWID: "x", At: 5 * time.Second, ActiveSessions: 2, ULBytes: 3, DLBytes: 4, Attaches: 5, AttachFailures: 6}
	got, err := UnmarshalHeartbeat(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("heartbeat roundtrip: %+v", got)
	}
	c := AGWConfigPush{DefaultQoS: qos.Params{QCI: 8, DLAmbrBps: 1, ULAmbrBps: 2}, ReportInterval: time.Minute, RequireLI: true}
	gotC, err := UnmarshalAGWConfigPush(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gotC != c {
		t.Fatalf("config roundtrip: %+v", gotC)
	}
	if _, err := UnmarshalHeartbeat([]byte{1}); err == nil {
		t.Fatal("short heartbeat accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	o := New(AGWConfigPush{})
	srv, err := Serve(o, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg, err := c.Register("agw-w", "telco-w", "10.1.1.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReportInterval == 0 {
		t.Fatal("no default config over the wire")
	}
	// Push + heartbeat delivers the new config.
	o.PushConfig("agw-w", AGWConfigPush{DefaultQoS: qos.DefaultParams(), ReportInterval: 5 * time.Second, RequireLI: true})
	got, err := c.Heartbeat(Heartbeat{AGWID: "agw-w", ActiveSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.RequireLI || got.ReportInterval != 5*time.Second {
		t.Fatalf("config over wire = %+v", got)
	}
	if m := o.Metrics("telco-w"); m.ActiveSessions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

package orc8r

import (
	"fmt"

	"cellbricks/internal/codec"
	"cellbricks/internal/wire"
)

// Wire message types for the orchestrator northbound (kept clear of the
// ranges package wire uses for SAP/S6A/NAS).
const (
	TypeAGWRegister byte = iota + 64
	TypeAGWRegistered
	TypeAGWHeartbeat
	TypeAGWConfig
)

// Server exposes an Orchestrator over the wire protocol.
type Server struct {
	O   *Orchestrator
	srv *wire.Server
}

// Serve starts the orchestrator server on addr.
func Serve(o *Orchestrator, addr string) (*Server, error) {
	s := &Server{O: o}
	srv, err := wire.NewServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case TypeAGWRegister:
		r := codec.NewReader(payload)
		id := r.String()
		telco := r.String()
		addr := r.String()
		if err := r.Done(); err != nil {
			return 0, nil, err
		}
		cfg, err := s.O.Register(id, telco, addr)
		if err != nil {
			return 0, nil, err
		}
		return TypeAGWRegistered, cfg.Marshal(), nil
	case TypeAGWHeartbeat:
		h, err := UnmarshalHeartbeat(payload)
		if err != nil {
			return 0, nil, err
		}
		cfg, err := s.O.ReportHeartbeat(h)
		if err != nil {
			return 0, nil, err
		}
		return TypeAGWConfig, cfg.Marshal(), nil
	default:
		return 0, nil, fmt.Errorf("orc8r: unexpected message type %d", msgType)
	}
}

// Client is the AGW-side orchestrator client.
type Client struct{ C *wire.Client }

// DialClient connects to an orchestrator server.
func DialClient(addr string) (*Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{C: c}, nil
}

// Register announces the AGW and returns its initial config.
func (c *Client) Register(id, telcoID, addr string) (AGWConfigPush, error) {
	w := codec.NewWriter(64)
	w.String(id)
	w.String(telcoID)
	w.String(addr)
	_, reply, err := c.C.Call(TypeAGWRegister, w.Out())
	if err != nil {
		return AGWConfigPush{}, err
	}
	return UnmarshalAGWConfigPush(reply)
}

// Heartbeat reports health and returns the (possibly updated) config.
func (c *Client) Heartbeat(h Heartbeat) (AGWConfigPush, error) {
	_, reply, err := c.C.Call(TypeAGWHeartbeat, h.Marshal())
	if err != nil {
		return AGWConfigPush{}, err
	}
	return UnmarshalAGWConfigPush(reply)
}

// Close closes the connection.
func (c *Client) Close() error { return c.C.Close() }

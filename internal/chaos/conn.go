package chaos

import (
	"math/rand"
	"net"
	"sync"
)

// FaultyConn wraps a real net.Conn and injects byte corruption and write
// truncation from a seeded rng, so wire-level recovery (redial, framing
// resync, retries) can be exercised against real TCP sockets with a
// reproducible fault sequence. Faults are drawn per Write in call order:
// the same seed against the same write sequence corrupts the same bytes.
type FaultyConn struct {
	net.Conn

	mu           sync.Mutex
	rng          *rand.Rand
	corruptRate  float64 // probability a Write has one byte flipped
	truncateRate float64 // probability a Write is cut short (conn lies: reports full length)

	corrupted int
	truncated int
}

// NewFaultyConn wraps conn with a seeded fault source. Rates are
// per-Write probabilities in [0,1].
func NewFaultyConn(conn net.Conn, seed int64, corruptRate, truncateRate float64) *FaultyConn {
	return &FaultyConn{
		Conn:         conn,
		rng:          rand.New(rand.NewSource(seed)),
		corruptRate:  corruptRate,
		truncateRate: truncateRate,
	}
}

// SetRates changes the fault probabilities (e.g. a fault window opening
// and closing).
func (c *FaultyConn) SetRates(corruptRate, truncateRate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.corruptRate = corruptRate
	c.truncateRate = truncateRate
}

// Faults reports how many writes were corrupted and truncated.
func (c *FaultyConn) Faults() (corrupted, truncated int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupted, c.truncated
}

// Write injects the scheduled faults. A truncated write sends only the
// first half of the buffer but reports success for all of it — the
// nastiest failure mode for a length-prefixed framing protocol, since the
// peer now reads a frame that never completes. A corrupted write flips one
// byte in a copy (the caller's buffer is never mutated).
func (c *FaultyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	truncate := len(p) > 1 && c.truncateRate > 0 && c.rng.Float64() < c.truncateRate
	corrupt := !truncate && len(p) > 0 && c.corruptRate > 0 && c.rng.Float64() < c.corruptRate
	var victim int
	if corrupt {
		victim = c.rng.Intn(len(p))
		c.corrupted++
	}
	if truncate {
		c.truncated++
	}
	c.mu.Unlock()

	switch {
	case truncate:
		if _, err := c.Conn.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		// Report the full length, then kill the conn: the bytes are
		// gone and the peer's frame will never complete.
		_ = c.Conn.Close()
		return len(p), nil
	case corrupt:
		buf := make([]byte, len(p))
		copy(buf, p)
		buf[victim] ^= 0xff
		return c.Conn.Write(buf)
	default:
		return c.Conn.Write(p)
	}
}

package chaos

import "math/rand"

// Adversary is the live behavior state of one Byzantine bTelco: a bag of
// toggles flipped by a compiled Schedule (via AdversaryHooks) that the
// bTelco's metering, NAS, and data paths consult. It carries its own
// seeded rng so probabilistic behaviors (nasdrop) are deterministic and
// independent of where the bTelco's shard places it — a requirement of
// the netem.World byte-identity contract.
//
// Adversary is not safe for concurrent use; in the simulator every access
// happens on the owning shard's event loop, which is single-threaded.
type Adversary struct {
	rng *rand.Rand

	overbill  float64 // >0: inflate reported bytes by this fraction
	underbill float64 // >0: deflate reported bytes by this fraction
	replay    bool    // re-send previous sealed report
	blackhole bool    // accept attaches, deliver nothing
	nasDrop   float64 // probability of dropping incoming NAS
	hoDrop    bool    // drop handover attach requests

	// Counters of behaviors actually exercised, for experiment tables.
	MeterLies    int
	ReplaysSent  int
	NASDropped   int
	HandoffDrops int
}

// NewAdversary builds an adversary with its own deterministic rng.
func NewAdversary(seed int64) *Adversary {
	return &Adversary{rng: rand.New(rand.NewSource(seed))}
}

// Hooks returns chaos Hooks wired to this adversary's toggles, ready to
// merge into a Schedule.Replay call for the owning bTelco.
func (a *Adversary) Hooks() Hooks {
	return Hooks{
		Overbill:     func(rate float64) { a.overbill = rate },
		Underbill:    func(rate float64) { a.underbill = rate },
		ReportReplay: func(on bool) { a.replay = on },
		Blackhole:    func(on bool) { a.blackhole = on },
		NASDrop:      func(rate float64) { a.nasDrop = rate },
		HODrop:       func(on bool) { a.hoDrop = on },
	}
}

// MeterBytes distorts a true byte count per the active over/under-billing
// behavior. Overbilling wins when both are somehow active.
func (a *Adversary) MeterBytes(b uint64) uint64 {
	if a == nil {
		return b
	}
	switch {
	case a.overbill > 0:
		a.MeterLies++
		return b + uint64(float64(b)*a.overbill)
	case a.underbill > 0:
		a.MeterLies++
		return b - uint64(float64(b)*a.underbill)
	}
	return b
}

// ReplayReport reports whether the bTelco should re-send its previous
// sealed report instead of producing a fresh one.
func (a *Adversary) ReplayReport() bool {
	if a == nil || !a.replay {
		return false
	}
	a.ReplaysSent++
	return true
}

// Blackholing reports whether the data path is currently blackholed.
func (a *Adversary) Blackholing() bool { return a != nil && a.blackhole }

// DropNAS draws whether to drop an incoming NAS message.
func (a *Adversary) DropNAS() bool {
	if a == nil || a.nasDrop <= 0 {
		return false
	}
	if a.rng.Float64() < a.nasDrop {
		a.NASDropped++
		return true
	}
	return false
}

// DropHandover reports whether to drop a handover attach request.
func (a *Adversary) DropHandover(handover bool) bool {
	if a == nil || !a.hoDrop || !handover {
		return false
	}
	a.HandoffDrops++
	return true
}

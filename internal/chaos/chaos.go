// Package chaos is a deterministic fault-injection harness for the
// CellBricks availability story. The paper's resilience argument — the
// broker sits off the data path after attach, a UE re-attaches through any
// bTelco, and MPTCP masks the disruption — only holds if the system
// actually recovers from the faults it claims to tolerate. This package
// turns a compact textual spec ("flap=2x3s,broker=1x20s") plus a seed into
// a fixed, sorted schedule of faults that replays identically in the
// discrete-event simulator (internal/netem) and against real TCP servers,
// so recovery times are reproducible numbers rather than anecdotes.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault classes the harness can inject.
type Kind uint8

const (
	// KindFlap takes a link hard down for the fault duration
	// (netem Link.Down): every in-flight and new packet is dropped.
	KindFlap Kind = iota
	// KindPause freezes a link (netem Link.PausedUntil): packets are
	// held, not dropped — the blackout a handover gap produces.
	KindPause
	// KindBroker takes the broker process down for the duration; on
	// restart it restores from its last snapshot and sheds attach load
	// briefly. Attaches in the window see refused/timed-out SAP calls.
	KindBroker
	// KindCrash kills and later restarts the serving bTelco, forcing the
	// UE through its fallback attach path.
	KindCrash
	// KindCorrupt flips bytes in transit frames at Rate for the duration.
	KindCorrupt
	// KindTrunc truncates transit frames at Rate for the duration.
	KindTrunc

	// The remaining classes are Byzantine bTelco behaviors rather than
	// infrastructure faults: the operator stays up and answers the
	// protocol, but lies or stonewalls. They exist to exercise the
	// verified-billing and reputation machinery the paper's trust
	// argument rests on.

	// KindOverbill inflates the bTelco's usage reports by Rate (1.0 =
	// reports double the true bytes) for the duration.
	KindOverbill
	// KindUnderbill deflates the bTelco's usage reports by Rate (0.5 =
	// reports half the true bytes) — the collusion-with-user case.
	KindUnderbill
	// KindReplay makes the bTelco re-send its previous sealed meter
	// report instead of a fresh one — stale, signed, and detectable only
	// by sequence/relative-time regression at the verifier.
	KindReplay
	// KindBlackhole accepts attaches but delivers no user traffic: the
	// data path is silently dropped while the control plane stays polite.
	KindBlackhole
	// KindNASDrop drops incoming NAS/attach signaling at Rate — the
	// selective-unavailability adversary.
	KindNASDrop
	// KindHODrop drops attach requests that arrive as handovers (the UE
	// was attached elsewhere and is steering in) — handover blackholing.
	KindHODrop

	numKinds = iota
)

var kindNames = [numKinds]string{
	"flap", "pause", "broker", "crash", "corrupt", "trunc",
	"overbill", "underbill", "replay", "blackhole", "nasdrop", "hodrop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a fault class name.
func KindFromString(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault class %q", s)
}

// Fault is one scheduled fault: at virtual (or relative wall) time At,
// inject Kind for Dur. Rate is the per-frame probability for the
// corrupt/trunc classes and ignored otherwise.
type Fault struct {
	Kind Kind
	At   time.Duration
	Dur  time.Duration
	Rate float64
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s@%v+%v", f.Kind, f.At, f.Dur)
	if f.Rate > 0 {
		s += fmt.Sprintf("(p=%.3f)", f.Rate)
	}
	return s
}

// ClassSpec is the per-class part of a Spec: inject Count faults of
// duration Dur each; Rate applies to corrupt/trunc.
type ClassSpec struct {
	Count int
	Dur   time.Duration
	Rate  float64
}

// Spec is a parsed fault specification: how many faults of each class to
// inject and how long each lasts. Where in the run they land is decided by
// Compile with a seed, so the same spec produces different-but-reproducible
// schedules across seeds.
type Spec struct {
	Classes [numKinds]ClassSpec
}

// ParseSpec parses the comma-separated grammar
//
//	class=COUNTxDUR[@RATE]
//
// e.g. "flap=2x3s,pause=1x800ms,broker=1x20s,corrupt=1x10s@0.05".
// Infrastructure classes: flap, pause, broker, crash, corrupt, trunc.
// Adversary classes: overbill, underbill, replay, blackhole, nasdrop,
// hodrop. RATE (0..1] is the per-frame probability for corrupt/trunc
// (default 0.05), the report distortion magnitude for overbill/underbill
// (defaults 1.0 and 0.5), and the per-message drop probability for
// nasdrop (default 0.5); it is ignored for the other classes. An empty
// string is a valid empty spec (the baseline run).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("chaos: %q: want class=COUNTxDUR[@RATE]", part)
		}
		kind, err := KindFromString(strings.TrimSpace(name))
		if err != nil {
			return spec, err
		}
		rate := 0.0
		if body, r, hasRate := strings.Cut(val, "@"); hasRate {
			val = body
			rate, err = strconv.ParseFloat(strings.TrimSpace(r), 64)
			if err != nil || rate <= 0 || rate > 1 {
				return spec, fmt.Errorf("chaos: %q: rate must be in (0,1]", part)
			}
		}
		cntStr, durStr, ok := strings.Cut(val, "x")
		if !ok {
			return spec, fmt.Errorf("chaos: %q: want COUNTxDUR", part)
		}
		count, err := strconv.Atoi(strings.TrimSpace(cntStr))
		if err != nil || count < 1 {
			return spec, fmt.Errorf("chaos: %q: count must be a positive integer", part)
		}
		dur, err := time.ParseDuration(strings.TrimSpace(durStr))
		if err != nil || dur <= 0 {
			return spec, fmt.Errorf("chaos: %q: bad duration", part)
		}
		if rate == 0 {
			switch kind {
			case KindCorrupt, KindTrunc:
				rate = 0.05
			case KindOverbill:
				rate = 1.0
			case KindUnderbill, KindNASDrop:
				rate = 0.5
			}
		}
		c := &spec.Classes[kind]
		c.Count += count
		c.Dur = dur
		if rate > 0 {
			c.Rate = rate
		}
	}
	return spec, nil
}

// String renders the spec back into the grammar (canonical class order).
func (s Spec) String() string {
	var parts []string
	for k, c := range s.Classes {
		if c.Count == 0 {
			continue
		}
		p := fmt.Sprintf("%s=%dx%v", Kind(k), c.Count, c.Dur)
		if c.Rate > 0 {
			p += fmt.Sprintf("@%g", c.Rate)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the spec schedules no faults.
func (s Spec) Empty() bool {
	for _, c := range s.Classes {
		if c.Count > 0 {
			return false
		}
	}
	return true
}

// Schedule is a compiled, time-sorted fault list.
type Schedule struct {
	Seed    int64
	Horizon time.Duration
	Faults  []Fault
}

// Compile places the spec's faults inside [0.1*horizon, 0.7*horizon] using
// a seeded rng, so every fault window — including its recovery tail — fits
// before the run ends. Same (spec, seed, horizon) → identical schedule;
// the draw order is fixed (class-major, count-minor), so adding a class to
// the spec does not reshuffle the others' times for a given seed.
func (s Spec) Compile(seed int64, horizon time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Horizon: horizon}
	lo := horizon / 10
	window := horizon*7/10 - lo
	if window <= 0 {
		window = 1
	}
	for k := 0; k < numKinds; k++ {
		c := s.Classes[k]
		for i := 0; i < c.Count; i++ {
			at := lo + time.Duration(rng.Int63n(int64(window)))
			dur := c.Dur
			if at+dur > horizon {
				dur = horizon - at
			}
			sched.Faults = append(sched.Faults, Fault{
				Kind: Kind(k), At: at, Dur: dur, Rate: c.Rate,
			})
		}
	}
	sort.Slice(sched.Faults, func(i, j int) bool {
		a, b := sched.Faults[i], sched.Faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Kind < b.Kind
	})
	return sched
}

// String renders the schedule one fault per line — this is what the
// failover experiment embeds in its summary, so two runs with the same
// seed and spec are trivially diffable.
func (sc Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d horizon=%v faults=%d\n", sc.Seed, sc.Horizon, len(sc.Faults))
	for _, f := range sc.Faults {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

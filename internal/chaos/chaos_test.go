package chaos

import (
	"net"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "flap=2x3s,pause=1x800ms,broker=1x20s,crash=1x10s,corrupt=1x10s@0.05,trunc=1x5s@0.1"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Classes[KindFlap].Count != 2 || spec.Classes[KindFlap].Dur != 3*time.Second {
		t.Fatalf("flap parsed wrong: %+v", spec.Classes[KindFlap])
	}
	if spec.Classes[KindCorrupt].Rate != 0.05 {
		t.Fatalf("corrupt rate = %v, want 0.05", spec.Classes[KindCorrupt].Rate)
	}
	out := spec.String()
	spec2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if spec2 != spec {
		t.Fatalf("round trip mismatch: %q -> %+v vs %+v", out, spec2, spec)
	}
}

func TestParseSpecDefaultsCorruptRate(t *testing.T) {
	spec, err := ParseSpec("corrupt=1x10s")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Classes[KindCorrupt].Rate != 0.05 {
		t.Fatalf("default corrupt rate = %v, want 0.05", spec.Classes[KindCorrupt].Rate)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus=1x3s",        // unknown class
		"flap=0x3s",         // zero count
		"flap=1x-3s",        // negative duration
		"flap=1",            // missing duration
		"flap",              // missing '='
		"corrupt=1x3s@1.5",  // rate out of range
		"corrupt=1x3s@-0.1", // rate out of range
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
	if spec, err := ParseSpec(""); err != nil || !spec.Empty() {
		t.Errorf("empty spec should parse as empty schedule, got %+v, %v", spec, err)
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec, err := ParseSpec("flap=3x2s,broker=1x10s,corrupt=2x4s@0.1")
	if err != nil {
		t.Fatal(err)
	}
	horizon := 2 * time.Minute
	a := spec.Compile(42, horizon)
	b := spec.Compile(42, horizon)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	c := spec.Compile(43, horizon)
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical schedules:\n%s", a)
	}
}

func TestCompileBoundsAndOrder(t *testing.T) {
	spec, _ := ParseSpec("flap=5x3s,pause=5x1s,broker=2x15s")
	horizon := 90 * time.Second
	sched := spec.Compile(7, horizon)
	if len(sched.Faults) != 12 {
		t.Fatalf("got %d faults, want 12", len(sched.Faults))
	}
	var prev time.Duration = -1
	for _, f := range sched.Faults {
		if f.At < prev {
			t.Fatalf("schedule not sorted: %v after %v", f.At, prev)
		}
		prev = f.At
		if f.At < horizon/10 {
			t.Errorf("fault %s before warmup window", f)
		}
		if f.At+f.Dur > horizon {
			t.Errorf("fault %s extends past horizon %v", f, horizon)
		}
	}
}

func TestFaultyConnDeterministic(t *testing.T) {
	run := func(seed int64) (corrupted, truncated int, payload []byte) {
		client, server := net.Pipe()
		defer server.Close()
		fc := NewFaultyConn(client, seed, 0.3, 0.2)
		done := make(chan []byte, 1)
		go func() {
			buf := make([]byte, 4096)
			total := 0
			for {
				n, err := server.Read(buf[total:])
				total += n
				if err != nil {
					break
				}
			}
			done <- buf[:total]
		}()
		for i := 0; i < 20; i++ {
			msg := make([]byte, 16)
			for j := range msg {
				msg[j] = byte(i)
			}
			if _, err := fc.Write(msg); err != nil {
				break
			}
		}
		fc.Close()
		payload = <-done
		corrupted, truncated = fc.Faults()
		return
	}
	c1, t1, p1 := run(99)
	c2, t2, p2 := run(99)
	if c1 != c2 || t1 != t2 || string(p1) != string(p2) {
		t.Fatalf("same seed diverged: (%d,%d,%d bytes) vs (%d,%d,%d bytes)",
			c1, t1, len(p1), c2, t2, len(p2))
	}
	if c1 == 0 && t1 == 0 {
		t.Fatalf("expected some faults at 30%%/20%% over 20 writes")
	}
}

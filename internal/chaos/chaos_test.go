package chaos

import (
	"net"
	"testing"
	"time"

	"cellbricks/internal/netem"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "flap=2x3s,pause=1x800ms,broker=1x20s,crash=1x10s,corrupt=1x10s@0.05,trunc=1x5s@0.1"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Classes[KindFlap].Count != 2 || spec.Classes[KindFlap].Dur != 3*time.Second {
		t.Fatalf("flap parsed wrong: %+v", spec.Classes[KindFlap])
	}
	if spec.Classes[KindCorrupt].Rate != 0.05 {
		t.Fatalf("corrupt rate = %v, want 0.05", spec.Classes[KindCorrupt].Rate)
	}
	out := spec.String()
	spec2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if spec2 != spec {
		t.Fatalf("round trip mismatch: %q -> %+v vs %+v", out, spec2, spec)
	}
}

func TestParseSpecAdversaryKindsRoundTrip(t *testing.T) {
	in := "overbill=1x20s@1,underbill=1x10s@0.25,replay=2x8s,blackhole=1x6s,nasdrop=1x12s@0.4,hodrop=1x9s"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Classes[KindOverbill].Rate != 1.0 {
		t.Fatalf("overbill rate = %v, want 1", spec.Classes[KindOverbill].Rate)
	}
	if spec.Classes[KindReplay].Count != 2 || spec.Classes[KindReplay].Dur != 8*time.Second {
		t.Fatalf("replay parsed wrong: %+v", spec.Classes[KindReplay])
	}
	out := spec.String()
	spec2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if spec2 != spec {
		t.Fatalf("round trip mismatch: %q -> %+v vs %+v", out, spec2, spec)
	}
	if out2 := spec2.String(); out2 != out {
		t.Fatalf("print not stable: %q vs %q", out, out2)
	}
}

func TestParseSpecAdversaryDefaults(t *testing.T) {
	spec, err := ParseSpec("overbill=1x10s,underbill=1x10s,nasdrop=1x10s,blackhole=1x10s")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.Classes[KindOverbill].Rate; got != 1.0 {
		t.Errorf("default overbill rate = %v, want 1", got)
	}
	if got := spec.Classes[KindUnderbill].Rate; got != 0.5 {
		t.Errorf("default underbill rate = %v, want 0.5", got)
	}
	if got := spec.Classes[KindNASDrop].Rate; got != 0.5 {
		t.Errorf("default nasdrop rate = %v, want 0.5", got)
	}
	if got := spec.Classes[KindBlackhole].Rate; got != 0 {
		t.Errorf("blackhole should take no default rate, got %v", got)
	}
}

// FuzzSpecRoundTrip pins parse→print→parse stability: any string that
// parses must print to a canonical form that re-parses to the same Spec
// and re-prints byte-identically.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("flap=2x3s,broker=1x20s")
	f.Add("overbill=1x20s@1,replay=2x8s,nasdrop=1x12s@0.4")
	f.Add("blackhole=3x6s,hodrop=1x9s,underbill=2x5s@0.125")
	f.Add("corrupt=1x10s,trunc=1x5s@0.1")
	f.Add("flap=1x3s,flap=2x4s") // duplicate class accumulates
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		out := spec.String()
		spec2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", out, err)
		}
		if spec2 != spec {
			t.Fatalf("%q: re-parse of %q gave %+v, want %+v", s, out, spec2, spec)
		}
		if out2 := spec2.String(); out2 != out {
			t.Fatalf("%q: print not stable: %q vs %q", s, out, out2)
		}
	})
}

func TestReplayArmsAdversaryKinds(t *testing.T) {
	spec, err := ParseSpec("overbill=1x4s,replay=1x4s,blackhole=1x4s,nasdrop=1x4s,hodrop=1x4s,underbill=1x4s")
	if err != nil {
		t.Fatal(err)
	}
	sched := spec.Compile(5, time.Minute)

	sim := netem.NewSim(1)
	adv := NewAdversary(5)
	if armed := sched.Replay(sim, Hooks{}); armed != 0 {
		t.Fatalf("nil hooks armed %d faults, want 0", armed)
	}
	// Hooks need a fresh sim: At() panics on past times after a run.
	sim = netem.NewSim(1)
	if armed := sched.Replay(sim, adv.Hooks()); armed != 6 {
		t.Fatalf("armed %d faults, want 6", armed)
	}
	var sawOverbill, sawBlackhole bool
	for at := time.Second; at <= time.Minute; at += 100 * time.Millisecond {
		sim.RunUntil(at)
		if adv.MeterBytes(1000) != 1000 {
			sawOverbill = true
		}
		if adv.Blackholing() {
			sawBlackhole = true
		}
	}
	if !sawOverbill || !sawBlackhole {
		t.Fatalf("behaviors never activated: overbill=%v blackhole=%v", sawOverbill, sawBlackhole)
	}
	if adv.MeterBytes(1000) != 1000 || adv.Blackholing() {
		t.Fatalf("behaviors did not clear after their windows")
	}
}

func TestAdversaryBehaviors(t *testing.T) {
	adv := NewAdversary(3)
	h := adv.Hooks()

	h.Overbill(1.0)
	if got := adv.MeterBytes(1 << 20); got != 2<<20 {
		t.Fatalf("overbill@1.0: MeterBytes = %d, want %d", got, 2<<20)
	}
	h.Overbill(0)
	h.Underbill(0.5)
	if got := adv.MeterBytes(1 << 20); got != 1<<19 {
		t.Fatalf("underbill@0.5: MeterBytes = %d, want %d", got, 1<<19)
	}
	h.Underbill(0)
	if got := adv.MeterBytes(12345); got != 12345 {
		t.Fatalf("honest MeterBytes = %d, want 12345", got)
	}

	if adv.DropNAS() {
		t.Fatal("DropNAS with no nasdrop active")
	}
	h.NASDrop(1.0)
	if !adv.DropNAS() {
		t.Fatal("DropNAS at rate 1.0 did not drop")
	}
	h.NASDrop(0)

	if adv.DropHandover(true) {
		t.Fatal("DropHandover with hodrop off")
	}
	h.HODrop(true)
	if !adv.DropHandover(true) || adv.DropHandover(false) {
		t.Fatal("hodrop must drop handovers only")
	}

	if adv.ReplayReport() {
		t.Fatal("ReplayReport with replay off")
	}
	h.ReportReplay(true)
	if !adv.ReplayReport() {
		t.Fatal("ReplayReport with replay on")
	}

	// A nil adversary (honest bTelco) is a no-op everywhere.
	var hon *Adversary
	if hon.MeterBytes(7) != 7 || hon.DropNAS() || hon.Blackholing() ||
		hon.ReplayReport() || hon.DropHandover(true) {
		t.Fatal("nil adversary misbehaved")
	}
}

func TestParseSpecDefaultsCorruptRate(t *testing.T) {
	spec, err := ParseSpec("corrupt=1x10s")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Classes[KindCorrupt].Rate != 0.05 {
		t.Fatalf("default corrupt rate = %v, want 0.05", spec.Classes[KindCorrupt].Rate)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus=1x3s",        // unknown class
		"flap=0x3s",         // zero count
		"flap=1x-3s",        // negative duration
		"flap=1",            // missing duration
		"flap",              // missing '='
		"corrupt=1x3s@1.5",  // rate out of range
		"corrupt=1x3s@-0.1", // rate out of range
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
	if spec, err := ParseSpec(""); err != nil || !spec.Empty() {
		t.Errorf("empty spec should parse as empty schedule, got %+v, %v", spec, err)
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec, err := ParseSpec("flap=3x2s,broker=1x10s,corrupt=2x4s@0.1")
	if err != nil {
		t.Fatal(err)
	}
	horizon := 2 * time.Minute
	a := spec.Compile(42, horizon)
	b := spec.Compile(42, horizon)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	c := spec.Compile(43, horizon)
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical schedules:\n%s", a)
	}
}

func TestCompileBoundsAndOrder(t *testing.T) {
	spec, _ := ParseSpec("flap=5x3s,pause=5x1s,broker=2x15s")
	horizon := 90 * time.Second
	sched := spec.Compile(7, horizon)
	if len(sched.Faults) != 12 {
		t.Fatalf("got %d faults, want 12", len(sched.Faults))
	}
	var prev time.Duration = -1
	for _, f := range sched.Faults {
		if f.At < prev {
			t.Fatalf("schedule not sorted: %v after %v", f.At, prev)
		}
		prev = f.At
		if f.At < horizon/10 {
			t.Errorf("fault %s before warmup window", f)
		}
		if f.At+f.Dur > horizon {
			t.Errorf("fault %s extends past horizon %v", f, horizon)
		}
	}
}

func TestFaultyConnDeterministic(t *testing.T) {
	run := func(seed int64) (corrupted, truncated int, payload []byte) {
		client, server := net.Pipe()
		defer server.Close()
		fc := NewFaultyConn(client, seed, 0.3, 0.2)
		done := make(chan []byte, 1)
		go func() {
			buf := make([]byte, 4096)
			total := 0
			for {
				n, err := server.Read(buf[total:])
				total += n
				if err != nil {
					break
				}
			}
			done <- buf[:total]
		}()
		for i := 0; i < 20; i++ {
			msg := make([]byte, 16)
			for j := range msg {
				msg[j] = byte(i)
			}
			if _, err := fc.Write(msg); err != nil {
				break
			}
		}
		fc.Close()
		payload = <-done
		corrupted, truncated = fc.Faults()
		return
	}
	c1, t1, p1 := run(99)
	c2, t2, p2 := run(99)
	if c1 != c2 || t1 != t2 || string(p1) != string(p2) {
		t.Fatalf("same seed diverged: (%d,%d,%d bytes) vs (%d,%d,%d bytes)",
			c1, t1, len(p1), c2, t2, len(p2))
	}
	if c1 == 0 && t1 == 0 {
		t.Fatalf("expected some faults at 30%%/20%% over 20 writes")
	}
}

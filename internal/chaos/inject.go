package chaos

import (
	"time"

	"cellbricks/internal/netem"
)

// Hooks binds abstract fault classes to a concrete world. Every hook is
// optional: a nil hook means the world has no such component and faults of
// that class are skipped (counted in Replay's return). Hooks run inside
// simulator events, so they must not block.
type Hooks struct {
	// LinkFlap takes the data-path link hard down (true) or back up.
	LinkFlap func(down bool)
	// LinkPause freezes the data-path link for d (held, not dropped).
	LinkPause func(d time.Duration)
	// BrokerCrash kills the broker process; BrokerRestart brings it back
	// (snapshot restore + shed window are the world's business).
	BrokerCrash   func()
	BrokerRestart func()
	// TelcoCrash kills the serving bTelco; TelcoRestart revives it.
	TelcoCrash   func()
	TelcoRestart func()
	// FrameFault sets the transit corruption/truncation probabilities;
	// called with the fault's rates at onset and zeros at the end.
	FrameFault func(corruptRate, truncRate float64)

	// Adversary behavior hooks (Byzantine bTelco misbehavior). Rate-style
	// hooks are called with the fault's rate at onset and 0 at the end;
	// boolean hooks with true/false. A world that hosts no adversary
	// leaves them nil and adversary faults are skipped like any other.

	// Overbill/Underbill set the report-distortion magnitude.
	Overbill  func(rate float64)
	Underbill func(rate float64)
	// Replay toggles stale-report replaying.
	ReportReplay func(on bool)
	// Blackhole toggles accept-then-blackhole on the data path.
	Blackhole func(on bool)
	// NASDrop sets the probability of dropping incoming NAS signaling.
	NASDrop func(rate float64)
	// HODrop toggles dropping of handover attach requests.
	HODrop func(on bool)
}

// Replay schedules every fault in the schedule onto the simulator: the
// onset hook fires at f.At and the clearing hook at f.At+f.Dur. Call it
// before sim.Run, while the virtual clock is still at zero (Sim.At panics
// on past times). It returns how many faults were actually armed — faults
// whose hook is nil are skipped.
func (sc Schedule) Replay(sim *netem.Sim, h Hooks) int {
	armed := 0
	for _, f := range sc.Faults {
		f := f
		switch f.Kind {
		case KindFlap:
			if h.LinkFlap == nil {
				continue
			}
			sim.At(f.At, func() { h.LinkFlap(true) })
			sim.At(f.At+f.Dur, func() { h.LinkFlap(false) })
		case KindPause:
			if h.LinkPause == nil {
				continue
			}
			sim.At(f.At, func() { h.LinkPause(f.Dur) })
		case KindBroker:
			if h.BrokerCrash == nil || h.BrokerRestart == nil {
				continue
			}
			sim.At(f.At, h.BrokerCrash)
			sim.At(f.At+f.Dur, h.BrokerRestart)
		case KindCrash:
			if h.TelcoCrash == nil || h.TelcoRestart == nil {
				continue
			}
			sim.At(f.At, h.TelcoCrash)
			sim.At(f.At+f.Dur, h.TelcoRestart)
		case KindCorrupt:
			if h.FrameFault == nil {
				continue
			}
			sim.At(f.At, func() { h.FrameFault(f.Rate, 0) })
			sim.At(f.At+f.Dur, func() { h.FrameFault(0, 0) })
		case KindTrunc:
			if h.FrameFault == nil {
				continue
			}
			sim.At(f.At, func() { h.FrameFault(0, f.Rate) })
			sim.At(f.At+f.Dur, func() { h.FrameFault(0, 0) })
		case KindOverbill:
			if h.Overbill == nil {
				continue
			}
			sim.At(f.At, func() { h.Overbill(f.Rate) })
			sim.At(f.At+f.Dur, func() { h.Overbill(0) })
		case KindUnderbill:
			if h.Underbill == nil {
				continue
			}
			sim.At(f.At, func() { h.Underbill(f.Rate) })
			sim.At(f.At+f.Dur, func() { h.Underbill(0) })
		case KindReplay:
			if h.ReportReplay == nil {
				continue
			}
			sim.At(f.At, func() { h.ReportReplay(true) })
			sim.At(f.At+f.Dur, func() { h.ReportReplay(false) })
		case KindBlackhole:
			if h.Blackhole == nil {
				continue
			}
			sim.At(f.At, func() { h.Blackhole(true) })
			sim.At(f.At+f.Dur, func() { h.Blackhole(false) })
		case KindNASDrop:
			if h.NASDrop == nil {
				continue
			}
			sim.At(f.At, func() { h.NASDrop(f.Rate) })
			sim.At(f.At+f.Dur, func() { h.NASDrop(0) })
		case KindHODrop:
			if h.HODrop == nil {
				continue
			}
			sim.At(f.At, func() { h.HODrop(true) })
			sim.At(f.At+f.Dur, func() { h.HODrop(false) })
		default:
			continue
		}
		armed++
	}
	return armed
}

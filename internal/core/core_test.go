package core

import (
	"strings"
	"testing"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/pki"
	"cellbricks/internal/ran"
	"cellbricks/internal/sap"
)

// buildEco wires one ecosystem with a broker and two bTelcos.
func buildEco(t *testing.T) (*Ecosystem, *Broker, *BTelco, *BTelco) {
	t.Helper()
	eco, err := NewEcosystem("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := eco.NewBroker("broker.test")
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(brk)
	t1, err := eco.NewBTelco(BTelcoConfig{ID: "coffee-shop-cell", Brokers: dir, Terms: sap.ServiceTerms{PricePerGB: 3}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := eco.NewBTelco(BTelcoConfig{ID: "mall-cell", Brokers: dir, Terms: sap.ServiceTerms{PricePerGB: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return eco, brk, t1, t2
}

func TestSubscribeAttachDetach(t *testing.T) {
	_, brk, t1, _ := buildEco(t)
	sub, err := brk.Subscribe("ue-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sub.Attach(t1)
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" {
		t.Fatal("no IP")
	}
	if err := sub.Detach(t1); err != nil {
		t.Fatal(err)
	}
}

func TestHostDrivenMobilityAcrossBTelcos(t *testing.T) {
	_, brk, t1, t2 := buildEco(t)
	sub, err := brk.Subscribe("ue-2")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := sub.Attach(t1)
	if err != nil {
		t.Fatal(err)
	}
	// Host-driven handover: detach from T1, independently attach to T2 —
	// no coordination between the providers.
	if err := sub.Detach(t1); err != nil {
		t.Fatal(err)
	}
	a2, err := sub.Attach(t2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.IP == a1.IP && t1.AGW == t2.AGW {
		t.Fatal("no fresh attachment state")
	}
	if t1.AGW.ActiveSessions() != 0 || t2.AGW.ActiveSessions() != 1 {
		t.Fatalf("sessions: t1=%d t2=%d", t1.AGW.ActiveSessions(), t2.AGW.ActiveSessions())
	}
}

func TestHonestBillingCycle(t *testing.T) {
	_, brk, t1, _ := buildEco(t)
	sub, err := brk.Subscribe("ue-3")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sub.Attach(t1)
	if err != nil {
		t.Fatal(err)
	}
	bearer := t1.AGW.UserPlane().Lookup(a.IP)
	for i := 0; i < 200; i++ {
		if bearer.Process(time.Duration(i)*5*time.Millisecond, epc.Downlink, 1400) {
			sub.Device.Meter.CountDL(1400)
		}
	}
	m, err := ReportCycle(brk, t1, sub, a.SessionID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("honest cycle flagged: %+v", m)
	}
	if s := brk.D.TelcoScore("coffee-shop-cell"); s < 0.99 {
		t.Fatalf("score %.2f", s)
	}
}

func TestMultiBrokerSingleBTelco(t *testing.T) {
	eco, err := NewEcosystem("ca")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := eco.NewBroker("broker-a")
	b2, _ := eco.NewBroker("broker-b")
	dir := NewDirectory(b1, b2)
	tel, err := eco.NewBTelco(BTelcoConfig{ID: "shared-cell", Brokers: dir})
	if err != nil {
		t.Fatal(err)
	}
	// One bTelco serves users of two brokers simultaneously
	// ("bTelcos are inherently multi-tenant").
	s1, _ := b1.Subscribe("ue-a")
	s2, _ := b2.Subscribe("ue-b")
	if _, err := s1.Attach(tel); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Attach(tel); err != nil {
		t.Fatal(err)
	}
	if tel.AGW.ActiveSessions() != 2 {
		t.Fatalf("sessions = %d", tel.AGW.ActiveSessions())
	}
}

func TestUnknownBrokerRejected(t *testing.T) {
	eco, _ := NewEcosystem("ca")
	lone, _ := eco.NewBroker("broker-lone")
	dir := NewDirectory() // empty: the bTelco knows no brokers
	tel, err := eco.NewBTelco(BTelcoConfig{ID: "cell-x", Brokers: dir})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := lone.Subscribe("ue-x")
	_, err = sub.Attach(tel)
	if err == nil || !strings.Contains(err.Error(), "unknown broker") {
		t.Fatalf("err = %v", err)
	}
}

func TestForeignCAUntrusted(t *testing.T) {
	ecoA, _ := NewEcosystem("ca-a")
	ecoB, _ := NewEcosystem("ca-b")
	brk, _ := ecoA.NewBroker("broker.a") // trusts only ca-a
	dir := NewDirectory(brk)
	// bTelco certified by a CA the broker does not trust.
	tel, err := ecoB.NewBTelco(BTelcoConfig{ID: "rogue-cell", Brokers: dir})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := brk.Subscribe("ue-y")
	if _, err := sub.Attach(tel); err == nil {
		t.Fatal("attach through untrusted-CA bTelco succeeded")
	}
}

func TestAttachThroughENB(t *testing.T) {
	_, brk, t1, _ := buildEco(t)
	enb := t1.NewENB(ran.Cell{ID: "cell-1", TelcoID: t1.State.IDT, RRCSetupDelay: 130 * time.Millisecond})
	sub, err := brk.Subscribe("enb-ue")
	if err != nil {
		t.Fatal(err)
	}
	tx := TransportVia(enb, "enb-ue")
	// Without an RRC connection the eNB refuses to relay NAS.
	if _, err := sub.Device.AttachSAP(tx, t1.State.IDT); err == nil {
		t.Fatal("NAS relayed without RRC connection")
	}
	if _, err := enb.Connect("enb-ue"); err != nil {
		t.Fatal(err)
	}
	a, err := sub.Device.AttachSAP(tx, t1.State.IDT)
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" {
		t.Fatal("no IP through eNB path")
	}
	if enb.Connected() != 1 {
		t.Fatalf("connected = %d", enb.Connected())
	}
}

func TestBaselineX2Handover(t *testing.T) {
	// The network-driven handover CellBricks removes: within one
	// operator, the session (IP, bearers, security context) survives a
	// move between eNodeBs via core rebinding.
	eco, _ := NewEcosystem("x2-ca")
	brk, _ := eco.NewBroker("broker.x2")
	dir := NewDirectory(brk)
	tel, err := eco.NewBTelco(BTelcoConfig{ID: "big-mno", Brokers: dir})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := brk.Subscribe("x2-ue")
	a, err := sub.Attach(tel)
	if err != nil {
		t.Fatal(err)
	}
	// X2 handover to a second eNB: new RAN binding, same everything else.
	if err := tel.AGW.RebindRAN(a.SessionID, "x2-ue@enb2"); err != nil {
		t.Fatal(err)
	}
	sess := tel.AGW.Session(a.SessionID)
	if sess.RANID != "x2-ue@enb2" || sess.IP != a.IP {
		t.Fatalf("session after rebind: %+v", sess)
	}
	// The security context carries over: a protected detach through the
	// new binding works (the UE's device still signs under the same
	// context, only the transport path changed).
	sub.Device.RANID = "x2-ue@enb2"
	tx := tel.Transport("x2-ue@enb2")
	if err := sub.Device.Detach(tx); err != nil {
		t.Fatal(err)
	}
	// Rebinding an inactive session fails.
	if err := tel.AGW.RebindRAN(a.SessionID, "x2-ue@enb3"); err == nil {
		t.Fatal("rebind of detached session accepted")
	}
}

func TestProvisionLegacyAndBrokerWithConfig(t *testing.T) {
	eco, err := NewEcosystem("misc-ca")
	if err != nil {
		t.Fatal(err)
	}
	cfg := broker.DefaultConfig("broker.custom", nil, pki.PublicIdentity{})
	cfg.MaxPricePerGB = 3.0
	brk, err := eco.NewBrokerWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory()
	dir.Add(brk)
	tel, err := eco.NewBTelco(BTelcoConfig{ID: "cfg-cell", Brokers: dir, Terms: sap.ServiceTerms{PricePerGB: 9.0}})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := brk.Subscribe("cfg-ue")
	// The custom price cap denies the expensive cell.
	if _, err := sub.Attach(tel); err == nil {
		t.Fatal("price-capped broker granted an expensive cell")
	}

	// Legacy provisioning helper: the device authenticates against the
	// SDB it was provisioned into.
	db := epc.NewSubscriberDB()
	dev, err := ProvisionLegacy(db, "001012223334444", "legacy-ue")
	if err != nil {
		t.Fatal(err)
	}
	agw := epc.NewAGW(epc.AGWConfig{Subscribers: sdbAdapter{db}})
	tx := func(env []byte) ([]byte, error) { return agw.HandleNAS("legacy-ue", env) }
	if _, err := dev.AttachLegacy(tx); err != nil {
		t.Fatal(err)
	}
}

type sdbAdapter struct{ db *epc.SubscriberDB }

func (a sdbAdapter) AuthInfo(imsi string) (aka.Vector, error) { return a.db.AuthInfo(imsi) }
func (a sdbAdapter) UpdateLocation(imsi string) (epc.SubscriberProfile, error) {
	return a.db.UpdateLocation(imsi)
}

func TestBTelcoConfigValidation(t *testing.T) {
	eco, _ := NewEcosystem("v-ca")
	if _, err := eco.NewBTelco(BTelcoConfig{}); err == nil {
		t.Fatal("bTelco without ID accepted")
	}
}

// Package core is the top-level CellBricks API: it composes the substrate
// packages (pki, sap, nas, epc, broker, billing, ue) into the three
// first-class entities of the architecture — Broker, BTelco, and
// Subscriber — with the provisioning glue (CA, certificates, SIM state)
// a deployment needs. The examples and the cellbricksd daemon are written
// against this package.
package core

import (
	"fmt"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/ran"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
)

// Ecosystem is the trust root shared by every participant: the certificate
// authority whose signatures brokers use to authenticate bTelcos.
type Ecosystem struct {
	CA *pki.CA
}

// NewEcosystem creates a CA-rooted ecosystem.
func NewEcosystem(name string) (*Ecosystem, error) {
	ca, err := pki.NewCA(name)
	if err != nil {
		return nil, err
	}
	return &Ecosystem{CA: ca}, nil
}

// Broker is a running CellBricks broker with its provisioning surface.
type Broker struct {
	D *broker.Brokerd
}

// NewBroker creates a broker anchored to the ecosystem's CA.
func (e *Ecosystem) NewBroker(id string) (*Broker, error) {
	key, err := pki.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	cfg := broker.DefaultConfig(id, key, e.CA.Public())
	return &Broker{D: broker.New(cfg)}, nil
}

// NewBrokerWithConfig creates a broker with a custom policy configuration.
func (e *Ecosystem) NewBrokerWithConfig(cfg broker.Config) (*Broker, error) {
	if cfg.Key == nil {
		key, err := pki.GenerateKeyPair()
		if err != nil {
			return nil, err
		}
		cfg.Key = key
	}
	cfg.Anchor = e.CA.Public()
	return &Broker{D: broker.New(cfg)}, nil
}

// Subscribe issues a SIM for a new user: the broker-issued key pair and
// the broker's public key, exactly the static state SAP requires at the
// UE. The returned Subscriber is ready to attach through any bTelco.
func (b *Broker) Subscribe(ranID string) (*Subscriber, error) {
	key, err := pki.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	idU := b.D.RegisterUser(key.Public())
	sim := &sap.UEState{IDU: idU, IDB: b.D.ID(), Key: key, BrokerPub: b.D.Public()}
	return &Subscriber{Device: ue.NewDevice(ranID, nil, sim), IDU: idU}, nil
}

// Subscriber is a provisioned CellBricks user.
type Subscriber struct {
	Device *ue.Device
	IDU    string
}

// BTelco is an access provider of any scale: a certified SAP identity, an
// access gateway, and (for the examples) an in-process attach surface.
type BTelco struct {
	State *sap.TelcoState
	AGW   *epc.AGW
}

// BTelcoConfig shapes a new provider.
type BTelcoConfig struct {
	ID         string
	Terms      sap.ServiceTerms
	Brokers    epc.BrokerDirectory
	CertTTL    time.Duration
	IPPrefix   string
	Subscriber epc.SubscriberClient // optional legacy support
}

// NewBTelco certifies and starts a provider. The only prerequisites are
// the certificate and the broker directory — no pre-established agreements
// with brokers or users, which is the point of the architecture.
func (e *Ecosystem) NewBTelco(cfg BTelcoConfig) (*BTelco, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: bTelco needs an ID")
	}
	key, err := pki.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	ttl := cfg.CertTTL
	if ttl == 0 {
		ttl = 365 * 24 * time.Hour
	}
	now := time.Now()
	cert := e.CA.Issue(cfg.ID, "btelco", key.Public(), now.Add(-time.Minute), now.Add(ttl))
	terms := cfg.Terms
	if terms.Cap.QCIs == nil {
		terms.Cap = qos.DefaultCapability()
	}
	state := &sap.TelcoState{IDT: cfg.ID, Key: key, Cert: cert, Terms: terms}
	agw := epc.NewAGW(epc.AGWConfig{
		Telco:       state,
		Brokers:     cfg.Brokers,
		Subscribers: cfg.Subscriber,
		IPPrefix:    cfg.IPPrefix,
	})
	return &BTelco{State: state, AGW: agw}, nil
}

// Transport returns a NAS transport into this bTelco for a given RAN-level
// identifier (in-process; the wire-protocol equivalent lives in
// internal/testbed.RealDeployment).
func (t *BTelco) Transport(ranID string) ue.NASTransport {
	return func(envelope []byte) ([]byte, error) {
		return t.AGW.HandleNAS(ranID, envelope)
	}
}

// NewENB attaches an eNodeB front-end (RRC admission + transparent NAS
// relay) to this bTelco's core. UEs then reach the core through
// TransportVia, paying RRC connection setup like a real radio would.
func (t *BTelco) NewENB(cell ran.Cell) *ran.ENB {
	return ran.NewENB(cell, t.AGW.HandleNAS)
}

// TransportVia returns a NAS transport that goes through an eNodeB's RRC
// layer: the UE must hold an RRC connection on that cell.
func TransportVia(enb *ran.ENB, ranID string) ue.NASTransport {
	return func(envelope []byte) ([]byte, error) {
		return enb.ForwardNAS(ranID, envelope)
	}
}

// Directory is an in-process broker directory for single- or multi-broker
// deployments.
type Directory struct {
	brokers map[string]*Broker
}

// NewDirectory builds a directory over the given brokers.
func NewDirectory(brokers ...*Broker) *Directory {
	d := &Directory{brokers: make(map[string]*Broker, len(brokers))}
	for _, b := range brokers {
		d.brokers[b.D.ID()] = b
	}
	return d
}

// Add registers another broker.
func (d *Directory) Add(b *Broker) { d.brokers[b.D.ID()] = b }

// Lookup implements epc.BrokerDirectory.
func (d *Directory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	b, ok := d.brokers[idB]
	if !ok {
		return nil, pki.PublicIdentity{}, fmt.Errorf("core: unknown broker %q", idB)
	}
	return brokerClient{b.D}, b.D.Public(), nil
}

type brokerClient struct{ d *broker.Brokerd }

func (c brokerClient) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	return c.d.HandleAuthRequest(req)
}

// Attach runs the full SAP attach of a subscriber through a bTelco and
// returns the attachment.
func (s *Subscriber) Attach(t *BTelco) (*ue.Attachment, error) {
	return s.Device.AttachSAP(t.Transport(s.Device.RANID), t.State.IDT)
}

// Detach releases the subscriber's attachment at the bTelco.
func (s *Subscriber) Detach(t *BTelco) error {
	return s.Device.Detach(t.Transport(s.Device.RANID))
}

// ReportCycle runs one verifiable-billing cycle for an attached session:
// the bTelco's user-plane counters and the UE's baseband counters both
// flow to the broker, which aligns and checks them. It returns the
// mismatch if the broker flagged one.
func ReportCycle(b *Broker, t *BTelco, s *Subscriber, sessionID uint64, rel time.Duration) (*billing.Mismatch, error) {
	telcoEnv, err := t.AGW.GenerateReport(sessionID, rel, billing.QoSMetrics{})
	if err != nil {
		return nil, err
	}
	if _, err := b.D.HandleReport(telcoEnv); err != nil {
		return nil, err
	}
	ueEnv, err := s.Device.Meter.Report(rel)
	if err != nil {
		return nil, err
	}
	return b.D.HandleReport(ueEnv)
}

// ProvisionLegacy issues a legacy SIM (shared key K) against a subscriber
// database, for dual-stack and baseline scenarios.
func ProvisionLegacy(db *epc.SubscriberDB, imsi, ranID string) (*ue.Device, error) {
	k, err := aka.NewK()
	if err != nil {
		return nil, err
	}
	db.Provision(imsi, k, epc.SubscriberProfile{QoS: qos.DefaultParams(), APN: "internet"})
	return ue.NewDevice(ranID, &aka.SIM{K: k, IMSI: imsi}, nil), nil
}

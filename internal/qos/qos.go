// Package qos models the 3GPP QoS vocabulary the SAP protocol negotiates:
// QCI classes, aggregate maximum bit rates (AMBR), and the
// capability/parameter split the paper introduces — a bTelco advertises
// what it *can* enforce (qosCap) and the broker picks specific values
// (qosInfo) that the bTelco's user plane then enforces. CellBricks
// decouples QoS policy (broker) from mechanism (bTelco).
package qos

import (
	"errors"
	"fmt"
)

// QCI is a 3GPP QoS Class Identifier. We carry the standard LTE classes.
type QCI byte

// Standardized QCI values (TS 23.203 Table 6.1.7).
const (
	QCIConversationalVoice QCI = 1 // GBR, voice
	QCIConversationalVideo QCI = 2
	QCIRealTimeGaming      QCI = 3
	QCIBufferedVideo       QCI = 4
	QCIIMSSignalling       QCI = 5
	QCIVideoTCP            QCI = 6
	QCIVoiceVideoGaming    QCI = 7
	QCIWebTCPPremium       QCI = 8
	QCIWebTCPDefault       QCI = 9
)

// Profile is the standardized behaviour of a QCI.
type Profile struct {
	QCI         QCI
	GBR         bool // guaranteed bit rate class
	Priority    int
	DelayBudget int     // ms
	LossRate    float64 // packet error loss rate target
}

var profiles = map[QCI]Profile{
	QCIConversationalVoice: {QCIConversationalVoice, true, 2, 100, 1e-2},
	QCIConversationalVideo: {QCIConversationalVideo, true, 4, 150, 1e-3},
	QCIRealTimeGaming:      {QCIRealTimeGaming, true, 3, 50, 1e-3},
	QCIBufferedVideo:       {QCIBufferedVideo, true, 5, 300, 1e-6},
	QCIIMSSignalling:       {QCIIMSSignalling, false, 1, 100, 1e-6},
	QCIVideoTCP:            {QCIVideoTCP, false, 6, 300, 1e-6},
	QCIVoiceVideoGaming:    {QCIVoiceVideoGaming, false, 7, 100, 1e-3},
	QCIWebTCPPremium:       {QCIWebTCPPremium, false, 8, 300, 1e-6},
	QCIWebTCPDefault:       {QCIWebTCPDefault, false, 9, 300, 1e-6},
}

// Lookup returns the standardized profile for a QCI.
func Lookup(q QCI) (Profile, bool) {
	p, ok := profiles[q]
	return p, ok
}

// Capability is qosCap: what a bTelco's user plane can enforce, advertised
// to the broker inside the SAP authReqT.
type Capability struct {
	QCIs         []QCI  // supported classes
	MaxDLAmbrBps uint64 // ceiling the bTelco can provision
	MaxULAmbrBps uint64
	GBRSupported bool
}

// Supports reports whether the capability covers a QCI.
func (c Capability) Supports(q QCI) bool {
	for _, v := range c.QCIs {
		if v == q {
			return true
		}
	}
	return false
}

// Params is qosInfo: the concrete values the broker instructs the bTelco
// to enforce for one UE, carried back inside authRespT.
type Params struct {
	QCI       QCI
	DLAmbrBps uint64
	ULAmbrBps uint64
}

// Errors from validation.
var (
	ErrUnknownQCI  = errors.New("qos: unknown QCI")
	ErrUnsupported = errors.New("qos: bTelco capability does not cover request")
)

// Validate checks params against the standard table and a capability.
func (p Params) Validate(c Capability) error {
	if _, ok := Lookup(p.QCI); !ok {
		return fmt.Errorf("%w: %d", ErrUnknownQCI, p.QCI)
	}
	if !c.Supports(p.QCI) {
		return fmt.Errorf("%w: QCI %d", ErrUnsupported, p.QCI)
	}
	if prof, _ := Lookup(p.QCI); prof.GBR && !c.GBRSupported {
		return fmt.Errorf("%w: GBR class %d without GBR support", ErrUnsupported, p.QCI)
	}
	if c.MaxDLAmbrBps > 0 && p.DLAmbrBps > c.MaxDLAmbrBps {
		return fmt.Errorf("%w: DL AMBR %d > max %d", ErrUnsupported, p.DLAmbrBps, c.MaxDLAmbrBps)
	}
	if c.MaxULAmbrBps > 0 && p.ULAmbrBps > c.MaxULAmbrBps {
		return fmt.Errorf("%w: UL AMBR %d > max %d", ErrUnsupported, p.ULAmbrBps, c.MaxULAmbrBps)
	}
	return nil
}

// Clamp returns params reduced to fit a capability (broker-side policy
// helper: ask for the best the bTelco can deliver).
func (p Params) Clamp(c Capability) Params {
	out := p
	if !c.Supports(out.QCI) {
		out.QCI = QCIWebTCPDefault
		// A capability that doesn't even include QCI 9 gets whatever its
		// first advertised class is.
		if !c.Supports(out.QCI) && len(c.QCIs) > 0 {
			out.QCI = c.QCIs[0]
		}
	}
	if c.MaxDLAmbrBps > 0 && out.DLAmbrBps > c.MaxDLAmbrBps {
		out.DLAmbrBps = c.MaxDLAmbrBps
	}
	if c.MaxULAmbrBps > 0 && out.ULAmbrBps > c.MaxULAmbrBps {
		out.ULAmbrBps = c.MaxULAmbrBps
	}
	return out
}

// DefaultCapability is a typical small-cell bTelco advertisement.
func DefaultCapability() Capability {
	return Capability{
		QCIs:         []QCI{QCIConversationalVoice, QCIVideoTCP, QCIWebTCPPremium, QCIWebTCPDefault},
		MaxDLAmbrBps: 100e6,
		MaxULAmbrBps: 50e6,
		GBRSupported: true,
	}
}

// DefaultParams is a typical broker selection: best-effort web class with
// a 20/10 Mbps AMBR.
func DefaultParams() Params {
	return Params{QCI: QCIWebTCPDefault, DLAmbrBps: 20e6, ULAmbrBps: 10e6}
}

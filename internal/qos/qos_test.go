package qos

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLookupStandardTable(t *testing.T) {
	for q := QCI(1); q <= 9; q++ {
		p, ok := Lookup(q)
		if !ok {
			t.Fatalf("QCI %d missing", q)
		}
		if p.QCI != q {
			t.Fatalf("profile QCI %d != %d", p.QCI, q)
		}
		if p.DelayBudget <= 0 || p.LossRate <= 0 {
			t.Fatalf("QCI %d has degenerate profile %+v", q, p)
		}
	}
	if _, ok := Lookup(99); ok {
		t.Fatal("QCI 99 should not exist")
	}
	// GBR split per the standard: 1-4 GBR, 5-9 non-GBR.
	for q := QCI(1); q <= 4; q++ {
		if p, _ := Lookup(q); !p.GBR {
			t.Fatalf("QCI %d should be GBR", q)
		}
	}
	for q := QCI(5); q <= 9; q++ {
		if p, _ := Lookup(q); p.GBR {
			t.Fatalf("QCI %d should be non-GBR", q)
		}
	}
}

func TestValidate(t *testing.T) {
	cap := DefaultCapability()
	if err := DefaultParams().Validate(cap); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	// Unknown QCI.
	if err := (Params{QCI: 42}).Validate(cap); !errors.Is(err, ErrUnknownQCI) {
		t.Fatalf("err=%v, want ErrUnknownQCI", err)
	}
	// Unsupported QCI.
	if err := (Params{QCI: QCIRealTimeGaming}).Validate(cap); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err=%v, want ErrUnsupported", err)
	}
	// AMBR over capability.
	p := DefaultParams()
	p.DLAmbrBps = cap.MaxDLAmbrBps + 1
	if err := p.Validate(cap); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err=%v, want ErrUnsupported", err)
	}
	// GBR class without GBR support.
	noGBR := cap
	noGBR.GBRSupported = false
	if err := (Params{QCI: QCIConversationalVoice, DLAmbrBps: 1e6, ULAmbrBps: 1e6}).Validate(noGBR); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err=%v, want ErrUnsupported (GBR)", err)
	}
}

func TestClampFitsCapability(t *testing.T) {
	cap := Capability{QCIs: []QCI{QCIWebTCPDefault}, MaxDLAmbrBps: 5e6, MaxULAmbrBps: 1e6}
	p := Params{QCI: QCIConversationalVoice, DLAmbrBps: 50e6, ULAmbrBps: 50e6}
	got := p.Clamp(cap)
	if err := got.Validate(cap); err != nil {
		t.Fatalf("clamped params still invalid: %v (%+v)", err, got)
	}
	if got.DLAmbrBps != 5e6 || got.ULAmbrBps != 1e6 || got.QCI != QCIWebTCPDefault {
		t.Fatalf("clamp = %+v", got)
	}
}

func TestClampFallsBackToFirstAdvertised(t *testing.T) {
	cap := Capability{QCIs: []QCI{QCIIMSSignalling}, MaxDLAmbrBps: 1e6, MaxULAmbrBps: 1e6}
	got := Params{QCI: QCIWebTCPDefault, DLAmbrBps: 1e6, ULAmbrBps: 1e6}.Clamp(cap)
	if got.QCI != QCIIMSSignalling {
		t.Fatalf("clamp QCI = %d, want fallback to first advertised", got.QCI)
	}
}

func TestSupports(t *testing.T) {
	cap := DefaultCapability()
	if !cap.Supports(QCIWebTCPDefault) {
		t.Fatal("default capability must support QCI 9")
	}
	if cap.Supports(QCIRealTimeGaming) {
		t.Fatal("default capability should not support QCI 3")
	}
}

// Property: Clamp is idempotent and always yields Validate-clean params
// for any capability that advertises at least one known QCI.
func TestPropertyClampValidates(t *testing.T) {
	f := func(qci byte, dl, ul uint32, maxDL, maxUL uint32) bool {
		cap := Capability{
			QCIs:         []QCI{QCIWebTCPDefault, QCIVideoTCP},
			MaxDLAmbrBps: uint64(maxDL) + 1,
			MaxULAmbrBps: uint64(maxUL) + 1,
		}
		p := Params{QCI: QCI(qci%12) + 1, DLAmbrBps: uint64(dl), ULAmbrBps: uint64(ul)}
		c1 := p.Clamp(cap)
		if c1.Validate(cap) != nil {
			// Unknown QCIs beyond 9 can slip through Clamp only if the
			// fallback also fails — that would be a bug.
			_, known := Lookup(c1.QCI)
			return !known && false
		}
		return c1 == c1.Clamp(cap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

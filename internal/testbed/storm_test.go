package testbed

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"cellbricks/internal/broker"
)

// stormTestConfig is small enough for CI yet busy enough to exercise
// every path: the spike overruns the admission rate (sheds, retries),
// sessions live across report cycles (billing), and arrivals re-attach
// to cells they hold tickets for (resumes in optimized mode).
func stormTestConfig(serial bool, shards int) StormConfig {
	return StormConfig{
		Seed:          7,
		Duration:      6 * time.Second,
		Groups:        2,
		CellsPerGroup: 2,
		UEsPerGroup:   3,
		BaseRate:      20,
		Spike:         6,
		SpikeAt:       3 * time.Second,
		SpikeDur:      time.Second,
		Window:        5 * time.Millisecond,
		ReportEvery:   time.Second,
		Admission: broker.AdmissionConfig{
			Rate: 30, Burst: 10, MaxQueue: 32, RetryAfter: 500 * time.Millisecond,
		},
		Serial: serial,
		Shards: shards,
	}
}

func stormHash(t *testing.T, cfg StormConfig) (string, StormResult) {
	t.Helper()
	res, err := RunStorm(cfg)
	if err != nil {
		t.Fatalf("storm serial=%v shards=%d: %v", cfg.Serial, cfg.Shards, err)
	}
	sum := sha256.Sum256([]byte(res.Render()))
	return hex.EncodeToString(sum[:]), res
}

// The storm's contract: the rendered result is byte-identical across
// shard counts AND across the serial/optimized execution modes. The CI
// hash gate reruns this cross-product through cbbench.
func TestStormByteIdenticalAcrossShardsAndModes(t *testing.T) {
	ref, base := stormHash(t, stormTestConfig(false, 1))
	for _, tc := range []struct {
		name   string
		serial bool
		shards int
	}{
		{"optimized-2shards", false, 2},
		{"serial-1shard", true, 1},
		{"serial-2shards", true, 2},
	} {
		h, res := stormHash(t, stormTestConfig(tc.serial, tc.shards))
		if h != ref {
			t.Errorf("%s: render hash %s != reference %s\nreference:\n%s\ngot:\n%s",
				tc.name, h, ref, base.Render(), res.Render())
		}
	}
}

// Sanity: the workload actually exercises the machinery it claims to.
func TestStormExercisesStormPath(t *testing.T) {
	_, res := stormHash(t, stormTestConfig(false, 2))
	if res.Arrivals == 0 || res.Attaches == 0 {
		t.Fatalf("inert storm: arrivals=%d attaches=%d", res.Arrivals, res.Attaches)
	}
	if res.Sheds == 0 || res.Retries == 0 {
		t.Errorf("spike never overran admission: sheds=%d retries=%d", res.Sheds, res.Retries)
	}
	if res.SpikeArrivals == 0 {
		t.Errorf("no arrivals classified into the spike window")
	}
	if res.Resumes == 0 {
		t.Errorf("optimized mode never used the resume fast path")
	}
	if res.CacheHits == 0 {
		t.Errorf("auth cache never hit: misses=%d", res.CacheMisses)
	}
	if res.Denied != 0 {
		t.Errorf("honest storm saw %d denials", res.Denied)
	}
	if res.Mismatches != 0 {
		t.Errorf("honest billing produced %d mismatches", res.Mismatches)
	}
	if res.Sessions == 0 || res.PaidUnits <= 0 {
		t.Errorf("billing inert: sessions=%d paid=%f", res.Sessions, res.PaidUnits)
	}
	if res.BatchFlushes == 0 || res.BatchItems == 0 {
		t.Errorf("batcher inert: flushes=%d items=%d", res.BatchFlushes, res.BatchItems)
	}

	_, ser := stormHash(t, stormTestConfig(true, 1))
	if ser.Resumes != 0 {
		t.Errorf("serial mode used the resume fast path %d times", ser.Resumes)
	}
	if ser.CacheHits != 0 {
		t.Errorf("serial mode hit the auth cache %d times", ser.CacheHits)
	}
}

// A giving-up UE must come back on its next arrival, and the retry
// totals must account exactly for every attempt beyond the first.
func TestStormAttemptAccounting(t *testing.T) {
	_, res := stormHash(t, stormTestConfig(false, 1))
	// Every attempt is the first try of an arrival or a scheduled retry
	// (a retry whose UE was overtaken by a newer arrival never runs, so
	// the sum is an upper bound).
	if res.Attempts < res.Arrivals || res.Attempts > res.Arrivals+res.Retries {
		t.Errorf("attempts=%d outside [arrivals=%d, arrivals+retries=%d]",
			res.Attempts, res.Arrivals, res.Arrivals+res.Retries)
	}
	// Grants the UE adopted cannot exceed broker grants.
	if res.Attaches > res.Grants {
		t.Errorf("adopted %d > granted %d", res.Attaches, res.Grants)
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Errorf("availability out of range: %f", res.Availability)
	}
}

package testbed

import (
	"fmt"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/mobility"
)

// RunWebFallback runs the web workload under CellBricks with *plain TCP*
// and application-layer recovery — the paper's incremental-deployment
// strategy while MPTCP/QUIC deploy: "fallback to TCP and rely on the
// application and/or L7 protocols (e.g. ... HTTP range headers) to
// efficiently restart failed connections."
//
// Each handover kills the TCP connection; the loader redials once the new
// attachment completes (d + one handshake round trip) and resumes the
// current page with a ranged request (one extra application round trip),
// keeping the bytes already received.
func RunWebFallback(sc Scenario) apps.WebResult {
	sc = sc.Defaults()
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)

	f := &fallbackLoader{
		sim: sim,
		op:  op,
		sc:  sc,
		cfg: apps.DefaultWebConfig(),
	}
	f.connect("web-ue-0")
	for _, at := range sc.Route.Handovers(sim.Rand(), sc.Night, sc.Duration) {
		at := at
		sim.At(at, func() { f.handover() })
	}
	f.end = sim.Now() + sc.Duration
	f.startPage()
	sim.RunUntil(f.end)
	f.done = true

	res := apps.WebResult{LoadTimes: f.loads, Pages: len(f.loads)}
	if len(f.loads) > 0 {
		var sum time.Duration
		for _, d := range f.loads {
			sum += d
		}
		res.AvgLoad = sum / time.Duration(len(f.loads))
	}
	return res
}

// fallbackLoader is the resumable page loader over throwaway TCP
// connections.
type fallbackLoader struct {
	sim *netem.Sim
	op  *mobility.Operator
	sc  Scenario
	cfg apps.WebConfig

	conn  *mptcp.Conn
	ueIdx int
	ueIP  string
	gen   int // connection generation, to ignore stale callbacks
	loads []time.Duration
	end   time.Duration
	done  bool

	// Page state.
	pageActive bool
	pageStart  time.Duration
	round      int
	roundLeft  int // bytes still owed in the current round
	target     uint64
	inFlight   bool
}

func (f *fallbackLoader) connect(ip string) {
	f.ueIP = ip
	f.sim.Connect(ServerIP, ip, f.op.CellularLink(f.sc.Route, f.sc.Night))
	cfg := mptcp.Config{Multipath: false}
	f.conn = mptcp.NewConn(f.sim, ServerIP, ip, cfg)
	f.gen++
	gen := f.gen
	f.conn.OnDeliver = func(int) { f.onBytes(gen) }
}

// handover kills the connection; after the attach completes the loader
// redials and resumes the interrupted round with a ranged request.
func (f *fallbackLoader) handover() {
	if f.done {
		return
	}
	// Bytes still missing from the in-flight round.
	remaining := 0
	if f.inFlight {
		remaining = int(f.target) - int(f.conn.Delivered())
		if remaining < 0 {
			remaining = 0
		}
	}
	f.conn.AddrInvalidated() // plain TCP: the connection dies
	f.sim.Disconnect(ServerIP, f.ueIP)
	f.ueIdx++
	newIP := fmt.Sprintf("web-ue-%d", f.ueIdx)
	// d (attach) + TCP handshake (one round trip on the new path).
	redialAt := f.sc.AttachLatency + 2*f.sc.Route.Delay
	rem := remaining
	inFlight := f.inFlight
	f.inFlight = false
	f.sim.After(redialAt, func() {
		if f.done {
			return
		}
		f.connect(newIP)
		switch {
		case inFlight:
			// L7 restart: re-request only the missing range, costing one
			// more application round trip.
			f.requestBytes(rem)
		case f.pageActive:
			// The handover hit between requests (a think window whose
			// timer died with the old connection): re-issue the round.
			f.requestBytes(f.cfg.PageBytes / f.cfg.Rounds)
		default:
			// Between pages: the gap timer is still pending; nothing to
			// resume.
		}
	})
}

func (f *fallbackLoader) startPage() {
	if f.done || f.sim.Now() >= f.end {
		return
	}
	f.pageStart = f.sim.Now()
	f.pageActive = true
	f.round = 0
	f.nextRound()
}

func (f *fallbackLoader) nextRound() {
	if f.done || f.sim.Now() >= f.end {
		return
	}
	f.round++
	f.requestBytes(f.cfg.PageBytes / f.cfg.Rounds)
}

// requestBytes issues one application request after a think round trip.
func (f *fallbackLoader) requestBytes(n int) {
	rtt := f.conn.SRTT()
	if rtt < 30*time.Millisecond {
		rtt = 30 * time.Millisecond
	}
	gen := f.gen
	f.sim.After(rtt, func() {
		if f.done || gen != f.gen {
			return
		}
		f.roundLeft = n
		f.target = f.conn.Delivered() + uint64(n)
		f.inFlight = true
		f.conn.Write(n)
	})
}

func (f *fallbackLoader) onBytes(gen int) {
	if f.done || gen != f.gen || !f.inFlight || f.conn.Delivered() < f.target {
		return
	}
	f.inFlight = false
	if f.round < f.cfg.Rounds {
		f.nextRound()
		return
	}
	f.pageActive = false
	f.loads = append(f.loads, f.sim.Now()-f.pageStart)
	f.sim.After(f.cfg.Gap, f.startPage)
}

// RunTransportComparison contrasts the host-transport options the paper
// discusses for CellBricks mobility: deployed MPTCP (500 ms wait),
// modified MPTCP (wait removed), QUIC connection migration, and plain TCP
// with L7 restart — all on the same drive.
type TransportComparison struct {
	Label   string
	WebLoad time.Duration
	Pages   int
}

// RunTransportComparisonAll runs the web workload under each transport.
// The four arms share nothing but the scenario seed, so they fan out
// across the runner; the result order is fixed regardless of scheduling.
func RunTransportComparisonAll(seed int64, dur time.Duration, r Runner) []TransportComparison {
	if dur == 0 {
		dur = 8 * time.Minute
	}
	base := Scenario{Route: mobility.Downtown, Night: true, Arch: ArchCellBricks, Seed: seed, Duration: dur}

	type arm struct {
		label string
		run   func() apps.WebResult
	}
	mptcpMod := base
	mptcpMod.MPTCPWait = time.Nanosecond
	quic := base
	quic.Protocol = mptcp.ProtoQUIC
	quic.MPTCPWait = time.Nanosecond
	arms := []arm{
		{"MPTCP (500ms wait)", func() apps.WebResult { return RunWeb(base) }},
		{"MPTCP (wait removed)", func() apps.WebResult { return RunWeb(mptcpMod) }},
		{"QUIC migration", func() apps.WebResult { return RunWeb(quic) }},
		{"TCP + L7 restart", func() apps.WebResult { return RunWebFallback(base) }},
	}
	return runUnits(r, len(arms), func(i int) TransportComparison {
		res := arms[i].run()
		return TransportComparison{Label: arms[i].label, WebLoad: res.AvgLoad, Pages: res.Pages}
	})
}

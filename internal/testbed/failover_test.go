package testbed

import (
	"testing"
	"time"

	"cellbricks/internal/chaos"
)

// TestFailoverDeterministicReplay is the acceptance property of the chaos
// harness: same (seed, spec, config) → byte-identical summaries, every
// fault recovered.
func TestFailoverDeterministicReplay(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,pause=1x800ms,broker=1x10s,crash=1x6s,corrupt=1x5s@0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec}
	r1, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	s1, s2 := r1.Render(), r2.Render()
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", s1, s2)
	}
	if r1.Unrecovered != 0 {
		t.Fatalf("unrecovered faults:\n%s", s1)
	}
	other, err := RunFailover(FailoverConfig{Seed: 8, Duration: 75 * time.Second, Spec: spec})
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if other.Render() == s1 {
		t.Fatalf("different seeds produced identical summaries")
	}
}

// TestFailoverBrokerCrashRecovery pins the broker availability story: the
// crash destroys in-memory state, the restart restores the last snapshot
// and sheds load, and the UE's retry machine re-attaches within the
// configured backoff budget.
func TestFailoverBrokerCrashRecovery(t *testing.T) {
	spec, err := chaos.ParseSpec("broker=1x10s")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FailoverConfig{Seed: 11, Duration: 60 * time.Second, Spec: spec}
	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}
	if res.BrokerRestores != 1 {
		t.Fatalf("broker restores = %d, want 1\n%s", res.BrokerRestores, res.Render())
	}
	if res.Snapshots == 0 {
		t.Fatalf("no snapshots taken")
	}
	var out *FaultOutcome
	for i := range res.Outcomes {
		if res.Outcomes[i].Kind == chaos.KindBroker {
			out = &res.Outcomes[i]
		}
	}
	if out == nil {
		t.Fatalf("no broker fault in outcomes:\n%s", res.Render())
	}
	if !out.Recovered {
		t.Fatalf("broker fault unrecovered:\n%s", res.Render())
	}
	// The outage window provably contains an attach storm (forced
	// handover at +1 s), so recovery is bounded by outage + shed window +
	// the retry policy's worst-case backoff budget.
	bound := out.Dur + time.Second + res.Config.ShedFor + res.Config.Retry.Budget()
	if out.Recovery > bound {
		t.Fatalf("recovery %v exceeds budget %v\n%s", out.Recovery, bound, res.Render())
	}
	if res.AttachRetries == 0 {
		t.Fatalf("expected attach retries during the outage:\n%s", res.Render())
	}
}

// TestFailoverTelcoFallback: killing the serving bTelco must push the UE
// to the secondary within a couple of backoffs, not a full outage.
func TestFailoverTelcoFallback(t *testing.T) {
	spec, err := chaos.ParseSpec("crash=1x8s")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFailover(FailoverConfig{Seed: 3, Duration: 60 * time.Second, Spec: spec})
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}
	if res.Fallbacks == 0 {
		t.Fatalf("expected a bTelco fallback:\n%s", res.Render())
	}
	for _, o := range res.Outcomes {
		if o.Kind == chaos.KindCrash {
			if !o.Recovered {
				t.Fatalf("crash fault unrecovered:\n%s", res.Render())
			}
			// Fallback attach should land well before the crashed bTelco
			// returns.
			if o.Recovery >= o.Dur {
				t.Fatalf("recovery %v not faster than bTelco restart %v\n%s", o.Recovery, o.Dur, res.Render())
			}
		}
	}
}

package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/chaos"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
)

// This file is the Byzantine soak: a Jepsen-style experiment in which a
// seeded fraction of bTelcos actively misbehaves — over/under-reporting
// usage, replaying stale signed reports, accepting attaches and then
// blackholing the data path, dropping NAS signaling and handover attaches
// — while the full detection-to-response loop runs against them: the
// billing verifier's mismatch/replay checks and UE watchdog evidence feed
// reputation, reputation feeds the broker's dynamic quarantine, quarantine
// revokes live sessions and denies re-attach, and UEs steer their retry
// state machines away from quarantined cells. After the run a set of
// invariants is checked: every adversary quarantined, no honest bTelco
// touched, every UE converged to an honest cell, overbilling bounded by
// the verifier's tolerance, and the attach-availability SLO held.
//
// The world shards (netem.World): UEs and cells are partitioned into
// groups, group g living entirely on shard g mod K; only control traffic
// (attaches, billing reports, watchdog evidence, quarantine revocations)
// crosses shards, over per-group gateway links to a broker endpoint on
// shard 0. Three rules make the output byte-identical for any K:
//
//   - All broker state is mutated only inside shard-0 packet handlers, so
//     the canonical cross-shard arrival order fully serializes it.
//   - No entity ever draws from a shard's rng; every UE, cell adversary
//     and fault schedule carries its own seeded source.
//   - Every cross-shard send is placed on its sender's private time
//     lattice (whole milliseconds plus a per-entity microsecond phase) and
//     every gateway link gets a distinct prime-offset delay, so no two
//     packets from different senders ever arrive at one endpoint at the
//     same instant — the tie that would otherwise order by shard number.

// ByzantineConfig parameterizes one Byzantine soak run.
type ByzantineConfig struct {
	Seed     int64
	Duration time.Duration // emulated horizon (default 60 s)

	// Topology: Groups fault-isolated groups of CellsPerGroup bTelco
	// cells and UEsPerGroup subscribers each. UEs attach and roam only
	// within their group (defaults 4 / 2 / 6 = 8 cells, 24 UEs).
	Groups        int
	CellsPerGroup int
	UEsPerGroup   int

	// AdversarialFrac is the fraction of all cells that run the adversary
	// schedule (default 0.25). Adversaries are spread across groups,
	// capped so every group keeps at least one honest cell — the escape
	// hatch the convergence invariant needs.
	AdversarialFrac float64
	// AdvSpec is the chaos spec each adversary compiles with its own seed
	// (default DefaultByzantineSpec: one window of each behavior).
	AdvSpec chaos.Spec

	CellBps        float64       // per-cell air-interface capacity (default 20 Mbps)
	ReportEvery    time.Duration // billing report cadence (default 3 s)
	WatchdogWindow time.Duration // UE no-goodput window (default 4 s)
	// AvailabilitySLO is the minimum mean fraction of the horizon a UE
	// must hold an attachment (default 0.9).
	AvailabilitySLO float64

	// Retry tunes the UE attach state machine (default: 12 attempts,
	// 20% jitter, 2 s max backoff).
	Retry ue.RetryPolicy

	// Shards is the netem.World shard count (default 1); output is
	// byte-identical for any value.
	Shards int
	// Tracer, when set, records quarantine transitions, watchdog
	// evidence, billing verdicts and SLO crossings against the simulator
	// clock. Only shard-0 handlers emit, so traced runs render
	// identically.
	Tracer *obs.Tracer
	// DisableSLOSignal cuts the feedback edge from the windowed SLO
	// engine into the broker's quarantine: breaches are still evaluated,
	// rendered and traced, but a per-cell overbilling breach no longer
	// files ReportSLOBreach evidence. The SLO engine itself always runs
	// (independent of Tracer), so tracing on/off stays byte-identical
	// while the detection signal remains deterministic.
	DisableSLOSignal bool
}

// DefaultByzantineSpec is the adversary behavior schedule: one seeded
// window of each Byzantine behavior. The long full-rate overbilling
// window guarantees every adversary eventually produces quarantinable
// billing evidence whatever else its schedule draws.
const DefaultByzantineSpec = "overbill=1x40s@1,underbill=1x12s@0.5,replay=1x10s,blackhole=1x8s,nasdrop=1x12s@0.5,hodrop=1x15s"

// Defaults fills zero fields.
func (c ByzantineConfig) Defaults() ByzantineConfig {
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Groups <= 0 {
		c.Groups = 4
	}
	if c.CellsPerGroup <= 0 {
		c.CellsPerGroup = 2
	}
	if c.UEsPerGroup <= 0 {
		c.UEsPerGroup = 6
	}
	if c.AdversarialFrac == 0 {
		c.AdversarialFrac = 0.25
	}
	if c.AdversarialFrac < 0 {
		c.AdversarialFrac = 0
	}
	if c.AdvSpec.Empty() {
		spec, err := chaos.ParseSpec(DefaultByzantineSpec)
		if err != nil {
			panic("testbed: DefaultByzantineSpec does not parse: " + err.Error())
		}
		c.AdvSpec = spec
	}
	if c.CellBps == 0 {
		c.CellBps = 20e6
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 3 * time.Second
	}
	if c.WatchdogWindow == 0 {
		c.WatchdogWindow = 4 * time.Second
	}
	if c.AvailabilitySLO == 0 {
		c.AvailabilitySLO = 0.9
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 12
	}
	if c.Retry.MaxBackoff == 0 {
		c.Retry.MaxBackoff = 2 * time.Second
	}
	if c.Retry.JitterFrac == 0 {
		c.Retry.JitterFrac = 0.2
	}
	c.Retry = c.Retry.WithDefaults()
	if c.Shards < 1 {
		c.Shards = 1
	}
	return c
}

// ByzCellStat is the per-cell row of the soak result.
type ByzCellStat struct {
	ID          string
	Adversarial bool
	Score       float64
	Quarantined bool
	Strikes     int
	Sessions    int
	Mismatches  int // billing mismatches attributed at ingest
	Replays     int // replayed reports rejected at ingest
	Watchdog    int // watchdog evidence received by the broker
	MeterLies   int // reports emitted with a distorted counter
	NASDrops    int
	HODrops     int
}

// ByzQuarEvent is one quarantine transition on the broker clock.
type ByzQuarEvent struct {
	At      time.Duration
	Telco   string
	Entered bool
	Score   float64
}

// ByzInvariant is one post-run check. Margin is the normalized distance
// to the invariant's threshold — positive means headroom, negative means
// violation depth — so a run reports *how close* it came, not just
// pass/fail.
type ByzInvariant struct {
	Name   string
	OK     bool
	Margin float64
	Detail string
}

// ByzantineResult is the outcome of one soak run.
type ByzantineResult struct {
	Config      ByzantineConfig
	Cells       []ByzCellStat
	Adversaries int

	Attaches      int // successful attaches (incl. initial)
	Attempts      int
	Denied        int // broker denials seen by UEs
	NASDrops      int // attach attempts eaten by adversarial NAS drop
	GiveUps       int
	Kicks         int // sessions revoked by quarantine entry
	Roams         int
	WatchdogTrips int

	Sessions      int
	PaidUnits     float64
	VerifiedBytes uint64
	TrueBytes     uint64
	BlackholedUEs int

	Availability float64
	SLO          []obs.SLOReport // windowed SLO summaries, declaration order
	Quarantine   []ByzQuarEvent
	Invariants   []ByzInvariant
	Violations   int
}

const (
	byzBrokerName   = "byz-broker"
	byzCtrlSize     = 600
	byzNASTimeout   = time.Second
	byzAttachLat    = 31680 * time.Microsecond
	byzWatchdogTick = time.Second
	// byzSLOPhase is the sub-millisecond phase of the 1 Hz SLO engine
	// tick on shard 0. UE lattice phases are whole microseconds (<= 999
	// µs) and gateway offsets add g*1009 ns, so no packet arrival can
	// land on a half-microsecond instant for any plausible group count —
	// the tick never ties with a handler.
	byzSLOPhase = 999500 * time.Nanosecond
)

var errByzNASTimeout = errors.New("testbed: NAS attach timed out")

// byzMsg is a control-plane packet payload: a closure executed on the
// destination endpoint's shard.
type byzMsg struct{ fn func() }

// latticeAt returns the first instant strictly after base on the entity's
// private lattice: whole milliseconds plus its sub-millisecond phase.
func latticeAt(base, phase time.Duration) time.Duration {
	t := base/time.Millisecond*time.Millisecond + phase
	for t <= base {
		t += time.Millisecond
	}
	return t
}

type byzSession struct {
	ue    *byzUE
	cell  *byzCell
	uref  string
	start time.Duration
	live  bool
	link  *netem.Link
	dl    uint64 // honest delivered-byte counter (shared tap with the UE meter)
	seq   uint32
	last  *billing.SealedReport // previous sealed telco report, for replay
}

type byzCell struct {
	grp    *byzGroup
	idx    int // index within the group
	global int
	idT    string
	telco  *sap.TelcoState
	adv    *chaos.Adversary // nil for honest cells
	dl, ul *netem.Shaper

	sessions []*byzSession
	wdLocal  int             // watchdog trips charged to this cell UE-side
	slo      *obs.SLOTracker // per-cell overbilling ratio window
}

type byzUE struct {
	grp    *byzGroup
	idx    int
	global int
	phase  time.Duration
	rng    *rand.Rand

	st    *sap.UEState
	meter *ue.BasebandMeter
	conn  *mptcp.Conn
	wd    *ue.Watchdog
	srvIP string
	curIP string
	incar int

	sess      *byzSession
	attachSeq int
	fsm       *ue.AttachFSM
	prefer    int
	handover  bool

	badLocal  []bool
	lastScore []float64
	stickCi   int // cell to re-try after a NAS timeout (3GPP T3411 idiom)
	stickLeft int

	blackholed    bool
	attachedSince time.Duration
	attachedDur   time.Duration
	stormStart    time.Duration // when the current attach storm began
}

type byzGroup struct {
	w      *byzWorld
	idx    int
	sim    *netem.Sim
	gwName string
	cells  []*byzCell
	ues    []*byzUE

	// Shard-local tallies, merged after the run.
	attempts, attaches, denied int
	nasDrops, giveups          int
	kicks, roams, wdTrips      int
}

type byzWorld struct {
	cfg       ByzantineConfig
	world     *netem.World
	sim0      *netem.Sim
	groups    []*byzGroup
	brk       *broker.Brokerd
	brokerPub pki.PublicIdentity

	// Shard-0 state: written only by broker-endpoint handlers.
	telcoLoc   map[string]*byzCell
	mmPerCell  []int
	rplPerCell []int
	wdPerCell  []int
	quarEvents []ByzQuarEvent

	// Windowed SLO engine: shard-0 state like the broker. Observations
	// happen only inside shard-0 handlers and the 1 Hz tick runs at a
	// lattice phase no other event can occupy, so evaluation order — and
	// therefore every breach crossing — is identical for any shard count.
	slo         *obs.SLOEngine
	sloAvail    *obs.SLOTracker // attach availability, ratio-min
	sloAttach   *obs.SLOTracker // attach-grant latency, p99
	sloOverbill *obs.SLOTracker // fleet-wide claimed/honest billing ratio

	runErr error
}

func (w *byzWorld) fail(err error) {
	if w.runErr == nil && err != nil {
		w.runErr = err
	}
}

// toBroker ships a closure to the broker endpoint over group g's gateway
// link; it executes on shard 0 in canonical arrival order.
func (w *byzWorld) toBroker(g int, fn func()) {
	grp := w.groups[g]
	pkt := grp.sim.GetPacket()
	pkt.Src, pkt.Dst, pkt.Size = grp.gwName, byzBrokerName, byzCtrlSize
	pkt.Payload = byzMsg{fn}
	grp.sim.Send(pkt)
}

// toGroup ships a closure from the broker back to group g's gateway; it
// executes on g's shard.
func (w *byzWorld) toGroup(g int, fn func()) {
	grp := w.groups[g]
	pkt := w.sim0.GetPacket()
	pkt.Src, pkt.Dst, pkt.Size = byzBrokerName, grp.gwName, byzCtrlSize
	pkt.Payload = byzMsg{fn}
	w.sim0.Send(pkt)
}

func byzSeed(tag byte, idx int) []byte {
	b := bytes.Repeat([]byte{tag}, 32)
	b[0], b[1] = byte(idx), byte(idx>>8)
	return b
}

// perGroupAdversaries spreads round(frac*total) adversaries over the
// groups, capped at cells-1 per group so every group keeps an honest cell.
func perGroupAdversaries(groups, cells int, frac float64) []int {
	want := int(math.Round(frac * float64(groups*cells)))
	out := make([]int, groups)
	for g := 0; g < groups; g++ {
		n := want / groups
		if g < want%groups {
			n++
		}
		if n > cells-1 {
			n = cells - 1
		}
		out[g] = n
	}
	return out
}

func newByzWorld(cfg ByzantineConfig) (*byzWorld, error) {
	world := netem.NewWorld(cfg.Seed, cfg.Shards)
	w := &byzWorld{
		cfg:      cfg,
		world:    world,
		sim0:     world.Shard(0),
		telcoLoc: make(map[string]*byzCell),
	}
	cfg.Tracer.SetClock(w.sim0.Now)

	// Control plane: seeded principals, fixed certificate epoch.
	epoch := time.Unix(1_760_000_000, 0)
	ca, err := pki.NewCAFromSeed("byz-ca", byzSeed(101, 0))
	if err != nil {
		return nil, err
	}
	brokerKey, err := pki.KeyPairFromSeed(byzSeed(102, 0))
	if err != nil {
		return nil, err
	}
	bcfg := broker.DefaultConfig(byzBrokerName, brokerKey, ca.Public())
	bcfg.Now = func() time.Time { return epoch }
	// Quarantine is the sole admission gate under test; a fast EWMA and a
	// generous in-flight slack keep honest skew invisible while brazen
	// misbehavior crosses the threshold within a couple of report cycles.
	bcfg.MinTelcoScore = 0
	bcfg.VerifierConfig = billing.VerifierConfig{
		Epsilon:           0.05,
		Alpha:             0.25,
		SuspectTelcoCount: 100, // UEs here are honest; don't suspect the kicked
		SlackBytes:        32 << 10,
		MaxMismatches:     512,
	}
	w.brk = broker.New(bcfg)
	w.brokerPub = brokerKey.Public()
	w.brk.EnableQuarantine(broker.QuarantineConfig{
		EnterBelow: 0.7,
		ExitAbove:  0.9,
		// Longer than the horizon: a quarantined adversary stays blocked
		// through the end of the run (the trial path is unit-tested).
		Probation: 2 * cfg.Duration,
	}, w.sim0.Now)

	// Windowed SLOs, evaluated at 1 Hz on the broker's shard. Crossings
	// become trace instants and counters; a per-cell overbilling breach
	// additionally files broker evidence (the optional detection signal),
	// so the SLO engine is part of the closed loop, not just reporting.
	obWindow := 4 * cfg.ReportEvery
	obBound := 1 + bcfg.VerifierConfig.Epsilon
	sloEnter := obs.Default().Counter("slo_breach_enter_total", "SLO windows crossing into breach")
	sloExit := obs.Default().Counter("slo_breach_exit_total", "SLO windows recovering from breach")
	w.slo = obs.NewSLOEngine()
	w.slo.OnCross(func(t *obs.SLOTracker, st obs.SLOStatus, entered bool) {
		name, ctr := "breach-exit", sloExit
		if entered {
			name, ctr = "breach-enter", sloEnter
		}
		ctr.Add(1)
		cfg.Tracer.Event("slo", name, map[string]string{
			"slo":    t.Spec.Name,
			"value":  fmt.Sprintf("%.4f", st.Value),
			"margin": fmt.Sprintf("%+.4f", st.Margin),
			"burn":   fmt.Sprintf("%.2f", st.Burn),
		})
		if entered && !cfg.DisableSLOSignal {
			if idT := strings.TrimPrefix(t.Spec.Name, "overbill:"); idT != t.Spec.Name {
				score := w.brk.ReportSLOBreach(idT, 1)
				cfg.Tracer.Event("slo", "signal", map[string]string{
					"telco": idT, "score": fmt.Sprintf("%.3f", score),
				})
			}
		}
	})
	w.sloAvail = w.slo.Declare(obs.SLOSpec{
		Name: "availability", Kind: obs.SLORatioMin,
		Objective: cfg.AvailabilitySLO, Window: 10 * time.Second, Buckets: 10,
	})
	w.sloAttach = w.slo.Declare(obs.SLOSpec{
		Name: "attach-p99", Kind: obs.SLOLatencyP99,
		Target: 2 * time.Second, Window: 15 * time.Second, Buckets: 15,
	})
	w.sloOverbill = w.slo.Declare(obs.SLOSpec{
		Name: "overbill-all", Kind: obs.SLORatioMax,
		Objective: obBound, Window: obWindow, Buckets: 12,
	})

	G, C, U := cfg.Groups, cfg.CellsPerGroup, cfg.UEsPerGroup
	nUE := G * U
	advPlan := perGroupAdversaries(G, C, cfg.AdversarialFrac)
	w.mmPerCell = make([]int, G*C)
	w.rplPerCell = make([]int, G*C)
	w.wdPerCell = make([]int, G*C)

	w.world.Place(byzBrokerName, 0)
	w.world.Register(byzBrokerName, func(p *netem.Packet) {
		if m, ok := p.Payload.(byzMsg); ok {
			m.fn()
		}
	})

	// Quarantine entry revokes the cell's live sessions: the broker tells
	// the owning group's gateway, which kicks every attached UE into a
	// re-attach away from the cell. The callback runs under the broker's
	// lock inside a shard-0 handler — it only records and sends.
	w.brk.SetQuarantineNotify(func(idT string, entered bool, score float64) {
		now := w.sim0.Now()
		w.quarEvents = append(w.quarEvents, ByzQuarEvent{At: now, Telco: idT, Entered: entered, Score: score})
		name := "exit"
		if entered {
			name = "enter"
		}
		cfg.Tracer.Event("quarantine", name, map[string]string{
			"telco": idT, "score": fmt.Sprintf("%.3f", score),
		})
		if cell := w.telcoLoc[idT]; entered && cell != nil {
			ci := cell.idx
			w.toGroup(cell.grp.idx, func() { cell.grp.kickCell(ci, score) })
		}
	})

	for g := 0; g < G; g++ {
		shard := g % cfg.Shards
		grp := &byzGroup{
			w:      w,
			idx:    g,
			sim:    world.Shard(shard),
			gwName: fmt.Sprintf("byz-gw-%d", g),
		}
		w.groups = append(w.groups, grp)
		w.world.Place(grp.gwName, shard)
		w.world.Register(grp.gwName, func(p *netem.Packet) {
			if m, ok := p.Payload.(byzMsg); ok {
				m.fn()
			}
		})
		// The gateway delays are distinct primes-offset values so control
		// packets from different groups never tie at the broker.
		w.world.Connect(grp.gwName, byzBrokerName, &netem.Link{
			Delay: 10*time.Millisecond + time.Duration(g)*1009*time.Nanosecond,
		})

		for c := 0; c < C; c++ {
			global := g*C + c
			key, err := pki.KeyPairFromSeed(byzSeed(110, global))
			if err != nil {
				return nil, err
			}
			idT := fmt.Sprintf("byz-telco-%d-%d", g, c)
			cert := ca.Issue(idT, "btelco", key.Public(), epoch.Add(-time.Hour), epoch.Add(24*time.Hour))
			cell := &byzCell{
				grp:    grp,
				idx:    c,
				global: global,
				idT:    idT,
				telco: &sap.TelcoState{
					IDT: idT, Key: key, Cert: cert,
					Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
				},
				dl: netem.NewShaper(netem.ConstantRate(cfg.CellBps), 256*1024, 0),
				ul: netem.NewShaper(netem.ConstantRate(cfg.CellBps), 256*1024, 0),
			}
			cell.dl.MaxQueueTime = 300 * time.Millisecond
			cell.ul.MaxQueueTime = 300 * time.Millisecond
			if c < advPlan[g] {
				cell.adv = chaos.NewAdversary(cfg.Seed + 7000 + int64(global))
				sched := cfg.AdvSpec.Compile(cfg.Seed+1000+int64(global), cfg.Duration)
				hooks := cell.adv.Hooks()
				inner := hooks.Blackhole
				hooks.Blackhole = func(on bool) {
					inner(on)
					cell.setBlackhole(on)
				}
				sched.Replay(grp.sim, hooks)
			}
			cell.slo = w.slo.Declare(obs.SLOSpec{
				Name: "overbill:" + idT, Kind: obs.SLORatioMax,
				Objective: obBound, Window: obWindow, Buckets: 12,
			})
			grp.cells = append(grp.cells, cell)
			w.telcoLoc[idT] = cell
		}

		for j := 0; j < U; j++ {
			global := g*U + j
			key, err := pki.KeyPairFromSeed(byzSeed(120, global))
			if err != nil {
				return nil, err
			}
			idU := w.brk.RegisterUser(key.Public())
			u := &byzUE{
				grp:    grp,
				idx:    j,
				global: global,
				phase:  time.Duration(global+1) * time.Microsecond,
				rng:    rand.New(rand.NewSource(cfg.Seed + 5000 + int64(global))),
				st: &sap.UEState{
					IDU: idU, IDB: byzBrokerName, Key: key, BrokerPub: w.brokerPub,
				},
				wd:        ue.NewWatchdog(cfg.WatchdogWindow),
				srvIP:     fmt.Sprintf("byz-srv-%d-%d", g, j),
				badLocal:  make([]bool, C),
				lastScore: make([]float64, C),
			}
			u.meter = ue.NewBasebandMeter(key, w.brokerPub)
			for i := range u.lastScore {
				u.lastScore[i] = 1
			}
			grp.ues = append(grp.ues, u)
		}
	}
	if nUE+1 >= 1000 {
		return nil, fmt.Errorf("testbed: byzantine soak supports at most 999 UEs (lattice phases), got %d", nUE)
	}

	// Initial attaches run synchronously before the clock starts: UE j
	// joins cell j mod C of its group, so every cell serves sessions from
	// t=0 and every adversary has evidence-producing traffic.
	for _, grp := range w.groups {
		for _, u := range grp.ues {
			if err := u.initialAttach(grp.cells[u.idx%C]); err != nil {
				return nil, fmt.Errorf("testbed: byzantine initial attach ue %d: %w", u.global, err)
			}
		}
	}

	// Per-UE chains: watchdog ticks, a backlogged sender, and recurring
	// roams — handovers to the next cell, staggered across UEs and
	// repeating every third of the horizon. The churn matters: it keeps
	// every cell fed with evidence-producing sessions (an adversary whose
	// subscribers all walked away would otherwise go quiet and evade
	// quarantine) and it exercises the handover-drop behavior.
	for _, grp := range w.groups {
		for _, u := range grp.ues {
			u := u
			grp.sim.At(latticeAt(byzWatchdogTick, u.phase), u.watchdogTick)
			conn := u.conn
			sim := grp.sim
			var topUp func()
			topUp = func() {
				conn.Write(4 << 20)
				sim.After(time.Second, topUp)
			}
			topUp()
			roamAt := cfg.Duration/4 + cfg.Duration/4*time.Duration(u.global)/time.Duration(nUE)
			grp.sim.At(latticeAt(roamAt, u.phase), u.roamTick)
		}
	}

	// SLO evaluation chain: 1 Hz on shard 0 at the engine's private phase.
	var sloTick func()
	sloTick = func() {
		w.slo.Tick(w.sim0.Now())
		if next := w.sim0.Now() + byzWatchdogTick; next < cfg.Duration {
			w.sim0.At(next, sloTick)
		}
	}
	w.sim0.At(byzWatchdogTick+byzSLOPhase, sloTick)
	return w, nil
}

// newAccessLink builds the UE's radio link through this cell's shared
// airtime shapers; an actively blackholing cell hands out a dead link
// (accept-then-blackhole).
func (c *byzCell) newAccessLink(srvIP, ueIP string) *netem.Link {
	l := &netem.Link{Delay: 20 * time.Millisecond, MaxQueue: 2 * time.Second}
	if srvIP < ueIP {
		l.ShaperAB, l.ShaperBA = c.dl, c.ul
	} else {
		l.ShaperAB, l.ShaperBA = c.ul, c.dl
	}
	l.Down = c.adv.Blackholing()
	return l
}

// setBlackhole applies the data-path half of the blackhole toggle: every
// live session's radio link goes dark (or recovers), while the control
// plane keeps answering politely.
func (c *byzCell) setBlackhole(on bool) {
	for _, s := range c.sessions {
		if s.live {
			s.link.Down = on
			if on {
				s.ue.blackholed = true
			}
		}
	}
}

// attachTo runs the control-plane half of an attach success on the UE:
// session bookkeeping, meter binding, and the report chain.
func (u *byzUE) attachTo(cell *byzCell, uref string, link *netem.Link) {
	now := u.grp.sim.Now()
	s := &byzSession{ue: u, cell: cell, uref: uref, start: now, live: true, link: link}
	cell.sessions = append(cell.sessions, s)
	u.sess = s
	u.attachedSince = now
	u.meter.StartSession()
	u.meter.BindSession(uref)
	if cell.adv.Blackholing() {
		u.blackholed = true
	}
	u.wd.Arm(now, u.conn.Delivered())
	u.grp.sim.At(latticeAt(now+u.grp.w.cfg.ReportEvery, u.phase), func() { u.reportTick(s) })
}

func (u *byzUE) initialAttach(cell *byzCell) error {
	grp := u.grp
	u.curIP = fmt.Sprintf("byz-ue-%d-%d-0", grp.idx, u.idx)
	link := cell.newAccessLink(u.srvIP, u.curIP)
	grp.sim.Connect(u.srvIP, u.curIP, link)
	u.conn = mptcp.NewConn(grp.sim, u.srvIP, u.curIP, mptcp.Config{
		Multipath: true, AddrWorkWait: 500 * time.Millisecond, Timeout: 60 * time.Second,
	})
	prev := u.conn.OnDeliver
	u.conn.OnDeliver = func(n int) {
		if prev != nil {
			prev(n)
		}
		if n <= 0 {
			return
		}
		// One tap feeds both meters: the UE baseband counter and the
		// cell's per-session counter see identical honest values, so any
		// reported divergence is a lie, not skew.
		u.meter.CountDL(n)
		if s := u.sess; s != nil {
			s.dl += uint64(n)
		}
	}

	reqU, pending, err := u.st.NewAttachRequest(cell.idT)
	if err != nil {
		return err
	}
	reqT, err := cell.telco.ForwardRequest(reqU)
	if err != nil {
		return err
	}
	resp, err := u.grp.w.brk.HandleAuthRequest(reqT)
	if err != nil {
		return err
	}
	grant, respU, err := cell.telco.HandleResponse(u.grp.w.brokerPub, resp)
	if err != nil {
		return err
	}
	if _, _, err := u.st.HandleResponse(pending, respU); err != nil {
		return err
	}
	grp.attempts++
	grp.attaches++
	u.lastScore[cell.idx] = resp.TelcoScore
	u.attachTo(cell, grant.URef, link)
	return nil
}

// detach tears the current session down: billing keeps the session record
// for settlement, the data path is disconnected, the watchdog disarmed.
func (u *byzUE) detach() {
	s := u.sess
	if s == nil {
		return
	}
	now := u.grp.sim.Now()
	s.live = false
	u.sess = nil
	u.attachedDur += now - u.attachedSince
	u.wd.Disarm()
	u.conn.AddrInvalidated()
	u.grp.sim.Disconnect(u.srvIP, u.curIP)
}

// startAttach launches the retry state machine preferring group cell
// `prefer`, steering around locally-bad and low-score cells.
func (u *byzUE) startAttach(prefer int, handover bool) {
	u.attachSeq++
	u.prefer, u.handover = prefer, handover
	u.stormStart = u.grp.sim.Now()
	u.stickLeft = 0
	u.fsm = ue.NewAttachFSM(u.grp.w.cfg.Retry, len(u.grp.cells), u.rng)
	u.fsm.SetAvoid(func(i int) bool {
		ci := (u.prefer + i) % len(u.grp.cells)
		return u.badLocal[ci] || u.lastScore[ci] < 0.7
	})
	u.attempt(u.attachSeq)
}

func (u *byzUE) attempt(seq int) {
	w := u.grp.w
	if seq != u.attachSeq || w.runErr != nil {
		return
	}
	ci := (u.prefer + u.fsm.Candidate()) % len(u.grp.cells)
	if u.stickLeft > 0 {
		ci = u.stickCi
	}
	cell := u.grp.cells[ci]
	u.grp.attempts++
	// Adversarial NAS handling happens at the cell, before anything
	// reaches the broker: the UE only ever sees a timeout. As real UEs
	// do (T3411), one timed-out attach is re-tried on the same cell
	// before reselecting, and a failed handover falls back to a plain
	// attach — so a drop-happy adversary cannot bounce every newcomer
	// and starve itself of the sessions whose billing would expose it.
	if cell.adv.DropNAS() || cell.adv.DropHandover(u.handover) {
		u.grp.nasDrops++
		if u.stickLeft > 0 {
			u.stickLeft--
		} else {
			u.stickCi, u.stickLeft = ci, 1
		}
		u.handover = false
		u.failAttach(seq, errByzNASTimeout, byzNASTimeout)
		return
	}
	u.stickLeft = 0
	reqU, pending, err := u.st.NewAttachRequest(cell.idT)
	if err != nil {
		w.fail(err)
		return
	}
	reqT, err := cell.telco.ForwardRequest(reqU)
	if err != nil {
		w.fail(err)
		return
	}
	g := u.grp.idx
	stormStart := u.stormStart
	w.toBroker(g, func() {
		resp, err := w.brk.HandleAuthRequest(reqT)
		if err == nil && resp.Granted {
			// Attach-latency SLO sample: storm start to broker grant, on
			// the broker clock (stormStart was captured on the group
			// shard before the send — no cross-shard read).
			now0 := w.sim0.Now()
			w.sloAttach.ObserveDuration(now0, now0-stormStart)
		}
		w.toGroup(g, func() {
			if err != nil {
				u.failAttach(seq, err, 0)
				return
			}
			u.finishAttach(seq, ci, pending, resp)
		})
	})
}

func (u *byzUE) failAttach(seq int, err error, extra time.Duration) {
	if seq != u.attachSeq {
		return
	}
	delay, giveUp := u.fsm.Fail(err)
	if giveUp {
		u.grp.giveups++
		// Budget exhausted: cool off, then start a fresh machine.
		u.after(time.Second, func() {
			if seq == u.attachSeq {
				u.startAttach(u.prefer, u.handover)
			}
		})
		return
	}
	u.after(extra+delay, func() { u.attempt(seq) })
}

// after schedules fn on this UE's private time lattice, so its
// cross-shard sends can never tie with another entity's.
func (u *byzUE) after(d time.Duration, fn func()) {
	u.grp.sim.At(latticeAt(u.grp.sim.Now()+d, u.phase), fn)
}

func (u *byzUE) finishAttach(seq, ci int, pending *sap.PendingAttach, resp *sap.AuthResp) {
	if seq != u.attachSeq {
		return
	}
	cell := u.grp.cells[ci]
	// Reputation rides every SAP reply; remember it for steering.
	u.lastScore[ci] = resp.TelcoScore
	grant, respU, err := cell.telco.HandleResponse(u.grp.w.brokerPub, resp)
	if err != nil {
		u.grp.denied++
		u.failAttach(seq, err, 0)
		return
	}
	if _, _, err := u.st.HandleResponse(pending, respU); err != nil {
		u.grp.w.fail(err)
		return
	}
	u.grp.attaches++
	u.incar++
	newIP := fmt.Sprintf("byz-ue-%d-%d-%d", u.grp.idx, u.idx, u.incar)
	link := cell.newAccessLink(u.srvIP, newIP)
	u.grp.sim.Connect(u.srvIP, newIP, link)
	u.curIP = newIP
	u.attachTo(cell, grant.URef, link)
	conn, sim := u.conn, u.grp.sim
	s := u.sess
	sim.After(byzAttachLat, func() {
		if u.sess == s {
			conn.AddrAvailable(newIP)
		}
	})
}

// reportTick emits the aligned report pair for session s: the UE's sealed
// baseband report and the bTelco's — distorted or replayed when the cell's
// adversary schedule says so. Both ride one control packet, so the broker
// always ingests UE-then-telco per cycle.
func (u *byzUE) reportTick(s *byzSession) {
	w := u.grp.w
	if u.sess != s || w.runErr != nil {
		return
	}
	cell := s.cell
	now := u.grp.sim.Now()
	rel := now - s.start
	ueEnv, err := u.meter.Report(rel)
	if err != nil {
		w.fail(err)
		return
	}
	s.seq++
	tr := &billing.Report{
		SessionRef: s.uref,
		Reporter:   billing.ReporterTelco,
		Seq:        s.seq,
		Rel:        rel,
		DLBytes:    cell.adv.MeterBytes(s.dl),
	}
	tEnv, err := billing.Seal(tr, cell.telco.Key, w.brokerPub)
	if err != nil {
		w.fail(err)
		return
	}
	claimed := tr.DLBytes
	replayed := false
	if cell.adv.ReplayReport() && s.last != nil {
		tEnv = s.last
		replayed = true
	} else {
		s.last = tEnv
	}
	global := cell.global
	idT := cell.idT
	honest := s.dl
	cellSLO := cell.slo
	w.toBroker(u.grp.idx, func() {
		if _, err := w.brk.HandleReport(ueEnv); err != nil {
			w.fail(err)
			return
		}
		mm, err := w.brk.HandleReport(tEnv)
		switch {
		case mm != nil:
			w.mmPerCell[global]++
			w.cfg.Tracer.Event("billing", "mismatch", map[string]string{
				"telco": idT, "seq": strconv.Itoa(int(mm.Seq)),
			})
		case errors.Is(err, billing.ErrReplayedReport):
			w.rplPerCell[global]++
			w.cfg.Tracer.Event("billing", "replay", map[string]string{"telco": idT})
		case err != nil:
			w.fail(err)
		}
		// Overbilling SLO sample: the cell's claimed cumulative bytes
		// against the honest tap, per report cycle. Replayed reports are
		// skipped (the broker rejected the claim outright) and so are
		// cycles with no traffic yet; an honest cell contributes exactly
		// 1.0, so only a lying meter can push a window past 1+epsilon.
		if !replayed && honest > 0 {
			now0 := w.sim0.Now()
			w.sloOverbill.ObserveRatio(now0, float64(claimed), float64(honest))
			cellSLO.ObserveRatio(now0, float64(claimed), float64(honest))
		}
	})
	u.grp.sim.At(latticeAt(now+w.cfg.ReportEvery, u.phase), func() { u.reportTick(s) })
}

// watchdogTick is the UE's 1 Hz no-goodput check. A trip files evidence
// with the broker and immediately re-attaches away from the cell.
func (u *byzUE) watchdogTick() {
	w := u.grp.w
	if w.runErr != nil {
		return
	}
	now := u.grp.sim.Now()
	// Availability SLO sample: attached-or-not at the tick instant,
	// shipped to the shard-0 tracker (1 = attached). Sampled before the
	// trip logic so a tripping tick still counts the window it wasted.
	attached := 0.0
	if u.sess != nil {
		attached = 1
	}
	w.toBroker(u.grp.idx, func() {
		w.sloAvail.ObserveRatio(w.sim0.Now(), attached, 1)
	})
	if s := u.sess; s != nil && u.wd.Observe(now, u.conn.Delivered()) {
		u.grp.wdTrips++
		ci := s.cell.idx
		s.cell.wdLocal++
		u.badLocal[ci] = true
		idT := s.cell.idT
		global := s.cell.global
		w.toBroker(u.grp.idx, func() {
			score := w.brk.ReportWatchdog(idT, 1)
			w.wdPerCell[global]++
			w.cfg.Tracer.Event("watchdog", "evidence", map[string]string{
				"telco": idT, "score": fmt.Sprintf("%.3f", score),
			})
		})
		u.detach()
		u.startAttach((ci+1)%len(u.grp.cells), false)
	}
	u.grp.sim.At(latticeAt(now+byzWatchdogTick, u.phase), u.watchdogTick)
}

// roamTick is the UE's recurring mobility event: a handover to the next
// cell of its group (skipped while mid-storm). The chain stops in the
// last 15% of the horizon so the run ends settled, not mid-handover.
func (u *byzUE) roamTick() {
	w := u.grp.w
	if w.runErr != nil {
		return
	}
	if u.sess != nil {
		cur := u.sess.cell.idx
		u.grp.roams++
		u.detach()
		u.startAttach((cur+1)%len(u.grp.cells), true)
	}
	next := u.grp.sim.Now() + w.cfg.Duration/3
	if next < w.cfg.Duration*17/20 {
		u.grp.sim.At(latticeAt(next, u.phase), u.roamTick)
	}
}

// kickCell revokes every live session on group cell ci: the broker
// quarantined its bTelco, so attached UEs are detached and re-attach
// elsewhere (the broker denies the quarantined cell anyway).
func (grp *byzGroup) kickCell(ci int, score float64) {
	cell := grp.cells[ci]
	for _, u := range grp.ues {
		if u.sess != nil && u.sess.cell == cell {
			grp.kicks++
			u.badLocal[ci] = true
			u.lastScore[ci] = score
			u.detach()
			u.startAttach((ci+1)%len(grp.cells), false)
		}
	}
}

// collect builds the result after the world has run to the horizon.
func (w *byzWorld) collect() ByzantineResult {
	cfg := w.cfg
	res := ByzantineResult{Config: cfg, Quarantine: w.quarEvents}

	eps := 0.05
	slack := float64(32 << 10)
	var availSum float64
	var overbillBad []string
	maxOBRatio := 0.0 // worst paid/bound over settled sessions

	for _, grp := range w.groups {
		res.Attempts += grp.attempts
		res.Attaches += grp.attaches
		res.Denied += grp.denied
		res.NASDrops += grp.nasDrops
		res.GiveUps += grp.giveups
		res.Kicks += grp.kicks
		res.Roams += grp.roams
		res.WatchdogTrips += grp.wdTrips
		for _, u := range grp.ues {
			dur := u.attachedDur
			if u.sess != nil {
				dur += cfg.Duration - u.attachedSince
			}
			availSum += float64(dur) / float64(cfg.Duration)
			if u.blackholed {
				res.BlackholedUEs++
			}
		}
		for _, cell := range grp.cells {
			stat := ByzCellStat{
				ID:          cell.idT,
				Adversarial: cell.adv != nil,
				Score:       w.brk.TelcoScore(cell.idT),
				Quarantined: w.brk.Quarantined(cell.idT),
				Sessions:    len(cell.sessions),
				Mismatches:  w.mmPerCell[cell.global],
				Replays:     w.rplPerCell[cell.global],
				Watchdog:    w.wdPerCell[cell.global],
			}
			if e, ok := w.brk.QuarantineInfo(cell.idT); ok {
				stat.Strikes = e.Strikes
			}
			if cell.adv != nil {
				res.Adversaries++
				stat.MeterLies = cell.adv.MeterLies
				stat.NASDrops = cell.adv.NASDropped
				stat.HODrops = cell.adv.HandoffDrops
			}
			res.Cells = append(res.Cells, stat)

			for _, s := range cell.sessions {
				res.Sessions++
				res.TrueBytes += s.dl
				if s.seq == 0 {
					continue // died before its first report cycle
				}
				st, err := w.brk.SettleSession(s.uref, cfg.ReportEvery)
				if err != nil {
					continue
				}
				res.VerifiedBytes += st.VerifiedBytes
				res.PaidUnits += st.Amount
				bound := float64(s.dl)*(1+eps) + slack + 1
				if ratio := float64(st.VerifiedBytes) / bound; ratio > maxOBRatio {
					maxOBRatio = ratio
				}
				if float64(st.VerifiedBytes) > bound {
					overbillBad = append(overbillBad, fmt.Sprintf("%s paid %d > bound %.0f (true %d)",
						cell.idT, st.VerifiedBytes, bound, s.dl))
				}
			}
		}
	}
	res.Availability = availSum / float64(len(w.groups)*cfg.UEsPerGroup)
	res.SLO = w.slo.Report()

	// Invariants, each with a normalized margin (headroom when positive,
	// violation depth when negative).
	inv := func(name string, ok bool, margin float64, detail string) {
		res.Invariants = append(res.Invariants, ByzInvariant{Name: name, OK: ok, Margin: margin, Detail: detail})
		if !ok {
			res.Violations++
		}
	}

	var advFree, honestDirty, onAdv, detached []string
	maxAdvScore, minHonestScore := 0.0, 1.0
	for _, st := range res.Cells {
		if st.Adversarial {
			if st.Score > maxAdvScore {
				maxAdvScore = st.Score
			}
			if !st.Quarantined {
				advFree = append(advFree, st.ID)
			}
		} else {
			if st.Score < minHonestScore {
				minHonestScore = st.Score
			}
			if st.Quarantined || st.Strikes > 0 || st.Mismatches > 0 || st.Replays > 0 {
				honestDirty = append(honestDirty, st.ID)
			}
		}
	}
	for _, grp := range w.groups {
		for _, u := range grp.ues {
			switch {
			case u.sess == nil:
				detached = append(detached, fmt.Sprintf("ue-%d", u.global))
			case u.sess.cell.adv != nil:
				onAdv = append(onAdv, fmt.Sprintf("ue-%d@%s", u.global, u.sess.cell.idT))
			}
		}
	}
	nUE := len(w.groups) * cfg.UEsPerGroup
	converged := float64(nUE-len(onAdv)-len(detached)) / float64(nUE)
	// Margins: the quarantine entry threshold (0.7) anchors the score
	// invariants — how far the worst adversary sits below it, and the
	// worst honest cell above it. Overbilling uses worst paid/bound;
	// availability its distance to the SLO floor.
	inv("adversaries-quarantined",
		len(advFree) == 0, 0.7-maxAdvScore,
		fmt.Sprintf("%d/%d quarantined%s", res.Adversaries-len(advFree), res.Adversaries, byzList(advFree)))
	inv("honest-untouched",
		len(honestDirty) == 0, minHonestScore-0.7,
		fmt.Sprintf("%d honest cells clean%s", len(res.Cells)-res.Adversaries-len(honestDirty), byzList(honestDirty)))
	inv("ues-converged-honest",
		len(onAdv) == 0 && len(detached) == 0, converged-1,
		fmt.Sprintf("%d UEs attached to honest cells%s%s",
			nUE-len(onAdv)-len(detached), byzList(onAdv), byzList(detached)))
	inv("overbilling-bounded",
		len(overbillBad) == 0, 1-maxOBRatio,
		fmt.Sprintf("paid %d vs true %d bytes%s", res.VerifiedBytes, res.TrueBytes, byzList(overbillBad)))
	inv("availability-slo",
		res.Availability >= cfg.AvailabilitySLO, res.Availability-cfg.AvailabilitySLO,
		fmt.Sprintf("%.4f >= %.2f", res.Availability, cfg.AvailabilitySLO))
	return res
}

func byzList(items []string) string {
	if len(items) == 0 {
		return ""
	}
	return "; offenders: " + strings.Join(items, ", ")
}

// RunByzantine runs the soak and checks its invariants. The error reports
// only harness failures; invariant violations are in the result.
func RunByzantine(cfg ByzantineConfig) (ByzantineResult, error) {
	cfg = cfg.Defaults()
	w, err := newByzWorld(cfg)
	if err != nil {
		return ByzantineResult{Config: cfg}, err
	}
	w.world.RunUntil(cfg.Duration)
	if w.runErr != nil {
		return ByzantineResult{Config: cfg}, fmt.Errorf("testbed: byzantine run: %w", w.runErr)
	}
	return w.collect(), nil
}

// Render produces the deterministic summary: every value derives from
// virtual time and seeded randomness, never from wall clock, map order or
// crypto material — the byte-identity goldens depend on it.
func (r ByzantineResult) Render() string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "byzantine seed=%d dur=%v groups=%d cells/grp=%d ues/grp=%d frac=%.2f shards=any\n",
		c.Seed, c.Duration, c.Groups, c.CellsPerGroup, c.UEsPerGroup, c.AdversarialFrac)
	fmt.Fprintf(&b, "spec=%q report=%v watchdog=%v\n", c.AdvSpec.String(), c.ReportEvery, c.WatchdogWindow)
	fmt.Fprintf(&b, "%-16s %-6s %6s %5s %7s %5s %4s %4s %4s %5s %5s %4s\n",
		"cell", "role", "score", "quar", "strikes", "sess", "mm", "rpl", "wd", "lies", "nasX", "hoX")
	for _, s := range r.Cells {
		role, quar := "honest", "-"
		if s.Adversarial {
			role = "adv"
		}
		if s.Quarantined {
			quar = "YES"
		}
		fmt.Fprintf(&b, "%-16s %-6s %6.3f %5s %7d %5d %4d %4d %4d %5d %5d %4d\n",
			s.ID, role, s.Score, quar, s.Strikes, s.Sessions, s.Mismatches, s.Replays,
			s.Watchdog, s.MeterLies, s.NASDrops, s.HODrops)
	}
	fmt.Fprintf(&b, "attaches=%d attempts=%d denied=%d nasdrops=%d giveups=%d kicks=%d roams=%d wd_trips=%d\n",
		r.Attaches, r.Attempts, r.Denied, r.NASDrops, r.GiveUps, r.Kicks, r.Roams, r.WatchdogTrips)
	fmt.Fprintf(&b, "billing: sessions=%d paid=%.6f units verified=%d true=%d bytes blackholed_ues=%d\n",
		r.Sessions, r.PaidUnits, r.VerifiedBytes, r.TrueBytes, r.BlackholedUEs)
	fmt.Fprintf(&b, "availability=%.4f\n", r.Availability)
	b.WriteString("slo:\n")
	for _, s := range r.SLO {
		fmt.Fprintf(&b, "  %-24s kind=%-11s last=%.4f worst_margin=%+.4f max_burn=%.2f breaches=%d evals=%d\n",
			s.Name, s.Kind, s.LastValue, s.WorstMargin, s.MaxBurn, s.Breaches, s.Evals)
	}
	b.WriteString("quarantine timeline:\n")
	for _, e := range r.Quarantine {
		dir := "exit"
		if e.Entered {
			dir = "enter"
		}
		fmt.Fprintf(&b, "  t=%-14v %-5s %-16s score=%.3f\n", e.At, dir, e.Telco, e.Score)
	}
	b.WriteString("invariants:\n")
	for _, iv := range r.Invariants {
		verdict := "PASS"
		if !iv.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %s %-24s margin=%+.4f %s\n", verdict, iv.Name, iv.Margin, iv.Detail)
	}
	fmt.Fprintf(&b, "violations=%d\n", r.Violations)
	return b.String()
}

package testbed

import (
	"bytes"
	"fmt"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
)

// Arch selects the architecture under test.
type Arch string

// Architectures.
const (
	ArchBaseline   Arch = "BL" // unmodified Magma: EPS-AKA, 2 S6A round trips
	ArchCellBricks Arch = "CB" // CellBricks: SAP, 1 broker round trip
)

// Placement is where the SubscriberDB / brokerd runs relative to the AGW
// (Fig. 7's x-axis). OneWay is the network one-way delay.
type Placement struct {
	Name   string
	OneWay time.Duration
}

// The three placements of Fig. 7, calibrated to the paper's measured
// totals (us-west BL 36.85 ms, us-east BL 166.48 ms).
var (
	PlacementLocal  = Placement{Name: "local", OneWay: 100 * time.Microsecond}
	PlacementUSWest = Placement{Name: "us-west-1", OneWay: 2550 * time.Microsecond}
	PlacementUSEast = Placement{Name: "us-east-1", OneWay: 35 * time.Millisecond}
)

// Placements lists Fig. 7's x-axis in order.
func Placements() []Placement { return []Placement{PlacementLocal, PlacementUSWest, PlacementUSEast} }

// Static per-module processing costs, calibrated to the paper's local
// breakdown ("attachment request processing at the AGW and Brokerd
// accounts for about 70% of the total request latency (≈20 ms)"); the
// measured wall time of this implementation's real crypto is added on
// top at run time.
const (
	costUE       = 3200 * time.Microsecond
	costENB      = 2100 * time.Microsecond
	costAGWBase  = 13900 * time.Microsecond
	costAGWSAP   = 14400 * time.Microsecond
	costSDBVisit = 3400 * time.Microsecond // per S6A request (AIR, ULR)
	costBrokerd  = 7500 * time.Microsecond
)

// Module labels in the breakdown.
const (
	SpanUE      = "ue"
	SpanENB     = "enb"
	SpanAGW     = "agw"
	SpanSDB     = "sdb"
	SpanBrokerd = "brokerd"
	SpanOther   = "other" // network transfer time (AGW <-> cloud)
)

// AttachSample is one measured attachment.
type AttachSample struct {
	Total time.Duration
	Spans map[string]time.Duration
}

// AttachBenchResult aggregates repeated attachments for one (arch,
// placement) cell of Fig. 7.
type AttachBenchResult struct {
	Arch      Arch
	Placement Placement
	N         int
	Mean      time.Duration
	Breakdown map[string]time.Duration // mean per module
}

// attachWorld holds the full protocol state for the benchmark.
type attachWorld struct {
	agw    *epc.AGW
	brk    *broker.Brokerd
	sdb    *epc.SubscriberDB
	dev    *ue.Device
	legacy *ue.Device
	clock  *VirtualClock
	place  Placement
}

// instrumentedSDB charges the S6A network round trip plus the remote
// processing cost for each request.
type instrumentedSDB struct {
	db    *epc.SubscriberDB
	clock *VirtualClock
	place Placement
}

func (s instrumentedSDB) AuthInfo(imsi string) (aka.Vector, error) {
	s.clock.Charge(SpanOther, 2*s.place.OneWay)
	var v aka.Vector
	err := s.clock.Exec(SpanSDB, costSDBVisit, func() error {
		var e error
		v, e = s.db.AuthInfo(imsi)
		return e
	})
	return v, err
}

func (s instrumentedSDB) UpdateLocation(imsi string) (epc.SubscriberProfile, error) {
	s.clock.Charge(SpanOther, 2*s.place.OneWay)
	var p epc.SubscriberProfile
	err := s.clock.Exec(SpanSDB, costSDBVisit, func() error {
		var e error
		p, e = s.db.UpdateLocation(imsi)
		return e
	})
	return p, err
}

// instrumentedBroker charges the single SAP round trip plus brokerd
// processing (including its real crypto work).
type instrumentedBroker struct {
	b     *broker.Brokerd
	clock *VirtualClock
	place Placement
}

func (c instrumentedBroker) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	c.clock.Charge(SpanOther, 2*c.place.OneWay)
	var resp *sap.AuthResp
	err := c.clock.Exec(SpanBrokerd, costBrokerd, func() error {
		var e error
		resp, e = c.b.HandleAuthRequest(req)
		return e
	})
	return resp, err
}

type benchDirectory struct{ c instrumentedBroker }

func (d benchDirectory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	if idB != d.c.b.ID() {
		return nil, pki.PublicIdentity{}, fmt.Errorf("testbed: unknown broker %q", idB)
	}
	return d.c, d.c.b.Public(), nil
}

func newAttachWorld(place Placement) (*attachWorld, error) {
	clock := NewVirtualClock()
	now := time.Unix(1_750_000_000, 0)

	ca, err := pki.NewCAFromSeed("bench-ca", bytes.Repeat([]byte{41}, 32))
	if err != nil {
		return nil, err
	}
	brokerKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{42}, 32))
	if err != nil {
		return nil, err
	}
	cfg := broker.DefaultConfig("broker.bench", brokerKey, ca.Public())
	cfg.Now = func() time.Time { return now }
	brk := broker.New(cfg)

	ueKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{43}, 32))
	if err != nil {
		return nil, err
	}
	idU := brk.RegisterUser(ueKey.Public())

	telcoKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{44}, 32))
	if err != nil {
		return nil, err
	}
	cert := ca.Issue("btelco-bench", "btelco", telcoKey.Public(), now.Add(-time.Hour), now.Add(24*time.Hour))
	telco := &sap.TelcoState{
		IDT: "btelco-bench", Key: telcoKey, Cert: cert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
	}

	sdb := epc.NewSubscriberDB()
	k := aka.K{7, 7, 7}
	sdb.Provision("001010123456789", k, epc.SubscriberProfile{QoS: qos.DefaultParams(), APN: "internet"})

	w := &attachWorld{brk: brk, sdb: sdb, clock: clock, place: place}
	w.agw = epc.NewAGW(epc.AGWConfig{
		Telco:       telco,
		Subscribers: instrumentedSDB{db: sdb, clock: clock, place: place},
		Brokers:     benchDirectory{instrumentedBroker{b: brk, clock: clock, place: place}},
		Instrument: func(module string, f func() error) error {
			// AGW-local work: charge real wall time only; the static AGW
			// cost is charged once per attach below.
			return clock.Exec(SpanAGW, 0, f)
		},
	})
	cb := &sap.UEState{IDU: idU, IDB: "broker.bench", Key: ueKey, BrokerPub: brokerKey.Public()}
	w.dev = ue.NewDevice("bench-ue", nil, cb)
	w.legacy = ue.NewDevice("bench-ue-legacy", &aka.SIM{K: k, IMSI: "001010123456789"}, nil)
	return w, nil
}

// transport wraps the UE<->AGW exchange: each NAS message crosses the eNB
// (forwarding cost charged once per attach, not per message, matching how
// the paper attributes its eNB span) and a negligible local link.
func (w *attachWorld) transport(ranID string) ue.NASTransport {
	return func(envelope []byte) ([]byte, error) {
		return w.agw.HandleNAS(ranID, envelope)
	}
}

// RunAttach measures one attachment. The returned sample's Spans hold the
// per-module time charged by *this attach only*: the clock's cumulative
// spans are snapshotted before and after, and the sample carries the
// difference. That keeps any charges predating the attach — or, for a
// shared world, charges from earlier attaches — out of the sample, so a
// bench loop can sum samples directly instead of differencing cumulative
// snapshots (where the first iteration silently absorbed setup charges).
func (w *attachWorld) RunAttach(arch Arch, iteration int) (AttachSample, error) {
	start := w.clock.Now()
	before := w.clock.Spans()
	// Per-attach static costs for the modules whose work is dominated by
	// standardized processing rather than our Go code.
	w.clock.Charge(SpanUE, costUE)
	w.clock.Charge(SpanENB, costENB)

	switch arch {
	case ArchCellBricks:
		w.clock.Charge(SpanAGW, costAGWSAP)
		ranID := fmt.Sprintf("bench-ue-%d", iteration)
		dev := ue.NewDevice(ranID, nil, w.dev.CB)
		t0 := benchNow()
		_, err := dev.AttachSAP(w.transport(ranID), "btelco-bench")
		if err != nil {
			return AttachSample{}, err
		}
		// UE-side crypto wall time (seal, verify, open) charged to UE.
		w.clock.Charge(SpanUE, benchNow().Sub(t0)/2)
	case ArchBaseline:
		w.clock.Charge(SpanAGW, costAGWBase)
		ranID := fmt.Sprintf("bench-legacy-%d", iteration)
		dev := ue.NewDevice(ranID, &aka.SIM{K: w.legacy.Legacy.K, IMSI: w.legacy.Legacy.IMSI, SQN: w.legacy.Legacy.SQN}, nil)
		t0 := benchNow()
		_, err := dev.AttachLegacy(w.transport(ranID))
		if err != nil {
			return AttachSample{}, err
		}
		w.legacy.Legacy.SQN = dev.Legacy.SQN
		w.clock.Charge(SpanUE, benchNow().Sub(t0)/2)
	default:
		return AttachSample{}, fmt.Errorf("testbed: unknown arch %q", arch)
	}
	spans := w.clock.Spans()
	for k, v := range before {
		spans[k] -= v
	}
	return AttachSample{Total: w.clock.Now() - start, Spans: spans}, nil
}

// RunAttachBench measures n attachments for one Fig. 7 cell.
func RunAttachBench(arch Arch, place Placement, n int) (AttachBenchResult, error) {
	return RunAttachBenchTrace(arch, place, n, nil)
}

// RunAttachBenchTrace is RunAttachBench with a tracer attached to the
// cell's virtual clock: every per-module Charge lands as a span on the
// attach timeline, viewable in Perfetto via cbbench -trace-out.
func RunAttachBenchTrace(arch Arch, place Placement, n int, tr *obs.Tracer) (AttachBenchResult, error) {
	w, err := newAttachWorld(place)
	if err != nil {
		return AttachBenchResult{}, err
	}
	w.clock.Trace(tr)
	tr.SetClock(w.clock.Now)
	var total time.Duration
	sums := make(map[string]time.Duration)
	for i := 0; i < n; i++ {
		s, err := w.RunAttach(arch, i)
		if err != nil {
			return AttachBenchResult{}, err
		}
		total += s.Total
		for k, v := range s.Spans {
			sums[k] += v
		}
	}
	res := AttachBenchResult{Arch: arch, Placement: place, N: n, Mean: total / time.Duration(n)}
	res.Breakdown = make(map[string]time.Duration, len(sums))
	for k, v := range sums {
		res.Breakdown[k] = v / time.Duration(n)
	}
	return res, nil
}

// RunFig7 measures every Fig. 7 cell — three placements × two
// architectures, n attachments each. Each cell owns a private attachWorld
// (its own broker, SubscriberDB, and virtual clock), so the six cells fan
// out across the runner and reassemble in the canonical order: placements
// outermost, baseline before CellBricks within each.
func RunFig7(n int, r Runner) ([]AttachBenchResult, error) {
	places := Placements()
	archs := []Arch{ArchBaseline, ArchCellBricks}
	return runUnitsErr(r, len(places)*len(archs), func(u int) (AttachBenchResult, error) {
		return RunAttachBench(archs[u%len(archs)], places[u/len(archs)], n)
	})
}

package testbed

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"cellbricks/internal/netem"
)

// renderSHA hashes an experiment's rendered output, the same bytes the
// bench harness records as output_sha256.
func renderSHA(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// TestSchedulerABExperimentSHA256 is the end-to-end scheduler A/B golden
// check: a full experiment run under the timing wheel must hash to exactly
// the same output as the same run under the reference heap, for several
// seeds. Fig. 8 is used because it exercises the whole stack — mobility,
// handover, MPTCP, iperf — while being fully virtual-time deterministic.
// (Fig. 7 is deliberately not hashed here: its attach breakdown charges
// real wall-clock crypto time into the virtual clock, so even two
// same-scheduler runs differ in the low digits.)
func TestSchedulerABExperimentSHA256(t *testing.T) {
	prev := netem.DefaultScheduler()
	defer netem.SetDefaultScheduler(prev)

	for _, seed := range []int64{1, 7, 42} {
		netem.SetDefaultScheduler(netem.SchedulerWheel)
		wheel := renderSHA(RunFig8(seed, 15*time.Second).Render())
		netem.SetDefaultScheduler(netem.SchedulerHeap)
		heap := renderSHA(RunFig8(seed, 15*time.Second).Render())
		if wheel != heap {
			t.Fatalf("seed %d: wheel output %s != heap output %s", seed, wheel, heap)
		}
	}
}

// TestSchedulerSameKindStableSHA256 pins plain run-to-run determinism for
// each scheduler kind separately: the same seed must reproduce the same
// bytes.
func TestSchedulerSameKindStableSHA256(t *testing.T) {
	prev := netem.DefaultScheduler()
	defer netem.SetDefaultScheduler(prev)

	for _, kind := range []netem.SchedulerKind{netem.SchedulerWheel, netem.SchedulerHeap} {
		netem.SetDefaultScheduler(kind)
		a := renderSHA(RunFig8(99, 15*time.Second).Render())
		b := renderSHA(RunFig8(99, 15*time.Second).Render())
		if a != b {
			t.Fatalf("kind %d: same-seed runs hash %s vs %s", kind, a, b)
		}
	}
}

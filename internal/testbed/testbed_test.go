package testbed

import (
	"testing"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/epc"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/qos"
	"cellbricks/internal/mobility"
)

func TestFig7ShapeMatchesPaper(t *testing.T) {
	if raceEnabled {
		t.Skip("Fig. 7 charges measured crypto wall time; the race detector inflates it ~10x")
	}
	run := func(arch Arch, p Placement) AttachBenchResult {
		t.Helper()
		r, err := RunAttachBench(arch, p, 30)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	blLocal := run(ArchBaseline, PlacementLocal)
	cbLocal := run(ArchCellBricks, PlacementLocal)
	blWest := run(ArchBaseline, PlacementUSWest)
	cbWest := run(ArchCellBricks, PlacementUSWest)
	blEast := run(ArchBaseline, PlacementUSEast)
	cbEast := run(ArchCellBricks, PlacementUSEast)

	ms := func(d time.Duration) float64 { return d.Seconds() * 1000 }

	// Paper: us-east BL 166.48 ms, CB 98.62 ms (CB 40.8% faster).
	if got := ms(blEast.Mean); got < 150 || got > 185 {
		t.Errorf("BL us-east = %.2f ms, paper 166.48", got)
	}
	if got := ms(cbEast.Mean); got < 90 || got > 110 {
		t.Errorf("CB us-east = %.2f ms, paper 98.62", got)
	}
	if cbEast.Mean >= blEast.Mean {
		t.Error("CB must beat BL at us-east (one fewer round trip)")
	}
	saving := 1 - cbEast.Mean.Seconds()/blEast.Mean.Seconds()
	if saving < 0.30 || saving > 0.50 {
		t.Errorf("us-east saving = %.1f%%, paper 40.8%%", saving*100)
	}

	// Paper: us-west BL 36.85 ms, CB 31.68 ms (CB 14% smaller).
	if got := ms(blWest.Mean); got < 32 || got > 42 {
		t.Errorf("BL us-west = %.2f ms, paper 36.85", got)
	}
	if cbWest.Mean >= blWest.Mean {
		t.Error("CB must beat BL at us-west")
	}

	// Paper: locally both ≈28 ms; CB adds ≈2 ms of crypto.
	delta := ms(cbLocal.Mean) - ms(blLocal.Mean)
	if delta < 0.5 || delta > 5 {
		t.Errorf("local CB overhead = %.2f ms, paper ≈2 ms", delta)
	}
	// "AGW and Brokerd accounts for about 70% of the total request
	// latency" locally.
	core := cbLocal.Breakdown[SpanAGW] + cbLocal.Breakdown[SpanBrokerd]
	frac := core.Seconds() / cbLocal.Mean.Seconds()
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("local AGW+brokerd fraction = %.2f, paper ≈0.70", frac)
	}
	// The CB flow must never touch the SDB, and BL never the broker.
	if cbLocal.Breakdown[SpanSDB] != 0 {
		t.Error("CellBricks attach visited the SubscriberDB")
	}
	if blLocal.Breakdown[SpanBrokerd] != 0 {
		t.Error("baseline attach visited brokerd")
	}
}

func TestFig7BreakdownAccounting(t *testing.T) {
	r, err := RunAttachBench(ArchCellBricks, PlacementUSWest, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, v := range r.Breakdown {
		sum += v
	}
	// The per-module means must add up to the total mean.
	diff := (sum - r.Mean).Seconds() * 1000
	if diff < -0.5 || diff > 0.5 {
		t.Fatalf("breakdown sums to %v, total %v", sum, r.Mean)
	}
}

func TestWorldHandoverSchedule(t *testing.T) {
	sc := Scenario{Route: mobility.Highway, Night: true, Arch: ArchCellBricks, Seed: 4, Duration: 10 * time.Minute}
	w := NewWorld(sc)
	if len(w.Handovers) < 15 {
		t.Fatalf("only %d handovers in 10 min at 25.5s MTTHO", len(w.Handovers))
	}
	// CB connection survives the entire drive.
	res := RunIperf(sc)
	if res.AvgBps <= 0 {
		t.Fatal("no throughput")
	}
	mean := (w.Handovers[len(w.Handovers)-1] - w.Handovers[0]) / time.Duration(len(w.Handovers)-1)
	want := mobility.Highway.MTTHO(true)
	if mean < want*7/10 || mean > want*13/10 {
		t.Fatalf("observed MTTHO %v, want ~%v", mean, want)
	}
}

func TestCellBricksConnSurvivesDrive(t *testing.T) {
	sc := Scenario{Route: mobility.Downtown, Night: false, Arch: ArchCellBricks, Seed: 9, Duration: 6 * time.Minute}
	w := NewWorld(sc)
	last := uint64(0)
	// Check the connection still makes progress after every handover.
	for _, at := range w.Handovers {
		w.Sim.RunUntil(at + 20*time.Second)
		if w.Conn.Closed() {
			t.Fatalf("connection dead after handover at %v", at)
		}
		_ = last
	}
}

func TestMNOOutageBriefButHarmless(t *testing.T) {
	day := Scenario{Route: mobility.Downtown, Arch: ArchBaseline, Seed: 10, Duration: 5 * time.Minute}
	res := RunIperf(day)
	// The baseline keeps its connection through handovers.
	if res.AvgBps < 0.8e6 {
		t.Fatalf("MNO day avg %.2f Mbps, want ~1.1", res.AvgBps/1e6)
	}
}

func TestNightFasterThanDay(t *testing.T) {
	day := Scenario{Route: mobility.Downtown, Arch: ArchCellBricks, Seed: 12, Duration: 4 * time.Minute}
	night := day
	night.Night = true
	d := RunIperf(day).AvgBps
	n := RunIperf(night).AvgBps
	if n < 5*d {
		t.Fatalf("night %.1f Mbps not clearly above day %.1f (paper: ~13x)", n/1e6, d/1e6)
	}
}

func TestFig10Bimodal(t *testing.T) {
	r := RunFig10(2, 200*time.Second)
	dm, _, ds := Stats(r.DaySeries)
	nm, np, ns := Stats(r.NightSeries)
	if nm < 8*dm {
		t.Fatalf("night/day = %.1fx, paper 14.5x", nm/dm)
	}
	if ns <= ds {
		t.Fatal("night variance should exceed day (paper: 8.94 vs 0.32)")
	}
	if np < 20e6 {
		t.Fatalf("night peak %.1f Mbps, paper 52.5", np/1e6)
	}
	if dm < 0.9e6 || dm > 1.3e6 {
		t.Fatalf("day mean %.2f Mbps, paper 1.03", dm/1e6)
	}
}

func TestFig9UnmodifiedWorstEarly(t *testing.T) {
	r := RunFig9(3, 3, Runner{})
	if len(r.Curves) != 4 {
		t.Fatalf("%d curves", len(r.Curves))
	}
	byLabel := map[string]Fig9Curve{}
	for _, c := range r.Curves {
		byLabel[c.Label] = c
	}
	mod32 := byLabel["mod. 32ms"]
	unmod := byLabel["unmod. (500ms)"]
	if len(mod32.Points) == 0 || len(unmod.Points) == 0 {
		t.Fatal("empty curves")
	}
	// In the first second, removing the 500 ms wait must help.
	if mod32.Points[0].RelPerf <= unmod.Points[0].RelPerf {
		t.Fatalf("1s window: mod32 %.2f <= unmod %.2f", mod32.Points[0].RelPerf, unmod.Points[0].RelPerf)
	}
	// Converges toward parity by 9 s; the paper reports CellBricks
	// routinely 10-30% *above* TCP after handovers, so accept a band
	// around and above 1.0 (night capacity variance is high).
	lastMod := mod32.Points[len(mod32.Points)-1].RelPerf
	if lastMod < 0.70 || lastMod > 1.50 {
		t.Fatalf("mod32 at 9s = %.2f, want ~0.9-1.3", lastMod)
	}
}

func TestTable1SlowdownEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 in -short mode")
	}
	res := RunTable1(Table1Config{Duration: 4 * time.Minute, Seed: 21})
	if len(res.Cells) != 6 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, night := range []bool{false, true} {
		ip, mos, vid, web := res.Slowdown(night)
		for name, v := range map[string]float64{"iperf": ip, "voip": mos, "video": vid, "web": web} {
			// Paper envelope: -1.61% .. +3.06%; allow a wider but still
			// tight band for the emulation (|slowdown| <= 8%).
			if v < -0.08 || v > 0.08 {
				t.Errorf("night=%v %s slowdown %.2f%% outside ±8%%", night, name, v*100)
			}
		}
	}
	// Sanity on absolute numbers.
	for _, c := range res.Cells {
		if c.Night && (c.CBIperf < 6e6 || c.MNOIperf < 6e6) {
			t.Errorf("%s night iperf too low: MNO %.1f CB %.1f", c.Route, c.MNOIperf/1e6, c.CBIperf/1e6)
		}
		if !c.Night && (c.CBIperf > 1.6e6 || c.CBIperf < 0.8e6) {
			t.Errorf("%s day iperf out of range: %.2f", c.Route, c.CBIperf/1e6)
		}
		if c.CBMOS < 4.0 || c.MNOMOS < 4.0 {
			t.Errorf("%s MOS too low: %.2f/%.2f", c.Route, c.MNOMOS, c.CBMOS)
		}
	}
}

func TestRealDeploymentEndToEnd(t *testing.T) {
	d, err := NewRealDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// CellBricks attach over real TCP.
	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		t.Fatal(err)
	}
	a, err := dev.AttachSAP(tx, d.TelcoID())
	if err != nil {
		t.Fatal(err)
	}
	if a.IP == "" {
		t.Fatal("no IP")
	}

	// Pass traffic through the user plane; meter counts at the UE.
	bearer := d.AGW.UserPlane().Lookup(a.IP)
	for i := 0; i < 50; i++ {
		if bearer.Process(time.Duration(i)*10*time.Millisecond, epc.Downlink, 1000) {
			dev.Meter.CountDL(1000)
		}
	}
	// Both reports reach brokerd over the wire and agree.
	if err := d.UploadTelcoReport(a.SessionID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.UploadUEReport(dev, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := d.Broker.Mismatches(); len(got) != 0 {
		t.Fatalf("honest session flagged: %v", got)
	}
	if s := d.Broker.TelcoScore(d.TelcoID()); s < 0.99 {
		t.Fatalf("telco score %.2f", s)
	}

	// Detach (protected NAS over the real wire).
	if err := dev.Detach(tx); err != nil {
		t.Fatal(err)
	}

	// Legacy attach over the same deployment.
	ldev, ltx, err := d.NewLegacyUE("001017777777777")
	if err != nil {
		t.Fatal(err)
	}
	la, err := ldev.AttachLegacy(ltx)
	if err != nil {
		t.Fatal(err)
	}
	if la.IP == "" {
		t.Fatal("legacy attach got no IP")
	}
	if err := ldev.Detach(ltx); err != nil {
		t.Fatal(err)
	}
}

func TestRealDeploymentManyUEs(t *testing.T) {
	d, err := NewRealDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// The paper's scalability claim: many users attach under different
	// conditions. 20 concurrent SAP attaches over real sockets.
	type result struct{ err error }
	results := make(chan result, 20)
	for i := 0; i < 20; i++ {
		go func() {
			dev, tx, err := d.NewCellBricksUE()
			if err != nil {
				results <- result{err}
				return
			}
			if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
				results <- result{err}
				return
			}
			results <- result{dev.Detach(tx)}
		}()
	}
	for i := 0; i < 20; i++ {
		if r := <-results; r.err != nil {
			t.Fatal(r.err)
		}
	}
	if n := d.AGW.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions leaked", n)
	}
}

func TestTransportComparison(t *testing.T) {
	res := RunTransportComparisonAll(5, 6*time.Minute, Runner{})
	if len(res) != 4 {
		t.Fatalf("%d transports", len(res))
	}
	byLabel := map[string]TransportComparison{}
	for _, c := range res {
		if c.Pages < 50 {
			t.Errorf("%s: only %d pages (loader wedged?)", c.Label, c.Pages)
		}
		byLabel[c.Label] = c
	}
	// All four strategies keep page loads in the same ballpark — the
	// paper's point that handover overheads average out — and QUIC (no
	// wait, 1-RTT validation) is never slower than deployed MPTCP.
	q, m := byLabel["QUIC migration"], byLabel["MPTCP (500ms wait)"]
	if q.WebLoad > m.WebLoad+200*time.Millisecond {
		t.Errorf("QUIC %v much slower than MPTCP %v", q.WebLoad, m.WebLoad)
	}
	for _, c := range res {
		if c.WebLoad < 500*time.Millisecond || c.WebLoad > 5*time.Second {
			t.Errorf("%s: load %v out of plausible range", c.Label, c.WebLoad)
		}
	}
}

func TestSoftHandoverBeatsHard(t *testing.T) {
	base := Scenario{Route: mobility.Highway, Night: true, Arch: ArchCellBricks, Seed: 13, Duration: 5 * time.Minute}
	hard := RunIperf(base)
	soft := base
	soft.SoftHandover = true
	softRes := RunIperf(soft)
	// Make-before-break removes the outage, so it can't do worse than
	// break-before-make by more than noise, and it should usually win on
	// the handover-dense highway route.
	if softRes.AvgBps < hard.AvgBps*0.95 {
		t.Fatalf("soft %.2f Mbps < hard %.2f Mbps", softRes.AvgBps/1e6, hard.AvgBps/1e6)
	}
}

func TestScaleSharedCell(t *testing.T) {
	// 1, 8, and 32 UEs on a 50 Mbps cell: aggregate utilization stays
	// high and capacity is shared roughly fairly.
	var results []ScaleResult
	for _, n := range []int{1, 8, 32} {
		results = append(results, RunScale(ScaleConfig{Seed: 17, N: n, CellBps: 50e6, Duration: 30 * time.Second}))
	}
	for _, r := range results {
		util := r.TotalBps / r.CellBps
		if util < 0.6 || util > 1.05 {
			t.Errorf("n=%d: utilization %.2f", r.N, util)
		}
		if r.N > 1 && r.Fairness < 0.75 {
			t.Errorf("n=%d: Jain fairness %.3f", r.N, r.Fairness)
		}
	}
	// Aggregate must not collapse as UEs multiply.
	if results[2].TotalBps < results[0].TotalBps*0.7 {
		t.Errorf("32-UE aggregate %.1f Mbps << 1-UE %.1f", results[2].TotalBps/1e6, results[0].TotalBps/1e6)
	}
	t.Log("\n" + RenderScale(results))
}

func TestOrchestratorHeartbeats(t *testing.T) {
	d, err := NewRealDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SendHeartbeat(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := d.Orc.Metrics(d.TelcoID())
	if m.AGWs != 1 || m.ActiveSessions != 1 || m.Attaches != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// A config push arrives with the next heartbeat.
	want := d.Orc.Alive()[0].Config
	want.RequireLI = true
	if err := d.Orc.PushConfig("agw-real", want); err != nil {
		t.Fatal(err)
	}
	cfg, err := d.SendHeartbeat(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.RequireLI {
		t.Fatal("pushed config not delivered on heartbeat")
	}
	if err := dev.Detach(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SendHeartbeat(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if m := d.Orc.Metrics(d.TelcoID()); m.ActiveSessions != 0 {
		t.Fatalf("sessions after detach = %d", m.ActiveSessions)
	}
}

func TestBilledDriveEndToEnd(t *testing.T) {
	sc := Scenario{Route: mobility.Downtown, Night: true, Arch: ArchCellBricks, Seed: 31, Duration: 6 * time.Minute}
	res, err := RunBilledDrive(sc, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions < 4 {
		t.Fatalf("only %d sessions over a 6-min downtown night drive", res.Sessions)
	}
	if res.Cycles < 10 {
		t.Fatalf("only %d report cycles", res.Cycles)
	}
	// Honest drive: the telco counts at admission, the UE at delivery, so
	// small discrepancies (in-flight loss at detachment) are expected and
	// must be absorbed by the Fig. 5 tolerance.
	if res.Mismatches != 0 {
		t.Fatalf("%d/%d honest cycles flagged", res.Mismatches, res.Cycles)
	}
	if res.TelcoBytes < res.UEBytes {
		t.Fatalf("telco counted %d < UE %d (counter placement inverted?)", res.TelcoBytes, res.UEBytes)
	}
	slack := float64(res.TelcoBytes-res.UEBytes) / float64(res.UEBytes)
	if slack > 0.05 {
		t.Fatalf("admission-vs-delivery gap %.2f%% too large", slack*100)
	}
	// Every session settled and the bTelcos get paid for verified bytes.
	if len(res.Settlements) != res.Sessions {
		t.Fatalf("%d settlements for %d sessions", len(res.Settlements), res.Sessions)
	}
	if res.TotalOwed <= 0 {
		t.Fatal("nothing owed after a data-heavy drive")
	}
	for _, st := range res.Settlements {
		if st.Disputed {
			t.Fatalf("honest session disputed: %+v", st)
		}
	}
}

func TestBrokerOutageResilience(t *testing.T) {
	// A handover during a 20 s broker outage stalls the attach; MPTCP's
	// 60 s address watchdog rides it out and the connection resumes.
	base := Scenario{Route: mobility.Highway, Night: true, Arch: ArchCellBricks, Seed: 41, Duration: 4 * time.Minute}
	w := NewWorld(base)
	if len(w.Handovers) == 0 {
		t.Fatal("no handovers")
	}
	ho := w.Handovers[0]
	short := base
	short.BrokerDownAt = ho - time.Second
	short.BrokerDownFor = 20 * time.Second
	ws := NewWorld(short)
	res := apps.NewIperf(ws.Sim, ws.Conn, time.Second).Run(short.Duration)
	if ws.Conn.Closed() {
		t.Fatal("connection died despite outage < MPTCP timeout")
	}
	if res.AvgBps <= 0 {
		t.Fatal("no throughput after broker recovery")
	}

	// An outage longer than the 60 s watchdog kills active connections:
	// the availability cost the architecture concentrates on the broker.
	long := base
	long.BrokerDownAt = ho - time.Second
	long.BrokerDownFor = 90 * time.Second
	wl := NewWorld(long)
	apps.NewIperf(wl.Sim, wl.Conn, time.Second).Run(long.Duration)
	if !wl.Conn.Closed() {
		t.Fatal("connection survived a 90s broker outage (timeout not enforced)")
	}
}

func TestGeoWorldMatchesCalibratedMTTHO(t *testing.T) {
	sc := Scenario{Route: mobility.Highway, Night: true, Arch: ArchCellBricks, Seed: 43, Duration: 8 * time.Minute}
	w, events := NewGeoWorld(sc, 64)
	if len(events) < 10 {
		t.Fatalf("only %d geometric handovers", len(events))
	}
	// Every handover in the single-tower-per-bTelco corridor crosses a
	// provider boundary.
	for _, ev := range events {
		if !ev.CrossesTelco {
			t.Fatal("geo handover within one bTelco in a one-tower-per-bTelco corridor")
		}
	}
	// The geometric inter-handover time must agree with the calibrated
	// statistical MTTHO (same spacing, same speed).
	mean := (events[len(events)-1].At - events[0].At) / time.Duration(len(events)-1)
	want := sc.Route.MTTHO(true)
	if mean < want*85/100 || mean > want*115/100 {
		t.Fatalf("geo MTTHO %v, calibrated %v", mean, want)
	}
	// And the data plane survives the geometric drive.
	res := apps.NewIperf(w.Sim, w.Conn, time.Second).Run(sc.Duration)
	if w.Conn.Closed() || res.AvgBps < 3e6 {
		t.Fatalf("geo drive: closed=%v avg=%.1f Mbps", w.Conn.Closed(), res.AvgBps/1e6)
	}
}

func TestGrantedAMBREnforcedInPath(t *testing.T) {
	// The broker's qosInfo is not advisory: the bTelco user plane sits on
	// the data path and polices the granted AMBR. Grant 4 Mbps on a
	// 15 Mbps night cell and the download tracks the grant, with the
	// bearer counting every byte for billing.
	sc := Scenario{Route: mobility.Downtown, Night: true, Arch: ArchCellBricks, Seed: 51, Duration: 2 * time.Minute}
	sc = sc.Defaults()
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	link := op.CellularLink(sc.Route, sc.Night)

	up := epc.NewUserPlane()
	bearer := up.CreateBearer(1, "qos-ue", qos.Params{QCI: qos.QCIWebTCPDefault, DLAmbrBps: 4e6, ULAmbrBps: 2e6})
	link.Transit = func(p *netem.Packet, at time.Duration) bool {
		dir := epc.Uplink
		if p.Dst == "qos-ue" {
			dir = epc.Downlink
		}
		return bearer.Process(at, dir, p.Size)
	}
	sim.Connect(ServerIP, "qos-ue", link)
	conn := mptcp.NewConn(sim, ServerIP, "qos-ue", mptcp.DefaultConfig())
	res := apps.NewIperf(sim, conn, time.Second).Run(sc.Duration)

	if res.AvgBps > 4.4e6 {
		t.Fatalf("goodput %.2f Mbps exceeds the 4 Mbps grant", res.AvgBps/1e6)
	}
	if res.AvgBps < 2.4e6 {
		t.Fatalf("goodput %.2f Mbps far below the grant", res.AvgBps/1e6)
	}
	u := bearer.Usage()
	if u.DLBytes == 0 || u.DLDropped == 0 {
		t.Fatalf("bearer usage = %+v (no accounting or no policing)", u)
	}
	// The bearer's count covers at least what the receiver got (headers
	// and retransmissions make it strictly larger).
	if u.DLBytes < res.Delivered {
		t.Fatalf("bearer counted %d < delivered %d", u.DLBytes, res.Delivered)
	}
}

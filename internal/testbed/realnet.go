package testbed

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"cellbricks/internal/aka"
	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/nas"
	"cellbricks/internal/obs"
	"cellbricks/internal/orc8r"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
	"cellbricks/internal/wire"
)

// RealDeployment is the loopback-TCP testbed: brokerd and the subscriber
// database run as real wire-protocol servers (as they would in the cloud),
// the AGW runs as a real NAS server, and UEs dial in over TCP where the
// radio would be. This is the §5 prototype topology: UE | eNodeB+EPC |
// brokerd, minus the SDR.
type RealDeployment struct {
	CA     *pki.CA
	Broker *broker.Brokerd
	AGW    *epc.AGW
	SDB    *epc.SubscriberDB

	BrokerSrv *broker.Server
	SDBSrv    *epc.SDBServer
	NASSrv    *epc.NASServer
	Orc       *orc8r.Orchestrator
	OrcSrv    *orc8r.Server
	orcClient *orc8r.Client

	brokerKey *pki.KeyPair
	telco     *sap.TelcoState
	ranSeq    atomic.Uint64
}

// wireDirectory resolves broker IDs to wire clients.
type wireDirectory struct {
	id   string
	addr string
	pub  pki.PublicIdentity
}

func (d wireDirectory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	if idB != d.id {
		return nil, pki.PublicIdentity{}, fmt.Errorf("testbed: unknown broker %q", idB)
	}
	c, err := broker.DialClient(d.addr)
	if err != nil {
		return nil, pki.PublicIdentity{}, err
	}
	return c, d.pub, nil
}

// NewRealDeployment starts all three servers on loopback.
func NewRealDeployment() (*RealDeployment, error) {
	return NewRealDeploymentTraced(nil, nil)
}

// NewRealDeploymentTraced is NewRealDeployment with causal tracing armed:
// the broker server decodes trace contexts from incoming frames, the AGW
// parents its spans under the NAS envelope's context, and a traced attach
// over real sockets yields the same span tree the simulator produces.
func NewRealDeploymentTraced(tr *obs.Tracer, ids *obs.SpanIDSource) (*RealDeployment, error) {
	d := &RealDeployment{}
	var err error
	if d.CA, err = pki.NewCAFromSeed("real-ca", bytes.Repeat([]byte{61}, 32)); err != nil {
		return nil, err
	}
	if d.brokerKey, err = pki.KeyPairFromSeed(bytes.Repeat([]byte{62}, 32)); err != nil {
		return nil, err
	}
	cfg := broker.DefaultConfig("broker.real", d.brokerKey, d.CA.Public())
	d.Broker = broker.New(cfg)
	if d.BrokerSrv, err = broker.ServeTraced(d.Broker, "127.0.0.1:0", tr, ids); err != nil {
		return nil, err
	}

	d.SDB = epc.NewSubscriberDB()
	if d.SDBSrv, err = epc.ServeSDB(d.SDB, "127.0.0.1:0"); err != nil {
		d.BrokerSrv.Close()
		return nil, err
	}

	telcoKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{63}, 32))
	if err != nil {
		d.Close()
		return nil, err
	}
	now := time.Now()
	cert := d.CA.Issue("btelco-real", "btelco", telcoKey.Public(), now.Add(-time.Hour), now.Add(24*time.Hour))
	d.telco = &sap.TelcoState{
		IDT: "btelco-real", Key: telcoKey, Cert: cert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 2.0},
	}

	sdbClient, err := epc.DialSDB(d.SDBSrv.Addr())
	if err != nil {
		d.Close()
		return nil, err
	}
	d.AGW = epc.NewAGW(epc.AGWConfig{
		Telco:       d.telco,
		Subscribers: sdbClient,
		Brokers: wireDirectory{
			id:   d.Broker.ID(),
			addr: d.BrokerSrv.Addr(),
			pub:  d.Broker.Public(),
		},
		Tracer:   tr,
		TraceIDs: ids,
	})
	if d.NASSrv, err = epc.ServeNAS(d.AGW, "127.0.0.1:0"); err != nil {
		d.Close()
		return nil, err
	}

	// Orchestrator: the AGW registers and will heartbeat on demand.
	d.Orc = orc8r.New(orc8r.AGWConfigPush{})
	if d.OrcSrv, err = orc8r.Serve(d.Orc, "127.0.0.1:0"); err != nil {
		d.Close()
		return nil, err
	}
	if d.orcClient, err = orc8r.DialClient(d.OrcSrv.Addr()); err != nil {
		d.Close()
		return nil, err
	}
	if _, err := d.orcClient.Register("agw-real", d.telco.IDT, d.NASSrv.Addr()); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// SendHeartbeat reports the AGW's current counters to the orchestrator
// over the wire and returns the configuration it got back.
func (d *RealDeployment) SendHeartbeat(at time.Duration) (orc8r.AGWConfigPush, error) {
	st := d.AGW.Stats()
	return d.orcClient.Heartbeat(orc8r.Heartbeat{
		AGWID:          "agw-real",
		At:             at,
		ActiveSessions: uint32(st.ActiveSessions),
		ULBytes:        st.ULBytes,
		DLBytes:        st.DLBytes,
		Attaches:       st.Attaches,
		AttachFailures: st.AttachFailures,
	})
}

// Close stops all servers.
func (d *RealDeployment) Close() {
	if d.orcClient != nil {
		d.orcClient.Close()
	}
	if d.OrcSrv != nil {
		d.OrcSrv.Close()
	}
	if d.NASSrv != nil {
		d.NASSrv.Close()
	}
	if d.SDBSrv != nil {
		d.SDBSrv.Close()
	}
	if d.BrokerSrv != nil {
		d.BrokerSrv.Close()
	}
}

// TelcoID returns the deployed bTelco identifier.
func (d *RealDeployment) TelcoID() string { return d.telco.IDT }

// NewCellBricksUE provisions a CellBricks device with the broker and
// returns it along with a NAS transport dialled over real TCP.
func (d *RealDeployment) NewCellBricksUE() (*ue.Device, ue.NASTransport, error) {
	key, err := pki.GenerateKeyPair()
	if err != nil {
		return nil, nil, err
	}
	idU := d.Broker.RegisterUser(key.Public())
	ranID := fmt.Sprintf("real-ue-%d", d.ranSeq.Add(1))
	dev := ue.NewDevice(ranID, nil, &sap.UEState{
		IDU: idU, IDB: d.Broker.ID(), Key: key, BrokerPub: d.Broker.Public(),
	})
	tx, err := d.dialNAS(ranID)
	return dev, tx, err
}

// NewLegacyUE provisions a legacy SIM in the SDB and returns the device
// and transport.
func (d *RealDeployment) NewLegacyUE(imsi string) (*ue.Device, ue.NASTransport, error) {
	k, err := aka.NewK()
	if err != nil {
		return nil, nil, err
	}
	d.SDB.Provision(imsi, k, epc.SubscriberProfile{QoS: qos.DefaultParams(), APN: "internet"})
	ranID := fmt.Sprintf("real-legacy-%d", d.ranSeq.Add(1))
	dev := ue.NewDevice(ranID, &aka.SIM{K: k, IMSI: imsi}, nil)
	tx, err := d.dialNAS(ranID)
	return dev, tx, err
}

func (d *RealDeployment) dialNAS(ranID string) (ue.NASTransport, error) {
	client, err := wire.Dial(d.NASSrv.Addr())
	if err != nil {
		return nil, err
	}
	return func(envelope []byte) ([]byte, error) {
		// Mirror the NAS envelope's trace context into the wire frame
		// header, so transport-level tooling sees the trace identity
		// without parsing NAS; the AGW still recovers it from the
		// envelope itself, keeping untraced frames byte-identical.
		if _, sc, _, err := nas.SplitEnvelope(envelope); err == nil && sc.Valid() {
			_, reply, err := client.CallCtx(wire.TypeNAS, sc, epc.EncodeNASCall(ranID, envelope))
			return reply, err
		}
		_, reply, err := client.Call(wire.TypeNAS, epc.EncodeNASCall(ranID, envelope))
		return reply, err
	}, nil
}

// UploadUEReport sends a UE baseband report to brokerd over the wire.
func (d *RealDeployment) UploadUEReport(dev *ue.Device, rel time.Duration) error {
	env, err := dev.Meter.Report(rel)
	if err != nil {
		return err
	}
	c, err := broker.DialClient(d.BrokerSrv.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	return c.UploadReport(env)
}

// UploadTelcoReport sends the AGW-side report for a session.
func (d *RealDeployment) UploadTelcoReport(sessionID uint64, rel time.Duration) error {
	env, err := d.AGW.GenerateReport(sessionID, rel, billing.QoSMetrics{})
	if err != nil {
		return err
	}
	c, err := broker.DialClient(d.BrokerSrv.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	return c.UploadReport(env)
}

package testbed

import (
	"runtime"
	"testing"
	"time"

	"cellbricks/internal/netem"
)

// K-invariance goldens: the sharded world's contract is that shard count is
// a pure performance knob — the rendered experiment output (the same bytes
// cbbench hashes as output_sha256) must be byte-identical for every K.
// These tests construct worlds with explicit K above runtime.NumCPU if need
// be (netem.World clamps only its worker pool, never the partition), so the
// goldens are meaningful on single-core runners too.

// TestScaleShardGoldenSHA256 runs the scale experiment across shard counts
// and requires one hash. Multiple cells per shard (N > Shards*UEsPerCell)
// exercises both the partition and the cross-shard heartbeat path.
func TestScaleShardGoldenSHA256(t *testing.T) {
	cfg := ScaleConfig{
		Seed:       17,
		N:          130,
		UEsPerCell: 48, // 3 cells: shards 0,1,2 at K=4 — one shard idle
		CellBps:    20e6,
		Duration:   3 * time.Second,
	}
	cfg.Shards = 1
	want := renderSHA(RenderScale([]ScaleResult{RunScale(cfg)}))
	for _, k := range []int{2, 4, 8} {
		cfg.Shards = k
		got := renderSHA(RenderScale([]ScaleResult{RunScale(cfg)}))
		if got != want {
			t.Fatalf("K=%d output hash %s != K=1 hash %s", k, got, want)
		}
	}
}

// TestFailoverShardGoldenSHA256 pins the failover experiment to one hash
// across shard counts. The failover world is a single fault domain on shard
// 0, so this checks that merely being hosted in a sharded world (same-seed
// sibling shards, window-stepped RunUntil) perturbs nothing.
func TestFailoverShardGoldenSHA256(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := FailoverConfig{Seed: 9, Duration: 45 * time.Second}
	base.Shards = 1
	r, err := RunFailover(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSHA(r.Render())
	for _, k := range []int{4, 8} {
		base.Shards = k
		r, err := RunFailover(base)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderSHA(r.Render()); got != want {
			t.Fatalf("K=%d output hash %s != K=1 hash %s", k, got, want)
		}
	}
}

// TestScaleShardsAboveNumCPU documents that the partition is honored even
// when K exceeds the machine: worker goroutines clamp, shard layout doesn't.
func TestScaleShardsAboveNumCPU(t *testing.T) {
	k := runtime.GOMAXPROCS(0) * 2
	cfg := ScaleConfig{Seed: 3, N: 8, UEsPerCell: 2, CellBps: 20e6, Duration: 2 * time.Second}
	cfg.Shards = 1
	want := RenderScale([]ScaleResult{RunScale(cfg)})
	cfg.Shards = k
	got := RenderScale([]ScaleResult{RunScale(cfg)})
	if got != want {
		t.Fatalf("K=%d differs from K=1:\n%s\nvs\n%s", k, got, want)
	}
}

// TestClampShardsRecordedInBench mirrors what cbbench records: the
// effective shard count never exceeds GOMAXPROCS and never drops below 1.
func TestClampShardsRecordedInBench(t *testing.T) {
	if got := netem.ClampShards(0); got != 1 {
		t.Fatalf("ClampShards(0) = %d", got)
	}
	if got := netem.ClampShards(1 << 16); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ClampShards(big) = %d, want GOMAXPROCS", got)
	}
}

// TestScaleTenThousandUEs is the headline scale point from the issue: one
// emulated world with >=10k UEs completes and keeps the shared-cell
// contention properties (near-full utilization, high Jain fairness). Kept
// short per-point so the suite stays fast; the full 60 s sweep lives in
// cbbench -exp scale.
func TestScaleTenThousandUEs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := ScaleConfig{
		Seed:     17,
		N:        10240,
		CellBps:  50e6,
		Duration: 2 * time.Second,
		Shards:   netem.ClampShards(4),
	}
	r := RunScale(cfg)
	if r.Cells != 160 {
		t.Fatalf("cells = %d, want 160", r.Cells)
	}
	util := r.TotalBps / (float64(r.Cells) * r.CellBps)
	if util < 0.5 || util > 1.05 {
		t.Fatalf("aggregate utilization %.2f outside [0.5, 1.05]", util)
	}
	if r.Fairness < 0.7 {
		t.Fatalf("Jain fairness %.3f < 0.7 at 10k UEs", r.Fairness)
	}
	if r.Heartbeats == 0 {
		t.Fatal("no cross-shard heartbeats counted")
	}
	if r.PerUEBps.P50 <= 0 || r.PerUEBps.Min > r.PerUEBps.Max {
		t.Fatalf("bad per-UE summary: %+v", r.PerUEBps)
	}
}

// TestScaleWallClockRecorded sanity-checks the wall-time instrumentation
// the speedup artifact relies on: strictly positive and excludes setup.
func TestScaleWallClockRecorded(t *testing.T) {
	r := RunScale(ScaleConfig{Seed: 1, N: 4, CellBps: 20e6, Duration: 500 * time.Millisecond})
	if r.WallMS <= 0 {
		t.Fatalf("WallMS = %v", r.WallMS)
	}
}

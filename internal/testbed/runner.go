package testbed

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner fans independent experiment units out over a bounded worker
// pool. Every experiment cell in this package — a Table 1 route×time
// cell, a Fig. 7 placement×arch cell, a Fig. 9 trial, a scale-sweep
// point, a transport-comparison arm — is a self-contained,
// seed-deterministic simulation sharing no mutable state with its
// siblings, so the units can execute in any order on any number of
// goroutines. Callers hand each unit a dedicated result slot and
// reassemble in canonical order, which keeps aggregate numbers and
// Render() output byte-identical to a sequential run (asserted by the
// golden tests in parallel_test.go).
//
// The zero value runs with GOMAXPROCS workers. Sequential is the escape
// hatch: it forces single-goroutine execution in ascending unit order,
// exactly reproducing the pre-parallel code path.
type Runner struct {
	// Workers bounds the pool; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Sequential disables the pool entirely.
	Sequential bool
}

// Seq is the sequential escape hatch, for golden tests and debugging.
var Seq = Runner{Sequential: true}

// workers resolves the pool size, clamping an explicit Workers to
// GOMAXPROCS — like netem.ClampShards, oversubscribing cores only adds
// scheduling overhead, and output never depends on the pool size.
func (r Runner) workers() int {
	if r.Sequential {
		return 1
	}
	max := runtime.GOMAXPROCS(0)
	if r.Workers > 0 && r.Workers < max {
		return r.Workers
	}
	return max
}

// ForEach invokes fn(i) for every i in [0, n) across the pool and
// returns once all invocations complete. fn must touch only state owned
// by unit i. With one worker (or Sequential) the calls happen in
// ascending order on the calling goroutine.
func (r Runner) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runUnits collects fn(i) for i in [0, n) in index order — the canonical
// reassembly the experiment entry points rely on.
func runUnits[T any](r Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	r.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// runUnitsErr is runUnits for fallible units; it reports the
// lowest-indexed error so the failure surfaced is independent of
// scheduling.
func runUnitsErr[T any](r Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	r.ForEach(n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

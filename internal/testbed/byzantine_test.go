package testbed

import (
	"crypto/sha256"
	"math"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/chaos"
	"cellbricks/internal/obs"
)

func byzTestConfig(seed int64) ByzantineConfig {
	return ByzantineConfig{
		Seed:          seed,
		Duration:      30 * time.Second,
		Groups:        4,
		CellsPerGroup: 2,
		UEsPerGroup:   3,
		CellBps:       8e6,
	}
}

// TestByzantineInvariantsAndDeterminism is the soak's core contract: with
// a quarter of the cells Byzantine, every invariant holds at the horizon,
// and the rendered output is byte-identical across a re-run with the same
// seed and across shard counts (1 vs 4).
func TestByzantineInvariantsAndDeterminism(t *testing.T) {
	res, err := RunByzantine(byzTestConfig(7))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := res.Render()
	if res.Adversaries == 0 {
		t.Fatalf("no adversaries seeded:\n%s", out)
	}
	if res.Violations != 0 {
		t.Fatalf("invariant violations:\n%s", out)
	}
	if res.WatchdogTrips == 0 && res.Kicks == 0 {
		t.Fatalf("closed loop never engaged (no trips, no kicks):\n%s", out)
	}
	if len(res.Quarantine) == 0 {
		t.Fatalf("no quarantine transitions recorded:\n%s", out)
	}

	rerun, err := RunByzantine(byzTestConfig(7))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rerun.Render() != out {
		t.Fatalf("same-seed rerun diverged:\n--- first\n%s\n--- rerun\n%s", out, rerun.Render())
	}

	cfg := byzTestConfig(7)
	cfg.Shards = 4
	sharded, err := RunByzantine(cfg)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if h1, h4 := sha256.Sum256([]byte(out)), sha256.Sum256([]byte(sharded.Render())); h1 != h4 {
		t.Fatalf("K=1 vs K=4 diverged:\n--- K=1\n%s\n--- K=4\n%s", out, sharded.Render())
	}
}

// TestByzantineHonestBaseline: with the adversarial fraction forced to
// zero the detection machinery must stay silent — no mismatches, no
// watchdog trips, no quarantine — and availability is near-perfect.
func TestByzantineHonestBaseline(t *testing.T) {
	cfg := byzTestConfig(11)
	cfg.AdversarialFrac = -1 // negative clamps to zero (0 would re-default)
	res, err := RunByzantine(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := res.Render()
	if res.Adversaries != 0 {
		t.Fatalf("adversaries in honest baseline:\n%s", out)
	}
	if res.Violations != 0 {
		t.Fatalf("violations in honest baseline:\n%s", out)
	}
	if len(res.Quarantine) != 0 || res.WatchdogTrips != 0 || res.Kicks != 0 {
		t.Fatalf("detection fired without adversaries:\n%s", out)
	}
	for _, c := range res.Cells {
		if c.Mismatches != 0 || c.Replays != 0 {
			t.Fatalf("honest cell %s accused: %d mismatches %d replays\n%s",
				c.ID, c.Mismatches, c.Replays, out)
		}
		if c.Score < 0.999 {
			t.Fatalf("honest cell %s score eroded to %f\n%s", c.ID, c.Score, out)
		}
	}
	if res.Availability < 0.99 {
		t.Fatalf("honest baseline availability %f\n%s", res.Availability, out)
	}
}

// TestByzantineTraceStability: attaching a tracer must not perturb the
// simulation — the rendered result is byte-identical with tracing on.
func TestByzantineTraceStability(t *testing.T) {
	plain, err := RunByzantine(byzTestConfig(7))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	cfg := byzTestConfig(7)
	cfg.Tracer = obs.NewTracer(nil) // RunByzantine rebinds to virtual time
	traced, err := RunByzantine(cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if plain.Render() != traced.Render() {
		t.Fatalf("tracer perturbed the run:\n--- plain\n%s\n--- traced\n%s",
			plain.Render(), traced.Render())
	}
	evs := cfg.Tracer.Events()
	if len(evs) == 0 {
		t.Fatal("tracer captured nothing")
	}
	var sawQuar, sawWd, sawBilling bool
	for _, e := range evs {
		switch e.Cat {
		case "quarantine":
			sawQuar = true
		case "watchdog":
			sawWd = true
		case "billing":
			sawBilling = true
		}
	}
	if !sawQuar || !sawWd || !sawBilling {
		t.Fatalf("missing trace scopes: quar=%v wd=%v billing=%v", sawQuar, sawWd, sawBilling)
	}
}

// TestByzantineRenderShape pins the render contract pieces other tooling
// greps for (CI gates on the invariant lines).
func TestByzantineRenderShape(t *testing.T) {
	res, err := RunByzantine(byzTestConfig(7))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := res.Render()
	for _, want := range []string{
		"invariants:", "violations=", "quarantine timeline:",
		"adversaries-quarantined", "ues-converged-honest", "overbilling-bounded",
		"availability-slo", "honest-untouched",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestByzantineSLOEngine pins the windowed SLO engine's contract: the
// render carries per-SLO margin lines and margin-bearing invariants, a
// brazen overbilling-only adversary breaches its per-cell overbilling
// window, the breach feeds the quarantine as evidence (slo/signal trace
// instants) unless DisableSLOSignal cuts the edge — and none of it
// perturbs determinism.
func TestByzantineSLOEngine(t *testing.T) {
	spec, err := chaos.ParseSpec("overbill=1x60s@1")
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	mk := func(disable bool, tr *obs.Tracer) ByzantineConfig {
		cfg := byzTestConfig(13)
		cfg.AdvSpec = spec
		cfg.DisableSLOSignal = disable
		cfg.Tracer = tr
		return cfg
	}

	tr := obs.NewTracer(nil)
	res, err := RunByzantine(mk(false, tr))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := res.Render()
	if res.Violations != 0 {
		t.Fatalf("violations with overbilling-only adversaries:\n%s", out)
	}
	for _, want := range []string{
		"slo:", "availability", "attach-p99", "overbill-all",
		"worst_margin=", "breaches=", "margin=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if len(res.SLO) < 3 {
		t.Fatalf("expected >=3 SLO reports, got %d", len(res.SLO))
	}
	for _, iv := range res.Invariants {
		if iv.Name == "availability-slo" {
			if want := res.Availability - 0.9; math.Abs(iv.Margin-want) > 1e-9 {
				t.Fatalf("availability margin %f, want %f", iv.Margin, want)
			}
		}
	}
	cellBreaches := 0
	for _, s := range res.SLO {
		if strings.HasPrefix(s.Name, "overbill:") {
			cellBreaches += s.Breaches
		}
		if s.Evals == 0 {
			t.Fatalf("tracker %s never evaluated", s.Name)
		}
	}
	if cellBreaches == 0 {
		t.Fatalf("no per-cell overbilling breach under a full-rate overbilling adversary:\n%s", out)
	}
	var sawEnter, sawSignal bool
	for _, e := range tr.Events() {
		if e.Cat != "slo" {
			continue
		}
		switch e.Name {
		case "breach-enter":
			sawEnter = true
		case "signal":
			sawSignal = true
		}
	}
	if !sawEnter || !sawSignal {
		t.Fatalf("missing slo trace instants: enter=%v signal=%v", sawEnter, sawSignal)
	}

	// The SLO machinery must not perturb the run: an untraced rerun with
	// the signal enabled renders identically.
	rerun, err := RunByzantine(mk(false, nil))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rerun.Render() != out {
		t.Fatalf("SLO-signal rerun diverged:\n--- first\n%s\n--- rerun\n%s", out, rerun.Render())
	}

	// Cutting the feedback edge: breaches still evaluated and rendered,
	// but no evidence filed with the broker.
	tr2 := obs.NewTracer(nil)
	res2, err := RunByzantine(mk(true, tr2))
	if err != nil {
		t.Fatalf("disabled run: %v", err)
	}
	disabledBreaches := 0
	for _, s := range res2.SLO {
		if strings.HasPrefix(s.Name, "overbill:") {
			disabledBreaches += s.Breaches
		}
	}
	if disabledBreaches == 0 {
		t.Fatal("DisableSLOSignal must not stop breach evaluation")
	}
	for _, e := range tr2.Events() {
		if e.Cat == "slo" && e.Name == "signal" {
			t.Fatal("evidence filed despite DisableSLOSignal")
		}
	}
}

// Package testbed wires the CellBricks components into runnable
// experiments: the prototype attachment benchmark (Fig. 7), the
// wide-area mobility emulation (Table 1, Figs. 8-10), the
// fault-injection failover run, the sharded multi-cell scale sweep, the
// Byzantine quarantine soak, the open-loop attach storm, and the
// real-socket loopback deployment used for end-to-end integration
// tests. Entry points are the Run* functions (RunAttach, RunDrive,
// RunFailover, RunScale, RunByzantine, RunStorm, ...), each
// deterministic per seed and byte-identical for any shard count.
package testbed

import (
	"sync"
	"time"

	"cellbricks/internal/obs"
)

// VirtualClock accumulates simulated latency for the prototype benchmark:
// static per-module processing costs (calibrated to the paper's testbed)
// plus the *measured wall time* of the real cryptographic and protocol
// work this implementation performs, so CellBricks' extra crypto shows up
// honestly in the breakdown.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Duration
	spans  map[string]time.Duration
	tracer *obs.Tracer
}

// NewVirtualClock returns an empty clock.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{spans: make(map[string]time.Duration)}
}

// benchNow is the wall-clock source behind the measured-crypto charges.
// The golden determinism tests replace it with a frozen clock so that the
// only nondeterministic input to the Fig. 7 numbers disappears and a
// parallel run can be compared byte-for-byte against a sequential one.
var benchNow = time.Now

// Now returns accumulated virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Trace attaches a tracer: every Charge is recorded as a span on the
// clock's virtual timeline, turning the Fig. 7 breakdown into a viewable
// attach-phase trace.
func (c *VirtualClock) Trace(t *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// Charge adds d to the clock under a module label.
func (c *VirtualClock) Charge(module string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.now
	c.now += d
	c.spans[module] += d
	c.tracer.Span("attach", module, start, d, nil)
}

// Exec runs f, charging its real wall-clock duration plus a static cost to
// the module.
func (c *VirtualClock) Exec(module string, static time.Duration, f func() error) error {
	t0 := benchNow()
	err := f()
	c.Charge(module, static+benchNow().Sub(t0))
	return err
}

// Spans returns a copy of the per-module accumulation.
func (c *VirtualClock) Spans() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.spans))
	for k, v := range c.spans {
		out[k] = v
	}
	return out
}

package testbed

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/mobility"
)

// Table1Cell is one route x time-of-day comparison.
type Table1Cell struct {
	Route string
	Night bool

	MTTHO time.Duration // CellBricks run's observed mean time to handover

	MNOPingP50 time.Duration
	CBPingP50  time.Duration
	MNOIperf   float64 // bps
	CBIperf    float64
	MNOMOS     float64
	CBMOS      float64
	MNOVideo   float64 // avg quality level
	CBVideo    float64
	MNOWeb     time.Duration
	CBWeb      time.Duration
}

// Table1Config tunes the Table 1 reproduction.
type Table1Config struct {
	Duration time.Duration // per-cell emulated time (paper: hours of driving)
	Seed     int64
	// Runner schedules the independent cell measurements; the zero value
	// fans out across GOMAXPROCS workers. Results are identical either
	// way — every measurement is its own seed-deterministic simulation.
	Runner Runner
}

// table1Jobs is the number of independent measurements per cell: the
// MTTHO world plus MNO/CB runs of ping, iperf, VoIP, video, and web.
const table1Jobs = 11

// runTable1Job regenerates measurement j of one cell, writing only the
// field(s) that job owns. Each job builds its own simulation from the
// scenario seed, so jobs can run in any order or concurrently.
func runTable1Job(j int, route mobility.Route, night bool, cfg Table1Config, cell *Table1Cell) {
	mk := func(arch Arch) Scenario {
		return Scenario{
			Route: route, Night: night, Arch: arch,
			Seed: cfg.Seed, Duration: cfg.Duration,
		}
	}
	switch j {
	case 0:
		// MTTHO observed from the handover schedule of the CB run.
		w := NewWorld(mk(ArchCellBricks))
		if n := len(w.Handovers); n > 1 {
			cell.MTTHO = (w.Handovers[n-1] - w.Handovers[0]) / time.Duration(n-1)
		} else {
			cell.MTTHO = route.MTTHO(night)
		}
	case 1:
		cell.MNOPingP50, _ = RunPing(mk(ArchBaseline))
	case 2:
		cell.CBPingP50, _ = RunPing(mk(ArchCellBricks))
	case 3:
		cell.MNOIperf = RunIperf(mk(ArchBaseline)).AvgBps
	case 4:
		cell.CBIperf = RunIperf(mk(ArchCellBricks)).AvgBps
	case 5:
		cell.MNOMOS = RunVoIP(mk(ArchBaseline)).MOS
	case 6:
		cell.CBMOS = RunVoIP(mk(ArchCellBricks)).MOS
	case 7:
		cell.MNOVideo = RunVideo(mk(ArchBaseline)).AvgLevel
	case 8:
		cell.CBVideo = RunVideo(mk(ArchCellBricks)).AvgLevel
	case 9:
		cell.MNOWeb = RunWeb(mk(ArchBaseline)).AvgLoad
	case 10:
		cell.CBWeb = RunWeb(mk(ArchCellBricks)).AvgLoad
	}
}

// RunTable1Cell runs all four applications under both architectures for
// one route and time of day.
func RunTable1Cell(route mobility.Route, night bool, cfg Table1Config) Table1Cell {
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Minute
	}
	cell := Table1Cell{Route: route.Name, Night: night}
	cfg.Runner.ForEach(table1Jobs, func(j int) {
		runTable1Job(j, route, night, cfg, &cell)
	})
	return cell
}

// Table1Result is the full table.
type Table1Result struct {
	Cells []Table1Cell
}

// RunTable1 reproduces Table 1: three routes x day/night. The full
// cells × measurements grid (6 × 11 independent simulations) is
// flattened into one unit list so the worker pool stays saturated even
// when one cell's iperf run is much slower than another's ping run.
func RunTable1(cfg Table1Config) Table1Result {
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Minute
	}
	type cellKey struct {
		route mobility.Route
		night bool
	}
	var keys []cellKey
	for _, route := range mobility.Routes() {
		for _, night := range []bool{false, true} {
			keys = append(keys, cellKey{route, night})
		}
	}
	cells := make([]Table1Cell, len(keys))
	for i, k := range keys {
		cells[i] = Table1Cell{Route: k.route.Name, Night: k.night}
	}
	cfg.Runner.ForEach(len(keys)*table1Jobs, func(u int) {
		ci, j := u/table1Jobs, u%table1Jobs
		runTable1Job(j, keys[ci].route, keys[ci].night, cfg, &cells[ci])
	})
	return Table1Result{Cells: cells}
}

// Slowdown aggregates the "Overall Perf. Slowdown" row: mean relative
// regression of CellBricks vs MNO per application per time of day.
// Positive = CellBricks slower.
func (r Table1Result) Slowdown(night bool) (iperf, mos, video, web float64) {
	n := 0
	for _, c := range r.Cells {
		if c.Night != night {
			continue
		}
		n++
		iperf += (c.MNOIperf - c.CBIperf) / c.MNOIperf
		mos += (c.MNOMOS - c.CBMOS) / c.MNOMOS
		video += (c.MNOVideo - c.CBVideo) / c.MNOVideo
		web += (c.CBWeb.Seconds() - c.MNOWeb.Seconds()) / c.MNOWeb.Seconds()
	}
	if n == 0 {
		return
	}
	f := float64(n)
	return iperf / f, mos / f, video / f, web / f
}

// Render prints the table in the paper's layout.
func (r Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-5s | %7s | %9s %9s | %9s %9s | %5s %5s | %5s %5s | %7s %7s\n",
		"Route", "Time", "MTTHO", "MNO ping", "CB ping", "MNO iperf", "CB iperf", "MNO", "CB", "MNO", "CB", "MNO web", "CB web")
	fmt.Fprintf(&b, "%-9s %-5s | %7s | %9s %9s | %9s %9s | %5s %5s | %5s %5s | %7s %7s\n",
		"", "", "s", "ms p50", "ms p50", "mbps", "mbps", "MOS", "MOS", "level", "level", "s", "s")
	for _, c := range r.Cells {
		tod := "D"
		if c.Night {
			tod = "N"
		}
		fmt.Fprintf(&b, "%-9s %-5s | %7.2f | %9.1f %9.1f | %9.2f %9.2f | %5.2f %5.2f | %5.2f %5.2f | %7.2f %7.2f\n",
			c.Route, tod, c.MTTHO.Seconds(),
			float64(c.MNOPingP50.Microseconds())/1000, float64(c.CBPingP50.Microseconds())/1000,
			c.MNOIperf/1e6, c.CBIperf/1e6,
			c.MNOMOS, c.CBMOS,
			c.MNOVideo, c.CBVideo,
			c.MNOWeb.Seconds(), c.CBWeb.Seconds())
	}
	for _, night := range []bool{false, true} {
		ip, mos, vid, web := r.Slowdown(night)
		tod := "D"
		if night {
			tod = "N"
		}
		fmt.Fprintf(&b, "Overall slowdown (%s): iperf %+.2f%%  VoIP %+.2f%%  video %+.2f%%  web %+.2f%%\n",
			tod, ip*100, mos*100, vid*100, web*100)
	}
	return b.String()
}

// Fig8Result is the throughput timeline around a handover.
type Fig8Result struct {
	Bin       time.Duration
	MNOSeries []float64
	CBSeries  []float64
	Handovers []time.Duration
}

// RunFig8 reproduces Fig. 8: iperf throughput over time for MNO (TCP) vs
// CellBricks (MPTCP with the deployed 500 ms wait), one daytime downtown
// window containing a handover.
func RunFig8(seed int64, dur time.Duration) Fig8Result {
	if dur == 0 {
		dur = 50 * time.Second
	}
	sc := Scenario{Route: mobility.Downtown, Night: false, Seed: seed, Duration: dur}
	cb := sc
	cb.Arch = ArchCellBricks
	cbWorld := NewWorld(cb)
	cbRes := apps.NewIperf(cbWorld.Sim, cbWorld.Conn, time.Second).Run(dur)

	mno := sc
	mno.Arch = ArchBaseline
	mnoWorld := NewWorld(mno)
	mnoRes := apps.NewIperf(mnoWorld.Sim, mnoWorld.Conn, time.Second).Run(dur)

	return Fig8Result{
		Bin:       time.Second,
		MNOSeries: mnoRes.Series,
		CBSeries:  cbRes.Series,
		Handovers: cbWorld.Handovers,
	}
}

// Render prints the two series with handover markers.
func (r Fig8Result) Render() string {
	var b strings.Builder
	ho := map[int]bool{}
	for _, h := range r.Handovers {
		ho[int(h/r.Bin)] = true
	}
	fmt.Fprintf(&b, "%4s  %12s  %12s\n", "t(s)", "MNO (mbps)", "CB (mbps)")
	for i := 0; i < len(r.MNOSeries) && i < len(r.CBSeries); i++ {
		mark := ""
		if ho[i] {
			mark = "  <- handover"
		}
		fmt.Fprintf(&b, "%4d  %12.2f  %12.2f%s\n", i+1, r.MNOSeries[i]/1e6, r.CBSeries[i]/1e6, mark)
	}
	return b.String()
}

// Fig9Point is relative CellBricks/TCP throughput for one window length.
type Fig9Point struct {
	Window  time.Duration
	RelPerf float64 // 1.0 = parity
}

// Fig9Curve is one configuration's curve.
type Fig9Curve struct {
	Label  string
	Points []Fig9Point
}

// Fig9Result holds all curves.
type Fig9Result struct{ Curves []Fig9Curve }

// RunFig9 reproduces Fig. 9: iperf throughput in the n seconds after a
// handover (n = 1..9), normalized to the TCP baseline over the same
// windows, for modified MPTCP (wait removed) at d = 32, 64, 128 ms plus
// unmodified (500 ms wait) MPTCP. Night policy, as in the paper.
func RunFig9(seed int64, trials int, r Runner) Fig9Result {
	return runFig9(seed, trials, 8*time.Minute, r)
}

// fig9MaxWin is the longest post-handover window (seconds) Fig. 9 plots.
const fig9MaxWin = 9

// fig9Unit is the per-(config, trial) result: for every window length n,
// the CB/TCP throughput ratios in handover order. Keeping the individual
// ratios (rather than a partial sum) lets the reassembly below replay the
// float additions in the exact order the sequential code used.
type fig9Unit struct {
	ratios [fig9MaxWin + 1][]float64
}

func runFig9(seed int64, trials int, dur time.Duration, r Runner) Fig9Result {
	if trials <= 0 {
		trials = 3
	}
	type cfg struct {
		label string
		d     time.Duration
		wait  time.Duration
	}
	cfgs := []cfg{
		{"mod. 32ms", 32 * time.Millisecond, time.Nanosecond}, // ~0 wait
		{"mod. 64ms", 64 * time.Millisecond, time.Nanosecond},
		{"mod. 128ms", 128 * time.Millisecond, time.Nanosecond},
		{"unmod. (500ms)", 31680 * time.Microsecond, 500 * time.Millisecond},
	}
	bin := 100 * time.Millisecond

	// Each (config, trial) pair is an independent pair of simulations —
	// fan them all out, then reduce per window in canonical
	// (config, trial, handover) order so the sums are bit-identical to a
	// sequential run.
	units := runUnits(r, len(cfgs)*trials, func(u int) fig9Unit {
		c := cfgs[u/trials]
		trial := u % trials
		s := seed + int64(trial)*101
		base := Scenario{Route: mobility.Downtown, Night: true, Seed: s, Duration: dur}
		cb := base
		cb.Arch = ArchCellBricks
		cb.AttachLatency = c.d
		cb.MPTCPWait = c.wait
		cbWorld := NewWorld(cb)
		cbSeries := apps.NewIperf(cbWorld.Sim, cbWorld.Conn, bin).Run(dur).Series

		mno := base
		mno.Arch = ArchBaseline
		mnoWorld := NewWorld(mno)
		mnoSeries := apps.NewIperf(mnoWorld.Sim, mnoWorld.Conn, bin).Run(dur).Series

		var out fig9Unit
		hos := cbWorld.Handovers
		for i, at := range hos {
			// Skip windows that contain the next handover.
			next := dur
			if i+1 < len(hos) {
				next = hos[i+1]
			}
			for n := 1; n <= fig9MaxWin; n++ {
				end := at + time.Duration(n)*time.Second
				if end > next || end > dur {
					break
				}
				cbAvg := seriesAvg(cbSeries, at, end, bin)
				mnoAvg := seriesAvg(mnoSeries, at, end, bin)
				if mnoAvg <= 0 {
					continue
				}
				out.ratios[n] = append(out.ratios[n], cbAvg/mnoAvg)
			}
		}
		return out
	})

	var res Fig9Result
	for ci, c := range cfgs {
		sums := make([]float64, fig9MaxWin+1)
		counts := make([]int, fig9MaxWin+1)
		for trial := 0; trial < trials; trial++ {
			u := units[ci*trials+trial]
			for n := 1; n <= fig9MaxWin; n++ {
				for _, ratio := range u.ratios[n] {
					sums[n] += ratio
					counts[n]++
				}
			}
		}
		curve := Fig9Curve{Label: c.label}
		for n := 1; n <= fig9MaxWin; n++ {
			if counts[n] == 0 {
				continue
			}
			curve.Points = append(curve.Points, Fig9Point{
				Window:  time.Duration(n) * time.Second,
				RelPerf: sums[n] / float64(counts[n]),
			})
		}
		res.Curves = append(res.Curves, curve)
	}
	return res
}

func seriesAvg(series []float64, from, to, bin time.Duration) float64 {
	i0 := int(from / bin)
	i1 := int(to / bin)
	if i1 > len(series) {
		i1 = len(series)
	}
	if i0 >= i1 {
		return 0
	}
	sum := 0.0
	for i := i0; i < i1; i++ {
		sum += series[i]
	}
	return sum / float64(i1-i0)
}

// Render prints the Fig. 9 curves.
func (r Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "elapsed since HO")
	for n := 1; n <= 9; n++ {
		fmt.Fprintf(&b, "%7ds", n)
	}
	fmt.Fprintln(&b)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-16s", c.Label)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%7.0f%%", p.RelPerf*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig10Result is the day-vs-night throughput comparison (Appendix A).
type Fig10Result struct {
	Bin         time.Duration
	DaySeries   []float64
	NightSeries []float64
}

// Stats summarizes one series: mean, peak, stddev (the quantities the
// appendix reports).
func Stats(series []float64) (mean, peak, std float64) {
	if len(series) == 0 {
		return
	}
	for _, v := range series {
		mean += v
		if v > peak {
			peak = v
		}
	}
	mean /= float64(len(series))
	for _, v := range series {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(series)))
	return
}

// RunFig10 reproduces Fig. 10: a long iperf on the downtown route under
// the day and the night policy.
func RunFig10(seed int64, dur time.Duration) Fig10Result {
	if dur == 0 {
		dur = 500 * time.Second
	}
	day := Scenario{Route: mobility.Downtown, Night: false, Arch: ArchCellBricks, Seed: seed, Duration: dur}
	night := day
	night.Night = true
	return Fig10Result{
		Bin:         time.Second,
		DaySeries:   RunIperf(day).Series,
		NightSeries: RunIperf(night).Series,
	}
}

// Render prints the appendix summary plus a coarse timeline.
func (r Fig10Result) Render() string {
	var b strings.Builder
	dm, dp, ds := Stats(r.DaySeries)
	nm, np, ns := Stats(r.NightSeries)
	fmt.Fprintf(&b, "day:   mean %6.2f mbps  peak %6.2f  std %6.2f\n", dm/1e6, dp/1e6, ds/1e6)
	fmt.Fprintf(&b, "night: mean %6.2f mbps  peak %6.2f  std %6.2f\n", nm/1e6, np/1e6, ns/1e6)
	fmt.Fprintf(&b, "night/day mean ratio: %.1fx\n", nm/dm)
	step := len(r.DaySeries) / 25
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(&b, "%6s %10s %12s\n", "t(s)", "day(mbps)", "night(mbps)")
	for i := 0; i < len(r.DaySeries) && i < len(r.NightSeries); i += step {
		fmt.Fprintf(&b, "%6d %10.2f %12.2f\n", i+1, r.DaySeries[i]/1e6, r.NightSeries[i]/1e6)
	}
	return b.String()
}

// RenderFig7 prints the attachment-latency breakdown table.
func RenderFig7(results []AttachBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-3s %9s | %7s %7s %7s %7s %9s %8s\n",
		"placement", "arch", "total", "ue", "enb", "agw", "sdb", "brokerd", "other")
	for _, r := range results {
		ms := func(k string) float64 { return r.Breakdown[k].Seconds() * 1000 }
		fmt.Fprintf(&b, "%-10s %-3s %7.2fms | %7.2f %7.2f %7.2f %7.2f %9.2f %8.2f\n",
			r.Placement.Name, r.Arch, r.Mean.Seconds()*1000,
			ms(SpanUE), ms(SpanENB), ms(SpanAGW), ms(SpanSDB), ms(SpanBrokerd), ms(SpanOther))
	}
	return b.String()
}

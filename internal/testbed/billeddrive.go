package testbed

import (
	"bytes"
	"fmt"
	"time"

	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/mobility"
	"cellbricks/internal/ue"
)

// BilledDriveResult is the outcome of a drive with the full verifiable
// billing loop running: every emulated packet is independently counted by
// the "bTelco" (at its side of the radio link) and the UE baseband (at
// delivery), both report to the broker every cycle, and the broker's
// Fig. 5 checks run on each aligned pair.
type BilledDriveResult struct {
	Sessions    int // one per bTelco attachment
	Cycles      int // aligned report pairs checked
	Mismatches  int
	UEBytes     uint64
	TelcoBytes  uint64
	Settlements []billing.Settlement
	TotalOwed   float64
}

// RunBilledDrive runs a CellBricks night drive in the emulator while the
// *real* control plane (SAP attachments against a real broker, real
// signed+sealed reports) runs alongside: the integration the paper's
// testbed demonstrates at small scale, here across dozens of provider
// switches. The bTelco-side counter sees packets the moment they are
// admitted to the radio link, the UE counts them on delivery — so packets
// in flight at a detachment produce exactly the honest discrepancy the
// loss-tolerant threshold must absorb.
func RunBilledDrive(sc Scenario, cycle time.Duration) (BilledDriveResult, error) {
	sc = sc.Defaults()
	if cycle == 0 {
		cycle = 30 * time.Second
	}
	var res BilledDriveResult

	// Real control-plane principals.
	ca, err := pki.NewCAFromSeed("drive-ca", bytes.Repeat([]byte{71}, 32))
	if err != nil {
		return res, err
	}
	brokerKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{72}, 32))
	if err != nil {
		return res, err
	}
	brkCfg := broker.DefaultConfig("broker.drive", brokerKey, ca.Public())
	// Absorb bytes in flight at a detachment: BDP + bottleneck queue of
	// the night path (~0.8 MB at ~15 Mbps with a 600 ms AQM budget).
	brkCfg.VerifierConfig.SlackBytes = 1 << 20
	brk := broker.New(brkCfg)
	ueKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{73}, 32))
	if err != nil {
		return res, err
	}
	idU := brk.RegisterUser(ueKey.Public())
	ueState := &sap.UEState{IDU: idU, IDB: "broker.drive", Key: ueKey, BrokerPub: brokerKey.Public()}
	meter := ue.NewBasebandMeter(ueKey, brokerKey.Public())

	certNow := time.Now()
	newTelco := func(i int) *sap.TelcoState {
		key, err := pki.GenerateKeyPair()
		if err != nil {
			return nil
		}
		id := fmt.Sprintf("drive-btelco-%d", i)
		cert := ca.Issue(id, "btelco", key.Public(), certNow.Add(-time.Hour), certNow.Add(24*time.Hour))
		return &sap.TelcoState{IDT: id, Key: key, Cert: cert, Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 2.0}}
	}

	// Per-session state.
	type session struct {
		telco      *sap.TelcoState
		uref       string
		seq        uint32
		started    time.Duration
		telcoBytes uint64
		// Radio-layer packet counters: the RLC sequence-number view the
		// baseband uses to attribute missing packets as loss.
		admitted  uint64
		delivered uint64
		lossSeen  uint64
	}

	// Emulated data plane.
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	ueIP := "bd-ue-0"
	sim.Connect(ServerIP, ueIP, op.CellularLink(sc.Route, sc.Night))
	conn := mptcp.NewConn(sim, ServerIP, ueIP, mptcp.Config{
		Multipath: true, AddrWorkWait: sc.MPTCPWait, Timeout: 60 * time.Second,
	})
	// The UE baseband counts *received radio bytes* (PDCP counters see
	// retransmitted payloads too), not the transport's deduplicated
	// stream; the tap below mirrors that.

	var cur *session
	attach := func(idx int) error {
		telco := newTelco(idx)
		if telco == nil {
			return fmt.Errorf("testbed: telco key generation failed")
		}
		reqU, pending, err := ueState.NewAttachRequest(telco.IDT)
		if err != nil {
			return err
		}
		reqT, err := telco.ForwardRequest(reqU)
		if err != nil {
			return err
		}
		resp, err := brk.HandleAuthRequest(reqT)
		if err != nil {
			return err
		}
		grant, respU, err := telco.HandleResponse(brokerKey.Public(), resp)
		if err != nil {
			return err
		}
		if _, _, err := ueState.HandleResponse(pending, respU); err != nil {
			return err
		}
		meter.StartSession()
		meter.BindSession(grant.URef)
		cur = &session{telco: telco, uref: grant.URef, started: sim.Now()}
		res.Sessions++
		return nil
	}
	if err := attach(0); err != nil {
		return res, err
	}

	// The bTelco-side counter: packets admitted toward the UE's current
	// address (data segments only, at payload size, as a PGW byte counter
	// would see the SDF). The delta between the two counters is exactly
	// the honest discrepancy of §4.3: bytes the bTelco carried that never
	// reached the UE (radio loss, in-flight at detachment).
	sim.OnSend = func(p *netem.Packet, _ time.Duration) {
		if cur == nil || p.Dst != ueIP {
			return
		}
		if seg, ok := p.Payload.(*mptcp.Segment); ok && seg.Len > 0 {
			cur.telcoBytes += uint64(seg.Len)
			res.TelcoBytes += uint64(seg.Len)
			cur.admitted++
		}
	}
	sim.OnDeliver = func(p *netem.Packet, _ time.Duration) {
		if cur == nil || p.Dst != ueIP {
			return
		}
		if seg, ok := p.Payload.(*mptcp.Segment); ok && seg.Len > 0 {
			meter.CountDL(seg.Len)
			res.UEBytes += uint64(seg.Len)
			cur.delivered++
		}
	}

	// Reporting cycle: both sides report, broker checks.
	report := func() error {
		if cur == nil {
			return nil
		}
		rel := sim.Now() - cur.started
		cur.seq++
		telcoRep := &billing.Report{
			SessionRef: cur.uref, Reporter: billing.ReporterTelco,
			Seq: cur.seq, Rel: rel, DLBytes: cur.telcoBytes,
		}
		env, err := billing.Seal(telcoRep, cur.telco.Key, brokerKey.Public())
		if err != nil {
			return err
		}
		if _, err := brk.HandleReport(env); err != nil {
			return err
		}
		// Radio losses appear to the baseband as RLC sequence gaps; feed
		// the delta so the UE report carries the loss rate the Fig. 5
		// threshold scales with.
		if gap := cur.admitted - cur.delivered; gap > cur.lossSeen {
			meter.CountDLLoss(int(gap - cur.lossSeen))
			cur.lossSeen = gap
		}
		ueEnv, err := meter.Report(rel)
		if err != nil {
			return err
		}
		m, err := brk.HandleReport(ueEnv)
		if err != nil {
			return err
		}
		res.Cycles++
		if m != nil {
			res.Mismatches++
		}
		return nil
	}

	// Settle the finished session and attach to the next bTelco.
	var rollErr error
	settle := func() {
		if cur == nil {
			return
		}
		if err := report(); err != nil && rollErr == nil {
			rollErr = err
		}
		st, err := brk.SettleSession(cur.uref, cycle)
		if err == nil {
			res.Settlements = append(res.Settlements, st)
			res.TotalOwed += st.Amount
		}
	}

	idx := 0
	for _, at := range sc.Route.Handovers(sim.Rand(), sc.Night, sc.Duration) {
		at := at
		sim.At(at, func() {
			if rollErr != nil {
				return
			}
			settle()
			conn.AddrInvalidated()
			sim.Disconnect(ServerIP, ueIP)
			idx++
			old := cur
			_ = old
			ueIP = fmt.Sprintf("bd-ue-%d", idx)
			sim.Connect(ServerIP, ueIP, op.CellularLink(sc.Route, sc.Night))
			newIP := ueIP
			i := idx
			sim.After(sc.AttachLatency, func() {
				if err := attach(i); err != nil && rollErr == nil {
					rollErr = err
					return
				}
				conn.AddrAvailable(newIP)
			})
		})
	}

	// Periodic reporting and a backlogged sender.
	var tick func()
	tick = func() {
		if sim.Now() >= sc.Duration || rollErr != nil {
			return
		}
		if err := report(); err != nil && rollErr == nil {
			rollErr = err
		}
		sim.After(cycle, tick)
	}
	sim.After(cycle, tick)
	var topUp func()
	topUp = func() {
		if sim.Now() >= sc.Duration {
			return
		}
		conn.Write(32 << 20)
		sim.After(time.Second, topUp)
	}
	topUp()

	sim.RunUntil(sc.Duration)
	settle()
	return res, rollErr
}

package testbed

import (
	"fmt"
	"strings"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/billing"
	"cellbricks/internal/broker"
	"cellbricks/internal/nas"
	"cellbricks/internal/netem"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"

	"math/rand"
)

// This file is the attach storm: an open-loop workload that drives the
// broker's control plane the way a stadium letting out drives a real
// one — a seeded Poisson arrival process whose rate ramps over the run
// and multiplies through a flash-crowd spike window — and measures how
// the broker survives it with the three §4.2-adjacent mechanisms this
// repo grew for the purpose:
//
//   - batching: attach handshakes, fast-path resumes and billing
//     reports arriving within one sim-clock window coalesce into a
//     single broker state transaction (broker.Batcher);
//   - caching: granted authorization decisions are memoized and
//     seq-invalidated (broker.EnableAuthCache), and UEs re-attach over
//     the HMAC resume fast path instead of the full asymmetric
//     handshake whenever they hold a live ticket;
//   - admission control: a token-bucket + queue-depth shedder refuses
//     attaches the broker cannot absorb, answering with the typed
//     retry-after hint ue.AttachFSM floors its backoff at.
//
// Both execution modes — Serial (baseline: every item through the
// single-request handlers) and the default optimized pipeline — share
// one arrival schedule, one admission gate and one flush cadence, so
// the rendered result is byte-identical across the two AND across any
// shard count; only the wall-clock (Metrics) numbers differ. That
// identity is the whole point: the CI gate hashes the render across
// {K=1, K=4} x {serial, batch} and the bench compares the wall-clock
// attach throughput at the spike.
//
// Determinism follows the byzantine soak's recipe (see byzantine.go):
// broker state mutates only inside shard-0 handlers, every entity owns
// a seeded rng, and every cross-shard send rides its sender's private
// time lattice with prime-offset gateway delays so no two arrivals
// ever tie. Two storm-specific rules are layered on top:
//
//   - The UE consumes its resume ticket optimistically at attempt time
//     and ticket bookkeeping runs on EVERY completion (only session
//     adoption is attach-seq guarded), with the ticket restored when
//     admission sheds the attempt — so the optimized mode never
//     presents a stale single-use ticket and both modes see zero
//     denials on honest traffic.
//   - The flush tick runs on shard 0 at a sub-millisecond phase no
//     packet arrival can occupy, pairing Batcher.Flush outcomes with
//     their completion callbacks in enqueue order.

// StormConfig parameterizes one attach-storm run.
type StormConfig struct {
	Seed     int64
	Duration time.Duration // emulated horizon (default 30 s)

	// Topology: like the soak, UEs and cells live in fault-isolated
	// groups, group g on shard g mod K (defaults 4 / 2 / 25 = 100 UEs).
	Groups        int
	CellsPerGroup int
	UEsPerGroup   int

	// Arrival process, fleet-wide attaches per second: BaseRate at t=0
	// ramping linearly to PeakRate at the horizon (default 40 -> 80),
	// multiplied by Spike inside [SpikeAt, SpikeAt+SpikeDur) (defaults
	// x8 at Duration/2 for Duration/6).
	BaseRate float64
	PeakRate float64
	Spike    float64
	SpikeAt  time.Duration
	SpikeDur time.Duration

	// Window is the batcher's flush cadence (default 10 ms);
	// ReportEvery the billing cadence per session (default 2 s).
	Window      time.Duration
	ReportEvery time.Duration

	// Admission tunes the shedder; the zero value defaults to
	// rate 2xBaseRate, burst BaseRate, max queue 48, hint 500 ms.
	Admission broker.AdmissionConfig

	// Serial selects the baseline execution strategy: per-item handlers,
	// no auth cache, no resume fast path. The zero value is the
	// optimized pipeline. Rendered output is identical either way.
	Serial bool

	// Retry tunes the UE attach machine (default: 6 attempts, 2 s max
	// backoff, 20% jitter).
	Retry ue.RetryPolicy

	// Shards is the netem.World shard count (default 1); output is
	// byte-identical for any value.
	Shards int
}

// Defaults fills zero fields.
func (c StormConfig) Defaults() StormConfig {
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Groups <= 0 {
		c.Groups = 4
	}
	if c.CellsPerGroup <= 0 {
		c.CellsPerGroup = 2
	}
	if c.UEsPerGroup <= 0 {
		c.UEsPerGroup = 25
	}
	if c.BaseRate == 0 {
		c.BaseRate = 40
	}
	if c.PeakRate == 0 {
		c.PeakRate = 2 * c.BaseRate
	}
	if c.Spike == 0 {
		c.Spike = 8
	}
	if c.SpikeAt == 0 {
		c.SpikeAt = c.Duration / 2
	}
	if c.SpikeDur == 0 {
		c.SpikeDur = c.Duration / 6
	}
	if c.Window == 0 {
		c.Window = 10 * time.Millisecond
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 2 * time.Second
	}
	if c.Admission == (broker.AdmissionConfig{}) {
		c.Admission = broker.AdmissionConfig{
			Rate:       2 * c.BaseRate,
			Burst:      c.BaseRate,
			MaxQueue:   48,
			RetryAfter: 500 * time.Millisecond,
		}
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 6
	}
	if c.Retry.MaxBackoff == 0 {
		c.Retry.MaxBackoff = 2 * time.Second
	}
	if c.Retry.JitterFrac == 0 {
		c.Retry.JitterFrac = 0.2
	}
	c.Retry = c.Retry.WithDefaults()
	if c.Shards < 1 {
		c.Shards = 1
	}
	return c
}

// inSpike reports whether instant t falls inside the flash-crowd window.
func (c StormConfig) inSpike(t time.Duration) bool {
	return t >= c.SpikeAt && t < c.SpikeAt+c.SpikeDur
}

// rateAt is the fleet-wide arrival intensity at instant t.
func (c StormConfig) rateAt(t time.Duration) float64 {
	r := c.BaseRate + (c.PeakRate-c.BaseRate)*float64(t)/float64(c.Duration)
	if c.inSpike(t) {
		r *= c.Spike
	}
	return r
}

const (
	stormBrokerName = "storm-broker"
	stormCtrlSize   = 600
	// stormFlushPhase is the sub-millisecond phase of the batch flush
	// tick on shard 0. UE lattice phases are whole microseconds and
	// gateway delays add g*1009 ns per hop, so no packet arrival lands
	// on a half-microsecond instant for any plausible group count — the
	// flush never ties with a handler (same argument as byzSLOPhase).
	stormFlushPhase = 999500 * time.Nanosecond
)

// StormResult is the outcome of one storm run. Every field above
// Metrics derives from virtual time and seeded randomness — Render
// uses only those. Metrics carries the wall-clock performance numbers
// (which legitimately differ run to run and mode to mode).
type StormResult struct {
	Config StormConfig

	Arrivals int // storm arrivals fired
	Attempts int // attach attempts (first tries and retries)
	Attaches int // attach grants adopted by their UE
	Grants   int // broker grants (includes grants a UE outraced)
	Resumes  int // grants served over the resume fast path (0 serial)
	Denied   int // broker denials
	Sheds    int // attempts refused by admission control
	Retries  int
	GiveUps  int

	SpikeArrivals int
	SpikeGrants   int
	SpikeSheds    int

	Admitted   uint64 // admission-control grants
	RateSheds  uint64
	QueueSheds uint64

	LatMS []float64 // attach latency samples, storm start to adoption

	Sessions      int
	Reports       int
	Mismatches    int
	PaidUnits     float64
	VerifiedBytes uint64
	Availability  float64

	// Wall-clock segments (pre-spike, spike, post-spike) and derived
	// throughput — Metrics-only, never rendered.
	WallPre, WallSpike, WallPost time.Duration
	CacheHits, CacheMisses       uint64
	BatchFlushes, BatchItems     uint64
}

type stormSession struct {
	ue    *stormUE
	cell  *stormCell
	uref  string
	start time.Duration
	live  bool
	dl    uint64
	seq   uint32
}

type stormCell struct {
	grp   *stormGroup
	idx   int
	idT   string
	telco *sap.TelcoState
	// resumeSS maps live session references to their shared secret —
	// the bTelco-side state the resume fast path co-signs with.
	resumeSS map[string]nas.MasterKey
	sessions []*stormSession
}

type stormUE struct {
	grp    *stormGroup
	idx    int
	global int
	phase  time.Duration
	rng    *rand.Rand

	st    *sap.UEState
	meter *ue.BasebandMeter

	sess      *stormSession
	attachSeq int
	fsm       *ue.AttachFSM
	prefer    int
	// resume holds the per-cell fast-path ticket (optimized mode only).
	// A ticket is consumed optimistically at attempt time and restored
	// if admission sheds the attempt before the broker saw it.
	resume []*sap.ResumeSession

	stormStart    time.Duration
	attachedSince time.Duration
	attachedDur   time.Duration
}

type stormGroup struct {
	w      *stormWorld
	idx    int
	sim    *netem.Sim
	gwName string
	cells  []*stormCell
	ues    []*stormUE

	// Shard-local tallies, merged after the run.
	arrivals, spikeArrivals    int
	attempts, attaches, denied int
	retries, giveups, resumes  int
	latMS                      []float64
}

type stormWorld struct {
	cfg       StormConfig
	world     *netem.World
	sim0      *netem.Sim
	groups    []*stormGroup
	brk       *broker.Brokerd
	bat       *broker.Batcher
	brokerPub pki.PublicIdentity

	// Shard-0 state: written only by broker-endpoint handlers and the
	// flush tick. pending pairs, in enqueue order, with the outcomes
	// the next Flush returns.
	pending     []func(broker.BatchOutcome)
	grants      int
	spikeGrants int
	denied      int
	sheds       int
	spikeSheds  int
	reports     int
	mismatches  int

	runErr error
}

func (w *stormWorld) fail(err error) {
	if w.runErr == nil && err != nil {
		w.runErr = err
	}
}

// toBroker ships a closure to the broker endpoint over group g's gateway
// link; it executes on shard 0 in canonical arrival order.
func (w *stormWorld) toBroker(g int, fn func()) {
	grp := w.groups[g]
	pkt := grp.sim.GetPacket()
	pkt.Src, pkt.Dst, pkt.Size = grp.gwName, stormBrokerName, stormCtrlSize
	pkt.Payload = byzMsg{fn}
	grp.sim.Send(pkt)
}

// toGroup ships a closure from the broker back to group g's gateway; it
// executes on g's shard.
func (w *stormWorld) toGroup(g int, fn func()) {
	grp := w.groups[g]
	pkt := w.sim0.GetPacket()
	pkt.Src, pkt.Dst, pkt.Size = stormBrokerName, grp.gwName, stormCtrlSize
	pkt.Payload = byzMsg{fn}
	w.sim0.Send(pkt)
}

func newStormWorld(cfg StormConfig) (*stormWorld, error) {
	world := netem.NewWorld(cfg.Seed, cfg.Shards)
	w := &stormWorld{cfg: cfg, world: world, sim0: world.Shard(0)}

	epoch := time.Unix(1_760_000_000, 0)
	ca, err := pki.NewCAFromSeed("storm-ca", byzSeed(201, 0))
	if err != nil {
		return nil, err
	}
	brokerKey, err := pki.KeyPairFromSeed(byzSeed(202, 0))
	if err != nil {
		return nil, err
	}
	bcfg := broker.DefaultConfig(stormBrokerName, brokerKey, ca.Public())
	bcfg.Now = func() time.Time { return epoch }
	w.brk = broker.New(bcfg)
	w.brokerPub = brokerKey.Public()
	// The shedder refills on virtual time, so shedding is part of the
	// deterministic output; the auth cache and the batch pipeline are
	// the optimized mode's machinery.
	w.brk.EnableAdmission(cfg.Admission, w.sim0.Now)
	if !cfg.Serial {
		w.brk.EnableAuthCache(4096)
	}
	w.bat = w.brk.NewBatcher(cfg.Serial)

	G, C, U := cfg.Groups, cfg.CellsPerGroup, cfg.UEsPerGroup
	nUE := G * U
	if nUE+1 >= 1000 {
		return nil, fmt.Errorf("testbed: storm supports at most 999 UEs (lattice phases), got %d", nUE)
	}

	w.world.Place(stormBrokerName, 0)
	w.world.Register(stormBrokerName, func(p *netem.Packet) {
		if m, ok := p.Payload.(byzMsg); ok {
			m.fn()
		}
	})

	for g := 0; g < G; g++ {
		shard := g % cfg.Shards
		grp := &stormGroup{
			w:      w,
			idx:    g,
			sim:    world.Shard(shard),
			gwName: fmt.Sprintf("storm-gw-%d", g),
		}
		w.groups = append(w.groups, grp)
		w.world.Place(grp.gwName, shard)
		w.world.Register(grp.gwName, func(p *netem.Packet) {
			if m, ok := p.Payload.(byzMsg); ok {
				m.fn()
			}
		})
		// Prime-offset delays: control packets from different groups
		// never tie at the broker (see the byzantine recipe).
		w.world.Connect(grp.gwName, stormBrokerName, &netem.Link{
			Delay: 10*time.Millisecond + time.Duration(g)*1009*time.Nanosecond,
		})

		for c := 0; c < C; c++ {
			global := g*C + c
			key, err := pki.KeyPairFromSeed(byzSeed(210, global))
			if err != nil {
				return nil, err
			}
			idT := fmt.Sprintf("storm-telco-%d-%d", g, c)
			cert := ca.Issue(idT, "btelco", key.Public(), epoch.Add(-time.Hour), epoch.Add(24*time.Hour))
			grp.cells = append(grp.cells, &stormCell{
				grp: grp,
				idx: c,
				idT: idT,
				telco: &sap.TelcoState{
					IDT: idT, Key: key, Cert: cert,
					Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
				},
				resumeSS: make(map[string]nas.MasterKey),
			})
		}

		for j := 0; j < U; j++ {
			global := g*U + j
			key, err := pki.KeyPairFromSeed(byzSeed(220, global))
			if err != nil {
				return nil, err
			}
			idU := w.brk.RegisterUser(key.Public())
			u := &stormUE{
				grp:    grp,
				idx:    j,
				global: global,
				phase:  time.Duration(global+1) * time.Microsecond,
				rng:    rand.New(rand.NewSource(cfg.Seed + 5000 + int64(global))),
				st: &sap.UEState{
					IDU: idU, IDB: stormBrokerName, Key: key, BrokerPub: w.brokerPub,
				},
				resume: make([]*sap.ResumeSession, C),
			}
			u.meter = ue.NewBasebandMeter(key, w.brokerPub)
			grp.ues = append(grp.ues, u)
		}
	}

	// Pre-draw every UE's arrival schedule by thinning a homogeneous
	// Poisson process at the envelope rate: accepted points follow the
	// ramp-and-spike intensity exactly, and because the draws happen
	// here — before the clock starts, from the UE's private rng — the
	// schedule is identical for any shard count and both modes.
	spikeMul := cfg.Spike
	if spikeMul < 1 {
		spikeMul = 1
	}
	peak := cfg.PeakRate
	if cfg.BaseRate > peak {
		peak = cfg.BaseRate
	}
	lambdaMax := peak * spikeMul / float64(nUE)
	for _, grp := range w.groups {
		for _, u := range grp.ues {
			u := u
			t := time.Duration(0)
			for {
				t += time.Duration(u.rng.ExpFloat64() / lambdaMax * float64(time.Second))
				if t >= cfg.Duration {
					break
				}
				if u.rng.Float64()*lambdaMax > cfg.rateAt(t)/float64(nUE) {
					continue // thinned: envelope point outside the intensity
				}
				at := latticeAt(t, u.phase)
				if at >= cfg.Duration {
					break
				}
				grp.sim.At(at, u.arrive)
			}
		}
	}

	// Flush tick: shard 0, every Window, at a phase nothing else can
	// occupy. Outcomes pair with pending callbacks in enqueue order.
	var flushTick func()
	flushTick = func() {
		outs := w.bat.Flush()
		pend := w.pending
		w.pending = nil
		if len(outs) != len(pend) {
			w.fail(fmt.Errorf("testbed: storm flush returned %d outcomes for %d callbacks", len(outs), len(pend)))
			return
		}
		for i, fn := range pend {
			fn(outs[i])
		}
		if next := latticeAt(w.sim0.Now()+cfg.Window, stormFlushPhase); next < cfg.Duration {
			w.sim0.At(next, flushTick)
		}
	}
	w.sim0.At(latticeAt(0, stormFlushPhase), flushTick)
	return w, nil
}

// arrive is one storm arrival: the subscriber (re)starts its attach —
// detaching first if attached, as the paper's mobility story has it —
// preferring the next cell in its rotation.
func (u *stormUE) arrive() {
	w := u.grp.w
	if w.runErr != nil {
		return
	}
	now := u.grp.sim.Now()
	u.grp.arrivals++
	if w.cfg.inSpike(now) {
		u.grp.spikeArrivals++
	}
	u.detach()
	u.attachSeq++
	u.prefer = u.attachSeq % len(u.grp.cells)
	u.stormStart = now
	u.fsm = ue.NewAttachFSM(w.cfg.Retry, len(u.grp.cells), u.rng)
	u.attempt(u.attachSeq)
}

func (u *stormUE) detach() {
	s := u.sess
	if s == nil {
		return
	}
	s.live = false
	u.sess = nil
	u.attachedDur += u.grp.sim.Now() - u.attachedSince
}

// after schedules fn on this UE's private time lattice.
func (u *stormUE) after(d time.Duration, fn func()) {
	u.grp.sim.At(latticeAt(u.grp.sim.Now()+d, u.phase), fn)
}

// attempt runs one attach attempt. In optimized mode a UE holding a
// live ticket for the chosen cell goes over the resume fast path; the
// ticket is consumed NOW (optimistically) so an overlapping attempt can
// never replay it, and restored only if admission sheds this attempt
// before the broker consumed it. Serial mode always runs the full
// handshake — the sends are identically timed either way, which is what
// keeps the two modes byte-identical.
func (u *stormUE) attempt(seq int) {
	w := u.grp.w
	if seq != u.attachSeq || w.runErr != nil {
		return
	}
	C := len(u.grp.cells)
	ci := (u.prefer + u.fsm.Candidate()) % C
	cell := u.grp.cells[ci]
	u.grp.attempts++
	g := u.grp.idx

	if !w.cfg.Serial {
		if tkt := u.resume[ci]; tkt != nil {
			ss, live := cell.resumeSS[tkt.URef]
			u.resume[ci] = nil
			if live {
				req, err := tkt.NewResumeRequest()
				if err != nil {
					w.fail(err)
					return
				}
				if err := cell.telco.ForwardResume(req, ss); err != nil {
					w.fail(err) // our own ticket failed its MAC: a bug
					return
				}
				tkt, ssOld := tkt, ss
				w.toBroker(g, func() {
					if err := w.brk.AdmitAttach(w.bat.Depth()); err != nil {
						w.tallyShed()
						w.toGroup(g, func() {
							u.resume[ci] = tkt // broker never saw it
							u.failAttach(seq, err)
						})
						return
					}
					w.bat.EnqueueResume(req)
					w.pending = append(w.pending, func(out broker.BatchOutcome) {
						w.tallyAttach(out)
						w.toGroup(g, func() { u.finishResume(seq, ci, tkt, req, ssOld, out) })
					})
				})
				return
			}
		}
	}

	reqU, pending, err := u.st.NewAttachRequest(cell.idT)
	if err != nil {
		w.fail(err)
		return
	}
	reqT, err := cell.telco.ForwardRequest(reqU)
	if err != nil {
		w.fail(err)
		return
	}
	w.toBroker(g, func() {
		if err := w.brk.AdmitAttach(w.bat.Depth()); err != nil {
			w.tallyShed()
			w.toGroup(g, func() { u.failAttach(seq, err) })
			return
		}
		w.bat.EnqueueAuth(reqT)
		w.pending = append(w.pending, func(out broker.BatchOutcome) {
			w.tallyAttach(out)
			w.toGroup(g, func() { u.finishFull(seq, ci, pending, out) })
		})
	})
}

// tallyShed and tallyAttach run on shard 0 and classify against the
// broker clock — flush and admission instants are mode-invariant, so
// these rendered counters are too.
func (w *stormWorld) tallyShed() {
	w.sheds++
	if w.cfg.inSpike(w.sim0.Now()) {
		w.spikeSheds++
	}
}

func (w *stormWorld) tallyAttach(out broker.BatchOutcome) {
	granted := (out.Auth != nil && out.Auth.Granted) || (out.Resume != nil && out.Resume.Granted)
	switch {
	case granted:
		w.grants++
		if w.cfg.inSpike(w.sim0.Now()) {
			w.spikeGrants++
		}
	case out.Auth != nil || out.Resume != nil:
		w.denied++
	}
}

func (u *stormUE) failAttach(seq int, err error) {
	if seq != u.attachSeq {
		return
	}
	delay, giveUp := u.fsm.Fail(err)
	if giveUp {
		u.grp.giveups++
		return // wait for the next storm arrival
	}
	u.grp.retries++
	u.after(delay, func() { u.attempt(seq) })
}

// finishFull completes a full-handshake attempt. Ticket bookkeeping
// runs on EVERY grant — even one the UE outraced with a newer attach —
// so the bTelco's resumeSS map and the UE's ticket shelf always agree
// with the broker's single-use ledger; only session adoption is
// seq-guarded.
func (u *stormUE) finishFull(seq, ci int, pending *sap.PendingAttach, out broker.BatchOutcome) {
	w := u.grp.w
	if out.Err != nil {
		u.failAttach(seq, out.Err)
		return
	}
	cell := u.grp.cells[ci]
	grant, respU, err := cell.telco.HandleResponse(w.brokerPub, out.Auth)
	if err != nil {
		u.failAttach(seq, err)
		return
	}
	ss, uref, err := u.st.HandleResponse(pending, respU)
	if err != nil {
		w.fail(err)
		return
	}
	if !w.cfg.Serial {
		u.resume[ci] = &sap.ResumeSession{IDT: cell.idT, URef: uref, SS: ss}
		cell.resumeSS[uref] = grant.SS
	}
	if seq != u.attachSeq {
		return
	}
	u.attachTo(ci, uref)
}

// finishResume completes a fast-path attempt (optimized mode only).
// Like finishFull, the single-use bookkeeping — retire the consumed
// reference, shelve the successor ticket — is unconditional.
func (u *stormUE) finishResume(seq, ci int, tkt *sap.ResumeSession, req *sap.ResumeReq, ssOld nas.MasterKey, out broker.BatchOutcome) {
	w := u.grp.w
	if out.Err != nil {
		w.fail(out.Err)
		return
	}
	cell := u.grp.cells[ci]
	if !out.Resume.Granted {
		// Honest storms never reach here; the broker's ledger and ours
		// agree by construction. Fall back like any denial.
		u.failAttach(seq, fmt.Errorf("testbed: resume denied: %s", out.Resume.Cause))
		return
	}
	grant2, err := cell.telco.AcceptResume(req, out.Resume, ssOld)
	if err != nil {
		w.fail(err)
		return
	}
	delete(cell.resumeSS, req.URef)
	cell.resumeSS[grant2.URef] = grant2.SS
	next, _, err := tkt.HandleResumeResponse(req, out.Resume)
	if err != nil {
		w.fail(err)
		return
	}
	u.resume[ci] = next
	u.grp.resumes++
	if seq != u.attachSeq {
		return
	}
	u.attachTo(ci, grant2.URef)
}

// attachTo adopts a granted session: latency sample, billing meter
// rebind, and the report chain.
func (u *stormUE) attachTo(ci int, uref string) {
	now := u.grp.sim.Now()
	u.grp.attaches++
	u.grp.latMS = append(u.grp.latMS, float64(now-u.stormStart)/float64(time.Millisecond))
	cell := u.grp.cells[ci]
	s := &stormSession{ue: u, cell: cell, uref: uref, start: now, live: true}
	cell.sessions = append(cell.sessions, s)
	u.sess = s
	u.attachedSince = now
	u.meter.StartSession()
	u.meter.BindSession(uref)
	u.grp.sim.At(latticeAt(now+u.grp.w.cfg.ReportEvery, u.phase), func() { u.reportTick(s) })
}

// reportTick emits the aligned billing pair for session s: synthetic
// but deterministic usage counted into both the UE baseband meter and
// the bTelco's per-session counter (honest traffic — the verifier must
// stay silent). Both reports ride one control packet, so the broker
// ingests UE-then-telco per cycle in both modes.
func (u *stormUE) reportTick(s *stormSession) {
	w := u.grp.w
	if u.sess != s || w.runErr != nil {
		return
	}
	now := u.grp.sim.Now()
	n := 32<<10 + (u.global%17)*997
	u.meter.CountDL(n)
	s.dl += uint64(n)
	s.seq++
	rel := now - s.start
	ueEnv, err := u.meter.Report(rel)
	if err != nil {
		w.fail(err)
		return
	}
	tr := &billing.Report{
		SessionRef: s.uref,
		Reporter:   billing.ReporterTelco,
		Seq:        s.seq,
		Rel:        rel,
		DLBytes:    s.dl,
	}
	tEnv, err := billing.Seal(tr, s.cell.telco.Key, w.brokerPub)
	if err != nil {
		w.fail(err)
		return
	}
	g := u.grp.idx
	w.toBroker(g, func() {
		w.reports += 2
		w.bat.EnqueueReport(ueEnv)
		w.bat.EnqueueReport(tEnv)
		w.pending = append(w.pending, w.reportOutcome, w.reportOutcome)
	})
	u.grp.sim.At(latticeAt(now+w.cfg.ReportEvery, u.phase), func() { u.reportTick(s) })
}

func (w *stormWorld) reportOutcome(out broker.BatchOutcome) {
	if out.Mismatch != nil {
		w.mismatches++
	}
	if out.Err != nil {
		w.fail(fmt.Errorf("testbed: storm report rejected: %w", out.Err))
	}
}

// collect builds the result after the world has run to the horizon.
func (w *stormWorld) collect() StormResult {
	cfg := w.cfg
	res := StormResult{
		Config: cfg,
		Grants: w.grants, SpikeGrants: w.spikeGrants, Denied: w.denied,
		Sheds: w.sheds, SpikeSheds: w.spikeSheds,
		Reports: w.reports, Mismatches: w.mismatches,
	}
	res.Admitted, res.RateSheds, res.QueueSheds = w.brk.AdmissionStats()
	res.CacheHits, res.CacheMisses, _ = w.brk.AuthCacheStats()
	res.BatchFlushes, res.BatchItems = w.bat.Stats()
	var availSum float64
	for _, grp := range w.groups {
		res.Arrivals += grp.arrivals
		res.SpikeArrivals += grp.spikeArrivals
		res.Attempts += grp.attempts
		res.Attaches += grp.attaches
		res.Retries += grp.retries
		res.GiveUps += grp.giveups
		res.Resumes += grp.resumes
		res.LatMS = append(res.LatMS, grp.latMS...)
		for _, u := range grp.ues {
			dur := u.attachedDur
			if u.sess != nil {
				dur += cfg.Duration - u.attachedSince
			}
			availSum += float64(dur) / float64(cfg.Duration)
		}
		for _, cell := range grp.cells {
			for _, s := range cell.sessions {
				res.Sessions++
				if s.seq == 0 {
					continue // died before its first report cycle
				}
				st, err := w.brk.SettleSession(s.uref, cfg.ReportEvery)
				if err != nil {
					continue
				}
				res.PaidUnits += st.Amount
				res.VerifiedBytes += st.VerifiedBytes
			}
		}
	}
	res.Availability = availSum / float64(len(w.groups)*cfg.UEsPerGroup)
	return res
}

// RunStorm runs the attach storm. The error reports only harness
// failures; load-shedding, retries and give-ups are the product under
// test and live in the result.
func RunStorm(cfg StormConfig) (StormResult, error) {
	cfg = cfg.Defaults()
	w, err := newStormWorld(cfg)
	if err != nil {
		return StormResult{Config: cfg}, err
	}
	// Segmented run: the wall-clock cost of each phase is the bench's
	// batch-vs-serial comparison. Wall time never enters Render.
	t0 := time.Now()
	w.world.RunUntil(cfg.SpikeAt)
	t1 := time.Now()
	w.world.RunUntil(cfg.SpikeAt + cfg.SpikeDur)
	t2 := time.Now()
	w.world.RunUntil(cfg.Duration)
	t3 := time.Now()
	if w.runErr != nil {
		return StormResult{Config: cfg}, fmt.Errorf("testbed: storm run: %w", w.runErr)
	}
	res := w.collect()
	res.WallPre, res.WallSpike, res.WallPost = t1.Sub(t0), t2.Sub(t1), t3.Sub(t2)
	return res, nil
}

// SpikeAttachesPerSec is the wall-clock grant throughput inside the
// flash-crowd window — the headline batching-vs-serial number.
func (r StormResult) SpikeAttachesPerSec() float64 {
	if r.WallSpike <= 0 {
		return 0
	}
	return float64(r.SpikeGrants) / r.WallSpike.Seconds()
}

// ShedFraction is the fraction of attach attempts refused by admission
// control.
func (r StormResult) ShedFraction() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Sheds) / float64(r.Attempts)
}

// Render produces the deterministic summary: identical bytes for any
// shard count AND both execution modes — the CI determinism gate
// hashes exactly this string. Wall-clock numbers are deliberately
// excluded; so are cache/batch/resume counters (mode-dependent).
func (r StormResult) Render() string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "storm seed=%d dur=%v groups=%d cells/grp=%d ues/grp=%d shards=any mode=any\n",
		c.Seed, c.Duration, c.Groups, c.CellsPerGroup, c.UEsPerGroup)
	fmt.Fprintf(&b, "rate base=%.1f/s peak=%.1f/s spike=x%.1f @%v for %v window=%v report=%v\n",
		c.BaseRate, c.PeakRate, c.Spike, c.SpikeAt, c.SpikeDur, c.Window, c.ReportEvery)
	fmt.Fprintf(&b, "admission rate=%.1f/s burst=%.1f maxqueue=%d hint=%v\n",
		c.Admission.Rate, c.Admission.Burst, c.Admission.MaxQueue, c.Admission.RetryAfter)
	fmt.Fprintf(&b, "arrivals=%d attempts=%d attaches=%d grants=%d denied=%d retries=%d giveups=%d\n",
		r.Arrivals, r.Attempts, r.Attaches, r.Grants, r.Denied, r.Retries, r.GiveUps)
	fmt.Fprintf(&b, "shed total=%d rate=%d queue=%d admitted=%d\n",
		r.Sheds, r.RateSheds, r.QueueSheds, r.Admitted)
	fmt.Fprintf(&b, "spike arrivals=%d grants=%d sheds=%d\n",
		r.SpikeArrivals, r.SpikeGrants, r.SpikeSheds)
	maxLat := 0.0
	for _, v := range r.LatMS {
		if v > maxLat {
			maxLat = v
		}
	}
	fmt.Fprintf(&b, "latency_ms p50=%.3f p90=%.3f p99=%.3f max=%.3f n=%d\n",
		apps.PercentileFloats(r.LatMS, 50), apps.PercentileFloats(r.LatMS, 90),
		apps.PercentileFloats(r.LatMS, 99), maxLat, len(r.LatMS))
	fmt.Fprintf(&b, "billing sessions=%d reports=%d mismatches=%d paid=%.6f units verified=%d bytes\n",
		r.Sessions, r.Reports, r.Mismatches, r.PaidUnits, r.VerifiedBytes)
	fmt.Fprintf(&b, "availability=%.4f\n", r.Availability)
	return b.String()
}

package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/broker"
	"cellbricks/internal/chaos"
	"cellbricks/internal/epc"
	"cellbricks/internal/mobility"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/nas"
	"cellbricks/internal/netem"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/ue"
)

// This file is the failover experiment: a bulk transfer rides the emulated
// cellular path while a seeded chaos schedule (internal/chaos) kills links,
// the serving bTelco, and the broker underneath it. The full recovery stack
// is in the loop — UE attach retry state machine with bTelco fallback
// (ue.AttachFSM), broker snapshot/restore with a post-restart load-shedding
// window (broker.Restart), and the typed retry-after hint surviving the
// broker → AGW → NAS → UE round trip. The output quantifies the paper's
// §3 availability claim: outage-to-recovery time and goodput dip per fault,
// reproducible byte-for-byte from (seed, spec).

// FailoverConfig parameterizes one failover run.
type FailoverConfig struct {
	Seed     int64
	Duration time.Duration
	Route    mobility.Route
	Night    bool
	// Spec is the fault specification; Compile(Seed, Duration) fixes the
	// schedule.
	Spec chaos.Spec
	// Retry tunes the UE attach state machine. The default raises
	// MaxAttempts to 12 so the worst-case retry budget exceeds the
	// default broker outage.
	Retry ue.RetryPolicy
	// AttachLatency is the detach-to-new-address gap on a successful
	// attach (default 31.68 ms, as elsewhere in the testbed).
	AttachLatency time.Duration
	// SnapshotEvery is the broker's snapshot cadence (default 15 s); the
	// last snapshot before a crash is what Restart restores.
	SnapshotEvery time.Duration
	// ShedFor is the post-restart degraded window during which the broker
	// refuses attaches with a retry-after hint (default 2 s).
	ShedFor time.Duration
	// Bin is the goodput sampling interval (default 1 s).
	Bin time.Duration
	// Shards is the netem.World shard count (default 1). The failover
	// world is one fault domain — everything lives on shard 0 and every
	// shard draws the same seeded stream — so output is byte-identical
	// for any value (the K-goldens in shard_test.go); the knob exists so
	// cbbench -shards wires through uniformly.
	Shards int
	// Tracer, when set, records the faulted run's protocol events (fault
	// injections, recoveries, handovers, attach storms, broker lifecycle)
	// against the simulator clock. Recording never touches the seeded rng
	// or the event queue, so traced and untraced runs render identically —
	// TestFailoverTraceDoesNotPerturb asserts it.
	Tracer *obs.Tracer
}

// Defaults fills zero fields.
func (c FailoverConfig) Defaults() FailoverConfig {
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
	if c.Route.Name == "" {
		c.Route = mobility.Downtown
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 12
	}
	c.Retry = c.Retry.WithDefaults()
	if c.AttachLatency == 0 {
		c.AttachLatency = 31680 * time.Microsecond
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 15 * time.Second
	}
	if c.ShedFor == 0 {
		c.ShedFor = 2 * time.Second
	}
	if c.Bin == 0 {
		c.Bin = time.Second
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	return c
}

// FaultOutcome is the measured effect of one injected fault.
type FaultOutcome struct {
	Kind chaos.Kind
	At   time.Duration
	Dur  time.Duration
	// Recovery is outage-to-recovery time measured from fault onset:
	// for data-plane faults (flap/pause/corrupt/trunc), until the first
	// delivery after the fault clears; for attach-path faults
	// (broker/crash), until the first successful attach after onset.
	Recovery  time.Duration
	Recovered bool
	// Goodput over [At, At+Dur+2s] in the fault-free baseline run vs this
	// run, and the relative dip.
	BaselineBps float64
	FaultedBps  float64
	DipPct      float64
}

// FailoverResult is the outcome of a failover run pair (baseline+faulted).
type FailoverResult struct {
	Config   FailoverConfig
	Schedule chaos.Schedule

	BaselineBps float64
	FaultedBps  float64
	Outcomes    []FaultOutcome

	Attaches       int // successful attaches (faulted run)
	AttachAttempts int
	AttachRetries  int // failed attempts that were retried
	Fallbacks      int // attaches that moved off the serving bTelco
	GiveUps        int // retry budgets exhausted
	Handovers      int // mobility events (incl. fault-forced)

	Snapshots      int
	BrokerRestores int
	Shed           uint64 // attach requests refused while degraded

	Unrecovered int
}

// recovery watcher: a fault waiting for its recovery signal.
type foWatcher struct {
	outcome *FaultOutcome
	idx     int // fault index in the schedule, keying trace events
	// ready is the earliest instant the signal counts: fault end for
	// data-plane faults, fault onset for attach-path faults.
	ready    time.Duration
	resolved bool
}

// foWorld is the failover world: emulated data plane + in-process
// control plane, both driven by one simulator clock.
type foWorld struct {
	cfg   FailoverConfig
	world *netem.World
	sim   *netem.Sim // shard 0 of world: the whole fault domain
	op    *mobility.Operator

	conn      *mptcp.Conn
	link      *netem.Link
	flapped   *netem.Link
	baseLoss  float64
	frameLoss float64
	ueIP      string
	ueIdx     int

	brkCfg    broker.Config
	brk       *broker.Brokerd
	brokerPub pki.PublicIdentity
	live      bool
	lastSnap  []byte

	telcos    [2]*sap.TelcoState
	agws      [2]*epc.AGW
	telcoDown [2]bool
	crashed   int
	serving   int
	ueCB      *sap.UEState

	attachSeq int

	// Causal tracing: each attach storm is one trace. ids mints span IDs
	// deterministically from the seed; the storm fields track the open
	// storm's root span so success/give-up/supersede can close it with an
	// outcome, and the goodput fields arm the first-goodput watch.
	ids          *obs.SpanIDSource
	stormRoot    obs.SpanContext
	stormStart   time.Duration
	stormSession string
	stormOpen    bool
	goodputRoot  obs.SpanContext
	goodputFrom  time.Duration

	dataWatch   []*foWatcher
	attachWatch []*foWatcher

	res    *FailoverResult
	runErr error
}

func newFoWorld(cfg FailoverConfig, res *FailoverResult) (*foWorld, error) {
	world := netem.NewWorld(cfg.Seed, cfg.Shards)
	w := &foWorld{
		cfg:   cfg,
		world: world,
		sim:   world.Shard(0),
		op:    mobility.NewOperator(cfg.Seed + 1),
		ueIP:  "ft-ip-0",
		live:  true,
		res:   res,
		ids:   obs.NewSpanIDSource(cfg.Seed),
	}
	// Trace timestamps are virtual time on this run's simulator clock.
	cfg.Tracer.SetClock(w.sim.Now)

	// Control plane: seeded principals and a fixed certificate epoch so
	// two runs with the same seed are bit-identical regardless of wall
	// clock.
	epoch := time.Unix(1_750_000_000, 0)
	ca, err := pki.NewCAFromSeed("ft-ca", bytes.Repeat([]byte{81}, 32))
	if err != nil {
		return nil, err
	}
	brokerKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{82}, 32))
	if err != nil {
		return nil, err
	}
	w.brkCfg = broker.DefaultConfig("broker.failover", brokerKey, ca.Public())
	w.brkCfg.Now = func() time.Time { return epoch }
	w.brk = broker.New(w.brkCfg)
	w.brokerPub = brokerKey.Public()

	ueKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{83}, 32))
	if err != nil {
		return nil, err
	}
	idU := w.brk.RegisterUser(ueKey.Public())
	w.ueCB = &sap.UEState{IDU: idU, IDB: "broker.failover", Key: ueKey, BrokerPub: w.brokerPub}

	for i := range w.telcos {
		key, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{byte(84 + i)}, 32))
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("ft-btelco-%d", i)
		cert := ca.Issue(id, "btelco", key.Public(), epoch.Add(-time.Hour), epoch.Add(24*time.Hour))
		w.telcos[i] = &sap.TelcoState{
			IDT: id, Key: key, Cert: cert,
			Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 1.0},
		}
		w.agws[i] = epc.NewAGW(epc.AGWConfig{
			Telco: w.telcos[i], Brokers: foDirectory{w},
			Tracer: cfg.Tracer, TraceIDs: w.ids,
		})
	}

	// Data plane.
	w.link = w.op.CellularLink(cfg.Route, cfg.Night)
	w.baseLoss = w.link.Loss
	w.sim.Connect(ServerIP, w.ueIP, w.link)
	w.conn = mptcp.NewConn(w.sim, ServerIP, w.ueIP, mptcp.Config{
		Multipath: true, AddrWorkWait: 500 * time.Millisecond, Timeout: 60 * time.Second,
	})

	// Initial attach, synchronously, before the clock starts. It is the
	// first traced session (s0).
	w.openStorm()
	if err := w.tryAttach(0); err != nil {
		return nil, fmt.Errorf("testbed: initial attach: %w", err)
	}
	w.res.Attaches++
	w.res.AttachAttempts++
	root, open := w.stormRoot, w.stormOpen
	w.closeStorm("ok", map[string]string{"telco": w.telcos[0].IDT, "attempts": "1"})
	if open {
		w.tracePhases(root, w.sim.Now())
	}

	// First snapshot at t=0 so a crash always has state to restore.
	w.snapshot()
	var snapTick func()
	snapTick = func() {
		w.snapshot()
		if w.sim.Now() < cfg.Duration {
			w.sim.After(cfg.SnapshotEvery, snapTick)
		}
	}
	w.sim.After(cfg.SnapshotEvery, snapTick)
	return w, nil
}

// foDirectory routes AGW broker lookups to the world's current broker
// instance — or fails when the broker process is down.
type foDirectory struct{ w *foWorld }

func (d foDirectory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	if idB != d.w.brkCfg.ID {
		return nil, pki.PublicIdentity{}, fmt.Errorf("testbed: unknown broker %q", idB)
	}
	return foBrokerClient(d), d.w.brokerPub, nil
}

type foBrokerClient struct{ w *foWorld }

func (c foBrokerClient) Authenticate(req *sap.AuthReqT) (*sap.AuthResp, error) {
	if !c.w.live || c.w.brk == nil {
		return nil, errors.New("testbed: broker unreachable")
	}
	return c.w.brk.HandleAuthRequest(req)
}

// AuthenticateCtx implements epc.BrokerClientCtx: the broker hop joins the
// attach trace with a broker/handle-auth span, mirroring what
// broker.ServeTraced records in the real-socket deployment.
func (c foBrokerClient) AuthenticateCtx(sc obs.SpanContext, req *sap.AuthReqT) (*sap.AuthResp, error) {
	w := c.w
	if !sc.Valid() || w.cfg.Tracer == nil {
		return c.Authenticate(req)
	}
	start := w.sim.Now()
	resp, err := c.Authenticate(req)
	args := map[string]string(nil)
	if err != nil {
		args = map[string]string{"error": err.Error()}
	}
	w.cfg.Tracer.SpanCtx(sc.Child(w.ids.Next()), "broker", "handle-auth", start, w.sim.Now()-start, args)
	return resp, err
}

// openStorm closes any still-open storm as superseded and mints the root
// span context for the next one (session label = attachSeq). No-op when
// the run is untraced.
func (w *foWorld) openStorm() {
	if w.cfg.Tracer == nil {
		return
	}
	w.closeStorm("superseded", nil)
	w.stormRoot = w.ids.NewTrace()
	w.stormStart = w.sim.Now()
	w.stormSession = fmt.Sprintf("s%d", w.attachSeq)
	w.stormOpen = true
}

// closeStorm emits the open storm's root span with its outcome. Every
// storm closes exactly one way: ok, giveup, superseded by a newer
// handover, or open at end of run.
func (w *foWorld) closeStorm(outcome string, args map[string]string) {
	if !w.stormOpen {
		return
	}
	w.stormOpen = false
	if args == nil {
		args = map[string]string{}
	}
	args["session"] = w.stormSession
	args["outcome"] = outcome
	w.cfg.Tracer.SpanCtx(w.stormRoot, "attach", "attach-storm",
		w.stormStart, w.sim.Now()-w.stormStart, args)
}

// tracePhases records the modeled phase breakdown of a successful attach:
// the AttachLatency gap between grant and usable address, subdivided under
// the canonical phase names with fixed fractions, and arms the
// first-goodput watch on the data path. The protocol spans recorded by the
// ue/epc/broker layers carry causality; these carry the Fig. 7-shaped
// durations a timeline renders.
func (w *foWorld) tracePhases(root obs.SpanContext, now time.Duration) {
	d := w.cfg.AttachLatency
	cs := d / 8
	aka := d / 4
	auth := d * 3 / 8
	bearer := d - cs - aka - auth
	t := now
	for _, ph := range []struct {
		cat, name string
		dur       time.Duration
	}{
		{"ran", sap.PhaseCellSelect, cs},
		{"ue", sap.PhaseAKA, aka},
		{"sap", sap.PhaseSAPAuth, auth},
		{"epc", sap.PhaseBearerSetup, bearer},
	} {
		w.cfg.Tracer.SpanCtx(root.Child(w.ids.Next()), ph.cat, ph.name, t, ph.dur, nil)
		t += ph.dur
	}
	w.goodputRoot = root
	w.goodputFrom = now + d
}

// resolveGoodput closes the pending first-goodput span: attach-complete to
// the first user-plane delivery afterwards.
func (w *foWorld) resolveGoodput(now time.Duration) {
	if !w.goodputRoot.Valid() || now < w.goodputFrom {
		return
	}
	w.cfg.Tracer.SpanCtx(w.goodputRoot.Child(w.ids.Next()), "app", sap.PhaseFirstGoodput,
		w.goodputFrom, now-w.goodputFrom, nil)
	w.goodputRoot = obs.SpanContext{}
}

// nasUplink models the radio/S1 leg between a UE and bTelco ti's AGW,
// recording a wire span (child of the envelope's context) around NAS
// handling when the attach is traced.
func (w *foWorld) nasUplink(ti int, ranID string, envelope []byte) ([]byte, error) {
	_, sc, _, scErr := nas.SplitEnvelope(envelope)
	traced := scErr == nil && sc.Valid() && w.cfg.Tracer != nil
	start := w.sim.Now()
	reply, err := w.agws[ti].HandleNAS(ranID, envelope)
	if traced {
		args := map[string]string{"ran": ranID, "bytes": strconv.Itoa(len(envelope))}
		if err != nil {
			args["error"] = err.Error()
		}
		w.cfg.Tracer.SpanCtx(sc.Child(w.ids.Next()), "wire", "nas-uplink",
			start, w.sim.Now()-start, args)
	}
	return reply, err
}

func (w *foWorld) snapshot() {
	if w.live && w.brk != nil {
		w.lastSnap = w.brk.Snapshot()
		w.res.Snapshots++
		w.cfg.Tracer.Event("broker", "snapshot", nil)
	}
}

// tryAttach performs one SAP attach attempt through bTelco ti, with a
// fresh device identity per attempt (AGW sessions are keyed by RAN id).
func (w *foWorld) tryAttach(ti int) error {
	if w.telcoDown[ti] {
		return fmt.Errorf("testbed: btelco %d down", ti)
	}
	ranID := fmt.Sprintf("ft-ue-%d", w.res.AttachAttempts)
	dev := ue.NewDevice(ranID, nil, w.ueCB)
	if w.stormOpen {
		dev.TraceAttach(w.cfg.Tracer, w.ids, w.stormRoot)
	}
	_, err := dev.AttachSAP(func(envelope []byte) ([]byte, error) {
		if w.telcoDown[ti] {
			return nil, fmt.Errorf("testbed: btelco %d died mid-attach", ti)
		}
		return w.nasUplink(ti, ranID, envelope)
	}, w.telcos[ti].IDT)
	return err
}

// startAttach launches the retry state machine for the UE's new address.
// Attempts run as simulator events; each failure schedules the next
// attempt after the machine's backoff (retry-after hints floor it), and a
// later handover supersedes the whole storm via attachSeq.
func (w *foWorld) startAttach(newIP string) {
	w.attachSeq++
	seq := w.attachSeq
	fsm := ue.NewAttachFSM(w.cfg.Retry, len(w.agws), w.sim.Rand())
	base := w.serving
	w.openStorm()
	var attempt func()
	attempt = func() {
		if seq != w.attachSeq || w.runErr != nil {
			return
		}
		ti := (base + fsm.Candidate()) % len(w.agws)
		w.res.AttachAttempts++
		err := w.tryAttach(ti)
		if err == nil {
			w.serving = ti
			w.res.Attaches++
			w.res.AttachRetries += fsm.Attempts()
			w.res.Fallbacks += fsm.Fallbacks()
			root, open := w.stormRoot, w.stormOpen
			w.closeStorm("ok", map[string]string{
				"telco":    w.telcos[ti].IDT,
				"attempts": strconv.Itoa(fsm.Attempts() + 1),
			})
			if open {
				w.tracePhases(root, w.sim.Now())
			}
			w.resolveAttach(w.sim.Now())
			w.sim.After(w.cfg.AttachLatency, func() {
				if seq == w.attachSeq {
					w.conn.AddrAvailable(newIP)
				}
			})
			return
		}
		delay, giveUp := fsm.Fail(err)
		if giveUp {
			// Budget exhausted: the UE stays detached until the next
			// mobility event restarts the machine.
			w.res.GiveUps++
			w.cfg.Tracer.Event("attach", "give-up", map[string]string{
				"attempts": strconv.Itoa(fsm.Attempts()),
			})
			w.closeStorm("giveup", map[string]string{
				"attempts": strconv.Itoa(fsm.Attempts()),
			})
			return
		}
		w.sim.After(delay, attempt)
	}
	attempt()
}

// handover fires one mobility event: invalidate the address, install a
// fresh tower path, and run the attach state machine for the new address.
func (w *foWorld) handover() {
	w.res.Handovers++
	w.cfg.Tracer.Event("mobility", "handover", map[string]string{
		"n": strconv.Itoa(w.res.Handovers),
	})
	w.conn.AddrInvalidated()
	old := w.ueIP
	w.ueIdx++
	w.ueIP = fmt.Sprintf("ft-ip-%d", w.ueIdx)
	w.sim.Disconnect(ServerIP, old)
	w.link = w.op.CellularLink(w.cfg.Route, w.cfg.Night)
	w.baseLoss = w.link.Loss
	w.applyFrameLoss()
	w.sim.Connect(ServerIP, w.ueIP, w.link)
	w.startAttach(w.ueIP)
}

func (w *foWorld) applyFrameLoss() {
	loss := w.baseLoss + w.frameLoss
	if loss > 0.95 {
		loss = 0.95
	}
	w.link.Loss = loss
}

// hooks binds the chaos schedule to this world.
func (w *foWorld) hooks() chaos.Hooks {
	return chaos.Hooks{
		LinkFlap: func(down bool) {
			if down {
				w.flapped = w.link
				w.link.Down = true
				return
			}
			if w.flapped != nil {
				w.flapped.Down = false
				w.flapped = nil
			}
			w.link.Down = false
		},
		LinkPause: func(d time.Duration) {
			w.link.PausedUntil = w.sim.Now() + d
		},
		BrokerCrash: func() {
			// The process dies with its in-memory state; only the last
			// snapshot survives.
			if w.brk != nil {
				w.res.Shed += w.brk.ShedCount()
			}
			w.live = false
			w.brk = nil
			w.cfg.Tracer.Event("broker", "crash", nil)
		},
		BrokerRestart: func() {
			nb, err := broker.Restart(w.brkCfg, w.lastSnap, w.cfg.ShedFor)
			if err != nil {
				if w.runErr == nil {
					w.runErr = err
				}
				return
			}
			w.brk = nb
			w.live = true
			w.res.BrokerRestores++
			w.cfg.Tracer.Event("broker", "restore", map[string]string{
				"shed_for": w.cfg.ShedFor.String(),
			})
			w.sim.After(w.cfg.ShedFor, nb.Resume)
		},
		TelcoCrash: func() {
			w.crashed = w.serving
			w.telcoDown[w.crashed] = true
			// The serving radio goes with it: force a detach and let the
			// retry machine fall back to the surviving bTelco.
			w.handover()
		},
		TelcoRestart: func() {
			w.telcoDown[w.crashed] = false
		},
		// The simulator carries abstract packets, not byte frames, so
		// frame corruption/truncation maps to extra loss on the radio
		// link (a corrupted frame fails its checksum and is dropped);
		// byte-exact corruption runs against real sockets via
		// chaos.FaultyConn in the wire tests.
		FrameFault: func(corruptRate, truncRate float64) {
			w.frameLoss = corruptRate + truncRate
			w.applyFrameLoss()
		},
	}
}

func (w *foWorld) resolveAttach(now time.Duration) {
	for _, watch := range w.attachWatch {
		if !watch.resolved && now >= watch.ready {
			watch.resolved = true
			watch.outcome.Recovered = true
			watch.outcome.Recovery = now - watch.outcome.At
			w.traceRecovered(watch)
		}
	}
}

func (w *foWorld) resolveData(now time.Duration) {
	for _, watch := range w.dataWatch {
		if !watch.resolved && now >= watch.ready {
			watch.resolved = true
			watch.outcome.Recovered = true
			watch.outcome.Recovery = now - watch.outcome.At
			w.traceRecovered(watch)
		}
	}
}

// traceRecovered emits the recovery instant for a resolved fault. Together
// with the fault-onset instant (same "i" arg) it makes outage-to-recovery
// derivable from the trace alone: recovery = recovered.ts - fault.ts.
func (w *foWorld) traceRecovered(watch *foWatcher) {
	w.cfg.Tracer.Event("chaos", "recovered", map[string]string{
		"i":    strconv.Itoa(watch.idx),
		"kind": watch.outcome.Kind.String(),
	})
}

// runFailoverOnce executes one run (baseline when the schedule is empty)
// and returns the goodput series. Outcomes accumulate into res.
func runFailoverOnce(cfg FailoverConfig, sched chaos.Schedule, res *FailoverResult) (apps.IperfResult, error) {
	w, err := newFoWorld(cfg, res)
	if err != nil {
		return apps.IperfResult{}, err
	}

	// Route-driven mobility.
	for _, at := range cfg.Route.Handovers(w.sim.Rand(), cfg.Night, cfg.Duration) {
		at := at
		w.sim.At(at, func() { w.handover() })
	}

	// Arm the fault schedule and its recovery watchers. Attach-path
	// faults additionally force a mobility event 1 s into the window (or
	// halfway through short windows), so every outage provably contains
	// an attach storm whatever the route schedule does. Outcomes live in
	// a fixed-size slice so the watchers' element pointers stay valid.
	outcomes := make([]FaultOutcome, len(sched.Faults))
	for i := range sched.Faults {
		f := sched.Faults[i]
		outcomes[i] = FaultOutcome{Kind: f.Kind, At: f.At, Dur: f.Dur}
		cfg.Tracer.EventAt(f.At, "chaos", "fault", map[string]string{
			"i":    strconv.Itoa(i),
			"kind": f.Kind.String(),
			"dur":  f.Dur.String(),
		})
		watch := &foWatcher{outcome: &outcomes[i], idx: i}
		switch f.Kind {
		case chaos.KindBroker, chaos.KindCrash:
			watch.ready = f.At
			w.attachWatch = append(w.attachWatch, watch)
			force := f.At + time.Second
			if f.Dur < 2*time.Second {
				force = f.At + f.Dur/2
			}
			if f.Kind == chaos.KindBroker { // crash faults force their own handover
				w.sim.At(force, func() { w.handover() })
			}
		default:
			watch.ready = f.At + f.Dur
			w.dataWatch = append(w.dataWatch, watch)
		}
	}
	sched.Replay(w.sim, w.hooks())

	// Goodput measurement; chain onto the iperf delivery tap to feed the
	// data-plane recovery watchers.
	ip := apps.NewIperf(w.sim, w.conn, cfg.Bin)
	ip.Drive = w.world.RunUntil // only the world may advance shard clocks
	prev := w.conn.OnDeliver
	w.conn.OnDeliver = func(n int) {
		prev(n)
		if n > 0 {
			now := w.sim.Now()
			if len(w.dataWatch) > 0 {
				w.resolveData(now)
			}
			w.resolveGoodput(now)
		}
	}
	result := ip.Run(cfg.Duration)
	// A storm still in flight at the horizon closes as "open" so its trace
	// has a root and the timeline shows the unfinished session.
	w.closeStorm("open", nil)
	res.Outcomes = append(res.Outcomes, outcomes...)
	if w.runErr != nil {
		return result, w.runErr
	}
	for _, watch := range append(w.dataWatch, w.attachWatch...) {
		if !watch.resolved {
			res.Unrecovered++
		}
	}
	return result, nil
}

// windowAvg averages series bins overlapping [from, to).
func windowAvg(series []float64, bin, from, to time.Duration) float64 {
	if bin <= 0 || len(series) == 0 {
		return 0
	}
	lo := int(from / bin)
	hi := int((to + bin - 1) / bin)
	if lo < 0 {
		lo = 0
	}
	if hi > len(series) {
		hi = len(series)
	}
	if hi <= lo {
		return 0
	}
	var sum float64
	for _, v := range series[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// RunFailover runs the experiment: a fault-free baseline and a faulted run
// share (seed, config); per-fault dips compare the two over each fault's
// window.
func RunFailover(cfg FailoverConfig) (FailoverResult, error) {
	cfg = cfg.Defaults()
	res := FailoverResult{Config: cfg, Schedule: cfg.Spec.Compile(cfg.Seed, cfg.Duration)}

	var baseRes FailoverResult // throwaway counters for the baseline run
	baseRes.Config = cfg
	baseCfg := cfg
	baseCfg.Tracer = nil // only the faulted run is traced
	baseline, err := runFailoverOnce(baseCfg, chaos.Schedule{Seed: cfg.Seed, Horizon: cfg.Duration}, &baseRes)
	if err != nil {
		return res, fmt.Errorf("testbed: failover baseline: %w", err)
	}
	res.BaselineBps = baseline.AvgBps

	faulted, err := runFailoverOnce(cfg, res.Schedule, &res)
	if err != nil {
		return res, fmt.Errorf("testbed: failover faulted run: %w", err)
	}
	res.FaultedBps = faulted.AvgBps

	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		from, to := o.At, o.At+o.Dur+2*time.Second
		o.BaselineBps = windowAvg(baseline.Series, cfg.Bin, from, to)
		o.FaultedBps = windowAvg(faulted.Series, cfg.Bin, from, to)
		if o.BaselineBps > 0 {
			o.DipPct = 100 * (1 - o.FaultedBps/o.BaselineBps)
			if o.DipPct < 0 {
				o.DipPct = 0
			}
		}
	}
	return res, nil
}

// Render produces the deterministic human-readable summary: every value is
// derived from virtual time and seeded randomness, so two runs with the
// same (seed, spec, config) are byte-identical — the property the replay
// test asserts.
func (r FailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failover seed=%d dur=%v route=%s night=%v spec=%q\n",
		r.Config.Seed, r.Config.Duration, r.Config.Route.Name, r.Config.Night, r.Config.Spec.String())
	b.WriteString(r.Schedule.String())
	fmt.Fprintf(&b, "baseline=%.3f Mbps faulted=%.3f Mbps\n", r.BaselineBps/1e6, r.FaultedBps/1e6)
	for _, o := range r.Outcomes {
		rec := "UNRECOVERED"
		if o.Recovered {
			rec = fmt.Sprintf("recovery=%v", o.Recovery)
		}
		fmt.Fprintf(&b, "fault %s at=%v dur=%v %s dip=%.1f%% (base=%.3f faulted=%.3f Mbps)\n",
			o.Kind, o.At, o.Dur, rec, o.DipPct, o.BaselineBps/1e6, o.FaultedBps/1e6)
	}
	fmt.Fprintf(&b, "attaches=%d attempts=%d retries=%d fallbacks=%d giveups=%d handovers=%d\n",
		r.Attaches, r.AttachAttempts, r.AttachRetries, r.Fallbacks, r.GiveUps, r.Handovers)
	fmt.Fprintf(&b, "broker: snapshots=%d restores=%d shed=%d\n", r.Snapshots, r.BrokerRestores, r.Shed)
	fmt.Fprintf(&b, "unrecovered=%d\n", r.Unrecovered)
	return b.String()
}

//go:build !race

package testbed

const raceEnabled = false

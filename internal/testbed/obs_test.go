package testbed

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/chaos"
	"cellbricks/internal/obs"
)

// TestFailoverTraceDoesNotPerturb is the telemetry-determinism acceptance
// test: tracing a failover run must not change its rendered output by a
// byte — recording observes the simulation, never participates in it.
func TestFailoverTraceDoesNotPerturb(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,broker=1x10s,crash=1x6s")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec}
	plain, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	cfg.Tracer = obs.NewTracer(nil)
	traced, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if p, q := plain.Render(), traced.Render(); p != q {
		t.Fatalf("tracing perturbed the run:\n--- untraced ---\n%s--- traced ---\n%s", p, q)
	}
	if cfg.Tracer.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestFailoverTraceDerivesRecovery asserts the trace is self-sufficient:
// outage-to-recovery per fault, recomputed from fault/recovered event
// pairs alone, matches the result's Outcomes exactly.
func TestFailoverTraceDerivesRecovery(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,pause=1x800ms,broker=1x10s,crash=1x6s")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(nil)
	cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec, Tracer: tr}
	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}

	faultAt := map[string]time.Duration{}
	recoveredAt := map[string]time.Duration{}
	for _, e := range tr.Events() {
		if e.Cat != "chaos" {
			continue
		}
		switch e.Name {
		case "fault":
			faultAt[e.Args["i"]] = e.Start
		case "recovered":
			if _, seen := recoveredAt[e.Args["i"]]; !seen {
				recoveredAt[e.Args["i"]] = e.Start
			}
		}
	}
	if len(faultAt) != len(res.Outcomes) {
		t.Fatalf("trace has %d fault events, result has %d outcomes", len(faultAt), len(res.Outcomes))
	}
	for i, o := range res.Outcomes {
		key := strconv.Itoa(i)
		at, ok := faultAt[key]
		if !ok || at != o.At {
			t.Fatalf("fault %d: trace onset %v (present=%v), result %v", i, at, ok, o.At)
		}
		rec, ok := recoveredAt[key]
		if ok != o.Recovered {
			t.Fatalf("fault %d: trace recovered=%v, result recovered=%v", i, ok, o.Recovered)
		}
		if o.Recovered && rec-at != o.Recovery {
			t.Fatalf("fault %d: trace-derived recovery %v, result %v", i, rec-at, o.Recovery)
		}
	}
}

// TestDebugEndpointsScrapeWireTraffic is the end-to-end exposition test: a
// real-socket deployment serves attaches over TCP while a debug server
// exposes the default registry; scraping /metrics must show the wire frame
// counters moving.
func TestDebugEndpointsScrapeWireTraffic(t *testing.T) {
	srv, err := obs.ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() map[string]float64 {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var name string
			var v float64
			if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
				out[name] = v
			}
		}
		return out
	}
	before := scrape()

	d, err := NewRealDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
		t.Fatalf("attach: %v", err)
	}

	after := scrape()
	for _, name := range []string{"wire_frames_sent_total", "wire_frames_received_total", "epc_attaches_total"} {
		if after[name] <= before[name] {
			t.Errorf("%s did not move: before=%v after=%v", name, before[name], after[name])
		}
	}
}

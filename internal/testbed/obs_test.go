package testbed

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cellbricks/internal/chaos"
	"cellbricks/internal/obs"
)

// TestFailoverTraceDoesNotPerturb is the telemetry-determinism acceptance
// test: tracing a failover run must not change its rendered output by a
// byte — recording observes the simulation, never participates in it.
func TestFailoverTraceDoesNotPerturb(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,broker=1x10s,crash=1x6s")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec}
	plain, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	cfg.Tracer = obs.NewTracer(nil)
	traced, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if p, q := plain.Render(), traced.Render(); p != q {
		t.Fatalf("tracing perturbed the run:\n--- untraced ---\n%s--- traced ---\n%s", p, q)
	}
	if cfg.Tracer.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestFailoverTraceDerivesRecovery asserts the trace is self-sufficient:
// outage-to-recovery per fault, recomputed from fault/recovered event
// pairs alone, matches the result's Outcomes exactly.
func TestFailoverTraceDerivesRecovery(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,pause=1x800ms,broker=1x10s,crash=1x6s")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(nil)
	cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec, Tracer: tr}
	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}

	faultAt := map[string]time.Duration{}
	recoveredAt := map[string]time.Duration{}
	for _, e := range tr.Events() {
		if e.Cat != "chaos" {
			continue
		}
		switch e.Name {
		case "fault":
			faultAt[e.Args["i"]] = e.Start
		case "recovered":
			if _, seen := recoveredAt[e.Args["i"]]; !seen {
				recoveredAt[e.Args["i"]] = e.Start
			}
		}
	}
	if len(faultAt) != len(res.Outcomes) {
		t.Fatalf("trace has %d fault events, result has %d outcomes", len(faultAt), len(res.Outcomes))
	}
	for i, o := range res.Outcomes {
		key := strconv.Itoa(i)
		at, ok := faultAt[key]
		if !ok || at != o.At {
			t.Fatalf("fault %d: trace onset %v (present=%v), result %v", i, at, ok, o.At)
		}
		rec, ok := recoveredAt[key]
		if ok != o.Recovered {
			t.Fatalf("fault %d: trace recovered=%v, result recovered=%v", i, ok, o.Recovered)
		}
		if o.Recovered && rec-at != o.Recovery {
			t.Fatalf("fault %d: trace-derived recovery %v, result %v", i, rec-at, o.Recovery)
		}
	}
}

// TestDebugEndpointsScrapeWireTraffic is the end-to-end exposition test: a
// real-socket deployment serves attaches over TCP while a debug server
// exposes the default registry; scraping /metrics must show the wire frame
// counters moving.
func TestDebugEndpointsScrapeWireTraffic(t *testing.T) {
	srv, err := obs.ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() map[string]float64 {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var name string
			var v float64
			if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
				out[name] = v
			}
		}
		return out
	}
	before := scrape()

	d, err := NewRealDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
		t.Fatalf("attach: %v", err)
	}

	after := scrape()
	for _, name := range []string{"wire_frames_sent_total", "wire_frames_received_total", "epc_attaches_total"} {
		if after[name] <= before[name] {
			t.Errorf("%s did not move: before=%v after=%v", name, before[name], after[name])
		}
	}
}

// TestFailoverSpanTreeAndTimelines is the causal-tracing acceptance test:
// one traced failover run yields, for every successful attach, a span tree
// where the ue, wire, epc, broker, and billing spans share the storm's
// trace ID and parent back to its root — and the rendered timelines are
// byte-identical across shard counts and re-runs.
func TestFailoverSpanTreeAndTimelines(t *testing.T) {
	spec, err := chaos.ParseSpec("flap=1x3s,broker=1x10s,crash=1x6s")
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) ([]obs.TraceEvent, string, string) {
		tr := obs.NewTracer(nil)
		cfg := FailoverConfig{Seed: 7, Duration: 75 * time.Second, Spec: spec, Tracer: tr, Shards: shards}
		if _, err := RunFailover(cfg); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		evs := tr.Events()
		var jl, tl bytes.Buffer
		if err := obs.WriteJSONLEvents(&jl, evs); err != nil {
			t.Fatal(err)
		}
		if err := obs.RenderTimelines(&tl, obs.BuildTimelines(evs)); err != nil {
			t.Fatal(err)
		}
		return evs, jl.String(), tl.String()
	}

	evs, jsonl1, tl1 := run(1)
	_, jsonl4, tl4 := run(4)
	if jsonl1 != jsonl4 {
		t.Fatal("trace JSONL differs between K=1 and K=4")
	}
	if tl1 != tl4 {
		t.Fatalf("timelines differ between K=1 and K=4:\n%s\n---\n%s", tl1, tl4)
	}
	if !strings.Contains(tl1, "session s0") || !strings.Contains(tl1, "outcome=ok") {
		t.Fatalf("timeline missing initial session:\n%s", tl1)
	}

	// Index spans and roots; every identified span's parent chain must
	// terminate at its own trace's root.
	spans := map[uint64]obs.TraceEvent{}
	roots := map[uint64]obs.TraceEvent{} // trace id -> root record
	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		if _, dup := spans[e.Span]; dup {
			t.Fatalf("duplicate span id %#x", e.Span)
		}
		spans[e.Span] = e
		if e.Parent == 0 {
			if _, dup := roots[e.Trace]; dup {
				t.Fatalf("trace %#x has two roots", e.Trace)
			}
			if e.Cat != "attach" || e.Name != "attach-storm" {
				t.Fatalf("root is %s/%s, want attach/attach-storm", e.Cat, e.Name)
			}
			roots[e.Trace] = e
		}
	}
	if len(roots) == 0 {
		t.Fatal("no attach-storm roots recorded")
	}
	catsByTrace := map[uint64]map[string]bool{}
	for _, e := range spans {
		if catsByTrace[e.Trace] == nil {
			catsByTrace[e.Trace] = map[string]bool{}
		}
		catsByTrace[e.Trace][e.Cat] = true
		// Walk to the root.
		cur, hops := e, 0
		for cur.Parent != 0 {
			p, ok := spans[cur.Parent]
			if !ok {
				t.Fatalf("span %s/%s parent %#x missing", e.Cat, e.Name, cur.Parent)
			}
			if p.Trace != e.Trace {
				t.Fatalf("span %s/%s crosses traces", e.Cat, e.Name)
			}
			cur = p
			if hops++; hops > 16 {
				t.Fatal("parent chain does not terminate")
			}
		}
		if cur.Span != roots[e.Trace].Span {
			t.Fatalf("span %s/%s does not chain to its trace root", e.Cat, e.Name)
		}
	}
	okTraces := 0
	for trace, root := range roots {
		if root.Args["outcome"] != "ok" {
			continue
		}
		okTraces++
		for _, cat := range []string{"ue", "wire", "epc", "broker", "billing"} {
			if !catsByTrace[trace][cat] {
				t.Errorf("successful attach trace %#x missing %q span (has %v)", trace, cat, catsByTrace[trace])
			}
		}
	}
	if okTraces == 0 {
		t.Fatal("no successful attach traces")
	}
}

// TestRealDeploymentTracePropagation: one traced attach over real TCP
// sockets produces a single parented span tree — ue, sap, broker, epc and
// billing spans all under one trace ID, with the broker's span recorded
// server-side from the wire frame's span context.
func TestRealDeploymentTracePropagation(t *testing.T) {
	tr := obs.NewTracer(nil)
	ids := obs.NewSpanIDSource(99)
	d, err := NewRealDeploymentTraced(tr, ids)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		t.Fatal(err)
	}
	root := ids.NewTrace()
	dev.TraceAttach(tr, ids, root)
	if _, err := dev.AttachSAP(tx, d.TelcoID()); err != nil {
		t.Fatal(err)
	}

	spans := map[uint64]obs.TraceEvent{}
	cats := map[string]bool{}
	for _, e := range tr.Events() {
		if e.Trace == 0 {
			continue
		}
		if e.Trace != root.Trace {
			t.Fatalf("span %s/%s on foreign trace %x (want %x)", e.Cat, e.Name, e.Trace, root.Trace)
		}
		if _, dup := spans[e.Span]; dup {
			t.Fatalf("duplicate span id %x", e.Span)
		}
		spans[e.Span] = e
		cats[e.Cat] = true
	}
	for _, want := range []string{"ue", "sap", "broker", "epc", "billing"} {
		if !cats[want] {
			t.Fatalf("no %q span in trace (got cats %v)", want, cats)
		}
	}
	for _, e := range spans {
		hops := 0
		for cur := e; cur.Parent != 0; hops++ {
			if hops > 16 {
				t.Fatalf("parent chain of %s/%s does not terminate", e.Cat, e.Name)
			}
			if cur.Parent == root.Span {
				break
			}
			next, ok := spans[cur.Parent]
			if !ok {
				t.Fatalf("span %s/%s parent %x not in trace", cur.Cat, cur.Name, cur.Parent)
			}
			cur = next
		}
	}
}

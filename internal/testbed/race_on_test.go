//go:build race

package testbed

// raceEnabled gates tests that calibrate measured wall-clock crypto time
// against the paper's absolute numbers: the race detector slows the real
// crypto by an order of magnitude, which inflates the measured charges
// without indicating any defect.
const raceEnabled = true

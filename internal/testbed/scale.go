package testbed

import (
	"fmt"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

// ScaleConfig parameterizes a shared-cell contention run. UEs are grouped
// into cells of UEsPerCell subscribers; each cell is one air-interface
// bottleneck (a shared shaper pair) and lives, with all of its UEs and
// their servers, on one shard of a netem.World — the partition-by-cell
// structure Magma and SoftCell argue cellular cores scale by. Shards > 1
// runs the cells across that many shards in parallel; output is
// byte-identical for any shard count (the K-goldens in shard_test.go).
type ScaleConfig struct {
	Seed     int64
	N        int           // total UEs (default 1)
	CellBps  float64       // per-cell air-interface capacity (default 50 Mbps)
	Duration time.Duration // emulated time (default 60 s)
	// Shards is the netem.World shard count; <= 1 selects a single shard.
	// Callers wanting the hardware bound apply netem.ClampShards first —
	// RunScale deliberately does not, so determinism tests can run K >
	// NumCPU.
	Shards int
	// UEsPerCell sets the cell size (default 64, so the historical
	// single-cell points up to 64 UEs keep their exact shape).
	UEsPerCell int
}

func (c ScaleConfig) defaults() ScaleConfig {
	if c.N <= 0 {
		c.N = 1
	}
	if c.CellBps == 0 {
		c.CellBps = 50e6
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.UEsPerCell <= 0 {
		c.UEsPerCell = 64
	}
	return c
}

// ScaleSummary is the O(1) shape of a per-UE throughput distribution,
// reported instead of the raw O(N) slice at 10k-UE scale.
type ScaleSummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func summarize(samples []float64) ScaleSummary {
	if len(samples) == 0 {
		return ScaleSummary{}
	}
	s := ScaleSummary{
		P50: apps.PercentileFloats(samples, 50),
		P90: apps.PercentileFloats(samples, 90),
		P99: apps.PercentileFloats(samples, 99),
		Min: samples[0],
		Max: samples[0],
	}
	for _, v := range samples[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// ScaleResult summarizes a shared-cell contention run: N UEs downloading
// through cells of fixed capacity. PerUE stays in-memory for tests but is
// excluded from JSON — at 10k UEs the percentile summary is the record.
type ScaleResult struct {
	N        int     `json:"ues"`
	Cells    int     `json:"cells"`
	CellBps  float64 `json:"cell_bps"`
	TotalBps float64 `json:"total_bps"`

	PerUE    []float64    `json:"-"`
	PerUEBps ScaleSummary `json:"per_ue_bps"`

	Fairness float64 `json:"fairness"` // Jain's index: 1.0 = perfectly fair

	// Heartbeats counts the cross-shard control-plane beats delivered to
	// the core endpoint — the traffic that exercises the shard mailboxes.
	Heartbeats uint64 `json:"heartbeats"`

	// WallMS is host wall-clock time of the simulation run. It is
	// excluded from Render (output must be byte-identical across shard
	// counts and machines); the bench harness records it per point.
	WallMS float64 `json:"wall_ms"`
}

// RunScale emulates cfg.N UEs attached to bTelco cells whose air
// interfaces are shared bottlenecks (one shaper pair per cell across its
// subscribers), each UE running a bulk download for the duration. Every
// cell tower also heartbeats a core endpoint on shard 0 over the
// backhaul, so multi-cell runs always carry cross-shard traffic. It
// reports aggregate utilization and fairness — the substance behind the
// paper's claim that the prototype "scales to a large number of users
// under different radio conditions".
//
// Determinism across shard counts: the data path draws no randomness (no
// loss/jitter on the access links), cells share no state with each other,
// and heartbeat phases are staggered per cell so no two cross-shard
// packets arrive at the core at one instant — the three conditions the
// netem.World byte-identity contract asks for.
func RunScale(cfg ScaleConfig) ScaleResult {
	cfg = cfg.defaults()
	n, per := cfg.N, cfg.UEsPerCell
	cells := (n + per - 1) / per

	w := netem.NewWorld(cfg.Seed, cfg.Shards)
	const coreIP = "scale-core"
	w.Place(coreIP, 0)
	var heartbeats uint64
	w.Register(coreIP, func(*netem.Packet) { heartbeats++ })

	const hbPeriod = time.Second
	backhaul := 25 * time.Millisecond

	conns := make([]*mptcp.Conn, n)
	ue := 0
	for c := 0; c < cells; c++ {
		shard := c % cfg.Shards
		sim := w.Shard(shard)
		cellIP := fmt.Sprintf("scale-cell-%d", c)
		w.Place(cellIP, shard)
		w.Connect(cellIP, coreIP, &netem.Link{Delay: backhaul})

		// One shared airtime shaper pair for the whole cell — shard-local
		// state, touched only by this cell's shard.
		dl := netem.NewShaper(netem.ConstantRate(cfg.CellBps), 256*1024, 0)
		dl.MaxQueueTime = 300 * time.Millisecond
		ul := netem.NewShaper(netem.ConstantRate(cfg.CellBps), 256*1024, 0)
		ul.MaxQueueTime = 300 * time.Millisecond

		for u := 0; u < per && ue < n; u, ue = u+1, ue+1 {
			ueIP := fmt.Sprintf("scale-ue-%d-%d", c, u)
			srvIP := fmt.Sprintf("scale-srv-%d-%d", c, u)
			w.Place(ueIP, shard)
			w.Place(srvIP, shard)
			link := &netem.Link{
				Delay:    25 * time.Millisecond,
				MaxQueue: 2 * time.Second,
			}
			// The shared shaper must police the downlink regardless of the
			// lexicographic ordering netem uses for direction naming.
			if srvIP < ueIP {
				link.ShaperAB, link.ShaperBA = dl, ul
			} else {
				link.ShaperAB, link.ShaperBA = ul, dl
			}
			w.Connect(srvIP, ueIP, link)
			conns[ue] = mptcp.NewConn(sim, srvIP, ueIP, mptcp.DefaultConfig())
			// Keep every sender backlogged.
			conn := conns[ue]
			var topUp func()
			topUp = func() {
				conn.Write(16 << 20)
				sim.After(time.Second, topUp)
			}
			topUp()
		}

		// Tower → core heartbeat with a per-cell phase: phases are distinct
		// in (0, hbPeriod), so cross-shard arrivals at the core never tie.
		phase := time.Duration(c+1) * hbPeriod / time.Duration(cells+1)
		var beat func()
		beat = func() {
			pkt := sim.GetPacket()
			pkt.Src, pkt.Dst, pkt.Size = cellIP, coreIP, 200
			sim.Send(pkt)
			sim.After(hbPeriod, beat)
		}
		sim.At(phase, beat)
	}

	t0 := time.Now()
	w.RunUntil(cfg.Duration)
	wall := time.Since(t0)

	res := ScaleResult{
		N: n, Cells: cells, CellBps: cfg.CellBps,
		PerUE:      make([]float64, n),
		Heartbeats: heartbeats,
		WallMS:     float64(wall.Microseconds()) / 1000,
	}
	var sum, sumSq float64
	for i, conn := range conns {
		bps := float64(conn.Delivered()) * 8 / cfg.Duration.Seconds()
		res.PerUE[i] = bps
		res.TotalBps += bps
		sum += bps
		sumSq += bps * bps
	}
	if sumSq > 0 {
		res.Fairness = sum * sum / (float64(n) * sumSq)
	}
	res.PerUEBps = summarize(res.PerUE)
	return res
}

// RunScaleSweep runs RunScale for each UE count in counts, sequentially:
// unlike the other experiment sweeps, each point parallelizes internally
// across the world's shards, so fanning points out over a Runner on top
// would only fight it for cores (and skew the per-point wall times).
func RunScaleSweep(cfg ScaleConfig, counts []int) []ScaleResult {
	out := make([]ScaleResult, len(counts))
	for i, n := range counts {
		c := cfg
		c.N = n
		out[i] = RunScale(c)
	}
	return out
}

// RenderScale prints a sweep of UE counts. Wall time is deliberately not
// rendered: this string is the byte-identity golden across shard counts.
func RenderScale(results []ScaleResult) string {
	out := fmt.Sprintf("%6s %6s %12s %12s %10s %11s %11s %6s\n",
		"UEs", "cells", "cell (Mbps)", "total (Mbps)", "fairness", "p50 (Mbps)", "p99 (Mbps)", "hb")
	for _, r := range results {
		out += fmt.Sprintf("%6d %6d %12.1f %12.2f %10.3f %11.2f %11.2f %6d\n",
			r.N, r.Cells, r.CellBps/1e6, r.TotalBps/1e6, r.Fairness,
			r.PerUEBps.P50/1e6, r.PerUEBps.P99/1e6, r.Heartbeats)
	}
	return out
}

package testbed

import (
	"fmt"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
)

// ScaleResult summarizes a shared-cell contention run: N UEs downloading
// through one tower of fixed capacity.
type ScaleResult struct {
	N        int
	CellBps  float64
	TotalBps float64
	PerUE    []float64
	Fairness float64 // Jain's index: 1.0 = perfectly fair
}

// RunScale emulates n UEs attached to one bTelco cell whose air interface
// is a shared bottleneck (one shaper across all subscribers), each running
// a bulk download for dur. It reports aggregate utilization and fairness —
// the substance behind the paper's claim that the prototype "scales to a
// large number of users under different radio conditions".
func RunScale(seed int64, n int, cellBps float64, dur time.Duration) ScaleResult {
	if n <= 0 {
		n = 1
	}
	if cellBps == 0 {
		cellBps = 50e6
	}
	if dur == 0 {
		dur = 60 * time.Second
	}
	sim := netem.NewSim(seed)

	// One shared airtime shaper for the whole cell, one per direction.
	dl := netem.NewShaper(netem.ConstantRate(cellBps), 256*1024, 0)
	dl.MaxQueueTime = 300 * time.Millisecond
	ul := netem.NewShaper(netem.ConstantRate(cellBps), 256*1024, 0)
	ul.MaxQueueTime = 300 * time.Millisecond

	conns := make([]*mptcp.Conn, n)
	meters := make([]*apps.Iperf, n)
	for i := 0; i < n; i++ {
		ueIP := fmt.Sprintf("scale-ue-%d", i)
		srvIP := fmt.Sprintf("scale-srv-%d", i)
		link := &netem.Link{
			Delay:    25 * time.Millisecond,
			MaxQueue: 2 * time.Second,
		}
		// The shared shaper must police the downlink regardless of the
		// lexicographic ordering netem uses for direction naming.
		if srvIP < ueIP {
			link.ShaperAB, link.ShaperBA = dl, ul
		} else {
			link.ShaperAB, link.ShaperBA = ul, dl
		}
		sim.Connect(srvIP, ueIP, link)
		conns[i] = mptcp.NewConn(sim, srvIP, ueIP, mptcp.DefaultConfig())
		meters[i] = apps.NewIperf(sim, conns[i], time.Second)
		// Keep every sender backlogged.
		c := conns[i]
		var topUp func()
		topUp = func() {
			c.Write(16 << 20)
			sim.After(time.Second, topUp)
		}
		topUp()
	}
	sim.RunUntil(dur)

	res := ScaleResult{N: n, CellBps: cellBps, PerUE: make([]float64, n)}
	var sum, sumSq float64
	for i, c := range conns {
		bps := float64(c.Delivered()) * 8 / dur.Seconds()
		res.PerUE[i] = bps
		res.TotalBps += bps
		sum += bps
		sumSq += bps * bps
	}
	if sumSq > 0 {
		res.Fairness = sum * sum / (float64(n) * sumSq)
	}
	return res
}

// RunScaleSweep runs RunScale for each UE count in counts. Every point is
// a fully independent simulation (its own Sim, shapers, and connections),
// so the sweep fans out across the runner; results come back in the order
// of counts.
func RunScaleSweep(seed int64, counts []int, cellBps float64, dur time.Duration, r Runner) []ScaleResult {
	return runUnits(r, len(counts), func(i int) ScaleResult {
		return RunScale(seed, counts[i], cellBps, dur)
	})
}

// RenderScale prints a sweep of UE counts.
func RenderScale(results []ScaleResult) string {
	out := fmt.Sprintf("%5s %12s %12s %10s\n", "UEs", "cell (Mbps)", "total (Mbps)", "fairness")
	for _, r := range results {
		out += fmt.Sprintf("%5d %12.1f %12.2f %10.3f\n", r.N, r.CellBps/1e6, r.TotalBps/1e6, r.Fairness)
	}
	return out
}

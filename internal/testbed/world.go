package testbed

import (
	"fmt"
	"time"

	"cellbricks/internal/apps"
	"cellbricks/internal/mptcp"
	"cellbricks/internal/netem"
	"cellbricks/internal/ran"
	"cellbricks/internal/mobility"
)

// Scenario configures one wide-area emulation run (§6.2): a route, time of
// day, architecture, and the CellBricks parameters under study.
type Scenario struct {
	Route mobility.Route
	Night bool
	Arch  Arch
	// AttachLatency is d: the detach-to-new-address gap (default
	// 31.68 ms, the us-west prototype measurement, as in the paper).
	AttachLatency time.Duration
	// MPTCPWait is the address-worker wait (default 500 ms; the paper's
	// "modified" runs set 0).
	MPTCPWait time.Duration
	// MNOOutage is the baseline's intra-provider handover interruption
	// (default 40 ms: LTE break-before-make data-plane gap).
	MNOOutage time.Duration
	// Protocol selects the host transport for CellBricks runs
	// (default MPTCP; ProtoQUIC for connection-ID migration).
	Protocol mptcp.Protocol
	// SoftHandover performs make-before-break migrations: the new
	// attachment completes (and the new subflow joins) before the old
	// radio link drops — the soft-handover variant the paper defers to
	// future work, here as an ablation.
	SoftHandover bool
	// BrokerDownAt/BrokerDownFor inject a broker outage window: SAP
	// attachments cannot complete inside it, so a handover that lands in
	// the window leaves the UE address-less until the broker returns.
	// CellBricks concentrates availability risk on the broker (§3); this
	// is the failure-injection knob that quantifies it.
	BrokerDownAt  time.Duration
	BrokerDownFor time.Duration
	Seed          int64
	Duration      time.Duration
}

// Defaults fills zero fields with the paper's parameters.
func (sc Scenario) Defaults() Scenario {
	if sc.AttachLatency == 0 {
		sc.AttachLatency = 31680 * time.Microsecond
	}
	if sc.MPTCPWait == 0 && sc.Arch == ArchCellBricks {
		sc.MPTCPWait = 500 * time.Millisecond
	}
	if sc.MNOOutage == 0 {
		sc.MNOOutage = 40 * time.Millisecond
	}
	if sc.Duration == 0 {
		sc.Duration = 10 * time.Minute
	}
	if sc.Route.Name == "" {
		sc.Route = mobility.Downtown
	}
	return sc
}

// World is a built emulation: the simulator, the operator path, the
// transport connection (for TCP-class apps), and the scheduled handover
// sequence.
type World struct {
	Sim       *netem.Sim
	Conn      *mptcp.Conn
	Handovers []time.Duration
	Scenario  Scenario

	op    *mobility.Operator
	ueIdx int
	ueIP  string
	link  *netem.Link
}

// ServerIP is the fixed EC2-side address.
const ServerIP = "server"

// NewWorld builds the emulated path and the transport connection, and
// schedules the scenario's handover events against it.
//
// CellBricks handovers: the address is invalidated, a fresh tower path
// (new policer state) is installed, and the new address appears after
// AttachLatency; MPTCP re-joins after its wait period. MNO handovers: the
// IP persists and the path merely blacks out for MNOOutage.
func NewWorld(sc Scenario) *World {
	sc = sc.Defaults()
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	w := &World{Sim: sim, Scenario: sc, op: op, ueIP: "ue-0"}
	w.link = op.CellularLink(sc.Route, sc.Night)
	sim.Connect(ServerIP, w.ueIP, w.link)

	cfg := mptcp.Config{
		Multipath:    sc.Arch == ArchCellBricks,
		Protocol:     sc.Protocol,
		AddrWorkWait: sc.MPTCPWait,
		Timeout:      60 * time.Second,
	}
	if cfg.Protocol == mptcp.ProtoQUIC {
		cfg.AddrWorkWait = 0 // QUIC has no address-worker artifact
	}
	w.Conn = mptcp.NewConn(sim, ServerIP, w.ueIP, cfg)

	rng := sim.Rand()
	w.Handovers = sc.Route.Handovers(rng, sc.Night, sc.Duration)
	for _, at := range w.Handovers {
		at := at
		sim.At(at, func() { w.handover() })
	}
	return w
}

// handover fires one mobility event against the transport connection.
func (w *World) handover() {
	sc := w.Scenario
	if sc.Arch == ArchCellBricks {
		oldIP := w.ueIP
		w.ueIdx++
		w.ueIP = fmt.Sprintf("ue-%d", w.ueIdx)
		newIP := w.ueIP
		if sc.SoftHandover {
			// Make-before-break: attach to the target first (the SAP
			// exchange runs while the old radio link still carries
			// traffic), then migrate and drop the old path.
			next := w.op.CellularLink(sc.Route, sc.Night)
			w.Sim.Connect(ServerIP, newIP, next)
			w.Sim.After(sc.AttachLatency, func() {
				w.Conn.MigrateSoft(newIP)
				w.link = next
				w.Sim.After(200*time.Millisecond, func() { w.Sim.Disconnect(ServerIP, oldIP) })
			})
			return
		}
		w.Conn.AddrInvalidated()
		w.Sim.Disconnect(ServerIP, oldIP)
		w.link = w.op.CellularLink(sc.Route, sc.Night)
		w.Sim.Connect(ServerIP, newIP, w.link)
		// A broker outage stalls the SAP attach: the new address only
		// appears once the broker is reachable again.
		ready := sc.AttachLatency
		if sc.BrokerDownFor > 0 {
			now := w.Sim.Now()
			end := sc.BrokerDownAt + sc.BrokerDownFor
			if now >= sc.BrokerDownAt && now < end {
				ready = end - now + sc.AttachLatency
			}
		}
		w.Sim.After(ready, func() { w.Conn.AddrAvailable(newIP) })
		return
	}
	// MNO: brief radio interruption, same IP, same anchor. The network
	// forwards buffered data to the target eNodeB, so the gap appears as
	// a delay spike rather than loss.
	w.link.PausedUntil = w.Sim.Now() + sc.MNOOutage
}

// UEIP returns the UE's current address.
func (w *World) UEIP() string { return w.ueIP }

// --- scenario runners for each application class ---

// RunIperf runs the bulk-throughput workload for the scenario's duration.
func RunIperf(sc Scenario) apps.IperfResult {
	w := NewWorld(sc)
	return apps.NewIperf(w.Sim, w.Conn, time.Second).Run(w.Scenario.Duration)
}

// RunPing runs the latency prober. For CellBricks the prober rehomes with
// the connection at each handover; for MNO it stays put (probes during the
// brief outage are lost in both cases).
func RunPing(sc Scenario) (p50 time.Duration, loss float64) {
	sc = sc.Defaults()
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	ueIP := "ping-ue-0"
	link := op.CellularLink(sc.Route, sc.Night)
	sim.Connect(ServerIP, ueIP, link)
	p := apps.NewPinger(sim, ueIP, ServerIP, 200*time.Millisecond)

	idx := 0
	cur := link
	for _, at := range sc.Route.Handovers(sim.Rand(), sc.Night, sc.Duration) {
		at := at
		sim.At(at, func() {
			if sc.Arch == ArchCellBricks {
				p.InvalidateClient()
				sim.Disconnect(ServerIP, fmt.Sprintf("ping-ue-%d", idx))
				idx++
				newIP := fmt.Sprintf("ping-ue-%d", idx)
				cur = op.CellularLink(sc.Route, sc.Night)
				sim.Connect(ServerIP, newIP, cur)
				sim.After(sc.AttachLatency, func() { p.SetClientIP(newIP) })
			} else {
				cur.PausedUntil = sim.Now() + sc.MNOOutage
			}
		})
	}
	p.Run(sc.Duration)
	return p.Stats()
}

// RunVoIP runs the call workload. CellBricks uses the SIP re-INVITE
// fallback (VoIP rides RTP, not MPTCP): after the new attachment, one
// signalling round trip restores media.
func RunVoIP(sc Scenario) apps.VoIPResult {
	sc = sc.Defaults()
	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	ueIP := "voip-ue-0"
	link := op.CellularLink(sc.Route, sc.Night)
	sim.Connect(ServerIP, ueIP, link)
	v := apps.NewVoIP(sim, ueIP, ServerIP)

	idx := 0
	cur := link
	signalRTT := 2 * sc.Route.Delay
	for _, at := range sc.Route.Handovers(sim.Rand(), sc.Night, sc.Duration) {
		at := at
		sim.At(at, func() {
			if sc.Arch == ArchCellBricks {
				v.InvalidateClient()
				sim.Disconnect(ServerIP, fmt.Sprintf("voip-ue-%d", idx))
				idx++
				newIP := fmt.Sprintf("voip-ue-%d", idx)
				cur = op.CellularLink(sc.Route, sc.Night)
				sim.Connect(ServerIP, newIP, cur)
				sim.After(sc.AttachLatency, func() { v.Rehome(newIP, signalRTT) })
			} else {
				cur.PausedUntil = sim.Now() + sc.MNOOutage
			}
		})
	}
	return v.Run(sc.Duration)
}

// RunVideo runs the HLS workload.
func RunVideo(sc Scenario) apps.VideoResult {
	w := NewWorld(sc)
	return apps.NewVideo(w.Sim, w.Conn).Run(w.Scenario.Duration)
}

// RunWeb runs the page-load workload.
func RunWeb(sc Scenario) apps.WebResult {
	w := NewWorld(sc)
	return apps.NewWeb(w.Sim, w.Conn, apps.DefaultWebConfig()).Run(w.Scenario.Duration)
}

// NewGeoWorld builds a World whose handover instants come from the radio
// geometry instead of the statistical schedule: a ran.Mobile drives past
// a linear deployment of single-tower bTelcos at the route's speed, and
// each hysteresis-filtered strongest-cell change becomes a detach + SAP
// re-attach. This ties the UE-driven, network-assisted cell selection of
// §4.2 into the data-plane emulation.
func NewGeoWorld(sc Scenario, towers int) (*World, []ran.HandoverEvent) {
	sc = sc.Defaults()
	if towers <= 0 {
		towers = 64
	}
	deployment := ran.LinearDeployment(towers, sc.Route.TowerSpacingM, func(i int) string {
		return fmt.Sprintf("geo-btelco-%d", i)
	})
	mobile := ran.NewMobile(deployment, sc.Route.Speed(sc.Night))
	events := mobile.DriveHandovers(sc.Duration, 100*time.Millisecond)

	sim := netem.NewSim(sc.Seed)
	op := mobility.NewOperator(sc.Seed + 1)
	w := &World{Sim: sim, Scenario: sc, op: op, ueIP: "ue-0"}
	w.link = op.CellularLink(sc.Route, sc.Night)
	sim.Connect(ServerIP, w.ueIP, w.link)
	cfg := mptcp.Config{
		Multipath:    sc.Arch == ArchCellBricks,
		Protocol:     sc.Protocol,
		AddrWorkWait: sc.MPTCPWait,
		Timeout:      60 * time.Second,
	}
	w.Conn = mptcp.NewConn(sim, ServerIP, w.ueIP, cfg)
	for _, ev := range events {
		at := ev.At
		w.Handovers = append(w.Handovers, at)
		sim.At(at, func() { w.handover() })
	}
	return w, events
}

package testbed

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// --- Runner mechanics ---

func TestRunnerSequentialOrder(t *testing.T) {
	var order []int
	Seq.ForEach(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
	if len(order) != 10 {
		t.Fatalf("%d calls", len(order))
	}
}

func TestRunnerParallelCoversAllUnits(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	Runner{Workers: 8}.ForEach(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Fatalf("unit %d ran %d times", i, c)
		}
	}
}

func TestRunnerZeroUnits(t *testing.T) {
	Runner{}.ForEach(0, func(int) { t.Fatal("called") })
	Runner{}.ForEach(-3, func(int) { t.Fatal("called") })
}

func TestRunUnitsErrLowestIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	_, err := runUnitsErr(Runner{Workers: 4}, 8, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, errB
		case 5:
			return 0, errA
		}
		return i, nil
	})
	if err != errB {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
}

// --- Golden parallel == sequential ---

// freezeBenchClock pins the wall-clock source the attach benchmark charges
// real-crypto time from, removing the only nondeterministic input to the
// Fig. 7 numbers. Restores on cleanup.
func freezeBenchClock(t *testing.T) {
	t.Helper()
	prev := benchNow
	frozen := time.Unix(1_750_000_000, 0)
	benchNow = func() time.Time { return frozen }
	t.Cleanup(func() { benchNow = prev })
}

func TestFig7ParallelMatchesSequential(t *testing.T) {
	freezeBenchClock(t)
	seqRes, err := RunFig7(5, Seq)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunFig7(5, Runner{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := RenderFig7(seqRes), RenderFig7(parRes); s != p {
		t.Fatalf("Fig. 7 output differs\nsequential:\n%s\nparallel:\n%s", s, p)
	}
}

func TestTable1ParallelMatchesSequential(t *testing.T) {
	cfg := Table1Config{Duration: 45 * time.Second, Seed: 7}
	cfg.Runner = Seq
	s := RunTable1(cfg).Render()
	cfg.Runner = Runner{Workers: 4}
	p := RunTable1(cfg).Render()
	if s != p {
		t.Fatalf("Table 1 output differs\nsequential:\n%s\nparallel:\n%s", s, p)
	}
}

func TestFig9ParallelMatchesSequential(t *testing.T) {
	s := runFig9(7, 2, 90*time.Second, Seq).Render()
	p := runFig9(7, 2, 90*time.Second, Runner{Workers: 4}).Render()
	if s != p {
		t.Fatalf("Fig. 9 output differs\nsequential:\n%s\nparallel:\n%s", s, p)
	}
}

func TestTransportsAndScaleParallelMatchSequential(t *testing.T) {
	ts := RunTransportComparisonAll(5, 90*time.Second, Seq)
	tp := RunTransportComparisonAll(5, 90*time.Second, Runner{Workers: 4})
	if len(ts) != len(tp) {
		t.Fatalf("%d vs %d transport arms", len(ts), len(tp))
	}
	for i := range ts {
		if ts[i] != tp[i] {
			t.Fatalf("arm %d: %+v vs %+v", i, ts[i], tp[i])
		}
	}

	// Scale parallelizes inside each point (across world shards) instead
	// of across points; the shard-count equivalent of this golden lives in
	// shard_test.go.
	cfg := ScaleConfig{Seed: 17, CellBps: 20e6, Duration: 3 * time.Second}
	counts := []int{1, 3}
	ss := RunScaleSweep(cfg, counts)
	cfg.Shards = 4
	sp := RunScaleSweep(cfg, counts)
	if RenderScale(ss) != RenderScale(sp) {
		t.Fatalf("scale sweep differs\n1 shard:\n%s\n4 shards:\n%s", RenderScale(ss), RenderScale(sp))
	}
}

// --- Attach-bench span accounting ---

// TestAttachBreakdownPinned pins the per-module breakdown with the wall
// clock frozen, so only the static calibrated costs remain: the breakdown
// must reproduce them exactly, including the architectural difference in
// round trips (2 S6A visits for baseline vs 1 broker visit for SAP).
func TestAttachBreakdownPinned(t *testing.T) {
	freezeBenchClock(t)
	place := PlacementUSWest

	bl, err := RunAttachBench(ArchBaseline, place, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantBL := map[string]time.Duration{
		SpanUE:      costUE,
		SpanENB:     costENB,
		SpanAGW:     costAGWBase,
		SpanSDB:     2 * costSDBVisit, // AIR + ULR
		SpanBrokerd: 0,
		SpanOther:   2 * 2 * place.OneWay, // two S6A round trips
	}
	for k, want := range wantBL {
		if got := bl.Breakdown[k]; got != want {
			t.Errorf("BL %s = %v, want %v", k, got, want)
		}
	}

	cb, err := RunAttachBench(ArchCellBricks, place, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantCB := map[string]time.Duration{
		SpanUE:      costUE,
		SpanENB:     costENB,
		SpanAGW:     costAGWSAP,
		SpanSDB:     0,
		SpanBrokerd: costBrokerd,
		SpanOther:   2 * place.OneWay, // one SAP round trip
	}
	for k, want := range wantCB {
		if got := cb.Breakdown[k]; got != want {
			t.Errorf("CB %s = %v, want %v", k, got, want)
		}
	}

	// The mean must equal the sum of the per-module means: nothing charged
	// during an attach escapes the breakdown, and nothing charged outside
	// one (e.g. world setup) leaks in.
	for _, r := range []AttachBenchResult{bl, cb} {
		var sum time.Duration
		for _, v := range r.Breakdown {
			sum += v
		}
		if sum != r.Mean {
			t.Errorf("%s: breakdown sums to %v, mean is %v", r.Arch, sum, r.Mean)
		}
	}
}

// TestAttachSampleExcludesPriorCharges pins the delta semantics of
// RunAttach directly: charges made before the attach — setup work, or a
// previous attach on the same world — must not appear in the sample.
func TestAttachSampleExcludesPriorCharges(t *testing.T) {
	freezeBenchClock(t)
	w, err := newAttachWorld(PlacementLocal)
	if err != nil {
		t.Fatal(err)
	}
	w.clock.Charge(SpanUE, 5*time.Second) // simulated setup charge
	s, err := w.RunAttach(ArchCellBricks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spans[SpanUE] != costUE {
		t.Fatalf("sample UE span %v includes prior charges (want %v)", s.Spans[SpanUE], costUE)
	}
	if s.Total != costUE+costENB+costAGWSAP+costBrokerd+2*PlacementLocal.OneWay {
		t.Fatalf("sample total %v", s.Total)
	}
}

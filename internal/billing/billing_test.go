package billing

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"cellbricks/internal/pki"
)

func pair(t *testing.T, seed byte) *pki.KeyPair {
	t.Helper()
	k, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{seed}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReportCodecRoundTrip(t *testing.T) {
	r := &Report{
		SessionRef: "abc123",
		Reporter:   ReporterTelco,
		Seq:        7,
		Rel:        42 * time.Second,
		ULBytes:    1000,
		DLBytes:    5000,
		CallSecs:   12.5,
		SMSCount:   3,
		QoS: QoSMetrics{
			DLBitrateBps: 2.1e6, ULBitrateBps: 0.4e6,
			DLLossRate: 0.01, ULLossRate: 0.002,
			DLDelayMs: 45, ULDelayMs: 50,
		},
	}
	got, err := UnmarshalReport(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, r)
	}
}

func TestReportCodecRejectsBadReporter(t *testing.T) {
	r := &Report{SessionRef: "x", Reporter: 9}
	if _, err := UnmarshalReport(r.Marshal()); err == nil {
		t.Fatal("bad reporter accepted")
	}
}

func TestSealOpenVerified(t *testing.T) {
	broker, ue := pair(t, 1), pair(t, 2)
	r := &Report{SessionRef: "s1", Reporter: ReporterUE, Seq: 1, DLBytes: 999}
	env, err := Seal(r, ue, broker.Public())
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenVerified(env, broker, ue.Public())
	if err != nil {
		t.Fatal(err)
	}
	if got.DLBytes != 999 {
		t.Fatalf("got %+v", got)
	}
}

func TestOpenVerifiedRejectsWrongSigner(t *testing.T) {
	broker, ue, other := pair(t, 3), pair(t, 4), pair(t, 5)
	r := &Report{SessionRef: "s1", Reporter: ReporterUE, Seq: 1}
	env, err := Seal(r, ue, broker.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVerified(env, broker, other.Public()); !errors.Is(err, ErrBadReportSignature) {
		t.Fatalf("err=%v, want ErrBadReportSignature", err)
	}
}

func TestOpenVerifiedRejectsTamper(t *testing.T) {
	broker, ue := pair(t, 6), pair(t, 7)
	r := &Report{SessionRef: "s1", Reporter: ReporterUE, Seq: 1, DLBytes: 10}
	env, err := Seal(r, ue, broker.Public())
	if err != nil {
		t.Fatal(err)
	}
	env.Sealed[len(env.Sealed)-1] ^= 1
	if _, err := OpenVerified(env, broker, ue.Public()); err == nil {
		t.Fatal("tampered sealed body accepted")
	}
}

func TestSealedReportEnvelopeCodec(t *testing.T) {
	env := &SealedReport{Sealed: []byte{1, 2, 3}, Sig: []byte{4, 5}}
	got, err := UnmarshalSealedReport(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Sealed, env.Sealed) || !bytes.Equal(got.Sig, env.Sig) {
		t.Fatal("envelope roundtrip mismatch")
	}
}

func mkVerifier() *Verifier {
	v := NewVerifier(DefaultVerifierConfig())
	v.BindSession("sess", "user-1", "telco-1")
	return v
}

func rpt(rep Reporter, seq uint32, dl uint64, loss float64) *Report {
	return &Report{
		SessionRef: "sess", Reporter: rep, Seq: seq,
		Rel:     time.Duration(seq) * 30 * time.Second,
		DLBytes: dl, ULBytes: dl / 10,
		QoS: QoSMetrics{DLLossRate: loss},
	}
}

func TestVerifierHonestPairPasses(t *testing.T) {
	v := mkVerifier()
	if _, err := v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0.01)); err != nil {
		t.Fatal(err)
	}
	m, err := v.Ingest(rpt(ReporterTelco, 1, 1_020_000, 0)) // within 5%+loss
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("honest pair flagged: %+v", m)
	}
	if s := v.TelcoScore("telco-1"); s < 0.99 {
		t.Fatalf("score %.3f after honest pair", s)
	}
}

func TestVerifierInflationCaught(t *testing.T) {
	v := mkVerifier()
	v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0.01))
	m, err := v.Ingest(rpt(ReporterTelco, 1, 1_500_000, 0)) // 50% inflation
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("50% inflation not flagged")
	}
	if m.Degree < 0.4 || m.Degree > 0.6 {
		t.Fatalf("degree = %.2f, want ~0.5", m.Degree)
	}
	if s := v.TelcoScore("telco-1"); s >= 1.0 {
		t.Fatalf("score did not drop: %.3f", s)
	}
	if e := v.TelcoEntry("telco-1"); e.Mismatches != 1 || e.Reports != 1 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestVerifierOrderIndependent(t *testing.T) {
	v := mkVerifier()
	// Telco report arrives first.
	m, err := v.Ingest(rpt(ReporterTelco, 1, 2_000_000, 0))
	if err != nil || m != nil {
		t.Fatalf("first half: m=%v err=%v", m, err)
	}
	m, err = v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("2x inflation not flagged when telco reported first")
	}
}

func TestVerifierLossToleranceScalesThreshold(t *testing.T) {
	v := mkVerifier()
	// 20% loss reported by the UE: the telco seeing 1.2x is consistent
	// with sending packets that were lost after its counter.
	v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0.20))
	m, _ := v.Ingest(rpt(ReporterTelco, 1, 1_200_000, 0))
	if m != nil {
		t.Fatalf("loss-consistent pair flagged: %+v", m)
	}
}

func TestVerifierRepeatedInflationTanksScore(t *testing.T) {
	v := mkVerifier()
	for seq := uint32(1); seq <= 30; seq++ {
		v.Ingest(rpt(ReporterUE, seq, 1_000_000, 0))
		v.Ingest(rpt(ReporterTelco, seq, 3_000_000, 0))
	}
	if s := v.TelcoScore("telco-1"); s > 0.2 {
		t.Fatalf("persistent 3x inflation left score at %.3f", s)
	}
	if len(v.Mismatches()) != 30 {
		t.Fatalf("mismatch count = %d", len(v.Mismatches()))
	}
}

func TestVerifierMismatchRingBounded(t *testing.T) {
	cfg := DefaultVerifierConfig()
	cfg.MaxMismatches = 8
	v := NewVerifier(cfg)
	v.BindSession("sess", "user-1", "telco-1")
	for seq := uint32(1); seq <= 20; seq++ {
		v.Ingest(rpt(ReporterUE, seq, 1_000_000, 0))
		v.Ingest(rpt(ReporterTelco, seq, 3_000_000, 0))
	}
	ms := v.Mismatches()
	if len(ms) != 8 {
		t.Fatalf("ring holds %d, want 8", len(ms))
	}
	if v.MismatchesDropped() != 12 {
		t.Fatalf("dropped = %d, want 12", v.MismatchesDropped())
	}
	// Oldest-first order: the retained window is seqs 13..20.
	for i, m := range ms {
		if want := uint32(13 + i); m.Seq != want {
			t.Fatalf("ms[%d].Seq = %d, want %d", i, m.Seq, want)
		}
	}
	// Reputation bookkeeping is unaffected by eviction.
	if e := v.TelcoEntry("telco-1"); e.Mismatches != 20 {
		t.Fatalf("entry.Mismatches = %d, want 20", e.Mismatches)
	}
}

func TestVerifierReplayRejected(t *testing.T) {
	v := mkVerifier()
	v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0))
	v.Ingest(rpt(ReporterTelco, 1, 1_000_000, 0))
	before := v.TelcoScore("telco-1")

	// Exact duplicate of the telco's seq-1 report: replay.
	m, err := v.Ingest(rpt(ReporterTelco, 1, 1_000_000, 0))
	if !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("duplicate report: m=%v err=%v, want ErrReplayedReport", m, err)
	}
	if v.Replays() != 1 {
		t.Fatalf("Replays() = %d, want 1", v.Replays())
	}
	if e := v.TelcoEntry("telco-1"); e.Replays != 1 {
		t.Fatalf("entry.Replays = %d, want 1", e.Replays)
	}
	if after := v.TelcoScore("telco-1"); after >= before {
		t.Fatalf("replay did not hurt score: %.3f -> %.3f", before, after)
	}

	// A rel-regressed report with a fresh seq is stale too.
	stale := rpt(ReporterTelco, 5, 1_000_000, 0)
	stale.Rel = 10 * time.Second // behind seq-1's 30s
	if _, err := v.Ingest(stale); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("rel regression not flagged: %v", err)
	}

	// Replays must not leave zombie pending pairs: a fresh aligned pair
	// still checks cleanly.
	v.Ingest(rpt(ReporterUE, 2, 2_000_000, 0))
	m, err = v.Ingest(rpt(ReporterTelco, 2, 2_000_000, 0))
	if err != nil || m != nil {
		t.Fatalf("fresh pair after replay: m=%v err=%v", m, err)
	}

	// UE replays are rejected but do not ding the bTelco.
	e0 := v.TelcoEntry("telco-1").Replays
	if _, err := v.Ingest(rpt(ReporterUE, 2, 2_000_000, 0)); !errors.Is(err, ErrReplayedReport) {
		t.Fatalf("UE duplicate not flagged: %v", err)
	}
	if e := v.TelcoEntry("telco-1"); e.Replays != e0 {
		t.Fatalf("UE replay attributed to bTelco: %d -> %d", e0, e.Replays)
	}
}

func TestPenalizeMisconduct(t *testing.T) {
	v := mkVerifier()
	v.PenalizeMisconduct("telco-1", 1.0)
	one := v.TelcoScore("telco-1")
	wantAlpha := 2 * DefaultVerifierConfig().Alpha
	if want := 1.0 - wantAlpha; one < want-1e-9 || one > want+1e-9 {
		t.Fatalf("one full misconduct hit: score %.3f, want %.3f", one, want)
	}
	// Heavier than a QoS hit of the same degree.
	v2 := mkVerifier()
	v2.PenalizeQoS("telco-1", 1.0)
	if q := v2.TelcoScore("telco-1"); q <= one {
		t.Fatalf("QoS penalty (%.3f) should be lighter than misconduct (%.3f)", q, one)
	}
}

func TestVerifierScoreRecovers(t *testing.T) {
	v := mkVerifier()
	v.Ingest(rpt(ReporterUE, 1, 1_000_000, 0))
	v.Ingest(rpt(ReporterTelco, 1, 9_000_000, 0))
	low := v.TelcoScore("telco-1")
	for seq := uint32(2); seq <= 60; seq++ {
		v.Ingest(rpt(ReporterUE, seq, 1_000_000, 0))
		v.Ingest(rpt(ReporterTelco, seq, 1_000_000, 0))
	}
	if got := v.TelcoScore("telco-1"); got <= low || got < 0.9 {
		t.Fatalf("score did not recover: %.3f -> %.3f", low, got)
	}
}

func TestVerifierSuspectList(t *testing.T) {
	v := NewVerifier(DefaultVerifierConfig())
	// The same user disagrees with three different bTelcos -> suspect.
	for i, telco := range []string{"t1", "t2", "t3"} {
		ref := telco + "-sess"
		v.BindSession(ref, "liar", telco)
		u := rpt(ReporterUE, 1, 100_000, 0) // UE deflates
		u.SessionRef = ref
		tr := rpt(ReporterTelco, 1, 1_000_000, 0)
		tr.SessionRef = ref
		v.Ingest(u)
		v.Ingest(tr)
		if i < 2 && v.Suspect("liar") {
			t.Fatalf("suspect after only %d telcos", i+1)
		}
	}
	if !v.Suspect("liar") {
		t.Fatal("user disagreeing with 3 bTelcos not suspected")
	}
	if v.Suspect("honest") {
		t.Fatal("unrelated user suspected")
	}
}

func TestVerifierUnknownSession(t *testing.T) {
	v := NewVerifier(DefaultVerifierConfig())
	if _, err := v.Ingest(rpt(ReporterUE, 1, 1, 0)); err == nil {
		t.Fatal("report for unbound session accepted")
	}
}

func TestAlignByTime(t *testing.T) {
	cycle := 30 * time.Second
	mk := func(rep Reporter, rel time.Duration) *Report {
		return &Report{SessionRef: "s", Reporter: rep, Rel: rel}
	}
	ue := []*Report{mk(ReporterUE, 30*time.Second), mk(ReporterUE, 60*time.Second), mk(ReporterUE, 90*time.Second)}
	telco := []*Report{mk(ReporterTelco, 31*time.Second), mk(ReporterTelco, 58*time.Second)}
	pairs := AlignByTime(ue, telco, cycle)
	if len(pairs) != 2 {
		t.Fatalf("aligned %d pairs, want 2", len(pairs))
	}
	if pairs[0].UE.Rel != 30*time.Second || pairs[0].Telco.Rel != 31*time.Second {
		t.Fatalf("pair 0 wrong: %+v", pairs[0])
	}
	// A telco report far outside any window pairs with nothing.
	lone := AlignByTime(ue[:1], []*Report{mk(ReporterTelco, 300*time.Second)}, cycle)
	if len(lone) != 0 {
		t.Fatalf("distant reports paired: %v", lone)
	}
}

func TestSettle(t *testing.T) {
	v := mkVerifier()
	// Reports are cumulative: pair 2 is the newest and disputed, so the
	// session settles on its UE-attested cumulative total.
	pairs := []AlignedPair{
		{UE: rpt(ReporterUE, 1, 1_000_000, 0), Telco: rpt(ReporterTelco, 1, 1_000_000, 0)},
		{UE: rpt(ReporterUE, 2, 2_000_000, 0), Telco: rpt(ReporterTelco, 2, 6_000_000, 0), Mismatched: true},
	}
	s := v.Settle("sess", pairs, 2.0)
	if !s.Disputed {
		t.Fatal("disputed pair not marked")
	}
	// UE cumulative at pair 2: DL 2M + UL 200k.
	if s.VerifiedBytes != 2_200_000 {
		t.Fatalf("verified bytes = %d", s.VerifiedBytes)
	}
	wantAmount := 2_200_000.0 / 1e9 * 2.0
	if math.Abs(s.Amount-wantAmount) > 1e-9 {
		t.Fatalf("amount = %v, want %v", s.Amount, wantAmount)
	}
	if s.IDT != "telco-1" {
		t.Fatalf("IDT = %q", s.IDT)
	}
	// An agreeing final pair settles on the mean of both sides.
	ok := []AlignedPair{{UE: rpt(ReporterUE, 1, 1_000_000, 0), Telco: rpt(ReporterTelco, 1, 1_000_000, 0)}}
	s2 := v.Settle("sess", ok, 2.0)
	if s2.Disputed || s2.VerifiedBytes != 1_100_000 {
		t.Fatalf("agreeing settlement = %+v", s2)
	}
	// No pairs -> zero settlement.
	if z := v.Settle("sess", nil, 2.0); z.VerifiedBytes != 0 || z.Amount != 0 {
		t.Fatalf("empty settlement = %+v", z)
	}
}

// Property: the verifier flags a pair iff the discrepancy exceeds the
// loss-adjusted threshold, regardless of magnitudes.
func TestPropertyThresholdExact(t *testing.T) {
	f := func(ueBytes uint32, lossPct uint8, inflatePct uint8) bool {
		v := NewVerifier(DefaultVerifierConfig())
		v.BindSession("s", "u", "t")
		loss := float64(lossPct%30) / 100
		ue := &Report{SessionRef: "s", Reporter: ReporterUE, Seq: 1, DLBytes: uint64(ueBytes), QoS: QoSMetrics{DLLossRate: loss}}
		telcoBytes := uint64(float64(ueBytes) * (1 + float64(inflatePct%200)/100))
		telco := &Report{SessionRef: "s", Reporter: ReporterTelco, Seq: 1, DLBytes: telcoBytes}
		v.Ingest(ue)
		m, err := v.Ingest(telco)
		if err != nil {
			return false
		}
		threshold := float64(ue.DLBytes)*(loss+0.05) + 1500
		diff := math.Abs(float64(telcoBytes) - float64(ueBytes))
		return (m != nil) == (diff > threshold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: reputation stays within [0, 1] under any report mix.
func TestPropertyScoreBounded(t *testing.T) {
	f := func(vals []uint32) bool {
		v := NewVerifier(DefaultVerifierConfig())
		v.BindSession("s", "u", "t")
		for i, val := range vals {
			seq := uint32(i + 1)
			v.Ingest(&Report{SessionRef: "s", Reporter: ReporterUE, Seq: seq, DLBytes: 1_000_000})
			v.Ingest(&Report{SessionRef: "s", Reporter: ReporterTelco, Seq: seq, DLBytes: uint64(val)})
			s := v.TelcoScore("t")
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivered bytes never exceed what either side could have seen:
// for any epsilon, an honest pair (telco >= ue by exactly the radio loss)
// is never flagged when epsilon covers the loss, and always flagged when
// the discrepancy is far beyond epsilon + loss.
func TestPropertyEpsilonBoundaries(t *testing.T) {
	f := func(lossPct uint8, epsPct uint8) bool {
		loss := float64(lossPct%20) / 100
		eps := float64(epsPct%20)/100 + 0.01
		cfg := DefaultVerifierConfig()
		cfg.Epsilon = eps
		v := NewVerifier(cfg)
		v.BindSession("s", "u", "t")
		ueBytes := uint64(10_000_000)
		// Honest: telco counted the bytes the radio later lost.
		honestTelco := uint64(float64(ueBytes) * (1 + loss*0.9)) // within loss
		v.Ingest(&Report{SessionRef: "s", Reporter: ReporterUE, Seq: 1, DLBytes: ueBytes, QoS: QoSMetrics{DLLossRate: loss}})
		m1, _ := v.Ingest(&Report{SessionRef: "s", Reporter: ReporterTelco, Seq: 1, DLBytes: honestTelco})
		if m1 != nil {
			return false // honest flagged
		}
		// Brazen: 2x beyond anything loss+eps can explain.
		cheat := uint64(float64(ueBytes) * (2.5 + loss + eps))
		v.Ingest(&Report{SessionRef: "s", Reporter: ReporterUE, Seq: 2, DLBytes: ueBytes, QoS: QoSMetrics{DLLossRate: loss}})
		m2, _ := v.Ingest(&Report{SessionRef: "s", Reporter: ReporterTelco, Seq: 2, DLBytes: cheat})
		return m2 != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackBytesAbsorbsInFlightButNotFraud(t *testing.T) {
	cfg := DefaultVerifierConfig()
	cfg.SlackBytes = 1 << 20
	v := NewVerifier(cfg)
	v.BindSession("s", "u", "t")
	// Final report of a short session: 2 MB delivered, ~800 KB in flight
	// at detach. Within slack -> tolerated.
	v.Ingest(&Report{SessionRef: "s", Reporter: ReporterUE, Seq: 1, DLBytes: 2_000_000})
	if m, _ := v.Ingest(&Report{SessionRef: "s", Reporter: ReporterTelco, Seq: 1, DLBytes: 2_800_000}); m != nil {
		t.Fatalf("in-flight gap flagged despite slack: %+v", m)
	}
	// 10% inflation on a 50 MB cycle: diff 5 MB > 50M*eps + 1M slack.
	v.Ingest(&Report{SessionRef: "s", Reporter: ReporterUE, Seq: 2, DLBytes: 50_000_000})
	if m, _ := v.Ingest(&Report{SessionRef: "s", Reporter: ReporterTelco, Seq: 2, DLBytes: 55_000_000}); m == nil {
		t.Fatal("10% inflation on a large cycle escaped despite slack")
	}
}

// Package billing implements CellBricks' verifiable accounting (§4.3):
// the UE and the bTelco independently measure a session's traffic and
// periodically send signed, encrypted traffic reports to the broker; the
// broker aligns the two report streams and flags discrepancies beyond a
// loss-adjusted threshold (Fig. 5), feeding a reputation system under the
// paper's "dishonest but not malicious" threat model.
package billing

import (
	"errors"
	"fmt"
	"time"

	"cellbricks/internal/codec"
	"cellbricks/internal/pki"
)

// Reporter identifies which side produced a report.
type Reporter byte

// Reporter values.
const (
	ReporterUE Reporter = iota + 1
	ReporterTelco
)

// QoSMetrics are the per-direction quality measurements a report carries,
// per the 3GPP performance-measurement vocabulary the paper references
// (average bit rates, packet loss, delay — separately for DL and UL).
type QoSMetrics struct {
	DLBitrateBps float64
	ULBitrateBps float64
	DLLossRate   float64
	ULLossRate   float64
	DLDelayMs    float64
	ULDelayMs    float64
}

// Report is one traffic report: "(i) session identifier, (ii) relative
// timestamp within the session, (iii) usage metrics for UL and DL in
// bytes, (iv) duration for calls and events such as SMS, (v) QoS metrics".
type Report struct {
	SessionRef string // the SAP grant's opaque URef
	Reporter   Reporter
	Seq        uint32        // reporting-cycle sequence number
	Rel        time.Duration // relative timestamp within the session
	ULBytes    uint64
	DLBytes    uint64
	CallSecs   float64
	SMSCount   uint32
	QoS        QoSMetrics
}

// Marshal encodes a report body.
func (r *Report) Marshal() []byte {
	w := codec.NewWriter(128)
	w.String(r.SessionRef)
	w.Byte(byte(r.Reporter))
	w.Uint32(r.Seq)
	w.Uint64(uint64(r.Rel))
	w.Uint64(r.ULBytes)
	w.Uint64(r.DLBytes)
	w.Float64(r.CallSecs)
	w.Uint32(r.SMSCount)
	w.Float64(r.QoS.DLBitrateBps)
	w.Float64(r.QoS.ULBitrateBps)
	w.Float64(r.QoS.DLLossRate)
	w.Float64(r.QoS.ULLossRate)
	w.Float64(r.QoS.DLDelayMs)
	w.Float64(r.QoS.ULDelayMs)
	return w.Out()
}

// UnmarshalReport decodes a report body.
func UnmarshalReport(b []byte) (*Report, error) {
	rd := codec.NewReader(b)
	r := &Report{}
	r.SessionRef = rd.String()
	r.Reporter = Reporter(rd.Byte())
	r.Seq = rd.Uint32()
	r.Rel = time.Duration(rd.Uint64())
	r.ULBytes = rd.Uint64()
	r.DLBytes = rd.Uint64()
	r.CallSecs = rd.Float64()
	r.SMSCount = rd.Uint32()
	r.QoS.DLBitrateBps = rd.Float64()
	r.QoS.ULBitrateBps = rd.Float64()
	r.QoS.DLLossRate = rd.Float64()
	r.QoS.ULLossRate = rd.Float64()
	r.QoS.DLDelayMs = rd.Float64()
	r.QoS.ULDelayMs = rd.Float64()
	if err := rd.Done(); err != nil {
		return nil, err
	}
	if r.Reporter != ReporterUE && r.Reporter != ReporterTelco {
		return nil, fmt.Errorf("billing: bad reporter %d", r.Reporter)
	}
	return r, nil
}

// SealedReport is the tamper-proof envelope: the report body sealed to the
// broker's public key and signed by the reporter's key (the UE's baseband
// key, or the bTelco's certified key).
type SealedReport struct {
	Sealed []byte
	Sig    []byte
}

// Marshal encodes the envelope.
func (s *SealedReport) Marshal() []byte {
	w := codec.NewWriter(256)
	w.Bytes(s.Sealed)
	w.Bytes(s.Sig)
	return w.Out()
}

// UnmarshalSealedReport decodes the envelope.
func UnmarshalSealedReport(b []byte) (*SealedReport, error) {
	rd := codec.NewReader(b)
	s := &SealedReport{}
	s.Sealed = rd.BytesCopy()
	s.Sig = rd.BytesCopy()
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// Seal signs and encrypts a report for the broker. This is the operation
// the paper locates in the UE baseband firmware ("sign and encrypt the
// measurement report on the baseband").
func Seal(r *Report, signer *pki.KeyPair, brokerPub pki.PublicIdentity) (*SealedReport, error) {
	body := r.Marshal()
	sealed, err := pki.Seal(brokerPub, body)
	if err != nil {
		return nil, err
	}
	return &SealedReport{Sealed: sealed, Sig: signer.Sign(sealed)}, nil
}

// ErrBadReportSignature is returned when an envelope fails verification.
var ErrBadReportSignature = errors.New("billing: report signature invalid")

// OpenVerified decrypts an envelope with the broker's key and verifies the
// reporter's signature against the expected identity.
func OpenVerified(s *SealedReport, brokerKey *pki.KeyPair, reporterPub pki.PublicIdentity) (*Report, error) {
	if err := reporterPub.Verify(s.Sealed, s.Sig); err != nil {
		return nil, ErrBadReportSignature
	}
	body, err := brokerKey.Open(s.Sealed)
	if err != nil {
		return nil, err
	}
	return UnmarshalReport(body)
}

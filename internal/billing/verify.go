package billing

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mismatch records one detected accounting discrepancy: a pair of aligned
// reports whose DL usage differs by more than the loss-adjusted threshold
// of Fig. 5.
type Mismatch struct {
	SessionRef string
	Seq        uint32
	UEBytes    uint64
	TelcoBytes uint64
	Threshold  float64
	Degree     float64 // |diff| / max(UEBytes, 1) — the weighting input
}

// VerifierConfig tunes the Fig. 5 heuristic.
type VerifierConfig struct {
	// Epsilon is the fixed tolerance ratio added to the UE-reported DL
	// loss rate when computing the discrepancy threshold.
	Epsilon float64
	// Alpha is the EWMA weight for reputation updates.
	Alpha float64
	// SuspectTelcoCount is how many *distinct* bTelcos a UE must disagree
	// with before the broker places the UE (rather than the bTelcos) on
	// its suspect list.
	SuspectTelcoCount int
	// SlackBytes is the absolute discrepancy allowance on top of the
	// proportional threshold: it absorbs bytes legitimately in flight
	// between the two counters (bounded by bandwidth-delay product plus
	// the bottleneck queue) at the moment a report is cut — most visible
	// on the short final report of a session ended by a handover.
	// Zero selects one MTU (1500), the paper-tight setting.
	SlackBytes uint64
	// MaxMismatches bounds the retained mismatch incident log: a broker
	// facing a chatty adversary must not grow without bound on the
	// adversary's schedule. Older incidents are dropped (counted by
	// MismatchesDropped); reputation state is unaffected. Zero selects
	// 1024.
	MaxMismatches int
}

// DefaultVerifierConfig matches the constants used in the experiments.
func DefaultVerifierConfig() VerifierConfig {
	return VerifierConfig{Epsilon: 0.05, Alpha: 0.10, SuspectTelcoCount: 3}
}

// pairKey aligns reports "using the relative timestamp / sequence".
type pairKey struct {
	ref string
	seq uint32
}

type pendingPair struct {
	ue    *Report
	telco *Report
}

// repKey tracks per-(session, reporter) freshness for replay detection.
type repKey struct {
	ref string
	rep Reporter
}

type freshness struct {
	seq uint32
	rel time.Duration
}

// ErrReplayedReport is returned by Ingest for a stale or duplicated
// report: its sequence number or relative timestamp regresses against
// what the same reporter already submitted for the session. The envelope
// signature still verifies — replay is only detectable here.
var ErrReplayedReport = fmt.Errorf("billing: replayed or stale report")

// Verifier is the broker-side accounting pipeline: it ingests verified
// report bodies, aligns UE/bTelco pairs, applies the Fig. 5 discrepancy
// test, and maintains reputation state.
type Verifier struct {
	cfg VerifierConfig

	pending map[pairKey]*pendingPair
	// session -> bTelco identity, provided by the SAP grant records.
	sessionTelco map[string]string
	sessionUser  map[string]string

	telcoRep   map[string]*ReputationEntry
	userMisses map[string]map[string]bool // idU -> set of bTelcos disagreed with
	suspects   map[string]bool

	// lastSeen drives replay detection: the freshest (seq, rel) each
	// reporter has submitted per session.
	lastSeen map[repKey]freshness
	replays  int

	// mismatches is a bounded ring (capacity cfg.MaxMismatches): mmHead
	// is the index of the oldest entry once full, mmDropped counts
	// evicted incidents.
	mismatches []Mismatch
	mmHead     int
	mmDropped  uint64
	checked    int
}

// ReputationEntry is a bTelco's standing with the broker.
type ReputationEntry struct {
	Score      float64 // EWMA in [0,1]; 1 = spotless
	Reports    int
	Mismatches int
	Replays    int     // replayed/stale reports attributed to this bTelco
	Penalty    float64 // cumulative weighted degree
}

// NewVerifier builds a verifier.
func NewVerifier(cfg VerifierConfig) *Verifier {
	return &Verifier{
		cfg:          cfg,
		pending:      make(map[pairKey]*pendingPair),
		sessionTelco: make(map[string]string),
		sessionUser:  make(map[string]string),
		telcoRep:     make(map[string]*ReputationEntry),
		userMisses:   make(map[string]map[string]bool),
		suspects:     make(map[string]bool),
		lastSeen:     make(map[repKey]freshness),
	}
}

// BindSession tells the verifier which user and bTelco a session reference
// belongs to (from the SAP grant record).
func (v *Verifier) BindSession(ref, idU, idT string) {
	v.sessionTelco[ref] = idT
	v.sessionUser[ref] = idU
}

// Ingest adds one verified report body. When its counterpart (same
// session, same seq, other reporter) is already present, the pair is
// checked immediately and the outcome returned; otherwise ok=true with a
// nil mismatch.
func (v *Verifier) Ingest(r *Report) (*Mismatch, error) {
	if r == nil {
		return nil, fmt.Errorf("billing: nil report")
	}
	if _, known := v.sessionTelco[r.SessionRef]; !known {
		return nil, fmt.Errorf("billing: report for unknown session %q", r.SessionRef)
	}
	if r.Reporter != ReporterUE && r.Reporter != ReporterTelco {
		return nil, fmt.Errorf("billing: bad reporter %d", r.Reporter)
	}
	// Replay/staleness gate: a reporter's (seq, rel) must strictly
	// advance within a session. A signed old envelope sails through
	// signature checks, so freshness is this layer's job. Replayed
	// reports never reach pairing (no zombie pending pairs) and count as
	// misconduct for the bTelco (its meter, its replay — a UE replay is
	// handled by the suspect machinery via mismatches it causes).
	fk := repKey{r.SessionRef, r.Reporter}
	if last, seen := v.lastSeen[fk]; seen && (r.Seq <= last.seq || r.Rel < last.rel) {
		v.replays++
		if r.Reporter == ReporterTelco {
			if rep := v.repEntry(v.sessionTelco[r.SessionRef]); rep != nil {
				rep.Replays++
			}
			v.PenalizeMisconduct(v.sessionTelco[r.SessionRef], 1.0)
		}
		return nil, fmt.Errorf("%w: session %q reporter %d seq %d rel %v (last seq %d rel %v)",
			ErrReplayedReport, r.SessionRef, r.Reporter, r.Seq, r.Rel, last.seq, last.rel)
	}
	v.lastSeen[fk] = freshness{seq: r.Seq, rel: r.Rel}
	k := pairKey{r.SessionRef, r.Seq}
	p := v.pending[k]
	if p == nil {
		p = &pendingPair{}
		v.pending[k] = p
	}
	switch r.Reporter {
	case ReporterUE:
		p.ue = r
	case ReporterTelco:
		p.telco = r
	default:
		return nil, fmt.Errorf("billing: bad reporter %d", r.Reporter)
	}
	if p.ue == nil || p.telco == nil {
		return nil, nil
	}
	delete(v.pending, k)
	return v.check(p.ue, p.telco), nil
}

// check applies Fig. 5: threshold = DL_U * (loss_U + epsilon); a mismatch
// is |DL_T - DL_U| > threshold. Reputation is an EWMA over pass/fail with
// the failure contribution weighted by the degree of mismatch.
func (v *Verifier) check(ue, telco *Report) *Mismatch {
	v.checked++
	idT := v.sessionTelco[ue.SessionRef]
	idU := v.sessionUser[ue.SessionRef]
	rep := v.telcoRep[idT]
	if rep == nil {
		rep = &ReputationEntry{Score: 1}
		v.telcoRep[idT] = rep
	}
	rep.Reports++

	slack := float64(v.cfg.SlackBytes)
	if slack == 0 {
		slack = 1500 // one MTU of slack for timing skew
	}
	threshold := float64(ue.DLBytes)*(ue.QoS.DLLossRate+v.cfg.Epsilon) + slack
	diff := math.Abs(float64(telco.DLBytes) - float64(ue.DLBytes))
	if diff <= threshold {
		rep.Score = rep.Score*(1-v.cfg.Alpha) + v.cfg.Alpha*1.0
		return nil
	}
	degree := diff / math.Max(float64(ue.DLBytes), 1)
	m := Mismatch{
		SessionRef: ue.SessionRef,
		Seq:        ue.Seq,
		UEBytes:    ue.DLBytes,
		TelcoBytes: telco.DLBytes,
		Threshold:  threshold,
		Degree:     degree,
	}
	v.recordMismatch(m)
	rep.Mismatches++
	rep.Penalty += degree
	// A mismatch contributes a degree-weighted failure to the EWMA: small
	// overshoots hurt less than brazen inflation ("weighted by the degree
	// of mismatch").
	fail := 1.0 - math.Min(degree, 1.0)
	rep.Score = rep.Score*(1-v.cfg.Alpha) + v.cfg.Alpha*fail

	// Track which bTelcos this user has disagreed with: a user whose
	// reports clash with many independent bTelcos is the likelier liar.
	set := v.userMisses[idU]
	if set == nil {
		set = make(map[string]bool)
		v.userMisses[idU] = set
	}
	set[idT] = true
	if len(set) >= v.cfg.SuspectTelcoCount {
		v.suspects[idU] = true
	}
	return &m
}

// repEntry returns (creating if needed) the reputation entry for idT.
func (v *Verifier) repEntry(idT string) *ReputationEntry {
	rep := v.telcoRep[idT]
	if rep == nil {
		rep = &ReputationEntry{Score: 1}
		v.telcoRep[idT] = rep
	}
	return rep
}

// recordMismatch appends to the bounded incident ring, evicting the
// oldest entry once cfg.MaxMismatches is reached.
func (v *Verifier) recordMismatch(m Mismatch) {
	max := v.cfg.MaxMismatches
	if max <= 0 {
		max = 1024
	}
	if len(v.mismatches) < max {
		v.mismatches = append(v.mismatches, m)
		return
	}
	v.mismatches[v.mmHead] = m
	v.mmHead = (v.mmHead + 1) % max
	v.mmDropped++
}

// PenalizeMisconduct applies a heavy reputation penalty for directly
// attested misbehavior — a replayed signed report, or UE watchdog
// evidence of accept-then-blackhole. Unlike an accounting mismatch
// (which could be honest skew), this evidence is unambiguous, so it
// weighs double the accounting alpha. degree in (0,1] scales the hit.
func (v *Verifier) PenalizeMisconduct(idT string, degree float64) {
	rep := v.repEntry(idT)
	if degree > 1 {
		degree = 1
	}
	if degree < 0 {
		degree = 0
	}
	alpha := math.Min(1, v.cfg.Alpha*2)
	rep.Score = rep.Score*(1-alpha) + alpha*(1.0-degree)
	rep.Penalty += degree
}

// PenalizeQoS applies a light reputation penalty for a verified
// quality-of-service violation — the paper's footnote-6 extension of the
// reputation system to QoS enforcement. degree in (0,1] scales the hit;
// QoS misses weigh half as much as accounting fraud.
func (v *Verifier) PenalizeQoS(idT string, degree float64) {
	rep := v.telcoRep[idT]
	if rep == nil {
		rep = &ReputationEntry{Score: 1}
		v.telcoRep[idT] = rep
	}
	if degree > 1 {
		degree = 1
	}
	if degree < 0 {
		degree = 0
	}
	fail := 1.0 - degree
	alpha := v.cfg.Alpha / 2
	rep.Score = rep.Score*(1-alpha) + alpha*fail
}

// TelcoScore returns a bTelco's reputation (1.0 when unknown — "innocent
// until reported").
func (v *Verifier) TelcoScore(idT string) float64 {
	if r, ok := v.telcoRep[idT]; ok {
		return r.Score
	}
	return 1.0
}

// TelcoEntry returns the full reputation entry, or nil.
func (v *Verifier) TelcoEntry(idT string) *ReputationEntry { return v.telcoRep[idT] }

// Suspect reports whether a user is on the tampering suspect list.
func (v *Verifier) Suspect(idU string) bool { return v.suspects[idU] }

// Mismatches returns the retained mismatch incidents, oldest first. Once
// the ring has wrapped, only the newest cfg.MaxMismatches are held (see
// MismatchesDropped for the evicted count).
func (v *Verifier) Mismatches() []Mismatch {
	if v.mmDropped == 0 {
		return v.mismatches
	}
	out := make([]Mismatch, 0, len(v.mismatches))
	out = append(out, v.mismatches[v.mmHead:]...)
	out = append(out, v.mismatches[:v.mmHead]...)
	return out
}

// MismatchesDropped counts mismatch incidents evicted from the bounded
// ring.
func (v *Verifier) MismatchesDropped() uint64 { return v.mmDropped }

// Replays counts replayed/stale reports rejected by the freshness gate.
func (v *Verifier) Replays() int { return v.replays }

// Checked returns the number of aligned pairs evaluated.
func (v *Verifier) Checked() int { return v.checked }

// Settlement is a periodic payout summary for one session: the broker
// compensates the bTelco based on verified usage ("at some later time, T1
// bills B based on the usage reports"). Verified bytes use the UE report
// when the pair mismatched (conservative), the mean otherwise.
type Settlement struct {
	SessionRef    string
	IDT           string
	VerifiedBytes uint64
	Amount        float64
	Disputed      bool
}

// Settle computes the payout for a session from its aligned pairs seen so
// far, at the given price per GB. Reports carry *cumulative* session
// counters, so the newest aligned pair determines the verified total:
// the mean of the two sides when that pair agreed, the UE-attested value
// (conservative) when it mismatched. Disputed is set when any cycle
// mismatched.
func (v *Verifier) Settle(ref string, pairs []AlignedPair, pricePerGB float64) Settlement {
	var last *AlignedPair
	disputed := false
	for i := range pairs {
		if pairs[i].Mismatched {
			disputed = true
		}
		if last == nil || pairs[i].UE.Rel > last.UE.Rel {
			last = &pairs[i]
		}
	}
	s := Settlement{SessionRef: ref, IDT: v.sessionTelco[ref], Disputed: disputed}
	if last == nil {
		return s
	}
	total := last.UE.DLBytes + last.UE.ULBytes
	if !last.Mismatched {
		total = (total + last.Telco.DLBytes + last.Telco.ULBytes) / 2
	}
	s.VerifiedBytes = total
	s.Amount = float64(total) / 1e9 * pricePerGB
	return s
}

// AlignedPair is an evaluated report pair.
type AlignedPair struct {
	UE, Telco  *Report
	Mismatched bool
}

// AlignByTime pairs two report streams by nearest relative timestamp
// within half a reporting cycle — the broker "aligns U's and T's reports"
// by relative timestamp when sequence numbers drift.
func AlignByTime(ue, telco []*Report, cycle time.Duration) []AlignedPair {
	sort.Slice(ue, func(i, j int) bool { return ue[i].Rel < ue[j].Rel })
	sort.Slice(telco, func(i, j int) bool { return telco[i].Rel < telco[j].Rel })
	var out []AlignedPair
	j := 0
	for _, u := range ue {
		for j < len(telco) && telco[j].Rel < u.Rel-cycle/2 {
			j++
		}
		if j < len(telco) && absDur(telco[j].Rel-u.Rel) <= cycle/2 {
			out = append(out, AlignedPair{UE: u, Telco: telco[j]})
			j++
		}
	}
	return out
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Reputations returns a copy of all reputation entries (snapshotting).
func (v *Verifier) Reputations() map[string]ReputationEntry {
	out := make(map[string]ReputationEntry, len(v.telcoRep))
	for id, e := range v.telcoRep {
		out[id] = *e
	}
	return out
}

// Suspects returns the suspect user list (snapshotting).
func (v *Verifier) Suspects() []string {
	out := make([]string, 0, len(v.suspects))
	for id := range v.suspects {
		out = append(out, id)
	}
	return out
}

// RestoreReputation reinstates a reputation entry (snapshot restore).
func (v *Verifier) RestoreReputation(idT string, score float64, reports, mismatches int, penalty float64) {
	v.telcoRep[idT] = &ReputationEntry{Score: score, Reports: reports, Mismatches: mismatches, Penalty: penalty}
}

// RestoreSuspect reinstates a suspect-list entry (snapshot restore).
func (v *Verifier) RestoreSuspect(idU string) { v.suspects[idU] = true }

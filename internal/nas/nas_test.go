package nas

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func testMaster(b byte) MasterKey {
	var m MasterKey
	for i := range m {
		m[i] = b
	}
	return m
}

func TestDeriveHierarchyDeterministic(t *testing.T) {
	a := DeriveHierarchy(testMaster(1), 0)
	b := DeriveHierarchy(testMaster(1), 0)
	if a != b {
		t.Fatal("same master derived different hierarchies")
	}
}

func TestDeriveHierarchyDistinctKeys(t *testing.T) {
	h := DeriveHierarchy(testMaster(2), 0)
	keys := [][]byte{h.KNASEnc[:], h.KNASInt[:], h.KENB[:], h.KRRCEnc[:], h.KRRCInt[:], h.KUPEnc[:]}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(keys[i], keys[j]) {
				t.Fatalf("derived keys %d and %d are equal", i, j)
			}
		}
	}
}

func TestDeriveHierarchyCountBinding(t *testing.T) {
	a := DeriveHierarchy(testMaster(3), 0)
	b := DeriveHierarchy(testMaster(3), 1)
	if a.KENB == b.KENB {
		t.Fatal("K_eNB not bound to NAS count")
	}
	if a.KNASEnc != b.KNASEnc {
		t.Fatal("NAS keys should not depend on count")
	}
}

func TestProtectUnprotectRoundTrip(t *testing.T) {
	ue := NewSecurityContext(testMaster(4))
	net := NewSecurityContext(testMaster(4))
	msg := []byte("attach complete")
	wire := ue.Protect(Uplink, msg)
	got, err := net.Unprotect(Uplink, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}
	// And downlink.
	wire2 := net.Protect(Downlink, []byte("accept"))
	got2, err := ue.Unprotect(Downlink, wire2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "accept" {
		t.Fatalf("downlink mismatch: %q", got2)
	}
}

func TestProtectCiphersPayload(t *testing.T) {
	c := NewSecurityContext(testMaster(5))
	msg := []byte("this is supposed to be confidential information")
	wire := c.Protect(Uplink, msg)
	if bytes.Contains(wire, msg) {
		t.Fatal("payload appears in cleartext on the wire")
	}
}

func TestUnprotectRejectsTamper(t *testing.T) {
	a := NewSecurityContext(testMaster(6))
	b := NewSecurityContext(testMaster(6))
	wire := a.Protect(Uplink, []byte("hello"))
	wire[len(wire)-1] ^= 1
	if _, err := b.Unprotect(Uplink, wire); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered MAC: err=%v, want ErrIntegrity", err)
	}
	wire2 := a.Protect(Uplink, []byte("hello"))
	wire2[6] ^= 1 // ciphertext byte
	if _, err := b.Unprotect(Uplink, wire2); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered ciphertext: err=%v, want ErrIntegrity", err)
	}
}

func TestUnprotectRejectsReplay(t *testing.T) {
	a := NewSecurityContext(testMaster(7))
	b := NewSecurityContext(testMaster(7))
	w1 := a.Protect(Uplink, []byte("one"))
	w2 := a.Protect(Uplink, []byte("two"))
	if _, err := b.Unprotect(Uplink, w1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unprotect(Uplink, w1); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: err=%v, want ErrReplay", err)
	}
	if _, err := b.Unprotect(Uplink, w2); err != nil {
		t.Fatalf("in-order message rejected: %v", err)
	}
}

func TestUnprotectWrongKey(t *testing.T) {
	a := NewSecurityContext(testMaster(8))
	b := NewSecurityContext(testMaster(9))
	wire := a.Protect(Uplink, []byte("x"))
	if _, err := b.Unprotect(Uplink, wire); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("wrong key: err=%v, want ErrIntegrity", err)
	}
}

func TestUnprotectDirectionMismatch(t *testing.T) {
	a := NewSecurityContext(testMaster(10))
	b := NewSecurityContext(testMaster(10))
	wire := a.Protect(Uplink, []byte("x"))
	if _, err := b.Unprotect(Downlink, wire); err == nil {
		t.Fatal("direction mismatch accepted")
	}
}

func TestDirectionsIndependentKeystream(t *testing.T) {
	a := NewSecurityContext(testMaster(11))
	msg := bytes.Repeat([]byte{0}, 64)
	up := a.Protect(Uplink, msg)
	down := a.Protect(Downlink, msg)
	// With zero plaintext, the ciphertext *is* the keystream.
	if bytes.Equal(up[5:len(up)-MACSize], down[5:len(down)-MACSize]) {
		t.Fatal("uplink and downlink share keystream")
	}
}

func TestUnprotectShort(t *testing.T) {
	c := NewSecurityContext(testMaster(12))
	if _, err := c.Unprotect(Uplink, []byte{1, 2, 3}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: err=%v", err)
	}
}

func allMessages() []Message {
	return []Message{
		&AttachRequestLegacy{IMSI: "001010000000001", Capabilities: 7},
		&AuthenticationRequest{RAND: [16]byte{1, 2, 3}, AUTN: []byte{9, 8, 7}},
		&AuthenticationResponse{RES: []byte{4, 5, 6, 7}},
		&SecurityModeCommand{CipherAlg: 2, IntegrityAlg: 2, ReplayedCaps: 7},
		&SecurityModeComplete{},
		&AttachRequestSAP{BrokerID: "broker.example", AuthReqU: []byte("sealed-blob")},
		&AttachResume{BrokerID: "broker.example", ResumeReq: []byte("resume-blob")},
		&AttachAccept{SessionID: 99, IP: "10.1.2.3", BearerID: 5, QCI: 9, DLAmbrBps: 20e6, ULAmbrBps: 5e6, AuthRespU: []byte("resp")},
		&AttachReject{Cause: "authorization denied"},
		&DetachRequest{SessionID: 99},
		&DetachAccept{SessionID: 99},
		&SessionRequest{SessionID: 99, APN: "internet", QCI: 8},
		&SessionAccept{SessionID: 99, BearerID: 6, QCI: 8},
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		wire := Encode(m)
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%T roundtrip mismatch:\n in: %+v\nout: %+v", m, m, got)
		}
	}
}

func TestMessageTypesUnique(t *testing.T) {
	seen := map[byte]string{}
	for _, m := range allMessages() {
		ty := m.Type()
		name := reflect.TypeOf(m).String()
		if prev, dup := seen[ty]; dup {
			t.Fatalf("type byte %d shared by %s and %s", ty, prev, name)
		}
		seen[ty] = name
	}
}

// The resume message was appended after the original set; its type byte
// (and everyone else's) is wire state shared with deployed peers.
func TestMessageTypeBytesStable(t *testing.T) {
	if got := (&AttachRequestSAP{}).Type(); got != 6 {
		t.Fatalf("AttachRequestSAP type byte moved: %d", got)
	}
	if got := (&SessionAccept{}).Type(); got != 12 {
		t.Fatalf("SessionAccept type byte moved: %d", got)
	}
	if got := (&AttachResume{}).Type(); got != 13 {
		t.Fatalf("AttachResume type byte moved: %d", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty decode accepted")
	}
	if _, err := Decode([]byte{0xFF}); !errors.Is(err, ErrUnknownMessage) {
		t.Fatalf("unknown type: err=%v", err)
	}
	// Truncated body.
	wire := Encode(&AttachAccept{SessionID: 1, IP: "10.0.0.1"})
	if _, err := Decode(wire[:len(wire)-3]); err == nil {
		t.Fatal("truncated decode accepted")
	}
	// Trailing garbage.
	if _, err := Decode(append(wire, 0xAB)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: protect/unprotect round-trips arbitrary payloads through a
// pair of synchronized contexts.
func TestPropertyProtectRoundTrip(t *testing.T) {
	a := NewSecurityContext(testMaster(20))
	b := NewSecurityContext(testMaster(20))
	f := func(payload []byte, dirBit bool) bool {
		dir := Uplink
		if dirBit {
			dir = Downlink
		}
		var tx, rx *SecurityContext
		if dir == Uplink {
			tx, rx = a, b
		} else {
			tx, rx = b, a
		}
		// Symmetric contexts: our "b" context plays the network, which
		// sends downlink and receives uplink.
		wire := tx.Protect(dir, payload)
		got, err := rx.Unprotect(dir, wire)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round-trips arbitrary SAP attach payloads.
func TestPropertySAPAttachCodec(t *testing.T) {
	f := func(broker string, blob []byte) bool {
		m := &AttachRequestSAP{BrokerID: broker, AuthReqU: blob}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.(*AttachRequestSAP)
		return g.BrokerID == broker && bytes.Equal(g.AuthReqU, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package nas implements the Non-Access-Stratum security machinery that
// CellBricks reuses unmodified from the EPS standard (§4.1): a
// KASME-rooted key hierarchy, the security-mode-control (SMC) context with
// NAS uplink/downlink counters, and integrity-protected + ciphered NAS
// message framing.
//
// In EPS the master key KASME comes out of the AKA procedure; in
// CellBricks the broker-issued shared secret ss plays exactly the same
// role — "the shared secret ss is used as the master key (also known as
// KASME) in the security mode control procedures to derive keys for
// ciphering and integrity protection".
//
// Algorithms are stdlib stand-ins for the 3GPP EEA/EIA suites:
// AES-128-CTR for ciphering (EEA2 is AES-CTR in the standard, too) and
// HMAC-SHA256/4-byte MAC for integrity.
package nas

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// KeySize is the size of every derived key in bytes.
const KeySize = 16

// MasterKeySize is the size of KASME.
const MasterKeySize = 32

// Key identifies one derived key in the hierarchy.
type Key [KeySize]byte

// MasterKey is KASME (or the SAP shared secret ss).
type MasterKey [MasterKeySize]byte

// Hierarchy holds the keys derived from KASME per the EPS key hierarchy:
// NAS encryption and integrity keys for UE<->core signalling, and K_eNB
// from which the AS (radio) keys derive.
type Hierarchy struct {
	KNASEnc Key
	KNASInt Key
	KENB    Key
	KRRCEnc Key
	KRRCInt Key
	KUPEnc  Key
}

// kdf is the 3GPP-style KDF: HMAC-SHA256(key, FC || P0 || L0 ...),
// simplified to a labelled derivation.
func kdf(key []byte, label string, ctx []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte{0x15}) // FC byte, arbitrary but fixed
	mac.Write([]byte(label))
	mac.Write([]byte{0x00})
	mac.Write(ctx)
	return mac.Sum(nil)
}

func truncKey(b []byte) (k Key) {
	copy(k[:], b[:KeySize])
	return k
}

// DeriveHierarchy derives the full key hierarchy from the master key. The
// ulCount parameter binds K_eNB to the NAS uplink count at derivation time
// as the standard does, preventing key-stream reuse across re-attachments
// with the same master key.
func DeriveHierarchy(master MasterKey, ulCount uint32) Hierarchy {
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], ulCount)
	kenb := kdf(master[:], "KeNB", cnt[:])
	return Hierarchy{
		KNASEnc: truncKey(kdf(master[:], "KNASenc", nil)),
		KNASInt: truncKey(kdf(master[:], "KNASint", nil)),
		KENB:    truncKey(kenb),
		KRRCEnc: truncKey(kdf(kenb, "KRRCenc", nil)),
		KRRCInt: truncKey(kdf(kenb, "KRRCint", nil)),
		KUPEnc:  truncKey(kdf(kenb, "KUPenc", nil)),
	}
}

package nas

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message type identifiers. The legacy set mirrors the EPS attach call
// flow; the SAP set carries the CellBricks secure attachment protocol as
// new NAS messages, exactly how the prototype extends Magma's AGW and
// srsUE ("we define new NAS messages and handlers").
const (
	MsgAttachRequestLegacy byte = iota + 1
	MsgAuthenticationRequest
	MsgAuthenticationResponse
	MsgSecurityModeCommand
	MsgSecurityModeComplete
	MsgAttachRequestSAP
	MsgAttachAccept
	MsgAttachReject
	MsgDetachRequest
	MsgDetachAccept
	MsgSessionRequest
	MsgSessionAccept
	// MsgAttachResume is appended after the original set so every
	// pre-existing type byte keeps its value on the wire.
	MsgAttachResume
)

// Message is a decodable NAS message.
type Message interface {
	Type() byte
	appendBody([]byte) []byte
	unmarshalBody([]byte) error
}

// ErrUnknownMessage is returned by Decode for unrecognized type bytes.
var ErrUnknownMessage = errors.New("nas: unknown message type")

// Encode serializes a NAS message with its type byte.
func Encode(m Message) []byte {
	return AppendEncode(nil, m)
}

// AppendEncode serializes m (type byte + body) onto dst and returns the
// extended slice — the allocation-free path for callers that reuse a
// scratch buffer.
func AppendEncode(dst []byte, m Message) []byte {
	dst = append(dst, m.Type())
	return m.appendBody(dst)
}

// Decode parses a NAS message.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTooShort
	}
	var m Message
	switch b[0] {
	case MsgAttachRequestLegacy:
		m = &AttachRequestLegacy{}
	case MsgAuthenticationRequest:
		m = &AuthenticationRequest{}
	case MsgAuthenticationResponse:
		m = &AuthenticationResponse{}
	case MsgSecurityModeCommand:
		m = &SecurityModeCommand{}
	case MsgSecurityModeComplete:
		m = &SecurityModeComplete{}
	case MsgAttachRequestSAP:
		m = &AttachRequestSAP{}
	case MsgAttachAccept:
		m = &AttachAccept{}
	case MsgAttachReject:
		m = &AttachReject{}
	case MsgDetachRequest:
		m = &DetachRequest{}
	case MsgDetachAccept:
		m = &DetachAccept{}
	case MsgSessionRequest:
		m = &SessionRequest{}
	case MsgSessionAccept:
		m = &SessionAccept{}
	case MsgAttachResume:
		m = &AttachResume{}
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownMessage, b[0])
	}
	if err := m.unmarshalBody(b[1:]); err != nil {
		return nil, err
	}
	return m, nil
}

// --- field codec helpers ---

type writer struct{ b []byte }

func (w *writer) bytes(v []byte) {
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) { w.bytes([]byte(v)) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) byte1(v byte) { w.b = append(w.b, v) }

type reader struct {
	b   []byte
	err error
}

func (r *reader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < 4 {
		r.err = ErrTooShort
		return nil
	}
	n := binary.BigEndian.Uint32(r.b)
	if uint64(len(r.b)-4) < uint64(n) {
		r.err = ErrTooShort
		return nil
	}
	v := r.b[4 : 4+n]
	r.b = r.b[4+n:]
	return v
}
func (r *reader) str() string { return string(r.bytes()) }
func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = ErrTooShort
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = ErrTooShort
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}
func (r *reader) byte1() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = ErrTooShort
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("nas: %d trailing bytes", len(r.b))
	}
	return nil
}

// --- legacy attach (EPS-AKA baseline) ---

// AttachRequestLegacy opens the baseline attach: the UE identifies itself
// by IMSI (in the clear, as in EPS — the IMSI-catcher exposure CellBricks
// closes).
type AttachRequestLegacy struct {
	IMSI         string
	Capabilities uint32
}

func (*AttachRequestLegacy) Type() byte { return MsgAttachRequestLegacy }
func (m *AttachRequestLegacy) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.str(m.IMSI)
	w.u32(m.Capabilities)
	return w.b
}
func (m *AttachRequestLegacy) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.IMSI = r.str()
	m.Capabilities = r.u32()
	return r.done()
}

// AuthenticationRequest carries the AKA challenge (RAND, AUTN).
type AuthenticationRequest struct {
	RAND [16]byte
	AUTN []byte
}

func (*AuthenticationRequest) Type() byte { return MsgAuthenticationRequest }
func (m *AuthenticationRequest) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.bytes(m.RAND[:])
	w.bytes(m.AUTN)
	return w.b
}
func (m *AuthenticationRequest) unmarshalBody(b []byte) error {
	r := reader{b: b}
	rnd := r.bytes()
	m.AUTN = append([]byte(nil), r.bytes()...)
	if err := r.done(); err != nil {
		return err
	}
	if len(rnd) != 16 {
		return fmt.Errorf("nas: RAND length %d", len(rnd))
	}
	copy(m.RAND[:], rnd)
	return nil
}

// AuthenticationResponse carries RES.
type AuthenticationResponse struct{ RES []byte }

func (*AuthenticationResponse) Type() byte { return MsgAuthenticationResponse }
func (m *AuthenticationResponse) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.bytes(m.RES)
	return w.b
}
func (m *AuthenticationResponse) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.RES = append([]byte(nil), r.bytes()...)
	return r.done()
}

// SecurityModeCommand selects algorithms and replays the UE capabilities
// (bidding-down protection).
type SecurityModeCommand struct {
	CipherAlg    byte
	IntegrityAlg byte
	ReplayedCaps uint32
}

func (*SecurityModeCommand) Type() byte { return MsgSecurityModeCommand }
func (m *SecurityModeCommand) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.byte1(m.CipherAlg)
	w.byte1(m.IntegrityAlg)
	w.u32(m.ReplayedCaps)
	return w.b
}
func (m *SecurityModeCommand) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.CipherAlg = r.byte1()
	m.IntegrityAlg = r.byte1()
	m.ReplayedCaps = r.u32()
	return r.done()
}

// SecurityModeComplete acknowledges SMC under the new context.
type SecurityModeComplete struct{}

func (*SecurityModeComplete) Type() byte                 { return MsgSecurityModeComplete }
func (*SecurityModeComplete) appendBody(b []byte) []byte { return b }
func (*SecurityModeComplete) unmarshalBody(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("nas: %d trailing bytes", len(b))
	}
	return nil
}

// --- CellBricks SAP attach ---

// AttachRequestSAP carries the UE's sealed+signed SAP authentication
// request (an opaque sap.AuthReqU blob) plus the broker identifier the
// bTelco needs for routing. The bTelco never sees a cleartext UE
// identifier.
type AttachRequestSAP struct {
	BrokerID string
	AuthReqU []byte
}

func (*AttachRequestSAP) Type() byte { return MsgAttachRequestSAP }
func (m *AttachRequestSAP) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.str(m.BrokerID)
	w.bytes(m.AuthReqU)
	return w.b
}
func (m *AttachRequestSAP) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.BrokerID = r.str()
	m.AuthReqU = append([]byte(nil), r.bytes()...)
	return r.done()
}

// AttachResume carries the UE's session-resumption fast-path request (an
// opaque sap.ResumeReq blob — uref, nonce, and HMACs, no asymmetric
// crypto) plus the broker identifier for routing, mirroring
// AttachRequestSAP. The serving bTelco co-signs the blob before
// forwarding; a broker that refuses resumption answers with the same
// typed retry-after AttachReject hint as any other shed attach.
type AttachResume struct {
	BrokerID  string
	ResumeReq []byte
}

func (*AttachResume) Type() byte { return MsgAttachResume }
func (m *AttachResume) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.str(m.BrokerID)
	w.bytes(m.ResumeReq)
	return w.b
}
func (m *AttachResume) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.BrokerID = r.str()
	m.ResumeReq = append([]byte(nil), r.bytes()...)
	return r.done()
}

// AttachAccept completes either attach flow. For SAP it carries the
// broker's sealed authRespU so the UE can authenticate the broker and
// extract ss; for the legacy flow AuthRespU is empty.
type AttachAccept struct {
	SessionID uint64
	IP        string
	BearerID  uint32
	QCI       byte
	DLAmbrBps uint64
	ULAmbrBps uint64
	AuthRespU []byte
}

func (*AttachAccept) Type() byte { return MsgAttachAccept }
func (m *AttachAccept) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.u64(m.SessionID)
	w.str(m.IP)
	w.u32(m.BearerID)
	w.byte1(m.QCI)
	w.u64(m.DLAmbrBps)
	w.u64(m.ULAmbrBps)
	w.bytes(m.AuthRespU)
	return w.b
}
func (m *AttachAccept) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.SessionID = r.u64()
	m.IP = r.str()
	m.BearerID = r.u32()
	m.QCI = r.byte1()
	m.DLAmbrBps = r.u64()
	m.ULAmbrBps = r.u64()
	m.AuthRespU = append([]byte(nil), r.bytes()...)
	return r.done()
}

// AttachReject reports a failed attach with a cause string. RetryAfterMS,
// when non-zero, carries a degraded broker's load-shedding hint through
// the NAS layer: the UE should back off at least that long before
// retrying (the attach path's typed retry-after signal).
type AttachReject struct {
	Cause        string
	RetryAfterMS uint32
}

func (*AttachReject) Type() byte { return MsgAttachReject }
func (m *AttachReject) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.str(m.Cause)
	w.u32(m.RetryAfterMS)
	return w.b
}
func (m *AttachReject) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.Cause = r.str()
	m.RetryAfterMS = r.u32()
	return r.done()
}

// DetachRequest tears down the attachment (host-driven in CellBricks).
type DetachRequest struct{ SessionID uint64 }

func (*DetachRequest) Type() byte { return MsgDetachRequest }
func (m *DetachRequest) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.u64(m.SessionID)
	return w.b
}
func (m *DetachRequest) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.SessionID = r.u64()
	return r.done()
}

// DetachAccept acknowledges a detach.
type DetachAccept struct{ SessionID uint64 }

func (*DetachAccept) Type() byte { return MsgDetachAccept }
func (m *DetachAccept) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.u64(m.SessionID)
	return w.b
}
func (m *DetachAccept) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.SessionID = r.u64()
	return r.done()
}

// SessionRequest asks for an additional PDN session/bearer.
type SessionRequest struct {
	SessionID uint64
	APN       string
	QCI       byte
}

func (*SessionRequest) Type() byte { return MsgSessionRequest }
func (m *SessionRequest) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.u64(m.SessionID)
	w.str(m.APN)
	w.byte1(m.QCI)
	return w.b
}
func (m *SessionRequest) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.SessionID = r.u64()
	m.APN = r.str()
	m.QCI = r.byte1()
	return r.done()
}

// SessionAccept grants the additional bearer.
type SessionAccept struct {
	SessionID uint64
	BearerID  uint32
	QCI       byte
}

func (*SessionAccept) Type() byte { return MsgSessionAccept }
func (m *SessionAccept) appendBody(b []byte) []byte {
	w := writer{b: b}
	w.u64(m.SessionID)
	w.u32(m.BearerID)
	w.byte1(m.QCI)
	return w.b
}
func (m *SessionAccept) unmarshalBody(b []byte) error {
	r := reader{b: b}
	m.SessionID = r.u64()
	m.BearerID = r.u32()
	m.QCI = r.byte1()
	return r.done()
}

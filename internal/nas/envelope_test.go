package nas

import (
	"bytes"
	"testing"

	"cellbricks/internal/obs"
)

func TestEnvelopeHeaderRoundTrip(t *testing.T) {
	sc := obs.SpanContext{Trace: 11, Span: 22, Parent: 33}
	body := []byte("nas-body")
	for _, protected := range []bool{false, true} {
		env := AppendEnvelopeHeader(nil, protected, sc)
		env = append(env, body...)
		gotProt, gotSC, gotBody, err := SplitEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		if gotProt != protected || gotSC != sc || !bytes.Equal(gotBody, body) {
			t.Fatalf("round trip protected=%v: got (%v, %+v, %q)", protected, gotProt, gotSC, gotBody)
		}
	}
}

// TestLegacyEnvelopesDecodeUnchanged: flag bytes 0x00/0x01 with no context
// — the pre-tracing format — must split exactly as before.
func TestLegacyEnvelopesDecodeUnchanged(t *testing.T) {
	for _, tc := range []struct {
		flag      byte
		protected bool
	}{{0x00, false}, {0x01, true}} {
		env := append([]byte{tc.flag}, "legacy"...)
		prot, sc, body, err := SplitEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		if prot != tc.protected || sc.Valid() || string(body) != "legacy" {
			t.Fatalf("flag %#x: got (%v, %+v, %q)", tc.flag, prot, sc, body)
		}
	}
	// A zero context appends the legacy single-byte header.
	env := AppendEnvelopeHeader(nil, true, obs.SpanContext{})
	if len(env) != 1 || env[0] != EnvelopeFlagProtected {
		t.Fatalf("zero-ctx header = %x, want 01", env)
	}
}

func TestEnvelopeTruncation(t *testing.T) {
	if _, _, _, err := SplitEnvelope(nil); err == nil {
		t.Fatalf("empty envelope must not split")
	}
	// Traced flag but not enough bytes for the context.
	short := []byte{EnvelopeFlagTraced, 1, 2, 3}
	if _, _, _, err := SplitEnvelope(short); err == nil {
		t.Fatalf("truncated traced envelope must not split")
	}
}

package nas

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Direction of a protected message, mixed into both the cipher stream and
// the MAC so uplink and downlink never share key-stream.
type Direction byte

const (
	Uplink   Direction = 0
	Downlink Direction = 1
)

// MACSize is the truncated integrity tag size (3GPP NAS uses 32-bit MACs).
const MACSize = 4

// Errors from the security context.
var (
	ErrIntegrity = errors.New("nas: integrity check failed")
	ErrReplay    = errors.New("nas: replayed or stale NAS count")
	ErrTooShort  = errors.New("nas: protected message too short")
)

// SecurityContext is the per-attachment NAS security state established by
// the security-mode-control procedure: the derived hierarchy plus
// independent uplink/downlink counters. One side's Uplink counter is the
// peer's expected receive counter.
type SecurityContext struct {
	Keys    Hierarchy
	ulCount uint32 // next count for messages we send uplink
	dlCount uint32 // next count for messages we send downlink

	// Expected receive counters (anti-replay): the lowest acceptable
	// count from the peer in each direction.
	rxUL uint32
	rxDL uint32
}

// NewSecurityContext runs the key-derivation half of SMC over the master
// key (KASME / SAP ss).
func NewSecurityContext(master MasterKey) *SecurityContext {
	return &SecurityContext{Keys: DeriveHierarchy(master, 0)}
}

// ULCount exposes the next uplink count (for K_eNB rebinding on
// re-attachment).
func (c *SecurityContext) ULCount() uint32 { return c.ulCount }

// Protect ciphers and integrity-protects a NAS payload for the given
// direction, consuming one counter value. Wire layout:
// count(4) || dir(1) || ciphertext || mac(4).
func (c *SecurityContext) Protect(dir Direction, payload []byte) []byte {
	var count uint32
	switch dir {
	case Uplink:
		count = c.ulCount
		c.ulCount++
	default:
		count = c.dlCount
		c.dlCount++
	}
	ct := c.crypt(dir, count, payload)
	out := make([]byte, 0, 5+len(ct)+MACSize)
	out = binary.BigEndian.AppendUint32(out, count)
	out = append(out, byte(dir))
	out = append(out, ct...)
	return append(out, c.mac(dir, count, ct)...)
}

// Unprotect verifies and deciphers a protected NAS message, enforcing
// monotonically increasing counts per direction.
func (c *SecurityContext) Unprotect(dir Direction, msg []byte) ([]byte, error) {
	if len(msg) < 5+MACSize {
		return nil, ErrTooShort
	}
	count := binary.BigEndian.Uint32(msg)
	gotDir := Direction(msg[4])
	if gotDir != dir {
		return nil, fmt.Errorf("nas: direction mismatch: got %d want %d", gotDir, dir)
	}
	ct := msg[5 : len(msg)-MACSize]
	tag := msg[len(msg)-MACSize:]
	if !hmac.Equal(tag, c.mac(dir, count, ct)) {
		return nil, ErrIntegrity
	}
	var expected *uint32
	if dir == Uplink {
		expected = &c.rxUL
	} else {
		expected = &c.rxDL
	}
	if count < *expected {
		return nil, ErrReplay
	}
	*expected = count + 1
	return c.crypt(dir, count, ct), nil
}

// crypt applies AES-128-CTR with an IV derived from (count, direction),
// mirroring the EEA2 construction.
func (c *SecurityContext) crypt(dir Direction, count uint32, in []byte) []byte {
	block, err := aes.NewCipher(c.Keys.KNASEnc[:])
	if err != nil {
		panic("nas: bad key size: " + err.Error()) // impossible: fixed-size key
	}
	var iv [16]byte
	binary.BigEndian.PutUint32(iv[:4], count)
	iv[4] = byte(dir)
	out := make([]byte, len(in))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, in)
	return out
}

func (c *SecurityContext) mac(dir Direction, count uint32, ct []byte) []byte {
	mac := hmac.New(sha256.New, c.Keys.KNASInt[:])
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], count)
	hdr[4] = byte(dir)
	mac.Write(hdr[:])
	mac.Write(ct)
	return mac.Sum(nil)[:MACSize]
}

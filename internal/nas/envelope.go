// NAS envelope framing. An envelope is the byte string a UE hands to its
// serving RAN/AGW transport:
//
//	flag byte || [span context] || body
//
// The flag's low bit says whether the body is an integrity-protected +
// ciphered NAS message (EnvelopeFlagProtected) or a plain encoded one; the
// high bit (EnvelopeFlagTraced) says a 24-byte obs.SpanContext sits between
// the flag and the body, carrying the causal trace identity end-to-end
// through the attach path. Legacy envelopes (flag 0x00/0x01) decode
// unchanged; the context rides outside the protected payload, so security
// processing is byte-identical with tracing on or off.
package nas

import (
	"errors"

	"cellbricks/internal/obs"
)

const (
	// EnvelopeFlagProtected marks the body as a protected NAS message.
	EnvelopeFlagProtected byte = 0x01
	// EnvelopeFlagTraced marks a 24-byte span context after the flag byte.
	EnvelopeFlagTraced byte = 0x80
)

// ErrEnvelopeTooShort reports an envelope shorter than its header claims.
var ErrEnvelopeTooShort = errors.New("nas: envelope too short")

// AppendEnvelopeHeader appends the flag byte (and span context, when sc is
// valid) to dst, returning the extended slice ready for the body bytes.
func AppendEnvelopeHeader(dst []byte, protected bool, sc obs.SpanContext) []byte {
	var flag byte
	if protected {
		flag |= EnvelopeFlagProtected
	}
	if sc.Valid() {
		flag |= EnvelopeFlagTraced
		dst = append(dst, flag)
		return obs.AppendSpanContext(dst, sc)
	}
	return append(dst, flag)
}

// SplitEnvelope parses an envelope's header, returning the protected flag,
// the span context (zero when absent), and the body.
func SplitEnvelope(envelope []byte) (protected bool, sc obs.SpanContext, body []byte, err error) {
	if len(envelope) < 1 {
		return false, obs.SpanContext{}, nil, ErrEnvelopeTooShort
	}
	flag := envelope[0]
	body = envelope[1:]
	if flag&EnvelopeFlagTraced != 0 {
		sc, err = obs.DecodeSpanContext(body)
		if err != nil {
			return false, obs.SpanContext{}, nil, ErrEnvelopeTooShort
		}
		body = body[obs.SpanContextLen:]
	}
	return flag&EnvelopeFlagProtected != 0, sc, body, nil
}

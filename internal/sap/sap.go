// Package sap implements the Secure Attachment Protocol — the core
// contribution of the CellBricks paper (§4.1, Figs. 2–3). SAP lets a UE
// obtain cellular service from a bTelco neither it nor its broker has any
// pre-established relationship with:
//
//   - The UE seals an authentication vector (idU, idB, idT, nonce) to its
//     broker's public key and signs it, so the bTelco learns nothing about
//     the user's identity (no IMSI catching) and cannot forge requests.
//   - The bTelco augments the request with its certificate, its QoS
//     capability (qosCap) and service terms, signs it, and forwards it to
//     the broker — a single round trip, versus two in the EPS baseline.
//   - The broker authenticates both the UE (its own issued key) and the
//     bTelco (CA certificate), decides authorization, and returns two
//     sealed+signed responses: authRespT (the bTelco's irrefutable proof
//     of authorization, carrying the shared secret ss and the QoS values
//     to enforce) and authRespU (the UE's proof that its broker approved,
//     echoing the nonce and carrying the same ss).
//
// ss then seeds the standard NAS security context on both sides, exactly
// where KASME sits in EPS (see package nas).
package sap

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"

	"cellbricks/internal/codec"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
)

// NonceSize matches pki.NewNonce.
const NonceSize = 16

// Errors surfaced by protocol processing.
var (
	ErrBadRequest    = errors.New("sap: malformed request")
	ErrUnknownUser   = errors.New("sap: unknown UE identifier")
	ErrUnknownBroker = errors.New("sap: request addressed to a different broker")
	ErrReplay        = errors.New("sap: replayed nonce")
	ErrTelcoIdentity = errors.New("sap: bTelco identity mismatch")
	ErrDenied        = errors.New("sap: authorization denied")
	ErrNonceMismatch = errors.New("sap: response nonce does not match request")
	ErrWrongTelco    = errors.New("sap: response names a different bTelco")
)

// AuthVec is the vector the UE seals to the broker: "the identifiers of
// the T, B, and U itself; plus a nonce" (Fig. 2 step 1).
type AuthVec struct {
	IDU   string
	IDB   string
	IDT   string
	Nonce [NonceSize]byte
}

func (v *AuthVec) marshal() []byte {
	w := codec.NewWriter(64)
	w.String(v.IDU)
	w.String(v.IDB)
	w.String(v.IDT)
	w.Bytes(v.Nonce[:])
	return w.Out()
}

func (v *AuthVec) unmarshal(b []byte) error {
	r := codec.NewReader(b)
	v.IDU = r.String()
	v.IDB = r.String()
	v.IDT = r.String()
	n := r.Bytes()
	if err := r.Done(); err != nil {
		return err
	}
	if len(n) != NonceSize {
		return fmt.Errorf("%w: nonce length %d", ErrBadRequest, len(n))
	}
	copy(v.Nonce[:], n)
	return nil
}

// AuthReqU is the UE's attach request: authReqU = (sig_authvec, authVec*,
// idB) (Fig. 2 step 4). SealedVec is authVec encrypted to pkB; Sig is the
// UE's signature over SealedVec.
type AuthReqU struct {
	IDB       string
	SealedVec []byte
	Sig       []byte
}

// Marshal encodes the request for transport inside a NAS message.
func (m *AuthReqU) Marshal() []byte {
	w := codec.NewWriter(256)
	w.String(m.IDB)
	w.Bytes(m.SealedVec)
	w.Bytes(m.Sig)
	return w.Out()
}

// UnmarshalAuthReqU decodes an AuthReqU.
func UnmarshalAuthReqU(b []byte) (*AuthReqU, error) {
	r := codec.NewReader(b)
	m := &AuthReqU{}
	m.IDB = r.String()
	m.SealedVec = r.BytesCopy()
	m.Sig = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ServiceTerms are the commercial/service parameters the bTelco attaches
// to the forwarded request: its QoS capability, whether it implements
// lawful intercept, and its advertised price (the paper leaves pricing
// open to innovation; we carry an opaque per-GB price for policy use).
type ServiceTerms struct {
	Cap             qos.Capability
	LawfulIntercept bool
	PricePerGB      float64 // in arbitrary currency units
}

func marshalTerms(w *codec.Writer, t ServiceTerms) {
	w.Uint32(uint32(len(t.Cap.QCIs)))
	for _, q := range t.Cap.QCIs {
		w.Byte(byte(q))
	}
	w.Uint64(t.Cap.MaxDLAmbrBps)
	w.Uint64(t.Cap.MaxULAmbrBps)
	w.Bool(t.Cap.GBRSupported)
	w.Bool(t.LawfulIntercept)
	w.Float64(t.PricePerGB)
}

func unmarshalTerms(r *codec.Reader) ServiceTerms {
	var t ServiceTerms
	n := r.Uint32()
	if n > 64 {
		// Latch an error by over-reading; a capability never has >64 QCIs.
		n = 64
	}
	for i := uint32(0); i < n; i++ {
		t.Cap.QCIs = append(t.Cap.QCIs, qos.QCI(r.Byte()))
	}
	t.Cap.MaxDLAmbrBps = r.Uint64()
	t.Cap.MaxULAmbrBps = r.Uint64()
	t.Cap.GBRSupported = r.Bool()
	t.LawfulIntercept = r.Bool()
	t.PricePerGB = r.Float64()
	return t
}

// AuthReqT is the bTelco's augmented, signed forward of the UE request to
// the broker (Fig. 3 top): authReqT = sign_T(authReqU || idT || terms),
// accompanied by the bTelco's CA certificate.
type AuthReqT struct {
	ReqU  AuthReqU
	IDT   string
	Cert  *pki.Certificate
	Terms ServiceTerms
	Sig   []byte // bTelco signature over signedBytes
}

func (m *AuthReqT) signedBytes() []byte {
	w := codec.NewWriter(512)
	w.Bytes(m.ReqU.Marshal())
	w.String(m.IDT)
	marshalTerms(w, m.Terms)
	return w.Out()
}

// Marshal encodes the full request for the wire.
func (m *AuthReqT) Marshal() []byte {
	w := codec.NewWriter(1024)
	w.Bytes(m.signedBytes())
	w.Bytes(marshalCert(m.Cert))
	w.Bytes(m.Sig)
	return w.Out()
}

// UnmarshalAuthReqT decodes an AuthReqT.
func UnmarshalAuthReqT(b []byte) (*AuthReqT, error) {
	r := codec.NewReader(b)
	signed := r.BytesCopy()
	certB := r.BytesCopy()
	sig := r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	m := &AuthReqT{Sig: sig}
	sr := codec.NewReader(signed)
	reqUB := sr.BytesCopy()
	m.IDT = sr.String()
	m.Terms = unmarshalTerms(sr)
	if err := sr.Done(); err != nil {
		return nil, err
	}
	reqU, err := UnmarshalAuthReqU(reqUB)
	if err != nil {
		return nil, err
	}
	m.ReqU = *reqU
	cert, err := unmarshalCert(certB)
	if err != nil {
		return nil, err
	}
	m.Cert = cert
	return m, nil
}

func marshalCert(c *pki.Certificate) []byte {
	if c == nil {
		return nil
	}
	w := codec.NewWriter(256)
	w.String(c.Subject)
	w.String(c.Role)
	w.Bytes(c.Identity.Bytes())
	w.Uint64(uint64(c.NotBefore.Unix()))
	w.Uint64(uint64(c.NotAfter.Unix()))
	w.Bytes(c.Signature)
	return w.Out()
}

func unmarshalCert(b []byte) (*pki.Certificate, error) {
	if len(b) == 0 {
		return nil, nil
	}
	r := codec.NewReader(b)
	c := &pki.Certificate{}
	c.Subject = r.String()
	c.Role = r.String()
	idB := r.Bytes()
	nb := r.Uint64()
	na := r.Uint64()
	c.Signature = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	id, err := pki.ParsePublicIdentity(idB)
	if err != nil {
		return nil, err
	}
	c.Identity = id
	c.NotBefore = time.Unix(int64(nb), 0)
	c.NotAfter = time.Unix(int64(na), 0)
	return c, nil
}

// innerRespT is the broker->bTelco grant payload, sealed to the bTelco:
// "identifiers of U and T, a shared secret ss, and QoS parameters".
// The UE identifier is an opaque per-session reference (URef), not the
// real idU — the bTelco still never learns the user's identity.
type innerRespT struct {
	URef   string
	IDT    string
	SS     nas.MasterKey
	Params qos.Params
	LI     bool
}

func (v *innerRespT) marshal() []byte {
	w := codec.NewWriter(128)
	w.String(v.URef)
	w.String(v.IDT)
	w.Bytes(v.SS[:])
	w.Byte(byte(v.Params.QCI))
	w.Uint64(v.Params.DLAmbrBps)
	w.Uint64(v.Params.ULAmbrBps)
	w.Bool(v.LI)
	return w.Out()
}

func (v *innerRespT) unmarshal(b []byte) error {
	r := codec.NewReader(b)
	v.URef = r.String()
	v.IDT = r.String()
	ss := r.Bytes()
	v.Params.QCI = qos.QCI(r.Byte())
	v.Params.DLAmbrBps = r.Uint64()
	v.Params.ULAmbrBps = r.Uint64()
	v.LI = r.Bool()
	if err := r.Done(); err != nil {
		return err
	}
	if len(ss) != len(v.SS) {
		return fmt.Errorf("%w: ss length %d", ErrBadRequest, len(ss))
	}
	copy(v.SS[:], ss)
	return nil
}

// innerRespU is the broker->UE payload, sealed to the UE: "identifiers of
// U and T, ss, and the U-generated nonce".
type innerRespU struct {
	IDU   string
	IDT   string
	URef  string // session reference for the UE's billing reports
	SS    nas.MasterKey
	Nonce [NonceSize]byte
}

func (v *innerRespU) marshal() []byte {
	w := codec.NewWriter(128)
	w.String(v.IDU)
	w.String(v.IDT)
	w.String(v.URef)
	w.Bytes(v.SS[:])
	w.Bytes(v.Nonce[:])
	return w.Out()
}

func (v *innerRespU) unmarshal(b []byte) error {
	r := codec.NewReader(b)
	v.IDU = r.String()
	v.IDT = r.String()
	v.URef = r.String()
	ss := r.Bytes()
	nonce := r.Bytes()
	if err := r.Done(); err != nil {
		return err
	}
	if len(ss) != len(v.SS) || len(nonce) != NonceSize {
		return ErrBadRequest
	}
	copy(v.SS[:], ss)
	copy(v.Nonce[:], nonce)
	return nil
}

// AuthRespT is the sealed+signed grant for the bTelco.
type AuthRespT struct {
	Sealed []byte
	Sig    []byte
}

// AuthRespU is the sealed+signed confirmation for the UE.
type AuthRespU struct {
	Sealed []byte
	Sig    []byte
}

// Marshal encodes an AuthRespU for transport inside AttachAccept.
func (m *AuthRespU) Marshal() []byte {
	w := codec.NewWriter(256)
	w.Bytes(m.Sealed)
	w.Bytes(m.Sig)
	return w.Out()
}

// UnmarshalAuthRespU decodes an AuthRespU.
func UnmarshalAuthRespU(b []byte) (*AuthRespU, error) {
	r := codec.NewReader(b)
	m := &AuthRespU{}
	m.Sealed = r.BytesCopy()
	m.Sig = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// AuthResp is the broker's reply to the bTelco: grant (both sub-responses)
// or denial with a cause. TelcoScore piggybacks the broker's current
// reputation for the requesting bTelco on every reply — the score
// propagation that lets bTelcos price honestly-earned standing into their
// offers and lets the serving infrastructure steer UEs away from
// low-reputation operators without a separate lookup.
type AuthResp struct {
	Granted    bool
	Cause      string
	TelcoScore float64
	T          AuthRespT
	U          AuthRespU
}

// Marshal encodes the broker reply for the wire.
func (m *AuthResp) Marshal() []byte {
	w := codec.NewWriter(512)
	w.Bool(m.Granted)
	w.String(m.Cause)
	w.Float64(m.TelcoScore)
	w.Bytes(m.T.Sealed)
	w.Bytes(m.T.Sig)
	w.Bytes(m.U.Sealed)
	w.Bytes(m.U.Sig)
	return w.Out()
}

// UnmarshalAuthResp decodes a broker reply.
func UnmarshalAuthResp(b []byte) (*AuthResp, error) {
	r := codec.NewReader(b)
	m := &AuthResp{}
	m.Granted = r.Bool()
	m.Cause = r.String()
	m.TelcoScore = r.Float64()
	m.T.Sealed = r.BytesCopy()
	m.T.Sig = r.BytesCopy()
	m.U.Sealed = r.BytesCopy()
	m.U.Sig = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMasterSecret draws the 32-byte shared secret ss.
func NewMasterSecret() (nas.MasterKey, error) {
	var ss nas.MasterKey
	_, err := io.ReadFull(rand.Reader, ss[:])
	return ss, err
}

package sap

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
)

// UEState holds the small static parameter set SAP requires at the UE:
// "U's key pairs and B's public key. This state can be embedded in the
// U's SIM card."
type UEState struct {
	IDU       string // broker-assigned identifier (digest of pkU by default)
	IDB       string
	Key       *pki.KeyPair
	BrokerPub pki.PublicIdentity
}

// PendingAttach is the UE-side state for one in-flight attach.
type PendingAttach struct {
	IDT   string
	Nonce [NonceSize]byte
}

// NewAttachRequest runs UE procedures 1–4 of Fig. 2 for bTelco idT.
func (u *UEState) NewAttachRequest(idT string) (*AuthReqU, *PendingAttach, error) {
	nonce, err := pki.NewNonce()
	if err != nil {
		return nil, nil, err
	}
	vec := AuthVec{IDU: u.IDU, IDB: u.IDB, IDT: idT, Nonce: nonce}
	sealed, err := pki.Seal(u.BrokerPub, vec.marshal())
	if err != nil {
		return nil, nil, fmt.Errorf("sap: seal authVec: %w", err)
	}
	req := &AuthReqU{
		IDB:       u.IDB,
		SealedVec: sealed,
		Sig:       u.Key.Sign(sealed),
	}
	return req, &PendingAttach{IDT: idT, Nonce: nonce}, nil
}

// HandleResponse runs UE procedures 5–6 of Fig. 2: verify the broker's
// signature on authRespU, decrypt it, check the echoed nonce and bTelco
// identity, and return ss for NAS security-context setup along with the
// broker-assigned session reference the UE labels its billing reports
// with.
func (u *UEState) HandleResponse(p *PendingAttach, resp *AuthRespU) (nas.MasterKey, string, error) {
	var zero nas.MasterKey
	if resp == nil || p == nil {
		return zero, "", ErrBadRequest
	}
	if err := u.BrokerPub.Verify(resp.Sealed, resp.Sig); err != nil {
		return zero, "", fmt.Errorf("sap: authRespU signature: %w", err)
	}
	pt, err := u.Key.Open(resp.Sealed)
	if err != nil {
		return zero, "", fmt.Errorf("sap: authRespU decrypt: %w", err)
	}
	var inner innerRespU
	if err := inner.unmarshal(pt); err != nil {
		return zero, "", err
	}
	if inner.Nonce != p.Nonce {
		return zero, "", ErrNonceMismatch
	}
	if inner.IDT != p.IDT {
		return zero, "", ErrWrongTelco
	}
	if inner.IDU != u.IDU {
		return zero, "", fmt.Errorf("%w: response for %q", ErrBadRequest, inner.IDU)
	}
	return inner.SS, inner.URef, nil
}

// TelcoState is the bTelco side of SAP: a certified key pair plus the
// service terms it advertises. A bTelco needs nothing else — "only a
// certified public key and an ability to settle payments".
type TelcoState struct {
	IDT   string
	Key   *pki.KeyPair
	Cert  *pki.Certificate
	Terms ServiceTerms
}

// ForwardRequest runs the bTelco's first procedure (Fig. 3 top): augment
// the UE request with terms, sign, and produce the message for the broker.
func (t *TelcoState) ForwardRequest(reqU *AuthReqU) (*AuthReqT, error) {
	if reqU == nil || len(reqU.SealedVec) == 0 {
		return nil, ErrBadRequest
	}
	m := &AuthReqT{ReqU: *reqU, IDT: t.IDT, Cert: t.Cert, Terms: t.Terms}
	m.Sig = t.Key.Sign(m.signedBytes())
	return m, nil
}

// Grant is what the bTelco extracts from an approved response: the proof
// of authorization plus everything needed to serve the UE.
type Grant struct {
	URef   string // opaque session reference for the (still anonymous) UE
	SS     nas.MasterKey
	Params qos.Params
	LI     bool
}

// HandleResponse runs the bTelco's second procedure: authenticate the
// broker by its signature over authRespT, decrypt the grant, and sanity
// check that it names this bTelco.
func (t *TelcoState) HandleResponse(brokerPub pki.PublicIdentity, resp *AuthResp) (*Grant, *AuthRespU, error) {
	if resp == nil {
		return nil, nil, ErrBadRequest
	}
	if !resp.Granted {
		return nil, nil, fmt.Errorf("%w: %s", ErrDenied, resp.Cause)
	}
	if err := brokerPub.Verify(resp.T.Sealed, resp.T.Sig); err != nil {
		return nil, nil, fmt.Errorf("sap: authRespT signature: %w", err)
	}
	pt, err := t.Key.Open(resp.T.Sealed)
	if err != nil {
		return nil, nil, fmt.Errorf("sap: authRespT decrypt: %w", err)
	}
	var inner innerRespT
	if err := inner.unmarshal(pt); err != nil {
		return nil, nil, err
	}
	if inner.IDT != t.IDT {
		return nil, nil, ErrWrongTelco
	}
	if err := inner.Params.Validate(t.Terms.Cap); err != nil {
		return nil, nil, fmt.Errorf("sap: broker qosInfo outside capability: %w", err)
	}
	return &Grant{URef: inner.URef, SS: inner.SS, Params: inner.Params, LI: inner.LI}, &resp.U, nil
}

// Authorizer is the broker's pluggable policy: given the authenticated
// user, the bTelco and its terms, decide admission and pick qosInfo. The
// paper leaves this policy "open to innovation".
type Authorizer interface {
	Authorize(idU, idT string, terms ServiceTerms) (qos.Params, error)
}

// AuthorizerFunc adapts a function to Authorizer.
type AuthorizerFunc func(idU, idT string, terms ServiceTerms) (qos.Params, error)

// Authorize implements Authorizer.
func (f AuthorizerFunc) Authorize(idU, idT string, terms ServiceTerms) (qos.Params, error) {
	return f(idU, idT, terms)
}

// AcceptAll authorizes every authenticated request with the bTelco's
// capability clamped around the broker's default parameter choice.
func AcceptAll() Authorizer {
	return AuthorizerFunc(func(_, _ string, terms ServiceTerms) (qos.Params, error) {
		return qos.DefaultParams().Clamp(terms.Cap), nil
	})
}

// BrokerState is the broker side of SAP: its key pair, the CA trust
// anchor for bTelco certificates, the registry of user keys it issued,
// a replay cache, and the authorization policy. Safe for concurrent
// request handling (the wire server serves each connection on its own
// goroutine).
type BrokerState struct {
	IDB    string
	Key    *pki.KeyPair
	Anchor pki.PublicIdentity
	Policy Authorizer

	mu      sync.Mutex
	users   map[string]pki.PublicIdentity // idU -> key the broker issued
	revoked map[string]bool
	nonces  *nonceCache
	certs   *pki.CertVerifier // memoized bTelco certificate checks
	now     func() time.Time
}

// NewBrokerState builds a broker with the given trust anchor and policy.
// now supplies certificate-validation time (virtual or wall clock).
func NewBrokerState(idB string, key *pki.KeyPair, anchor pki.PublicIdentity, policy Authorizer, now func() time.Time) *BrokerState {
	if now == nil {
		now = time.Now
	}
	if policy == nil {
		policy = AcceptAll()
	}
	return &BrokerState{
		IDB:     idB,
		Key:     key,
		Anchor:  anchor,
		Policy:  policy,
		users:   make(map[string]pki.PublicIdentity),
		revoked: make(map[string]bool),
		nonces:  newNonceCache(1 << 16),
		certs:   pki.NewCertVerifier(anchor, 256),
		now:     now,
	}
}

// RegisterUser records a user key the broker issued. Returns the idU the
// UE should embed in authVec (the key digest).
func (b *BrokerState) RegisterUser(pub pki.PublicIdentity) string {
	id := pub.Digest()
	b.mu.Lock()
	b.users[id] = pub
	b.mu.Unlock()
	return id
}

// RevokeUser invalidates a user key: "B can revoke U's public key by
// simply invalidating the key in its database."
func (b *BrokerState) RevokeUser(idU string) {
	b.mu.Lock()
	b.revoked[idU] = true
	b.mu.Unlock()
}

// GrantRecord is the broker's bookkeeping for an approved attachment,
// used later to align billing reports.
type GrantRecord struct {
	URef  string
	IDU   string
	IDT   string
	SS    nas.MasterKey
	Terms ServiceTerms
	QoS   qos.Params
}

// HandleRequest runs the broker procedures of Fig. 3 (bottom): verify the
// bTelco certificate and signature, decrypt authVec, verify the UE
// signature and membership, enforce replay protection, run policy, mint
// ss, and emit the two sealed responses. The returned GrantRecord is nil
// when the response is a denial. It composes the three pipeline phases
// (Validate → Decide → Finalize, see pipeline.go) serially; a batching
// broker drives the phases directly.
func (b *BrokerState) HandleRequest(req *AuthReqT) (*AuthResp, *GrantRecord, error) {
	v, err := b.Validate(req)
	if err != nil {
		return nil, nil, err
	}
	if v.DenyCause != "" {
		return &AuthResp{Granted: false, Cause: v.DenyCause}, nil, nil
	}
	params, cause := b.Decide(v, nil)
	if cause != "" {
		return &AuthResp{Granted: false, Cause: cause}, nil, nil
	}
	ss, uref, err := MintSession()
	if err != nil {
		return nil, nil, err
	}
	return b.Finalize(v, params, ss, uref)
}

func newURef() (string, error) {
	var b [12]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// nonceCache is a bounded replay filter.
type nonceCache struct {
	seen  map[[NonceSize]byte]struct{}
	order [][NonceSize]byte
	max   int
}

func newNonceCache(max int) *nonceCache {
	return &nonceCache{seen: make(map[[NonceSize]byte]struct{}), max: max}
}

// add records a nonce, reporting false when it was already present.
func (c *nonceCache) add(n [NonceSize]byte) bool {
	if _, dup := c.seen[n]; dup {
		return false
	}
	c.seen[n] = struct{}{}
	c.order = append(c.order, n)
	if len(c.order) > c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.seen, old)
	}
	return true
}

package sap

import (
	"fmt"
	"hash/fnv"

	"cellbricks/internal/codec"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
)

// This file splits broker-side SAP request handling into three phases so
// a batching broker can pipeline them (SoftCell-style aggregation at the
// core gateway):
//
//   - Validate: every stateless crypto check — certificate, signatures,
//     decryption, membership. Safe to run for many requests in parallel.
//   - Decide: the order-sensitive state mutation — replay filter and
//     authorization policy. Must run in arrival order.
//   - Finalize: sealing and signing the two responses for a pre-minted
//     (ss, uref). Stateless again, so a batch signs grants in parallel.
//
// HandleRequest (parties.go) composes the three phases back into the
// serial path; broker.Batcher drives them directly.

// ValidatedAuth is the outcome of the Validate phase for one request.
// When DenyCause is non-empty, validation already failed and Decide /
// Finalize must not run.
type ValidatedAuth struct {
	Req       *AuthReqT
	Vec       AuthVec
	PubU      pki.PublicIdentity
	DenyCause string
}

// Validate runs the stateless half of the broker procedures of Fig. 3:
// authenticate the bTelco (certificate and signature), decrypt and
// authenticate the UE's vector, and check membership. It touches no
// order-sensitive state (the replay filter and policy live in Decide), so
// any number of Validate calls may run concurrently. The error is non-nil
// only for a nil request; protocol failures land in DenyCause.
func (b *BrokerState) Validate(req *AuthReqT) (*ValidatedAuth, error) {
	if req == nil {
		return nil, ErrBadRequest
	}
	v := &ValidatedAuth{Req: req}
	deny := func(cause string) (*ValidatedAuth, error) {
		v.DenyCause = cause
		return v, nil
	}

	// 1. Authenticate the bTelco: certificate chains to the anchor, the
	// certificate's subject matches the claimed idT, and the signature
	// over the augmented request verifies under the certified key. The
	// certificate check is memoized: every attach through the same bTelco
	// carries the same certificate, so only the first pays the Ed25519
	// verification (expiry is still enforced per call).
	if err := b.certs.Verify(req.Cert, b.now()); err != nil {
		return deny("bTelco certificate invalid")
	}
	if req.Cert.Role != "btelco" || req.Cert.Subject != req.IDT {
		return deny("bTelco certificate subject/role mismatch")
	}
	if err := req.Cert.Identity.Verify(req.signedBytes(), req.Sig); err != nil {
		return deny("bTelco signature invalid")
	}

	// 2. Decrypt and authenticate the UE's vector.
	if req.ReqU.IDB != b.IDB {
		return deny("request addressed to a different broker")
	}
	pt, err := b.Key.Open(req.ReqU.SealedVec)
	if err != nil {
		return deny("authVec undecryptable")
	}
	if err := v.Vec.unmarshal(pt); err != nil {
		return deny("authVec malformed")
	}
	if v.Vec.IDB != b.IDB {
		return deny("authVec names a different broker")
	}
	b.mu.Lock()
	pubU, ok := b.users[v.Vec.IDU]
	revoked := b.revoked[v.Vec.IDU]
	b.mu.Unlock()
	if !ok {
		return deny("unknown user")
	}
	if revoked {
		return deny("user key revoked")
	}
	if err := pubU.Verify(req.ReqU.SealedVec, req.ReqU.Sig); err != nil {
		return deny("UE signature invalid")
	}
	// The UE bound this request to a specific bTelco; the forwarding
	// bTelco must be that one (stops a malicious cell replaying a request
	// captured at another bTelco).
	if v.Vec.IDT != req.IDT {
		return deny("bTelco identity mismatch")
	}
	v.PubU = pubU
	return v, nil
}

// Decide runs the order-sensitive phase for a validated request: the
// replay filter and the authorization policy. policy overrides b.Policy
// when non-nil — a batching broker passes a variant that assumes its own
// lock is already held. A non-empty cause is a denial.
func (b *BrokerState) Decide(v *ValidatedAuth, policy Authorizer) (qos.Params, string) {
	b.mu.Lock()
	fresh := b.nonces.add(v.Vec.Nonce)
	b.mu.Unlock()
	if !fresh {
		return qos.Params{}, "replayed nonce"
	}
	if policy == nil {
		policy = b.Policy
	}
	params, err := policy.Authorize(v.Vec.IDU, v.Req.IDT, v.Req.Terms)
	if err != nil {
		return qos.Params{}, "authorization denied: " + err.Error()
	}
	if err := params.Validate(v.Req.Terms.Cap); err != nil {
		return qos.Params{}, "policy selected unsupportable QoS: " + err.Error()
	}
	return params, ""
}

// MintSession draws a fresh shared secret and opaque session reference
// for a granted request. Thread-safe and order-free: the batching broker
// mints inline while committing decisions.
func MintSession() (nas.MasterKey, string, error) {
	ss, err := NewMasterSecret()
	if err != nil {
		return ss, "", err
	}
	uref, err := newURef()
	if err != nil {
		return ss, "", err
	}
	return ss, uref, nil
}

// Finalize seals and signs the two responses for a granted request using
// a pre-minted (ss, uref). Stateless: a batching broker finalizes many
// grants in parallel after their decisions committed in arrival order.
func (b *BrokerState) Finalize(v *ValidatedAuth, params qos.Params, ss nas.MasterKey, uref string) (*AuthResp, *GrantRecord, error) {
	req := v.Req
	respT := innerRespT{URef: uref, IDT: req.IDT, SS: ss, Params: params, LI: req.Terms.LawfulIntercept}
	sealedT, err := pki.Seal(req.Cert.Identity, respT.marshal())
	if err != nil {
		return nil, nil, fmt.Errorf("sap: seal authRespT: %w", err)
	}
	respU := innerRespU{IDU: v.Vec.IDU, IDT: req.IDT, URef: uref, SS: ss, Nonce: v.Vec.Nonce}
	sealedU, err := pki.Seal(v.PubU, respU.marshal())
	if err != nil {
		return nil, nil, fmt.Errorf("sap: seal authRespU: %w", err)
	}
	resp := &AuthResp{
		Granted: true,
		T:       AuthRespT{Sealed: sealedT, Sig: b.Key.Sign(sealedT)},
		U:       AuthRespU{Sealed: sealedU, Sig: b.Key.Sign(sealedU)},
	}
	rec := &GrantRecord{URef: uref, IDU: v.Vec.IDU, IDT: req.IDT, SS: ss, Terms: req.Terms, QoS: params}
	return resp, rec, nil
}

// Fingerprint returns a stable 64-bit digest of the terms (FNV-1a over
// the canonical encoding). ServiceTerms itself is not comparable (the
// capability holds a QCI slice), so this digest is the comparable key the
// broker's auth-decision cache needs.
func (t ServiceTerms) Fingerprint() uint64 {
	w := codec.NewWriter(64)
	marshalTerms(w, t)
	h := fnv.New64a()
	h.Write(w.Out())
	return h.Sum64()
}

package sap

import (
	"errors"
	"strings"
	"testing"
)

// runResume drives one fast-path exchange end to end at the sap layer:
// UE builds the request, the serving bTelco co-signs, the "broker" (here
// just the record from the prior attach) verifies and grants, and both
// UE and bTelco accept the confirmation.
func runResume(t *testing.T, f *fixture, tkt *ResumeSession, rec *GrantRecord) (*ResumeSession, *Grant) {
	t.Helper()
	req, err := tkt.NewResumeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.telco.ForwardResume(req, rec.SS); err != nil {
		t.Fatal(err)
	}
	// Wire legs round-trip.
	req2, err := UnmarshalResumeReq(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyResumeReq(req2, rec.SS); err != nil {
		t.Fatal(err)
	}
	resp, ss2, uref2 := GrantResume(req2, rec.SS, rec.QoS, 1.0)
	resp2, err := UnmarshalResumeResp(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := f.telco.AcceptResume(req, resp2, rec.SS)
	if err != nil {
		t.Fatal(err)
	}
	next, ueSS, err := tkt.HandleResumeResponse(req, resp2)
	if err != nil {
		t.Fatal(err)
	}
	if ueSS != grant.SS || ueSS != ss2 {
		t.Fatal("UE, bTelco and broker derived different successor secrets")
	}
	if next.URef != grant.URef || next.URef != uref2 {
		t.Fatalf("successor uref disagreement: ue=%q telco=%q broker=%q", next.URef, grant.URef, uref2)
	}
	if next.URef == tkt.URef {
		t.Fatal("successor uref equals the consumed one")
	}
	if len(next.URef) != len(tkt.URef) {
		t.Fatalf("successor uref shape changed: %q", next.URef)
	}
	return next, grant
}

func TestResumeEndToEnd(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	tkt := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: ueSS}
	next, g2 := runResume(t, f, tkt, rec)
	if g2.Params != grant.Params {
		t.Fatalf("resume changed QoS: %+v != %+v", g2.Params, grant.Params)
	}
	// The chain continues: resume again off the successor.
	rec2 := &GrantRecord{URef: next.URef, IDU: rec.IDU, IDT: rec.IDT, SS: next.SS, QoS: rec.QoS}
	runResume(t, f, next, rec2)
}

func TestResumeTamperedMACRejected(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	tkt := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: ueSS}

	req, _ := tkt.NewResumeRequest()
	req.MACU[0] ^= 1
	if err := f.telco.ForwardResume(req, rec.SS); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("bTelco err=%v, want ErrResumeMAC", err)
	}

	req, _ = tkt.NewResumeRequest()
	if err := f.telco.ForwardResume(req, rec.SS); err != nil {
		t.Fatal(err)
	}
	req.MACT[0] ^= 1
	if err := VerifyResumeReq(req, rec.SS); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("broker err=%v, want ErrResumeMAC", err)
	}
}

func TestResumeForgedResponseRejected(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	tkt := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: ueSS}
	req, _ := tkt.NewResumeRequest()
	if err := f.telco.ForwardResume(req, rec.SS); err != nil {
		t.Fatal(err)
	}
	resp, _, _ := GrantResume(req, rec.SS, rec.QoS, 1.0)

	bad := *resp
	bad.MACU = append([]byte(nil), resp.MACU...)
	bad.MACU[3] ^= 0xFF
	if _, _, err := tkt.HandleResumeResponse(req, &bad); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("UE err=%v, want ErrResumeMAC", err)
	}
	bad = *resp
	bad.MACT = append([]byte(nil), resp.MACT...)
	bad.MACT[3] ^= 0xFF
	if _, err := f.telco.AcceptResume(req, &bad, rec.SS); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("bTelco err=%v, want ErrResumeMAC", err)
	}
	// QoS inflation after signing: MAC covers params, so both sides refuse.
	bad = *resp
	bad.Params.DLAmbrBps *= 2
	if _, _, err := tkt.HandleResumeResponse(req, &bad); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("UE accepted inflated params: %v", err)
	}
}

func TestResumeWrongTelcoRejected(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	tkt := &ResumeSession{IDT: "btelco-other", URef: grant.URef, SS: ueSS}
	req, _ := tkt.NewResumeRequest()
	if err := f.telco.ForwardResume(req, rec.SS); !errors.Is(err, ErrWrongTelco) {
		t.Fatalf("err=%v, want ErrWrongTelco", err)
	}
}

func TestResumeDenialPropagates(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, _ := f.runAttach(t)
	tkt := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: ueSS}
	req, _ := tkt.NewResumeRequest()
	deny := DenyResume("bTelco is quarantined", 0.4)
	if _, _, err := tkt.HandleResumeResponse(req, deny); !errors.Is(err, ErrDenied) {
		t.Fatalf("UE err=%v, want ErrDenied", err)
	}
	if _, err := f.telco.AcceptResume(req, deny, grant.SS); !errors.Is(err, ErrDenied) || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("bTelco err=%v, want wrapped ErrDenied with cause", err)
	}
}

func TestResumeWrongSecretCannotForge(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	// An off-path attacker knows uref and idT but not ss.
	var wrong [32]byte
	wrong[0] = 0xAA
	forged := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: wrong}
	req, _ := forged.NewResumeRequest()
	if err := f.telco.ForwardResume(req, rec.SS); !errors.Is(err, ErrResumeMAC) {
		t.Fatalf("bTelco forwarded a forged resume: %v", err)
	}
	_ = ueSS
}

func TestResumeCodecRejectsTruncation(t *testing.T) {
	f := newFixture(t)
	ueSS, _, grant, rec := f.runAttach(t)
	tkt := &ResumeSession{IDT: f.telco.IDT, URef: grant.URef, SS: ueSS}
	req, _ := tkt.NewResumeRequest()
	if err := f.telco.ForwardResume(req, rec.SS); err != nil {
		t.Fatal(err)
	}
	wire := req.Marshal()
	for _, cut := range []int{1, 5, len(wire) / 2, len(wire) - 1} {
		if _, err := UnmarshalResumeReq(wire[:cut]); err == nil {
			t.Fatalf("truncated request at %d accepted", cut)
		}
	}
	resp, _, _ := GrantResume(req, rec.SS, rec.QoS, 1.0)
	rw := resp.Marshal()
	for _, cut := range []int{1, 5, len(rw) / 2, len(rw) - 1} {
		if _, err := UnmarshalResumeResp(rw[:cut]); err == nil {
			t.Fatalf("truncated response at %d accepted", cut)
		}
	}
}

func TestServiceTermsFingerprint(t *testing.T) {
	f := newFixture(t)
	a := f.telco.Terms
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical terms fingerprint differently")
	}
	b.PricePerGB += 0.01
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("price change did not move the fingerprint")
	}
	c := a
	c.LawfulIntercept = !c.LawfulIntercept
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("LI change did not move the fingerprint")
	}
	d := a
	d.Cap.MaxDLAmbrBps++
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("capability change did not move the fingerprint")
	}
}

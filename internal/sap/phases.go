package sap

// Canonical attach-phase span names. The tracer records spans under these
// names across layers (ue, ran, epc, testbed) and the timeline aggregator
// folds them into per-session phase durations; keeping the vocabulary in
// one place means a renamed phase breaks compilation instead of silently
// splitting a timeline row in two.
const (
	// PhaseCellSelect is the UE's candidate scan + cell choice.
	PhaseCellSelect = "cell-select"
	// PhaseAKA is the UE-side key agreement (request build + response
	// validation) of the SAP handshake.
	PhaseAKA = "aka"
	// PhaseSAPAuth is the serving-side SAP leg: forward-request, the
	// broker round trip, and handle-response.
	PhaseSAPAuth = "sap-auth"
	// PhaseBearerSetup is session/bearer activation after the grant.
	PhaseBearerSetup = "bearer-setup"
	// PhaseFirstGoodput is attach-complete to first user-plane delivery.
	PhaseFirstGoodput = "first-goodput"
)
